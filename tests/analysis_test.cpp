// Tests for the trajectory analysis toolkit: centroids, Rg, RMSD (aligned
// and not), Kabsch rotations, MSD, and RDF -- validated against closed-form
// cases and synthetic transformations.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "vmd/analysis.hpp"
#include "workload/gpcr_builder.hpp"

namespace ada::vmd {
namespace {

std::vector<float> rotate_z(std::span<const float> coords, double angle,
                            const std::array<double, 3>& shift = {0, 0, 0}) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  std::vector<float> out(coords.size());
  for (std::size_t a = 0; a < coords.size() / 3; ++a) {
    const double x = coords[3 * a];
    const double y = coords[3 * a + 1];
    const double z = coords[3 * a + 2];
    out[3 * a] = static_cast<float>(c * x - s * y + shift[0]);
    out[3 * a + 1] = static_cast<float>(s * x + c * y + shift[1]);
    out[3 * a + 2] = static_cast<float>(z + shift[2]);
  }
  return out;
}

std::vector<float> cloud(std::size_t atoms, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> coords;
  coords.reserve(atoms * 3);
  for (std::size_t i = 0; i < atoms * 3; ++i) {
    coords.push_back(static_cast<float>(rng.normal(0.0, 1.0)));
  }
  return coords;
}

// --- centroid / center of mass -----------------------------------------------------

TEST(CentroidTest, SimpleAverage) {
  const std::vector<float> coords = {0, 0, 0, 2, 4, 6};
  const auto c = centroid(coords);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
}

TEST(CentroidTest, EmptyIsOrigin) {
  const auto c = centroid({});
  EXPECT_DOUBLE_EQ(c[0], 0.0);
}

TEST(CenterOfMassTest, WeightsMatter) {
  const std::vector<float> coords = {0, 0, 0, 10, 0, 0};
  const std::vector<double> masses = {1.0, 3.0};
  const auto c = center_of_mass(coords, masses).value();
  EXPECT_DOUBLE_EQ(c[0], 7.5);
}

TEST(CenterOfMassTest, Validation) {
  const std::vector<float> coords = {0, 0, 0};
  EXPECT_FALSE(center_of_mass(coords, std::vector<double>{1.0, 2.0}).is_ok());
  EXPECT_FALSE(center_of_mass(coords, std::vector<double>{0.0}).is_ok());
  EXPECT_FALSE(center_of_mass({}, {}).is_ok());
}

// --- radius of gyration ---------------------------------------------------------------

TEST(RgTest, PointHasZeroRg) {
  const std::vector<float> coords = {5, 5, 5};
  EXPECT_DOUBLE_EQ(radius_of_gyration(coords), 0.0);
}

TEST(RgTest, SymmetricPairClosedForm) {
  // Two points at distance 2r from each other: Rg = r.
  const std::vector<float> coords = {-1.5f, 0, 0, 1.5f, 0, 0};
  EXPECT_NEAR(radius_of_gyration(coords), 1.5, 1e-6);
}

TEST(RgTest, TranslationInvariant) {
  const auto a = cloud(100, 1);
  auto b = a;
  for (std::size_t i = 0; i < b.size(); i += 3) b[i] += 42.0f;
  EXPECT_NEAR(radius_of_gyration(a), radius_of_gyration(b), 1e-4);
}

// --- RMSD -------------------------------------------------------------------------------

TEST(RmsdTest, IdenticalIsZero) {
  const auto a = cloud(50, 2);
  EXPECT_NEAR(rmsd_no_align(a, a).value(), 0.0, 1e-12);
  EXPECT_NEAR(rmsd_aligned(a, a).value(), 0.0, 1e-6);
}

TEST(RmsdTest, UniformShiftClosedForm) {
  const auto a = cloud(50, 3);
  auto b = a;
  for (std::size_t i = 0; i < b.size(); i += 3) b[i] += 3.0f;  // +3 in x
  EXPECT_NEAR(rmsd_no_align(a, b).value(), 3.0, 1e-5);
  // Alignment removes the translation entirely.
  EXPECT_NEAR(rmsd_aligned(a, b).value(), 0.0, 1e-5);
}

TEST(RmsdTest, PureRotationAlignsToZero) {
  const auto a = cloud(80, 4);
  const auto b = rotate_z(a, 1.1, {2.0, -1.0, 0.5});
  EXPECT_GT(rmsd_no_align(a, b).value(), 0.5);
  EXPECT_NEAR(rmsd_aligned(a, b).value(), 0.0, 1e-4);
}

TEST(RmsdTest, AlignedNeverExceedsUnaligned) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = cloud(40, 100 + static_cast<std::uint64_t>(trial));
    auto b = cloud(40, 200 + static_cast<std::uint64_t>(trial));
    EXPECT_LE(rmsd_aligned(a, b).value(), rmsd_no_align(a, b).value() + 1e-9);
  }
}

TEST(RmsdTest, Validation) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {1, 2, 3, 4, 5, 6};
  EXPECT_FALSE(rmsd_no_align(a, b).is_ok());
  EXPECT_FALSE(rmsd_aligned({}, {}).is_ok());
}

// --- Kabsch rotation ------------------------------------------------------------------------

TEST(KabschTest, RecoversKnownRotation) {
  const auto a = cloud(60, 6);
  const double angle = 0.7;
  const auto b = rotate_z(a, angle);
  const auto r = kabsch_rotation(a, b).value();
  // Expected row-major rotation about z.
  EXPECT_NEAR(r[0], std::cos(angle), 1e-4);
  EXPECT_NEAR(r[1], -std::sin(angle), 1e-4);
  EXPECT_NEAR(r[3], std::sin(angle), 1e-4);
  EXPECT_NEAR(r[4], std::cos(angle), 1e-4);
  EXPECT_NEAR(r[8], 1.0, 1e-4);
}

TEST(KabschTest, ResultIsOrthonormal) {
  const auto a = cloud(30, 7);
  const auto b = cloud(30, 8);
  const auto r = kabsch_rotation(a, b).value();
  // R * R^T == I.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double dot = 0;
      for (int k = 0; k < 3; ++k) {
        dot += r[static_cast<std::size_t>(3 * i + k)] * r[static_cast<std::size_t>(3 * j + k)];
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9) << i << "," << j;
    }
  }
  // Proper rotation: determinant +1.
  const double det = r[0] * (r[4] * r[8] - r[5] * r[7]) - r[1] * (r[3] * r[8] - r[5] * r[6]) +
                     r[2] * (r[3] * r[7] - r[4] * r[6]);
  EXPECT_NEAR(det, 1.0, 1e-9);
}

// --- MSD ------------------------------------------------------------------------------------

TEST(MsdTest, FirstFrameZeroAndGrowth) {
  std::vector<std::vector<float>> frames;
  frames.push_back({0, 0, 0});
  frames.push_back({1, 0, 0});
  frames.push_back({2, 0, 0});
  const auto msd = mean_squared_displacement(frames).value();
  ASSERT_EQ(msd.size(), 3u);
  EXPECT_DOUBLE_EQ(msd[0], 0.0);
  EXPECT_DOUBLE_EQ(msd[1], 1.0);
  EXPECT_DOUBLE_EQ(msd[2], 4.0);
}

TEST(MsdTest, Validation) {
  EXPECT_FALSE(mean_squared_displacement({}).is_ok());
  std::vector<std::vector<float>> bad = {{1, 2, 3}, {1, 2}};
  EXPECT_FALSE(mean_squared_displacement(bad).is_ok());
}

// --- RDF ------------------------------------------------------------------------------------

TEST(RdfTest, IdealGasIsFlatUnity) {
  // Uniformly random points against themselves: g(r) ~ 1 away from r=0.
  Rng rng(9);
  std::vector<float> coords;
  constexpr std::size_t kAtoms = 600;
  const std::array<float, 3> box = {10, 10, 10};
  for (std::size_t i = 0; i < kAtoms * 3; ++i) {
    coords.push_back(static_cast<float>(rng.uniform(0.0, 10.0)));
  }
  const auto rdf = radial_distribution(coords, coords, box, 4.0, 16).value();
  // Skip the first bins (self-exclusion artifacts); the rest hover near 1.
  for (std::size_t bin = 4; bin < rdf.g.size(); ++bin) {
    EXPECT_NEAR(rdf.g[bin], 1.0, 0.25) << "bin " << bin;
  }
}

TEST(RdfTest, FixedPairPeaksInRightBin) {
  // Two atoms 1.0 apart in a big box: all density lands in the bin holding r=1.
  const std::vector<float> a = {5, 5, 5};
  const std::vector<float> b = {6, 5, 5};
  const auto rdf = radial_distribution(a, b, {20, 20, 20}, 2.0, 10).value();
  std::size_t peak = 0;
  for (std::size_t bin = 1; bin < rdf.g.size(); ++bin) {
    if (rdf.g[bin] > rdf.g[peak]) peak = bin;
  }
  EXPECT_EQ(peak, 5u);  // r=1.0 in [1.0, 1.2) with bin width 0.2
}

TEST(RdfTest, MinimumImageWrapsAcrossBoundary) {
  // Atoms at x=0.1 and x=9.9 in a 10-box are 0.2 apart by minimum image.
  const std::vector<float> a = {0.1f, 5, 5};
  const std::vector<float> b = {9.9f, 5, 5};
  const auto rdf = radial_distribution(a, b, {10, 10, 10}, 1.0, 10).value();
  EXPECT_GT(rdf.g[2], 0.0);  // bin [0.2, 0.3)
  for (std::size_t bin = 4; bin < 10; ++bin) EXPECT_DOUBLE_EQ(rdf.g[bin], 0.0);
}

TEST(RdfTest, Validation) {
  const std::vector<float> a = {0, 0, 0};
  EXPECT_FALSE(radial_distribution(a, a, {10, 10, 10}, 0.0, 10).is_ok());
  EXPECT_FALSE(radial_distribution(a, a, {10, 10, 10}, 1.0, 0).is_ok());
  EXPECT_FALSE(radial_distribution(a, a, {10, 10, 10}, 8.0, 10).is_ok());  // > L/2
  EXPECT_FALSE(radial_distribution(a, a, {0, 10, 10}, 1.0, 10).is_ok());
}

// --- integration with the workload ------------------------------------------------------------

TEST(AnalysisIntegrationTest, ProteinIsMoreCompactThanSystem) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const auto protein = system.selection_for(chem::Category::kProtein);
  std::vector<float> protein_coords;
  for (const chem::Run& run : protein.runs()) {
    for (std::uint32_t i = run.begin; i < run.end; ++i) {
      for (int d = 0; d < 3; ++d) {
        protein_coords.push_back(system.reference_coords()[3 * i + static_cast<std::size_t>(d)]);
      }
    }
  }
  // The helix bundle is more compact than the whole solvated box.
  EXPECT_LT(radius_of_gyration(protein_coords),
            radius_of_gyration(system.reference_coords()));
}

}  // namespace
}  // namespace ada::vmd
