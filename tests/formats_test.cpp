// Unit tests for PDB / XTC / RAW file formats.
#include <gtest/gtest.h>

#include "chem/selection.hpp"
#include "formats/pdb.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::formats {
namespace {

// --- PDB --------------------------------------------------------------------------

constexpr const char* kSamplePdb =
    "HEADER    TEST STRUCTURE\n"
    "CRYST1   50.000   50.000   50.000  90.00  90.00  90.00 P 1           1\n"
    "ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N\n"
    "ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C\n"
    "ATOM      3  C   ALA A   1      10.722   6.789  -4.153  1.00  0.00           C\n"
    "HETATM    4 NA    NA I   2      20.000  20.000  20.000  1.00  0.00          NA\n"
    "ATOM      5  OW  SOL W   3       5.000   5.000   5.000  1.00  0.00           O\n"
    "TER\n"
    "END\n";

TEST(PdbTest, ParseSample) {
  const auto system = parse_pdb(kSamplePdb).value();
  ASSERT_EQ(system.atom_count(), 5u);
  EXPECT_FLOAT_EQ(system.box().x(), 5.0f);  // 50 A -> 5 nm
  EXPECT_EQ(system.atom(0).name, "N");
  EXPECT_EQ(system.atom(0).residue_name, "ALA");
  EXPECT_EQ(system.atom(0).chain_id, 'A');
  EXPECT_EQ(system.category(0), chem::Category::kProtein);
  EXPECT_EQ(system.category(3), chem::Category::kIon);
  EXPECT_EQ(system.atom(3).element, chem::Element::kSodium);
  EXPECT_TRUE(system.atom(3).hetatm);
  EXPECT_EQ(system.category(4), chem::Category::kWater);
  // Coordinates are converted to nm.
  EXPECT_NEAR(system.reference_coords()[0], 1.1104f, 1e-4f);
  EXPECT_NEAR(system.reference_coords()[8], -0.4153f, 1e-4f);
}

TEST(PdbTest, EmptyDocumentRejected) {
  EXPECT_FALSE(parse_pdb("").is_ok());
  EXPECT_FALSE(parse_pdb("REMARK nothing here\n").is_ok());
}

TEST(PdbTest, MalformedCoordinatesRejected) {
  const std::string bad =
      "ATOM      1  N   ALA A   1      xx.xxx   6.134  -6.504  1.00  0.00           N\n";
  EXPECT_FALSE(parse_pdb(bad).is_ok());
}

TEST(PdbTest, MalformedSerialRejected) {
  const std::string bad =
      "ATOM      x  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N\n";
  EXPECT_FALSE(parse_pdb(bad).is_ok());
}

TEST(PdbTest, UnknownRecordsSkipped) {
  const std::string doc = std::string("REMARK hi\nSEQRES stuff\n") + kSamplePdb;
  EXPECT_EQ(parse_pdb(doc).value().atom_count(), 5u);
}

TEST(PdbTest, WriteParseRoundTrip) {
  const auto original = parse_pdb(kSamplePdb).value();
  const std::string text = write_pdb(original);
  const auto reparsed = parse_pdb(text).value();
  ASSERT_EQ(reparsed.atom_count(), original.atom_count());
  for (std::uint32_t i = 0; i < original.atom_count(); ++i) {
    EXPECT_EQ(reparsed.atom(i).name, original.atom(i).name) << i;
    EXPECT_EQ(reparsed.atom(i).residue_name, original.atom(i).residue_name) << i;
    EXPECT_EQ(reparsed.category(i), original.category(i)) << i;
    for (int d = 0; d < 3; ++d) {
      const std::size_t j = 3 * i + static_cast<std::size_t>(d);
      // PDB has 3 decimal digits in angstroms: 1e-4 nm quantization.
      EXPECT_NEAR(reparsed.reference_coords()[j], original.reference_coords()[j], 2e-4f);
    }
  }
  EXPECT_EQ(reparsed.box(), original.box());
}

TEST(PdbTest, GeneratedSystemRoundTrip) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const auto reparsed = parse_pdb(write_pdb(system)).value();
  ASSERT_EQ(reparsed.atom_count(), system.atom_count());
  EXPECT_EQ(reparsed.count_category(chem::Category::kProtein),
            system.count_category(chem::Category::kProtein));
  EXPECT_EQ(reparsed.count_category(chem::Category::kWater),
            system.count_category(chem::Category::kWater));
  EXPECT_EQ(reparsed.count_category(chem::Category::kLipid),
            system.count_category(chem::Category::kLipid));
}

TEST(PdbTest, FileRoundTrip) {
  const auto system = parse_pdb(kSamplePdb).value();
  const std::string path = testing::TempDir() + "/ada_pdb_test.pdb";
  ASSERT_TRUE(write_pdb_file(path, system).is_ok());
  EXPECT_EQ(read_pdb_file(path).value().atom_count(), 5u);
}

// --- XTC --------------------------------------------------------------------------

std::vector<float> wiggle(const std::vector<float>& base, float amount, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out = base;
  for (float& v : out) v += static_cast<float>(rng.normal(0.0, static_cast<double>(amount)));
  return out;
}

TEST(XtcTest, MultiFrameRoundTrip) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  XtcWriter writer;
  std::vector<std::vector<float>> truth;
  for (std::uint32_t f = 0; f < 5; ++f) {
    truth.push_back(wiggle(system.reference_coords(), 0.01f, f));
    ASSERT_TRUE(writer
                    .add_frame(f * 1000, static_cast<float>(f) * 2.0f, system.box(), truth.back())
                    .is_ok());
  }
  EXPECT_EQ(writer.frame_count(), 5u);

  const auto frames = read_all_xtc(writer.bytes()).value();
  ASSERT_EQ(frames.size(), 5u);
  for (std::uint32_t f = 0; f < 5; ++f) {
    EXPECT_EQ(frames[f].step, f * 1000);
    EXPECT_FLOAT_EQ(frames[f].time_ps, static_cast<float>(f) * 2.0f);
    EXPECT_EQ(frames[f].box, system.box());
    ASSERT_EQ(frames[f].coords.size(), truth[f].size());
    for (std::size_t i = 0; i < truth[f].size(); ++i) {
      ASSERT_NEAR(frames[f].coords[i], truth[f][i], 0.0006f);
    }
  }
}

TEST(XtcTest, SkipWalksFramesWithoutDecode) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  XtcWriter writer;
  for (std::uint32_t f = 0; f < 4; ++f) {
    ASSERT_TRUE(
        writer.add_frame(f, static_cast<float>(f), system.box(), system.reference_coords())
            .is_ok());
  }
  XtcReader reader(writer.bytes());
  EXPECT_TRUE(reader.skip().value());
  EXPECT_TRUE(reader.skip().value());
  const auto frame = reader.next().value();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->step, 2u);
  EXPECT_TRUE(reader.skip().value());
  EXPECT_FALSE(reader.skip().value());  // end of stream
}

TEST(XtcTest, BadMagicRejected) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  XtcWriter writer;
  ASSERT_TRUE(writer.add_frame(0, 0.0f, system.box(), system.reference_coords()).is_ok());
  auto bytes = writer.take();
  bytes[3] = 0x00;  // clobber the magic's low byte
  EXPECT_FALSE(read_all_xtc(bytes).is_ok());
}

TEST(XtcTest, TruncatedStreamRejected) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  XtcWriter writer;
  ASSERT_TRUE(writer.add_frame(0, 0.0f, system.box(), system.reference_coords()).is_ok());
  const auto& bytes = writer.bytes();
  const auto truncated = std::span(bytes).subspan(0, bytes.size() - 7);
  EXPECT_FALSE(read_all_xtc(truncated).is_ok());
}

TEST(XtcTest, EmptyStreamYieldsNoFrames) {
  EXPECT_TRUE(read_all_xtc({}).value().empty());
}

TEST(XtcTest, CompressionRatioInXtcRegime) {
  // On the synthetic GPCR system, total compressed size must be in the
  // xtc-like regime the paper measures: raw/compressed ~ 3.27.
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  XtcWriter writer;
  constexpr std::uint32_t kFrames = 20;
  for (std::uint32_t f = 0; f < kFrames; ++f) {
    ASSERT_TRUE(writer.add_frame(gen.current_step(), gen.current_time_ps(), system.box(),
                                 gen.next_frame())
                    .is_ok());
  }
  const double raw = static_cast<double>(raw_file_bytes(system.atom_count(), kFrames));
  const double ratio = raw / static_cast<double>(writer.size_bytes());
  EXPECT_GT(ratio, 2.4) << "ratio " << ratio;
  EXPECT_LT(ratio, 4.5) << "ratio " << ratio;
}

TEST(XtcTest, IndexEnablesRandomAccess) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  XtcWriter writer;
  for (std::uint32_t f = 0; f < 6; ++f) {
    ASSERT_TRUE(writer.add_frame(f * 100, static_cast<float>(f) * 2.0f, system.box(),
                                 gen.next_frame())
                    .is_ok());
  }
  const auto index = build_xtc_index(writer.bytes()).value();
  ASSERT_EQ(index.size(), 6u);
  EXPECT_EQ(index[0].offset, 0u);
  for (std::uint32_t f = 0; f < 6; ++f) {
    EXPECT_EQ(index[f].step, f * 100);
    EXPECT_FLOAT_EQ(index[f].time_ps, static_cast<float>(f) * 2.0f);
  }
  // Decode frames out of order via the index; match sequential decode.
  const auto sequential = read_all_xtc(writer.bytes()).value();
  for (const std::uint32_t f : {4u, 1u, 5u, 0u}) {
    const auto frame = read_xtc_frame_at(writer.bytes(), index[f].offset).value();
    EXPECT_EQ(frame.step, sequential[f].step);
    EXPECT_EQ(frame.coords, sequential[f].coords);
  }
  EXPECT_FALSE(read_xtc_frame_at(writer.bytes(), writer.size_bytes() + 5).is_ok());
  EXPECT_FALSE(read_xtc_frame_at(writer.bytes(), 3).is_ok());  // mid-frame offset
}

TEST(XtcTest, IndexOfEmptyImage) {
  EXPECT_TRUE(build_xtc_index({}).value().empty());
}

TEST(XtcTest, IndexRejectsCorruptStream) {
  std::vector<std::uint8_t> junk(40, 0x11);
  EXPECT_FALSE(build_xtc_index(junk).is_ok());
}

// --- RAW --------------------------------------------------------------------------

TEST(RawTest, SizeFormulaMatchesPaperArithmetic) {
  // 43,520 atoms, 626 frames -> the paper's 327 MB raw dataset.
  const double bytes = static_cast<double>(raw_file_bytes(43'520, 626));
  EXPECT_NEAR(bytes / 1e6, 327.0, 1.0);
  // Per-frame size: 44-byte header + 12 bytes/atom.
  EXPECT_EQ(raw_frame_bytes(100), 44u + 1200u);
}

TEST(RawTest, RoundTripAndRandomAccess) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  RawTrajWriter writer(system.atom_count());
  std::vector<std::vector<float>> truth;
  for (std::uint32_t f = 0; f < 6; ++f) {
    truth.push_back(wiggle(system.reference_coords(), 0.01f, 100 + f));
    ASSERT_TRUE(writer.add_frame(f, static_cast<float>(f) * 2.0f, system.box(), truth.back())
                    .is_ok());
  }
  const auto image = writer.finish();
  EXPECT_EQ(image.size(), raw_file_bytes(system.atom_count(), 6));

  const auto reader = RawTrajReader::open(image).value();
  EXPECT_EQ(reader.atom_count(), system.atom_count());
  EXPECT_EQ(reader.frame_count(), 6u);
  // Random access out of order.
  for (std::uint32_t f : {3u, 0u, 5u, 2u}) {
    const auto frame = reader.frame(f).value();
    EXPECT_EQ(frame.step, f);
    EXPECT_EQ(frame.coords, truth[f]);  // RAW is bit-exact
  }
  EXPECT_FALSE(reader.frame(6).is_ok());
}

TEST(RawTest, WrongAtomCountRejected) {
  RawTrajWriter writer(10);
  std::vector<float> coords(9, 0.0f);  // 3 atoms, not 10
  EXPECT_FALSE(writer.add_frame(0, 0.0f, chem::Box{}, coords).is_ok());
}

TEST(RawTest, CorruptHeaderRejected) {
  RawTrajWriter writer(4);
  std::vector<float> coords(12, 1.0f);
  ASSERT_TRUE(writer.add_frame(0, 0.0f, chem::Box{}, coords).is_ok());
  auto image = writer.finish();
  auto bad = image;
  bad[0] = 'X';
  EXPECT_FALSE(RawTrajReader::open(bad).is_ok());
  // Truncation is detected by the size check.
  EXPECT_FALSE(RawTrajReader::open(std::span(image).subspan(0, image.size() - 1)).is_ok());
}

// --- subset extraction ----------------------------------------------------------------

TEST(SubsetTest, ExtractSubsetCopiesRuns) {
  std::vector<float> coords;
  for (int i = 0; i < 10; ++i) {
    coords.push_back(static_cast<float>(i));
    coords.push_back(static_cast<float>(i) + 0.1f);
    coords.push_back(static_cast<float>(i) + 0.2f);
  }
  const auto sel = chem::Selection::from_runs({{2, 4}, {7, 8}});
  const auto subset = extract_subset(coords, sel);
  ASSERT_EQ(subset.size(), 9u);
  EXPECT_FLOAT_EQ(subset[0], 2.0f);
  EXPECT_FLOAT_EQ(subset[3], 3.0f);
  EXPECT_FLOAT_EQ(subset[6], 7.0f);
  EXPECT_FLOAT_EQ(subset[8], 7.2f);
}

TEST(SubsetTest, EmptySelectionYieldsEmpty) {
  std::vector<float> coords(30, 1.0f);
  EXPECT_TRUE(extract_subset(coords, chem::Selection{}).empty());
}

}  // namespace
}  // namespace ada::formats
