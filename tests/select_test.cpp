// Tests for the atom-selection language: parsing, precedence, evaluation
// against brute force, and integration with the GPCR system.
#include <gtest/gtest.h>

#include "vmd/select.hpp"
#include "workload/gpcr_builder.hpp"

namespace ada::vmd {
namespace {

const chem::System& gpcr() {
  static const chem::System system = [] {
    workload::GpcrSpec spec = workload::GpcrSpec::tiny();
    spec.ligand_atoms = 12;
    return workload::GpcrSystemBuilder(spec).build();
  }();
  return system;
}

std::uint64_t count(const std::string& expression) {
  return atom_select(gpcr(), expression).value().count();
}

// --- category keywords ---------------------------------------------------------

TEST(SelectTest, CategoryKeywords) {
  EXPECT_EQ(count("protein"), gpcr().count_category(chem::Category::kProtein));
  EXPECT_EQ(count("water"), gpcr().count_category(chem::Category::kWater));
  EXPECT_EQ(count("lipid"), gpcr().count_category(chem::Category::kLipid));
  EXPECT_EQ(count("ion"), gpcr().count_category(chem::Category::kIon));
  EXPECT_EQ(count("ligand"), gpcr().count_category(chem::Category::kLigand));
  EXPECT_EQ(count("all"), gpcr().atom_count());
  EXPECT_EQ(count("none"), 0u);
}

TEST(SelectTest, CaseInsensitive) {
  EXPECT_EQ(count("PROTEIN"), count("protein"));
  EXPECT_EQ(count("Protein And Backbone"), count("protein and backbone"));
}

// --- boolean algebra --------------------------------------------------------------

TEST(SelectTest, UnionAndIntersection) {
  const auto p = count("protein");
  const auto w = count("water");
  EXPECT_EQ(count("protein or water"), p + w);  // disjoint categories
  EXPECT_EQ(count("protein and water"), 0u);
}

TEST(SelectTest, NotComplementsWithinSystem) {
  EXPECT_EQ(count("not protein"), gpcr().atom_count() - count("protein"));
  EXPECT_EQ(count("not all"), 0u);
  EXPECT_EQ(count("not none"), gpcr().atom_count());
}

TEST(SelectTest, PrecedenceNotOverAndOverOr) {
  // "not protein and water" == "(not protein) and water" == water.
  EXPECT_EQ(count("not protein and water"), count("water"));
  // "protein or water and ion" == "protein or (water and ion)" == protein.
  EXPECT_EQ(count("protein or water and ion"), count("protein"));
  // Parentheses override.
  EXPECT_EQ(count("(protein or water) and water"), count("water"));
}

TEST(SelectTest, DeMorganHolds) {
  EXPECT_EQ(count("not (protein or water)"), count("not protein and not water"));
}

// --- field matchers -----------------------------------------------------------------

TEST(SelectTest, NameMatchesBruteForce) {
  const auto selection = atom_select(gpcr(), "name CA CB").value();
  std::uint64_t expected = 0;
  for (std::uint32_t i = 0; i < gpcr().atom_count(); ++i) {
    const auto& name = gpcr().atom(i).name;
    if (name == "CA" || name == "CB") {
      ++expected;
      EXPECT_TRUE(selection.contains(i));
    } else {
      EXPECT_FALSE(selection.contains(i));
    }
  }
  EXPECT_EQ(selection.count(), expected);
  EXPECT_GT(expected, 0u);
}

TEST(SelectTest, ResnameMatcher) {
  EXPECT_EQ(count("resname POPC"), gpcr().count_category(chem::Category::kLipid));
  EXPECT_EQ(count("resname SOL"), gpcr().count_category(chem::Category::kWater));
  EXPECT_EQ(count("resname NOPE"), 0u);
}

TEST(SelectTest, BackboneIsProteinSubset) {
  const auto backbone = count("backbone");
  EXPECT_GT(backbone, 0u);
  EXPECT_LT(backbone, count("protein"));
  EXPECT_EQ(count("backbone and not protein"), 0u);
  // 4 backbone atoms per residue, some residues truncated.
  EXPECT_EQ(count("protein and name N CA C O"), backbone);
}

TEST(SelectTest, HeteroMatchesHetatmFlag) {
  const auto selection = atom_select(gpcr(), "hetero").value();
  for (std::uint32_t i = 0; i < gpcr().atom_count(); ++i) {
    EXPECT_EQ(selection.contains(i), gpcr().atom(i).hetatm) << i;
  }
}

TEST(SelectTest, IndexRanges) {
  EXPECT_EQ(count("index 0-9"), 10u);
  EXPECT_EQ(count("index 0-9 20-24"), 15u);
  EXPECT_EQ(count("index 5"), 1u);
  // Out-of-range indices clamp away silently.
  EXPECT_EQ(count("index 999999"), 0u);
  const auto selection = atom_select(gpcr(), "index 3-5").value();
  EXPECT_EQ(selection.runs().size(), 1u);
}

TEST(SelectTest, ResidRanges) {
  const auto selection = atom_select(gpcr(), "resid 1-3").value();
  for (std::uint32_t i = 0; i < gpcr().atom_count(); ++i) {
    const bool in = gpcr().atom(i).residue_seq >= 1 && gpcr().atom(i).residue_seq <= 3;
    EXPECT_EQ(selection.contains(i), in) << i;
  }
}

TEST(SelectTest, ElementMatcher) {
  const auto oxygens = atom_select(gpcr(), "element O").value();
  for (std::uint32_t i = 0; i < gpcr().atom_count(); ++i) {
    EXPECT_EQ(oxygens.contains(i), gpcr().atom(i).element == chem::Element::kOxygen) << i;
  }
  EXPECT_GT(count("element O"), 0u);
  EXPECT_GT(count("element Na Cl"), 0u);
}

TEST(SelectTest, ChainMatcher) {
  EXPECT_EQ(count("chain W"), gpcr().count_category(chem::Category::kWater));
  EXPECT_EQ(count("chain A and not protein"), 0u);
}

// --- composite expressions -------------------------------------------------------------

TEST(SelectTest, PaperStyleQueries) {
  // "everything except the solvent and ions" -- the MISC complement.
  EXPECT_EQ(count("not (water or ion)"),
            gpcr().atom_count() - count("water") - count("ion"));
  // Sidechain heavy atoms.
  const auto sidechain_heavy = count("protein and not backbone and not element H");
  EXPECT_GT(sidechain_heavy, 0u);
  EXPECT_LT(sidechain_heavy, count("protein"));
}

// --- parse errors ------------------------------------------------------------------------

TEST(SelectTest, ParseErrors) {
  EXPECT_FALSE(atom_select(gpcr(), "").is_ok());
  EXPECT_FALSE(atom_select(gpcr(), "bogus").is_ok());
  EXPECT_FALSE(atom_select(gpcr(), "protein and").is_ok());
  EXPECT_FALSE(atom_select(gpcr(), "(protein").is_ok());
  EXPECT_FALSE(atom_select(gpcr(), "protein)").is_ok());
  EXPECT_FALSE(atom_select(gpcr(), "name").is_ok());        // missing args
  EXPECT_FALSE(atom_select(gpcr(), "index abc").is_ok());
  EXPECT_FALSE(atom_select(gpcr(), "index 9-3").is_ok());
  EXPECT_FALSE(atom_select(gpcr(), "protein water").is_ok());  // missing operator
  EXPECT_FALSE(atom_select(gpcr(), "protein & water").is_ok());
}

TEST(SelectTest, ReusableCompiledExpression) {
  const auto expr = SelectionExpr::parse("protein and backbone").value();
  const auto a = expr.evaluate(gpcr());
  const auto b = expr.evaluate(gpcr());
  EXPECT_EQ(a, b);
  EXPECT_EQ(expr.to_string(), "(protein and backbone)");
}

TEST(SelectTest, ToStringRoundTripsSemantics) {
  for (const char* text :
       {"protein and not name CA", "resname POPC or water", "index 0-9 20-24",
        "not (water or ion)", "element O and resid 1-5"}) {
    const auto expr = SelectionExpr::parse(text).value();
    const auto reparsed = SelectionExpr::parse(expr.to_string()).value();
    EXPECT_EQ(expr.evaluate(gpcr()), reparsed.evaluate(gpcr())) << text;
  }
}

}  // namespace
}  // namespace ada::vmd
