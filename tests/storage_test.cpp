// Tests for device models, file-system models, memory tracking and energy.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "storage/device.hpp"
#include "storage/energy.hpp"
#include "storage/filesystem_model.hpp"
#include "storage/memory.hpp"

namespace ada::storage {
namespace {

// --- devices ------------------------------------------------------------------

TEST(DeviceTest, HddMatchesPaperTable4) {
  const DeviceSpec hdd = DeviceSpec::wd_hdd_1tb();
  EXPECT_DOUBLE_EQ(hdd.read_bandwidth, mb_per_s(126));
  EXPECT_GT(hdd.access_latency, 1e-3);  // mechanical seek
}

TEST(DeviceTest, SsdMatchesPaperTable4) {
  const DeviceSpec ssd = DeviceSpec::plextor_ssd_256gb();
  EXPECT_DOUBLE_EQ(ssd.read_bandwidth, mb_per_s(3000));
  EXPECT_DOUBLE_EQ(ssd.write_bandwidth, mb_per_s(1000));
  EXPECT_LT(ssd.access_latency, 1e-3);
}

TEST(DeviceTest, SsdReadsFasterThanHdd) {
  const BlockDevice hdd(DeviceSpec::wd_hdd_1tb());
  const BlockDevice ssd(DeviceSpec::plextor_ssd_256gb());
  const double bytes = 100 * kMB;
  EXPECT_GT(hdd.read_time(bytes), 20.0 * ssd.read_time(bytes));
}

TEST(DeviceTest, Raid50AggregatesSpindles) {
  const DeviceSpec raid = DeviceSpec::raid50_wd_hdd(10);
  // 8 data spindles at 126 MB/s ~ 1 GB/s streaming reads.
  EXPECT_NEAR(raid.read_bandwidth / 1e9, 1.008, 0.01);
  EXPECT_LT(raid.write_bandwidth, raid.read_bandwidth);  // parity penalty
}

TEST(DeviceTest, ReadTimeScalesWithRequests) {
  const BlockDevice hdd(DeviceSpec::wd_hdd_1tb());
  const double one = hdd.read_time(kMB, 1);
  const double many = hdd.read_time(kMB, 100);
  EXPECT_GT(many, one + 98.0 * hdd.spec().access_latency);
}

// --- filesystem models ------------------------------------------------------------

TEST(FsModelTest, ReadTimeDominatedByDeviceForLargeFiles) {
  const LocalFileSystemModel ext4(FsParams::ext4(), DeviceSpec::nvme_ssd_256gb());
  const double bytes = 800 * kMB;
  const double fs_time = ext4.read_file_time(bytes);
  const double raw_device = bytes / mb_per_s(3000);
  EXPECT_GT(fs_time, raw_device);
  EXPECT_LT(fs_time, raw_device * 1.1);  // metadata under 10% at this size
}

TEST(FsModelTest, XfsFewerExtentsThanExt4) {
  const LocalFileSystemModel ext4(FsParams::ext4(), DeviceSpec::wd_hdd_1tb());
  const LocalFileSystemModel xfs(FsParams::xfs(), DeviceSpec::wd_hdd_1tb());
  const double bytes = 10 * kGB;
  // Same device: XFS's larger extents mean fewer seeks, slightly faster.
  EXPECT_LT(xfs.read_file_time(bytes), ext4.read_file_time(bytes));
}

TEST(FsModelTest, WritesPayJournalOverhead) {
  const LocalFileSystemModel ext4(FsParams::ext4(), DeviceSpec::plextor_ssd_256gb());
  const double bytes = 100 * kMB;
  EXPECT_GT(ext4.write_file_time(bytes), bytes / mb_per_s(1000));
}

TEST(FsModelTest, ZeroByteFileCostsMetadataOnly) {
  const LocalFileSystemModel ext4(FsParams::ext4(), DeviceSpec::plextor_ssd_256gb());
  EXPECT_GT(ext4.read_file_time(0), 0.0);
  EXPECT_LT(ext4.read_file_time(0), 1e-3);
}

// --- memory -------------------------------------------------------------------------

TEST(MemoryTest, TracksUsageAndPeak) {
  MemoryTracker memory(1000.0, 0.0);
  EXPECT_TRUE(memory.allocate("a", 400).is_ok());
  EXPECT_TRUE(memory.allocate("b", 300).is_ok());
  EXPECT_DOUBLE_EQ(memory.in_use(), 700);
  memory.free("a");
  EXPECT_DOUBLE_EQ(memory.in_use(), 300);
  EXPECT_DOUBLE_EQ(memory.peak(), 700);
  EXPECT_DOUBLE_EQ(memory.charged("b"), 300);
  EXPECT_DOUBLE_EQ(memory.charged("a"), 0);
}

TEST(MemoryTest, OomLatchesAndRejects) {
  MemoryTracker memory(1000.0, 0.0);
  EXPECT_TRUE(memory.allocate("frames", 900).is_ok());
  const Status s = memory.allocate("more", 200);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(memory.oom_occurred());
  // Usage unchanged by the failed allocation.
  EXPECT_DOUBLE_EQ(memory.in_use(), 900);
}

TEST(MemoryTest, OsReserveShrinksUsable) {
  MemoryTracker memory(1000.0, 0.10);
  EXPECT_DOUBLE_EQ(memory.usable(), 900.0);
  EXPECT_FALSE(memory.allocate("x", 950).is_ok());
  EXPECT_TRUE(memory.allocate("x", 890).is_ok());
}

TEST(MemoryTest, FatNodeKillPointsMatchPaper) {
  // Paper Section 4.3: 1,876,800 frames need 300 GB (compressed) + 979.8 GB
  // (raw) -- killed on the 1007 GB node; ADA(protein) at the same point
  // needs only 415.8 GB -- survives.
  MemoryTracker xfs_node(1007 * kGB);
  EXPECT_TRUE(xfs_node.allocate("compressed", 300 * kGB).is_ok());
  EXPECT_FALSE(xfs_node.allocate("raw", 979.8 * kGB).is_ok());
  EXPECT_TRUE(xfs_node.oom_occurred());

  MemoryTracker ada_node(1007 * kGB);
  EXPECT_TRUE(ada_node.allocate("protein", 415.8 * kGB).is_ok());
  EXPECT_FALSE(ada_node.oom_occurred());
  // ...but the 5,004,800-frame protein load (1,108.8 GB) exceeds the node.
  MemoryTracker ada_node2(1007 * kGB);
  EXPECT_FALSE(ada_node2.allocate("protein", 1108.8 * kGB).is_ok());
}

TEST(MemoryTest, ResetClearsCharges) {
  MemoryTracker memory(100.0, 0.0);
  ASSERT_TRUE(memory.allocate("x", 60).is_ok());
  memory.reset();
  EXPECT_DOUBLE_EQ(memory.in_use(), 0.0);
  EXPECT_TRUE(memory.allocate("y", 90).is_ok());
}

// --- energy --------------------------------------------------------------------------

TEST(EnergyTest, BaselineIntegration) {
  EnergyMeter meter(PowerSpec::paper_node());
  meter.record({"idle", 10.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(meter.joules(), 4000.0);  // 400 W x 10 s
}

TEST(EnergyTest, ActivityAddsPower) {
  PowerSpec spec;
  spec.baseline_w = 400;
  spec.cpu_active_w = 100;
  spec.disk_active_w = 20;
  EnergyMeter meter(spec);
  meter.record({"decompress", 10.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(meter.joules(), 5000.0);
  meter.record({"retrieve", 5.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(meter.joules(), 5000.0 + 2100.0);
  EXPECT_DOUBLE_EQ(meter.metered_seconds(), 15.0);
}

TEST(EnergyTest, MultiNodeScales) {
  EnergyMeter meter(PowerSpec::paper_node(), 9);
  meter.record({"idle", 1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(meter.joules(), 9 * 400.0);
}

TEST(EnergyTest, PhaseAttribution) {
  EnergyMeter meter(PowerSpec::paper_node());
  meter.record({"render", 2.0, 0.5, 0.0});
  meter.record({"retrieve", 1.0, 0.0, 1.0});
  meter.record({"render", 1.0, 0.5, 0.0});
  EXPECT_NEAR(meter.phase_joules("render"), 3.0 * (400 + 0.5 * 95), 1e-9);
  EXPECT_NEAR(meter.phase_joules("retrieve"), 400 + 25, 1e-9);
  EXPECT_NEAR(meter.phase_joules("render") + meter.phase_joules("retrieve"), meter.joules(), 1e-9);
}

}  // namespace
}  // namespace ada::storage
