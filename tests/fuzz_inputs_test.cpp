// Fuzz-style robustness tests for every user-facing text surface: the PDB
// parser, the label file, the categorizer schema, the selection language and
// the command interpreter.  Random inputs must produce clean errors or valid
// results -- never crashes or unbounded work.
#include <gtest/gtest.h>

#include "ada/label_store.hpp"
#include "ada/schema_config.hpp"
#include "common/rng.hpp"
#include "formats/pdb.hpp"
#include "vmd/command.hpp"
#include "vmd/mol.hpp"
#include "vmd/select.hpp"
#include "workload/gpcr_builder.hpp"

namespace ada {
namespace {

std::string random_text(Rng& rng, std::size_t max_len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 \n\t()-.,#:/";
  const std::size_t len = rng.uniform_index(max_len);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.uniform_index(sizeof(kAlphabet) - 1)];
  }
  return out;
}

/// Mutate a valid document: splice random text into random positions.
std::string mutate(Rng& rng, const std::string& base) {
  std::string out = base;
  const int edits = 1 + static_cast<int>(rng.uniform_index(5));
  for (int e = 0; e < edits; ++e) {
    const std::size_t pos = rng.uniform_index(out.size() + 1);
    out.insert(pos, random_text(rng, 12));
  }
  return out;
}

TEST(FuzzTest, PdbParserSurvivesRandomText) {
  Rng rng(1001);
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = formats::parse_pdb(random_text(rng, 400));
    if (result.is_ok()) {
      EXPECT_GT(result.value().atom_count(), 0u);
    }
  }
}

TEST(FuzzTest, PdbParserSurvivesMutatedRealDocuments) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const std::string pristine = formats::write_pdb(system);
  Rng rng(1002);
  for (int trial = 0; trial < 60; ++trial) {
    const auto result = formats::parse_pdb(mutate(rng, pristine));
    if (result.is_ok()) {
      // Mutations may drop/garble atoms but never invent more than the
      // document's line count allows.
      EXPECT_LE(result.value().atom_count(), system.atom_count() + 64);
    }
  }
}

TEST(FuzzTest, LabelFileDecoderSurvives) {
  Rng rng(1003);
  const auto labels =
      core::categorize_protein_misc(workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build());
  const std::string pristine = core::encode_label_file(labels);
  for (int trial = 0; trial < 200; ++trial) {
    const auto mutated = mutate(rng, pristine);
    const auto result = core::decode_label_file(mutated);
    if (result.is_ok()) {
      // Whatever decoded is internally consistent.
      for (const auto& [tag, selection] : result.value().groups) {
        EXPECT_FALSE(tag.empty());
      }
    }
  }
}

TEST(FuzzTest, SchemaParserSurvives) {
  Rng rng(1004);
  for (int trial = 0; trial < 300; ++trial) {
    const auto result = core::CategorizerSchema::parse(random_text(rng, 200));
    if (result.is_ok()) {
      EXPECT_GE(result.value().rule_count() + 1, 1u);  // parsed something sane
    }
  }
}

TEST(FuzzTest, SelectionLanguageSurvives) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  Rng rng(1005);
  // Random token soup from the language's own vocabulary plus junk.
  const char* kWords[] = {"protein", "water",  "and", "or",  "not",   "(",      ")",
                          "name",    "CA",     "resid", "0-5", "index", "zzz",  "all",
                          "none",    "element", "O",    "chain", "A",  "backbone"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string expression;
    const int words = 1 + static_cast<int>(rng.uniform_index(8));
    for (int w = 0; w < words; ++w) {
      expression += kWords[rng.uniform_index(std::size(kWords))];
      expression += ' ';
    }
    const auto result = vmd::atom_select(system, expression);
    if (result.is_ok()) {
      EXPECT_LE(result.value().count(), system.atom_count());
    }
  }
}

TEST(FuzzTest, CommandInterpreterSurvives) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  vmd::MolSession session;
  ASSERT_TRUE(session.mol_new_text(formats::write_pdb(system)).is_ok());
  vmd::CommandInterpreter interpreter(session);
  Rng rng(1006);
  const char* kWords[] = {"mol",    "new",  "addfile", "tag",  "p",     "animate",
                          "goto",   "0",    "999",     "render", "snapshot", "info",
                          "measure", "rgyr", "rmsd",   "atomselect", "protein", "junk"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string line;
    const int words = static_cast<int>(rng.uniform_index(6));
    for (int w = 0; w < words; ++w) {
      line += kWords[rng.uniform_index(std::size(kWords))];
      line += ' ';
    }
    const auto result = interpreter.execute(line);  // ok or clean error, never a crash
    (void)result;
  }
  // The session is still usable afterwards.
  EXPECT_TRUE(interpreter.execute("mol info").is_ok());
}

}  // namespace
}  // namespace ada
