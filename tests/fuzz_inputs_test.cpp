// Fuzz-style robustness tests for every user-facing surface: the PDB
// parser, the label file, the categorizer schema, the selection language,
// the command interpreter -- and the binary decode paths (XTC v2 streams,
// raw v2 coordinate frames, PLFS frame tables).  Random inputs must produce
// clean errors or valid results -- never crashes, hangs, or over-reads
// (the suite runs under ADA_SANITIZE in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <vector>

#include "ada/label_store.hpp"
#include "ada/middleware.hpp"
#include "ada/schema_config.hpp"
#include "codec/coord_codec.hpp"
#include "common/rng.hpp"
#include "formats/pdb.hpp"
#include "formats/xtc_file.hpp"
#include "plfs/container.hpp"
#include "vmd/command.hpp"
#include "vmd/mol.hpp"
#include "vmd/select.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada {
namespace {

std::string random_text(Rng& rng, std::size_t max_len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 \n\t()-.,#:/";
  const std::size_t len = rng.uniform_index(max_len);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.uniform_index(sizeof(kAlphabet) - 1)];
  }
  return out;
}

/// Mutate a valid document: splice random text into random positions.
std::string mutate(Rng& rng, const std::string& base) {
  std::string out = base;
  const int edits = 1 + static_cast<int>(rng.uniform_index(5));
  for (int e = 0; e < edits; ++e) {
    const std::size_t pos = rng.uniform_index(out.size() + 1);
    out.insert(pos, random_text(rng, 12));
  }
  return out;
}

TEST(FuzzTest, PdbParserSurvivesRandomText) {
  Rng rng(1001);
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = formats::parse_pdb(random_text(rng, 400));
    if (result.is_ok()) {
      EXPECT_GT(result.value().atom_count(), 0u);
    }
  }
}

TEST(FuzzTest, PdbParserSurvivesMutatedRealDocuments) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const std::string pristine = formats::write_pdb(system);
  Rng rng(1002);
  for (int trial = 0; trial < 60; ++trial) {
    const auto result = formats::parse_pdb(mutate(rng, pristine));
    if (result.is_ok()) {
      // Mutations may drop/garble atoms but never invent more than the
      // document's line count allows.
      EXPECT_LE(result.value().atom_count(), system.atom_count() + 64);
    }
  }
}

TEST(FuzzTest, LabelFileDecoderSurvives) {
  Rng rng(1003);
  const auto labels =
      core::categorize_protein_misc(workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build());
  const std::string pristine = core::encode_label_file(labels);
  for (int trial = 0; trial < 200; ++trial) {
    const auto mutated = mutate(rng, pristine);
    const auto result = core::decode_label_file(mutated);
    if (result.is_ok()) {
      // Whatever decoded is internally consistent.
      for (const auto& [tag, selection] : result.value().groups) {
        EXPECT_FALSE(tag.empty());
      }
    }
  }
}

TEST(FuzzTest, SchemaParserSurvives) {
  Rng rng(1004);
  for (int trial = 0; trial < 300; ++trial) {
    const auto result = core::CategorizerSchema::parse(random_text(rng, 200));
    if (result.is_ok()) {
      EXPECT_GE(result.value().rule_count() + 1, 1u);  // parsed something sane
    }
  }
}

TEST(FuzzTest, SelectionLanguageSurvives) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  Rng rng(1005);
  // Random token soup from the language's own vocabulary plus junk.
  const char* kWords[] = {"protein", "water",  "and", "or",  "not",   "(",      ")",
                          "name",    "CA",     "resid", "0-5", "index", "zzz",  "all",
                          "none",    "element", "O",    "chain", "A",  "backbone"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string expression;
    const int words = 1 + static_cast<int>(rng.uniform_index(8));
    for (int w = 0; w < words; ++w) {
      expression += kWords[rng.uniform_index(std::size(kWords))];
      expression += ' ';
    }
    const auto result = vmd::atom_select(system, expression);
    if (result.is_ok()) {
      EXPECT_LE(result.value().count(), system.atom_count());
    }
  }
}

TEST(FuzzTest, CommandInterpreterSurvives) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  vmd::MolSession session;
  ASSERT_TRUE(session.mol_new_text(formats::write_pdb(system)).is_ok());
  vmd::CommandInterpreter interpreter(session);
  Rng rng(1006);
  const char* kWords[] = {"mol",    "new",  "addfile", "tag",  "p",     "animate",
                          "goto",   "0",    "999",     "render", "snapshot", "info",
                          "measure", "rgyr", "rmsd",   "atomselect", "protein", "junk"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string line;
    const int words = static_cast<int>(rng.uniform_index(6));
    for (int w = 0; w < words; ++w) {
      line += kWords[rng.uniform_index(std::size(kWords))];
      line += ' ';
    }
    const auto result = interpreter.execute(line);  // ok or clean error, never a crash
    (void)result;
  }
  // The session is still usable afterwards.
  EXPECT_TRUE(interpreter.execute("mol info").is_ok());
}

// ---------------------------------------------------------------------------
// Binary surfaces: the v2 coordinate codec, the XTC v2 stream framing, and
// the PLFS per-extent frame tables.

/// A small but real v2 stream: drifting coordinates so prediction engages,
/// keyframe interval 3 so the stream mixes intra and predicted frames.
std::vector<std::uint8_t> make_v2_stream(Rng& rng, std::uint32_t atoms, std::uint32_t frames) {
  std::vector<float> coords(static_cast<std::size_t>(atoms) * 3);
  for (auto& c : coords) c = static_cast<float>(rng.uniform_index(4000)) * 0.001f;
  chem::Box box;
  box.matrix = {5.0f, 0.0f, 0.0f, 0.0f, 5.0f, 0.0f, 0.0f, 0.0f, 5.0f};
  formats::XtcWriter writer({}, codec::CodecVersion::kV2, /*keyframe_interval=*/3);
  for (std::uint32_t f = 0; f < frames; ++f) {
    for (auto& c : coords) {
      c += (static_cast<float>(rng.uniform_index(9)) - 4.0f) * 0.001f;
    }
    ADA_CHECK(writer.add_frame(f, 0.002f * static_cast<float>(f), box, coords).is_ok());
  }
  return writer.take();
}

/// Drain a (possibly hostile) XTC image through the streaming reader.  The
/// frame cap converts any would-be infinite loop into a test failure.
void drain_xtc(std::span<const std::uint8_t> image) {
  formats::XtcReader reader(image);
  for (int frame = 0; frame < 1000; ++frame) {
    const auto next = reader.next();
    if (!next.is_ok() || !next.value().has_value()) return;  // clean error or EOF
  }
  FAIL() << "reader never terminated on a " << image.size() << "-byte image";
}

TEST(FuzzTest, XtcV2DecoderSurvivesBitFlips) {
  Rng rng(2001);
  const auto pristine = make_v2_stream(rng, 80, 7);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupt = pristine;
    const int flips = 1 + static_cast<int>(rng.uniform_index(8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_index(corrupt.size());
      corrupt[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    }
    drain_xtc(corrupt);
  }
}

TEST(FuzzTest, XtcV2DecoderSurvivesTruncation) {
  Rng rng(2002);
  const auto pristine = make_v2_stream(rng, 80, 7);
  // Every prefix, including cuts inside the prelude, the frame table word,
  // and mid-payload.
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    drain_xtc(std::span(pristine.data(), len));
  }
}

TEST(FuzzTest, DecompressV2SurvivesRandomFrames) {
  Rng rng(2003);
  for (int trial = 0; trial < 500; ++trial) {
    codec::CompressedFrame frame;
    // Hostile headers: atom counts that lie about the payload, including
    // huge values that must be rejected before any allocation.
    frame.atom_count = static_cast<std::uint32_t>(rng.uniform_index(2) == 0
                                                      ? rng.uniform_index(64)
                                                      : rng.uniform_index(1u << 31));
    frame.precision = rng.uniform_index(2) == 0 ? 1000.0f
                                                : static_cast<float>(rng.uniform_index(3)) - 1.0f;
    for (int d = 0; d < 3; ++d) {
      frame.min_quantum[d] = static_cast<std::int32_t>(rng.uniform_index(1u << 31)) - (1 << 30);
      frame.full_bits[d] = static_cast<std::uint8_t>(rng.uniform_index(70));
    }
    frame.small_bits = static_cast<std::uint8_t>(rng.uniform_index(70));
    frame.predictor = static_cast<codec::Predictor>(rng.uniform_index(6));
    frame.payload.resize(rng.uniform_index(96));
    for (auto& b : frame.payload) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    frame.payload_bits = rng.uniform_index(2) == 0
                             ? frame.payload.size() * 8
                             : rng.uniform_index(std::uint64_t{1} << 40);  // lying bit count

    codec::PredictionContext ctx;
    if (rng.uniform_index(2) == 0) {
      // A plausible-but-possibly-mismatched context.
      ctx.precision = 1000.0f;
      ctx.prev1.assign(rng.uniform_index(64) * 3, 7);
      if (rng.uniform_index(2) == 0) ctx.prev2.assign(ctx.prev1.size(), 5);
    }
    const auto result = codec::decompress_v2(frame, ctx);
    if (result.is_ok()) {
      EXPECT_EQ(result.value().size(), static_cast<std::size_t>(frame.atom_count) * 3);
    }
  }
}

TEST(FuzzTest, StreamStateDecoderSurvivesHostileImages) {
  Rng rng(2005);
  // Random images of every plausible size: never a crash, and anything that
  // somehow decodes must satisfy the structural invariants a correct writer
  // guarantees (the CRC makes an accidental pass astronomically unlikely,
  // but the decoder may not rely on that for memory safety).
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> image(rng.uniform_index(64));
    for (auto& b : image) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto result = plfs::decode_stream_state(image);
    if (result.is_ok()) {
      EXPECT_LE(result.value().floor_frames, result.value().sealed_frames);
    }
  }

  // Multi-bit corruptions of a real image (the exhaustive single-bit sweep
  // lives in streaming_tail_test): clean error or invariant-satisfying
  // state, never a crash or over-read.
  plfs::StreamState state;
  state.sealed_frames = 1000;
  state.sealed_chunks = 20;
  state.floor_frames = 12;
  state.retention_drops = 4;
  const auto pristine = plfs::encode_stream_state(state);
  for (int trial = 0; trial < 400; ++trial) {
    auto corrupt = pristine;
    const int flips = 1 + static_cast<int>(rng.uniform_index(6));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_index(corrupt.size());
      corrupt[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    }
    const auto result = plfs::decode_stream_state(corrupt);
    if (result.is_ok()) {
      EXPECT_LE(result.value().floor_frames, result.value().sealed_frames);
    }
  }
}

TEST(FuzzTest, TornStreamIndexSuffixesDecodeToAPrefixOrFail) {
  // An index whose records carry streamed frame spans (kHasFrameBase), cut
  // at every byte -- the shape a torn index write leaves when a flush dies
  // mid-publish.  Decoding must return a clean error or an exact record
  // PREFIX of the original: never over-read, never invent or reorder a
  // record, never resurrect a half-written suffix.
  std::vector<plfs::IndexRecord> records;
  for (int i = 0; i < 6; ++i) {
    plfs::IndexRecord r;
    r.logical_offset = static_cast<std::uint64_t>(i) * 1000;
    r.length = 1000;
    r.backend = static_cast<std::uint32_t>(i % 2);
    r.label = (i % 2) != 0 ? "m" : "p";
    r.dropping = "dropping." + r.label + "." + std::to_string(i / 2);
    r.set_checksum(0x1234u + static_cast<std::uint32_t>(i));
    r.set_frame_table({0, 100, 300});
    r.set_frame_base(static_cast<std::uint64_t>(i / 2) * 3, 3);
    records.push_back(std::move(r));
  }
  const auto image = plfs::encode_index(records);
  const auto full = plfs::decode_index(image);
  ASSERT_TRUE(full.is_ok());
  ASSERT_EQ(full.value(), records);

  for (std::size_t len = 0; len < image.size(); ++len) {
    const auto result = plfs::decode_index(std::span(image.data(), len));
    if (!result.is_ok()) continue;
    ASSERT_LE(result.value().size(), records.size()) << "a " << len
        << "-byte truncation decoded MORE records than were encoded";
    for (std::size_t i = 0; i < result.value().size(); ++i) {
      EXPECT_EQ(result.value()[i], records[i])
          << "truncation at " << len << " altered record " << i;
    }
  }

  // Random splices and bit flips across the whole image: parse or reject,
  // never crash (the suite runs under ADA_SANITIZE in CI).
  Rng rng(2006);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupt = image;
    const int flips = 1 + static_cast<int>(rng.uniform_index(8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_index(corrupt.size());
      corrupt[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    }
    (void)plfs::decode_index(corrupt);
  }
}

TEST(FuzzTest, MutatedFrameTablesNeverCrashRangeQueries) {
  namespace fs = std::filesystem;
  const std::string root = testing::TempDir() + "/ada_fuzz_tables";
  fs::remove_all(root);
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  core::Ada ada(plfs::PlfsMount::open({{"ssd", root + "/ssd"}, {"hdd", root + "/hdd"}}).value(),
                config);

  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (std::uint32_t f = 0; f < 6; ++f) {
    const auto coords = gen.next_frame();
    ASSERT_TRUE(
        writer.add_frame(gen.current_step(), gen.current_time_ps(), system.box(), coords).is_ok());
  }
  ASSERT_TRUE(ada.ingest(system, writer.take(), "bar.xtc").is_ok());
  const auto pristine = ada.mount().read_index("bar.xtc").value();

  Rng rng(2004);
  for (int trial = 0; trial < 40; ++trial) {
    auto records = pristine;
    for (auto& record : records) {
      if (!record.has_frame_table() || rng.uniform_index(2) == 0) continue;
      auto table = record.frame_offsets;
      switch (rng.uniform_index(4)) {
        case 0:  // scramble entries
          for (auto& off : table) {
            if (rng.uniform_index(3) == 0) off = rng.uniform_index(std::uint64_t{1} << 40);
          }
          break;
        case 1:  // truncate
          table.resize(rng.uniform_index(table.size() + 1));
          break;
        case 2:  // pad with garbage entries
          for (int i = 0; i < 5; ++i) table.push_back(rng.uniform_index(std::uint64_t{1} << 40));
          break;
        default:  // off-by-small shifts
          for (auto& off : table) off += rng.uniform_index(32);
          break;
      }
      record.set_frame_table(std::move(table));
    }
    ASSERT_TRUE(ada.mount().rewrite_index("bar.xtc", records).is_ok());
    core::FrameRange range;
    range.begin = static_cast<std::uint32_t>(rng.uniform_index(10));
    range.end = range.begin + static_cast<std::uint32_t>(rng.uniform_index(10));
    range.stride = 1 + static_cast<std::uint32_t>(rng.uniform_index(4));
    // Ok (served or fallback) or a clean error -- never a crash or over-read.
    const auto result = ada.query("bar.xtc", core::kProteinTag, range);
    (void)result;
  }
  ASSERT_TRUE(ada.mount().rewrite_index("bar.xtc", pristine).is_ok());
  fs::remove_all(root);
}

}  // namespace
}  // namespace ada
