// Streaming-tail suite: sealed-prefix publishing and tail queries.
//
// A live IngestStream publishes every chunk flush as an atomic extension of
// the readable prefix: the chunk's extents land in the index first, then the
// sealed-frame watermark advances over them.  The invariants this battery
// locks down:
//
//   - every read issued while the stream runs (whole-subset, frame-range,
//     or tail) returns bytes that are EXACTLY a slice of the final dataset
//     at the watermark the reader observed -- never a torn frame, never an
//     unsealed chunk;
//   - the watermark is monotone under concurrent readers;
//   - sealed-prefix frame blocks survive a chunk flush in the query cache
//     (the flush extends the prefix instead of invalidating history);
//   - windowed retention raises the floor, actually unlinks droppings, and
//     turns reads below the floor into kOutOfRange;
//   - an interrupted stream is repairable: fsck classifies only the open
//     tail above the watermark, quarantines it, and seals -- the sealed
//     prefix stays readable bit for bit.
//
// The concurrent test runs writer and readers over *separate* Ada instances
// sharing backends, the same topology as an ada-ingest process flushing
// while ada-query processes poll.  Run under TSan via -DADA_SANITIZE=thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "ada/query_cache.hpp"
#include "common/binary_io.hpp"
#include "common/check.hpp"
#include "common/crc32c.hpp"
#include "common/faults.hpp"
#include "formats/raw_traj.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "plfs/container.hpp"
#include "plfs/fsck.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::core {
namespace {

namespace fs = std::filesystem;

// --- StreamState codec ---------------------------------------------------------------

TEST(StreamStateCodecTest, RoundTripsEveryField) {
  plfs::StreamState state;
  state.sealed = true;
  state.sealed_frames = 123456789;
  state.sealed_chunks = 77;
  state.floor_frames = 42;
  state.retention_drops = 9;
  const auto image = encode_stream_state(state);
  const auto back = plfs::decode_stream_state(image);
  ASSERT_TRUE(back.is_ok()) << back.error().to_string();
  EXPECT_EQ(back.value(), state);

  const auto empty = plfs::decode_stream_state(plfs::encode_stream_state(plfs::StreamState{}));
  ASSERT_TRUE(empty.is_ok());
  EXPECT_EQ(empty.value(), plfs::StreamState{});
}

TEST(StreamStateCodecTest, RejectsTruncationAndEveryBitFlip) {
  plfs::StreamState state;
  state.sealed_frames = 0xDEADBEEF;
  state.sealed_chunks = 3;
  const auto image = plfs::encode_stream_state(state);

  // Any truncation (including empty) and any extension must fail cleanly.
  for (std::size_t len = 0; len < image.size(); ++len) {
    const auto r = plfs::decode_stream_state(std::span(image.data(), len));
    ASSERT_FALSE(r.is_ok()) << "decoded a " << len << "-byte truncation";
    EXPECT_EQ(r.error().code(), ErrorCode::kCorruptData);
  }
  auto padded = image;
  padded.push_back(0);
  EXPECT_FALSE(plfs::decode_stream_state(padded).is_ok());

  // The trailing CRC makes every single-bit flip detectable.
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = image;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto r = plfs::decode_stream_state(flipped);
      EXPECT_FALSE(r.is_ok()) << "bit " << bit << " of byte " << byte << " went undetected";
    }
  }
}

TEST(StreamStateCodecTest, RejectsInconsistentFields) {
  // floor above the watermark can never be produced by a correct writer;
  // a state claiming it is corrupt, not merely odd.
  plfs::StreamState bad;
  bad.floor_frames = 10;
  bad.sealed_frames = 5;
  const auto r = plfs::decode_stream_state(plfs::encode_stream_state(bad));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kCorruptData);
}

// --- pipeline fixture ----------------------------------------------------------------

class StreamingTailTest : public testing::Test {
 protected:
  void SetUp() override {
    fault::Injector::global().disarm_all();
    root_ = testing::TempDir() + "/ada_stream_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    system_ = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
    labels_ = categorize_protein_misc(system_);
    obs::reset_all();
    obs::set_enabled(false);
  }
  void TearDown() override {
    fault::Injector::global().disarm_all();
    obs::set_enabled(false);
    obs::reset_all();
    fs::remove_all(root_);
  }

  /// A middleware over `subdir`'s backend pair.  Opening the same subdir
  /// twice models two processes sharing the deployment (writer + reader).
  std::unique_ptr<Ada> open_ada(const std::string& subdir, std::uint64_t cache_bytes = 0,
                                std::uint64_t retain_bytes = 0) {
    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    config.cache_bytes = cache_bytes;
    config.retain_bytes = retain_bytes;
    const std::string base = root_ + "/" + subdir;
    return std::make_unique<Ada>(
        plfs::PlfsMount::open({{"ssd", base + "/ssd"}, {"hdd", base + "/hdd"}}).value(),
        config);
  }

  /// Pre-generated frames so two streams (e.g. retained vs reference) can
  /// ingest bit-identical trajectories.
  struct Frames {
    std::vector<std::uint32_t> steps;
    std::vector<float> times;
    std::vector<std::vector<float>> coords;
  };
  Frames make_frames(std::uint32_t n) {
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    Frames out;
    for (std::uint32_t f = 0; f < n; ++f) {
      const auto frame = gen.next_frame();
      out.coords.emplace_back(frame.begin(), frame.end());
      out.steps.push_back(gen.current_step());
      out.times.push_back(gen.current_time_ps());
    }
    return out;
  }

  Status push(IngestStream& stream, const Frames& frames, std::uint32_t i) {
    return stream.add_frame(frames.steps[i], frames.times[i], system_.box(), frames.coords[i]);
  }

  std::string root_;
  chem::System system_;
  LabelMap labels_;
};

constexpr std::uint64_t kPlentyOfCache = 64u << 20;

// --- sealed-prefix visibility --------------------------------------------------------

TEST_F(StreamingTailTest, MidStreamReadsAreExactPrefixesOfTheFinalDataset) {
  auto writer = open_ada("prefix");
  auto reader = open_ada("prefix");  // separate instance, same backends
  const auto frames = make_frames(10);
  auto stream = writer->begin_stream(labels_, "live.xtc", /*chunk_frames=*/3);
  ASSERT_TRUE(stream.is_ok());

  // (watermark, bytes served at that watermark) per tag, captured mid-stream.
  std::map<Tag, std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>> observed;
  std::uint64_t last_watermark = 0;
  for (std::uint32_t f = 0; f < 10; ++f) {
    ASSERT_TRUE(push(stream.value(), frames, f).is_ok());
    const std::uint64_t watermark = stream.value().sealed_frames();
    EXPECT_GE(watermark, last_watermark) << "watermark moved backwards";
    if (watermark == last_watermark) continue;
    last_watermark = watermark;

    // A cold reader right now sees exactly the sealed prefix.
    const auto progress = reader->stream_progress("live.xtc").value();
    ASSERT_TRUE(progress.has_value());
    EXPECT_EQ(progress->sealed_frames, watermark);
    EXPECT_FALSE(progress->sealed);
    for (const Tag& tag : {kProteinTag, kMiscTag}) {
      const auto bytes = reader->query("live.xtc", tag);
      ASSERT_TRUE(bytes.is_ok()) << bytes.error().to_string();
      const auto cat = formats::RawTrajCatReader::open(bytes.value());
      ASSERT_TRUE(cat.is_ok());
      EXPECT_EQ(cat.value().frame_count(), watermark);
      observed[tag].emplace_back(watermark, bytes.value());
    }
  }
  EXPECT_EQ(last_watermark, 9u);  // 3 chunks sealed; the 10th frame is open
  const auto report = stream.value().finish();
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().frames, 10u);
  EXPECT_EQ(report.value().sealed_frames, 10u);

  for (const Tag& tag : {kProteinTag, kMiscTag}) {
    const auto final_bytes = reader->query("live.xtc", tag).value();
    EXPECT_EQ(formats::RawTrajCatReader::open(final_bytes).value().frame_count(), 10u);
    ASSERT_EQ(observed[tag].size(), 3u);
    for (const auto& [watermark, bytes] : observed[tag]) {
      ASSERT_LE(bytes.size(), final_bytes.size());
      EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), final_bytes.begin()))
          << "tag " << tag << " at watermark " << watermark
          << " served bytes that are not a prefix of the final dataset";
    }
  }
}

TEST_F(StreamingTailTest, MidStreamRangeQueriesMatchPostIngestRangeQueries) {
  auto writer = open_ada("range");
  auto reader = open_ada("range");
  const auto frames = make_frames(8);
  auto stream = writer->begin_stream(labels_, "live.xtc", /*chunk_frames=*/2);
  ASSERT_TRUE(stream.is_ok());

  // (range, bytes) captured while streaming; replayed against the sealed
  // container afterwards -- the range query must be time-invariant for any
  // range wholly below the watermark the reader saw.
  std::vector<std::pair<FrameRange, std::vector<std::uint8_t>>> observed;
  for (std::uint32_t f = 0; f < 8; ++f) {
    ASSERT_TRUE(push(stream.value(), frames, f).is_ok());
    const auto watermark = static_cast<std::uint32_t>(stream.value().sealed_frames());
    if (watermark < 2) continue;
    const FrameRange range{watermark - 2, watermark, 1};
    const auto bytes = reader->query("live.xtc", kProteinTag, range);
    ASSERT_TRUE(bytes.is_ok()) << bytes.error().to_string();
    observed.emplace_back(range, bytes.value());
    // Beyond the watermark there is nothing to serve yet: the selection
    // clamps to the sealed prefix.
    const auto beyond =
        reader->query("live.xtc", kProteinTag, FrameRange{watermark, watermark + 4, 1});
    ASSERT_TRUE(beyond.is_ok());
    EXPECT_EQ(formats::RawTrajReader::open(beyond.value()).value().frame_count(), 0u);
  }
  ASSERT_TRUE(stream.value().finish().is_ok());
  ASSERT_FALSE(observed.empty());
  for (const auto& [range, bytes] : observed) {
    EXPECT_EQ(reader->query("live.xtc", kProteinTag, range).value(), bytes)
        << "range [" << range.begin << ", " << range.end
        << ") served different bytes mid-stream than after sealing";
  }
}

TEST_F(StreamingTailTest, TailDrainReassemblesTheFullSubset) {
  auto writer = open_ada("tail");
  auto reader = open_ada("tail");
  const auto frames = make_frames(9);
  auto stream = writer->begin_stream(labels_, "live.xtc", /*chunk_frames=*/4);
  ASSERT_TRUE(stream.is_ok());

  // Drain exactly like ada-query --follow: poll, strip each batch's RAW
  // header, advance the cursor, stop at sealed && empty.
  std::uint64_t cursor = 0;
  std::vector<std::uint8_t> payload;
  auto drain = [&] {
    for (;;) {
      const auto chunk = reader->query_tail("live.xtc", kProteinTag, cursor);
      ASSERT_TRUE(chunk.is_ok()) << chunk.error().to_string();
      if (chunk.value().frames == 0) break;
      const auto raw = formats::RawTrajReader::open(chunk.value().image);
      ASSERT_TRUE(raw.is_ok());
      EXPECT_EQ(raw.value().frame_count(), chunk.value().frames);
      payload.insert(payload.end(), chunk.value().image.begin() + 16,
                     chunk.value().image.end());
      cursor += chunk.value().frames;
    }
  };
  for (std::uint32_t f = 0; f < 9; ++f) {
    ASSERT_TRUE(push(stream.value(), frames, f).is_ok());
    drain();
    EXPECT_EQ(cursor, stream.value().sealed_frames());
  }
  // Before the seal the drain saw only whole chunks...
  EXPECT_EQ(cursor, 8u);
  const auto pre_seal = reader->query_tail("live.xtc", kProteinTag, cursor).value();
  EXPECT_FALSE(pre_seal.sealed);
  EXPECT_EQ(pre_seal.frames, 0u);
  ASSERT_TRUE(stream.value().finish().is_ok());
  // ...and after it, the final partial chunk plus the sealed marker.
  drain();
  EXPECT_EQ(cursor, 9u);
  const auto done = reader->query_tail("live.xtc", kProteinTag, cursor).value();
  EXPECT_TRUE(done.sealed);
  EXPECT_EQ(done.frames, 0u);
  EXPECT_TRUE(done.image.empty());

  // The reassembled payload is the one-shot range query minus its header.
  const auto oneshot = reader->query("live.xtc", kProteinTag, FrameRange{0, 9, 1}).value();
  ASSERT_EQ(payload.size(), oneshot.size() - 16);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), oneshot.begin() + 16));
}

TEST_F(StreamingTailTest, TailQueryOnBatchContainerIsOneSealedChunk) {
  auto ada = open_ada("batch");
  const auto frames = make_frames(5);
  // A genuine batch ingest carries no stream state at all; query_tail must
  // still terminate a follower against it (everything already sealed).
  formats::XtcWriter xtc_writer;
  for (std::uint32_t f = 0; f < 5; ++f) {
    ASSERT_TRUE(xtc_writer
                    .add_frame(frames.steps[f], frames.times[f], system_.box(),
                               frames.coords[f])
                    .is_ok());
  }
  ASSERT_TRUE(ada->ingest(system_, xtc_writer.take(), "bar.xtc").is_ok());
  ASSERT_FALSE(ada->stream_progress("bar.xtc").value().has_value());

  const auto all = ada->query_tail("bar.xtc", kProteinTag, 0).value();
  EXPECT_TRUE(all.sealed);
  EXPECT_EQ(all.frames, 5u);
  EXPECT_EQ(all.image, ada->query("bar.xtc", kProteinTag, FrameRange{0, 5, 1}).value());

  // Mid-dataset and past-the-end cursors behave like a drained follower.
  const auto rest = ada->query_tail("bar.xtc", kProteinTag, 3).value();
  EXPECT_TRUE(rest.sealed);
  EXPECT_EQ(rest.frames, 2u);
  const auto done = ada->query_tail("bar.xtc", kProteinTag, 5).value();
  EXPECT_TRUE(done.sealed);
  EXPECT_EQ(done.frames, 0u);
  EXPECT_TRUE(done.image.empty());
}

// --- cache: the flush fence regression -----------------------------------------------

// Before this PR a chunk flush invalidated every cached entry of the
// dataset; now it only bumps the mutation clock.  Frame blocks wholly below
// the watermark key on the *rewrite* clock, which a flush leaves alone --
// so a follower re-reading sealed history across flushes stays cache-hot.
TEST_F(StreamingTailTest, SealedPrefixBlocksSurviveAChunkFlush) {
  auto ada = open_ada("cachefence", kPlentyOfCache);
  const auto frames = make_frames(64);
  // One chunk == one frame block (kFrameBlock = 32), so block 0 is full and
  // unclamped as soon as the first chunk seals.
  auto stream = ada->begin_stream(labels_, "live.xtc", /*chunk_frames=*/32);
  ASSERT_TRUE(stream.is_ok());
  for (std::uint32_t f = 0; f < 32; ++f) ASSERT_TRUE(push(stream.value(), frames, f).is_ok());

  const FrameRange block0{0, 32, 1};
  const auto cold = ada->query("live.xtc", kProteinTag, block0).value();
  const auto warm = ada->query("live.xtc", kProteinTag, block0).value();
  EXPECT_EQ(cold, warm);
  ASSERT_NE(ada->query_cache(), nullptr);
  const QueryCache::Stats before = ada->query_cache()->stats();
  EXPECT_EQ(before.hits, 1u);    // the warm read
  EXPECT_EQ(before.misses, 1u);  // the cold fill

  // Flush another chunk: history below the old watermark must stay cached.
  for (std::uint32_t f = 32; f < 64; ++f) ASSERT_TRUE(push(stream.value(), frames, f).is_ok());
  ASSERT_EQ(stream.value().sealed_frames(), 64u);

  const auto after_flush = ada->query("live.xtc", kProteinTag, block0).value();
  EXPECT_EQ(after_flush, cold);
  const QueryCache::Stats after = ada->query_cache()->stats();
  EXPECT_EQ(after.hits, before.hits + 1)
      << "a chunk flush evicted sealed-prefix blocks (the PR-5 fence regression)";
  EXPECT_EQ(after.misses, before.misses);

  // The new block is a fresh fill, and the old one keeps hitting.
  ASSERT_TRUE(stream.value().finish().is_ok());
  const auto both = ada->query("live.xtc", kProteinTag, FrameRange{0, 64, 1}).value();
  EXPECT_EQ(formats::RawTrajReader::open(both).value().frame_count(), 64u);
  const QueryCache::Stats full = ada->query_cache()->stats();
  EXPECT_EQ(full.hits, after.hits + 1);    // block 0 again
  EXPECT_EQ(full.misses, after.misses + 1);  // block 1 fill

  // Correctness floor under all that caching: a cold instance agrees.
  auto cold_reader = open_ada("cachefence");
  EXPECT_EQ(cold_reader->query("live.xtc", kProteinTag, FrameRange{0, 64, 1}).value(), both);
}

// A history-rewriting repair must still fence those same blocks.
TEST_F(StreamingTailTest, RewriteGenerationStillFencesFrameBlocks) {
  auto ada = open_ada("rewrite", kPlentyOfCache);
  const auto frames = make_frames(32);
  auto stream = ada->begin_stream(labels_, "live.xtc", /*chunk_frames=*/32);
  ASSERT_TRUE(stream.is_ok());
  for (std::uint32_t f = 0; f < 32; ++f) ASSERT_TRUE(push(stream.value(), frames, f).is_ok());
  ASSERT_TRUE(stream.value().finish().is_ok());

  const FrameRange block0{0, 32, 1};
  const auto before = ada->query("live.xtc", kProteinTag, block0).value();
  ASSERT_EQ(ada->query("live.xtc", kProteinTag, block0).value(), before);  // cached

  // Corrupt the protein dropping; repair quarantines it and rewrites the
  // index -- a rewrite-generation bump.  The cached block must NOT survive.
  const auto records = ada->mount().read_index("live.xtc").value();
  const auto p_record = std::find_if(records.begin(), records.end(), [](const auto& r) {
    return r.label == kProteinTag;
  });
  ASSERT_NE(p_record, records.end());
  const std::string path =
      ada->mount().dropping_host_path(p_record->backend, "live.xtc", p_record->dropping);
  auto bytes = read_file(path).value();
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(write_file(path, bytes).is_ok());
  ASSERT_TRUE(plfs::repair_container(ada->mount(), "live.xtc").is_ok());

  const auto after = ada->query("live.xtc", kProteinTag, block0);
  ASSERT_FALSE(after.is_ok()) << "a quarantined subset was served from a cached frame block";
}

// --- windowed retention --------------------------------------------------------------

TEST_F(StreamingTailTest, RetentionRaisesTheFloorAndUnlinksDroppings) {
  obs::reset_all();
  obs::set_enabled(true);
  // retain_bytes=1: after every flush only the newest sealed chunk stays.
  auto writer = open_ada("ret", 0, /*retain_bytes=*/1);
  auto reference = open_ada("ref");
  const auto frames = make_frames(12);

  auto retained = writer->begin_stream(labels_, "live.xtc", /*chunk_frames=*/2);
  auto full = reference->begin_stream(labels_, "live.xtc", /*chunk_frames=*/2);
  ASSERT_TRUE(retained.is_ok());
  ASSERT_TRUE(full.is_ok());
  for (std::uint32_t f = 0; f < 12; ++f) {
    ASSERT_TRUE(push(retained.value(), frames, f).is_ok());
    ASSERT_TRUE(push(full.value(), frames, f).is_ok());
  }
  const auto report = retained.value().finish().value();
  ASSERT_TRUE(full.value().finish().is_ok());
  EXPECT_EQ(report.frames, 12u);
  EXPECT_EQ(report.sealed_frames, 12u);
  EXPECT_EQ(report.floor_frames, 10u);      // only chunk [10, 12) survives
  EXPECT_EQ(report.retention_drops, 5u);    // 5 of 6 chunks dropped
  EXPECT_GE(obs::Registry::global().counter_value("stream.retention_drops"), 5u);

  auto reader = open_ada("ret");
  const auto state = reader->stream_progress("live.xtc").value();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->floor_frames, 10u);
  EXPECT_EQ(state->retention_drops, 5u);

  // Below the floor: typed kOutOfRange, from both query paths.
  const auto below = reader->query("live.xtc", kProteinTag, FrameRange{0, 5, 1});
  ASSERT_FALSE(below.is_ok());
  EXPECT_EQ(below.error().code(), ErrorCode::kOutOfRange);
  const auto tail_below = reader->query_tail("live.xtc", kProteinTag, 0);
  ASSERT_FALSE(tail_below.is_ok());
  EXPECT_EQ(tail_below.error().code(), ErrorCode::kOutOfRange);

  // At and above the floor: byte-identical to the unretained reference.
  const auto window = reader->query("live.xtc", kProteinTag, FrameRange{10, 12, 1});
  ASSERT_TRUE(window.is_ok()) << window.error().to_string();
  auto ref_reader = open_ada("ref");
  EXPECT_EQ(window.value(), ref_reader->query("live.xtc", kProteinTag, FrameRange{10, 12, 1}).value());
  const auto tail_window = reader->query_tail("live.xtc", kProteinTag, 10).value();
  EXPECT_TRUE(tail_window.sealed);
  EXPECT_EQ(tail_window.frames, 2u);

  // The dropped chunks' droppings are really gone from both backends (the
  // label file and the surviving chunk remain).
  std::size_t on_disk = 0;
  for (std::uint32_t b = 0; b < reader->mount().backend_count(); ++b) {
    on_disk += reader->mount().list_dropping_files(b, "live.xtc").value().size();
  }
  std::size_t reference_on_disk = 0;
  for (std::uint32_t b = 0; b < ref_reader->mount().backend_count(); ++b) {
    reference_on_disk += ref_reader->mount().list_dropping_files(b, "live.xtc").value().size();
  }
  EXPECT_LT(on_disk, reference_on_disk) << "retention never unlinked a dropping";

  // No orphans, no broken records, no open tail -- retention is clean.
  const auto verify = plfs::verify_container(reader->mount(), "live.xtc").value();
  EXPECT_TRUE(verify.broken_records.empty());
  EXPECT_TRUE(verify.orphan_droppings.empty());
  EXPECT_TRUE(verify.open_tail_records.empty());
  obs::set_enabled(false);
}

// --- interrupted streams + fsck ------------------------------------------------------

TEST_F(StreamingTailTest, FsckSealsAnInterruptedStreamQuarantiningOnlyTheOpenTail) {
  auto writer = open_ada("crash");
  auto reader = open_ada("crash");
  const auto frames = make_frames(6);
  {
    auto stream = writer->begin_stream(labels_, "live.xtc", /*chunk_frames=*/2);
    ASSERT_TRUE(stream.is_ok());
    for (std::uint32_t f = 0; f < 4; ++f) ASSERT_TRUE(push(stream.value(), frames, f).is_ok());
    ASSERT_EQ(stream.value().sealed_frames(), 4u);

    // Crash mid-flush: the chunk's extents land in the index, then the
    // watermark publish dies.  This is exactly the torn state a power cut
    // between the two atomic writes leaves behind.
    const fault::ScopedFault torn("plfs.write_stream_state", fault::Schedule::fail_nth(1));
    ASSERT_TRUE(push(stream.value(), frames, 4).is_ok());
    EXPECT_FALSE(push(stream.value(), frames, 5).is_ok());  // flush fails
    // The stream object is abandoned here, like the dead process's memory.
  }

  // Readers still see only the sealed prefix -- the indexer clamps the
  // orphan extents above the watermark.
  const auto prefix = reader->query("live.xtc", kProteinTag).value();
  EXPECT_EQ(formats::RawTrajCatReader::open(prefix).value().frame_count(), 4u);

  const auto verify = plfs::verify_container(reader->mount(), "live.xtc").value();
  EXPECT_TRUE(verify.stream_open);
  EXPECT_FALSE(verify.stream_state_corrupt);
  EXPECT_EQ(verify.open_tail_records.size(), 2u);  // one per tag (p, m)
  EXPECT_TRUE(verify.broken_records.empty()) << "the open tail was misclassified as broken";
  EXPECT_TRUE(verify.orphan_droppings.empty()) << "tail droppings are referenced, not orphans";
  EXPECT_FALSE(verify.clean());

  const auto actions = plfs::repair_container(reader->mount(), "live.xtc").value();
  EXPECT_EQ(actions.tail_records_dropped, 2u);
  EXPECT_EQ(actions.extents_quarantined, 0u);

  const auto after = plfs::verify_container(reader->mount(), "live.xtc").value();
  EXPECT_TRUE(after.open_tail_records.empty());
  EXPECT_FALSE(after.stream_open) << "repair did not seal the stream";

  // Sealed at the watermark: the prefix reads back bit for bit, and a tail
  // follower terminates cleanly.
  auto post = open_ada("crash");
  EXPECT_EQ(post->query("live.xtc", kProteinTag).value(), prefix);
  const auto state = post->stream_progress("live.xtc").value();
  ASSERT_TRUE(state.has_value());
  EXPECT_TRUE(state->sealed);
  EXPECT_EQ(state->sealed_frames, 4u);
  const auto done = post->query_tail("live.xtc", kProteinTag, 4).value();
  EXPECT_TRUE(done.sealed);
  EXPECT_EQ(done.frames, 0u);
}

TEST_F(StreamingTailTest, FsckReconstructsACorruptStreamStateFromTheIndex) {
  auto writer = open_ada("torn");
  const auto frames = make_frames(4);
  {
    auto stream = writer->begin_stream(labels_, "live.xtc", /*chunk_frames=*/2);
    ASSERT_TRUE(stream.is_ok());
    for (std::uint32_t f = 0; f < 4; ++f) ASSERT_TRUE(push(stream.value(), frames, f).is_ok());
  }  // abandoned unsealed at watermark 4

  auto reader = open_ada("torn");
  const auto before = reader->query("live.xtc", kProteinTag).value();

  // Bit-flip the on-disk state file (stream.plfs lives on backend 0).
  const std::string state_path = reader->mount().dropping_host_path(0, "live.xtc", "stream.plfs");
  auto image = read_file(state_path).value();
  image[image.size() / 2] ^= 0x10;
  ASSERT_TRUE(write_file(state_path, image).is_ok());

  ASSERT_FALSE(reader->stream_progress("live.xtc").is_ok());
  const auto verify = plfs::verify_container(reader->mount(), "live.xtc").value();
  EXPECT_TRUE(verify.stream_state_corrupt);
  EXPECT_FALSE(verify.clean());

  ASSERT_TRUE(plfs::repair_container(reader->mount(), "live.xtc").is_ok());

  // Repair derived the watermark from the index (both tags cover [0, 4))
  // and sealed there; the data reads back unchanged.
  auto post = open_ada("torn");
  const auto state = post->stream_progress("live.xtc").value();
  ASSERT_TRUE(state.has_value());
  EXPECT_TRUE(state->sealed);
  EXPECT_EQ(state->sealed_frames, 4u);
  EXPECT_EQ(state->floor_frames, 0u);
  EXPECT_EQ(post->query("live.xtc", kProteinTag).value(), before);
}

// --- the concurrent reader/writer battery --------------------------------------------

// Writer and readers run on separate Ada instances over shared backends --
// the multi-process topology, in-process so TSan can watch it.  Invariants:
// every whole-subset read is a byte-prefix of the final dataset; every
// drained tail batch is a verbatim slice; the watermark never regresses.
TEST_F(StreamingTailTest, ConcurrentReadersObserveMonotoneConsistentPrefixes) {
  constexpr std::uint32_t kFrames = 40;
  constexpr std::uint32_t kChunk = 4;
  const auto frames = make_frames(kFrames);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread writer_thread([&] {
    auto writer = open_ada("conc");
    auto stream = writer->begin_stream(labels_, "live.xtc", kChunk);
    if (!stream.is_ok()) {
      failures.fetch_add(1);
      done.store(true);
      return;
    }
    for (std::uint32_t f = 0; f < kFrames; ++f) {
      if (!push(stream.value(), frames, f).is_ok()) failures.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    if (!stream.value().finish().is_ok()) failures.fetch_add(1);
    done.store(true);
  });

  // Prefix readers: record (length, crc) of every successful whole-subset
  // read; validated against the final bytes after the threads join.
  struct Observation {
    std::size_t size;
    std::uint32_t crc;
  };
  constexpr std::size_t kReaders = 3;
  std::vector<std::vector<Observation>> prefix_reads(kReaders);
  std::vector<std::uint64_t> watermark_high(kReaders, 0);
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto reader = open_ada("conc");
      bool final_pass = false;
      while (!final_pass) {
        final_pass = done.load();  // one full iteration after the writer seals
        const auto progress = reader->stream_progress("live.xtc");
        if (progress.is_ok() && progress.value().has_value()) {
          const std::uint64_t w = progress.value()->sealed_frames;
          if (w < watermark_high[r]) failures.fetch_add(1);  // regression!
          watermark_high[r] = std::max(watermark_high[r], w);
        }
        const auto bytes = reader->query("live.xtc", kProteinTag);
        if (bytes.is_ok()) {
          prefix_reads[r].push_back(
              {bytes.value().size(),
               crc32c(bytes.value().data(), bytes.value().size())});
        } else if (bytes.error().code() != ErrorCode::kNotFound) {
          failures.fetch_add(1);  // only "not created yet" is acceptable
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }

  // Tail follower: drains exactly like ada-query --follow.
  std::vector<std::uint8_t> followed;
  std::thread follower([&] {
    auto reader = open_ada("conc");
    std::uint64_t cursor = 0;
    for (;;) {
      const auto chunk = reader->query_tail("live.xtc", kProteinTag, cursor);
      if (!chunk.is_ok()) {
        if (chunk.error().code() != ErrorCode::kNotFound) failures.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        continue;
      }
      if (chunk.value().frames != 0) {
        followed.insert(followed.end(), chunk.value().image.begin() + 16,
                        chunk.value().image.end());
        cursor += chunk.value().frames;
        continue;
      }
      if (chunk.value().sealed) break;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    if (cursor != kFrames) failures.fetch_add(1);
  });

  writer_thread.join();
  for (auto& t : readers) t.join();
  follower.join();
  ASSERT_EQ(failures.load(), 0);

  auto ground = open_ada("conc");
  const auto final_bytes = ground->query("live.xtc", kProteinTag).value();
  ASSERT_EQ(formats::RawTrajCatReader::open(final_bytes).value().frame_count(), kFrames);

  std::size_t validated = 0;
  for (std::size_t r = 0; r < kReaders; ++r) {
    EXPECT_EQ(watermark_high[r], kFrames);
    for (const auto& obs : prefix_reads[r]) {
      ASSERT_LE(obs.size, final_bytes.size());
      EXPECT_EQ(obs.crc, crc32c(final_bytes.data(), obs.size))
          << "reader " << r << " observed a " << obs.size
          << "-byte image that is not a prefix of the final dataset";
      ++validated;
    }
  }
  EXPECT_GT(validated, 0u) << "no reader ever completed a mid-stream read";

  // The follower's reassembly equals the whole subset as one canonical range.
  const auto oneshot = ground->query("live.xtc", kProteinTag, FrameRange{0, kFrames, 1}).value();
  ASSERT_EQ(followed.size(), oneshot.size() - 16);
  EXPECT_TRUE(std::equal(followed.begin(), followed.end(), oneshot.begin() + 16));
}

}  // namespace
}  // namespace ada::core
