// Query-side subset cache: unit tests (LRU mechanics, refcounted eviction,
// generation staleness, concurrent readers), the Ada integration (warm
// queries short-circuit the retriever; every write-path mutation --
// re-ingest/overwrite, stream chunk flush, fsck repair -- invalidates), the
// cache-on vs cache-off byte-identical differential, and regression tests
// for the read-path bugfix sweep that rode along (duplicate re-ingest,
// basename extension parsing, pre-sized untagged reads).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "ada/query_cache.hpp"
#include "ada/vfs.hpp"
#include "common/binary_io.hpp"
#include "common/check.hpp"
#include "formats/pdb.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plfs/fsck.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::core {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> image_of(std::size_t size, std::uint8_t fill) {
  return std::vector<std::uint8_t>(size, fill);
}

// --- QueryCache unit tests -----------------------------------------------------------

TEST(QueryCacheTest, HitMissAndLruEvictionUnderBudget) {
  QueryCache cache(/*budget_bytes=*/100, /*shard_count=*/1);
  cache.insert("a", "p", 1, image_of(40, 0xAA));
  cache.insert("b", "p", 1, image_of(40, 0xBB));
  ASSERT_NE(cache.lookup("a", "p", 1), nullptr);  // "a" is now most recent

  cache.insert("c", "p", 1, image_of(40, 0xCC));  // evicts LRU "b"
  EXPECT_EQ(cache.lookup("b", "p", 1), nullptr);
  const auto a = cache.lookup("a", "p", 1);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, image_of(40, 0xAA));
  ASSERT_NE(cache.lookup("c", "p", 1), nullptr);

  const QueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 80u);
  EXPECT_EQ(stats.misses, 1u);  // the "b" lookup
  EXPECT_EQ(stats.hits, 3u);
}

TEST(QueryCacheTest, DistinctTagsOfOneDatasetAreDistinctEntries) {
  QueryCache cache(1000, 1);
  cache.insert("a", "p", 1, image_of(10, 0x01));
  cache.insert("a", "m", 1, image_of(20, 0x02));
  EXPECT_EQ(*cache.lookup("a", "p", 1), image_of(10, 0x01));
  EXPECT_EQ(*cache.lookup("a", "m", 1), image_of(20, 0x02));
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(QueryCacheTest, OversizedImagesAreNotCached) {
  QueryCache cache(/*budget_bytes=*/64, /*shard_count=*/1);
  cache.insert("a", "p", 1, image_of(65, 0xAA));
  EXPECT_EQ(cache.lookup("a", "p", 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);  // nothing was sacrificed for it
}

TEST(QueryCacheTest, StaleGenerationMissesAndDropsTheEntry) {
  QueryCache cache(1000, 1);
  cache.insert("a", "p", /*generation=*/1, image_of(10, 0xAA));
  ASSERT_NE(cache.lookup("a", "p", 1), nullptr);
  // The container mutated (generation advanced): the entry is stale.
  EXPECT_EQ(cache.lookup("a", "p", 2), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_GE(cache.stats().invalidations, 1u);
  // A refill under the new generation serves again.
  cache.insert("a", "p", 2, image_of(10, 0xBB));
  EXPECT_EQ(*cache.lookup("a", "p", 2), image_of(10, 0xBB));
}

TEST(QueryCacheTest, InvalidateDropsEveryTagOfTheDataset) {
  QueryCache cache(1000, 1);
  cache.insert("a", "p", 1, image_of(10, 0x01));
  cache.insert("a", "m", 1, image_of(10, 0x02));
  cache.insert("b", "p", 1, image_of(10, 0x03));
  cache.invalidate("a");
  EXPECT_EQ(cache.lookup("a", "p", 1), nullptr);
  EXPECT_EQ(cache.lookup("a", "m", 1), nullptr);
  EXPECT_NE(cache.lookup("b", "p", 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(QueryCacheTest, EvictionNeverInvalidatesAnInFlightReader) {
  QueryCache cache(/*budget_bytes=*/64, /*shard_count=*/1);
  cache.insert("a", "p", 1, image_of(60, 0xAA));
  const QueryCache::Image held = cache.lookup("a", "p", 1);
  ASSERT_NE(held, nullptr);
  // Force "a" out of the cache entirely.
  cache.insert("b", "p", 1, image_of(60, 0xBB));
  EXPECT_EQ(cache.lookup("a", "p", 1), nullptr);
  // The reader's reference is still alive and intact.
  EXPECT_EQ(*held, image_of(60, 0xAA));
}

TEST(QueryCacheTest, ZeroBudgetCachesNothing) {
  QueryCache cache(0, 4);
  cache.insert("a", "p", 1, image_of(1, 0xAA));
  EXPECT_EQ(cache.lookup("a", "p", 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// Run under TSan via -DADA_SANITIZE=thread: concurrent readers, writers and
// invalidators on a deliberately tiny budget so eviction churns constantly.
// Every served image must be internally consistent for its key.
TEST(QueryCacheTest, ConcurrentReadersVsEvictionAndInvalidation) {
  QueryCache cache(/*budget_bytes=*/1024, /*shard_count=*/2);
  constexpr int kKeys = 8;
  constexpr int kIters = 4000;
  auto value_for = [](int key) {
    return std::vector<std::uint8_t>(256, static_cast<std::uint8_t>(key + 1));
  };

  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int key = (i + t) % kKeys;
        const std::string name = "ds" + std::to_string(key);
        if (const QueryCache::Image hit = cache.lookup(name, "p", 7)) {
          if (*hit != value_for(key)) bad.fetch_add(1);
        } else {
          cache.insert(name, "p", 7, value_for(key));
        }
        if (i % 97 == 0) cache.invalidate(name);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0) << "a reader observed bytes from the wrong entry";
  const QueryCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.bytes, 1024u);
}

// --- Ada integration -----------------------------------------------------------------

class QueryCachePipelineTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/ada_qcache_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    system_ = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
    obs::reset_all();
    obs::set_enabled(false);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_all();
    fs::remove_all(root_);
  }

  std::vector<std::uint8_t> make_xtc(std::uint32_t frames) {
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    formats::XtcWriter writer;
    for (std::uint32_t f = 0; f < frames; ++f) {
      ADA_CHECK(writer
                    .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                               gen.next_frame())
                    .is_ok());
    }
    return writer.take();
  }

  /// A middleware over `subdir`, optionally cached / overwrite-enabled.
  std::unique_ptr<Ada> open_ada(const std::string& subdir, std::uint64_t cache_bytes = 0,
                                bool overwrite = false) {
    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    config.cache_bytes = cache_bytes;
    config.overwrite = overwrite;
    const std::string base = root_ + "/" + subdir;
    return std::make_unique<Ada>(
        plfs::PlfsMount::open({{"ssd", base + "/ssd"}, {"hdd", base + "/hdd"}}).value(),
        config);
  }

  /// Count of index records carrying the reserved label file tag.
  std::size_t label_file_records(Ada& ada, const std::string& name) {
    const auto records = ada.mount().read_index(name).value();
    std::size_t n = 0;
    for (const auto& record : records) {
      if (record.label == kLabelFileTag) ++n;
    }
    return n;
  }

  std::string root_;
  chem::System system_;
};

constexpr std::uint64_t kPlentyOfCache = 64u << 20;

TEST_F(QueryCachePipelineTest, WarmQueryShortCircuitsTheRetriever) {
  obs::reset_all();
  obs::set_enabled(true);
  auto ada = open_ada("warm", kPlentyOfCache);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(3), "bar.xtc").is_ok());

  const auto cold = ada->query("bar.xtc", kProteinTag).value();
  const auto warm = ada->query("bar.xtc", kProteinTag).value();
  EXPECT_EQ(cold, warm) << "warm hit served different bytes";

  // The second query never reached the retriever.
  std::uint64_t retrieve_calls = 0;
  for (const auto& span : obs::span_stats()) {
    if (span.path == "query/retrieve") retrieve_calls = span.calls;
  }
  EXPECT_EQ(retrieve_calls, 1u);

  ASSERT_NE(ada->query_cache(), nullptr);
  const QueryCache::Stats stats = ada->query_cache()->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(obs::Registry::global().counter_value("cache.hits"), 1u);
  EXPECT_EQ(obs::Registry::global().counter_value("cache.misses"), 1u);
  EXPECT_GT(obs::Registry::global().gauge_value("cache.bytes"), 0.0);
  obs::set_enabled(false);
}

TEST_F(QueryCachePipelineTest, CacheOnAndOffAreByteIdentical) {
  const auto xtc = make_xtc(4);
  auto uncached = open_ada("off", 0);
  auto cached = open_ada("on", kPlentyOfCache);
  ASSERT_TRUE(uncached->ingest(system_, xtc, "bar.xtc").is_ok());
  ASSERT_TRUE(cached->ingest(system_, xtc, "bar.xtc").is_ok());
  EXPECT_EQ(uncached->query_cache(), nullptr);  // 0 budget = off entirely

  const auto tags = uncached->tags("bar.xtc").value();
  ASSERT_FALSE(tags.empty());
  for (int round = 0; round < 3; ++round) {  // round > 0 hits the cache
    for (const Tag& tag : tags) {
      EXPECT_EQ(uncached->query("bar.xtc", tag).value(), cached->query("bar.xtc", tag).value())
          << "tag " << tag << " round " << round;
    }
  }
  // The degraded (all-tags) read path is cached too and stays identical.
  const auto partial_off = uncached->query_degraded("bar.xtc").value();
  const auto partial_on = cached->query_degraded("bar.xtc").value();
  EXPECT_FALSE(partial_on.partial());
  EXPECT_EQ(partial_off.concat(), partial_on.concat());
}

TEST_F(QueryCachePipelineTest, ReIngestWithoutOverwriteFailsAlreadyExists) {
  auto ada = open_ada("dup", kPlentyOfCache);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(3), "bar.xtc").is_ok());
  const auto before = ada->query("bar.xtc", kProteinTag).value();
  ASSERT_EQ(label_file_records(*ada, "bar.xtc"), 1u);

  // Regression: this used to append duplicate subsets and a second label
  // file onto the live container.
  const auto again = ada->ingest(system_, make_xtc(5), "bar.xtc");
  ASSERT_FALSE(again.is_ok());
  EXPECT_EQ(again.error().code(), ErrorCode::kAlreadyExists);

  // The container is untouched: same single label file, same bytes.
  EXPECT_EQ(label_file_records(*ada, "bar.xtc"), 1u);
  EXPECT_EQ(ada->query("bar.xtc", kProteinTag).value(), before);
}

TEST_F(QueryCachePipelineTest, OverwriteReplacesAtomicallyAndInvalidates) {
  auto ada = open_ada("ow", kPlentyOfCache, /*overwrite=*/true);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(3), "bar.xtc").is_ok());
  const auto old_protein = ada->query("bar.xtc", kProteinTag).value();
  ASSERT_EQ(ada->query("bar.xtc", kProteinTag).value(), old_protein);  // now cached

  const auto xtc_new = make_xtc(5);
  const auto report = ada->ingest(system_, xtc_new, "bar.xtc");
  ASSERT_TRUE(report.is_ok()) << report.error().to_string();
  EXPECT_EQ(report.value().logical_name, "bar.xtc");

  // Ground truth: the same image ingested into a fresh deployment.
  auto reference = open_ada("ow_ref");
  ASSERT_TRUE(reference->ingest(system_, xtc_new, "bar.xtc").is_ok());
  const auto expected = reference->query("bar.xtc", kProteinTag).value();
  const auto served = ada->query("bar.xtc", kProteinTag).value();
  EXPECT_NE(served, old_protein) << "overwrite served stale cached bytes";
  EXPECT_EQ(served, expected);

  // Exactly one label file, no duplicate subsets, no staging leftovers.
  EXPECT_EQ(label_file_records(*ada, "bar.xtc"), 1u);
  EXPECT_FALSE(ada->mount().container_exists("bar.xtc.overwrite.tmp"));
  const auto containers = ada->mount().list_containers().value();
  EXPECT_EQ(containers, (std::vector<std::string>{"bar.xtc"}));
}

TEST_F(QueryCachePipelineTest, StreamChunkFlushAndSealInvalidate) {
  auto ada = open_ada("stream", kPlentyOfCache);
  const LabelMap labels = categorize_protein_misc(system_);
  auto stream = ada->begin_stream(labels, "live.xtc", /*chunk_frames=*/2);
  ASSERT_TRUE(stream.is_ok());

  workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
  auto push_frames = [&](std::uint32_t n) {
    for (std::uint32_t f = 0; f < n; ++f) {
      const auto frame = gen.next_frame();
      ASSERT_TRUE(stream.value()
                      .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(), frame)
                      .is_ok());
    }
  };

  push_frames(2);  // chunk 1 flushed: the tag is now durable and queryable
  const auto after_chunk1 = ada->query("live.xtc", kProteinTag).value();
  ASSERT_EQ(ada->query("live.xtc", kProteinTag).value(), after_chunk1);  // cached

  push_frames(2);  // chunk 2 flushed: the cached image is stale now
  const auto report = stream.value().finish();
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().frames, 4u);

  // A cold reader over the same backends is the ground truth.
  auto reference = open_ada("stream");  // same directories, no cache
  const auto expected = reference->query("live.xtc", kProteinTag).value();
  const auto served = ada->query("live.xtc", kProteinTag).value();
  EXPECT_NE(served, after_chunk1) << "stream flush did not invalidate the cache";
  EXPECT_EQ(served, expected);
  EXPECT_EQ(formats::RawTrajCatReader::open(served).value().frame_count(), 4u);
}

TEST_F(QueryCachePipelineTest, FsckRepairQuarantineInvalidates) {
  auto ada = open_ada("fsck", kPlentyOfCache);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(3), "bar.xtc").is_ok());
  const auto cached = ada->query("bar.xtc", kProteinTag).value();
  ASSERT_EQ(ada->query("bar.xtc", kProteinTag).value(), cached);  // warm

  // Flip one byte of the protein dropping on disk (silent media corruption).
  const auto records = ada->mount().read_index("bar.xtc").value();
  const auto p_record = std::find_if(records.begin(), records.end(), [](const auto& r) {
    return r.label == kProteinTag;
  });
  ASSERT_NE(p_record, records.end());
  const std::string path =
      ada->mount().dropping_host_path(p_record->backend, "bar.xtc", p_record->dropping);
  auto bytes = read_file(path).value();
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(write_file(path, bytes).is_ok());

  // fsck quarantines the extent and rewrites the index; that mutation must
  // fence the cached image -- the stale (pre-corruption) bytes are exactly
  // what a query must NOT serve once the subset is gone from the index.
  const auto actions = plfs::repair_container(ada->mount(), "bar.xtc");
  ASSERT_TRUE(actions.is_ok()) << actions.error().to_string();
  EXPECT_EQ(actions.value().extents_quarantined, 1u);

  const auto after = ada->query("bar.xtc", kProteinTag);
  ASSERT_FALSE(after.is_ok()) << "query served a quarantined subset from the cache";
  EXPECT_EQ(after.error().code(), ErrorCode::kNotFound);
  // Other tags still read fine (and may refill the cache).
  EXPECT_TRUE(ada->query("bar.xtc", kMiscTag).is_ok());
}

// --- read-path bugfix regressions ----------------------------------------------------

TEST_F(QueryCachePipelineTest, DottedDirectoriesDoNotConfuseInterception) {
  auto ada = open_ada("ext");
  // A dot in a directory component is not an extension.
  EXPECT_FALSE(ada->should_intercept("/runs.2026/traj", "vmd"));
  EXPECT_TRUE(ada->should_intercept("/runs.2026/traj.xtc", "vmd"));
  // A dotfile's leading dot is part of its name, not an extension
  // (regression: "/data/.xtc" used to be trapped as a trajectory).
  EXPECT_FALSE(ada->should_intercept("/data/.xtc", "vmd"));

  // The VFS shim shares the same parsing: an extension-less file under a
  // dotted directory passes through even for the target application.
  VfsShim shim(*ada, root_ + "/host");
  const std::string note = "plain bytes";
  ASSERT_TRUE(shim.write("/runs.2026/notes", "vmd",
                         std::span(reinterpret_cast<const std::uint8_t*>(note.data()),
                                   note.size()))
                  .is_ok());
  EXPECT_FALSE(shim.was_intercepted("notes"));
  const auto back = shim.read("/runs.2026/notes", "vmd").value();
  EXPECT_EQ(std::string(back.begin(), back.end()), note);
}

TEST_F(QueryCachePipelineTest, UntaggedVfsReadMatchesPerTagConcatenation) {
  auto ada = open_ada("vfsall", kPlentyOfCache);
  VfsShim shim(*ada, root_ + "/host");
  const std::string pdb = formats::write_pdb(system_);
  ASSERT_TRUE(shim.write("/runs.2026/foo.pdb", "vmd",
                         std::span(reinterpret_cast<const std::uint8_t*>(pdb.data()), pdb.size()))
                  .is_ok());
  ASSERT_TRUE(shim.write("/runs.2026/bar.xtc", "vmd", make_xtc(2)).is_ok());

  std::vector<std::uint8_t> expected;
  const auto tags = ada->tags("bar.xtc").value();
  for (const Tag& tag : tags) {
    const auto subset = ada->query("bar.xtc", tag).value();
    expected.insert(expected.end(), subset.begin(), subset.end());
  }
  // Twice: the second untagged read is served from the cache.
  EXPECT_EQ(shim.read("/mnt/bar.xtc", "vmd").value(), expected);
  EXPECT_EQ(shim.read("/mnt/bar.xtc", "vmd").value(), expected);
}

}  // namespace
}  // namespace ada::core
