// Frame-range query tests: the differential property suite behind
// `ctest -L check-range`.
//
// The contract under test: Ada::query(name, tag, range) is byte-identical to
// slicing the same frames out of the full-subset query -- across codec
// versions (v1/v2 streams), frame tables on/off (fast path vs fallback),
// cache on/off (block cache vs direct reads), and batch vs streamed
// (single- vs multi-extent) ingest.  The reference slicer below is an
// independent decode-and-re-emit, not the production slice code.
//
// Also here: the ingest compat matrix (v1 containers read by a v2-capable
// build and vice versa) and fsck over frame-table-bearing indexes (lying
// tables are flagged and repaired, and can never crash a range query).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "ada/vfs.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "plfs/fsck.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::core {
namespace {

namespace fs = std::filesystem;

// Independent reference: decode the full subset and re-emit the selected
// frames through a fresh RawTrajWriter.  Float payloads survive bit-exact
// (little-endian reads/writes are memcpy-based), so this is byte-identical
// to cutting the records out -- without sharing any code with the
// production fast path or fallback slicer.
std::vector<std::uint8_t> reference_slice(const std::vector<std::uint8_t>& full,
                                          const FrameRange& range) {
  const auto cat = formats::RawTrajCatReader::open(full).value();
  formats::RawTrajWriter writer(cat.atom_count());
  const std::uint64_t limit = std::min<std::uint64_t>(range.end, cat.frame_count());
  for (std::uint64_t g = range.begin; g < limit; g += range.stride) {
    const auto frame = cat.frame(static_cast<std::uint32_t>(g)).value();
    ADA_CHECK(writer.add_frame(frame.step, frame.time_ps, frame.box, frame.coords).is_ok());
  }
  return writer.finish();
}

class FrameRangeTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/ada_range_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    system_ = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  }
  void TearDown() override { fs::remove_all(root_); }

  std::vector<std::uint8_t> make_xtc(std::uint32_t frames,
                                     codec::CodecVersion version = codec::CodecVersion::kV1) {
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    formats::XtcWriter writer({}, version, /*keyframe_interval=*/8);
    for (std::uint32_t f = 0; f < frames; ++f) {
      ADA_CHECK(writer
                    .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                               gen.next_frame())
                    .is_ok());
    }
    return writer.take();
  }

  std::unique_ptr<Ada> open_ada(const std::string& subdir, bool frame_tables,
                                std::uint64_t cache_bytes, bool overwrite = false) {
    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    config.frame_tables = frame_tables;
    config.cache_bytes = cache_bytes;
    config.overwrite = overwrite;
    const std::string base = root_ + "/" + subdir;
    return std::make_unique<Ada>(
        plfs::PlfsMount::open({{"ssd", base + "/ssd"}, {"hdd", base + "/hdd"}}).value(), config);
  }

  // The ranges every configuration is checked against: whole, empty,
  // single-frame, off-the-end start, truncated end, stride > range, and a
  // handful of random ones.
  std::vector<FrameRange> probe_ranges(std::uint32_t frames) {
    std::vector<FrameRange> ranges = {
        {},                                  // every frame
        {0, 0, 1},                           // empty
        {frames / 2, frames / 2 + 1, 1},     // single frame
        {frames + 10, frames + 20, 1},       // fully off the end
        {frames - 1, frames + 100, 1},       // end clamped
        {2, frames, frames + 5},             // stride > range: first frame only
        {0, frames, 2},                      // even frames
        {1, frames, 3},
    };
    Rng rng(frames * 31u + 7u);
    for (int i = 0; i < 6; ++i) {
      FrameRange r;
      r.begin = static_cast<std::uint32_t>(rng.uniform_index(frames + 4));
      r.end = r.begin + static_cast<std::uint32_t>(rng.uniform_index(frames + 4));
      r.stride = 1 + static_cast<std::uint32_t>(rng.uniform_index(7));
      ranges.push_back(r);
    }
    return ranges;
  }

  // Every probe range, byte-compared against the independent slicer; ranged
  // queries run twice so a warm block cache is exercised when armed.
  void check_differential(Ada& ada, const std::string& name, std::uint32_t frames) {
    const auto tags = ada.tags(name).value();
    ASSERT_FALSE(tags.empty());
    for (const Tag& tag : tags) {
      const auto full = ada.query(name, tag).value();
      for (const FrameRange& range : probe_ranges(frames)) {
        const auto want = reference_slice(full, range);
        for (int round = 0; round < 2; ++round) {
          const auto got = ada.query(name, tag, range);
          ASSERT_TRUE(got.is_ok()) << got.error().to_string();
          ASSERT_EQ(got.value(), want)
              << "range [" << range.begin << "," << range.end << ") stride " << range.stride
              << " tag " << tag << " round " << round;
        }
      }
    }
  }

  std::string root_;
  chem::System system_;
};

constexpr std::uint64_t kPlentyOfCache = 64u << 20;

// --- differential property: batch ingest (one extent per tag) ------------------

class FrameRangeMatrixTest
    : public FrameRangeTest,
      public testing::WithParamInterface<std::tuple<codec::CodecVersion, bool, std::uint64_t>> {};

TEST_P(FrameRangeMatrixTest, BatchIngestMatchesReferenceSlice) {
  const auto [version, tables, cache_bytes] = GetParam();
  auto ada = open_ada("batch", tables, cache_bytes);
  constexpr std::uint32_t kFrames = 24;
  ASSERT_TRUE(ada->ingest(system_, make_xtc(kFrames, version), "bar.xtc").is_ok());
  check_differential(*ada, "bar.xtc", kFrames);
}

TEST_P(FrameRangeMatrixTest, StreamedIngestMatchesReferenceSlice) {
  const auto [version, tables, cache_bytes] = GetParam();
  (void)version;  // streams ingest decoded frames; codec version is moot
  auto ada = open_ada("stream", tables, cache_bytes);
  const LabelMap labels = categorize_protein_misc(system_);
  // chunk_frames=5 and 23 frames: extents of 5,5,5,5,3 per tag, so range
  // blocks span extent boundaries.
  auto stream = ada->begin_stream(labels, "seq.xtc", 5);
  ASSERT_TRUE(stream.is_ok());
  workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
  constexpr std::uint32_t kFrames = 23;
  for (std::uint32_t f = 0; f < kFrames; ++f) {
    const auto frame = gen.next_frame();
    ASSERT_TRUE(stream.value()
                    .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(), frame)
                    .is_ok());
  }
  ASSERT_TRUE(stream.value().finish().is_ok());
  check_differential(*ada, "seq.xtc", kFrames);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FrameRangeMatrixTest,
    testing::Combine(testing::Values(codec::CodecVersion::kV1, codec::CodecVersion::kV2),
                     testing::Bool(), testing::Values(std::uint64_t{0}, kPlentyOfCache)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == codec::CodecVersion::kV1 ? "v1" : "v2") +
             (std::get<1>(info.param) ? "_tables" : "_notables") +
             (std::get<2>(info.param) != 0 ? "_cached" : "_uncached");
    });

// --- fast path / fallback wiring ------------------------------------------------

TEST_F(FrameRangeTest, FastPathEngagesOnTableBearingContainers) {
  obs::reset_all();
  obs::set_enabled(true);
  auto ada = open_ada("fast", /*frame_tables=*/true, 0);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(12), "bar.xtc").is_ok());
  ASSERT_TRUE(ada->query("bar.xtc", kProteinTag, FrameRange{2, 9, 2}).is_ok());
  EXPECT_EQ(obs::Registry::global().counter_value("query.range.fallback"), 0u)
      << "table-bearing container should serve ranges without the fallback";
  obs::set_enabled(false);
  obs::reset_all();
}

TEST_F(FrameRangeTest, LegacyContainersFallBack) {
  obs::reset_all();
  obs::set_enabled(true);
  auto ada = open_ada("legacy", /*frame_tables=*/false, 0);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(12), "bar.xtc").is_ok());
  ASSERT_TRUE(ada->query("bar.xtc", kProteinTag, FrameRange{2, 9, 2}).is_ok());
  EXPECT_EQ(obs::Registry::global().counter_value("query.range.fallback"), 1u);
  obs::set_enabled(false);
  obs::reset_all();
}

TEST_F(FrameRangeTest, ZeroStrideRejected) {
  auto ada = open_ada("zstride", true, 0);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(4), "bar.xtc").is_ok());
  EXPECT_FALSE(ada->query("bar.xtc", kProteinTag, FrameRange{0, 4, 0}).is_ok());
}

TEST_F(FrameRangeTest, ReservedTagsRejected) {
  auto ada = open_ada("reserved", true, 0);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(4), "bar.xtc").is_ok());
  EXPECT_FALSE(ada->query("bar.xtc", kLabelFileTag, FrameRange{}).is_ok());
  EXPECT_FALSE(ada->query("bar.xtc", kOriginalTag, FrameRange{}).is_ok());
}

TEST_F(FrameRangeTest, VfsReadThreadsTheRange) {
  auto ada = open_ada("vfs", true, 0);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(10), "bar.xtc").is_ok());
  VfsShim shim(*ada, root_ + "/vfs_passthrough");
  const FrameRange range{1, 8, 3};
  const auto direct = ada->query("bar.xtc", kProteinTag, range).value();
  const auto via_vfs = shim.read("/mnt/bar.xtc", "vmd", kProteinTag, range);
  ASSERT_TRUE(via_vfs.is_ok());
  EXPECT_EQ(via_vfs.value(), direct);
  // A frame selection without a tag has no defined frame axis.
  EXPECT_FALSE(shim.read("/mnt/bar.xtc", "vmd", std::nullopt, range).is_ok());
}

TEST_F(FrameRangeTest, OverwriteInvalidatesCachedBlocks) {
  auto ada = open_ada("inval", true, kPlentyOfCache, /*overwrite=*/true);
  const auto first = make_xtc(16);
  ASSERT_TRUE(ada->ingest(system_, first, "bar.xtc").is_ok());
  const FrameRange range{3, 13, 2};
  const auto before = ada->query("bar.xtc", kProteinTag, range).value();  // fills blocks

  // Different dynamics seed: the replacement trajectory differs.
  workload::DynamicsSpec dynamics;
  dynamics.seed = 999;
  workload::TrajectoryGenerator gen(system_, dynamics);
  formats::XtcWriter writer;
  for (std::uint32_t f = 0; f < 16; ++f) {
    ASSERT_TRUE(writer
                    .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                               gen.next_frame())
                    .is_ok());
  }
  ASSERT_TRUE(ada->ingest(system_, writer.take(), "bar.xtc").is_ok());

  const auto after = ada->query("bar.xtc", kProteinTag, range).value();
  EXPECT_NE(after, before) << "stale cached blocks served after overwrite";
  EXPECT_EQ(after, reference_slice(ada->query("bar.xtc", kProteinTag).value(), range));
}

// --- ingest compat matrix -------------------------------------------------------

TEST_F(FrameRangeTest, TableAndTablelessIngestsStoreIdenticalSubsets) {
  // The frame table lives in the index only: the stored subset bytes (and
  // therefore every full query) are identical with tables on or off.
  const auto xtc = make_xtc(9);
  auto with_tables = open_ada("with", true, 0);
  auto without = open_ada("without", false, 0);
  ASSERT_TRUE(with_tables->ingest(system_, xtc, "bar.xtc").is_ok());
  ASSERT_TRUE(without->ingest(system_, xtc, "bar.xtc").is_ok());
  const auto tags = with_tables->tags("bar.xtc").value();
  for (const Tag& tag : tags) {
    EXPECT_EQ(with_tables->query("bar.xtc", tag).value(), without->query("bar.xtc", tag).value());
  }
}

TEST_F(FrameRangeTest, V1AndV2StreamsIngestToIdenticalSubsets) {
  // Same trajectory through both codecs: the decoded subsets must agree
  // frame for frame at the shared quantization grid, so queries (full and
  // ranged) are byte-identical -- the v2 rollout can't change what readers
  // see.
  auto v1 = open_ada("v1", true, 0);
  auto v2 = open_ada("v2", true, 0);
  ASSERT_TRUE(v1->ingest(system_, make_xtc(14, codec::CodecVersion::kV1), "bar.xtc").is_ok());
  ASSERT_TRUE(v2->ingest(system_, make_xtc(14, codec::CodecVersion::kV2), "bar.xtc").is_ok());
  const auto tags = v1->tags("bar.xtc").value();
  for (const Tag& tag : tags) {
    EXPECT_EQ(v1->query("bar.xtc", tag).value(), v2->query("bar.xtc", tag).value());
    const FrameRange range{2, 11, 3};
    EXPECT_EQ(v1->query("bar.xtc", tag, range).value(), v2->query("bar.xtc", tag, range).value());
  }
}

// --- fsck over frame tables -----------------------------------------------------

TEST_F(FrameRangeTest, FsckAcceptsHealthyFrameTables) {
  auto ada = open_ada("fsck_ok", true, 0);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(8), "bar.xtc").is_ok());
  const auto report = plfs::verify_container(ada->mount(), "bar.xtc").value();
  EXPECT_TRUE(report.clean());
  // The ingest actually produced tables (the fsck pass wasn't vacuous).
  bool saw_table = false;
  const auto records = ada->mount().read_index("bar.xtc").value();
  for (const auto& record : records) {
    saw_table |= record.has_frame_table();
  }
  EXPECT_TRUE(saw_table);
}

TEST_F(FrameRangeTest, FsckFlagsAndRepairsLyingFrameTables) {
  auto ada = open_ada("fsck_bad", true, 0);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(8), "bar.xtc").is_ok());

  // Corrupt the protein record's table: a non-monotonic entry and an
  // offset past the extent.
  auto records = ada->mount().read_index("bar.xtc").value();
  std::size_t corrupted = 0;
  for (auto& record : records) {
    if (record.label != kProteinTag || !record.has_frame_table()) continue;
    auto table = record.frame_offsets;
    ASSERT_GE(table.size(), 2u);
    table[1] = table[0];                      // not strictly increasing
    table.back() = record.length + 1000;      // out of bounds
    record.set_frame_table(std::move(table));
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);
  ASSERT_TRUE(ada->mount().rewrite_index("bar.xtc", records).is_ok());

  const auto report = plfs::verify_container(ada->mount(), "bar.xtc").value();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.broken_records.size(), corrupted);

  // A range query on the damaged container must return a Status (any
  // outcome but a crash/overread); after repair the record is gone and the
  // query fails cleanly.
  (void)ada->query("bar.xtc", kProteinTag, FrameRange{0, 8, 1});
  ASSERT_TRUE(plfs::repair_container(ada->mount(), "bar.xtc").is_ok());
  const auto after = plfs::verify_container(ada->mount(), "bar.xtc").value();
  EXPECT_TRUE(after.broken_records.empty());
}

TEST_F(FrameRangeTest, NonCanonicalTablesFallBackAndStayCorrect) {
  // A table that passes fsck's monotonic check but is not a canonical RAW
  // layout (first frame claimed at offset 0) must route to the fallback and
  // still serve exactly the right bytes.
  auto ada = open_ada("noncanon", true, 0);
  ASSERT_TRUE(ada->ingest(system_, make_xtc(8), "bar.xtc").is_ok());
  auto records = ada->mount().read_index("bar.xtc").value();
  for (auto& record : records) {
    if (record.label != kProteinTag || !record.has_frame_table()) continue;
    auto table = record.frame_offsets;
    for (auto& off : table) off -= 16;  // shift: still increasing, wrong base
    record.set_frame_table(std::move(table));
  }
  ASSERT_TRUE(ada->mount().rewrite_index("bar.xtc", records).is_ok());
  EXPECT_TRUE(plfs::verify_container(ada->mount(), "bar.xtc").value().clean());

  const FrameRange range{1, 7, 2};
  const auto got = ada->query("bar.xtc", kProteinTag, range);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), reference_slice(ada->query("bar.xtc", kProteinTag).value(), range));
}

}  // namespace
}  // namespace ada::core
