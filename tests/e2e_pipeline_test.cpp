// End-to-end differential harness for the observability layer.
//
// Runs the full GPCR pipeline (generate -> ingest -> query) twice -- once
// with metrics collection off, once with it on -- and proves the data path
// is byte-identical either way: instrumentation may observe the pipeline
// but never perturb it.  The metrics-on run is then reconciled against
// ground truth: every byte the dispatcher accounted for is a byte the PLFS
// containers actually hold, and the frame counters match the generator.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ada/middleware.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::core {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kFrames = 5;

class E2ePipelineTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/ada_e2e_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    system_ = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    formats::XtcWriter writer;
    for (std::uint32_t f = 0; f < kFrames; ++f) {
      ADA_CHECK(writer
                    .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                               gen.next_frame())
                    .is_ok());
    }
    xtc_ = writer.take();
    obs::reset_all();
    obs::set_enabled(false);
  }

  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_all();
    obs::set_trace_enabled(false);
    obs::reset_events();
    fs::remove_all(root_);
  }

  Ada make_ada(const std::string& subdir, unsigned threads = 1) {
    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    config.threads = threads;
    const std::string base = root_ + "/" + subdir;
    return Ada(
        plfs::PlfsMount::open({{"ssd", base + "/ssd"}, {"hdd", base + "/hdd"}}).value(),
        config);
  }

  // One complete pipeline pass: ingest the prepared trajectory into a fresh
  // deployment under `subdir`, then query every data tag back.
  std::map<Tag, std::vector<std::uint8_t>> run_pipeline(const std::string& subdir,
                                                        IngestReport* report_out = nullptr,
                                                        unsigned threads = 1) {
    Ada ada = make_ada(subdir, threads);
    const auto report = ada.ingest(system_, xtc_, "gpcr.xtc");
    ADA_CHECK(report.is_ok());
    if (report_out != nullptr) *report_out = report.value();
    std::map<Tag, std::vector<std::uint8_t>> subsets;
    for (const Tag& tag : {kProteinTag, kMiscTag}) {
      auto subset = ada.query("gpcr.xtc", tag);
      ADA_CHECK(subset.is_ok());
      subsets[tag] = std::move(subset).value();
    }
    return subsets;
  }

  std::string root_;
  chem::System system_;
  std::vector<std::uint8_t> xtc_;
};

TEST_F(E2ePipelineTest, MetricsOnAndOffProduceByteIdenticalSubsets) {
  // Pass 1: metrics hard off.
  obs::set_enabled(false);
  IngestReport report_off;
  const auto subsets_off = run_pipeline("off", &report_off);
  // Nothing may have been recorded.
  const obs::Snapshot off_snapshot = obs::capture();
  for (const auto& [name, value] : off_snapshot.counters) {
    EXPECT_EQ(value, 0u) << "metrics-off run recorded counter " << name;
  }
  for (const auto& span : off_snapshot.spans) {
    EXPECT_EQ(span.calls, 0u) << "metrics-off run recorded span " << span.path;
  }

  // Pass 2: metrics on, identical input, fresh deployment.
  obs::reset_all();
  obs::set_enabled(true);
  IngestReport report_on;
  const auto subsets_on = run_pipeline("on", &report_on);
  obs::set_enabled(false);

  // The observer must not perturb the observed: identical bytes both ways.
  ASSERT_EQ(subsets_off.size(), subsets_on.size());
  for (const auto& [tag, bytes_off] : subsets_off) {
    ASSERT_TRUE(subsets_on.count(tag)) << tag;
    EXPECT_EQ(bytes_off, subsets_on.at(tag)) << "tag " << tag << " differs with metrics on";
  }
  // And identical reports.
  EXPECT_EQ(report_off.preprocess.frames, report_on.preprocess.frames);
  EXPECT_EQ(report_off.preprocess.subset_bytes, report_on.preprocess.subset_bytes);
  EXPECT_EQ(report_off.backend_of_tag, report_on.backend_of_tag);
}

TEST_F(E2ePipelineTest, CountersReconcileWithContainerGroundTruth) {
  obs::reset_all();
  obs::set_enabled(true);
  Ada ada = make_ada("recon");
  const auto report = ada.ingest(system_, xtc_, "gpcr.xtc").value();

  const obs::Registry& registry = obs::Registry::global();

  // Frames counted == frames generated (== frames reported).
  EXPECT_EQ(registry.counter_value("ingest.frames"), kFrames);
  EXPECT_EQ(report.preprocess.frames, kFrames);

  // Every dispatched byte is accounted per tag, and the per-tag counters
  // sum to the total.
  std::uint64_t per_tag_sum = 0;
  for (const Tag& tag : {kProteinTag, kMiscTag, kLabelFileTag}) {
    per_tag_sum += registry.counter_value("ingest.dispatched_bytes." + tag);
  }
  const std::uint64_t dispatched = registry.counter_value("ingest.dispatched_bytes");
  EXPECT_EQ(per_tag_sum, dispatched);

  // Dispatched bytes == bytes the PLFS layer appended == bytes the
  // containers hold on disk (per tag and in total).
  EXPECT_EQ(dispatched, registry.counter_value("plfs.append.bytes"));
  std::uint64_t on_disk = 0;
  for (const Tag& tag : {kProteinTag, kMiscTag, kLabelFileTag}) {
    const std::uint64_t label_bytes = ada.subset_bytes("gpcr.xtc", tag).value();
    EXPECT_EQ(registry.counter_value("ingest.dispatched_bytes." + tag), label_bytes) << tag;
    on_disk += label_bytes;
  }
  EXPECT_EQ(dispatched, on_disk);

  // The data tags reconcile with the preprocessor's report too.
  for (const auto& [tag, bytes] : report.preprocess.subset_bytes) {
    EXPECT_EQ(registry.counter_value("ingest.dispatched_bytes." + tag), bytes) << tag;
  }

  // The read path accounts what it returns.
  const auto protein = ada.query("gpcr.xtc", kProteinTag).value();
  EXPECT_EQ(registry.counter_value("query.bytes_out"), protein.size());
  EXPECT_EQ(registry.counter_value("query.bytes_out." + kProteinTag), protein.size());
  obs::set_enabled(false);
}

TEST_F(E2ePipelineTest, StageSpansAndJsonCoverThePipeline) {
  obs::reset_all();
  obs::set_enabled(true);
  run_pipeline("spans");
  const obs::Snapshot snapshot = obs::capture();
  obs::set_enabled(false);

  // The span tree contains each pipeline stage, correctly nested.
  auto span_calls = [&](const std::string& path) -> std::uint64_t {
    for (const auto& span : snapshot.spans) {
      if (span.path == path) return span.calls;
    }
    return 0;
  };
  EXPECT_EQ(span_calls("categorize"), 1u);  // runs before ingest: its own root
  EXPECT_EQ(span_calls("ingest"), 1u);
  EXPECT_EQ(span_calls("ingest/preprocess"), 1u);
  EXPECT_EQ(span_calls("ingest/preprocess/decode"), kFrames + 1);  // +1 EOF probe
  EXPECT_EQ(span_calls("ingest/preprocess/split"), kFrames);
  EXPECT_GE(span_calls("ingest/dispatch"), 1u);
  EXPECT_EQ(span_calls("query"), 2u);
  EXPECT_EQ(span_calls("query/retrieve"), 2u);

  // The JSON document carries the acceptance-criteria names verbatim.
  const std::string json = obs::to_json(snapshot);
  for (const char* needle :
       {"\"version\":1", "\"ingest.frames\":", "\"ingest.bytes_in\":",
        "\"ingest.dispatched_bytes.p\":", "\"codec.decode.atoms\":",
        "\"path\":\"ingest/preprocess/decode\"", "\"path\":\"ingest/dispatch\"",
        "\"path\":\"query/retrieve\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "JSON missing " << needle;
  }
}

TEST_F(E2ePipelineTest, ParallelIngestMatchesSerialAcrossThreadCounts) {
  // Whole-pipeline differential over the thread budget: the frame-parallel
  // decode must leave every queried subset -- and the ingest report -- byte-
  // identical to the serial deployment, including with the full observability
  // stack (metrics + tracing) watching the parallel path.
  obs::set_enabled(false);
  IngestReport serial_report;
  const auto serial = run_pipeline("threads1", &serial_report, /*threads=*/1);

  for (const unsigned threads : {2u, 8u}) {
    IngestReport report;
    const auto subsets =
        run_pipeline("threads" + std::to_string(threads), &report, threads);
    ASSERT_EQ(serial.size(), subsets.size());
    for (const auto& [tag, bytes] : serial) {
      ASSERT_TRUE(subsets.count(tag)) << tag;
      EXPECT_EQ(bytes, subsets.at(tag)) << "tag " << tag << " @ " << threads << " threads";
    }
    EXPECT_EQ(serial_report.preprocess.frames, report.preprocess.frames);
    EXPECT_EQ(serial_report.preprocess.subset_bytes, report.preprocess.subset_bytes);
    EXPECT_EQ(serial_report.preprocess.subset_atoms, report.preprocess.subset_atoms);
    EXPECT_EQ(serial_report.backend_of_tag, report.backend_of_tag);
  }

  // Once more with the observers on: instrumentation may watch the parallel
  // pipeline but never perturb it.
  obs::reset_all();
  obs::set_enabled(true);
  obs::set_trace_enabled(true);
  IngestReport observed_report;
  const auto observed = run_pipeline("threads2_observed", &observed_report, /*threads=*/2);
  obs::set_trace_enabled(false);
  obs::set_enabled(false);
  ASSERT_EQ(serial.size(), observed.size());
  for (const auto& [tag, bytes] : serial) {
    EXPECT_EQ(bytes, observed.at(tag)) << "tag " << tag << " differs with observers on";
  }
  EXPECT_EQ(serial_report.preprocess.subset_bytes, observed_report.preprocess.subset_bytes);
  obs::reset_events();
}

TEST_F(E2ePipelineTest, TracingOnAndOffProduceByteIdenticalSubsets) {
  // Pass 1: tracing hard off -- the recorder must stay empty.
  obs::set_trace_enabled(false);
  obs::reset_events();
  IngestReport report_off;
  const auto subsets_off = run_pipeline("trace_off", &report_off);
  EXPECT_TRUE(obs::snapshot_events().empty()) << "tracing-off run recorded events";

  // Pass 2: tracing on, identical input, fresh deployment.
  obs::set_trace_enabled(true);
  IngestReport report_on;
  const auto subsets_on = run_pipeline("trace_on", &report_on);
  obs::set_trace_enabled(false);

  // The observer must not perturb the observed: identical bytes both ways.
  ASSERT_EQ(subsets_off.size(), subsets_on.size());
  for (const auto& [tag, bytes_off] : subsets_off) {
    ASSERT_TRUE(subsets_on.count(tag)) << tag;
    EXPECT_EQ(bytes_off, subsets_on.at(tag)) << "tag " << tag << " differs with tracing on";
  }
  EXPECT_EQ(report_off.preprocess.frames, report_on.preprocess.frames);
  EXPECT_EQ(report_off.preprocess.subset_bytes, report_on.preprocess.subset_bytes);
  EXPECT_EQ(report_off.backend_of_tag, report_on.backend_of_tag);

  // The traced run produced a coherent timeline: per trace id, begin and
  // end events pair exactly (same span ids, equal counts).
  const auto events = obs::snapshot_events();
  ASSERT_FALSE(events.empty());
  std::map<std::uint64_t, std::multiset<std::uint64_t>> begins_by_trace;
  std::map<std::uint64_t, std::multiset<std::uint64_t>> ends_by_trace;
  for (const obs::RawEvent& event : events) {
    if (event.phase == obs::RawEvent::Phase::kBegin) {
      begins_by_trace[event.trace_id].insert(event.span_id);
    } else if (event.phase == obs::RawEvent::Phase::kEnd) {
      ends_by_trace[event.trace_id].insert(event.span_id);
    }
  }
  ASSERT_FALSE(begins_by_trace.empty());
  EXPECT_EQ(begins_by_trace, ends_by_trace) << "begin/end events unbalanced per trace id";

  // Ingest and the two queries are separate requests: >= 3 distinct traces,
  // and the pipeline stages all show up.
  EXPECT_GE(begins_by_trace.size(), 3u);
  std::set<std::string> names;
  for (const obs::RawEvent& event : events) names.insert(event.name);
  for (const char* stage :
       {"ingest", "preprocess", "decode", "split", "dispatch", "plfs_append", "query",
        "retrieve", "plfs_read"}) {
    EXPECT_TRUE(names.count(stage)) << "missing stage " << stage;
  }

  // The export is valid Chrome JSON and parses back to the same event count
  // (metadata rows aside).
  const std::string json = obs::capture_chrome_json();
  const auto parsed = obs::parse_chrome_json(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().size(), events.size());
}

}  // namespace
}  // namespace ada::core
