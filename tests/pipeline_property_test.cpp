// Property tests over the scenario pipelines: invariants that must hold for
// any workload size on any platform, independent of calibration constants.
// The tail section covers the functional ingest pipeline: IngestStream's
// chunk-flush bookkeeping for arbitrary (chunk_frames, frames) pairs.
#include <gtest/gtest.h>

#include <filesystem>

#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "platform/pipeline.hpp"
#include "platform/platform.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::platform {
namespace {

const FrameProfile& profile() { return FrameProfile::paper_gpcr(); }

std::vector<Platform> all_platforms() {
  return {Platform::ssd_server(), Platform::small_cluster(), Platform::fat_node()};
}

const Scenario kScenarios[] = {Scenario::kCompressedFs, Scenario::kRawFs, Scenario::kAdaAll,
                               Scenario::kAdaProtein};

TEST(PipelinePropertyTest, TurnaroundDecomposesIntoPhases) {
  for (const auto& platform : all_platforms()) {
    for (const Scenario scenario : kScenarios) {
      const auto r =
          run_scenario(platform, scenario, WorkloadSizes::from_profile(profile(), 2000));
      EXPECT_NEAR(r.retrieval_s + r.preprocess_s + r.render_s, r.turnaround_s, 1e-9)
          << platform.name << " " << r.label;
    }
  }
}

TEST(PipelinePropertyTest, MonotoneInFrames) {
  // More frames never finish faster, use less memory, or burn less energy.
  Rng rng(31);
  for (const auto& platform : all_platforms()) {
    for (const Scenario scenario : kScenarios) {
      double prev_turnaround = 0;
      double prev_energy = 0;
      for (const std::uint64_t frames : {500u, 2000u, 5000u, 20000u}) {
        const auto r =
            run_scenario(platform, scenario, WorkloadSizes::from_profile(profile(), frames));
        if (r.oom) break;  // kill points truncate the series
        EXPECT_GE(r.turnaround_s, prev_turnaround) << platform.name << " " << r.label;
        EXPECT_GE(r.energy_joules, prev_energy) << platform.name << " " << r.label;
        prev_turnaround = r.turnaround_s;
        prev_energy = r.energy_joules;
      }
    }
  }
}

TEST(PipelinePropertyTest, AdaProteinNeverLosesOnTurnaround) {
  // The protein subset is a strict subset of what every other scenario moves
  // and renders; with identical CPU rates it can never be slower.
  for (const auto& platform : all_platforms()) {
    for (const std::uint64_t frames : {626u, 5006u, 100000u}) {
      const auto sizes = WorkloadSizes::from_profile(profile(), frames);
      const auto protein = run_scenario(platform, Scenario::kAdaProtein, sizes);
      if (protein.oom) continue;
      for (const Scenario other :
           {Scenario::kCompressedFs, Scenario::kRawFs, Scenario::kAdaAll}) {
        const auto r = run_scenario(platform, other, sizes);
        if (r.oom) continue;
        EXPECT_LE(protein.turnaround_s, r.turnaround_s * 1.001)
            << platform.name << " " << r.label << " @ " << frames;
      }
    }
  }
}

TEST(PipelinePropertyTest, AdaProteinUsesLeastMemory) {
  for (const auto& platform : all_platforms()) {
    const auto sizes = WorkloadSizes::from_profile(profile(), 5006);
    const auto results = run_all_scenarios(platform, sizes);
    const double protein_peak = results[3].memory_peak_bytes;
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_LT(protein_peak, results[i].memory_peak_bytes) << results[i].label;
    }
  }
}

TEST(PipelinePropertyTest, OomImpliesTruncation) {
  // A killed run must be no longer than the same scenario one step below its
  // kill point, and must end without a render phase completing fully.
  const auto platform = Platform::fat_node();
  const auto killed =
      run_scenario(platform, Scenario::kRawFs, WorkloadSizes::from_profile(profile(), 1'876'800));
  ASSERT_TRUE(killed.oom);
  // The raw retrieval itself overruns memory: no CPU phases after it.
  EXPECT_EQ(killed.phases.back().name, "retrieve");
}

TEST(PipelinePropertyTest, EnergyConsistentWithPower) {
  // Energy / turnaround must sit between baseline and max power per node.
  for (const auto& platform : all_platforms()) {
    const auto sizes = WorkloadSizes::from_profile(profile(), 3000);
    for (const auto& r : run_all_scenarios(platform, sizes)) {
      const double max_power =
          platform.power.baseline_w + platform.power.cpu_active_w + platform.power.disk_active_w;
      const double avg = r.energy_joules / r.turnaround_s / platform.metered_nodes;
      EXPECT_GE(avg, platform.power.baseline_w * 0.999) << platform.name << " " << r.label;
      EXPECT_LE(avg, max_power * 1.001) << platform.name << " " << r.label;
    }
  }
}

TEST(PipelinePropertyTest, CompressedAlwaysRetrievesFastestLocally) {
  // On local file systems the compressed file is ~1/3 of raw: its retrieval
  // must win regardless of scale.
  for (const auto& platform : {Platform::ssd_server(), Platform::fat_node()}) {
    for (const std::uint64_t frames : {626u, 5006u, 62560u}) {
      const auto sizes = WorkloadSizes::from_profile(profile(), frames);
      const auto c = run_scenario(platform, Scenario::kCompressedFs, sizes);
      const auto d = run_scenario(platform, Scenario::kRawFs, sizes);
      if (c.oom || d.oom) continue;
      EXPECT_LT(c.retrieval_s, d.retrieval_s) << platform.name << " @ " << frames;
    }
  }
}

TEST(PipelinePropertyTest, ThrashNeverShrinksTime) {
  // Identical scenario with thrash disabled must be at least as fast.
  Platform with = Platform::fat_node();
  Platform without = Platform::fat_node();
  without.thrash_k = 0.0;
  without.thrash_max_factor = 1.0;
  const auto sizes = WorkloadSizes::from_profile(profile(), 1'564'000);
  for (const Scenario scenario : kScenarios) {
    const auto a = run_scenario(with, scenario, sizes);
    const auto b = run_scenario(without, scenario, sizes);
    EXPECT_GE(a.turnaround_s, b.turnaround_s * 0.999) << a.label;
  }
}

TEST(PipelinePropertyTest, StripeOverrideNeverHelpsBeyondFull) {
  // Using fewer stripe servers can only slow cluster retrieval.
  const auto platform = Platform::small_cluster();
  const auto sizes = WorkloadSizes::from_profile(profile(), 6256);
  PipelineOptions narrow;
  narrow.stripe_servers_override = 1;
  const auto wide = run_scenario(platform, Scenario::kRawFs, sizes);
  const auto one = run_scenario(platform, Scenario::kRawFs, sizes, narrow);
  EXPECT_GE(one.retrieval_s, wide.retrieval_s);
}

}  // namespace
}  // namespace ada::platform

// --- streaming ingest chunking --------------------------------------------------------

namespace ada::core {
namespace {

// For any chunk size, the number of flushed chunks must bracket the frame
// count: every chunk but the last is full, the last holds at least one
// frame.  Checked both on the StreamReport and on the obs counters the
// flush path maintains (stream.frames / stream.chunks).
TEST(StreamChunkPropertyTest, FlushCountersBracketFrameCount) {
  namespace fs = std::filesystem;
  const std::string root = testing::TempDir() + "/ada_stream_prop";
  fs::remove_all(root);
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const auto labels = categorize_protein_misc(system);

  AdaConfig config;
  config.placement = PlacementPolicy::active_on_ssd(0, 1);
  Ada ada(plfs::PlfsMount::open({{"ssd", root + "/ssd"}, {"hdd", root + "/hdd"}}).value(),
          config);

  obs::Registry& registry = obs::Registry::global();
  obs::set_enabled(true);
  Rng rng(2026);
  for (int trial = 0; trial < 10; ++trial) {
    const auto chunk_frames = static_cast<std::uint32_t>(1 + rng.uniform_index(9));
    const auto frames = static_cast<std::uint32_t>(1 + rng.uniform_index(25));
    const std::string name = "trial" + std::to_string(trial) + ".xtc";

    const std::uint64_t frames_before = registry.counter_value("stream.frames");
    const std::uint64_t chunks_before = registry.counter_value("stream.chunks");

    auto stream = ada.begin_stream(labels, name, chunk_frames).value();
    workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
    for (std::uint32_t f = 0; f < frames; ++f) {
      ASSERT_TRUE(stream
                      .add_frame(gen.current_step(), gen.current_time_ps(), system.box(),
                                 gen.next_frame())
                      .is_ok());
    }
    const auto report = stream.finish().value();

    ASSERT_EQ(report.frames, frames) << "chunk_frames=" << chunk_frames;
    const std::uint64_t chunks = report.chunks;
    EXPECT_GE(chunks * chunk_frames, frames) << "chunk_frames=" << chunk_frames;
    EXPECT_GT(frames, (chunks - 1) * chunk_frames) << "chunk_frames=" << chunk_frames;

    // The instrumentation saw exactly what the report claims.
    EXPECT_EQ(registry.counter_value("stream.frames") - frames_before, frames);
    EXPECT_EQ(registry.counter_value("stream.chunks") - chunks_before, chunks);
  }
  obs::set_enabled(false);
  fs::remove_all(root);
}

}  // namespace
}  // namespace ada::core
