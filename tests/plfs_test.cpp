// Tests for the PLFS container layer: index codec (v1/v2), container
// lifecycle, multi-backend droppings, label reads, extent checksums, and the
// fault-injected retry paths.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/binary_io.hpp"
#include "common/crc32c.hpp"
#include "common/faults.hpp"
#include "plfs/container.hpp"
#include "plfs/plfs.hpp"

namespace ada::plfs {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// --- index codec -----------------------------------------------------------------

TEST(IndexCodecTest, RoundTrip) {
  std::vector<IndexRecord> records = {
      {0, 100, 0, "p", "dropping.p.0", 0},
      {100, 50, 1, "m", "dropping.m.1", 0},
      {150, 7, 0, "", "dropping.data.2", 32},
  };
  const auto image = encode_index(records);
  const auto decoded = decode_index(image).value();
  EXPECT_EQ(decoded, records);
}

TEST(IndexCodecTest, EmptyIndex) {
  const auto image = encode_index({});
  EXPECT_TRUE(decode_index(image).value().empty());
}

TEST(IndexCodecTest, BadMagicRejected) {
  auto image = encode_index({});
  image[0] = 'X';
  EXPECT_FALSE(decode_index(image).is_ok());
}

TEST(IndexCodecTest, TrailingGarbageRejected) {
  auto image = encode_index({{0, 1, 0, "p", "d", 0}});
  image.push_back(0xff);
  EXPECT_FALSE(decode_index(image).is_ok());
}

TEST(IndexCodecTest, TruncationRejected) {
  const auto image = encode_index({{0, 1, 0, "p", "d", 0}});
  EXPECT_FALSE(decode_index(std::span(image).subspan(0, image.size() - 3)).is_ok());
}

TEST(IndexCodecTest, LogicalSizeAndCompleteness) {
  std::vector<IndexRecord> records = {{0, 100, 0, "p", "a", 0}, {100, 50, 1, "m", "b", 0}};
  EXPECT_EQ(logical_size(records), 150u);
  EXPECT_TRUE(is_complete(records));
  records.push_back({200, 10, 0, "p", "c", 0});  // hole at [150,200)
  EXPECT_FALSE(is_complete(records));
  std::vector<IndexRecord> overlapping = {{0, 100, 0, "p", "a", 0}, {50, 100, 1, "m", "b", 0}};
  EXPECT_FALSE(is_complete(overlapping));
}

TEST(IndexCodecTest, V2RoundTripsChecksums) {
  IndexRecord checked = {0, 5, 0, "p", "d0", 0};
  checked.set_checksum(0xDEADBEEF);
  const IndexRecord unchecked = {5, 3, 1, "m", "d1", 0};  // no checksum flag
  const auto decoded = decode_index(encode_index({checked, unchecked})).value();
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_TRUE(decoded[0].has_checksum());
  EXPECT_EQ(decoded[0].crc32c, 0xDEADBEEFu);
  EXPECT_FALSE(decoded[1].has_checksum());
}

TEST(IndexCodecTest, LegacyV1ImageDecodesWithoutChecksums) {
  // Hand-build a "PLFSIDX1" image: the pre-checksum record layout.
  ByteWriter w;
  const std::uint8_t magic[8] = {'P', 'L', 'F', 'S', 'I', 'D', 'X', '1'};
  w.put_bytes(magic);
  w.put_u32_le(1);
  w.put_u64_le(0);          // logical_offset
  w.put_u64_le(11);         // length
  w.put_u32_le(1);          // backend
  w.put_string_le("p");     // label
  w.put_string_le("d.p.0"); // dropping
  w.put_u64_le(0);          // physical_offset
  const auto decoded = decode_index(w.take()).value();
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].length, 11u);
  EXPECT_EQ(decoded[0].dropping, "d.p.0");
  EXPECT_FALSE(decoded[0].has_checksum()) << "v1 records carry no checksum";
}

// --- mount ------------------------------------------------------------------------

class PlfsMountTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/plfs_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    mount_ = std::make_unique<PlfsMount>(
        PlfsMount::open({{"ssd-fs", root_ + "/mnt1"}, {"hdd-fs", root_ + "/mnt2"}}).value());
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
  std::unique_ptr<PlfsMount> mount_;
};

TEST_F(PlfsMountTest, OpenCreatesBackendRoots) {
  EXPECT_TRUE(fs::is_directory(root_ + "/mnt1"));
  EXPECT_TRUE(fs::is_directory(root_ + "/mnt2"));
  EXPECT_EQ(mount_->backend_count(), 2u);
}

TEST_F(PlfsMountTest, OpenRejectsEmptyBackendList) {
  EXPECT_FALSE(PlfsMount::open({}).is_ok());
}

TEST_F(PlfsMountTest, ContainerLifecycle) {
  EXPECT_FALSE(mount_->container_exists("bar"));
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  EXPECT_TRUE(mount_->container_exists("bar"));
  // Container directories exist on both backends (paper Fig. 6 layout).
  EXPECT_TRUE(fs::is_directory(root_ + "/mnt1/bar"));
  EXPECT_TRUE(fs::is_directory(root_ + "/mnt2/bar"));
  // Double create is AlreadyExists.
  const Status again = mount_->create_container("bar");
  ASSERT_FALSE(again.is_ok());
  EXPECT_EQ(again.error().code(), ErrorCode::kAlreadyExists);
  ASSERT_TRUE(mount_->remove_container("bar").is_ok());
  EXPECT_FALSE(mount_->container_exists("bar"));
}

TEST_F(PlfsMountTest, BadLogicalNamesRejected) {
  EXPECT_FALSE(mount_->create_container("").is_ok());
  EXPECT_FALSE(mount_->create_container("a/b").is_ok());
  EXPECT_FALSE(mount_->create_container("..").is_ok());
}

TEST_F(PlfsMountTest, AppendPlacesDroppingOnChosenBackend) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  const auto r1 = mount_->append("bar", "p", 0, bytes_of("protein-data")).value();
  const auto r2 = mount_->append("bar", "m", 1, bytes_of("misc")).value();
  EXPECT_EQ(r1.logical_offset, 0u);
  EXPECT_EQ(r2.logical_offset, 12u);
  EXPECT_TRUE(fs::exists(root_ + "/mnt1/bar/" + r1.dropping));
  EXPECT_TRUE(fs::exists(root_ + "/mnt2/bar/" + r2.dropping));
  EXPECT_FALSE(fs::exists(root_ + "/mnt2/bar/" + r1.dropping));
}

TEST_F(PlfsMountTest, ReadLogicalReassemblesAcrossBackends) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  ASSERT_TRUE(mount_->append("bar", "p", 0, bytes_of("hello ")).is_ok());
  ASSERT_TRUE(mount_->append("bar", "m", 1, bytes_of("plfs ")).is_ok());
  ASSERT_TRUE(mount_->append("bar", "p", 0, bytes_of("world")).is_ok());
  const auto logical = mount_->read_logical("bar").value();
  EXPECT_EQ(std::string(logical.begin(), logical.end()), "hello plfs world");
}

TEST_F(PlfsMountTest, ReadLabelFiltersSubsets) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  ASSERT_TRUE(mount_->append("bar", "p", 0, bytes_of("AAA")).is_ok());
  ASSERT_TRUE(mount_->append("bar", "m", 1, bytes_of("BBB")).is_ok());
  ASSERT_TRUE(mount_->append("bar", "p", 0, bytes_of("CCC")).is_ok());
  const auto p = mount_->read_label("bar", "p").value();
  EXPECT_EQ(std::string(p.begin(), p.end()), "AAACCC");
  const auto m = mount_->read_label("bar", "m").value();
  EXPECT_EQ(std::string(m.begin(), m.end()), "BBB");
  EXPECT_TRUE(mount_->read_label("bar", "zzz").value().empty());
}

TEST_F(PlfsMountTest, LabelSize) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  ASSERT_TRUE(mount_->append("bar", "p", 0, bytes_of("12345")).is_ok());
  ASSERT_TRUE(mount_->append("bar", "p", 1, bytes_of("678")).is_ok());
  EXPECT_EQ(mount_->label_size("bar", "p").value(), 8u);
  EXPECT_EQ(mount_->label_size("bar", "m").value(), 0u);
}

TEST_F(PlfsMountTest, AppendToMissingContainerFails) {
  EXPECT_FALSE(mount_->append("nope", "p", 0, bytes_of("x")).is_ok());
}

TEST_F(PlfsMountTest, AppendToBadBackendFails) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  EXPECT_FALSE(mount_->append("bar", "p", 7, bytes_of("x")).is_ok());
}

TEST_F(PlfsMountTest, ListContainers) {
  ASSERT_TRUE(mount_->create_container("zeta").is_ok());
  ASSERT_TRUE(mount_->create_container("alpha").is_ok());
  const auto names = mount_->list_containers().value();
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "zeta"}));
}

TEST_F(PlfsMountTest, MissingDroppingDetectedOnRead) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  const auto record = mount_->append("bar", "p", 0, bytes_of("payload")).value();
  fs::remove(root_ + "/mnt1/bar/" + record.dropping);
  EXPECT_FALSE(mount_->read_logical("bar").is_ok());
}

TEST_F(PlfsMountTest, EmptyContainerReadsEmpty) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  EXPECT_TRUE(mount_->read_logical("bar").value().empty());
  EXPECT_TRUE(mount_->read_index("bar").value().empty());
}

// --- extent checksums --------------------------------------------------------------

TEST_F(PlfsMountTest, AppendStoresExtentChecksum) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  const auto payload = bytes_of("checksummed payload");
  ASSERT_TRUE(mount_->append("bar", "p", 0, payload).is_ok());
  const auto records = mount_->read_index("bar").value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].has_checksum());
  EXPECT_EQ(records[0].crc32c, crc32c(payload.data(), payload.size()));
}

TEST_F(PlfsMountTest, BitFlipOnDiskCaughtByRead) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  const auto record = mount_->append("bar", "p", 0, bytes_of("precious bytes")).value();
  const std::string path = root_ + "/mnt1/bar/" + record.dropping;
  auto bytes = read_file(path).value();
  bytes[3] ^= 0x08;  // length unchanged: only the checksum can see this
  ASSERT_TRUE(write_file(path, bytes).is_ok());

  const auto read = mount_->read_label("bar", "p");
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.error().code(), ErrorCode::kCorruptData);
  EXPECT_FALSE(mount_->read_logical("bar").is_ok());
}

// --- fault injection + retries -----------------------------------------------------

TEST_F(PlfsMountTest, TornWriteReportsSuccessButReadCatchesIt) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  // The torn write itself MUST report success -- that is the failure mode
  // being modeled (silent short write).  The read side is the detector.
  const fault::ScopedFault torn("plfs.write_dropping", fault::Schedule::torn_write(0.5, 1));
  ASSERT_TRUE(mount_->append("bar", "p", 0, bytes_of("0123456789abcdef")).is_ok());
  const auto read = mount_->read_label("bar", "p");
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.error().code(), ErrorCode::kCorruptData);
}

TEST_F(PlfsMountTest, CorruptReadNeverServesBadBytes) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  const auto payload = bytes_of("the one true payload");
  ASSERT_TRUE(mount_->append("bar", "p", 0, payload).is_ok());
  // An in-flight corruption on every read attempt: the checksum must turn
  // it into a typed error, not silently different bytes.
  const fault::ScopedFault corrupt("plfs.read_dropping",
                                   []() {
                                     fault::Schedule s = fault::Schedule::corrupt_read(1);
                                     s.trigger = fault::Schedule::Trigger::kAlways;
                                     return s;
                                   }());
  const auto read = mount_->read_label("bar", "p");
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.error().code(), ErrorCode::kCorruptData);
}

TEST_F(PlfsMountTest, WriteRetriesThroughTransientFault) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  const fault::ScopedFault flaky("plfs.write_dropping", fault::Schedule::fail_nth(1));
  ASSERT_TRUE(mount_->append("bar", "p", 0, bytes_of("survives a retry")).is_ok());
  EXPECT_EQ(fault::Injector::global().hits("plfs.write_dropping"), 2u);
  const auto p = mount_->read_label("bar", "p").value();
  EXPECT_EQ(std::string(p.begin(), p.end()), "survives a retry");
}

TEST_F(PlfsMountTest, ReadRetriesThroughTransientFault) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  ASSERT_TRUE(mount_->append("bar", "p", 0, bytes_of("flaky read")).is_ok());
  const fault::ScopedFault flaky("plfs.read_dropping", fault::Schedule::fail_nth(1));
  const auto p = mount_->read_label("bar", "p").value();
  EXPECT_EQ(std::string(p.begin(), p.end()), "flaky read");
  EXPECT_EQ(fault::Injector::global().fired("plfs.read_dropping"), 1u);
}

TEST_F(PlfsMountTest, RetryExhaustionSurfacesTypedError) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  RetryPolicy fast;
  fast.max_attempts = 2;
  fast.initial_backoff_s = 1e-4;
  mount_->set_retry_policy(fast);
  const fault::ScopedFault down("plfs.write_dropping", fault::Schedule::down_window(1, 100));
  const auto result = mount_->append("bar", "p", 0, bytes_of("never lands"));
  ASSERT_FALSE(result.is_ok());
  // down: windows inject kUnavailable (a down server) -- transient, so the
  // retry loop runs to exhaustion and surfaces the last injected error.
  EXPECT_EQ(result.error().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(fault::Injector::global().hits("plfs.write_dropping"), 2u);
}

TEST_F(PlfsMountTest, FailedIndexWriteLeavesOldIndexIntact) {
  ASSERT_TRUE(mount_->create_container("bar").is_ok());
  ASSERT_TRUE(mount_->append("bar", "p", 0, bytes_of("first")).is_ok());
  {
    // Crash-before-rename on the next index update: the append fails, the
    // previous index generation stays readable (atomic tmp+rename).
    const fault::ScopedFault crash("plfs.write_index", fault::Schedule::fail_nth(1));
    EXPECT_FALSE(mount_->append("bar", "m", 1, bytes_of("second")).is_ok());
  }
  const auto records = mount_->read_index("bar").value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].label, "p");
  const auto p = mount_->read_label("bar", "p").value();
  EXPECT_EQ(std::string(p.begin(), p.end()), "first");
}

}  // namespace
}  // namespace ada::plfs
