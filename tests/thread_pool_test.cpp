// Tests for the persistent work-stealing thread pool (common/thread_pool.hpp).
//
// The pool replaced parallel_run's spawn-per-batch threads on the ingest
// hot path, so these tests pin down the properties the pipeline leans on:
// every task of a batch runs exactly once under any parallelism cap, batches
// nest without deadlock (frame-level under file-level parallelism), workers
// adopt the submitter's trace context, idle workers steal from their
// siblings' deques, and the pool's own instruments account for what ran.
// The stress test exists for `-DADA_SANITIZE=thread` runs: it hammers the
// shared pool from several threads at once so TSan can see the handoffs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace ada {
namespace {

using namespace std::chrono_literals;

// Spin (politely) until `done` holds or the deadline passes.
bool wait_for(const std::function<bool()>& done,
              std::chrono::milliseconds deadline = 10'000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!done()) {
    if (std::chrono::steady_clock::now() >= until) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(ThreadPoolTest, RunBatchExecutesEveryTaskOnceUnderAnyCap) {
  for (const unsigned cap : {0u, 1u, 2u, 3u, 8u, 64u}) {
    constexpr std::size_t kTasks = 257;
    std::vector<int> hits(kTasks, 0);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
      tasks.push_back([&hits, i] { ++hits[i]; });  // each slot has one owner
    }
    ThreadPool::shared().run_batch(std::move(tasks), cap);
    for (std::size_t i = 0; i < kTasks; ++i) {
      ASSERT_EQ(hits[i], 1) << "task " << i << " under cap " << cap;
    }
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonBatches) {
  ThreadPool::shared().run_batch({});  // no tasks: returns immediately
  int hits = 0;
  std::vector<std::function<void()>> one;
  one.push_back([&hits] { ++hits; });
  ThreadPool::shared().run_batch(std::move(one), 0);
  EXPECT_EQ(hits, 1);
}

TEST(ThreadPoolTest, NestedRunBatchDoesNotDeadlock) {
  // Frame-level parallelism nests under file-level parallelism: outer batch
  // tasks each run an inner batch on the same pool.  The caller of every
  // batch participates in draining it, so this completes even when all
  // workers are busy with outer tasks.
  std::atomic<int> inner_hits{0};
  std::vector<std::function<void()>> outer;
  for (int o = 0; o < 4; ++o) {
    outer.push_back([&inner_hits] {
      std::vector<std::function<void()>> inner;
      for (int i = 0; i < 8; ++i) {
        inner.push_back([&inner_hits] { inner_hits.fetch_add(1, std::memory_order_relaxed); });
      }
      ThreadPool::shared().run_batch(std::move(inner), 0);
    });
  }
  ThreadPool::shared().run_batch(std::move(outer), 0);
  EXPECT_EQ(inner_hits.load(), 32);
}

TEST(ThreadPoolTest, ParallelRunIsThePoolNow) {
  // The legacy entry point must drain through the shared pool (no
  // spawn-per-batch threads) with the same complete-every-task contract.
  std::atomic<int> hits{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 31; ++i) {
    tasks.push_back([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  parallel_run(std::move(tasks), 3);
  EXPECT_EQ(hits.load(), 31);
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  std::atomic<int> hits{0};
  for (int i = 0; i < 16; ++i) {
    ThreadPool::shared().submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  ASSERT_TRUE(wait_for([&] { return hits.load() == 16; }));
}

TEST(ThreadPoolTest, WorkerAdoptsSubmitterTraceContext) {
  obs::reset_events();
  obs::set_trace_enabled(true);
  std::atomic<std::uint64_t> seen{0};
  std::atomic<bool> ran{false};
  std::uint64_t expected = 0;
  {
    const obs::TraceSpan span("pool_context_test");
    expected = obs::current_context().trace_id;
    ASSERT_NE(expected, 0u);
    ThreadPool::shared().submit([&seen, &ran] {
      seen.store(obs::current_context().trace_id, std::memory_order_relaxed);
      ran.store(true, std::memory_order_release);
    });
    ASSERT_TRUE(wait_for([&] { return ran.load(std::memory_order_acquire); }));
  }
  obs::set_trace_enabled(false);
  obs::reset_events();
  EXPECT_EQ(seen.load(), expected) << "worker did not join the submitter's trace";
}

TEST(ThreadPoolTest, RunBatchTasksShareTheCallersTrace) {
  obs::reset_events();
  obs::set_trace_enabled(true);
  constexpr std::size_t kTasks = 24;
  std::vector<std::uint64_t> seen(kTasks, 0);
  std::uint64_t expected = 0;
  {
    const obs::TraceSpan span("pool_batch_trace");
    expected = obs::current_context().trace_id;
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < kTasks; ++i) {
      tasks.push_back([&seen, i] { seen[i] = obs::current_context().trace_id; });
    }
    ThreadPool::shared().run_batch(std::move(tasks), 0);
  }
  obs::set_trace_enabled(false);
  obs::reset_events();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(seen[i], expected) << "task " << i;
  }
}

TEST(ThreadPoolTest, IdleWorkerStealsFromSiblingDeque) {
  // Deterministic imbalance on a private 2-worker pool: occupy both workers
  // with gate tasks, queue four quick tasks (round-robin lands two per
  // deque), then free exactly one worker.  It must drain its own deque and
  // steal the other's two tasks -- the blocked worker can't.
  obs::set_enabled(true);
  obs::Registry& registry = obs::Registry::global();
  const std::uint64_t steal_before = registry.counter_value("pool.steal");
  const std::uint64_t tasks_before = registry.counter_value("pool.tasks");
  {
    ThreadPool pool(2);
    std::atomic<int> held{0};
    std::atomic<bool> release_a{false};
    std::atomic<bool> release_b{false};
    for (std::atomic<bool>* release : {&release_a, &release_b}) {
      pool.submit([&held, release] {
        held.fetch_add(1, std::memory_order_relaxed);
        while (!release->load(std::memory_order_acquire)) std::this_thread::sleep_for(1ms);
      });
    }
    ASSERT_TRUE(wait_for([&] { return held.load() == 2; }));

    std::atomic<int> done{0};
    for (int i = 0; i < 4; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    release_a.store(true, std::memory_order_release);
    ASSERT_TRUE(wait_for([&] { return done.load() == 4; }));
    release_b.store(true, std::memory_order_release);
  }  // joins the pool
  obs::set_enabled(false);
  EXPECT_GE(registry.counter_value("pool.steal") - steal_before, 2u);
  // 2 gates + 4 tasks; >= because the shared pool's counters are the same
  // named instruments and a stray drain job from an earlier batch may land
  // while metrics are on here.
  EXPECT_GE(registry.counter_value("pool.tasks") - tasks_before, 6u);
}

TEST(ThreadPoolTest, PoolInstrumentsAccountForSubmissions) {
  obs::set_enabled(true);
  obs::Registry& registry = obs::Registry::global();
  const std::uint64_t submitted_before = registry.counter_value("pool.submitted");
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  ASSERT_TRUE(wait_for([&] { return hits.load() == 8; }));
  obs::set_enabled(false);
  EXPECT_EQ(registry.counter_value("pool.submitted") - submitted_before, 8u);
  // The queue-depth gauge was touched by the submissions (its last-written
  // level depends on drain timing; existence is the contract).
  const auto gauges = registry.gauge_values();
  EXPECT_TRUE(gauges.count("pool.queue_depth"));
}

TEST(ThreadPoolTest, StressConcurrentBatchesAndSubmits) {
  // TSan fodder (-DADA_SANITIZE=thread): several threads drive the shared
  // pool at once, mixing nested batches and detached submits, so every
  // steal/sleep/wake handoff gets exercised under contention.
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  constexpr int kTasksPerBatch = 8;
  std::atomic<int> batch_hits{0};
  std::atomic<int> submit_hits{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < kTasksPerBatch; ++i) {
          tasks.push_back(
              [&batch_hits] { batch_hits.fetch_add(1, std::memory_order_relaxed); });
        }
        ThreadPool::shared().run_batch(std::move(tasks), 0);
        ThreadPool::shared().submit(
            [&submit_hits] { submit_hits.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  EXPECT_EQ(batch_hits.load(), kThreads * kRounds * kTasksPerBatch);
  ASSERT_TRUE(wait_for([&] { return submit_hits.load() == kThreads * kRounds; }));
}

}  // namespace
}  // namespace ada
