// Tests for the synthetic GPCR workload: exact composition, ordering,
// dynamics statistics, and the size calibration against the paper's tables.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/coord_codec.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::workload {
namespace {

TEST(GpcrBuilderTest, PaperDefaultCountsExact) {
  const GpcrSpec spec = GpcrSpec::paper_default();
  const auto system = GpcrSystemBuilder(spec).build();
  EXPECT_EQ(system.atom_count(), 43'520u);
  EXPECT_EQ(system.count_category(chem::Category::kProtein), 18'500u);
  EXPECT_EQ(system.count_category(chem::Category::kLipid), 200u * 52u);
  // Protein fraction matches Table 2's 42.5%.
  const double fraction = 18'500.0 / 43'520.0;
  EXPECT_NEAR(fraction, 0.425, 0.001);
}

TEST(GpcrBuilderTest, TinyCountsExact) {
  const GpcrSpec spec = GpcrSpec::tiny();
  const auto system = GpcrSystemBuilder(spec).build();
  EXPECT_EQ(system.atom_count(), spec.total_atoms);
  EXPECT_EQ(system.count_category(chem::Category::kProtein), spec.protein_atoms);
}

TEST(GpcrBuilderTest, DeterministicAcrossBuilds) {
  const auto a = GpcrSystemBuilder(GpcrSpec::tiny()).build();
  const auto b = GpcrSystemBuilder(GpcrSpec::tiny()).build();
  ASSERT_EQ(a.atom_count(), b.atom_count());
  EXPECT_EQ(a.reference_coords(), b.reference_coords());
  for (std::uint32_t i = 0; i < a.atom_count(); ++i) {
    ASSERT_EQ(a.atom(i), b.atom(i)) << "atom " << i;
  }
}

TEST(GpcrBuilderTest, CanonicalOrderingProteinFirst) {
  const auto system = GpcrSystemBuilder(GpcrSpec::tiny()).build();
  // GROMACS file order: protein block is a single contiguous run at the front.
  const auto protein = system.selection_for(chem::Category::kProtein);
  ASSERT_EQ(protein.runs().size(), 1u);
  EXPECT_EQ(protein.runs()[0].begin, 0u);
  // MISC (everything else) is one contiguous run after it.
  const auto misc = protein.complement(system.atom_count());
  ASSERT_EQ(misc.runs().size(), 1u);
  EXPECT_EQ(misc.runs()[0].end, system.atom_count());
}

TEST(GpcrBuilderTest, LigandInsertionSplitsMiscButKeepsTotals) {
  GpcrSpec spec = GpcrSpec::tiny();
  spec.ligand_atoms = 30;
  const auto system = GpcrSystemBuilder(spec).build();
  EXPECT_EQ(system.atom_count(), spec.total_atoms);
  EXPECT_EQ(system.count_category(chem::Category::kLigand), 30u);
  EXPECT_EQ(system.count_category(chem::Category::kProtein), spec.protein_atoms);
}

TEST(GpcrBuilderTest, WatersAreWholeMolecules) {
  const auto system = GpcrSystemBuilder(GpcrSpec::tiny()).build();
  EXPECT_EQ(system.count_category(chem::Category::kWater) % 3, 0u);
}

TEST(GpcrBuilderTest, AtomsInsideReasonableBounds) {
  const GpcrSpec spec = GpcrSpec::tiny();
  const auto system = GpcrSystemBuilder(spec).build();
  const auto& coords = system.reference_coords();
  // Sidechain random walks can poke slightly outside; 1.5 nm slack.
  for (std::size_t i = 0; i < coords.size(); i += 3) {
    EXPECT_GT(coords[i], -1.5f);
    EXPECT_LT(coords[i], spec.box_xy_nm + 1.5f);
    EXPECT_GT(coords[i + 2], -1.5f);
    EXPECT_LT(coords[i + 2], spec.box_z_nm + 1.5f);
  }
}

// --- trajectory dynamics -------------------------------------------------------

TEST(TrajectoryTest, FrameMetadataAdvances) {
  const auto system = GpcrSystemBuilder(GpcrSpec::tiny()).build();
  DynamicsSpec dyn;
  TrajectoryGenerator gen(system, dyn);
  EXPECT_EQ(gen.frame_index(), 0u);
  gen.next_frame();
  EXPECT_EQ(gen.frame_index(), 1u);
  EXPECT_EQ(gen.current_step(), dyn.md_steps_per_frame);
  EXPECT_FLOAT_EQ(gen.current_time_ps(), dyn.time_step_ps);
  gen.next_frame();
  EXPECT_EQ(gen.current_step(), 2 * dyn.md_steps_per_frame);
}

TEST(TrajectoryTest, DeterministicForSameSeed) {
  const auto system = GpcrSystemBuilder(GpcrSpec::tiny()).build();
  TrajectoryGenerator a(system, DynamicsSpec{});
  TrajectoryGenerator b(system, DynamicsSpec{});
  for (int f = 0; f < 3; ++f) {
    const auto fa = a.next_frame();
    const auto fb = b.next_frame();
    ASSERT_TRUE(std::equal(fa.begin(), fa.end(), fb.begin()));
  }
}

TEST(TrajectoryTest, CategoriesHaveDistinctMobility) {
  const auto system = GpcrSystemBuilder(GpcrSpec::tiny()).build();
  TrajectoryGenerator gen(system, DynamicsSpec{});
  const std::vector<float> before(system.reference_coords());
  std::span<const float> frame;
  for (int f = 0; f < 10; ++f) frame = gen.next_frame();

  auto mean_displacement = [&](chem::Category cat) {
    double sum = 0;
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < system.atom_count(); ++i) {
      if (system.category(i) != cat) continue;
      for (std::uint32_t d = 0; d < 3; ++d) {
        const std::size_t j = std::size_t{3} * i + d;
        sum += std::abs(static_cast<double>(frame[j]) - static_cast<double>(before[j]));
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };

  const double water = mean_displacement(chem::Category::kWater);
  const double protein = mean_displacement(chem::Category::kProtein);
  EXPECT_GT(water, 2.0 * protein) << "water " << water << " protein " << protein;
}

TEST(TrajectoryTest, OuProcessStaysBounded) {
  const auto system = GpcrSystemBuilder(GpcrSpec::tiny()).build();
  TrajectoryGenerator gen(system, DynamicsSpec{});
  std::span<const float> frame;
  for (int f = 0; f < 200; ++f) frame = gen.next_frame();
  const auto& ref = system.reference_coords();
  double max_drift = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    max_drift = std::max(max_drift, std::abs(static_cast<double>(frame[i]) -
                                             static_cast<double>(ref[i])));
  }
  EXPECT_LT(max_drift, 1.5) << "unbounded drift: " << max_drift;
}

// --- size calibration against the paper ------------------------------------------

TEST(CalibrationTest, CompressedSizeMatchesPaperTable2Regime) {
  // Paper Table 2: 626 frames == 100 MB compressed, 327 MB raw (ratio 3.27),
  // protein subset = 139 MB decompressed (42.5% of raw).
  // We verify per-frame sizes on a sample window of the full-size system.
  const auto system = GpcrSystemBuilder(GpcrSpec::paper_default()).build();
  TrajectoryGenerator gen(system, DynamicsSpec{});
  formats::XtcWriter writer;
  constexpr std::uint32_t kSample = 12;
  // Skip warm-up frames so deltas reach OU steady state.
  for (int f = 0; f < 3; ++f) gen.next_frame();
  for (std::uint32_t f = 0; f < kSample; ++f) {
    ASSERT_TRUE(writer.add_frame(gen.current_step(), gen.current_time_ps(), system.box(),
                                 gen.next_frame())
                    .is_ok());
  }
  const double compressed_per_frame = static_cast<double>(writer.size_bytes()) / kSample;
  const double raw_per_frame = static_cast<double>(formats::raw_frame_bytes(system.atom_count()));
  const double ratio = raw_per_frame / compressed_per_frame;
  // The paper's ratio is 3.27; accept the xtc-like regime.
  EXPECT_GT(ratio, 2.6) << "ratio " << ratio;
  EXPECT_LT(ratio, 4.0) << "ratio " << ratio;

  // 626-frame file in MB, to compare against the paper's "100 MB".
  const double mb_626 = compressed_per_frame * 626 / 1e6;
  EXPECT_GT(mb_626, 70.0) << mb_626;
  EXPECT_LT(mb_626, 135.0) << mb_626;
}

TEST(CalibrationTest, ProteinSubsetMatchesTable2) {
  const auto system = GpcrSystemBuilder(GpcrSpec::paper_default()).build();
  const auto protein = system.selection_for(chem::Category::kProtein);
  // Protein RAW subset for 626 frames: the paper's 139 MB.
  const double bytes =
      static_cast<double>(formats::raw_file_bytes(static_cast<std::uint32_t>(protein.count()), 626));
  EXPECT_NEAR(bytes / 1e6, 139.0, 1.5);
}

}  // namespace
}  // namespace ada::workload
