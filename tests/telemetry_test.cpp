// Telemetry-plane tests: the metrics sampler's delta/reconciliation
// contract, windowed percentiles, the OpenMetrics exposition golden, the
// span-attributed sampling profiler, the rate-limited warning channel, and
// the ada-stats diff/summarize core that the check-perf gate runs.
//
// The e2e differential at the bottom runs the full GPCR pipeline with the
// telemetry sampler and profiler armed and proves (a) the data path is
// byte-identical to an uninstrumented run and (b) the JSONL time series
// reconciles with the final cumulative dump -- the two acceptance claims of
// the continuous-telemetry plane.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ada/middleware.hpp"
#include "common/json.hpp"
#include "formats/xtc_file.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/stats.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/warn.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::obs {
namespace {

namespace fs = std::filesystem;

class TelemetryTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/ada_telemetry_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    fs::create_directories(root_);
    reset_all();
    set_enabled(true);
    set_warn_rate(5.0, 10.0);
    reset_warn_state();
  }

  void TearDown() override {
    stop_telemetry();
    stop_profiler();
    set_enabled(false);
    reset_all();
    set_warn_rate(5.0, 10.0);
    reset_warn_state();
    fs::remove_all(root_);
  }

  std::string path(const std::string& leaf) const { return root_ + "/" + leaf; }

  static std::string read_text(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  // Parse a JSONL file into one json::Value per line.
  static std::vector<json::Value> read_jsonl(const std::string& file) {
    std::vector<json::Value> lines;
    std::ifstream in(file);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      auto parsed = json::parse(line);
      EXPECT_TRUE(parsed.is_ok()) << "unparseable telemetry line: " << line;
      if (parsed.is_ok()) lines.push_back(std::move(parsed).value());
    }
    return lines;
  }

  static double counter_field(const json::Value& line, const std::string& name,
                              const std::string& field) {
    const json::Value* counters = line.find("counters");
    EXPECT_NE(counters, nullptr);
    const json::Value* entry = counters->find(name);
    EXPECT_NE(entry, nullptr) << "counter " << name << " missing from sample";
    const json::Value* value = entry->find(field);
    EXPECT_NE(value, nullptr);
    return value == nullptr ? -1.0 : value->number;
  }

  static double histogram_field(const json::Value& line, const std::string& name,
                                const std::string& field) {
    const json::Value* histograms = line.find("histograms");
    EXPECT_NE(histograms, nullptr);
    const json::Value* entry = histograms->find(name);
    EXPECT_NE(entry, nullptr) << "histogram " << name << " missing from sample";
    const json::Value* value = entry->find(field);
    EXPECT_NE(value, nullptr);
    return value == nullptr ? -1.0 : value->number;
  }

  std::string root_;
};

// --- MetricsSampler ----------------------------------------------------------

TEST_F(TelemetryTest, SamplerDeltasSumToFinalTotals) {
  const std::string file = path("ts.jsonl");
  auto sampler = MetricsSampler::open({file, 250});
  ASSERT_TRUE(sampler.is_ok()) << sampler.error().to_string();

  Counter& frames = Registry::global().counter("telemetry.frames");
  frames.add(10);
  sampler.value()->sample_now("wall", 100.0);
  frames.add(5);
  sampler.value()->sample_now("wall", 200.0);
  // stop() without start() still appends the final wall sample.
  sampler.value()->stop();
  EXPECT_EQ(sampler.value()->lines_written(), 3u);

  const auto lines = read_jsonl(file);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(counter_field(lines[0], "telemetry.frames", "total"), 10.0);
  EXPECT_EQ(counter_field(lines[0], "telemetry.frames", "delta"), 10.0);
  EXPECT_EQ(counter_field(lines[1], "telemetry.frames", "total"), 15.0);
  EXPECT_EQ(counter_field(lines[1], "telemetry.frames", "delta"), 5.0);
  EXPECT_EQ(counter_field(lines[2], "telemetry.frames", "delta"), 0.0);

  // The reconciliation contract: summed deltas == final cumulative total.
  double delta_sum = 0.0;
  for (const auto& line : lines) delta_sum += counter_field(line, "telemetry.frames", "delta");
  EXPECT_EQ(delta_sum, 15.0);
  EXPECT_EQ(Registry::global().counter_value("telemetry.frames"), 15u);

  // seq increments monotonically across samples.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const json::Value* seq = lines[i].find("seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_EQ(seq->number, static_cast<double>(i));
  }
}

TEST_F(TelemetryTest, SamplerKeepsIndependentBaselinesPerClock) {
  auto sampler = MetricsSampler::open({path("clocks.jsonl"), 250});
  ASSERT_TRUE(sampler.is_ok());

  Counter& ops = Registry::global().counter("telemetry.ops");
  ops.add(8);
  sampler.value()->sample_now("wall", 1.0);
  sampler.value()->sample_now("sim", 1.0);
  ops.add(2);
  sampler.value()->sample_now("sim", 2.0);
  sampler.value()->sample_now("wall", 2.0);

  const auto lines = read_jsonl(path("clocks.jsonl"));
  ASSERT_EQ(lines.size(), 4u);
  // Each clock sees the full history through its own baseline: the sim
  // clock's first sample carries the same 8-delta the wall clock got.
  EXPECT_EQ(counter_field(lines[0], "telemetry.ops", "delta"), 8.0);  // wall
  EXPECT_EQ(counter_field(lines[1], "telemetry.ops", "delta"), 8.0);  // sim
  EXPECT_EQ(counter_field(lines[2], "telemetry.ops", "delta"), 2.0);  // sim
  EXPECT_EQ(counter_field(lines[3], "telemetry.ops", "delta"), 2.0);  // wall
  // Both clocks independently reconcile to the same total.
  EXPECT_EQ(counter_field(lines[2], "telemetry.ops", "total"), 10.0);
  EXPECT_EQ(counter_field(lines[3], "telemetry.ops", "total"), 10.0);
}

TEST_F(TelemetryTest, WindowedPercentilesReflectOnlyTheWindow) {
  auto sampler = MetricsSampler::open({path("win.jsonl"), 250});
  ASSERT_TRUE(sampler.is_ok());

  Histogram& lat = Registry::global().histogram("telemetry.lat");
  for (int i = 0; i < 10; ++i) lat.observe(1024);
  sampler.value()->sample_now("wall", 1.0);
  for (int i = 0; i < 90; ++i) lat.observe(1);
  sampler.value()->sample_now("wall", 2.0);

  const auto lines = read_jsonl(path("win.jsonl"));
  ASSERT_EQ(lines.size(), 2u);
  // First sample: the window is the whole history, all at 1024.
  EXPECT_EQ(histogram_field(lines[0], "telemetry.lat", "win_p50"), 1024.0);
  // Second sample: the window holds only the 90 ones, so its quantiles sit
  // at 1 even though the cumulative p99 still lands in the 1024 bucket.
  EXPECT_EQ(histogram_field(lines[1], "telemetry.lat", "delta"), 90.0);
  EXPECT_EQ(histogram_field(lines[1], "telemetry.lat", "win_p50"), 1.0);
  EXPECT_EQ(histogram_field(lines[1], "telemetry.lat", "win_p99"), 1.0);
  EXPECT_EQ(histogram_field(lines[1], "telemetry.lat", "count"), 100.0);
  EXPECT_EQ(histogram_field(lines[1], "telemetry.lat", "p50"), 1.0);
  EXPECT_EQ(histogram_field(lines[1], "telemetry.lat", "p99"), 1024.0);
}

TEST_F(TelemetryTest, SimTickEmitsOnVirtualInterval) {
  auto sampler = MetricsSampler::open({path("sim.jsonl"), 100});
  ASSERT_TRUE(sampler.is_ok());

  sampler.value()->sim_tick(0.000);  // first sim tick always emits
  sampler.value()->sim_tick(0.050);  // +50ms < 100ms interval: skipped
  sampler.value()->sim_tick(0.100);  // interval reached: emits
  sampler.value()->sim_tick(0.150);  // skipped again
  EXPECT_EQ(sampler.value()->lines_written(), 2u);

  const auto lines = read_jsonl(path("sim.jsonl"));
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    const json::Value* clock = line.find("clock");
    ASSERT_NE(clock, nullptr);
    EXPECT_EQ(clock->string, "sim");
  }
  EXPECT_EQ(lines[0].find("t_ms")->number, 0.0);
  EXPECT_EQ(lines[1].find("t_ms")->number, 100.0);
}

TEST_F(TelemetryTest, StartTelemetryValidatesSpec) {
  EXPECT_FALSE(start_telemetry(path("bad.jsonl") + ",abc").is_ok());
  EXPECT_FALSE(start_telemetry(path("bad.jsonl") + ",0").is_ok());
  EXPECT_FALSE(start_telemetry("").is_ok());
  EXPECT_FALSE(telemetry_active());

  ASSERT_TRUE(start_telemetry(path("global.jsonl") + ",50").is_ok());
  EXPECT_TRUE(telemetry_active());
  EXPECT_FALSE(start_telemetry(path("second.jsonl")).is_ok());  // already running
  stop_telemetry();
  EXPECT_FALSE(telemetry_active());
  // The final flush guarantees at least one (wall) sample even for an
  // instantly-stopped plane.
  EXPECT_GE(read_jsonl(path("global.jsonl")).size(), 1u);
}

TEST_F(TelemetryTest, TelemetrySimTickIsNoOpWhenInactive) {
  telemetry_sim_tick(1.0);  // must not crash or allocate a sampler
  EXPECT_FALSE(telemetry_active());
}

// --- OpenMetrics exposition --------------------------------------------------

TEST_F(TelemetryTest, OpenMetricsGolden) {
  Snapshot snapshot;
  snapshot.counters["ingest.frames"] = 3;
  snapshot.gauges["cache.bytes"] = 42.0;
  Snapshot::HistogramStat lat;
  lat.count = 3;
  lat.sum = 6;
  lat.max = 4;
  lat.buckets[Histogram::bucket_of(0)] += 1;  // bucket 0: exact zero
  lat.buckets[Histogram::bucket_of(2)] += 1;  // bucket 2: [2, 3]
  lat.buckets[Histogram::bucket_of(4)] += 1;  // bucket 3: [4, 7]
  snapshot.histograms["query.lat_ns"] = lat;
  SpanStat span;
  span.path = "ingest/decode";
  span.name = "decode";
  span.depth = 1;
  span.calls = 2;
  span.total_ns = 10;
  span.self_ns = 7;
  snapshot.spans.push_back(span);

  const std::string expected =
      "# HELP ada_ingest_frames ADA counter ingest.frames\n"
      "# TYPE ada_ingest_frames counter\n"
      "ada_ingest_frames_total 3\n"
      "# HELP ada_cache_bytes ADA gauge cache.bytes\n"
      "# TYPE ada_cache_bytes gauge\n"
      "ada_cache_bytes 42\n"
      "# HELP ada_query_lat_ns ADA log-scale histogram query.lat_ns\n"
      "# TYPE ada_query_lat_ns histogram\n"
      "ada_query_lat_ns_bucket{le=\"0\"} 1\n"
      "ada_query_lat_ns_bucket{le=\"1\"} 1\n"
      "ada_query_lat_ns_bucket{le=\"3\"} 2\n"
      "ada_query_lat_ns_bucket{le=\"7\"} 3\n"
      "ada_query_lat_ns_bucket{le=\"+Inf\"} 3\n"
      "ada_query_lat_ns_sum 6\n"
      "ada_query_lat_ns_count 3\n"
      "# HELP ada_span_calls ADA span call counts by tree path\n"
      "# TYPE ada_span_calls counter\n"
      "ada_span_calls_total{path=\"ingest/decode\"} 2\n"
      "# HELP ada_span_time_ns ADA span total (inclusive) nanoseconds\n"
      "# TYPE ada_span_time_ns counter\n"
      "ada_span_time_ns_total{path=\"ingest/decode\"} 10\n"
      "# HELP ada_span_self_ns ADA span self (exclusive) nanoseconds\n"
      "# TYPE ada_span_self_ns counter\n"
      "ada_span_self_ns_total{path=\"ingest/decode\"} 7\n"
      "# EOF\n";
  EXPECT_EQ(to_openmetrics(snapshot), expected);
}

TEST_F(TelemetryTest, OpenMetricsFromLiveRegistry) {
  Registry::global().counter("om.live-counter").add(7);
  const std::string text = to_openmetrics(capture());
  EXPECT_NE(text.find("ada_om_live_counter_total 7\n"), std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

// --- Sampling profiler -------------------------------------------------------

TEST_F(TelemetryTest, ProfilerFoldsDeterministicStacks) {
  SamplingProfiler profiler({"", 1000});
  {
    ScopedTimer ingest("ingest");
    {
      ScopedTimer decode("decode");
      profiler.sample_once();
      profiler.sample_once();
    }
    profiler.sample_once();
  }
  profiler.sample_once();  // idle: every thread at root, nothing recorded

  EXPECT_EQ(profiler.samples(), 4u);
  const auto folded = profiler.folded();
  ASSERT_EQ(folded.size(), 2u);
  EXPECT_EQ(folded.at("ingest;decode"), 2u);
  EXPECT_EQ(folded.at("ingest"), 1u);
  EXPECT_EQ(profiler.folded_text(), "ingest 1\ningest;decode 2\n");

  const auto table = profiler.stage_table();
  ASSERT_EQ(table.size(), 2u);
  // Sorted by self descending: decode leads (leaf in 2 samples).
  EXPECT_EQ(table[0].name, "decode");
  EXPECT_EQ(table[0].self, 2u);
  EXPECT_EQ(table[0].total, 2u);
  EXPECT_EQ(table[1].name, "ingest");
  EXPECT_EQ(table[1].self, 1u);
  EXPECT_EQ(table[1].total, 3u);
}

TEST_F(TelemetryTest, ProfilerStopWritesFoldedFile) {
  const std::string file = path("profile.folded");
  SamplingProfiler profiler({file, 1000});
  {
    ScopedTimer query("query");
    profiler.sample_once();
  }
  ASSERT_TRUE(profiler.stop().is_ok());
  EXPECT_EQ(read_text(file), "query 1\n");
}

TEST_F(TelemetryTest, ProfilerAndSamplerSurviveConcurrentStartStop) {
  // Workers hammer spans and counters while the wall tickers run; the test
  // is the absence of races/crashes (run under TSan in the sanitizer job).
  ASSERT_TRUE(start_telemetry(path("stress.jsonl") + ",2").is_ok());
  ASSERT_TRUE(start_profiler(path("stress.folded") + ",200").is_ok());

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([] {
      for (int i = 0; i < 400; ++i) {
        ScopedTimer outer("stress");
        ScopedTimer inner(i % 2 == 0 ? "even" : "odd");
        ADA_OBS_COUNT("telemetry.stress", 1);
        ADA_OBS_OBSERVE("telemetry.stress_ns", i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  stop_profiler();
  stop_telemetry();

  EXPECT_EQ(Registry::global().counter_value("telemetry.stress"), 4u * 400u);
  // The final stop-flush line always lands, whatever the ticker managed.
  const auto lines = read_jsonl(path("stress.jsonl"));
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(counter_field(lines.back(), "telemetry.stress", "total"), 1600.0);
}

// --- Rate-limited warnings ---------------------------------------------------

TEST_F(TelemetryTest, WarnTokenBucketLimitsEmission) {
  set_warn_rate(0.0, 2.0);  // no refill: exactly the burst gets through
  reset_warn_state();
  for (int i = 0; i < 5; ++i) {
    warn(WarnSeverity::kWarn, "test", "warning " + std::to_string(i));
  }
  EXPECT_EQ(warnings_emitted(), 2u);
  EXPECT_EQ(warnings_suppressed(), 3u);
  // The registry mirrors the totals so the telemetry plane sees the storm.
  EXPECT_EQ(Registry::global().counter_value("warn.emitted"), 2u);
  EXPECT_EQ(Registry::global().counter_value("warn.suppressed"), 3u);

  reset_warn_state();  // refills the bucket and zeroes the atomics
  EXPECT_EQ(warnings_emitted(), 0u);
  warn(WarnSeverity::kError, "test", "after reset");
  EXPECT_EQ(warnings_emitted(), 1u);
}

TEST_F(TelemetryTest, WarnCountsSurviveObsDisabled) {
  set_enabled(false);
  set_warn_rate(0.0, 1.0);
  reset_warn_state();
  warn(WarnSeverity::kWarn, "test", "first");
  warn(WarnSeverity::kWarn, "test", "second");
  // The local atomics are live even with the metrics registry gated off.
  EXPECT_EQ(warnings_emitted(), 1u);
  EXPECT_EQ(warnings_suppressed(), 1u);
  EXPECT_EQ(Registry::global().counter_value("warn.emitted"), 0u);
  set_enabled(true);
}

// --- ada-stats core: flatten / diff / summarize ------------------------------

TEST_F(TelemetryTest, FlattenNumbersWalksNestedShapes) {
  const auto parsed = json::parse(
      R"({"a": 1, "b": {"c": 2.5, "d": [3, 4]}, "e": true, "f": "skip", "g": null})");
  ASSERT_TRUE(parsed.is_ok());
  const auto flat = flatten_numbers(parsed.value());
  const std::map<std::string, double> expected = {
      {"a", 1.0}, {"b.c", 2.5}, {"b.d.0", 3.0}, {"b.d.1", 4.0}, {"e", 1.0}};
  EXPECT_EQ(flat, expected);
}

TEST_F(TelemetryTest, DiffMetricsHonorsBudgetAndDirection) {
  const std::map<std::string, double> baseline = {{"ratio", 10.0}, {"lat", 100.0}};
  DiffSpec spec;
  spec.budget = 0.05;
  spec.higher = {"ratio"};
  spec.lower = {"lat"};

  // Within budget both ways: no violations.
  auto report = diff_metrics(baseline, {{"ratio", 9.6}, {"lat", 104.0}}, spec);
  EXPECT_EQ(report.violations, 0u);

  // ratio fell 6% (budget 5%) and lat rose 6%: both keys regress.
  report = diff_metrics(baseline, {{"ratio", 9.4}, {"lat", 106.0}}, spec);
  EXPECT_EQ(report.violations, 2u);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_TRUE(report.rows[0].violation);
  EXPECT_NEAR(report.rows[0].change, -0.06, 1e-9);
  EXPECT_TRUE(report.rows[1].violation);

  // An improvement never violates, however large.
  report = diff_metrics(baseline, {{"ratio", 20.0}, {"lat", 1.0}}, spec);
  EXPECT_EQ(report.violations, 0u);
}

TEST_F(TelemetryTest, DiffMetricsFailsOnMissingKeys) {
  DiffSpec spec;
  spec.higher = {"present", "vanished"};
  const auto report =
      diff_metrics({{"present", 1.0}, {"vanished", 5.0}}, {{"present", 1.0}}, spec);
  EXPECT_EQ(report.violations, 1u);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_FALSE(report.rows[0].violation);
  EXPECT_TRUE(report.rows[1].missing);
  EXPECT_TRUE(report.rows[1].violation);
}

TEST_F(TelemetryTest, DiffMetricsZeroBaselineOnlyFailsWrongDirection) {
  DiffSpec spec;
  spec.higher = {"h"};
  spec.lower = {"l"};
  // Candidate improved or held from zero: fine.
  auto report = diff_metrics({{"h", 0.0}, {"l", 0.0}}, {{"h", 3.0}, {"l", 0.0}}, spec);
  EXPECT_EQ(report.violations, 0u);
  // Candidate moved the wrong way from zero: unambiguous regression.
  report = diff_metrics({{"h", 0.0}, {"l", 0.0}}, {{"h", -1.0}, {"l", 2.0}}, spec);
  EXPECT_EQ(report.violations, 2u);
}

TEST_F(TelemetryTest, SummarizeTelemetryComputesRatesPerClock) {
  const std::string jsonl =
      R"({"schema":1,"seq":0,"clock":"wall","t_ms":0,"counters":{"c":{"total":10,"delta":10}},"gauges":{},"histograms":{"h":{"count":2,"delta":2,"p50":1,"p90":1,"p99":1,"win_p50":1,"win_p90":1,"win_p99":1}}})"
      "\n"
      R"({"schema":1,"seq":1,"clock":"wall","t_ms":2000,"counters":{"c":{"total":30,"delta":20}},"gauges":{},"histograms":{"h":{"count":4,"delta":2,"p50":2,"p90":3,"p99":3,"win_p50":2,"win_p90":2,"win_p99":2}}})"
      "\n";
  const auto result = summarize_telemetry(jsonl);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  const auto& summaries = result.value();
  ASSERT_EQ(summaries.size(), 1u);
  const TelemetrySummary& wall = summaries[0];
  EXPECT_EQ(wall.clock, "wall");
  EXPECT_EQ(wall.samples, 2u);
  EXPECT_EQ(wall.last_t_ms, 2000.0);
  ASSERT_EQ(wall.counters.size(), 1u);
  EXPECT_EQ(wall.counters[0].total, 30u);
  EXPECT_EQ(wall.counters[0].delta_sum, 30u);  // reconciles with total
  EXPECT_NEAR(wall.counters[0].rate_per_s, 15.0, 1e-9);
  ASSERT_EQ(wall.histograms.size(), 1u);
  EXPECT_EQ(wall.histograms[0].count, 4u);
  EXPECT_EQ(wall.histograms[0].p50, 2.0);
}

TEST_F(TelemetryTest, SummarizeTelemetryRejectsBadSchema) {
  EXPECT_FALSE(summarize_telemetry(R"({"schema":2,"clock":"wall","t_ms":0})").is_ok());
  EXPECT_FALSE(summarize_telemetry("not json\n").is_ok());
  EXPECT_FALSE(
      summarize_telemetry(R"({"schema":1,"t_ms":0,"counters":{}})" "\n").is_ok());
}

}  // namespace
}  // namespace ada::obs

// --- e2e differential: telemetry/profiler on vs off --------------------------

namespace ada::core {
namespace {

namespace fs = std::filesystem;

class TelemetryE2eTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/ada_telemetry_e2e_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    fs::create_directories(root_);
    system_ = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    formats::XtcWriter writer;
    for (std::uint32_t f = 0; f < 4; ++f) {
      ASSERT_TRUE(writer
                      .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                                 gen.next_frame())
                      .is_ok());
    }
    xtc_ = writer.take();
    obs::reset_all();
    obs::set_enabled(false);
  }

  void TearDown() override {
    obs::stop_telemetry();
    obs::stop_profiler();
    obs::set_enabled(false);
    obs::reset_all();
    fs::remove_all(root_);
  }

  // One complete ingest -> query pass in a fresh deployment under `subdir`.
  std::map<Tag, std::vector<std::uint8_t>> run_pipeline(const std::string& subdir) {
    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    const std::string base = root_ + "/" + subdir;
    Ada ada(
        plfs::PlfsMount::open({{"ssd", base + "/ssd"}, {"hdd", base + "/hdd"}}).value(),
        config);
    EXPECT_TRUE(ada.ingest(system_, xtc_, "gpcr.xtc").is_ok());
    std::map<Tag, std::vector<std::uint8_t>> subsets;
    for (const Tag& tag : {kProteinTag, kMiscTag}) {
      auto subset = ada.query("gpcr.xtc", tag);
      EXPECT_TRUE(subset.is_ok());
      if (subset.is_ok()) subsets[tag] = std::move(subset).value();
    }
    return subsets;
  }

  std::string root_;
  chem::System system_;
  std::vector<std::uint8_t> xtc_;
};

TEST_F(TelemetryE2eTest, TelemetryOnAndOffProduceByteIdenticalSubsets) {
  // Pass 1: everything off -- the uninstrumented reference bytes.
  const auto subsets_off = run_pipeline("off");

  // Pass 2: metrics, the telemetry sampler and the profiler all armed.
  obs::reset_all();
  obs::set_enabled(true);
  const std::string ts_path = root_ + "/ts.jsonl";
  ASSERT_TRUE(obs::start_telemetry(ts_path + ",20").is_ok());
  ASSERT_TRUE(obs::start_profiler(root_ + "/profile.folded,500").is_ok());
  const auto subsets_on = run_pipeline("on");
  obs::stop_profiler();
  obs::stop_telemetry();

  // (a) Observation never perturbs the data path.
  ASSERT_EQ(subsets_off.size(), subsets_on.size());
  for (const auto& [tag, bytes] : subsets_off) {
    ASSERT_TRUE(subsets_on.count(tag)) << "tag " << tag << " missing from telemetry run";
    EXPECT_EQ(bytes, subsets_on.at(tag)) << "subset bytes diverged for tag " << tag;
  }

  // (b) The JSONL time series reconciles with the final cumulative dump
  // (what `--metrics=json` prints): per counter, summed wall deltas ==
  // final total == the registry's value.
  const auto summarized = obs::summarize_telemetry([&] {
    std::ifstream in(ts_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }());
  ASSERT_TRUE(summarized.is_ok()) << summarized.error().to_string();
  const obs::Snapshot final_dump = obs::capture();
  EXPECT_FALSE(final_dump.counters.empty());
  bool found_wall = false;
  for (const auto& summary : summarized.value()) {
    if (summary.clock != "wall") continue;
    found_wall = true;
    ASSERT_GE(summary.samples, 1u);  // the stop-flush line at minimum
    for (const auto& row : summary.counters) {
      EXPECT_EQ(row.delta_sum, row.total)
          << "summed deltas diverge from the final total for " << row.name;
      const auto it = final_dump.counters.find(row.name);
      ASSERT_NE(it, final_dump.counters.end()) << row.name;
      EXPECT_EQ(row.total, it->second) << row.name;
    }
  }
  EXPECT_TRUE(found_wall);
}

}  // namespace
}  // namespace ada::core
