// Tests for the VFS interception shim, the streaming ingest, and the PLFS
// container verifier/repair (failure-injection suite).
#include <gtest/gtest.h>

#include <filesystem>

#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "ada/vfs.hpp"
#include "common/binary_io.hpp"
#include "formats/pdb.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "plfs/fsck.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::core {
namespace {

namespace fs = std::filesystem;

class VfsFsckTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/ada_vfs_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    system_ = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();

    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    ada_ = std::make_unique<Ada>(
        plfs::PlfsMount::open({{"ssd", root_ + "/ssd"}, {"hdd", root_ + "/hdd"}}).value(),
        config);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::vector<std::uint8_t> make_xtc(std::uint32_t frames) {
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    formats::XtcWriter writer;
    for (std::uint32_t f = 0; f < frames; ++f) {
      ADA_CHECK(writer
                    .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                               gen.next_frame())
                    .is_ok());
    }
    return writer.take();
  }

  std::string root_;
  chem::System system_;
  std::unique_ptr<Ada> ada_;
};

// --- VFS shim ------------------------------------------------------------------------

TEST_F(VfsFsckTest, NonTargetFilesPassThrough) {
  VfsShim shim(*ada_, root_ + "/host");
  const std::string note = "lab notes";
  ASSERT_TRUE(shim.write("/data/notes.txt", "vmd",
                         std::span(reinterpret_cast<const std::uint8_t*>(note.data()),
                                   note.size()))
                  .is_ok());
  const auto readback = shim.read("/data/notes.txt", "vmd").value();
  EXPECT_EQ(std::string(readback.begin(), readback.end()), note);
  EXPECT_FALSE(shim.was_intercepted("notes.txt"));
}

TEST_F(VfsFsckTest, NonTargetAppPassesThroughEvenForXtc) {
  VfsShim shim(*ada_, root_ + "/host");
  const auto xtc = make_xtc(1);
  ASSERT_TRUE(shim.write("/data/bar.xtc", "gromacs", xtc).is_ok());
  EXPECT_FALSE(shim.was_intercepted("bar.xtc"));
  EXPECT_EQ(shim.read("/data/bar.xtc", "gromacs").value(), xtc);
}

TEST_F(VfsFsckTest, XtcBeforePdbFails) {
  VfsShim shim(*ada_, root_ + "/host");
  const auto xtc = make_xtc(1);
  const Status s = shim.write("/data/bar.xtc", "vmd", xtc);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(VfsFsckTest, PdbThenXtcIngestsAndTagReads) {
  VfsShim shim(*ada_, root_ + "/host");
  const std::string pdb = formats::write_pdb(system_);
  ASSERT_TRUE(shim.write("/data/foo.pdb", "vmd",
                         std::span(reinterpret_cast<const std::uint8_t*>(pdb.data()), pdb.size()))
                  .is_ok());
  EXPECT_EQ(shim.registered_structures(), (std::vector<std::string>{"foo.pdb"}));
  ASSERT_TRUE(shim.write("/data/bar.xtc", "vmd", make_xtc(3)).is_ok());
  EXPECT_TRUE(shim.was_intercepted("bar.xtc"));

  // Tagged read returns the decompressed protein subset.
  const auto protein = shim.read("/mnt/bar.xtc", "vmd", Tag("p")).value();
  const auto reader = formats::RawTrajCatReader::open(protein).value();
  EXPECT_EQ(reader.frame_count(), 3u);
  EXPECT_EQ(reader.atom_count(), system_.count_category(chem::Category::kProtein));

  // The .pdb stayed readable as a plain file (mol new re-opens it).
  const auto pdb_back = shim.read("/data/foo.pdb", "vmd").value();
  EXPECT_EQ(std::string(pdb_back.begin(), pdb_back.end()), pdb);
}

TEST_F(VfsFsckTest, UntaggedReadOfDatasetReturnsAllSubsets) {
  VfsShim shim(*ada_, root_ + "/host");
  const std::string pdb = formats::write_pdb(system_);
  ASSERT_TRUE(shim.write("foo.pdb", "vmd",
                         std::span(reinterpret_cast<const std::uint8_t*>(pdb.data()), pdb.size()))
                  .is_ok());
  ASSERT_TRUE(shim.write("bar.xtc", "vmd", make_xtc(2)).is_ok());
  const auto all = shim.read("bar.xtc", "vmd").value();
  const std::uint64_t m = ada_->subset_bytes("bar.xtc", "m").value();
  const std::uint64_t p = ada_->subset_bytes("bar.xtc", "p").value();
  EXPECT_EQ(all.size(), m + p);
}

TEST_F(VfsFsckTest, GuideSelectionIsExplicit) {
  VfsShim shim(*ada_, root_ + "/host");
  const std::string pdb = formats::write_pdb(system_);
  const auto span_of = [](const std::string& s) {
    return std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  };
  ASSERT_TRUE(shim.write("first.pdb", "vmd", span_of(pdb)).is_ok());
  ASSERT_TRUE(shim.write("second.pdb", "vmd", span_of(pdb)).is_ok());
  // Most recent wins by default; set_guide overrides.
  ASSERT_TRUE(shim.set_guide("first.pdb").is_ok());
  ASSERT_TRUE(shim.write("bar.xtc", "vmd", make_xtc(1)).is_ok());
  EXPECT_FALSE(shim.set_guide("missing.pdb").is_ok());
}

TEST_F(VfsFsckTest, TaggedReadOfPlainPathFails) {
  VfsShim shim(*ada_, root_ + "/host");
  const std::string note = "x";
  ASSERT_TRUE(shim.write("notes.txt", "vmd",
                         std::span(reinterpret_cast<const std::uint8_t*>(note.data()), 1))
                  .is_ok());
  EXPECT_FALSE(shim.read("notes.txt", "vmd", Tag("p")).is_ok());
}

// --- streaming ingest ------------------------------------------------------------------

TEST_F(VfsFsckTest, StreamingIngestChunksAndReadsBack) {
  const auto labels = categorize_protein_misc(system_);
  auto stream = ada_->begin_stream(labels, "stream.xtc", /*chunk_frames=*/4).value();
  workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
  for (int f = 0; f < 10; ++f) {
    ASSERT_TRUE(stream
                    .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                               gen.next_frame())
                    .is_ok());
  }
  const auto report = stream.finish().value();
  EXPECT_EQ(report.frames, 10u);
  EXPECT_EQ(report.chunks, 3u);  // 4 + 4 + 2

  // Chunked subsets read back as one logical trajectory.
  const auto protein = ada_->query("stream.xtc", kProteinTag).value();
  const auto reader = formats::RawTrajCatReader::open(protein).value();
  EXPECT_EQ(reader.frame_count(), 10u);
  EXPECT_EQ(reader.segment_count(), 3u);
  // Labels were persisted at finish().
  EXPECT_EQ(ada_->labels("stream.xtc").value(), labels);
}

TEST_F(VfsFsckTest, StreamRejectsAfterFinishAndBadFrames) {
  const auto labels = categorize_protein_misc(system_);
  auto stream = ada_->begin_stream(labels, "s2.xtc", 8).value();
  std::vector<float> wrong(3, 0.0f);
  EXPECT_FALSE(stream.add_frame(0, 0.0f, system_.box(), wrong).is_ok());
  ASSERT_TRUE(stream.add_frame(0, 0.0f, system_.box(), system_.reference_coords()).is_ok());
  ASSERT_TRUE(stream.finish().is_ok());
  EXPECT_FALSE(stream.add_frame(1, 2.0f, system_.box(), system_.reference_coords()).is_ok());
  EXPECT_FALSE(stream.finish().is_ok());
}

TEST_F(VfsFsckTest, MovedFromStreamIsSealedAndMoveTargetFinishes) {
  // Regression: the move constructor must seal the source.  A defaulted
  // move would leave the husk with a live dispatcher_ and finished_ ==
  // false, so a stale finish() on it would dispatch a second label file
  // into the container.
  const auto labels = categorize_protein_misc(system_);
  auto stream = ada_->begin_stream(labels, "moved.xtc", /*chunk_frames=*/4).value();
  workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
  for (int f = 0; f < 3; ++f) {
    ASSERT_TRUE(stream
                    .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                               gen.next_frame())
                    .is_ok());
  }

  IngestStream moved = std::move(stream);
  // The husk rejects everything; it must not touch the container.
  EXPECT_FALSE(stream.add_frame(3, 3.0f, system_.box(), gen.next_frame()).is_ok());
  EXPECT_FALSE(stream.finish().is_ok());

  // The move target carries on: buffered frames, counters, and the
  // container handle all travelled.
  ASSERT_TRUE(moved
                  .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                             gen.next_frame())
                  .is_ok());
  const auto report = moved.finish().value();
  EXPECT_EQ(report.frames, 4u);
  EXPECT_EQ(report.chunks, 1u);

  // Exactly one label file landed; the subset reads back whole.
  EXPECT_EQ(ada_->labels("moved.xtc").value(), labels);
  const auto protein = ada_->query("moved.xtc", kProteinTag).value();
  const auto reader = formats::RawTrajCatReader::open(protein).value();
  EXPECT_EQ(reader.frame_count(), 4u);
}

TEST_F(VfsFsckTest, StreamValidation) {
  const auto labels = categorize_protein_misc(system_);
  EXPECT_FALSE(ada_->begin_stream(labels, "bad.xtc", 0).is_ok());
  LabelMap holes;
  holes.atom_count = 10;
  holes.groups["p"] = chem::Selection::from_runs({{0, 5}});  // hole at [5,10)
  EXPECT_FALSE(ada_->begin_stream(holes, "holes.xtc", 4).is_ok());
}

// --- fsck -----------------------------------------------------------------------------

TEST_F(VfsFsckTest, CleanContainerVerifies) {
  ASSERT_TRUE(ada_->ingest(system_, make_xtc(2), "bar.xtc").is_ok());
  const auto report = plfs::verify_container(ada_->mount(), "bar.xtc").value();
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.extents_complete);
}

TEST_F(VfsFsckTest, MissingDroppingDetectedAndRepaired) {
  ASSERT_TRUE(ada_->ingest(system_, make_xtc(2), "bar.xtc").is_ok());
  // Kill the protein dropping on the SSD backend.
  const auto locations = Indexer(ada_->mount()).locate("bar.xtc", kProteinTag).value();
  ASSERT_FALSE(locations.empty());
  fs::remove(locations[0].host_path);

  auto report = plfs::verify_container(ada_->mount(), "bar.xtc").value();
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.broken_records.size(), 1u);
  EXPECT_EQ(report.broken_records[0].label, kProteinTag);
  EXPECT_FALSE(report.extents_complete);

  const auto actions = plfs::repair_container(ada_->mount(), "bar.xtc").value();
  EXPECT_EQ(actions.records_dropped, 1u);
  // After repair: index is consistent again (the protein subset is gone, the
  // MISC subset still reads).
  report = plfs::verify_container(ada_->mount(), "bar.xtc").value();
  EXPECT_TRUE(report.broken_records.empty());
  EXPECT_FALSE(ada_->query("bar.xtc", kProteinTag).is_ok());
  EXPECT_TRUE(ada_->query("bar.xtc", kMiscTag).is_ok());
}

TEST_F(VfsFsckTest, TruncatedDroppingDetected) {
  ASSERT_TRUE(ada_->ingest(system_, make_xtc(2), "bar.xtc").is_ok());
  const auto locations = Indexer(ada_->mount()).locate("bar.xtc", kMiscTag).value();
  ASSERT_FALSE(locations.empty());
  const auto full = read_file(locations[0].host_path).value();
  ASSERT_TRUE(write_file(locations[0].host_path,
                         std::span(full).subspan(0, full.size() / 2))
                  .is_ok());
  const auto report = plfs::verify_container(ada_->mount(), "bar.xtc").value();
  ASSERT_EQ(report.broken_records.size(), 1u);
  EXPECT_EQ(report.broken_records[0].label, kMiscTag);
}

TEST_F(VfsFsckTest, OrphanDroppingsDetectedAndRemoved) {
  ASSERT_TRUE(ada_->ingest(system_, make_xtc(1), "bar.xtc").is_ok());
  // Drop a stray file into the container directory on backend 1.
  const std::string stray =
      ada_->mount().dropping_host_path(1, "bar.xtc", "dropping.zzz.999");
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  ASSERT_TRUE(write_file(stray, junk).is_ok());

  auto report = plfs::verify_container(ada_->mount(), "bar.xtc").value();
  ASSERT_EQ(report.orphan_droppings.size(), 1u);
  EXPECT_EQ(report.orphan_droppings[0].second, "dropping.zzz.999");

  const auto actions = plfs::repair_container(ada_->mount(), "bar.xtc").value();
  EXPECT_EQ(actions.orphans_removed, 1u);
  EXPECT_FALSE(fs::exists(stray));
  EXPECT_TRUE(plfs::verify_container(ada_->mount(), "bar.xtc").value().clean());
}

TEST_F(VfsFsckTest, InterruptedStreamLeavesRepairableContainer) {
  // Simulate a crash: stream some chunks, never call finish().
  const auto labels = categorize_protein_misc(system_);
  {
    auto stream = ada_->begin_stream(labels, "crashed.xtc", 2).value();
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    for (int f = 0; f < 5; ++f) {
      ASSERT_TRUE(stream
                      .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                                 gen.next_frame())
                      .is_ok());
    }
    // stream dropped here: the partial 5th-frame chunk and label file are lost.
  }
  // The flushed chunks are durable and consistent.
  const auto report = plfs::verify_container(ada_->mount(), "crashed.xtc").value();
  EXPECT_TRUE(report.broken_records.empty());
  EXPECT_TRUE(report.orphan_droppings.empty());
  const auto protein = ada_->query("crashed.xtc", kProteinTag).value();
  EXPECT_EQ(formats::RawTrajCatReader::open(protein).value().frame_count(), 4u);
  // The label file is gone though -- labels() fails, which is how a recovery
  // tool knows finish() never ran.
  EXPECT_FALSE(ada_->labels("crashed.xtc").is_ok());
}

TEST_F(VfsFsckTest, VerifyMissingContainerFails) {
  EXPECT_FALSE(plfs::verify_container(ada_->mount(), "nope").is_ok());
  EXPECT_FALSE(plfs::repair_container(ada_->mount(), "nope").is_ok());
}

// --- checksums + quarantine -----------------------------------------------------------

TEST_F(VfsFsckTest, ChecksumBadExtentQuarantinedOthersSurvive) {
  ASSERT_TRUE(ada_->ingest(system_, make_xtc(2), "bar.xtc").is_ok());
  const auto misc_before = ada_->query("bar.xtc", kMiscTag).value();

  // Flip one byte in the middle of the protein dropping: length is intact,
  // so only the checksum can catch it.
  const auto locations = Indexer(ada_->mount()).locate("bar.xtc", kProteinTag).value();
  ASSERT_FALSE(locations.empty());
  auto bytes = read_file(locations[0].host_path).value();
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(write_file(locations[0].host_path, bytes).is_ok());

  // The read path refuses to serve the corrupt extent (never corrupt bytes).
  const auto corrupt = ada_->query("bar.xtc", kProteinTag);
  ASSERT_FALSE(corrupt.is_ok());
  EXPECT_EQ(corrupt.error().code(), ErrorCode::kCorruptData);

  // fsck pins the damage to exactly that extent.
  auto report = plfs::verify_container(ada_->mount(), "bar.xtc").value();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.broken_records.empty()) << "length is intact, only the CRC differs";
  ASSERT_EQ(report.checksum_bad_records.size(), 1u);
  EXPECT_EQ(report.checksum_bad_records[0].label, kProteinTag);

  // Repair quarantines the bad dropping (kept for forensics) and drops it
  // from the index; the other tag is untouched, byte for byte.
  const auto actions = plfs::repair_container(ada_->mount(), "bar.xtc").value();
  EXPECT_EQ(actions.extents_quarantined, 1u);
  EXPECT_EQ(actions.records_dropped, 0u);
  EXPECT_FALSE(fs::exists(locations[0].host_path));
  EXPECT_TRUE(fs::exists(locations[0].host_path + ".quarantined"));

  report = plfs::verify_container(ada_->mount(), "bar.xtc").value();
  EXPECT_TRUE(report.checksum_bad_records.empty());
  EXPECT_TRUE(report.orphan_droppings.empty()) << "quarantined files are not orphans";
  EXPECT_FALSE(ada_->query("bar.xtc", kProteinTag).is_ok());
  EXPECT_EQ(ada_->query("bar.xtc", kMiscTag).value(), misc_before);
}

TEST_F(VfsFsckTest, RepairIsIdempotentAfterQuarantine) {
  ASSERT_TRUE(ada_->ingest(system_, make_xtc(1), "bar.xtc").is_ok());
  const auto locations = Indexer(ada_->mount()).locate("bar.xtc", kProteinTag).value();
  auto bytes = read_file(locations[0].host_path).value();
  bytes[0] ^= 0x01;
  ASSERT_TRUE(write_file(locations[0].host_path, bytes).is_ok());

  ASSERT_EQ(plfs::repair_container(ada_->mount(), "bar.xtc").value().extents_quarantined, 1u);
  const auto again = plfs::repair_container(ada_->mount(), "bar.xtc").value();
  EXPECT_EQ(again.extents_quarantined, 0u);
  EXPECT_EQ(again.orphans_removed, 0u);
  EXPECT_TRUE(fs::exists(locations[0].host_path + ".quarantined"));
}

// --- degraded queries ------------------------------------------------------------------

TEST_F(VfsFsckTest, DegradedQueryReturnsAllSubsetsWhenHealthy) {
  ASSERT_TRUE(ada_->ingest(system_, make_xtc(2), "bar.xtc").is_ok());
  const auto partial = ada_->query_degraded("bar.xtc").value();
  EXPECT_FALSE(partial.partial());
  EXPECT_EQ(partial.subsets.size(), 2u);  // m + p
  const std::uint64_t m = ada_->subset_bytes("bar.xtc", "m").value();
  const std::uint64_t p = ada_->subset_bytes("bar.xtc", "p").value();
  EXPECT_EQ(partial.concat().size(), m + p);
}

TEST_F(VfsFsckTest, DegradedQueryFlagsLostTagAndServesSurvivors) {
  ASSERT_TRUE(ada_->ingest(system_, make_xtc(2), "bar.xtc").is_ok());
  const auto misc = ada_->query("bar.xtc", kMiscTag).value();
  const auto locations = Indexer(ada_->mount()).locate("bar.xtc", kProteinTag).value();
  fs::remove(locations[0].host_path);

  const auto partial = ada_->query_degraded("bar.xtc").value();
  EXPECT_TRUE(partial.partial());
  ASSERT_EQ(partial.failed.size(), 1u);
  EXPECT_EQ(partial.failed[0].tag, kProteinTag);
  ASSERT_EQ(partial.subsets.size(), 1u);
  EXPECT_EQ(partial.subsets.at(kMiscTag), misc);
  EXPECT_EQ(partial.concat(), misc);
}

TEST_F(VfsFsckTest, DegradedReadThroughShim) {
  VfsShim shim(*ada_, root_ + "/host");
  const std::string pdb = formats::write_pdb(system_);
  ASSERT_TRUE(shim.write("foo.pdb", "vmd",
                         std::span(reinterpret_cast<const std::uint8_t*>(pdb.data()), pdb.size()))
                  .is_ok());
  ASSERT_TRUE(shim.write("bar.xtc", "vmd", make_xtc(1)).is_ok());
  EXPECT_FALSE(shim.read_degraded("foo.pdb", "vmd").is_ok()) << "passthrough has no partial mode";
  const auto partial = shim.read_degraded("bar.xtc", "vmd").value();
  EXPECT_FALSE(partial.partial());
  EXPECT_EQ(partial.concat(), shim.read("bar.xtc", "vmd").value());
}

TEST_F(VfsFsckTest, DegradedQueryFailsOnlyWhenIndexUnreadable) {
  EXPECT_FALSE(ada_->query_degraded("nope.xtc").is_ok());
}

}  // namespace
}  // namespace ada::core
