// Tests for mini-VMD: frame store, geometry, renderer, mol commands,
// profiler, animation replayer.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/binary_io.hpp"
#include "common/units.hpp"
#include "formats/pdb.hpp"
#include "formats/xtc_file.hpp"
#include "vmd/command.hpp"
#include "vmd/frame_store.hpp"
#include "vmd/geometry.hpp"
#include "vmd/mol.hpp"
#include "vmd/profiler.hpp"
#include "vmd/renderer.hpp"
#include "vmd/replay.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::vmd {
namespace {

namespace fs = std::filesystem;

chem::System tiny_system() {
  return workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
}

formats::TrajFrame frame_of(const chem::System& system) {
  formats::TrajFrame frame;
  frame.coords = system.reference_coords();
  frame.box = system.box();
  return frame;
}

// --- frame store -----------------------------------------------------------------

TEST(FrameStoreTest, AddAndAccess) {
  const auto system = tiny_system();
  FrameStore store;
  ASSERT_TRUE(store.add_frame(frame_of(system)).is_ok());
  ASSERT_TRUE(store.add_frame(frame_of(system)).is_ok());
  EXPECT_EQ(store.frame_count(), 2u);
  EXPECT_EQ(store.atom_count(), system.atom_count());
  EXPECT_GT(store.bytes(), 0.0);
}

TEST(FrameStoreTest, MemoryChargedAndFreed) {
  const auto system = tiny_system();
  storage::MemoryTracker memory(1 * kGB);
  {
    FrameStore store(&memory, "test_frames");
    ASSERT_TRUE(store.add_frame(frame_of(system)).is_ok());
    const double expected = static_cast<double>(system.atom_count()) * 12.0 + 44.0;
    EXPECT_DOUBLE_EQ(memory.charged("test_frames"), expected);
    store.clear();
    EXPECT_DOUBLE_EQ(memory.in_use(), 0.0);
    ASSERT_TRUE(store.add_frame(frame_of(system)).is_ok());
  }
  // Destructor releases the remaining charge.
  EXPECT_DOUBLE_EQ(memory.in_use(), 0.0);
}

TEST(FrameStoreTest, OomRejectsFrame) {
  const auto system = tiny_system();
  storage::MemoryTracker memory(30 * 1e3, 0.0);  // ~1 tiny frame
  FrameStore store(&memory, "f");
  ASSERT_TRUE(store.add_frame(frame_of(system)).is_ok());
  const Status s = store.add_frame(frame_of(system));
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(store.frame_count(), 1u);  // rejected frame not stored
}

TEST(FrameStoreTest, MismatchedAtomCountRejected) {
  FrameStore store;
  formats::TrajFrame a;
  a.coords.resize(9);
  formats::TrajFrame b;
  b.coords.resize(12);
  ASSERT_TRUE(store.add_frame(a).is_ok());
  EXPECT_FALSE(store.add_frame(b).is_ok());
}

// --- geometry ---------------------------------------------------------------------

TEST(GeometryTest, WaterMoleculeHasTwoBonds) {
  // O at origin, two H on opposite sides at 0.095 nm: both O-H pairs bond
  // (0.095 < 0.6*(0.152+0.12) = 0.163); the H-H pair does not
  // (0.19 nm > 0.6*(0.12+0.12) = 0.144).
  const std::vector<float> coords = {0, 0, 0, 0.095f, 0, 0, -0.095f, 0, 0};
  const std::vector<float> radii = {0.152f, 0.12f, 0.12f};
  const auto bonds = find_bonds(coords, radii);
  ASSERT_EQ(bonds.size(), 2u);
  EXPECT_EQ(bonds[0], (Bond{0, 1}));
  EXPECT_EQ(bonds[1], (Bond{0, 2}));
}

TEST(GeometryTest, DistantAtomsDoNotBond) {
  const std::vector<float> coords = {0, 0, 0, 1, 1, 1};
  const std::vector<float> radii = {0.17f, 0.17f};
  EXPECT_TRUE(find_bonds(coords, radii).empty());
}

TEST(GeometryTest, CoincidentAtomsDoNotBond) {
  // Exact overlap is excluded (dist2 ~ 0): VMD treats it as an alt-loc.
  const std::vector<float> coords = {1, 1, 1, 1, 1, 1};
  const std::vector<float> radii = {0.17f, 0.17f};
  EXPECT_TRUE(find_bonds(coords, radii).empty());
}

TEST(GeometryTest, CellListMatchesBruteForce) {
  const auto system = tiny_system();
  const auto selection = system.selection_for(chem::Category::kProtein);
  const auto radii = subset_radii(system, selection);
  const auto coords = formats::extract_subset(system.reference_coords(), selection);
  const auto fast = find_bonds(coords, radii);

  // O(N^2) reference.
  std::vector<Bond> slow;
  for (std::uint32_t i = 0; i < radii.size(); ++i) {
    for (std::uint32_t j = i + 1; j < radii.size(); ++j) {
      float d2 = 0;
      for (int d = 0; d < 3; ++d) {
        const float diff = coords[3 * i + static_cast<std::size_t>(d)] -
                           coords[3 * j + static_cast<std::size_t>(d)];
        d2 += diff * diff;
      }
      const float limit = 0.6f * (radii[i] + radii[j]);
      if (d2 < limit * limit && d2 > 1e-8f) slow.push_back(Bond{i, j});
    }
  }
  EXPECT_EQ(fast, slow);
}

TEST(GeometryTest, StatsConsistent) {
  const auto system = tiny_system();
  const auto selection = chem::Selection::all(system.atom_count());
  const auto radii = subset_radii(system, selection);
  const auto stats = build_geometry(system.reference_coords(), radii);
  EXPECT_EQ(stats.atoms, system.atom_count());
  EXPECT_EQ(stats.sphere_count, stats.atoms);
  EXPECT_EQ(stats.line_vertices, 2 * stats.bonds);
  EXPECT_GT(stats.bonds, stats.atoms / 2);  // molecules are bonded structures
}

TEST(GeometryTest, SubsetRadiiFollowElements) {
  const auto system = tiny_system();
  const auto protein = system.selection_for(chem::Category::kProtein);
  const auto radii = subset_radii(system, protein);
  ASSERT_EQ(radii.size(), protein.count());
  for (const float r : radii) {
    EXPECT_GT(r, 0.1f);
    EXPECT_LT(r, 0.3f);
  }
}

// --- renderer ----------------------------------------------------------------------

TEST(RendererTest, RendersNonEmptyImage) {
  const auto system = tiny_system();
  const auto selection = chem::Selection::all(system.atom_count());
  const auto radii = subset_radii(system, selection);
  std::vector<chem::Category> categories;
  for (std::uint32_t i = 0; i < system.atom_count(); ++i) categories.push_back(system.category(i));
  RenderOptions options;
  options.width = 64;
  options.height = 64;
  const auto result = render_frame(system.reference_coords(), radii, categories, options).value();
  EXPECT_EQ(result.image.rgb.size(), 3u * 64 * 64);
  // Some pixels must differ from the background.
  int lit = 0;
  for (std::size_t p = 0; p < result.image.rgb.size(); p += 3) {
    if (result.image.rgb[p] != 16) ++lit;
  }
  EXPECT_GT(lit, 100);
}

TEST(RendererTest, InputValidation) {
  const std::vector<float> coords = {0, 0, 0};
  const std::vector<float> radii = {0.1f};
  const std::vector<chem::Category> categories = {chem::Category::kProtein};
  RenderOptions bad;
  bad.width = 0;
  EXPECT_FALSE(render_frame(coords, radii, categories, bad).is_ok());
  bad = RenderOptions{};
  bad.view_axis = 5;
  EXPECT_FALSE(render_frame(coords, radii, categories, bad).is_ok());
  const std::vector<float> wrong_radii = {0.1f, 0.2f};
  EXPECT_FALSE(render_frame(coords, wrong_radii, categories, {}).is_ok());
}

TEST(RendererTest, EmptyFrameRenders) {
  const auto result = render_frame({}, {}, {}, {}).value();
  EXPECT_EQ(result.stats.atoms, 0u);
}

TEST(RendererTest, PpmRoundTrip) {
  Image image;
  image.width = 2;
  image.height = 1;
  image.rgb = {255, 0, 0, 0, 255, 0};
  const auto ppm = image.to_ppm();
  const std::string header(ppm.begin(), ppm.begin() + 9);
  EXPECT_EQ(header, "P6\n2 1\n25");
  const std::string path = testing::TempDir() + "/ada_render_test.ppm";
  ASSERT_TRUE(write_ppm(path, image).is_ok());
  EXPECT_EQ(read_file(path).value().size(), ppm.size());
}

TEST(RendererTest, CategoryColorsDistinct) {
  std::uint8_t protein[3];
  std::uint8_t water[3];
  category_color(chem::Category::kProtein, protein);
  category_color(chem::Category::kWater, water);
  EXPECT_NE(std::make_tuple(protein[0], protein[1], protein[2]),
            std::make_tuple(water[0], water[1], water[2]));
}

// --- profiler -----------------------------------------------------------------------

TEST(ProfilerTest, AccumulatesAndFolds) {
  PhaseProfiler profiler;
  profiler.add("vmd;load;decompress", 1.5);
  profiler.add("vmd;load;decompress", 0.5);
  profiler.add("vmd;render", 1.0);
  EXPECT_DOUBLE_EQ(profiler.total_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(profiler.seconds_under("vmd;load"), 2.0);
  EXPECT_NEAR(profiler.fraction_under("vmd;load;decompress"), 2.0 / 3.0, 1e-12);
  const auto lines = profiler.folded();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "vmd;load;decompress 2000");
  EXPECT_EQ(lines[1], "vmd;render 1000");
}

TEST(ProfilerTest, PrefixDoesNotMatchPartialNames) {
  PhaseProfiler profiler;
  profiler.add("vmd;loader", 1.0);
  EXPECT_DOUBLE_EQ(profiler.seconds_under("vmd;load"), 0.0);
}

TEST(ProfilerTest, ClearResets) {
  PhaseProfiler profiler;
  profiler.add("x", 1.0);
  profiler.clear();
  EXPECT_DOUBLE_EQ(profiler.total_seconds(), 0.0);
  EXPECT_TRUE(profiler.folded().empty());
}

// --- replayer ------------------------------------------------------------------------

TEST(ReplayTest, SequentialFirstPassAllMisses) {
  AnimationReplayer replayer(100, 1000.0, 1e9);  // cache fits everything
  replayer.play_sequential();
  EXPECT_EQ(replayer.stats().accesses, 100u);
  EXPECT_EQ(replayer.stats().misses, 100u);
  replayer.play_sequential();  // second pass all hits
  EXPECT_EQ(replayer.stats().hits, 100u);
}

TEST(ReplayTest, BackAndForthWithTightCacheThrashes) {
  // Paper Section 2.1: back-and-forth replay with limited memory -> low hit
  // rate.  Cache of 10 frames over 100-frame sweeps: LRU evicts everything
  // before it is revisited except at the turning points.
  AnimationReplayer replayer(100, 1000.0, 10 * 1000.0);
  replayer.play_back_and_forth(3);
  EXPECT_LT(replayer.stats().hit_rate(), 0.2);
  EXPECT_GT(replayer.stats().refetch_bytes, 400 * 1000.0);
}

TEST(ReplayTest, SmallerFramesRaiseHitRate) {
  // ADA's effect: protein-only frames are ~42% the size, so the same memory
  // caches ~2.4x the frames and the hit rate climbs.
  const double memory = 50 * 1000.0;
  AnimationReplayer full(100, 1000.0, memory);      // 50 frames fit
  AnimationReplayer protein(100, 425.0, memory);    // 117 frames fit -> all
  full.play_back_and_forth(2);
  protein.play_back_and_forth(2);
  EXPECT_GT(protein.stats().hit_rate(), full.stats().hit_rate() + 0.2);
}

TEST(ReplayTest, RandomAccessHitRateTracksCacheFraction) {
  Rng rng(42);
  AnimationReplayer replayer(1000, 1000.0, 250 * 1000.0);  // 25% cached
  replayer.play_random(20000, rng);
  EXPECT_NEAR(replayer.stats().hit_rate(), 0.25, 0.05);
}

TEST(ReplayTest, CacheNeverExceedsCapacity) {
  Rng rng(7);
  AnimationReplayer replayer(500, 1000.0, 32 * 1000.0);
  replayer.play_random(5000, rng);
  EXPECT_LE(replayer.cached_frames(), replayer.cache_capacity_frames());
}

// --- mol session + commands ------------------------------------------------------------

class MolSessionTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/vmd_mol_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    fs::create_directories(root_);
    system_ = tiny_system();

    core::AdaConfig config;
    config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
    ada_ = std::make_unique<core::Ada>(
        plfs::PlfsMount::open({{"ssd", root_ + "/ssd"}, {"hdd", root_ + "/hdd"}}).value(),
        config);

    // Ingest a 3-frame trajectory as bar.xtc.
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    formats::XtcWriter writer;
    for (int f = 0; f < 3; ++f) {
      ADA_CHECK(writer
                    .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(),
                               gen.next_frame())
                    .is_ok());
    }
    xtc_image_ = writer.take();
    ADA_CHECK(ada_->ingest(system_, xtc_image_, "bar.xtc").is_ok());

    // Host-side files for the non-ADA paths.
    ADA_CHECK(formats::write_pdb_file(root_ + "/foo.pdb", system_).is_ok());
    ADA_CHECK(write_file(root_ + "/plain.xtc", xtc_image_).is_ok());
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
  chem::System system_;
  std::unique_ptr<core::Ada> ada_;
  std::vector<std::uint8_t> xtc_image_;
};

TEST_F(MolSessionTest, AddfileRequiresMolecule) {
  MolSession session(ada_.get());
  EXPECT_FALSE(session.mol_addfile("/mnt/bar.xtc").is_ok());
}

TEST_F(MolSessionTest, PlainXtcLoad) {
  MolSession session;
  ASSERT_TRUE(session.mol_new_file(root_ + "/foo.pdb").is_ok());
  ASSERT_TRUE(session.mol_addfile(root_ + "/plain.xtc").is_ok());
  EXPECT_EQ(session.frames().frame_count(), 3u);
  EXPECT_EQ(session.loaded_selection().count(), system_.atom_count());
  // The decompress phase was profiled (the Fig. 8 hot spot).
  EXPECT_GT(session.profiler().seconds_under("vmd;load;decompress"), 0.0);
}

TEST_F(MolSessionTest, TaggedLoadViaAda) {
  MolSession session(ada_.get());
  ASSERT_TRUE(session.mol_new_file(root_ + "/foo.pdb").is_ok());
  ASSERT_TRUE(session.mol_addfile("/mnt/bar.xtc", core::Tag("p")).is_ok());
  EXPECT_EQ(session.frames().frame_count(), 3u);
  EXPECT_EQ(session.loaded_selection().count(),
            system_.count_category(chem::Category::kProtein));
  // No decompression happened on the "compute node".
  EXPECT_DOUBLE_EQ(session.profiler().seconds_under("vmd;load;decompress"), 0.0);
}

TEST_F(MolSessionTest, AdaAllReconstructsFullFrames) {
  MolSession session(ada_.get());
  ASSERT_TRUE(session.mol_new_file(root_ + "/foo.pdb").is_ok());
  ASSERT_TRUE(session.mol_addfile("/mnt/bar.xtc").is_ok());  // no tag: ADA(all)
  ASSERT_EQ(session.frames().frame_count(), 3u);
  EXPECT_EQ(session.loaded_selection().count(), system_.atom_count());
  // Reconstructed frames must match direct decompression of the source.
  const auto direct = formats::read_all_xtc(xtc_image_).value();
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(session.frames().frame(f).coords, direct[f].coords) << "frame " << f;
    EXPECT_EQ(session.frames().frame(f).step, direct[f].step);
  }
}

TEST_F(MolSessionTest, TaggedLoadWithoutAdaFails) {
  MolSession session;  // no middleware
  ASSERT_TRUE(session.mol_new_file(root_ + "/foo.pdb").is_ok());
  EXPECT_FALSE(session.mol_addfile(root_ + "/plain.xtc", core::Tag("p")).is_ok());
}

TEST_F(MolSessionTest, RenderLoadedSubset) {
  MolSession session(ada_.get());
  ASSERT_TRUE(session.mol_new_file(root_ + "/foo.pdb").is_ok());
  ASSERT_TRUE(session.mol_addfile("/mnt/bar.xtc", core::Tag("p")).is_ok());
  RenderOptions options;
  options.width = 48;
  options.height = 48;
  const auto result = session.render(0, options).value();
  EXPECT_EQ(result.stats.atoms, system_.count_category(chem::Category::kProtein));
  EXPECT_FALSE(session.render(99).is_ok());
}

TEST_F(MolSessionTest, CommandInterpreterEndToEnd) {
  MolSession session(ada_.get());
  CommandInterpreter interpreter(session);
  ASSERT_TRUE(interpreter.execute("mol new " + root_ + "/foo.pdb").is_ok());
  const auto loaded = interpreter.execute("mol addfile /mnt/bar.xtc tag p");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_NE(loaded.value().find("tag p"), std::string::npos);
  ASSERT_TRUE(interpreter.execute("animate goto 2").is_ok());
  EXPECT_EQ(interpreter.current_frame(), 2u);
  EXPECT_FALSE(interpreter.execute("animate goto 99").is_ok());
  const std::string out = root_ + "/snap.ppm";
  ASSERT_TRUE(interpreter.execute("render snapshot " + out).is_ok());
  EXPECT_TRUE(fs::exists(out));
  EXPECT_TRUE(interpreter.execute("mol info").is_ok());
  EXPECT_FALSE(interpreter.execute("bogus command").is_ok());
  EXPECT_TRUE(interpreter.execute("").is_ok());
}

TEST_F(MolSessionTest, AtomselectAndMeasureCommands) {
  MolSession session(ada_.get());
  CommandInterpreter interpreter(session);
  // Pre-molecule: both commands refuse.
  EXPECT_FALSE(interpreter.execute("atomselect protein").is_ok());
  ASSERT_TRUE(interpreter.execute("mol new " + root_ + "/foo.pdb").is_ok());
  EXPECT_FALSE(interpreter.execute("measure rgyr").is_ok());  // no frames yet
  ASSERT_TRUE(interpreter.execute("mol addfile /mnt/bar.xtc tag p").is_ok());

  const auto selected = interpreter.execute("atomselect protein and backbone").value();
  EXPECT_NE(selected.find("atoms selected"), std::string::npos);
  // Water is not part of the loaded protein subset.
  const auto water = interpreter.execute("atomselect water").value();
  EXPECT_NE(water.find("(0 in the loaded subset)"), std::string::npos);
  EXPECT_FALSE(interpreter.execute("atomselect").is_ok());
  EXPECT_FALSE(interpreter.execute("atomselect bogus keyword").is_ok());

  EXPECT_NE(interpreter.execute("measure rgyr").value().find("Rgyr ="), std::string::npos);
  EXPECT_NE(interpreter.execute("measure rmsd 0 2").value().find("aligned RMSD"),
            std::string::npos);
  EXPECT_FALSE(interpreter.execute("measure rmsd 0 99").is_ok());
  EXPECT_FALSE(interpreter.execute("measure bogus").is_ok());
}

TEST(LogicalNameTest, BasenameExtraction) {
  EXPECT_EQ(logical_name_of("/mnt/bar.xtc"), "bar.xtc");
  EXPECT_EQ(logical_name_of("bar.xtc"), "bar.xtc");
  EXPECT_EQ(logical_name_of("/a/b/c/d.pdb"), "d.pdb");
}

}  // namespace
}  // namespace ada::vmd
