// Request-timeline recorder tests: the disabled fast path creates nothing,
// ring wraparound keeps the newest events, the Chrome-JSON export is
// byte-stable, contexts propagate across parallel_run workers, and a
// concurrent record/export stress run is data-race-free (the tier's TSan
// coverage under ADA_SANITIZE).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "obs/events.hpp"
#include "obs/trace_export.hpp"

namespace ada::obs {
namespace {

class TraceTest : public testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(false);
    reset_events();
  }
  void TearDown() override {
    set_trace_enabled(false);
    reset_events();
    set_default_ring_capacity(8192);
  }

  static std::vector<RawEvent> events_of(RawEvent::Phase phase) {
    std::vector<RawEvent> out;
    for (const RawEvent& event : snapshot_events()) {
      if (event.phase == phase) out.push_back(event);
    }
    return out;
  }
};

// --- disabled fast path ---------------------------------------------------------------

TEST_F(TraceTest, DisabledPathCreatesNoRingAndRecordsNothing) {
  // The acceptance criterion: with tracing disabled an instrumented call
  // site performs one relaxed load and nothing else -- in particular it
  // never allocates the thread's ring.  A fresh thread proves it: after
  // recording "events" while disabled, the global ring count is unchanged.
  const std::size_t rings_before = ring_count();
  std::thread([] {
    const TraceSpan span("ingest");
    trace_instant("marker", 7);
    trace_counter("bytes", 42);
    EXPECT_EQ(sim_begin(1, "serve", 0.5, TraceContext{}), 0u);
    sim_end(1, "serve", 1.0, 0, TraceContext{});  // balanced no-op
  }).join();
  EXPECT_EQ(ring_count(), rings_before);
  EXPECT_TRUE(snapshot_events().empty());

  // The same thread pattern with tracing on does create one ring.
  set_trace_enabled(true);
  std::thread([] { const TraceSpan span("ingest"); }).join();
  EXPECT_EQ(ring_count(), rings_before + 1);
  EXPECT_EQ(snapshot_events().size(), 2u);  // begin + end
}

TEST_F(TraceTest, SpanEndsStayBalancedAcrossDisableFlip) {
  set_trace_enabled(true);
  {
    const TraceSpan outer("outer");
    set_trace_enabled(false);  // flipped off mid-span
    const TraceSpan inner("inner");  // records nothing
  }
  const auto begins = events_of(RawEvent::Phase::kBegin);
  const auto ends = events_of(RawEvent::Phase::kEnd);
  ASSERT_EQ(begins.size(), 1u);
  ASSERT_EQ(ends.size(), 1u);  // outer still closed after the flip
  EXPECT_EQ(begins[0].span_id, ends[0].span_id);
  EXPECT_STREQ(begins[0].name, "outer");
}

// --- span semantics -------------------------------------------------------------------

TEST_F(TraceTest, NestedSpansShareTraceAndChainParents) {
  set_trace_enabled(true);
  {
    const TraceSpan root("ingest", "traj_0");
    trace_instant("marker");
    {
      const TraceSpan child("preprocess");
      const TraceSpan grandchild("decode");
    }
  }
  const auto begins = events_of(RawEvent::Phase::kBegin);
  ASSERT_EQ(begins.size(), 3u);
  const RawEvent& root = begins[0];
  const RawEvent& child = begins[1];
  const RawEvent& grandchild = begins[2];
  EXPECT_NE(root.trace_id, 0u);
  EXPECT_EQ(root.parent_span, 0u);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span, root.span_id);
  EXPECT_EQ(grandchild.trace_id, root.trace_id);
  EXPECT_EQ(grandchild.parent_span, child.span_id);
  // The tag set on the root propagates to descendants.
  EXPECT_STREQ(child.tag, "traj_0");
  // Instants inherit the enclosing span as parent.
  const auto instants = events_of(RawEvent::Phase::kInstant);
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].span_id, root.span_id);
}

TEST_F(TraceTest, SeparateRootSpansGetDistinctTraceIds) {
  set_trace_enabled(true);
  { const TraceSpan a("query"); }
  { const TraceSpan b("query"); }
  const auto begins = events_of(RawEvent::Phase::kBegin);
  ASSERT_EQ(begins.size(), 2u);
  EXPECT_NE(begins[0].trace_id, begins[1].trace_id);
}

// --- ring wraparound ------------------------------------------------------------------

TEST_F(TraceTest, WraparoundKeepsTheNewestEvents) {
  set_default_ring_capacity(16);
  set_trace_enabled(true);
  // A fresh thread picks up the small capacity; 100 instants overflow it.
  std::thread([] {
    for (std::uint64_t i = 0; i < 100; ++i) trace_instant("tick", i);
  }).join();
  const auto events = snapshot_events();
  ASSERT_EQ(events.size(), 16u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].value, 100 - 16 + i) << "expected the newest 16 events in order";
  }
  EXPECT_EQ(events_dropped(), 100u - 16u);
  reset_events();
  EXPECT_EQ(events_dropped(), 0u);
  EXPECT_TRUE(snapshot_events().empty());
}

// --- sim plane ------------------------------------------------------------------------

TEST_F(TraceTest, SimLanesCarryContextAndStaySortedInExport) {
  set_trace_enabled(true);
  const std::uint32_t lane_a = register_lane("pvfs.s1.stripe");
  const std::uint32_t lane_b = register_lane("pvfs.s2.stripe");
  EXPECT_NE(lane_a, lane_b);
  // Repeated labels get fresh lanes: per-lane timestamps stay monotone even
  // when a model instance is rebuilt per scenario.
  EXPECT_NE(register_lane("pvfs.s1.stripe"), lane_a);

  TraceContext ctx;
  ctx.trace_id = 77;
  ctx.span_id = 5;
  ctx.set_tag("p");
  // Interleave lanes out of timestamp order; the exporter sorts per lane.
  const std::uint64_t b1 = sim_begin(lane_b, "stripe_read", 0.50, ctx, 4096);
  const std::uint64_t a1 = sim_begin(lane_a, "stripe_read", 0.25, ctx, 8192);
  sim_end(lane_b, "stripe_read", 0.90, b1, ctx);
  sim_end(lane_a, "stripe_read", 0.75, a1, ctx);
  sim_counter(lane_a, "queue_length", 0.30, 3);

  const auto events = snapshot_events();
  ASSERT_EQ(events.size(), 5u);
  for (const RawEvent& event : events) {
    if (event.phase != RawEvent::Phase::kCounter) {
      EXPECT_EQ(event.trace_id, 77u);
      EXPECT_EQ(event.parent_span, 5u);
      EXPECT_STREQ(event.tag, "p");
    }
  }

  // Parse the export back: per (pid, tid) timestamps must be monotone.
  const std::string json = to_chrome_json(events, lane_labels());
  std::vector<std::pair<std::uint64_t, std::string>> lanes;
  const auto parsed = parse_chrome_json(json, &lanes).value();
  std::map<std::pair<std::uint32_t, std::uint64_t>, double> last_ts;
  for (const ExportEvent& event : parsed) {
    const auto key = std::make_pair(event.pid, event.tid);
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) EXPECT_GE(event.ts_us, it->second);
    last_ts[key] = event.ts_us;
  }
  // Lane labels round-trip through the metadata rows.
  bool found_a = false;
  for (const auto& [tid, label] : lanes) {
    if (tid == lane_a && label == "pvfs.s1.stripe") found_a = true;
  }
  EXPECT_TRUE(found_a);
}

// --- golden export --------------------------------------------------------------------

TEST_F(TraceTest, GoldenChromeJsonExport) {
  // to_chrome_json is a pure function of its inputs; this golden locks the
  // field ordering (tools and goldens elsewhere compare strings).
  RawEvent begin;
  begin.phase = RawEvent::Phase::kBegin;
  begin.name = "query";
  begin.ts_ns = 1500;
  begin.trace_id = 1;
  begin.span_id = 2;
  begin.parent_span = 0;
  begin.lane = 0;
  begin.thread = 0;
  std::snprintf(begin.tag, sizeof begin.tag, "p");
  RawEvent end = begin;
  end.phase = RawEvent::Phase::kEnd;
  end.ts_ns = 3750;
  RawEvent counter;
  counter.phase = RawEvent::Phase::kCounter;
  counter.name = "queue_length";
  counter.ts_ns = 2000;
  counter.value = 3;
  counter.lane = 1;
  counter.thread = 0;

  const std::string json =
      to_chrome_json({begin, end, counter}, {{1, "pvfs.mds"}});
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"functional (wall clock)\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"thread 0\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
      "\"args\":{\"name\":\"simulated (sim time)\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,"
      "\"args\":{\"name\":\"pvfs.mds\"}},\n"
      "{\"name\":\"query\",\"ph\":\"B\",\"ts\":1.500,\"pid\":1,\"tid\":0,"
      "\"args\":{\"trace\":1,\"span\":2,\"parent\":0,\"tag\":\"p\"}},\n"
      "{\"name\":\"query\",\"ph\":\"E\",\"ts\":3.750,\"pid\":1,\"tid\":0,"
      "\"args\":{\"trace\":1,\"span\":2,\"parent\":0,\"tag\":\"p\"}},\n"
      "{\"name\":\"queue_length\",\"ph\":\"C\",\"ts\":2.000,\"pid\":2,\"tid\":1,"
      "\"args\":{\"value\":3}}\n"
      "],\"displayTimeUnit\":\"ns\"}\n";
  EXPECT_EQ(json, expected);

  // And it parses back to the same events.
  const auto parsed = parse_chrome_json(json).value();
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].name, "query");
  EXPECT_EQ(parsed[0].ph, 'B');
  EXPECT_DOUBLE_EQ(parsed[0].ts_us, 1.5);
  EXPECT_EQ(parsed[0].trace_id, 1u);
  EXPECT_EQ(parsed[0].span_id, 2u);
  EXPECT_EQ(parsed[0].tag, "p");
  EXPECT_EQ(parsed[2].ph, 'C');
  EXPECT_EQ(parsed[2].value, 3u);
}

// --- parallel_run propagation ---------------------------------------------------------

TEST_F(TraceTest, ContextPropagatesAcrossParallelRunWorkers) {
  set_trace_enabled(true);
  constexpr std::size_t kTasks = 16;
  {
    const TraceSpan root("ingest_batch", "batch");
    // Each task waits until a second thread has entered some task, so the
    // batch provably lands on more than one worker (the calling thread
    // would otherwise race through all of them).
    auto entered = std::make_shared<std::atomic<int>>(0);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < kTasks; ++i) {
      tasks.push_back([entered] {
        const TraceSpan task("task");
        entered->fetch_add(1);
        while (entered->load() < 2) std::this_thread::yield();
      });
    }
    parallel_run(std::move(tasks), 4);
  }
  const auto begins = events_of(RawEvent::Phase::kBegin);
  std::uint64_t root_trace = 0, root_span = 0;
  std::size_t task_begins = 0;
  std::set<std::uint32_t> threads;
  for (const RawEvent& event : begins) {
    if (std::string_view(event.name) == "ingest_batch") {
      root_trace = event.trace_id;
      root_span = event.span_id;
    }
  }
  ASSERT_NE(root_trace, 0u);
  for (const RawEvent& event : begins) {
    if (std::string_view(event.name) != "task") continue;
    ++task_begins;
    threads.insert(event.thread);
    EXPECT_EQ(event.trace_id, root_trace) << "worker span left the caller's trace";
    EXPECT_EQ(event.parent_span, root_span);
    EXPECT_STREQ(event.tag, "batch");
  }
  EXPECT_EQ(task_begins, kTasks);
  EXPECT_GT(threads.size(), 1u) << "expected tasks on more than one thread";
  // Balanced begin/end overall.
  EXPECT_EQ(begins.size(), events_of(RawEvent::Phase::kEnd).size());
}

// --- log joining ----------------------------------------------------------------------

TEST_F(TraceTest, LogLinesCarryTheActiveTraceId) {
  set_trace_enabled(true);
  const TraceSpan span("ingest");
  const TraceContext ctx = current_context();
  testing::internal::CaptureStderr();
  ADA_LOG(kError) << "boom";
  const std::string with_trace = testing::internal::GetCapturedStderr();
  EXPECT_NE(with_trace.find("trace=" + std::to_string(ctx.trace_id) + "/" +
                            std::to_string(ctx.span_id)),
            std::string::npos)
      << with_trace;

  set_trace_enabled(false);
  testing::internal::CaptureStderr();
  ADA_LOG(kError) << "quiet";
  EXPECT_EQ(testing::internal::GetCapturedStderr().find("trace="), std::string::npos);
}

// --- concurrent record/export stress --------------------------------------------------

TEST_F(TraceTest, ConcurrentRecordAndSnapshotIsRaceFree) {
  // Writers hammer their rings (wrapping them many times over) while the
  // main thread snapshots concurrently.  Under ADA_SANITIZE=ON this is the
  // TSan proof that the seqlock slots are data-race-free; unsanitized it
  // still checks that snapshots only ever surface fully-written events.
  set_default_ring_capacity(64);
  set_trace_enabled(true);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kEventsPerWriter = 20000;
  std::atomic<bool> start{false};
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kEventsPerWriter; ++i) {
        const TraceSpan span("stress");
        trace_counter("stress.value", (static_cast<std::uint64_t>(w) << 32) | i);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  start.store(true, std::memory_order_release);
  std::size_t snapshots = 0;
  while (done.load(std::memory_order_acquire) < kWriters) {
    const auto events = snapshot_events();
    ++snapshots;
    for (const RawEvent& event : events) {
      // Every surfaced slot is complete: a name from the fixed set and a
      // coherent phase.  Torn slots would show null/garbage names.
      const std::string_view name(event.name);
      EXPECT_TRUE(name == "stress" || name == "stress.value") << name;
    }
  }
  for (auto& writer : writers) writer.join();
  EXPECT_GT(snapshots, 0u);
  EXPECT_GT(events_dropped(), 0u);  // the rings wrapped while recording
}

}  // namespace
}  // namespace ada::obs
