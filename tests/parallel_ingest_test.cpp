// Property tests for the frame-parallel ingest pipeline.
//
// The pipeline's contract is byte-identity: for ANY frame count and ANY
// thread budget, the parallel scan -> decode ranges -> ordered merge path
// must produce exactly the bytes of the serial decode loop.  These tests
// drive that invariant over randomized frame/thread combinations (including
// the degenerate ones: zero frames, one frame, more threads than frames),
// and pin down the two pieces the pipeline is built from -- the header-only
// frame-boundary scanner and the RAW shard merge -- against their serial
// ground truths.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ada/categorizer.hpp"
#include "ada/middleware.hpp"
#include "ada/preprocessor.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::core {
namespace {

namespace fs = std::filesystem;

// Deterministic XTC image over the tiny GPCR system; returns the image and
// the steps it wrote (for the scanner cross-check).
std::vector<std::uint8_t> make_xtc(const chem::System& system, std::uint32_t frames,
                                   std::vector<std::uint32_t>* steps = nullptr) {
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (std::uint32_t f = 0; f < frames; ++f) {
    // Evaluate in sequence: next_frame() advances the step/time counters.
    const std::uint32_t step = gen.current_step();
    const float time_ps = gen.current_time_ps();
    const auto coords = gen.next_frame();
    if (steps != nullptr) steps->push_back(step);
    EXPECT_TRUE(writer.add_frame(step, time_ps, system.box(), coords).is_ok());
  }
  return writer.take();
}

TEST(ParallelIngestTest, SplitByteIdenticalToSerialForAnyFrameAndThreadCount) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const DataPreProcessor preprocessor(categorize_protein_misc(system));

  for (const std::uint32_t frames : {0u, 1u, 2u, 3u, 7u, 16u}) {
    const auto xtc = make_xtc(system, frames);
    PreprocessStats serial_stats;
    const auto serial = preprocessor.split(xtc, &serial_stats, 1);
    ASSERT_TRUE(serial.is_ok()) << frames << " frames";

    // Budgets: 0 = every pool worker, plus caps below/at/above the frame
    // count (19 > 16 covers threads > frames for every case here).
    for (const unsigned threads : {0u, 2u, 3u, 8u, 19u}) {
      PreprocessStats stats;
      const auto parallel = preprocessor.split(xtc, &stats, threads);
      ASSERT_TRUE(parallel.is_ok()) << frames << " frames @ " << threads << " threads";
      EXPECT_EQ(serial.value(), parallel.value())
          << frames << " frames @ " << threads << " threads: subsets differ";
      EXPECT_EQ(serial_stats.frames, stats.frames);
      EXPECT_EQ(serial_stats.atoms, stats.atoms);
      EXPECT_EQ(serial_stats.compressed_bytes, stats.compressed_bytes);
      EXPECT_EQ(serial_stats.subset_bytes, stats.subset_bytes);
      EXPECT_EQ(serial_stats.subset_atoms, stats.subset_atoms);
    }
  }
}

TEST(ParallelIngestTest, ScannerExtentsMatchReaderPositions) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  for (const std::uint32_t frames : {0u, 1u, 5u, 11u}) {
    std::vector<std::uint32_t> steps;
    const auto xtc = make_xtc(system, frames, &steps);
    const auto extents = formats::scan_xtc_extents(xtc);
    ASSERT_TRUE(extents.is_ok()) << frames << " frames";
    ASSERT_EQ(extents.value().size(), frames);

    // The scanner's extents must tile the image exactly as the decoding
    // reader walks it, and each extent must decode to the frame it claims.
    formats::XtcReader reader(xtc);
    std::size_t expected_offset = 0;
    for (std::uint32_t f = 0; f < frames; ++f) {
      const auto& extent = extents.value()[f];
      EXPECT_EQ(extent.offset, expected_offset) << "frame " << f;
      EXPECT_EQ(extent.atom_count, system.atom_count()) << "frame " << f;
      ASSERT_TRUE(reader.skip().value()) << "frame " << f;
      EXPECT_EQ(extent.offset + extent.size, reader.position()) << "frame " << f;
      expected_offset = reader.position();

      const auto decoded = formats::read_xtc_frame_at(xtc, extent.offset);
      ASSERT_TRUE(decoded.is_ok()) << "frame " << f;
      EXPECT_EQ(decoded.value().step, steps[f]) << "frame " << f;
    }
    EXPECT_EQ(expected_offset, xtc.size());
  }
}

TEST(ParallelIngestTest, ScannerRejectsCorruptImages) {
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const auto xtc = make_xtc(system, 2);

  // Truncations at every structural boundary: mid-prelude, mid-payload.
  for (const std::size_t keep : {std::size_t{1}, std::size_t{50}, std::size_t{99},
                                 xtc.size() - 1}) {
    const std::vector<std::uint8_t> cut(xtc.begin(), xtc.begin() + static_cast<long>(keep));
    EXPECT_FALSE(formats::scan_xtc_extents(cut).is_ok()) << "kept " << keep << " bytes";
  }

  auto bad_magic = xtc;
  bad_magic[0] ^= 0xFF;  // frame magic is the first big-endian word
  EXPECT_FALSE(formats::scan_xtc_extents(bad_magic).is_ok());

  auto bad_codec = xtc;
  bad_codec[52] ^= 0xFF;  // codec magic is word 13 of the prelude
  EXPECT_FALSE(formats::scan_xtc_extents(bad_codec).is_ok());
}

TEST(ParallelIngestTest, MergedShardsEqualOneSerialWriter) {
  // Shard layouts over 7 frames, including empty shards at each position.
  const std::vector<std::vector<std::uint32_t>> layouts = {
      {7}, {3, 4}, {0, 7}, {7, 0}, {2, 0, 5}, {1, 1, 1, 4}, {0, 0, 7, 0}};
  constexpr std::uint32_t kAtoms = 5;
  chem::Box box;

  for (const auto& layout : layouts) {
    formats::RawTrajWriter combined(kAtoms);
    std::vector<std::vector<std::uint8_t>> shards;
    std::uint32_t frame = 0;
    for (const std::uint32_t count : layout) {
      formats::RawTrajWriter shard(kAtoms);
      for (std::uint32_t f = 0; f < count; ++f, ++frame) {
        std::vector<float> coords(kAtoms * 3);
        for (std::size_t i = 0; i < coords.size(); ++i) {
          coords[i] = static_cast<float>(frame) + static_cast<float>(i) * 0.25f;
        }
        ASSERT_TRUE(shard.add_frame(frame, static_cast<float>(frame), box, coords).is_ok());
        ASSERT_TRUE(combined.add_frame(frame, static_cast<float>(frame), box, coords).is_ok());
      }
      shards.push_back(shard.finish());
    }
    const auto merged = formats::merge_raw_images(kAtoms, shards);
    ASSERT_TRUE(merged.is_ok());
    EXPECT_EQ(merged.value(), combined.finish()) << layout.size() << " shards";
  }
}

TEST(ParallelIngestTest, MergeRejectsMismatchedShards) {
  chem::Box box;
  formats::RawTrajWriter five(5);
  formats::RawTrajWriter six(6);
  const std::vector<float> c5(15, 1.0f);
  const std::vector<float> c6(18, 1.0f);
  ASSERT_TRUE(five.add_frame(0, 0.0f, box, c5).is_ok());
  ASSERT_TRUE(six.add_frame(0, 0.0f, box, c6).is_ok());
  std::vector<std::vector<std::uint8_t>> shards;
  shards.push_back(five.finish());
  shards.push_back(six.finish());
  EXPECT_FALSE(formats::merge_raw_images(5, shards).is_ok());

  std::vector<std::vector<std::uint8_t>> garbage;
  garbage.push_back({0x00, 0x01, 0x02});
  EXPECT_FALSE(formats::merge_raw_images(5, garbage).is_ok());
}

TEST(ParallelIngestTest, AtomMismatchErrorsMatchSerial) {
  // A frame whose header disagrees with the label map must fail with the
  // SAME message on both paths -- the parallel validator reports the global
  // frame index, not a range-local one.
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const DataPreProcessor preprocessor(categorize_protein_misc(system));
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});

  formats::XtcWriter writer;
  ASSERT_TRUE(writer
                  .add_frame(gen.current_step(), gen.current_time_ps(), system.box(),
                             gen.next_frame())
                  .is_ok());
  // Frame 1 carries one atom too many.
  const std::vector<float> bogus((system.atom_count() + 1) * 3, 0.5f);
  ASSERT_TRUE(writer.add_frame(1, 1.0f, system.box(), bogus).is_ok());
  const auto xtc = writer.take();

  const auto serial = preprocessor.split(xtc, nullptr, 1);
  ASSERT_FALSE(serial.is_ok());
  for (const unsigned threads : {0u, 2u, 8u}) {
    const auto parallel = preprocessor.split(xtc, nullptr, threads);
    ASSERT_FALSE(parallel.is_ok()) << threads << " threads";
    EXPECT_EQ(serial.error().to_string(), parallel.error().to_string())
        << threads << " threads";
  }
}

TEST(ParallelIngestTest, StreamedIngestByteIdenticalAcrossThreadCounts) {
  // IngestStream's per-frame tag fan-out must leave every tag's chunked
  // byte stream exactly as the serial loop writes it.
  const std::string root = testing::TempDir() + "/ada_parallel_stream";
  fs::remove_all(root);
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const auto labels = categorize_protein_misc(system);
  constexpr std::uint32_t kFrames = 10;

  std::map<unsigned, std::map<Tag, std::vector<std::uint8_t>>> by_threads;
  std::map<unsigned, StreamReport> reports;
  for (const unsigned threads : {1u, 4u}) {
    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    config.threads = threads;
    const std::string base = root + "/t" + std::to_string(threads);
    Ada ada(plfs::PlfsMount::open({{"ssd", base + "/ssd"}, {"hdd", base + "/hdd"}}).value(),
            config);
    auto stream = ada.begin_stream(labels, "gpcr.xtc", /*chunk_frames=*/3).value();
    workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
    for (std::uint32_t f = 0; f < kFrames; ++f) {
      ASSERT_TRUE(stream
                      .add_frame(gen.current_step(), gen.current_time_ps(), system.box(),
                                 gen.next_frame())
                      .is_ok());
    }
    reports[threads] = stream.finish().value();
    for (const Tag& tag : {kProteinTag, kMiscTag}) {
      by_threads[threads][tag] = ada.query("gpcr.xtc", tag).value();
    }
  }
  EXPECT_EQ(by_threads.at(1), by_threads.at(4));
  EXPECT_EQ(reports.at(1).frames, reports.at(4).frames);
  EXPECT_EQ(reports.at(1).chunks, reports.at(4).chunks);
  EXPECT_EQ(reports.at(1).subset_bytes, reports.at(4).subset_bytes);
  fs::remove_all(root);
}

}  // namespace
}  // namespace ada::core
