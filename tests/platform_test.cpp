// Tests for the platform harness: workload size calibration against the
// paper's tables, and the scenario pipelines against the paper's headline
// results (Figs 7, 9, 10).  These are the reproduction's contract.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "platform/pipeline.hpp"
#include "platform/platform.hpp"
#include "platform/workload_stats.hpp"
#include "workload/spec.hpp"

namespace ada::platform {
namespace {

const FrameProfile& profile() { return FrameProfile::paper_gpcr(); }

WorkloadSizes sizes_at(std::uint64_t frames) {
  return WorkloadSizes::from_profile(profile(), frames);
}

ScenarioResult run(const Platform& platform, Scenario scenario, std::uint64_t frames) {
  return run_scenario(platform, scenario, sizes_at(frames));
}

// --- workload profile vs paper tables ----------------------------------------------

TEST(FrameProfileTest, MatchesPaperTable2) {
  // 626 frames: raw 327 MB, protein 139 MB, compressed ~100 MB.
  const auto s = sizes_at(626);
  EXPECT_NEAR(s.raw_bytes / kMB, 327.0, 2.0);
  EXPECT_NEAR(s.protein_bytes / kMB, 139.0, 1.5);
  EXPECT_GT(s.compressed_bytes / kMB, 70.0);
  EXPECT_LT(s.compressed_bytes / kMB, 135.0);
}

TEST(FrameProfileTest, MatchesPaperTable6) {
  // 1,876,800 frames: raw 979.8 GB, protein subset 415.8 GB.
  const auto s = sizes_at(1'876'800);
  EXPECT_NEAR(s.raw_bytes / kGB, 979.8, 6.0);
  EXPECT_NEAR(s.protein_bytes / kGB, 415.8, 4.0);
  // 5,004,800 frames: protein 1,108.8 GB.
  const auto big = sizes_at(5'004'800);
  EXPECT_NEAR(big.protein_bytes / kGB, 1108.8, 11.0);
}

TEST(FrameProfileTest, PerFrameSizeIsStationary) {
  // The analytic scale-out is valid only if per-frame compressed size is
  // stationary: two disjoint sample windows must agree within a few %.
  const auto early = FrameProfile::measure(workload::GpcrSpec::paper_default(),
                                           workload::DynamicsSpec{}, 8);
  workload::DynamicsSpec late_dynamics;
  late_dynamics.seed = 99;  // different noise stream
  const auto late = FrameProfile::measure(workload::GpcrSpec::paper_default(), late_dynamics, 8);
  EXPECT_NEAR(early.compressed_per_frame / late.compressed_per_frame, 1.0, 0.03);
}

TEST(FrameProfileTest, LinearScaling) {
  const auto a = sizes_at(1000);
  const auto b = sizes_at(2000);
  EXPECT_NEAR(b.compressed_bytes / a.compressed_bytes, 2.0, 1e-9);
  EXPECT_NEAR((b.raw_bytes - 16) / (a.raw_bytes - 16), 2.0, 1e-9);
}

// --- SSD server (Fig 7) -----------------------------------------------------------------

TEST(SsdServerTest, Fig7aRetrievalOrdering) {
  const auto platform = Platform::ssd_server();
  const auto c = run(platform, Scenario::kCompressedFs, 5006);
  const auto d = run(platform, Scenario::kRawFs, 5006);
  const auto all = run(platform, Scenario::kAdaAll, 5006);
  const auto protein = run(platform, Scenario::kAdaProtein, 5006);
  // C-ext4 best (1/3 the bytes); D-ADA(protein) second; D-ADA(all) trails
  // D-ext4 slightly (indexer).
  EXPECT_LT(c.retrieval_s, protein.retrieval_s);
  EXPECT_LT(protein.retrieval_s, d.retrieval_s);
  EXPECT_GT(all.retrieval_s, d.retrieval_s);
  EXPECT_LT(all.retrieval_s, d.retrieval_s * 1.2);
}

TEST(SsdServerTest, Fig7bHeadline13x) {
  // "D-ADA(protein) delivers a much better performance than that of C-ext4
  //  (e.g., up to 13.4x)" at the largest frame count.
  const auto platform = Platform::ssd_server();
  const auto c = run(platform, Scenario::kCompressedFs, 5006);
  const auto protein = run(platform, Scenario::kAdaProtein, 5006);
  const double speedup = c.turnaround_s / protein.turnaround_s;
  EXPECT_GT(speedup, 11.0) << "speedup " << speedup;
  EXPECT_LT(speedup, 16.0) << "speedup " << speedup;
}

TEST(SsdServerTest, Fig7bAdaAllMatchesRawExt4) {
  const auto platform = Platform::ssd_server();
  const auto d = run(platform, Scenario::kRawFs, 5006);
  const auto all = run(platform, Scenario::kAdaAll, 5006);
  EXPECT_NEAR(all.turnaround_s / d.turnaround_s, 1.0, 0.1);
}

TEST(SsdServerTest, Fig7bDecompressionDominatesCompressedPath) {
  const auto platform = Platform::ssd_server();
  const auto c = run(platform, Scenario::kCompressedFs, 5006);
  // "the data decompression time dominates the data pre-processing time":
  // pre-processing is most of the turnaround and decompress most of that.
  EXPECT_GT(c.preprocess_s / c.turnaround_s, 0.5);
  double decompress = 0;
  for (const auto& phase : c.phases) {
    if (phase.name == "decompress") decompress = phase.seconds;
  }
  EXPECT_GT(decompress / c.turnaround_s, 0.5);  // Fig 8: >50% of CPU time
}

TEST(SsdServerTest, Fig7cMemoryRatio) {
  // "the memory usage of ext4 is over 2.5x of that of ADA when the number
  //  of frames reaches 5,006".
  const auto platform = Platform::ssd_server();
  const auto c = run(platform, Scenario::kCompressedFs, 5006);
  const auto protein = run(platform, Scenario::kAdaProtein, 5006);
  const double ratio = c.memory_peak_bytes / protein.memory_peak_bytes;
  EXPECT_GT(ratio, 2.5) << "memory ratio " << ratio;
  EXPECT_LT(ratio, 3.6) << "memory ratio " << ratio;
  EXPECT_FALSE(c.oom);
  EXPECT_FALSE(protein.oom);
}

TEST(SsdServerTest, SpeedupGrowsWithFrames) {
  const auto platform = Platform::ssd_server();
  double prev = 0;
  for (const std::uint64_t frames : {626u, 2503u, 5006u}) {
    const auto c = run(platform, Scenario::kCompressedFs, frames);
    const auto p = run(platform, Scenario::kAdaProtein, frames);
    const double speedup = c.turnaround_s / p.turnaround_s;
    EXPECT_GT(speedup, prev * 0.99) << "at " << frames;
    prev = speedup;
  }
}

// --- cluster (Fig 9) -------------------------------------------------------------------------

TEST(ClusterTest, Fig9aAdaAllBeatsPvfsRawBy2x) {
  // "ADA performs more than 2x better than PVFS (i.e., D-ADA (all) vs.
  //  D-PVFS) due to the better SSD read performance."
  const auto platform = Platform::small_cluster();
  const auto d = run(platform, Scenario::kRawFs, 6256);
  const auto all = run(platform, Scenario::kAdaAll, 6256);
  const double ratio = d.retrieval_s / all.retrieval_s;
  EXPECT_GT(ratio, 2.0) << "retrieval ratio " << ratio;
  EXPECT_LT(ratio, 4.0) << "retrieval ratio " << ratio;
}

TEST(ClusterTest, Fig9aProteinBetweenExtremes) {
  const auto platform = Platform::small_cluster();
  const auto c = run(platform, Scenario::kCompressedFs, 6256);
  const auto d = run(platform, Scenario::kRawFs, 6256);
  const auto protein = run(platform, Scenario::kAdaProtein, 6256);
  EXPECT_LT(protein.retrieval_s, d.retrieval_s);
  // "D-ADA (protein) performs similarly to C-PVFS": same order of magnitude.
  EXPECT_LT(std::max(protein.retrieval_s, c.retrieval_s) /
                std::min(protein.retrieval_s, c.retrieval_s),
            2.5);
}

TEST(ClusterTest, Fig9bHeadline9x) {
  // "when the number of frames is 6,256 the data processing turnaround time
  //  of D-PVFS is 9x of that of D-ADA(protein)".
  const auto platform = Platform::small_cluster();
  const auto d = run(platform, Scenario::kRawFs, 6256);
  const auto protein = run(platform, Scenario::kAdaProtein, 6256);
  const double ratio = d.turnaround_s / protein.turnaround_s;
  EXPECT_GT(ratio, 6.5) << "turnaround ratio " << ratio;
  EXPECT_LT(ratio, 12.0) << "turnaround ratio " << ratio;
}

TEST(ClusterTest, Fig9cMemoryTrendMatchesFig7c) {
  const auto platform = Platform::small_cluster();
  const auto c = run(platform, Scenario::kCompressedFs, 5006);
  const auto protein = run(platform, Scenario::kAdaProtein, 5006);
  EXPECT_GT(c.memory_peak_bytes / protein.memory_peak_bytes, 2.5);
}

// --- fat node (Fig 10) ------------------------------------------------------------------------

TEST(FatNodeTest, Fig10KillPoints) {
  // Section 4.3: XFS and ADA(all) are killed at 1,876,800 frames;
  // ADA(protein) survives until 5,004,800.
  const auto platform = Platform::fat_node();

  EXPECT_FALSE(run(platform, Scenario::kCompressedFs, 1'564'000).oom);
  EXPECT_TRUE(run(platform, Scenario::kCompressedFs, 1'876'800).oom);

  EXPECT_FALSE(run(platform, Scenario::kAdaAll, 1'564'000).oom);
  EXPECT_TRUE(run(platform, Scenario::kAdaAll, 1'876'800).oom);

  EXPECT_FALSE(run(platform, Scenario::kAdaProtein, 1'876'800).oom);
  EXPECT_FALSE(run(platform, Scenario::kAdaProtein, 4'379'200).oom);
  EXPECT_TRUE(run(platform, Scenario::kAdaProtein, 5'004'800).oom);
}

TEST(FatNodeTest, AdaRendersMoreThan2xFrames) {
  // "ADA allows the 1TB memory server to render more than 2x VMD graphs":
  // last surviving frame counts 4,379,200 (ADA protein) vs 1,564,000 (XFS).
  EXPECT_GT(4'379'200.0 / 1'564'000.0, 2.0);
  // And the model agrees those are the survival boundaries (checked above).
}

TEST(FatNodeTest, RetrievalInsignificantAtScale) {
  // "the raw data retrieval time only weights less than 10% of the data
  //  processing turnaround time" (XFS, 1,564,000 frames).
  const auto platform = Platform::fat_node();
  const auto c = run(platform, Scenario::kCompressedFs, 1'564'000);
  EXPECT_LT(c.retrieval_s / c.turnaround_s, 0.10);
}

TEST(FatNodeTest, XfsTurnaroundHundredsOfMinutesAtScale) {
  // "it takes VMD around 400 minutes to retrieve and render 1,564,000
  //  frames on the XFS system".
  const auto platform = Platform::fat_node();
  const auto c = run(platform, Scenario::kCompressedFs, 1'564'000);
  EXPECT_GT(c.turnaround_s / kMinute, 200.0);
  EXPECT_LT(c.turnaround_s / kMinute, 700.0);
}

TEST(FatNodeTest, Fig10dEnergyRatios) {
  // "XFS consumes more then 3x energy compared to ADA"; at 1,876,800 frames
  // XFS > 12,500 kJ (we take the last completed point, 1,564,000, for the
  // completed-run comparison; see EXPERIMENTS.md).
  const auto platform = Platform::fat_node();
  const auto xfs = run(platform, Scenario::kCompressedFs, 1'564'000);
  const auto all = run(platform, Scenario::kAdaAll, 1'564'000);
  const auto protein = run(platform, Scenario::kAdaProtein, 1'564'000);
  // Paper Fig 10d values: XFS >12,500 kJ, ADA(all) <5,000 kJ (2.5x), and
  // ADA(protein) ~2,200 kJ (>3x, the abstract's headline).
  EXPECT_GT(xfs.energy_joules / all.energy_joules, 2.0);
  EXPECT_GT(xfs.energy_joules / protein.energy_joules, 3.0);
  EXPECT_GT(all.energy_joules / protein.energy_joules, 1.5);
  // Absolute scale: around the paper's >12,500 kJ figure.
  EXPECT_GT(xfs.energy_joules / 1e3, 8'000.0);
  EXPECT_LT(xfs.energy_joules / 1e3, 25'000.0);
}

TEST(FatNodeTest, OomTruncatesTurnaroundAndEnergy) {
  const auto platform = Platform::fat_node();
  const auto killed = run(platform, Scenario::kCompressedFs, 1'876'800);
  const auto survived = run(platform, Scenario::kCompressedFs, 1'564'000);
  ASSERT_TRUE(killed.oom);
  // The kill happens during decompression; no render phase was charged.
  EXPECT_DOUBLE_EQ(killed.render_s, 0.0);
  EXPECT_GT(killed.energy_joules, 0.0);
  // Peak memory is capped at usable capacity.
  EXPECT_LE(killed.memory_peak_bytes, platform.dram_bytes);
  EXPECT_GT(killed.memory_peak_bytes, survived.memory_peak_bytes);
}

// --- scenario mechanics -----------------------------------------------------------------------

TEST(PipelineTest, LabelsFollowPlatform) {
  EXPECT_EQ(scenario_label(Scenario::kCompressedFs, Platform::ssd_server()), "C-ext4");
  EXPECT_EQ(scenario_label(Scenario::kRawFs, Platform::fat_node()), "D-xfs");
  EXPECT_EQ(scenario_label(Scenario::kCompressedFs, Platform::small_cluster()), "C-PVFS");
  EXPECT_EQ(scenario_label(Scenario::kAdaProtein, Platform::ssd_server()), "D-ADA (protein)");
}

TEST(PipelineTest, RunAllReturnsFourScenarios) {
  const auto results = run_all_scenarios(Platform::ssd_server(), sizes_at(626));
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_GT(r.turnaround_s, 0.0);
    EXPECT_GT(r.energy_joules, 0.0);
    EXPECT_FALSE(r.phases.empty());
    // Phase sum equals the turnaround.
    double sum = 0;
    for (const auto& p : r.phases) sum += p.seconds;
    EXPECT_NEAR(sum, r.turnaround_s, 1e-9);
  }
}

TEST(PipelineTest, AblationPlacementChangesClusterRetrieval) {
  const auto platform = Platform::small_cluster();
  PipelineOptions ssd;
  ssd.ada_placement = PipelineOptions::AdaClusterPlacement::kAllOnSsd;
  PipelineOptions split;
  split.ada_placement = PipelineOptions::AdaClusterPlacement::kSplitSsdHdd;
  PipelineOptions hdd;
  hdd.ada_placement = PipelineOptions::AdaClusterPlacement::kAllOnHdd;
  const auto s = run_scenario(platform, Scenario::kAdaAll, sizes_at(6256), ssd);
  const auto m = run_scenario(platform, Scenario::kAdaAll, sizes_at(6256), split);
  const auto h = run_scenario(platform, Scenario::kAdaAll, sizes_at(6256), hdd);
  EXPECT_LT(s.retrieval_s, m.retrieval_s);
  EXPECT_LT(m.retrieval_s, h.retrieval_s);
}

TEST(PipelineTest, AblationStripeWidthMonotone) {
  const auto platform = Platform::small_cluster();
  double prev = 1e18;
  for (const unsigned servers : {1u, 2u, 3u}) {
    PipelineOptions options;
    options.stripe_servers_override = servers;
    const auto r = run_scenario(platform, Scenario::kAdaProtein, sizes_at(6256), options);
    EXPECT_LT(r.retrieval_s, prev * 1.001) << servers << " servers";
    prev = r.retrieval_s;
  }
}

TEST(CalibrationTest, HostCalibrationProducesSaneRates) {
  const CpuRates rates = calibrate_on_host();
  // The real decoder and bond search run at 10s of MB/s to GB/s on any
  // plausible host; the point is they are nonzero and finite.
  EXPECT_GT(rates.decompress_bps, 10e6);
  EXPECT_LT(rates.decompress_bps, 100e9);
  EXPECT_GT(rates.render_bps, 10e6);
  EXPECT_LT(rates.render_bps, 1000e9);
}

}  // namespace
}  // namespace ada::platform
