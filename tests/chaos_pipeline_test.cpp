// Chaos suite: seeded fault schedules over whole ingest -> query round trips.
//
// For each seed, a fault plan is derived deterministically (sites, schedule
// shapes, and parameters all come from Rng(seed)), armed, and a full
// ingest -> query -> degraded-query -> fsck cycle runs against a fresh pair
// of backends.  The invariant under EVERY plan:
//
//   each operation either (a) succeeds with byte-identical output to the
//   faultless ground truth, (b) fails with a typed error, or (c) returns a
//   correctly *flagged* partial result -- it NEVER silently serves corrupt
//   or truncated bytes.
//
// A failing seed prints via SCOPED_TRACE so `ADA_CHAOS_SEEDS=1 ctest -L
// chaos` plus the seed reproduces the exact schedule.  ADA_CHAOS_SEEDS sets
// the sweep width (default 8; tools/run_tier1.sh uses a fast budget).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "formats/raw_traj.hpp"
#include "common/faults.hpp"
#include "common/rng.hpp"
#include "formats/xtc_file.hpp"
#include "plfs/fsck.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::core {
namespace {

namespace fs = std::filesystem;

int seed_budget() {
  if (const char* env = std::getenv("ADA_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

std::vector<std::uint8_t> make_xtc(const chem::System& system, std::uint32_t frames) {
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (std::uint32_t f = 0; f < frames; ++f) {
    ADA_CHECK(writer
                  .add_frame(gen.current_step(), gen.current_time_ps(), system.box(),
                             gen.next_frame())
                  .is_ok());
  }
  return writer.take();
}

/// One deterministic fault plan: which sites get which schedules.
struct FaultPlan {
  std::vector<std::pair<std::string, fault::Schedule>> arms;

  std::string to_string() const {
    std::string out;
    for (const auto& [site, schedule] : arms) {
      if (!out.empty()) out += ", ";
      out += site + "<-";
      switch (schedule.effect) {
        case fault::Outcome::Kind::kError: out += "error"; break;
        case fault::Outcome::Kind::kTorn: out += "torn"; break;
        case fault::Outcome::Kind::kCorrupt: out += "corrupt"; break;
        case fault::Outcome::Kind::kDelay: out += "delay"; break;
        case fault::Outcome::Kind::kNone: out += "none"; break;
      }
    }
    return out.empty() ? "(no faults)" : out;
  }
};

/// Everything about the plan is a pure function of the seed.
FaultPlan plan_for_seed(std::uint64_t seed) {
  Rng rng(seed);
  static const char* kSites[] = {
      "plfs.write_dropping", "plfs.read_dropping", "plfs.write_index",
      "plfs.read_index",
  };
  FaultPlan plan;
  const std::uint64_t site_count = 1 + rng.uniform_index(2);  // 1..2 armed sites
  for (std::uint64_t i = 0; i < site_count; ++i) {
    const char* site = kSites[rng.uniform_index(4)];
    fault::Schedule schedule;
    switch (rng.uniform_index(4)) {
      case 0: schedule = fault::Schedule::fail_nth(1 + rng.uniform_index(6)); break;
      case 1:
        schedule = fault::Schedule::fail_probability(0.15 + 0.25 * rng.uniform(), seed ^ i);
        break;
      case 2: {
        const std::uint64_t begin = 1 + rng.uniform_index(4);
        schedule = fault::Schedule::down_window(begin, begin + rng.uniform_index(8));
        break;
      }
      default:
        // Silent-corruption faults only make sense where bytes move.
        if (std::string_view(site) == "plfs.write_dropping") {
          schedule = fault::Schedule::torn_write(0.25 + 0.5 * rng.uniform(),
                                                 1 + rng.uniform_index(4));
        } else if (std::string_view(site) == "plfs.read_dropping") {
          schedule = fault::Schedule::corrupt_read(1 + rng.uniform_index(4), rng.uniform());
        } else {
          schedule = fault::Schedule::fail_nth(1 + rng.uniform_index(4));
        }
        break;
    }
    plan.arms.emplace_back(site, schedule);
  }
  return plan;
}

class ChaosPipelineTest : public testing::Test {
 protected:
  void SetUp() override {
    fault::Injector::global().disarm_all();
    root_ = testing::TempDir() + "/ada_chaos_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    system_ = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
    xtc_ = make_xtc(system_, 3);
  }
  void TearDown() override {
    fault::Injector::global().disarm_all();
    fs::remove_all(root_);
  }

  /// A fresh middleware over its own backend pair (one per run).
  std::unique_ptr<Ada> open_ada(const std::string& run) {
    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    // The chaos tier runs with the query cache armed: a fault-injected read
    // must never populate it (fills happen only after CRC verification), and
    // fsck repairs must invalidate it -- a stale or corrupt cached subset
    // would show up as a differential failure below.
    config.cache_bytes = 64u << 20;
    RetryPolicy fast;  // keep injected-retry wall time negligible
    fast.max_attempts = 3;
    fast.initial_backoff_s = 1e-4;
    auto ada = std::make_unique<Ada>(
        plfs::PlfsMount::open(
            {{"ssd", root_ + "/" + run + "/ssd"}, {"hdd", root_ + "/" + run + "/hdd"}})
            .value(),
        config);
    ada->mount().set_retry_policy(fast);
    return ada;
  }

  std::string root_;
  chem::System system_;
  std::vector<std::uint8_t> xtc_;
};

TEST_F(ChaosPipelineTest, SeededFaultSweepNeverCorruptsSilently) {
  // Faultless ground truth, computed once.
  auto truth_ada = open_ada("truth");
  ASSERT_TRUE(truth_ada->ingest(system_, xtc_, "bar.xtc").is_ok());
  const auto truth_tags = truth_ada->tags("bar.xtc").value();
  ASSERT_FALSE(truth_tags.empty());
  std::map<Tag, std::vector<std::uint8_t>> truth;
  for (const Tag& tag : truth_tags) truth[tag] = truth_ada->query("bar.xtc", tag).value();

  const int seeds = seed_budget();
  for (int seed = 1; seed <= seeds; ++seed) {
    const FaultPlan plan = plan_for_seed(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("chaos seed " + std::to_string(seed) + ": " + plan.to_string() +
                 "  (reproduce: ADA_CHAOS_SEEDS=" + std::to_string(seed) + ")");
    auto ada = open_ada("seed" + std::to_string(seed));

    for (const auto& [site, schedule] : plan.arms) {
      fault::Injector::global().arm(site, schedule);
    }

    // --- ingest: clean success or typed error, never a hang or crash -----
    const auto ingest = ada->ingest(system_, xtc_, "bar.xtc");
    // (ingest.error() is typed by construction; nothing to assert beyond
    // reaching here without a check failure.)

    // --- per-tag queries under fault (twice: the second may be a cache
    // hit, and a hit is only legal if the first read verified clean) -------
    for (const auto& [tag, expected] : truth) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        const auto subset = ada->query("bar.xtc", tag);
        if (subset.is_ok()) {
          EXPECT_EQ(subset.value(), expected)
              << "tag " << tag << " served DIFFERENT bytes under fault (attempt " << attempt
              << ")";
        }
        // else: typed error -- acceptable under an armed schedule.
      }
    }

    // --- degraded query: survivors must be byte-identical, losses flagged
    if (ada->has_dataset("bar.xtc")) {
      const auto partial = ada->query_degraded("bar.xtc");
      if (partial.is_ok()) {
        for (const auto& [tag, bytes] : partial.value().subsets) {
          ASSERT_TRUE(truth.count(tag)) << "degraded query invented tag " << tag;
          EXPECT_EQ(bytes, truth.at(tag))
              << "degraded survivor " << tag << " served DIFFERENT bytes";
        }
        if (ingest.is_ok()) {
          // A failed ingest may legitimately have indexed fewer tags; after
          // a *successful* one, every ground-truth tag must be served or
          // explicitly failed -- never silently missing.
          const std::size_t accounted =
              partial.value().subsets.size() + partial.value().failed.size();
          EXPECT_EQ(accounted, truth.size());
        }
      }
    }

    // --- disarm, then fsck: repair converges and survivors stay intact ---
    fault::Injector::global().disarm_all();
    if (ada->has_dataset("bar.xtc")) {
      const auto repair = plfs::repair_container(ada->mount(), "bar.xtc");
      ASSERT_TRUE(repair.is_ok()) << repair.error().to_string();
      const auto report = plfs::verify_container(ada->mount(), "bar.xtc").value();
      EXPECT_TRUE(report.broken_records.empty()) << "repair left broken records";
      EXPECT_TRUE(report.checksum_bad_records.empty()) << "repair left corrupt extents";
      // Post-repair reads of surviving tags are byte-identical to truth.
      for (const auto& [tag, expected] : truth) {
        const auto subset = ada->query("bar.xtc", tag);
        if (subset.is_ok()) {
          EXPECT_EQ(subset.value(), expected);
        }
      }
    }
    (void)ingest;
  }
}

/// Fault plan for the streaming path: same schedule shapes as
/// plan_for_seed, but the site pool includes the watermark publish
/// ("plfs.write_stream_state") -- the write whose failure leaves an open
/// tail above the watermark (docs/streaming.md).
FaultPlan stream_plan_for_seed(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  static const char* kSites[] = {
      "plfs.write_dropping", "plfs.read_dropping",      "plfs.write_index",
      "plfs.read_index",     "plfs.write_stream_state",
  };
  FaultPlan plan;
  const std::uint64_t site_count = 1 + rng.uniform_index(2);
  for (std::uint64_t i = 0; i < site_count; ++i) {
    const char* site = kSites[rng.uniform_index(5)];
    fault::Schedule schedule;
    switch (rng.uniform_index(4)) {
      case 0: schedule = fault::Schedule::fail_nth(1 + rng.uniform_index(6)); break;
      case 1:
        schedule = fault::Schedule::fail_probability(0.15 + 0.25 * rng.uniform(), seed ^ i);
        break;
      case 2: {
        const std::uint64_t begin = 1 + rng.uniform_index(4);
        schedule = fault::Schedule::down_window(begin, begin + rng.uniform_index(8));
        break;
      }
      default:
        if (std::string_view(site) == "plfs.write_dropping") {
          schedule = fault::Schedule::torn_write(0.25 + 0.5 * rng.uniform(),
                                                 1 + rng.uniform_index(4));
        } else if (std::string_view(site) == "plfs.read_dropping") {
          schedule = fault::Schedule::corrupt_read(1 + rng.uniform_index(4), rng.uniform());
        } else {
          schedule = fault::Schedule::fail_nth(1 + rng.uniform_index(4));
        }
        break;
    }
    plan.arms.emplace_back(site, schedule);
  }
  return plan;
}

// The streaming analogue of the sweep above: a producer streams chunk by
// chunk under an armed fault plan and is abandoned at the first error (a
// dying MD process).  The invariant: no matter where the plan killed the
// stream, any successful read -- under fault or after repair -- serves an
// exact byte-prefix of the faultless ground-truth stream, and fsck repair
// converges to a sealed, tail-free container.
TEST_F(ChaosPipelineTest, StreamingFlushFaultSweepKeepsSealedPrefixConsistent) {
  constexpr std::uint32_t kFrames = 8;
  constexpr std::uint32_t kChunk = 2;
  const auto labels = categorize_protein_misc(system_);
  // Pre-generate the trajectory so every seed (and the truth) streams
  // bit-identical frames on identical chunk boundaries.
  workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
  std::vector<std::uint32_t> steps;
  std::vector<float> times;
  std::vector<std::vector<float>> coords;
  for (std::uint32_t f = 0; f < kFrames; ++f) {
    const auto frame = gen.next_frame();
    coords.emplace_back(frame.begin(), frame.end());
    steps.push_back(gen.current_step());
    times.push_back(gen.current_time_ps());
  }

  // Faultless ground truth: kFrames divides kChunk, so every sealed chunk a
  // faulted run publishes is byte-aligned with a truth segment.
  auto truth_ada = open_ada("stream_truth");
  std::map<Tag, std::vector<std::uint8_t>> truth;
  {
    auto stream = truth_ada->begin_stream(labels, "live.xtc", kChunk);
    ASSERT_TRUE(stream.is_ok());
    for (std::uint32_t f = 0; f < kFrames; ++f) {
      ASSERT_TRUE(
          stream.value().add_frame(steps[f], times[f], system_.box(), coords[f]).is_ok());
    }
    ASSERT_TRUE(stream.value().finish().is_ok());
  }
  const auto truth_tags = truth_ada->tags("live.xtc").value();
  for (const Tag& tag : truth_tags) truth[tag] = truth_ada->query("live.xtc", tag).value();
  ASSERT_FALSE(truth.empty());

  const int seeds = seed_budget();
  for (int seed = 1; seed <= seeds; ++seed) {
    const FaultPlan plan = stream_plan_for_seed(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("stream chaos seed " + std::to_string(seed) + ": " + plan.to_string() +
                 "  (reproduce: ADA_CHAOS_SEEDS=" + std::to_string(seed) + ")");
    auto ada = open_ada("stream_seed" + std::to_string(seed));

    for (const auto& [site, schedule] : plan.arms) {
      fault::Injector::global().arm(site, schedule);
    }

    // --- the producer: abandon at the first failed flush -----------------
    {
      auto stream = ada->begin_stream(labels, "live.xtc", kChunk);
      if (stream.is_ok()) {
        bool alive = true;
        for (std::uint32_t f = 0; alive && f < kFrames; ++f) {
          alive = stream.value()
                      .add_frame(steps[f], times[f], system_.box(), coords[f])
                      .is_ok();
        }
        if (alive) (void)stream.value().finish();  // the seal itself may fault
      }
    }

    // --- reads under fault: typed error or an exact prefix of truth ------
    for (const auto& [tag, expected] : truth) {
      const auto subset = ada->query("live.xtc", tag);
      if (subset.is_ok()) {
        ASSERT_LE(subset.value().size(), expected.size());
        EXPECT_TRUE(std::equal(subset.value().begin(), subset.value().end(), expected.begin()))
            << "tag " << tag << " served bytes that are not a prefix of the faultless stream";
      }
    }

    // --- disarm, repair: converge to a sealed, tail-free container -------
    fault::Injector::global().disarm_all();
    if (!ada->has_dataset("live.xtc")) continue;  // plan killed the first flush
    const auto repair = plfs::repair_container(ada->mount(), "live.xtc");
    ASSERT_TRUE(repair.is_ok()) << repair.error().to_string();
    const auto report = plfs::verify_container(ada->mount(), "live.xtc").value();
    EXPECT_TRUE(report.broken_records.empty()) << "repair left broken records";
    EXPECT_TRUE(report.checksum_bad_records.empty()) << "repair left corrupt extents";
    EXPECT_TRUE(report.open_tail_records.empty()) << "repair left an open tail";
    EXPECT_FALSE(report.stream_open) << "repair did not seal the interrupted stream";
    EXPECT_FALSE(report.stream_state_corrupt);

    // Post-repair reads are prefixes of truth, frame-aligned at whatever
    // watermark survived; a tail follower terminates against the seal.
    const auto progress = ada->stream_progress("live.xtc");
    if (progress.is_ok() && progress.value().has_value()) {
      EXPECT_TRUE(progress.value()->sealed);
    }
    for (const auto& [tag, expected] : truth) {
      const auto subset = ada->query("live.xtc", tag);
      if (!subset.is_ok()) continue;  // quarantine may have removed the tag
      ASSERT_LE(subset.value().size(), expected.size());
      EXPECT_TRUE(std::equal(subset.value().begin(), subset.value().end(), expected.begin()))
          << "tag " << tag << " served a non-prefix AFTER repair";
      const auto cat = formats::RawTrajCatReader::open(subset.value());
      ASSERT_TRUE(cat.is_ok());
      if (progress.is_ok() && progress.value().has_value()) {
        EXPECT_EQ(cat.value().frame_count(), progress.value()->sealed_frames)
            << "tag " << tag << " disagrees with the sealed watermark";
      }
    }
  }
}

TEST_F(ChaosPipelineTest, DisarmedRunIsByteIdenticalToGroundTruth) {
  // The disarmed plane must not perturb the data path at all (the e2e
  // differential harness asserts the same property across processes; this is
  // the in-process spot check).
  auto a = open_ada("a");
  auto b = open_ada("b");
  ASSERT_TRUE(a->ingest(system_, xtc_, "bar.xtc").is_ok());
  {
    const fault::ScopedFault armed("unrelated.site", fault::Schedule::fail_nth(1));
    ASSERT_TRUE(b->ingest(system_, xtc_, "bar.xtc").is_ok());
  }
  const auto tags = a->tags("bar.xtc").value();
  for (const Tag& tag : tags) {
    EXPECT_EQ(a->query("bar.xtc", tag).value(), b->query("bar.xtc", tag).value());
  }
}

}  // namespace
}  // namespace ada::core
