// Property-based tests for Selection: the run-list algebra is checked against
// a brute-force bitset model on random inputs.
#include <gtest/gtest.h>

#include <set>

#include "chem/selection.hpp"
#include "common/rng.hpp"

namespace ada::chem {
namespace {

constexpr std::uint32_t kUniverse = 500;

/// Reference model: a plain set of indices.
std::set<std::uint32_t> model_of(const Selection& s) {
  std::set<std::uint32_t> out;
  for (const auto i : s.to_indices()) out.insert(i);
  return out;
}

Selection random_selection(Rng& rng) {
  Selection s;
  const int runs = static_cast<int>(rng.uniform_index(12));
  std::vector<Run> list;
  for (int i = 0; i < runs; ++i) {
    const auto begin = static_cast<std::uint32_t>(rng.uniform_index(kUniverse));
    const auto len = static_cast<std::uint32_t>(rng.uniform_index(40));
    list.push_back({begin, std::min(begin + len, kUniverse)});
  }
  return Selection::from_runs(std::move(list));
}

TEST(SelectionTest, EmptyBasics) {
  Selection s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.to_string(), "");
}

TEST(SelectionTest, AllCoversUniverse) {
  const Selection s = Selection::all(10);
  EXPECT_EQ(s.count(), 10u);
  EXPECT_EQ(s.runs().size(), 1u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(9));
  EXPECT_FALSE(s.contains(10));
}

TEST(SelectionTest, AdjacentRunsMerge) {
  Selection s;
  s.add_run({0, 5});
  s.add_run({5, 10});
  EXPECT_EQ(s.runs().size(), 1u);
  EXPECT_EQ(s.count(), 10u);
}

TEST(SelectionTest, OverlappingRunsMerge) {
  const Selection s = Selection::from_runs({{0, 6}, {4, 10}, {20, 25}});
  EXPECT_EQ(s.runs().size(), 2u);
  EXPECT_EQ(s.count(), 15u);
}

TEST(SelectionTest, EmptyRunsDiscarded) {
  const Selection s = Selection::from_runs({{5, 5}, {7, 6}});
  EXPECT_TRUE(s.empty());
}

TEST(SelectionTest, OutOfOrderAppend) {
  Selection s;
  s.add_run({10, 20});
  s.add_run({0, 5});
  EXPECT_EQ(s.count(), 15u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(15));
  EXPECT_FALSE(s.contains(7));
}

TEST(SelectionTest, FromIndicesDeduplicates) {
  const Selection s = Selection::from_indices({3, 1, 2, 2, 3, 10});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.runs().size(), 2u);  // [1,4) and [10,11)
}

TEST(SelectionTest, ToStringAndParseRoundTrip) {
  const Selection s = Selection::from_runs({{0, 100}, {200, 300}, {400, 401}});
  EXPECT_EQ(s.to_string(), "0-99,200-299,400");
  const auto parsed = Selection::parse(s.to_string());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), s);
}

TEST(SelectionTest, ParseEmpty) {
  EXPECT_TRUE(Selection::parse("").value().empty());
  EXPECT_TRUE(Selection::parse("  ").value().empty());
}

TEST(SelectionTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Selection::parse("abc").is_ok());
  EXPECT_FALSE(Selection::parse("5-").is_ok());
  EXPECT_FALSE(Selection::parse("9-3").is_ok());
}

TEST(SelectionPropertyTest, NormalizationInvariants) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const Selection s = random_selection(rng);
    const auto& runs = s.runs();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_LT(runs[i].begin, runs[i].end);  // non-empty
      if (i > 0) {
        EXPECT_GT(runs[i].begin, runs[i - 1].end);  // disjoint, non-adjacent
      }
    }
  }
}

TEST(SelectionPropertyTest, UnionMatchesModel) {
  Rng rng(102);
  for (int trial = 0; trial < 200; ++trial) {
    const Selection a = random_selection(rng);
    const Selection b = random_selection(rng);
    auto expected = model_of(a);
    const auto mb = model_of(b);
    expected.insert(mb.begin(), mb.end());
    EXPECT_EQ(model_of(a.unite(b)), expected);
  }
}

TEST(SelectionPropertyTest, IntersectMatchesModel) {
  Rng rng(103);
  for (int trial = 0; trial < 200; ++trial) {
    const Selection a = random_selection(rng);
    const Selection b = random_selection(rng);
    const auto ma = model_of(a);
    const auto mb = model_of(b);
    std::set<std::uint32_t> expected;
    for (auto v : ma) {
      if (mb.count(v) != 0) expected.insert(v);
    }
    EXPECT_EQ(model_of(a.intersect(b)), expected);
  }
}

TEST(SelectionPropertyTest, ComplementMatchesModel) {
  Rng rng(104);
  for (int trial = 0; trial < 200; ++trial) {
    const Selection a = random_selection(rng);
    const auto ma = model_of(a);
    std::set<std::uint32_t> expected;
    for (std::uint32_t v = 0; v < kUniverse; ++v) {
      if (ma.count(v) == 0) expected.insert(v);
    }
    EXPECT_EQ(model_of(a.complement(kUniverse)), expected);
  }
}

TEST(SelectionPropertyTest, DeMorgan) {
  Rng rng(105);
  for (int trial = 0; trial < 100; ++trial) {
    const Selection a = random_selection(rng);
    const Selection b = random_selection(rng);
    // ~(a | b) == ~a & ~b within the universe.
    const Selection lhs = a.unite(b).complement(kUniverse);
    const Selection rhs = a.complement(kUniverse).intersect(b.complement(kUniverse));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(SelectionPropertyTest, ComplementIsInvolution) {
  Rng rng(106);
  for (int trial = 0; trial < 100; ++trial) {
    const Selection a = random_selection(rng);
    EXPECT_EQ(a.complement(kUniverse).complement(kUniverse), a);
  }
}

TEST(SelectionPropertyTest, CountMatchesIndices) {
  Rng rng(107);
  for (int trial = 0; trial < 100; ++trial) {
    const Selection a = random_selection(rng);
    EXPECT_EQ(a.count(), a.to_indices().size());
  }
}

TEST(SelectionPropertyTest, ContainsMatchesModel) {
  Rng rng(108);
  for (int trial = 0; trial < 50; ++trial) {
    const Selection a = random_selection(rng);
    const auto ma = model_of(a);
    for (std::uint32_t v = 0; v < kUniverse; ++v) {
      EXPECT_EQ(a.contains(v), ma.count(v) != 0) << "index " << v;
    }
  }
}

TEST(SelectionPropertyTest, ParseRoundTripRandom) {
  Rng rng(109);
  for (int trial = 0; trial < 100; ++trial) {
    const Selection a = random_selection(rng);
    EXPECT_EQ(Selection::parse(a.to_string()).value(), a);
  }
}

}  // namespace
}  // namespace ada::chem
