// Unit tests for src/common: Result, strings, units, rng, binary_io, table.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace ada {
namespace {

// --- Result / Status ---------------------------------------------------------

TEST(ResultTest, OkHoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, ErrorHoldsCodeAndMessage) {
  Result<int> r = not_found("missing thing");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message(), "missing thing");
  EXPECT_EQ(r.error().to_string(), "not_found: missing thing");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> bad = io_error("x");
  EXPECT_EQ(bad.value_or(7), 7);
  Result<int> good = 3;
  EXPECT_EQ(good.value_or(7), 3);
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, ErrorPropagatesThroughMacro) {
  auto fails = []() -> Status { return io_error("disk gone"); };
  auto outer = [&]() -> Status {
    ADA_RETURN_IF_ERROR(fails());
    return Status::ok();
  };
  const Status s = outer();
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kIoError);
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto inner = []() -> Result<int> { return 5; };
  auto outer = [&]() -> Result<int> {
    ADA_ASSIGN_OR_RETURN(const int v, inner());
    return v * 2;
  };
  EXPECT_EQ(outer().value(), 10);
}

// --- strings -------------------------------------------------------------------

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a \n"), "a");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  const auto parts = split_whitespace("  mol   addfile  bar.xtc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "mol");
  EXPECT_EQ(parts[2], "bar.xtc");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_left("1234", 3), "1234");
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(parse_int("123"), 123);
  EXPECT_EQ(parse_int(" 99 "), 99);
  EXPECT_EQ(parse_int("-1"), -1);
  EXPECT_EQ(parse_int("12x"), -1);
  EXPECT_EQ(parse_int(""), -1);
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2.25 "), -2.25);
  EXPECT_TRUE(std::isnan(parse_double("abc")));
  EXPECT_TRUE(std::isnan(parse_double("")));
}

TEST(StringsTest, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(StringsTest, StartsWithAndUpper) {
  EXPECT_TRUE(starts_with("ATOM  123", "ATOM"));
  EXPECT_FALSE(starts_with("AT", "ATOM"));
  EXPECT_EQ(to_upper("PoPc"), "POPC");
}

// --- units --------------------------------------------------------------------

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(100 * kMB), "100 MB");
  EXPECT_EQ(format_bytes(2.612 * kGB), "2.61 GB");
  EXPECT_EQ(format_bytes(1.1 * kTB), "1.10 TB");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5), "500 ms");
  EXPECT_EQ(format_seconds(13.4), "13.4 s");
  EXPECT_EQ(format_seconds(400 * kMinute), "6.67 h");
}

TEST(UnitsTest, Rates) {
  EXPECT_DOUBLE_EQ(mb_per_s(126), 126e6);
  EXPECT_DOUBLE_EQ(gb_per_s(3), 3e9);
}

// --- rng -----------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIndexBounded) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(42);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

// --- binary io -------------------------------------------------------------------

TEST(BinaryIoTest, RoundTripPrimitives) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u32_le(0xdeadbeef);
  w.put_u64_le(0x0123456789abcdefULL);
  w.put_u32_be(0x01020304);
  w.put_f32_le(3.5f);
  w.put_f64_le(-2.25);
  w.put_string_le("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8().value(), 0xab);
  EXPECT_EQ(r.get_u32_le().value(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64_le().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_u32_be().value(), 0x01020304u);
  EXPECT_FLOAT_EQ(r.get_f32_le().value(), 3.5f);
  EXPECT_DOUBLE_EQ(r.get_f64_le().value(), -2.25);
  EXPECT_EQ(r.get_string_le().value(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryIoTest, BigEndianLayoutOnWire) {
  ByteWriter w;
  w.put_u32_be(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x04);
}

TEST(BinaryIoTest, ShortReadIsError) {
  ByteWriter w;
  w.put_u8(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.get_u32_le().is_ok() == false);
}

TEST(BinaryIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/ada_binary_io_test.bin";
  std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251};
  ASSERT_TRUE(write_file(path, payload).is_ok());
  const auto readback = read_file(path);
  ASSERT_TRUE(readback.is_ok());
  EXPECT_EQ(readback.value(), payload);
}

TEST(BinaryIoTest, MissingFileIsNotFound) {
  const auto r = read_file("/nonexistent/definitely/missing.bin");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
}

TEST(BinaryIoTest, Byteswap) {
  EXPECT_EQ(byteswap32(0x01020304u), 0x04030201u);
  EXPECT_EQ(byteswap64(0x0102030405060708ULL), 0x0807060504030201ULL);
}

// --- table -------------------------------------------------------------------------

TEST(TableTest, AlignedOutput) {
  Table t({"frames", "time"});
  t.add_row({"626", "1.5"});
  t.add_row({"5006", "13.4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("frames  time"), std::string::npos);
  EXPECT_NE(out.find("5006    13.4"), std::string::npos);
}

TEST(TableTest, CsvQuoting) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

}  // namespace
}  // namespace ada
