// Tests for the device-internals models: HDD mechanics and the SSD FTL.
// Includes cross-validation against the coarse DeviceSpec numbers the
// platform pipelines use (paper Table 4).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "storage/device.hpp"
#include "storage/hdd_model.hpp"
#include "storage/ssd_model.hpp"

namespace ada::storage {
namespace {

// --- HDD ---------------------------------------------------------------------------

TEST(HddModelTest, OuterZoneStreamsAtSpecRate) {
  HddModel hdd;
  const double bytes = 100 * kMB;
  const double time = hdd.sequential_read_time(0, static_cast<std::uint64_t>(bytes));
  const double rate = bytes / time;
  // Within a few % of the paper's 126 MB/s MAX (start-up costs amortized).
  EXPECT_GT(rate, 0.95 * mb_per_s(126));
  EXPECT_LE(rate, mb_per_s(126));
}

TEST(HddModelTest, InnerZoneIsSlower) {
  HddModel hdd;
  const auto capacity = hdd.params().capacity_bytes;
  const double outer = hdd.bandwidth_at(0);
  const double inner = hdd.bandwidth_at(capacity - 1);
  EXPECT_NEAR(outer, 126e6, 1.0);
  EXPECT_NEAR(inner, 62e6, 1e6);
  EXPECT_GT(outer / inner, 1.8);
}

TEST(HddModelTest, SeekCurveIsMonotoneAndBounded) {
  HddModel hdd;
  const auto capacity = hdd.params().capacity_bytes;
  double prev = 0;
  for (double fraction : {0.0001, 0.001, 0.01, 0.1, 0.5, 1.0}) {
    const auto to = static_cast<std::uint64_t>(static_cast<double>(capacity - 1) * fraction);
    const double t = hdd.seek_time(0, to);
    EXPECT_GE(t, hdd.params().track_to_track_seek);
    EXPECT_LE(t, hdd.params().full_stroke_seek);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_DOUBLE_EQ(hdd.seek_time(500, 500), 0.0);
}

TEST(HddModelTest, SequentialAccessSkipsSeek) {
  HddModel hdd;
  const std::uint64_t chunk = 1 << 20;
  hdd.access(0, chunk);
  const double contiguous = hdd.access(chunk, chunk);   // head is already there
  HddModel hdd2;
  hdd2.access(0, chunk);
  const double random = hdd2.access(500ull * chunk, chunk);
  EXPECT_GT(random, contiguous + 3e-3);  // seek + rotational latency
  EXPECT_DOUBLE_EQ(hdd.seeks_seconds(), 0.0);
  EXPECT_GT(hdd2.seeks_seconds(), 0.0);
}

TEST(HddModelTest, RandomIopsInMechanicalRange) {
  // 4 KiB random reads on a 7200 rpm drive land in the classic 70-120 IOPS.
  HddModel hdd;
  Rng rng(3);
  double total = 0;
  constexpr int kRequests = 400;
  for (int i = 0; i < kRequests; ++i) {
    const auto offset =
        (rng.uniform_index(hdd.params().capacity_bytes - 4096) / 4096) * 4096;
    total += hdd.access(offset, 4096);
  }
  const double iops = kRequests / total;
  EXPECT_GT(iops, 60.0) << iops;
  EXPECT_LT(iops, 140.0) << iops;
}

// --- SSD ---------------------------------------------------------------------------

SsdParams small_ssd() {
  SsdParams p;
  p.logical_capacity_bytes = 64ull << 20;  // 64 MiB keeps tests fast
  return p;
}

TEST(SsdModelTest, SequentialFillHasUnitWaf) {
  SsdModel ssd(small_ssd());
  const std::uint64_t chunk = 1 << 20;
  for (std::uint64_t offset = 0; offset + chunk <= ssd.params().logical_capacity_bytes;
       offset += chunk) {
    ASSERT_TRUE(ssd.write(offset, chunk).is_ok());
  }
  EXPECT_NEAR(ssd.stats().waf(), 1.0, 1e-9);
  EXPECT_GT(ssd.utilization(), 0.99);
}

TEST(SsdModelTest, RandomOverwriteDrivesWafAboveOne) {
  SsdModel ssd(small_ssd());
  const std::uint64_t capacity = ssd.params().logical_capacity_bytes;
  const std::uint64_t page = ssd.params().page_bytes;
  // Fill once, then random-overwrite 2x the capacity.
  for (std::uint64_t offset = 0; offset + page <= capacity; offset += page) {
    ASSERT_TRUE(ssd.write(offset, page).is_ok());
  }
  Rng rng(5);
  const std::uint64_t pages = capacity / page;
  for (std::uint64_t i = 0; i < 2 * pages; ++i) {
    ASSERT_TRUE(ssd.write(rng.uniform_index(pages) * page, page).is_ok());
  }
  EXPECT_GT(ssd.stats().waf(), 1.3) << ssd.stats().waf();
  EXPECT_LT(ssd.stats().waf(), 12.0) << ssd.stats().waf();
  EXPECT_GT(ssd.stats().erases, 0u);
  EXPECT_GT(ssd.stats().gc_relocations, 0u);
}

TEST(SsdModelTest, SequentialOverwriteStaysCheap) {
  // Whole-drive sequential overwrite invalidates whole blocks: GC reclaims
  // them without relocating much -- WAF stays near 1.
  SsdModel ssd(small_ssd());
  const std::uint64_t capacity = ssd.params().logical_capacity_bytes;
  const std::uint64_t chunk = 1 << 20;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t offset = 0; offset + chunk <= capacity; offset += chunk) {
      ASSERT_TRUE(ssd.write(offset, chunk).is_ok());
    }
  }
  EXPECT_LT(ssd.stats().waf(), 1.15) << ssd.stats().waf();
}

TEST(SsdModelTest, TrimReducesGcWork) {
  auto run = [](bool with_trim) {
    SsdModel ssd(small_ssd());
    const std::uint64_t capacity = ssd.params().logical_capacity_bytes;
    const std::uint64_t page = ssd.params().page_bytes;
    for (std::uint64_t offset = 0; offset + page <= capacity; offset += page) {
      ADA_CHECK(ssd.write(offset, page).is_ok());
    }
    if (with_trim) {
      // The host deletes the first half before rewriting it.
      ADA_CHECK(ssd.trim(0, capacity / 2).is_ok());
    }
    Rng rng(11);
    const std::uint64_t half_pages = capacity / page / 2;
    for (std::uint64_t i = 0; i < half_pages; ++i) {
      ADA_CHECK(ssd.write(rng.uniform_index(half_pages) * page, page).is_ok());
    }
    return ssd.stats().gc_relocations;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(SsdModelTest, ReadsScaleWithChannels) {
  SsdParams one = small_ssd();
  one.channels = 1;
  SsdParams eight = small_ssd();
  eight.channels = 8;
  SsdModel a(one);
  SsdModel b(eight);
  const double ta = a.read(0, 8 << 20).value();
  const double tb = b.read(0, 8 << 20).value();
  EXPECT_NEAR(ta / tb, 8.0, 1e-6);
}

TEST(SsdModelTest, PeakRatesMatchCoarseSpecOrder) {
  // Cross-validation: the FTL's streaming numbers must land in the same
  // decade as the coarse Plextor spec (3000/1000 MB/s).
  SsdParams p = small_ssd();
  p.channels = 8;
  SsdModel ssd(p);
  const double read_rate = (8 << 20) / ssd.read(0, 8 << 20).value();
  const double write_rate = (8 << 20) / ssd.write(0, 8 << 20).value();
  EXPECT_GT(read_rate, 1e9);
  EXPECT_LT(read_rate, 10e9);
  EXPECT_GT(write_rate, 0.2e9);
  EXPECT_LT(write_rate, 2e9);
  EXPECT_GT(read_rate, 2.0 * write_rate);  // the read/write asymmetry
}

TEST(SsdModelTest, BoundsChecking) {
  SsdModel ssd(small_ssd());
  const auto capacity = ssd.params().logical_capacity_bytes;
  EXPECT_FALSE(ssd.write(capacity - 100, 200).is_ok());
  EXPECT_FALSE(ssd.read(capacity, 1).is_ok());
  EXPECT_FALSE(ssd.write(0, 0).is_ok());
  EXPECT_FALSE(ssd.trim(capacity - 10, 100).is_ok());
}

TEST(SsdModelTest, WafIdentityHolds) {
  // flash_pages_written == host_pages_written + gc_relocations, always.
  SsdModel ssd(small_ssd());
  Rng rng(17);
  const std::uint64_t pages = ssd.params().logical_capacity_bytes / ssd.params().page_bytes;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(
        ssd.write(rng.uniform_index(pages) * ssd.params().page_bytes, ssd.params().page_bytes)
            .is_ok());
  }
  EXPECT_EQ(ssd.stats().flash_pages_written,
            ssd.stats().host_pages_written + ssd.stats().gc_relocations);
}

}  // namespace
}  // namespace ada::storage
