// Parameterized property sweeps over the XTC pipeline: round trips across
// (atom count, frame count, precision, dynamics amplitude), plus random
// corruption fuzzing of the decoder.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"

namespace ada::formats {
namespace {

std::vector<float> random_molecule_frame(Rng& rng, std::uint32_t atoms, float step_nm) {
  std::vector<float> coords;
  coords.reserve(std::size_t{3} * atoms);
  float x = 4.0f;
  float y = 4.0f;
  float z = 4.0f;
  for (std::uint32_t i = 0; i < atoms; ++i) {
    x += static_cast<float>(rng.normal(0.0, static_cast<double>(step_nm)));
    y += static_cast<float>(rng.normal(0.0, static_cast<double>(step_nm)));
    z += static_cast<float>(rng.normal(0.0, static_cast<double>(step_nm)));
    coords.push_back(x);
    coords.push_back(y);
    coords.push_back(z);
  }
  return coords;
}

class XtcSweepTest
    : public testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, float>> {};

TEST_P(XtcSweepTest, WriteReadRoundTrip) {
  const auto [atoms, frames, precision] = GetParam();
  Rng rng(atoms * 131 + frames * 7 + static_cast<std::uint64_t>(precision));
  codec::CodecParams params;
  params.precision = precision;
  XtcWriter writer(params);
  std::vector<std::vector<float>> truth;
  for (std::uint32_t f = 0; f < frames; ++f) {
    truth.push_back(random_molecule_frame(rng, atoms, 0.12f));
    ASSERT_TRUE(writer
                    .add_frame(f, static_cast<float>(f) * 2.0f,
                               chem::Box::orthorhombic(8, 8, 8), truth.back())
                    .is_ok());
  }
  const auto decoded = read_all_xtc(writer.bytes()).value();
  ASSERT_EQ(decoded.size(), frames);
  const float tolerance = 0.5f / precision + 1e-5f;
  for (std::uint32_t f = 0; f < frames; ++f) {
    ASSERT_EQ(decoded[f].atom_count(), atoms);
    for (std::size_t i = 0; i < truth[f].size(); ++i) {
      ASSERT_NEAR(decoded[f].coords[i], truth[f][i], tolerance)
          << "frame " << f << " coord " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, XtcSweepTest,
    testing::Combine(testing::Values(1u, 7u, 64u, 1000u), testing::Values(1u, 3u, 10u),
                     testing::Values(100.0f, 1000.0f, 10000.0f)),
    [](const auto& param_info) {
      return "atoms" + std::to_string(std::get<0>(param_info.param)) + "_frames" +
             std::to_string(std::get<1>(param_info.param)) + "_prec" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param)));
    });

TEST(XtcFuzzTest, RandomCorruptionNeverCrashesOrHangs) {
  // Flip random bytes in valid streams; the reader must either reject or
  // produce frames -- never crash, loop, or read out of bounds (ASAN-free
  // build still catches aborts/UB via the harness).
  Rng rng(4242);
  XtcWriter writer;
  for (std::uint32_t f = 0; f < 5; ++f) {
    const auto coords = random_molecule_frame(rng, 100, 0.1f);
    ASSERT_TRUE(writer.add_frame(f, 0.0f, chem::Box::orthorhombic(8, 8, 8), coords).is_ok());
  }
  const auto pristine = writer.take();
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = pristine;
    const int flips = 1 + static_cast<int>(rng.uniform_index(4));
    for (int i = 0; i < flips; ++i) {
      corrupted[rng.uniform_index(corrupted.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    }
    const auto result = read_all_xtc(corrupted);  // outcome may be ok or error
    if (result.is_ok()) {
      for (const auto& frame : result.value()) {
        EXPECT_LE(frame.coords.size(), 400u);  // atom counts can't explode silently
      }
    }
  }
}

TEST(XtcFuzzTest, TruncationAtEveryBoundaryIsHandled) {
  Rng rng(99);
  XtcWriter writer;
  const auto coords = random_molecule_frame(rng, 20, 0.1f);
  ASSERT_TRUE(writer.add_frame(0, 0.0f, chem::Box::orthorhombic(8, 8, 8), coords).is_ok());
  const auto& bytes = writer.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    const auto result = read_all_xtc(std::span(bytes).subspan(0, cut));
    if (cut == 0) {
      EXPECT_TRUE(result.is_ok());  // empty stream: zero frames
    } else {
      EXPECT_FALSE(result.is_ok()) << "cut at " << cut;
    }
  }
}

TEST(RawFuzzTest, HeaderCorruptionRejected) {
  Rng rng(7);
  RawTrajWriter writer(10);
  std::vector<float> coords(30, 1.0f);
  ASSERT_TRUE(writer.add_frame(0, 0.0f, chem::Box{}, coords).is_ok());
  const auto pristine = writer.finish();
  for (std::size_t byte = 0; byte < 16; ++byte) {
    auto corrupted = pristine;
    corrupted[byte] ^= 0xff;
    // Header corruption must be rejected (magic, atom count, frame count all
    // participate in the size check).
    EXPECT_FALSE(RawTrajReader::open(corrupted).is_ok()) << "byte " << byte;
  }
}

}  // namespace
}  // namespace ada::formats
