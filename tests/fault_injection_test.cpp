// Unit tests for the deterministic fault-injection plane (common/faults.hpp)
// and the retry policy that consumes its outcomes (common/retry.hpp):
// schedule determinism, the spec grammar, scoped arming, the zero-overhead
// disabled path, and retry/backoff/deadline semantics.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/faults.hpp"
#include "common/result.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"

namespace ada {
namespace {

using fault::Injector;
using fault::Outcome;
using fault::Schedule;
using fault::ScopedFault;

// Every test starts and ends with a clean global injector: arming is
// process-global state, and leaking an arm would poison later tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { Injector::global().disarm_all(); }
  void TearDown() override { Injector::global().disarm_all(); }
};

// Fire/no-fire sequence of `site` over `hits` evaluations.
std::vector<bool> fire_sequence(const std::string& site, int hits) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(hits));
  for (int i = 0; i < hits; ++i) out.push_back(fault::hit(site).fired());
  return out;
}

TEST_F(FaultInjectionTest, DisabledByDefault) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::hit("plfs.write_dropping").fired());
  EXPECT_TRUE(fault::check("plfs.write_dropping").is_ok());
}

TEST_F(FaultInjectionTest, DisabledPathNeverReachesTheInjector) {
  // The zero-overhead contract: while nothing is armed, fault::hit is one
  // relaxed load -- the slow-path evaluation counter must not move.
  const std::uint64_t before = Injector::global().evaluations();
  for (int i = 0; i < 1000; ++i) fault::hit("some.site");
  EXPECT_EQ(Injector::global().evaluations(), before);

  // Armed: every hit is an evaluation, even of *other* sites.
  ScopedFault armed("other.site", Schedule::fail_nth(1));
  fault::hit("some.site");
  EXPECT_EQ(Injector::global().evaluations(), before + 1);
}

TEST_F(FaultInjectionTest, FailNthFiresExactlyOnce) {
  ScopedFault armed("s", Schedule::fail_nth(3));
  EXPECT_EQ(fire_sequence("s", 6), (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(Injector::global().hits("s"), 6u);
  EXPECT_EQ(Injector::global().fired("s"), 1u);
}

TEST_F(FaultInjectionTest, FailEveryFiresOnMultiples) {
  ScopedFault armed("s", Schedule::fail_every(2));
  EXPECT_EQ(fire_sequence("s", 6), (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FaultInjectionTest, DownWindowCoversInclusiveRange) {
  ScopedFault armed("s", Schedule::down_window(2, 4));
  EXPECT_EQ(fire_sequence("s", 6), (std::vector<bool>{false, true, true, true, false, false}));
}

TEST_F(FaultInjectionTest, ProbabilityScheduleIsSeedDeterministic) {
  Schedule p = Schedule::fail_probability(0.5, 42);
  std::vector<bool> first;
  {
    ScopedFault armed("s", p);
    first = fire_sequence("s", 64);
  }
  {
    // Re-arming resets the per-site Rng: identical seed, identical sequence.
    ScopedFault armed("s", p);
    EXPECT_EQ(fire_sequence("s", 64), first);
  }
  {
    ScopedFault armed("s", Schedule::fail_probability(0.5, 43));
    EXPECT_NE(fire_sequence("s", 64), first) << "different seed should differ";
  }
  // A 0.5 schedule should actually fire sometimes and pass sometimes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FaultInjectionTest, TornAndCorruptCarryTheirParameters) {
  {
    ScopedFault armed("s", Schedule::torn_write(0.25, 1));
    const Outcome outcome = fault::hit("s");
    EXPECT_EQ(outcome.kind, Outcome::Kind::kTorn);
    EXPECT_DOUBLE_EQ(outcome.fraction, 0.25);
  }
  {
    ScopedFault armed("s", Schedule::corrupt_read(1, 0.75));
    const Outcome outcome = fault::hit("s");
    EXPECT_EQ(outcome.kind, Outcome::Kind::kCorrupt);
    EXPECT_DOUBLE_EQ(outcome.fraction, 0.75);
  }
  {
    ScopedFault armed("s", Schedule::latency_spike(0.125));
    const Outcome outcome = fault::hit("s");
    EXPECT_EQ(outcome.kind, Outcome::Kind::kDelay);
    EXPECT_DOUBLE_EQ(outcome.delay_seconds, 0.125);
    // check() treats a pure delay as success: error-only sites proceed.
    ScopedFault delay2("s2", Schedule::latency_spike(0.125));
    EXPECT_TRUE(fault::check("s2").is_ok());
  }
}

TEST_F(FaultInjectionTest, CheckCollapsesTornToError) {
  // An error-only call site must never silently drop an armed torn/corrupt
  // effect -- check() converts them to failures.
  ScopedFault armed("s", Schedule::torn_write(0.5, 1));
  const Status status = fault::check("s");
  ASSERT_FALSE(status.is_ok());
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnDestruction) {
  {
    ScopedFault armed("scoped.site", Schedule::fail_nth(1));
    EXPECT_TRUE(fault::enabled());
    EXPECT_EQ(Injector::global().armed_sites(), std::vector<std::string>{"scoped.site"});
  }
  EXPECT_FALSE(fault::enabled());
  EXPECT_TRUE(Injector::global().armed_sites().empty());
}

TEST_F(FaultInjectionTest, ReArmingResetsHitCount) {
  Injector::global().arm("s", Schedule::fail_nth(2));
  fault::hit("s");
  Injector::global().arm("s", Schedule::fail_nth(2));
  EXPECT_EQ(Injector::global().hits("s"), 0u);
  EXPECT_EQ(fire_sequence("s", 2), (std::vector<bool>{false, true}));
  Injector::global().disarm("s");
}

TEST_F(FaultInjectionTest, ParseScheduleGrammar) {
  auto nth = fault::parse_schedule("nth:3");
  ASSERT_TRUE(nth.is_ok());
  EXPECT_EQ(nth.value().trigger, Schedule::Trigger::kNth);
  EXPECT_EQ(nth.value().nth, 3u);

  auto every = fault::parse_schedule("every:4");
  ASSERT_TRUE(every.is_ok());
  EXPECT_EQ(every.value().trigger, Schedule::Trigger::kEveryNth);

  auto prob = fault::parse_schedule("prob:0.25:99");
  ASSERT_TRUE(prob.is_ok());
  EXPECT_EQ(prob.value().trigger, Schedule::Trigger::kProbability);
  EXPECT_DOUBLE_EQ(prob.value().probability, 0.25);
  EXPECT_EQ(prob.value().seed, 99u);

  auto down = fault::parse_schedule("down:2:5");
  ASSERT_TRUE(down.is_ok());
  EXPECT_EQ(down.value().trigger, Schedule::Trigger::kWindow);
  EXPECT_EQ(down.value().window_begin, 2u);
  EXPECT_EQ(down.value().window_end, 5u);

  auto torn = fault::parse_schedule("torn:0.5:2");
  ASSERT_TRUE(torn.is_ok());
  EXPECT_EQ(torn.value().effect, Outcome::Kind::kTorn);
  EXPECT_EQ(torn.value().nth, 2u);

  auto corrupt = fault::parse_schedule("corrupt");
  ASSERT_TRUE(corrupt.is_ok());
  EXPECT_EQ(corrupt.value().effect, Outcome::Kind::kCorrupt);

  auto delay = fault::parse_schedule("delay:0.01:0.5");
  ASSERT_TRUE(delay.is_ok());
  EXPECT_EQ(delay.value().effect, Outcome::Kind::kDelay);
  EXPECT_DOUBLE_EQ(delay.value().delay_seconds, 0.01);

  for (const char* bad : {"", "nth", "nth:0", "nth:x", "prob:2.0", "prob:-1", "down:3",
                          "torn:1.5", "wibble:1", "delay"}) {
    EXPECT_FALSE(fault::parse_schedule(bad).is_ok()) << "spec should be rejected: " << bad;
  }
}

TEST_F(FaultInjectionTest, ArmSpecArmsMultipleSites) {
  ASSERT_TRUE(Injector::global().arm_spec("a.site=nth:1,b.site=delay:0.5").is_ok());
  const auto sites = Injector::global().armed_sites();
  EXPECT_EQ(sites.size(), 2u);
  EXPECT_TRUE(fault::hit("a.site").fired());
  EXPECT_EQ(fault::hit("b.site").kind, Outcome::Kind::kDelay);

  EXPECT_FALSE(Injector::global().arm_spec("no-equals-sign").is_ok());
  EXPECT_FALSE(Injector::global().arm_spec("a.site=bogus:1").is_ok());
  EXPECT_FALSE(Injector::global().arm_spec("=nth:1").is_ok());
}

// --- retry_sync -----------------------------------------------------------

RetryPolicy fast_policy() {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_s = 1e-4;  // keep test wall time negligible
  return policy;
}

TEST_F(FaultInjectionTest, RetrySucceedsAfterTransientFault) {
  ScopedFault armed("unit.retry", Schedule::fail_nth(1));
  int calls = 0;
  const Status status = retry_sync("unit_retry", fast_policy(), [&] {
    ++calls;
    return fault::check("unit.retry");
  });
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(calls, 2);  // first try injected, retry clean
}

TEST_F(FaultInjectionTest, RetryExhaustsOnPersistentTransientError) {
  int calls = 0;
  const Status status = retry_sync("unit_retry", fast_policy(), [&] {
    ++calls;
    return Status(io_error("still down"));
  });
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kIoError);
  EXPECT_EQ(calls, 4);  // max_attempts
}

TEST_F(FaultInjectionTest, PermanentErrorIsNotRetried) {
  int calls = 0;
  const Status status = retry_sync("unit_retry", fast_policy(), [&] {
    ++calls;
    return Status(corrupt_data("checksum mismatch"));
  });
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kCorruptData);
  EXPECT_EQ(calls, 1);
}

TEST_F(FaultInjectionTest, RetryResultCarriesTheValue) {
  ScopedFault armed("unit.retry", Schedule::fail_nth(1));
  const Result<int> result = retry_sync("unit_retry", fast_policy(), [&]() -> Result<int> {
    ADA_RETURN_IF_ERROR(fault::check("unit.retry"));
    return 7;
  });
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 7);
}

TEST_F(FaultInjectionTest, DeadlineConvertsToDeadlineExceeded) {
  RetryPolicy policy = fast_policy();
  policy.max_attempts = 1000;
  policy.initial_backoff_s = 0.05;
  policy.op_timeout_s = 0.02;  // first backoff already overshoots
  const Status status =
      retry_sync("unit_retry", policy, [&] { return Status(unavailable("down")); });
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, BackoffIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.001;
  policy.backoff_multiplier = 2.0;
  policy.jitter_fraction = 0.25;

  Rng a(policy.seed), b(policy.seed), c(policy.seed + 1);
  std::vector<double> seq_a, seq_b, seq_c;
  for (int retry = 1; retry <= 5; ++retry) {
    seq_a.push_back(policy.backoff_for(retry, a));
    seq_b.push_back(policy.backoff_for(retry, b));
    seq_c.push_back(policy.backoff_for(retry, c));
  }
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_NE(seq_a, seq_c);
  // Exponential envelope: each un-jittered base doubles; jitter is +/-25%.
  for (int retry = 1; retry <= 5; ++retry) {
    const double base = 0.001 * std::pow(2.0, retry - 1);
    EXPECT_GE(seq_a[static_cast<std::size_t>(retry - 1)], base * 0.75);
    EXPECT_LE(seq_a[static_cast<std::size_t>(retry - 1)], base * 1.25);
  }
}

TEST_F(FaultInjectionTest, IsTransientClassification) {
  EXPECT_TRUE(is_transient(ErrorCode::kIoError));
  EXPECT_TRUE(is_transient(ErrorCode::kUnavailable));
  EXPECT_TRUE(is_transient(ErrorCode::kResourceExhausted));
  EXPECT_FALSE(is_transient(ErrorCode::kCorruptData));
  EXPECT_FALSE(is_transient(ErrorCode::kNotFound));
  EXPECT_FALSE(is_transient(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(is_transient(ErrorCode::kDeadlineExceeded));
}

}  // namespace
}  // namespace ada
