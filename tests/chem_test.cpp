// Unit tests for the molecular model: elements, classification, system.
#include <gtest/gtest.h>

#include "chem/classify.hpp"
#include "chem/element.hpp"
#include "chem/system.hpp"

namespace ada::chem {
namespace {

// --- elements -------------------------------------------------------------------

TEST(ElementTest, SymbolsRoundTrip) {
  EXPECT_EQ(symbol(Element::kCarbon), "C");
  EXPECT_EQ(symbol(Element::kSodium), "Na");
  EXPECT_EQ(symbol(Element::kUnknown), "X");
}

TEST(ElementTest, MassesAreSane) {
  EXPECT_NEAR(atomic_mass(Element::kHydrogen), 1.008, 1e-6);
  EXPECT_NEAR(atomic_mass(Element::kCarbon), 12.011, 1e-6);
  EXPECT_GT(atomic_mass(Element::kIron), atomic_mass(Element::kCalcium));
}

TEST(ElementTest, VdwRadiiPositive) {
  for (int e = 0; e <= static_cast<int>(Element::kZinc); ++e) {
    EXPECT_GT(vdw_radius_nm(static_cast<Element>(e)), 0.0);
  }
}

TEST(ElementTest, NameGuessingProteinContext) {
  // In a protein residue CA is an alpha-carbon, not calcium.
  EXPECT_EQ(element_from_atom_name("CA", /*is_ion_residue=*/false), Element::kCarbon);
  EXPECT_EQ(element_from_atom_name("CA", /*is_ion_residue=*/true), Element::kCalcium);
  EXPECT_EQ(element_from_atom_name("NA", false), Element::kNitrogen);
  EXPECT_EQ(element_from_atom_name("NA", true), Element::kSodium);
}

TEST(ElementTest, NameGuessingStripsDigitsAndSpaces) {
  EXPECT_EQ(element_from_atom_name("1HB"), Element::kHydrogen);
  EXPECT_EQ(element_from_atom_name(" OW"), Element::kOxygen);
  EXPECT_EQ(element_from_atom_name("2H"), Element::kHydrogen);
  EXPECT_EQ(element_from_atom_name(""), Element::kUnknown);
  EXPECT_EQ(element_from_atom_name("123"), Element::kUnknown);
}

// --- classification -----------------------------------------------------------------

TEST(ClassifyTest, StandardAminoAcidsAreProtein) {
  for (const char* r : {"ALA", "GLY", "TRP", "HSD", "CYX"}) {
    EXPECT_EQ(classify_residue(r), Category::kProtein) << r;
  }
}

TEST(ClassifyTest, WaterModels) {
  for (const char* r : {"HOH", "SOL", "TIP3", "SPC", "WAT"}) {
    EXPECT_EQ(classify_residue(r), Category::kWater) << r;
  }
}

TEST(ClassifyTest, Lipids) {
  for (const char* r : {"POPC", "DPPC", "CHL1"}) {
    EXPECT_EQ(classify_residue(r), Category::kLipid) << r;
  }
}

TEST(ClassifyTest, Ions) {
  for (const char* r : {"NA", "CL", "K", "MG", "CAL", "SOD", "POT"}) {
    EXPECT_EQ(classify_residue(r), Category::kIon) << r;
  }
}

TEST(ClassifyTest, Nucleic) {
  for (const char* r : {"DA", "DG", "U", "ADE"}) {
    EXPECT_EQ(classify_residue(r), Category::kNucleic) << r;
  }
}

TEST(ClassifyTest, UnknownHetatmIsLigand) {
  EXPECT_EQ(classify_residue("LIG", /*is_hetatm=*/true), Category::kLigand);
  EXPECT_EQ(classify_residue("XYZ", /*is_hetatm=*/false), Category::kOther);
}

TEST(ClassifyTest, CaseAndWhitespaceInsensitive) {
  EXPECT_EQ(classify_residue(" ala "), Category::kProtein);
  EXPECT_EQ(classify_residue("sol"), Category::kWater);
}

TEST(ClassifyTest, TagsRoundTrip) {
  for (int c = 0; c < kCategoryCount; ++c) {
    const auto category = static_cast<Category>(c);
    if (category == Category::kOther) continue;  // 'o' is the catch-all
    EXPECT_EQ(category_from_tag(category_tag(category)), category);
  }
  EXPECT_EQ(category_tag(Category::kProtein), 'p');
  EXPECT_EQ(category_from_tag('?'), Category::kOther);
}

TEST(ClassifyTest, CategoryNames) {
  EXPECT_EQ(category_name(Category::kProtein), "protein");
  EXPECT_EQ(category_name(Category::kWater), "water");
}

// --- system -------------------------------------------------------------------------

System make_test_system() {
  System s;
  s.set_box(Box::orthorhombic(5.0f, 5.0f, 5.0f));
  Atom a;
  a.serial = 1;
  a.name = "CA";
  a.residue_name = "ALA";
  a.residue_seq = 1;
  s.add_atom(a, 1.0f, 1.0f, 1.0f);
  a.serial = 2;
  a.name = "CB";
  s.add_atom(a, 1.1f, 1.0f, 1.0f);
  a.serial = 3;
  a.name = "OW";
  a.residue_name = "SOL";
  a.residue_seq = 2;
  s.add_atom(a, 2.0f, 2.0f, 2.0f);
  a.serial = 4;
  a.name = "NA";
  a.residue_name = "NA";
  a.residue_seq = 3;
  s.add_atom(a, 3.0f, 3.0f, 3.0f);
  return s;
}

TEST(SystemTest, CategoriesAssignedOnInsert) {
  const System s = make_test_system();
  EXPECT_EQ(s.category(0), Category::kProtein);
  EXPECT_EQ(s.category(2), Category::kWater);
  EXPECT_EQ(s.category(3), Category::kIon);
}

TEST(SystemTest, ElementInferredWithIonContext) {
  const System s = make_test_system();
  EXPECT_EQ(s.atom(0).element, Element::kCarbon);   // CA in ALA
  EXPECT_EQ(s.atom(3).element, Element::kSodium);   // NA ion
}

TEST(SystemTest, SelectionForCategory) {
  const System s = make_test_system();
  const Selection protein = s.selection_for(Category::kProtein);
  EXPECT_EQ(protein.count(), 2u);
  EXPECT_TRUE(protein.contains(0));
  EXPECT_TRUE(protein.contains(1));
  EXPECT_FALSE(protein.contains(2));
  // Contiguous protein atoms collapse into one run.
  EXPECT_EQ(protein.runs().size(), 1u);
}

TEST(SystemTest, CountsAndResidues) {
  const System s = make_test_system();
  EXPECT_EQ(s.atom_count(), 4u);
  EXPECT_EQ(s.count_category(Category::kProtein), 2u);
  EXPECT_EQ(s.residue_count(), 3u);
  EXPECT_GT(s.total_mass(), 0.0);
}

TEST(SystemTest, ReferenceCoordsLayout) {
  const System s = make_test_system();
  ASSERT_EQ(s.reference_coords().size(), 12u);
  EXPECT_FLOAT_EQ(s.reference_coords()[0], 1.0f);
  EXPECT_FLOAT_EQ(s.reference_coords()[3], 1.1f);
}

TEST(BoxTest, Orthorhombic) {
  const Box b = Box::orthorhombic(1.0f, 2.0f, 3.0f);
  EXPECT_FLOAT_EQ(b.x(), 1.0f);
  EXPECT_FLOAT_EQ(b.y(), 2.0f);
  EXPECT_FLOAT_EQ(b.z(), 3.0f);
  EXPECT_FLOAT_EQ(b.matrix[1], 0.0f);
}

}  // namespace
}  // namespace ada::chem
