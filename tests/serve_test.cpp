// Multi-tenant serving suite (`ctest -L check-serve`).
//
// The contract under test: AdaService in front of one shared Ada gives N
// concurrent VMD sessions (a) request coalescing -- identical concurrent
// queries share exactly ONE backend fill and one refcounted image, fenced
// by the container's mutation generation so a racing write can force a
// second fill but never a stale share; (b) per-tenant admission -- bounded
// in-flight windows, memory quotas, deficit-round-robin I/O fairness; and
// (c) backpressure -- a full tenant queue sheds with a typed kOverloaded
// instead of queueing without bound.  Plus the AdmissionWindow FIFO-handoff
// regressions (one wakeup per release, grants in arrival order) and the
// spool IPC round trip.  Run the battery under TSan via -DADA_SANITIZE=thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "ada/indexer.hpp"
#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "common/admission.hpp"
#include "common/faults.hpp"
#include "plfs/plfs.hpp"
#include "serve/serve.hpp"
#include "serve/spool.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// --- AdmissionWindow: FIFO handoff + bounded wakeups ---------------------------------

// Regression for the notify_all thundering herd: every release used to wake
// EVERY waiter of every key, so 4 queued waiters drained with 10 wakeups
// (4+3+2+1) and no grant-order guarantee.  The handoff design wakes exactly
// one waiter per release and grants strictly in arrival order.
TEST(AdmissionWindowTest, GrantsAreFifoWithOneWakeupPerHandoff) {
  AdmissionWindow window(/*keys=*/1, /*depth=*/1);
  ASSERT_EQ(window.acquire(0), 0u);

  constexpr int kWaiters = 4;
  std::mutex order_mu;
  std::vector<int> order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&window, &order_mu, &order, i] {
      EXPECT_GE(window.acquire(0), 1u);  // everyone parks behind the holder
      {
        const std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(i);
      }
      window.release(0);
    });
    // Pin the arrival order: don't start waiter i+1 until i is parked.
    while (window.waiting(0) != static_cast<std::size_t>(i + 1)) {
      std::this_thread::sleep_for(1ms);
    }
  }

  window.release(0);  // hand the slot down the queue
  for (std::thread& t : waiters) t.join();

  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3})) << "grants must follow arrival order";
  // 5 releases, 4 of them handoffs: exactly one notification each.  The
  // broadcast behavior would have issued 10.
  EXPECT_EQ(window.wakeups(), 4u);
  EXPECT_EQ(window.in_flight(0), 0u);
  EXPECT_EQ(window.waiting(0), 0u);
}

TEST(AdmissionWindowTest, ReleaseDoesNotWakeOtherKeys) {
  AdmissionWindow window(/*keys=*/2, /*depth=*/1);
  ASSERT_EQ(window.acquire(0), 0u);
  ASSERT_EQ(window.acquire(1), 0u);

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    window.acquire(1);
    granted.store(true);
    window.release(1);
  });
  while (window.waiting(1) != 1) std::this_thread::sleep_for(1ms);

  window.release(0);  // frees key 0: key 1's waiter must not stir
  std::this_thread::sleep_for(30ms);
  EXPECT_FALSE(granted.load()) << "a release on key 0 woke key 1's waiter";
  EXPECT_EQ(window.wakeups(), 0u);

  window.release(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(window.wakeups(), 1u);
}

TEST(AdmissionWindowTest, TryAcquireProbesWithoutQueueing) {
  AdmissionWindow window(/*keys=*/1, /*depth=*/2);
  EXPECT_TRUE(window.try_acquire(0));
  EXPECT_TRUE(window.try_acquire(0));
  EXPECT_FALSE(window.try_acquire(0)) << "at depth: the probe must not block or queue";
  EXPECT_EQ(window.in_flight(0), 2u);
  window.release(0);
  EXPECT_TRUE(window.try_acquire(0));
  window.release(0);
  window.release(0);

  AdmissionWindow unbounded(/*keys=*/1, /*depth=*/0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unbounded.try_acquire(0));
}

TEST(AdmissionWindowTest, PerKeyDepthsAreIndependent) {
  AdmissionWindow window(std::vector<unsigned>{2, 0, 1});
  EXPECT_EQ(window.depth(), 0u);  // no uniform depth
  EXPECT_EQ(window.depth(0), 2u);
  EXPECT_EQ(window.depth(1), 0u);
  EXPECT_EQ(window.depth(2), 1u);

  EXPECT_TRUE(window.try_acquire(0));
  EXPECT_TRUE(window.try_acquire(0));
  EXPECT_FALSE(window.try_acquire(0));
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(window.try_acquire(1));  // unbounded key
  EXPECT_TRUE(window.try_acquire(2));
  EXPECT_FALSE(window.try_acquire(2));
  window.release(0);
  window.release(0);
  window.release(2);
}

// --- QueryCache: the duplicate-fill counter ------------------------------------------

// The concurrent-cold-miss race made visible: two fills of the same key and
// generation mean one backend read was pure waste.  The cache keeps the
// incumbent image (so every holder shares one allocation) and counts the
// duplicate; lookup_or_fill's single flight exists to keep it at zero.
TEST(QueryCacheDuplicateFillTest, SameGenerationInsertKeepsIncumbentAndCounts) {
  core::QueryCache cache(1 << 20);
  const std::vector<std::uint8_t> first_bytes{1, 2, 3, 4};
  const std::vector<std::uint8_t> second_bytes{9, 9, 9, 9};

  const auto incumbent = cache.insert("bar.xtc", "p", /*generation=*/5, first_bytes);
  const auto duplicate = cache.insert("bar.xtc", "p", /*generation=*/5, second_bytes);
  EXPECT_EQ(incumbent.get(), duplicate.get()) << "the incumbent image must be kept";
  EXPECT_EQ(*duplicate, first_bytes);
  EXPECT_EQ(cache.stats().duplicate_fills, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);

  // A NEWER generation is not a duplicate: the old entry is stale, replace it.
  const auto fresh = cache.insert("bar.xtc", "p", /*generation=*/6, second_bytes);
  EXPECT_NE(fresh.get(), incumbent.get());
  EXPECT_EQ(*fresh, second_bytes);
  EXPECT_EQ(cache.stats().duplicate_fills, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// The race ELIMINATED: lookup_or_fill makes the second cold miss wait for
// the first one's insert instead of paying its own backend read, so a
// concurrent wave of misses is one leader plus waiters that all hit.
TEST(QueryCacheDuplicateFillTest, LookupOrFillBlocksConcurrentMissesOnOneLeader) {
  core::QueryCache cache(1 << 20);
  const std::vector<std::uint8_t> bytes{7, 7, 7};

  core::QueryCache::FillGuard leader;
  ASSERT_EQ(cache.lookup_or_fill("bar.xtc", "p", /*generation=*/3, &leader), nullptr);
  ASSERT_TRUE(static_cast<bool>(leader)) << "first miss must claim leadership";

  // A second caller of the same key+generation must park until the leader
  // resolves -- not claim a second flight.
  std::atomic<bool> waiter_done{false};
  core::QueryCache::Image waited;
  std::thread waiter([&] {
    core::QueryCache::FillGuard follower;
    waited = cache.lookup_or_fill("bar.xtc", "p", /*generation=*/3, &follower);
    EXPECT_FALSE(static_cast<bool>(follower)) << "the waiter must not become a second leader";
    waiter_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(waiter_done.load()) << "the waiter ran ahead of the in-flight fill";

  const auto inserted = cache.insert("bar.xtc", "p", /*generation=*/3, bytes);
  leader.reset();  // insert landed: release the waiters
  waiter.join();
  EXPECT_EQ(waited.get(), inserted.get()) << "the waiter must share the leader's image";
  EXPECT_EQ(cache.stats().duplicate_fills, 0u);
  EXPECT_EQ(cache.stats().misses, 1u) << "only the leader's miss pays a backend read";
  EXPECT_EQ(cache.stats().hits, 1u);

  // A newer generation never waits on a stale flight: it fills on its own.
  core::QueryCache::FillGuard stale_leader;
  ASSERT_EQ(cache.lookup_or_fill("bar.xtc", "p", /*generation=*/4, &stale_leader), nullptr);
  core::QueryCache::FillGuard newer;
  EXPECT_EQ(cache.lookup_or_fill("bar.xtc", "p", /*generation=*/5, &newer), nullptr);
  EXPECT_TRUE(static_cast<bool>(newer)) << "a newer generation must displace the stale flight";
}

// A leader whose backend read fails must not strand its waiters: dropping
// the guard without an insert elects the next waiter as the new leader.
TEST(QueryCacheDuplicateFillTest, AbandonedFillElectsTheNextLeader) {
  core::QueryCache cache(1 << 20);
  auto leader = std::make_unique<core::QueryCache::FillGuard>();
  ASSERT_EQ(cache.lookup_or_fill("bar.xtc", "p", /*generation=*/1, leader.get()), nullptr);

  std::atomic<bool> elected{false};
  std::thread waiter([&] {
    core::QueryCache::FillGuard follower;
    const auto image = cache.lookup_or_fill("bar.xtc", "p", /*generation=*/1, &follower);
    EXPECT_EQ(image, nullptr) << "nothing was inserted: the waiter must see a miss";
    EXPECT_TRUE(static_cast<bool>(follower)) << "the waiter must take over leadership";
    elected.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(elected.load());
  leader.reset();  // the read failed; abandon without inserting
  waiter.join();
  EXPECT_TRUE(elected.load());
}

// --- fixture -------------------------------------------------------------------------

/// Disarm every fault site on scope exit so a failing ASSERT can't leak an
/// armed schedule into the next test.
struct DisarmGuard {
  ~DisarmGuard() { fault::Injector::global().disarm_all(); }
};

/// Hold the leader's backend fill open: delay the FIRST dropping read only,
/// so the fill stays in flight long enough for every joiner to arrive while
/// the rest of the test runs at full speed.
fault::Schedule first_read_delay(double seconds) {
  fault::Schedule schedule;
  schedule.trigger = fault::Schedule::Trigger::kNth;
  schedule.nth = 1;
  schedule.effect = fault::Outcome::Kind::kDelay;
  schedule.delay_seconds = seconds;
  return schedule;
}

/// Completion rendezvous: collects callback results and wakes the test when
/// the expected number have landed.
class Collector {
 public:
  explicit Collector(std::size_t expected) : remaining_(expected) {}

  AdaService::Callback callback() {
    return [this](Result<Response> result) {
      const std::lock_guard<std::mutex> lock(mu_);
      results_.push_back(std::move(result));
      if (--remaining_ == 0) cv_.notify_all();
    };
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

  std::vector<Result<Response>> take() {
    const std::lock_guard<std::mutex> lock(mu_);
    return std::move(results_);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t remaining_;
  std::vector<Result<Response>> results_;
};

class ServeTest : public testing::Test {
 protected:
  static constexpr std::uint32_t kFrames = 17;  // chunks of 3: extents 3,3,3,3,3,2

  void SetUp() override {
    root_ = testing::TempDir() + "/ada_serve_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    system_ = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
    serial_ = open_ada(/*read_threads=*/0, /*queue_depth=*/4, /*cache_bytes=*/0);

    // Streamed ingest with small chunks: every tag's subset spans six
    // extents, so a held-open fill has several dropping reads to delay.
    const core::LabelMap labels = core::categorize_protein_misc(system_);
    auto stream = serial_->begin_stream(labels, "traj.xtc", /*chunk_frames=*/3);
    ASSERT_TRUE(stream.is_ok()) << stream.error().to_string();
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    for (std::uint32_t f = 0; f < kFrames; ++f) {
      const auto frame = gen.next_frame();
      ASSERT_TRUE(stream.value()
                      .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(), frame)
                      .is_ok());
    }
    ASSERT_TRUE(stream.value().finish().is_ok());

    const auto tags = serial_->tags("traj.xtc");
    ASSERT_TRUE(tags.is_ok());
    tags_ = tags.value();
    ASSERT_GE(tags_.size(), 2u);
    for (const core::Tag& tag : tags_) {
      reference_[tag] = serial_->query("traj.xtc", tag).value();
    }
  }
  void TearDown() override { fs::remove_all(root_); }

  std::unique_ptr<core::Ada> open_ada(unsigned read_threads, unsigned queue_depth,
                                      std::uint64_t cache_bytes) {
    core::AdaConfig config;
    config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
    config.read_threads = read_threads;
    config.read_queue_depth = queue_depth;
    config.cache_bytes = cache_bytes;
    return std::make_unique<core::Ada>(
        plfs::PlfsMount::open({{"ssd", root_ + "/ssd"}, {"hdd", root_ + "/hdd"}}).value(),
        config);
  }

  Request subset_request(const core::Tag& tag, std::string tenant = "default") const {
    Request request;
    request.tenant = std::move(tenant);
    request.logical_name = "traj.xtc";
    request.tag = tag;
    return request;
  }

  Request range_request(const core::Tag& tag, core::FrameRange range,
                        std::string tenant = "default") const {
    Request request = subset_request(tag, std::move(tenant));
    request.kind = RequestKind::kRange;
    request.range = range;
    return request;
  }

  std::string root_;
  chem::System system_;
  std::unique_ptr<core::Ada> serial_;
  std::vector<core::Tag> tags_;
  std::map<core::Tag, std::vector<std::uint8_t>> reference_;
};

// --- query_image: the shareable read path --------------------------------------------

TEST_F(ServeTest, QueryImageSharesOneRefcountedAllocation) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/8 << 20);
  const auto first = ada->query_image("traj.xtc", tags_[0]);
  ASSERT_TRUE(first.is_ok()) << first.error().to_string();
  const auto second = ada->query_image("traj.xtc", tags_[0]);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value().get(), second.value().get())
      << "a repeated query must share the cached allocation, not copy it";
  EXPECT_EQ(*first.value(), reference_.at(tags_[0]));
  const auto stats = ada->query_cache()->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.duplicate_fills, 0u);
}

// --- coalescing ----------------------------------------------------------------------

// The tentpole differential: N concurrent identical queries -> exactly ONE
// backend fill, one cache miss, zero duplicate fills, every response
// byte-identical to the serial reference AND pointer-identical to each
// other (one shared allocation).
TEST_F(ServeTest, CoalescingCollapsesConcurrentIdenticalQueriesToOneFill) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/8 << 20);
  ServeConfig config;
  config.workers = 4;
  config.default_quota.max_inflight = 0;  // unbounded: admission is not the subject
  config.default_quota.queue_capacity = 0;
  AdaService service(*ada, config);

  DisarmGuard guard;
  const fault::ScopedFault slow("plfs.read_dropping", first_read_delay(0.4));

  constexpr std::size_t kClients = 8;
  Collector collector(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(service.submit(subset_request(tags_[0]), collector.callback()).is_ok());
  }
  collector.wait();

  const auto results = collector.take();
  ASSERT_EQ(results.size(), kClients);
  std::size_t coalesced = 0;
  for (const auto& result : results) {
    ASSERT_TRUE(result.is_ok()) << result.error().to_string();
    EXPECT_EQ(*result.value().image, reference_.at(tags_[0]));
    EXPECT_EQ(result.value().image.get(), results.front().value().image.get())
        << "every coalesced reader must hold the same allocation";
    if (result.value().coalesced) ++coalesced;
  }
  EXPECT_EQ(coalesced, kClients - 1);

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.fills, 1u) << "N identical concurrent queries must pay ONE backend fill";
  EXPECT_EQ(stats.coalesced, kClients - 1);
  EXPECT_EQ(stats.completed, kClients);

  const auto cache = ada->query_cache()->stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.duplicate_fills, 0u)
      << "single-flight must eliminate the concurrent-cold-miss duplicate fill";
}

TEST_F(ServeTest, RangeQueriesCoalesceOnTheFullSelection) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/8 << 20);
  ServeConfig config;
  config.workers = 4;
  config.default_quota.max_inflight = 0;
  config.default_quota.queue_capacity = 0;
  AdaService service(*ada, config);

  const core::FrameRange range{2, 11, 3};
  const auto reference = serial_->query("traj.xtc", tags_[0], range);
  ASSERT_TRUE(reference.is_ok());

  DisarmGuard guard;
  const fault::ScopedFault slow("plfs.read_dropping", first_read_delay(0.4));

  constexpr std::size_t kClients = 6;
  Collector collector(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(service.submit(range_request(tags_[0], range), collector.callback()).is_ok());
  }
  collector.wait();

  for (const auto& result : collector.take()) {
    ASSERT_TRUE(result.is_ok()) << result.error().to_string();
    EXPECT_EQ(*result.value().image, reference.value());
  }
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.fills, 1u);
  EXPECT_EQ(stats.coalesced, kClients - 1);
}

// Generation fencing: a write landing between two "identical" requests must
// split them into two fills -- duplicate work is acceptable under a race, a
// stale share never is.
TEST_F(ServeTest, WriterRacingReadersForcesASecondFillNeverAStaleShare) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/8 << 20);
  ServeConfig config;
  config.workers = 4;
  config.default_quota.max_inflight = 0;
  config.default_quota.queue_capacity = 0;
  AdaService service(*ada, config);

  DisarmGuard guard;
  const fault::ScopedFault slow("plfs.read_dropping", first_read_delay(0.5));

  Collector collector(2);
  ASSERT_TRUE(service.submit(subset_request(tags_[0]), collector.callback()).is_ok());
  std::this_thread::sleep_for(150ms);  // the leader is now parked inside its fill

  // A content-preserving index rewrite: the bytes answer does not change,
  // but the mutation generation does -- exactly what a racing writer does
  // to the single-flight key.
  const auto records = ada->mount().read_index("traj.xtc");
  ASSERT_TRUE(records.is_ok());
  ASSERT_TRUE(ada->mount().rewrite_index("traj.xtc", records.value()).is_ok());

  ASSERT_TRUE(service.submit(subset_request(tags_[0]), collector.callback()).is_ok());
  collector.wait();

  for (const auto& result : collector.take()) {
    ASSERT_TRUE(result.is_ok()) << result.error().to_string();
    EXPECT_EQ(*result.value().image, reference_.at(tags_[0]));
    EXPECT_FALSE(result.value().coalesced);
  }
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.fills, 2u) << "a mismatched generation must start a second fill";
  EXPECT_EQ(stats.coalesced, 0u);
}

// --- admission: backpressure, quotas, fairness ---------------------------------------

TEST_F(ServeTest, FullTenantQueueShedsWithTypedOverload) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/0);
  ServeConfig config;
  config.workers = 2;
  config.start_paused = true;  // nothing dispatches: the queue fills deterministically
  config.default_quota.queue_capacity = 2;
  config.default_quota.max_inflight = 0;
  AdaService service(*ada, config);

  Collector collector(2);
  ASSERT_TRUE(service.submit(subset_request(tags_[0]), collector.callback()).is_ok());
  ASSERT_TRUE(service.submit(subset_request(tags_[1]), collector.callback()).is_ok());
  const Status shed = service.submit(subset_request(tags_[0]), [](Result<Response>) {
    FAIL() << "a shed request must never invoke its callback";
  });
  ASSERT_FALSE(shed.is_ok());
  EXPECT_EQ(shed.error().code(), ErrorCode::kOverloaded);
  EXPECT_EQ(service.stats().rejected_overload, 1u);

  service.resume();
  collector.wait();
  for (const auto& result : collector.take()) {
    ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  }
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST_F(ServeTest, MemoryQuotaRejectsRequestsItHasLearnedCannotFit) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/0);
  ServeConfig config;
  config.workers = 2;
  config.default_quota.memory_bytes = 64;  // far below any subset image
  config.default_quota.queue_capacity = 0;
  config.default_quota.max_inflight = 0;
  AdaService service(*ada, config);

  // First request: size unknown, admitted on faith into the idle lane (the
  // quota must not wedge a tenant whose every response is oversized).
  const auto first = service.execute(subset_request(tags_[0]));
  ASSERT_TRUE(first.is_ok()) << first.error().to_string();
  ASSERT_GT(first.value().image->size(), 64u);

  // Second request of the same key: the learned size exceeds the budget, so
  // the reject happens at submit time, typed.
  const auto second = service.execute(subset_request(tags_[0]));
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_quota, 1u);

  // A different key is still unknown-size: admitted.
  const auto other = service.execute(subset_request(tags_[1]));
  ASSERT_TRUE(other.is_ok()) << other.error().to_string();
}

TEST_F(ServeTest, PerTenantWindowBoundsConcurrentDispatch) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/0);
  ServeConfig config;
  config.workers = 4;  // more workers than the lane admits
  config.default_quota.max_inflight = 1;
  config.default_quota.queue_capacity = 0;
  AdaService service(*ada, config);

  constexpr std::uint32_t kRequests = 6;
  Collector collector(kRequests);
  for (std::uint32_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(service
                    .submit(range_request(tags_[0], core::FrameRange{i, i + 2, 1}),
                            collector.callback())
                    .is_ok());
  }
  collector.wait();
  for (const auto& result : collector.take()) {
    ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  }
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.completed, kRequests);
  ASSERT_EQ(stats.tenants.count("default"), 1u);
  EXPECT_EQ(stats.tenants.at("default").inflight_peak, 1u)
      << "max_inflight=1 must serialize the tenant even with idle workers";
}

// DRR fairness: a hot tenant with a deep backlog cannot starve a cold
// tenant's single request -- the cold request completes second, not last,
// and the scheduler actually ran deficit-recredit rounds (the quanta are
// far below one response, so every completion exhausts the tenant's share).
TEST_F(ServeTest, DrrSchedulingDoesNotStarveTheColdTenant) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/8 << 20);
  ServeConfig config;
  config.workers = 1;        // sequential completions: the order IS the schedule
  config.start_paused = true;  // pre-load both queues, then release
  TenantQuota quota;
  quota.max_inflight = 0;
  quota.queue_capacity = 0;
  quota.io_quantum_bytes = 1024;
  config.tenant_quotas["hot"] = quota;
  config.tenant_quotas["cold"] = quota;
  AdaService service(*ada, config);

  constexpr std::size_t kHotBacklog = 6;
  std::mutex order_mu;
  std::vector<std::string> order;
  Collector collector(kHotBacklog + 1);
  const auto tagged = [&](const std::string& who) {
    auto inner = collector.callback();
    return [&order_mu, &order, who, inner](Result<Response> result) {
      {
        const std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(who);
      }
      inner(std::move(result));
    };
  };
  for (std::size_t i = 0; i < kHotBacklog; ++i) {
    ASSERT_TRUE(service.submit(subset_request(tags_[0], "hot"), tagged("hot")).is_ok());
  }
  ASSERT_TRUE(service.submit(subset_request(tags_[0], "cold"), tagged("cold")).is_ok());

  service.resume();
  collector.wait();
  for (const auto& result : collector.take()) {
    ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  }

  const auto cold_pos = std::find(order.begin(), order.end(), "cold") - order.begin();
  EXPECT_LE(cold_pos, 1) << "the cold tenant's only request sat behind the hot backlog";
  EXPECT_GE(service.stats().drr_rounds, 1u) << "the deficit scheduler never cycled";
}

// --- tail/degraded ride the same lanes -----------------------------------------------

TEST_F(ServeTest, TailAndDegradedFlowThroughTheService) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/8 << 20);
  ServeConfig config;
  config.workers = 2;
  AdaService service(*ada, config);

  Request tail = subset_request(tags_[0]);
  tail.kind = RequestKind::kTail;
  tail.from_frame = 0;
  const auto tail_result = service.execute(tail);
  ASSERT_TRUE(tail_result.is_ok()) << tail_result.error().to_string();
  EXPECT_TRUE(tail_result.value().sealed);
  EXPECT_EQ(tail_result.value().from_frame, 0u);
  EXPECT_EQ(tail_result.value().frames, kFrames);
  const auto sliced = serial_->query("traj.xtc", tags_[0], core::FrameRange{0, kFrames, 1});
  ASSERT_TRUE(sliced.is_ok());
  EXPECT_EQ(*tail_result.value().image, sliced.value());

  Request degraded;
  degraded.logical_name = "traj.xtc";
  degraded.kind = RequestKind::kDegraded;
  const auto degraded_result = service.execute(degraded);
  ASSERT_TRUE(degraded_result.is_ok()) << degraded_result.error().to_string();
  EXPECT_TRUE(degraded_result.value().failed_tags.empty());
  std::vector<std::uint8_t> expected;
  for (const auto& [tag, image] : reference_) {
    expected.insert(expected.end(), image.begin(), image.end());
  }
  EXPECT_EQ(*degraded_result.value().image, expected);

  // Both rode the admission lanes: two fills, nothing coalesced.
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.fills, 2u);
  EXPECT_EQ(stats.coalesced, 0u);
}

TEST_F(ServeTest, StopFailsQueuedRequestsWithUnavailable) {
  auto ada = open_ada(0, 4, /*cache_bytes=*/0);
  ServeConfig config;
  config.workers = 2;
  config.start_paused = true;  // queued work never dispatches
  AdaService service(*ada, config);

  Collector collector(2);
  ASSERT_TRUE(service.submit(subset_request(tags_[0]), collector.callback()).is_ok());
  ASSERT_TRUE(service.submit(subset_request(tags_[1]), collector.callback()).is_ok());
  service.stop();
  collector.wait();
  for (const auto& result : collector.take()) {
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.error().code(), ErrorCode::kUnavailable);
  }
  const Status late = service.submit(subset_request(tags_[0]), [](Result<Response>) {});
  ASSERT_FALSE(late.is_ok());
  EXPECT_EQ(late.error().code(), ErrorCode::kUnavailable);
}

// --- stress: the TSan battery --------------------------------------------------------

// Many tenants, many client threads, every request kind, the parallel
// retriever and the cache armed: the lock-order and lifetime battery meant
// to run under -DADA_SANITIZE=thread.
TEST_F(ServeTest, StressManyTenantsMixedKinds) {
  auto ada = open_ada(/*read_threads=*/2, 4, /*cache_bytes=*/4 << 20);
  ServeConfig config;
  config.workers = 4;
  config.default_quota.max_inflight = 4;
  config.default_quota.queue_capacity = 0;
  AdaService service(*ada, config);

  constexpr int kThreads = 6;
  constexpr int kIterations = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = "viz" + std::to_string(t % 3);
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t tag_index = static_cast<std::size_t>(i) % tags_.size();
        Result<Response> result = internal_error("unset");
        switch (i % 3) {
          case 0: {
            result = service.execute(subset_request(tags_[tag_index], tenant));
            if (result.is_ok() && *result.value().image != reference_.at(tags_[tag_index])) {
              failures.fetch_add(1);
            }
            break;
          }
          case 1: {
            const std::uint32_t begin = static_cast<std::uint32_t>(i) % (kFrames - 2);
            result = service.execute(
                range_request(tags_[0], core::FrameRange{begin, begin + 2, 1}, tenant));
            break;
          }
          default: {
            Request tail = subset_request(tags_[0], tenant);
            tail.kind = RequestKind::kTail;
            tail.from_frame = static_cast<std::uint64_t>(i) % kFrames;
            result = service.execute(tail);
            break;
          }
        }
        if (!result.is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(ada->query_cache()->stats().duplicate_fills, 0u);
}

// --- spool IPC -----------------------------------------------------------------------

TEST(SpoolProtocolTest, EncodeParseRoundTripsEveryField) {
  Request request;
  request.tenant = "viz7";
  request.logical_name = "bar.xtc";
  request.tag = "p";
  request.kind = RequestKind::kRange;
  request.range = core::FrameRange{3, 12, 2};
  request.from_frame = 5;
  const auto parsed = parse_spool_request(encode_spool_request(request));
  ASSERT_TRUE(parsed.is_ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().tenant, "viz7");
  EXPECT_EQ(parsed.value().logical_name, "bar.xtc");
  EXPECT_EQ(parsed.value().tag, "p");
  EXPECT_EQ(parsed.value().kind, RequestKind::kRange);
  EXPECT_EQ(parsed.value().range.begin, 3u);
  EXPECT_EQ(parsed.value().range.end, 12u);
  EXPECT_EQ(parsed.value().range.stride, 2u);
  EXPECT_EQ(parsed.value().from_frame, 5u);
}

TEST(SpoolProtocolTest, RejectsMalformedRequestsTyped) {
  const auto torn = parse_spool_request("this line has no separator\n");
  ASSERT_FALSE(torn.is_ok());
  EXPECT_EQ(torn.error().code(), ErrorCode::kCorruptData);

  const auto bad_kind = parse_spool_request("name=bar.xtc\nkind=bogus\n");
  ASSERT_FALSE(bad_kind.is_ok());
  EXPECT_EQ(bad_kind.error().code(), ErrorCode::kInvalidArgument);

  const auto nameless = parse_spool_request("tag=p\nkind=subset\n");
  ASSERT_FALSE(nameless.is_ok());
  EXPECT_EQ(nameless.error().code(), ErrorCode::kInvalidArgument);
}

TEST_F(ServeTest, SpoolRoundTripServesBytesIdenticalToDirectQuery) {
  const std::string spool = root_ + "/spool";
  fs::create_directories(spool);
  auto ada = open_ada(0, 4, /*cache_bytes=*/8 << 20);
  ServeConfig config;
  config.workers = 2;
  AdaService service(*ada, config);
  SpoolServer server(service, spool);

  std::optional<Result<SpoolReply>> reply;
  std::atomic<bool> done{false};
  std::thread client([&] {
    SpoolClient spool_client(spool);
    reply = spool_client.call(subset_request(tags_[0]), /*timeout_s=*/20.0, /*poll_s=*/0.005);
    done.store(true);
  });
  while (!done.load()) {
    server.poll_once();
    std::this_thread::sleep_for(2ms);
  }
  client.join();

  ASSERT_TRUE(reply.has_value());
  ASSERT_TRUE(reply->is_ok()) << reply->error().to_string();
  EXPECT_EQ(reply->value().payload, reference_.at(tags_[0]));
  EXPECT_FALSE(reply->value().coalesced);
}

TEST_F(ServeTest, SpoolPropagatesTypedOverloadToTheClient) {
  const std::string spool = root_ + "/spool";
  fs::create_directories(spool);
  auto ada = open_ada(0, 4, /*cache_bytes=*/0);
  ServeConfig config;
  config.workers = 2;
  config.start_paused = true;
  config.default_quota.queue_capacity = 1;
  AdaService service(*ada, config);
  SpoolServer server(service, spool);

  std::optional<Result<SpoolReply>> replies[2];
  std::atomic<int> finished{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&, i] {
      SpoolClient spool_client(spool);
      replies[i] = spool_client.call(subset_request(tags_[0]), /*timeout_s=*/20.0,
                                     /*poll_s=*/0.005);
      finished.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(200ms);  // both .req files are on disk
  server.poll_once();                  // claims both: one queues, one sheds typed
  service.resume();
  while (finished.load() != 2) {
    server.poll_once();
    std::this_thread::sleep_for(2ms);
  }
  for (std::thread& client : clients) client.join();

  int ok = 0, overloaded = 0;
  for (const auto& reply : replies) {
    ASSERT_TRUE(reply.has_value());
    if (reply->is_ok()) {
      ++ok;
      EXPECT_EQ(reply->value().payload, reference_.at(tags_[0]));
    } else if (reply->error().code() == ErrorCode::kOverloaded) {
      ++overloaded;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(overloaded, 1) << "the shed request must reach the client as kOverloaded";
}

}  // namespace
}  // namespace ada::serve
