// Tests for the observability substrate (src/obs): registry semantics,
// histogram math, span nesting, exporter goldens, and a multi-threaded
// stress run over parallel_run proving no increments are lost.
//
// obs state is process-global; every test brackets itself with
// reset_all()/set_enabled() so the suite also passes when the whole binary
// runs in one process (plain `./obs_test` as well as per-test ctest).
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <vector>

#include "common/parallel.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ada::obs {
namespace {

class ObsTest : public testing::Test {
 protected:
  void SetUp() override {
    reset_all();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset_all();
  }
};

const SpanStat* find_span(const std::vector<SpanStat>& stats, const std::string& path) {
  for (const auto& stat : stats) {
    if (stat.path == path) return &stat;
  }
  return nullptr;
}

// --- registry semantics ---------------------------------------------------------------

TEST_F(ObsTest, LookupIsIdempotent) {
  Registry& registry = Registry::global();
  Counter& a = registry.counter("obs_test.idem");
  Counter& b = registry.counter("obs_test.idem");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&registry.gauge("obs_test.idem_g"), &registry.gauge("obs_test.idem_g"));
  EXPECT_EQ(&registry.histogram("obs_test.idem_h"), &registry.histogram("obs_test.idem_h"));
  // Same name in different instrument families are distinct objects.
  a.add(3);
  EXPECT_EQ(registry.counter_value("obs_test.idem"), 3u);
  EXPECT_EQ(registry.gauge_value("obs_test.idem_g"), 0.0);
}

TEST_F(ObsTest, ResetZeroesButKeepsReferencesValid) {
  Registry& registry = Registry::global();
  Counter& counter = registry.counter("obs_test.reset");
  counter.add(7);
  EXPECT_EQ(counter.value(), 7u);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  counter.add(2);  // the cached reference still feeds the same instrument
  EXPECT_EQ(registry.counter_value("obs_test.reset"), 2u);
}

TEST_F(ObsTest, UnknownInstrumentReadsAsZero) {
  EXPECT_EQ(Registry::global().counter_value("obs_test.never_created"), 0u);
  EXPECT_EQ(Registry::global().gauge_value("obs_test.never_created"), 0.0);
}

TEST_F(ObsTest, DisabledInstrumentsIgnoreWrites) {
  Registry& registry = Registry::global();
  Counter& counter = registry.counter("obs_test.gate");
  Gauge& gauge = registry.gauge("obs_test.gate_g");
  Histogram& histogram = registry.histogram("obs_test.gate_h");
  set_enabled(false);
  counter.add(5);
  gauge.set(1.5);
  histogram.observe(42);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  set_enabled(true);
  counter.add(5);
  EXPECT_EQ(counter.value(), 5u);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge& gauge = Registry::global().gauge("obs_test.gauge");
  gauge.set(10.0);
  gauge.add(-2.5);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 8.0);
}

// --- histogram math -------------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds zeros; bucket b >= 1 covers [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 20), 21u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST_F(ObsTest, HistogramCountSumMaxMean) {
  Histogram& h = Registry::global().histogram("obs_test.hist");
  for (std::uint64_t v = 1; v <= 8; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 36u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  EXPECT_EQ(h.bucket_count(1), 1u);  // {1}
  EXPECT_EQ(h.bucket_count(2), 2u);  // {2,3}
  EXPECT_EQ(h.bucket_count(3), 4u);  // {4..7}
  EXPECT_EQ(h.bucket_count(4), 1u);  // {8}
}

TEST_F(ObsTest, HistogramPercentiles) {
  Histogram& empty = Registry::global().histogram("obs_test.hist_empty");
  EXPECT_EQ(empty.percentile(0.5), 0.0);

  Histogram& zeros = Registry::global().histogram("obs_test.hist_zeros");
  for (int i = 0; i < 5; ++i) zeros.observe(0);
  EXPECT_EQ(zeros.percentile(0.99), 0.0);

  Histogram& h = Registry::global().histogram("obs_test.hist_pct");
  for (std::uint64_t v = 1; v <= 8; ++v) h.observe(v);
  // rank 4 falls at the start of bucket [4,7]: interpolation lands on 4.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 4.0);
  // rank 8 is the lone observation in bucket [8,15], clamped by max() = 8.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
  // Quantiles are monotone in q and bounded by the observed max.
  double prev = 0.0;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    EXPECT_LE(p, static_cast<double>(h.max())) << "q=" << q;
    prev = p;
  }
}

// The documented accuracy contract (metrics.hpp): interpolation never leaves
// the matched bucket's value range, so edges degrade gracefully and the
// relative error is bounded by the bucket width (a factor of two).
TEST_F(ObsTest, HistogramPercentileAccuracyAtBucketEdges) {
  // An all-identical stream at a lower bucket edge (64 opens bucket [64,127])
  // reports every quantile exactly at that value: the max() clamp collapses
  // the interpolation range [64, 127] down to [64, 64].
  Histogram& edge = Registry::global().histogram("obs_test.hist_edge");
  for (int i = 0; i < 1000; ++i) edge.observe(64);
  for (const double q : {0.01, 0.5, 0.9, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(edge.percentile(q), 64.0) << "q=" << q;
  }

  // A stream at an upper bucket edge (127 closes bucket [64,127]) stays in
  // range too: quantiles land in [64, 127] -- within a factor of two of the
  // true value, never above the observed max.
  Histogram& upper = Registry::global().histogram("obs_test.hist_upper");
  for (int i = 0; i < 1000; ++i) upper.observe(127);
  for (const double q : {0.01, 0.5, 0.999, 1.0}) {
    const double p = upper.percentile(q);
    EXPECT_GE(p, 64.0) << "q=" << q;
    EXPECT_LE(p, 127.0) << "q=" << q;
    EXPECT_GE(p, 127.0 / 2.0) << "factor-of-two bound violated at q=" << q;
  }

  // Mixed distribution: every quantile stays inside its matched bucket's
  // range, so values between the clusters are never invented far off.
  Histogram& mixed = Registry::global().histogram("obs_test.hist_mixed");
  for (int i = 0; i < 50; ++i) mixed.observe(10);    // bucket [8, 15]
  for (int i = 0; i < 50; ++i) mixed.observe(1000);  // bucket [512, 1023]
  const double p25 = mixed.percentile(0.25);
  EXPECT_GE(p25, 8.0);
  EXPECT_LE(p25, 15.0);
  const double p75 = mixed.percentile(0.75);
  EXPECT_GE(p75, 512.0);
  EXPECT_LE(p75, 1000.0);  // max clamp beats the raw bucket top of 1023
}

// percentile_from_buckets is the same interpolation over an explicit bucket
// array -- the telemetry sampler feeds it windowed (diffed) buckets.
TEST_F(ObsTest, PercentileFromBucketsMatchesHistogramContract) {
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  EXPECT_EQ(percentile_from_buckets(buckets, 0, 0.5, 0), 0.0);  // empty window

  // 10 zeros: bucket 0 is exact.
  buckets[0] = 10;
  EXPECT_EQ(percentile_from_buckets(buckets, 10, 0.99, 0), 0.0);

  // Add 90 observations of value 1 (bucket 1 covers [1, 1]).
  buckets[1] = 90;
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 100, 0.5, 1), 1.0);

  // A window whose counts sit in bucket [1024, 2047] but whose stream max
  // is 1500 clamps to the max, honoring the "never past max" clause.
  std::array<std::uint64_t, Histogram::kBuckets> high{};
  high[Histogram::bucket_of(1500)] = 10;
  const double p99 = percentile_from_buckets(high, 10, 0.99, 1500);
  EXPECT_GE(p99, 1024.0);
  EXPECT_LE(p99, 1500.0);

  // Monotone in q over the explicit array, as for the live histogram.
  double prev = 0.0;
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double p = percentile_from_buckets(buckets, 100, q, 1);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
}

// --- macros ---------------------------------------------------------------------------

TEST_F(ObsTest, HotPathMacrosRecordWhenEnabled) {
  ADA_OBS_COUNT("obs_test.macro", 2);
  ADA_OBS_COUNT("obs_test.macro", 3);
  ADA_OBS_OBSERVE("obs_test.macro_h", 16);
  EXPECT_EQ(Registry::global().counter_value("obs_test.macro"), 5u);
  EXPECT_EQ(Registry::global().histogram("obs_test.macro_h").count(), 1u);
  set_enabled(false);
  ADA_OBS_COUNT("obs_test.macro", 100);
  EXPECT_EQ(Registry::global().counter_value("obs_test.macro"), 5u);
}

// --- span nesting ---------------------------------------------------------------------

TEST_F(ObsTest, SpansNestIntoPerThreadTree) {
  {
    const ScopedTimer outer("obs_outer");
    { const ScopedTimer inner("obs_inner"); }
    { const ScopedTimer inner("obs_inner"); }
  }
  { const ScopedTimer outer("obs_outer"); }

  const auto stats = span_stats();
  const SpanStat* outer = find_span(stats, "obs_outer");
  const SpanStat* inner = find_span(stats, "obs_outer/obs_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->calls, 2u);
  EXPECT_EQ(inner->calls, 2u);
  EXPECT_EQ(inner->name, "obs_inner");
  // A child's time is contained in the parent's; self excludes children.
  EXPECT_LE(inner->total_ns, outer->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  // Depth-first order: the parent precedes its child.
  EXPECT_LT(outer - stats.data(), inner - stats.data());
  // The sibling opened at top level is its own root span.
  EXPECT_EQ(find_span(stats, "obs_inner"), nullptr);
}

TEST_F(ObsTest, SpansDisabledRecordNothing) {
  set_enabled(false);
  { const ScopedTimer span("obs_gated"); }
  set_enabled(true);
  EXPECT_EQ(find_span(span_stats(), "obs_gated"), nullptr);
}

// --- exporter goldens -----------------------------------------------------------------

Snapshot golden_snapshot() {
  Snapshot snapshot;
  snapshot.counters["ingest.bytes_in"] = 1024;
  snapshot.counters["ingest.calls"] = 2;
  snapshot.gauges["queue.depth"] = 1.5;
  Snapshot::HistogramStat h;
  h.count = 3;
  h.sum = 12;
  h.max = 8;
  h.mean = 4.0;
  h.p50 = 2.0;
  h.p90 = 6.5;
  h.p99 = 8.0;
  snapshot.histograms["codec.atoms"] = h;
  SpanStat root;
  root.path = "ingest";
  root.name = "ingest";
  root.depth = 0;
  root.calls = 2;
  root.total_ns = 300;
  root.self_ns = 100;
  SpanStat child;
  child.path = "ingest/decode";
  child.name = "decode";
  child.depth = 1;
  child.calls = 2;
  child.total_ns = 200;
  child.self_ns = 200;
  snapshot.spans = {root, child};
  return snapshot;
}

TEST_F(ObsTest, JsonExportGolden) {
  EXPECT_EQ(
      to_json(golden_snapshot()),
      "{\"version\":1,"
      "\"counters\":{\"ingest.bytes_in\":1024,\"ingest.calls\":2},"
      "\"gauges\":{\"queue.depth\":1.5},"
      "\"histograms\":{\"codec.atoms\":{\"count\":3,\"sum\":12,\"max\":8,"
      "\"mean\":4,\"p50\":2,\"p90\":6.5,\"p99\":8}},"
      "\"spans\":[{\"path\":\"ingest\",\"depth\":0,\"calls\":2,"
      "\"total_ns\":300,\"self_ns\":100},"
      "{\"path\":\"ingest/decode\",\"depth\":1,\"calls\":2,"
      "\"total_ns\":200,\"self_ns\":200}]}");
}

TEST_F(ObsTest, JsonEscapesControlAndQuoteCharacters) {
  Snapshot snapshot;
  snapshot.counters["we\"ird\\name\n"] = 1;
  EXPECT_EQ(to_json(snapshot),
            "{\"version\":1,\"counters\":{\"we\\\"ird\\\\name\\n\":1},"
            "\"gauges\":{},\"histograms\":{},\"spans\":[]}");
}

TEST_F(ObsTest, EmptySnapshotExportsAsEmptyDocument) {
  const Snapshot snapshot;
  EXPECT_TRUE(snapshot.empty());
  EXPECT_EQ(to_json(snapshot),
            "{\"version\":1,\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":[]}");
  std::ostringstream os;
  print_tables(snapshot, os);
  EXPECT_EQ(os.str(), "");  // nothing to print, no headers either
}

TEST_F(ObsTest, TableExportGolden) {
  std::ostringstream os;
  print_tables(golden_snapshot(), os);
  const std::string text = os.str();
  // Section order and content; exact column widths are Table's business.
  const auto counters_at = text.find("-- counters --");
  const auto histograms_at = text.find("-- histograms --");
  const auto spans_at = text.find("-- spans --");
  ASSERT_NE(counters_at, std::string::npos);
  ASSERT_NE(histograms_at, std::string::npos);
  ASSERT_NE(spans_at, std::string::npos);
  EXPECT_LT(counters_at, histograms_at);
  EXPECT_LT(histograms_at, spans_at);
  EXPECT_NE(text.find("ingest.bytes_in"), std::string::npos);
  EXPECT_NE(text.find("queue.depth (gauge)"), std::string::npos);
  EXPECT_NE(text.find("codec.atoms"), std::string::npos);
  // The child span is indented two spaces under its parent.
  EXPECT_NE(text.find("\n  decode"), std::string::npos);
}

TEST_F(ObsTest, CaptureRoundTripsRegistryValues) {
  Registry::global().counter("obs_test.cap").add(11);
  Registry::global().gauge("obs_test.cap_g").set(2.5);
  Registry::global().histogram("obs_test.cap_h").observe(4);
  const Snapshot snapshot = capture();
  EXPECT_EQ(snapshot.counters.at("obs_test.cap"), 11u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("obs_test.cap_g"), 2.5);
  EXPECT_EQ(snapshot.histograms.at("obs_test.cap_h").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("obs_test.cap_h").max, 4u);
}

// --- multi-threaded stress ------------------------------------------------------------

TEST_F(ObsTest, ParallelRunLosesNoIncrements) {
  constexpr int kTasks = 64;
  constexpr int kIters = 5000;
  Counter& counter = Registry::global().counter("obs_test.stress");
  Histogram& histogram = Registry::global().histogram("obs_test.stress_h");

  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    tasks.push_back([&counter, &histogram, t] {
      for (int i = 0; i < kIters; ++i) {
        const ScopedTimer span("obs_stress");
        counter.add(1);
        histogram.observe(static_cast<std::uint64_t>(i));
        // Exercise the concurrent-merge path: snapshots taken while other
        // threads are mid-record must be race-free.
        if (i % 1024 == t) {
          const Snapshot snapshot = capture();
          (void)snapshot;
        }
      }
    });
  }
  parallel_run(std::move(tasks), 8);

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kTasks) * kIters);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kTasks) * kIters);
  EXPECT_EQ(histogram.max(), static_cast<std::uint64_t>(kIters) - 1);
  const auto stats = span_stats();
  const SpanStat* span = find_span(stats, "obs_stress");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->calls, static_cast<std::uint64_t>(kTasks) * kIters);
}

}  // namespace
}  // namespace ada::obs
