// Tests for the TRR trajectory format and the concatenated-RAW reader.
#include <gtest/gtest.h>

#include "formats/raw_traj.hpp"
#include "formats/trr_file.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::formats {
namespace {

chem::System tiny_system() {
  return workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
}

TrrFrame make_frame(const chem::System& system, std::uint32_t step, bool velocities,
                    bool forces) {
  TrrFrame frame;
  frame.step = step;
  frame.time_ps = static_cast<float>(step) * 0.002f;
  frame.lambda = 0.25f;
  frame.box = system.box();
  frame.coords = system.reference_coords();
  if (velocities) {
    frame.velocities.emplace(frame.coords.size(), 0.5f);
  }
  if (forces) {
    frame.forces.emplace(frame.coords.size(), -1.5f);
  }
  return frame;
}

TEST(TrrTest, CoordsOnlyRoundTrip) {
  const auto system = tiny_system();
  TrrWriter writer;
  for (std::uint32_t f = 0; f < 4; ++f) {
    ASSERT_TRUE(writer.add_frame(make_frame(system, f * 1000, false, false)).is_ok());
  }
  EXPECT_EQ(writer.frame_count(), 4u);
  const auto frames = read_all_trr(writer.bytes()).value();
  ASSERT_EQ(frames.size(), 4u);
  for (std::uint32_t f = 0; f < 4; ++f) {
    EXPECT_EQ(frames[f].step, f * 1000);
    EXPECT_FLOAT_EQ(frames[f].lambda, 0.25f);
    EXPECT_EQ(frames[f].box, system.box());
    EXPECT_EQ(frames[f].coords, system.reference_coords());  // TRR is lossless
    EXPECT_FALSE(frames[f].velocities.has_value());
    EXPECT_FALSE(frames[f].forces.has_value());
  }
}

TEST(TrrTest, VelocityAndForceBlocks) {
  const auto system = tiny_system();
  TrrWriter writer;
  ASSERT_TRUE(writer.add_frame(make_frame(system, 7, true, true)).is_ok());
  const auto frames = read_all_trr(writer.bytes()).value();
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(frames[0].velocities.has_value());
  ASSERT_TRUE(frames[0].forces.has_value());
  EXPECT_FLOAT_EQ(frames[0].velocities->at(0), 0.5f);
  EXPECT_FLOAT_EQ(frames[0].forces->at(0), -1.5f);
}

TEST(TrrTest, MismatchedBlockSizesRejectedOnWrite) {
  TrrFrame frame;
  frame.coords = {1, 2, 3};
  frame.velocities.emplace(6, 0.0f);  // 2 atoms worth for a 1-atom frame
  TrrWriter writer;
  EXPECT_FALSE(writer.add_frame(frame).is_ok());
}

TEST(TrrTest, BadMagicRejected) {
  const auto system = tiny_system();
  TrrWriter writer;
  ASSERT_TRUE(writer.add_frame(make_frame(system, 0, false, false)).is_ok());
  auto bytes = writer.take();
  bytes[3] = 0x42;
  EXPECT_FALSE(read_all_trr(bytes).is_ok());
}

TEST(TrrTest, BadVersionStringRejected) {
  const auto system = tiny_system();
  TrrWriter writer;
  ASSERT_TRUE(writer.add_frame(make_frame(system, 0, false, false)).is_ok());
  auto bytes = writer.take();
  bytes[9] = 'X';  // inside "GMX_trn_file"
  EXPECT_FALSE(read_all_trr(bytes).is_ok());
}

TEST(TrrTest, TruncationRejected) {
  const auto system = tiny_system();
  TrrWriter writer;
  ASSERT_TRUE(writer.add_frame(make_frame(system, 0, false, false)).is_ok());
  const auto& bytes = writer.bytes();
  EXPECT_FALSE(read_all_trr(std::span(bytes).subspan(0, bytes.size() - 5)).is_ok());
}

TEST(TrrTest, SniffingDetectsFormat) {
  const auto system = tiny_system();
  TrrWriter writer;
  ASSERT_TRUE(writer.add_frame(make_frame(system, 0, false, false)).is_ok());
  EXPECT_TRUE(looks_like_trr(writer.bytes()));
  const std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_FALSE(looks_like_trr(junk));
  EXPECT_FALSE(looks_like_trr({}));
}

TEST(TrrTest, ToTrajFrameDropsExtras) {
  const auto system = tiny_system();
  const TrrFrame frame = make_frame(system, 42, true, true);
  const TrajFrame traj = frame.to_traj_frame();
  EXPECT_EQ(traj.step, 42u);
  EXPECT_EQ(traj.coords, frame.coords);
}

TEST(TrrTest, EmptyStreamYieldsNoFrames) {
  EXPECT_TRUE(read_all_trr({}).value().empty());
}

// --- concatenated RAW reader --------------------------------------------------------

std::vector<std::uint8_t> raw_segment(const chem::System& system, std::uint32_t first_step,
                                      std::uint32_t frames) {
  RawTrajWriter writer(system.atom_count());
  for (std::uint32_t f = 0; f < frames; ++f) {
    std::vector<float> coords = system.reference_coords();
    coords[0] += static_cast<float>(first_step + f);  // marker
    ADA_CHECK(writer.add_frame(first_step + f, 0.0f, system.box(), coords).is_ok());
  }
  return writer.finish();
}

TEST(RawCatTest, SingleSegmentBehavesLikePlainReader) {
  const auto system = tiny_system();
  const auto image = raw_segment(system, 0, 5);
  const auto cat = RawTrajCatReader::open(image).value();
  EXPECT_EQ(cat.segment_count(), 1u);
  EXPECT_EQ(cat.frame_count(), 5u);
  EXPECT_EQ(cat.frame(3).value().step, 3u);
}

TEST(RawCatTest, MultiSegmentLogicalOrder) {
  const auto system = tiny_system();
  std::vector<std::uint8_t> image = raw_segment(system, 0, 3);
  const auto seg2 = raw_segment(system, 3, 4);
  const auto seg3 = raw_segment(system, 7, 2);
  image.insert(image.end(), seg2.begin(), seg2.end());
  image.insert(image.end(), seg3.begin(), seg3.end());

  const auto cat = RawTrajCatReader::open(image).value();
  EXPECT_EQ(cat.segment_count(), 3u);
  EXPECT_EQ(cat.frame_count(), 9u);
  for (std::uint32_t f = 0; f < 9; ++f) {
    EXPECT_EQ(cat.frame(f).value().step, f) << "frame " << f;
  }
  // read_all preserves order too.
  const auto all = cat.read_all().value();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all[8].step, 8u);
  EXPECT_FALSE(cat.frame(9).is_ok());
}

TEST(RawCatTest, MismatchedAtomCountsRejected) {
  const auto a = tiny_system();
  workload::GpcrSpec other_spec = workload::GpcrSpec::tiny();
  other_spec.total_atoms = 2179;  // 1 extra water's worth, still whole molecules
  other_spec.protein_atoms = 925;
  const auto b = workload::GpcrSystemBuilder(other_spec).build();
  auto image = raw_segment(a, 0, 1);
  const auto seg2 = raw_segment(b, 1, 1);
  image.insert(image.end(), seg2.begin(), seg2.end());
  EXPECT_FALSE(RawTrajCatReader::open(image).is_ok());
}

TEST(RawCatTest, GarbageBetweenSegmentsRejected) {
  const auto system = tiny_system();
  auto image = raw_segment(system, 0, 2);
  image.push_back(0xff);
  EXPECT_FALSE(RawTrajCatReader::open(image).is_ok());
}

TEST(RawCatTest, TruncatedSecondSegmentRejected) {
  const auto system = tiny_system();
  auto image = raw_segment(system, 0, 2);
  const auto seg2 = raw_segment(system, 2, 2);
  image.insert(image.end(), seg2.begin(), seg2.end() - 10);
  EXPECT_FALSE(RawTrajCatReader::open(image).is_ok());
}

TEST(RawCatTest, EmptyImageIsEmptyTrajectory) {
  const auto cat = RawTrajCatReader::open({}).value();
  EXPECT_EQ(cat.frame_count(), 0u);
  EXPECT_EQ(cat.segment_count(), 0u);
}

}  // namespace
}  // namespace ada::formats
