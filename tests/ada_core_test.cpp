// Tests for the ADA core: Algorithm 1 categorizer, label files, the schema
// config, the pre-processor split, dispatch policy, and the middleware
// ingest/query round trip.
#include <gtest/gtest.h>

#include <filesystem>

#include "ada/categorizer.hpp"
#include "ada/label_store.hpp"
#include "ada/middleware.hpp"
#include "ada/preprocessor.hpp"
#include "ada/schema_config.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::core {
namespace {

namespace fs = std::filesystem;

chem::System tiny_system() {
  return workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
}

// --- Algorithm 1 (categorizer) -------------------------------------------------------

TEST(CategorizerTest, ProteinMiscPartition) {
  const auto system = tiny_system();
  const LabelMap labels = categorize_protein_misc(system);
  EXPECT_EQ(labels.atom_count, system.atom_count());
  EXPECT_TRUE(labels.is_partition());
  EXPECT_EQ(labels.tag_atoms(kProteinTag), system.count_category(chem::Category::kProtein));
  EXPECT_EQ(labels.tag_atoms(kMiscTag),
            system.atom_count() - system.count_category(chem::Category::kProtein));
}

TEST(CategorizerTest, RunLengthConstructionMatchesBruteForce) {
  const auto system = tiny_system();
  const LabelMap labels = categorize_fine_grained(system);
  EXPECT_TRUE(labels.is_partition());
  // Brute force: check every atom lands in the right tag's selection.
  for (std::uint32_t i = 0; i < system.atom_count(); ++i) {
    const Tag tag(1, chem::category_tag(system.category(i)));
    EXPECT_TRUE(labels.groups.at(tag).contains(i)) << "atom " << i;
  }
}

TEST(CategorizerTest, ContiguousGroupsYieldSingleRuns) {
  const auto system = tiny_system();
  const LabelMap labels = categorize_protein_misc(system);
  // Canonical ordering: protein first -> exactly one run per tag.
  EXPECT_EQ(labels.groups.at(kProteinTag).runs().size(), 1u);
  EXPECT_EQ(labels.groups.at(kMiscTag).runs().size(), 1u);
}

TEST(CategorizerTest, InterleavedTagsProduceMultipleRuns) {
  // A hand-built system alternating protein and water residues.
  chem::System system;
  for (int i = 0; i < 10; ++i) {
    chem::Atom atom;
    atom.serial = static_cast<std::uint32_t>(i) + 1;
    atom.name = "X";
    atom.residue_name = (i % 2 == 0) ? "ALA" : "SOL";
    atom.residue_seq = static_cast<std::uint32_t>(i) + 1;
    system.add_atom(atom, 0, 0, 0);
  }
  const LabelMap labels = categorize_protein_misc(system);
  EXPECT_EQ(labels.groups.at(kProteinTag).runs().size(), 5u);
  EXPECT_EQ(labels.groups.at(kMiscTag).runs().size(), 5u);
  EXPECT_TRUE(labels.is_partition());
}

TEST(CategorizerTest, EmptySystem) {
  const chem::System system;
  const LabelMap labels = categorize_protein_misc(system);
  EXPECT_EQ(labels.atom_count, 0u);
  EXPECT_TRUE(labels.groups.empty());
  EXPECT_TRUE(labels.is_partition());
}

TEST(CategorizerTest, SelectionLookup) {
  const auto labels = categorize_protein_misc(tiny_system());
  EXPECT_TRUE(labels.selection(kProteinTag).is_ok());
  EXPECT_FALSE(labels.selection("zzz").is_ok());
}

// --- label store -----------------------------------------------------------------------

TEST(LabelStoreTest, EncodeDecodeRoundTrip) {
  const auto labels = categorize_fine_grained(tiny_system());
  const std::string text = encode_label_file(labels);
  const auto decoded = decode_label_file(text).value();
  EXPECT_EQ(decoded, labels);
}

TEST(LabelStoreTest, HumanReadableFormat) {
  const auto labels = categorize_protein_misc(tiny_system());
  const std::string text = encode_label_file(labels);
  EXPECT_NE(text.find("# ada label file v1"), std::string::npos);
  EXPECT_NE(text.find("atoms 2176"), std::string::npos);
  EXPECT_NE(text.find("p 0-924"), std::string::npos);
}

TEST(LabelStoreTest, RejectsMissingHeader) {
  EXPECT_FALSE(decode_label_file("atoms 5\np 0-4\n").is_ok());
}

TEST(LabelStoreTest, RejectsDuplicateTags) {
  EXPECT_FALSE(decode_label_file("# ada label file v1\natoms 4\np 0-1\np 2-3\n").is_ok());
}

TEST(LabelStoreTest, RejectsMalformedRanges) {
  EXPECT_FALSE(decode_label_file("# ada label file v1\natoms 4\np zz\n").is_ok());
}

// --- schema config (Section 6 future work) ------------------------------------------------

TEST(SchemaTest, CategoryRules) {
  const auto schema = CategorizerSchema::parse(
      "# demo\n"
      "tag p category protein\n"
      "tag w category water\n"
      "default m\n")
                          .value();
  EXPECT_EQ(schema.rule_count(), 2u);
  const auto labels = schema.categorize(tiny_system());
  EXPECT_TRUE(labels.is_partition());
  EXPECT_EQ(labels.tag_atoms("p"), tiny_system().count_category(chem::Category::kProtein));
  EXPECT_EQ(labels.tag_atoms("w"), tiny_system().count_category(chem::Category::kWater));
  EXPECT_GT(labels.tag_atoms("m"), 0u);  // lipids + ions fall through
}

TEST(SchemaTest, ResidueRulesWinByOrder) {
  const auto schema = CategorizerSchema::parse(
      "tag special residues POPC\n"
      "tag rest category lipid\n"
      "default o\n")
                          .value();
  const auto labels = schema.categorize(tiny_system());
  // All POPC atoms matched the first rule; the category rule got nothing.
  EXPECT_EQ(labels.tag_atoms("special"),
            tiny_system().count_category(chem::Category::kLipid));
  EXPECT_EQ(labels.tag_atoms("rest"), 0u);
}

TEST(SchemaTest, AtomNameRules) {
  const auto schema = CategorizerSchema::parse("tag backbone names CA N C O\ndefault x\n").value();
  const auto labels = schema.categorize(tiny_system());
  EXPECT_GT(labels.tag_atoms("backbone"), 0u);
  EXPECT_TRUE(labels.is_partition());
}

TEST(SchemaTest, ParseErrors) {
  EXPECT_FALSE(CategorizerSchema::parse("").is_ok());
  EXPECT_FALSE(CategorizerSchema::parse("bogus line\n").is_ok());
  EXPECT_FALSE(CategorizerSchema::parse("tag p category nosuch\n").is_ok());
  EXPECT_FALSE(CategorizerSchema::parse("tag p\n").is_ok());
  EXPECT_FALSE(CategorizerSchema::parse("default a b\n").is_ok());
  EXPECT_TRUE(CategorizerSchema::parse("default m\n").is_ok());
}

TEST(SchemaTest, CommentsAndBlanksIgnored) {
  const auto schema = CategorizerSchema::parse(
      "\n   # full-line comment\n"
      "tag p category protein   # trailing comment\n"
      "\ndefault m\n");
  EXPECT_TRUE(schema.is_ok());
}

// --- pre-processor -------------------------------------------------------------------------

std::vector<std::uint8_t> make_xtc(const chem::System& system, std::uint32_t frames) {
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (std::uint32_t f = 0; f < frames; ++f) {
    ADA_CHECK(writer
                  .add_frame(gen.current_step(), gen.current_time_ps(), system.box(),
                             gen.next_frame())
                  .is_ok());
  }
  return writer.take();
}

TEST(PreprocessorTest, SplitProducesPerTagRawTrajectories) {
  const auto system = tiny_system();
  const auto xtc = make_xtc(system, 4);
  PreprocessStats stats;
  const auto subsets =
      DataPreProcessor(categorize_protein_misc(system)).split(xtc, &stats).value();
  ASSERT_EQ(subsets.size(), 2u);
  EXPECT_EQ(stats.frames, 4u);
  EXPECT_EQ(stats.atoms, system.atom_count());
  EXPECT_EQ(stats.compressed_bytes, xtc.size());

  const auto protein_reader = formats::RawTrajReader::open(subsets.at(kProteinTag)).value();
  EXPECT_EQ(protein_reader.frame_count(), 4u);
  EXPECT_EQ(protein_reader.atom_count(), system.count_category(chem::Category::kProtein));
  const auto misc_reader = formats::RawTrajReader::open(subsets.at(kMiscTag)).value();
  EXPECT_EQ(misc_reader.atom_count(),
            system.atom_count() - system.count_category(chem::Category::kProtein));
}

TEST(PreprocessorTest, SubsetCoordinatesMatchDirectDecode) {
  const auto system = tiny_system();
  const auto xtc = make_xtc(system, 3);
  const auto labels = categorize_protein_misc(system);
  const auto subsets = DataPreProcessor(labels).split(xtc).value();
  const auto full_frames = formats::read_all_xtc(xtc).value();
  const auto protein_reader = formats::RawTrajReader::open(subsets.at(kProteinTag)).value();
  for (std::uint32_t f = 0; f < 3; ++f) {
    const auto subset_frame = protein_reader.frame(f).value();
    const auto expected =
        formats::extract_subset(full_frames[f].coords, labels.groups.at(kProteinTag));
    EXPECT_EQ(subset_frame.coords, expected) << "frame " << f;
    EXPECT_EQ(subset_frame.step, full_frames[f].step);
  }
}

TEST(PreprocessorTest, SubsetSizesSumToFullRaw) {
  const auto system = tiny_system();
  const auto xtc = make_xtc(system, 5);
  PreprocessStats stats;
  DataPreProcessor(categorize_fine_grained(system)).split(xtc, &stats).value();
  std::uint64_t atoms = 0;
  for (const auto& [tag, n] : stats.subset_atoms) atoms += n;
  EXPECT_EQ(atoms, system.atom_count());
  // Byte overhead per subset is the 16-byte header + per-frame 44 bytes.
  std::uint64_t bytes = 0;
  for (const auto& [tag, b] : stats.subset_bytes) bytes += b;
  const std::uint64_t full = formats::raw_file_bytes(system.atom_count(), 5);
  const std::uint64_t overhead =
      (stats.subset_bytes.size() - 1) * (16 + 5ull * 44);
  EXPECT_EQ(bytes, full + overhead);
}

TEST(PreprocessorTest, AtomCountMismatchRejected) {
  const auto system = tiny_system();
  const auto xtc = make_xtc(system, 2);
  // Label map for a different atom count.
  LabelMap labels;
  labels.atom_count = 10;
  labels.groups["p"] = chem::Selection::all(10);
  EXPECT_FALSE(DataPreProcessor(labels).split(xtc).is_ok());
}

TEST(PreprocessorTest, CorruptXtcRejected) {
  LabelMap labels;
  labels.atom_count = 4;
  labels.groups["p"] = chem::Selection::all(4);
  std::vector<std::uint8_t> garbage(64, 0xab);
  EXPECT_FALSE(DataPreProcessor(labels).split(garbage).is_ok());
}

// --- placement policy -------------------------------------------------------------------------

TEST(PolicyTest, ActiveOnSsd) {
  const auto policy = PlacementPolicy::active_on_ssd(0, 1);
  EXPECT_EQ(policy.backend_for("p"), 0u);
  EXPECT_EQ(policy.backend_for("m"), 1u);
  EXPECT_EQ(policy.backend_for("anything"), 1u);
}

TEST(PolicyTest, SingleBackend) {
  const auto policy = PlacementPolicy::single_backend(2);
  EXPECT_EQ(policy.backend_for("p"), 2u);
  EXPECT_EQ(policy.backend_for("m"), 2u);
}

// --- middleware round trip ---------------------------------------------------------------------

class AdaMiddlewareTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/ada_mw_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    ada_ = std::make_unique<Ada>(
        plfs::PlfsMount::open({{"ssd", root_ + "/ssd"}, {"hdd", root_ + "/hdd"}}).value(),
        config);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
  std::unique_ptr<Ada> ada_;
};

TEST_F(AdaMiddlewareTest, InterceptDecision) {
  EXPECT_TRUE(ada_->should_intercept("/data/bar.xtc", "vmd"));
  EXPECT_TRUE(ada_->should_intercept("/data/foo.pdb", "VMD"));
  EXPECT_FALSE(ada_->should_intercept("/data/bar.xtc", "gromacs"));
  EXPECT_FALSE(ada_->should_intercept("/data/notes.txt", "vmd"));
  EXPECT_FALSE(ada_->should_intercept("no_extension", "vmd"));
  // The extension comes from the basename only: a dot in a directory
  // component is not an extension, and a dotfile's leading dot is part of
  // its name (regression for the full-path rfind('.') parse).
  EXPECT_FALSE(ada_->should_intercept("/runs.2026/traj", "vmd"));
  EXPECT_TRUE(ada_->should_intercept("/runs.2026/traj.xtc", "vmd"));
  EXPECT_FALSE(ada_->should_intercept("/data/.xtc", "vmd"));
}

TEST_F(AdaMiddlewareTest, IngestThenQueryRoundTrip) {
  const auto system = tiny_system();
  const auto xtc = make_xtc(system, 3);
  const auto report = ada_->ingest(system, xtc, "bar.xtc").value();
  EXPECT_EQ(report.preprocess.frames, 3u);
  EXPECT_EQ(report.backend_of_tag.at(kProteinTag), 0u);  // SSD
  EXPECT_EQ(report.backend_of_tag.at(kMiscTag), 1u);     // HDD

  // $ mol addfile /mnt/bar.xtc tag p
  const auto protein_image = ada_->query("bar.xtc", kProteinTag).value();
  const auto reader = formats::RawTrajReader::open(protein_image).value();
  EXPECT_EQ(reader.frame_count(), 3u);
  EXPECT_EQ(reader.atom_count(), system.count_category(chem::Category::kProtein));
}

TEST_F(AdaMiddlewareTest, LabelsPersistAcrossSessions) {
  const auto system = tiny_system();
  ASSERT_TRUE(ada_->ingest(system, make_xtc(system, 1), "bar.xtc").is_ok());
  const auto labels = ada_->labels("bar.xtc").value();
  EXPECT_EQ(labels, categorize_protein_misc(system));
}

TEST_F(AdaMiddlewareTest, TagListExcludesReserved) {
  const auto system = tiny_system();
  ASSERT_TRUE(ada_->ingest(system, make_xtc(system, 1), "bar.xtc").is_ok());
  const auto tags = ada_->tags("bar.xtc").value();
  EXPECT_EQ(tags, (std::vector<Tag>{"m", "p"}));
}

TEST_F(AdaMiddlewareTest, ReservedTagQueriesRejected) {
  const auto system = tiny_system();
  ASSERT_TRUE(ada_->ingest(system, make_xtc(system, 1), "bar.xtc").is_ok());
  EXPECT_FALSE(ada_->query("bar.xtc", kLabelFileTag).is_ok());
}

TEST_F(AdaMiddlewareTest, FineGrainedIngest) {
  const auto system = tiny_system();
  const auto labels = categorize_fine_grained(system);
  ASSERT_TRUE(ada_->ingest_with_labels(labels, make_xtc(system, 2), "fine.xtc").is_ok());
  // Water subset is queryable on its own ($ mol addfile fine.xtc tag w).
  const auto water = ada_->query("fine.xtc", "w").value();
  const auto reader = formats::RawTrajReader::open(water).value();
  EXPECT_EQ(reader.atom_count(), system.count_category(chem::Category::kWater));
}

TEST_F(AdaMiddlewareTest, SubsetBytesMatchesQuerySize) {
  const auto system = tiny_system();
  ASSERT_TRUE(ada_->ingest(system, make_xtc(system, 2), "bar.xtc").is_ok());
  const auto expected = ada_->query("bar.xtc", kProteinTag).value().size();
  EXPECT_EQ(ada_->subset_bytes("bar.xtc", kProteinTag).value(), expected);
}

TEST_F(AdaMiddlewareTest, QueryMissingDatasetFails) {
  EXPECT_FALSE(ada_->query("nope.xtc", kProteinTag).is_ok());
  EXPECT_FALSE(ada_->has_dataset("nope.xtc"));
}

TEST_F(AdaMiddlewareTest, DuplicateIngestFails) {
  const auto system = tiny_system();
  ASSERT_TRUE(ada_->ingest(system, make_xtc(system, 1), "bar.xtc").is_ok());
  const auto again = ada_->ingest(system, make_xtc(system, 1), "bar.xtc");
  ASSERT_FALSE(again.is_ok());
  EXPECT_EQ(again.error().code(), ErrorCode::kAlreadyExists);
}

TEST_F(AdaMiddlewareTest, BatchIngestOfPhases) {
  // Paper Section 2.1: one .pdb guides multiple .xtc files (motion phases).
  const auto system = tiny_system();
  const auto phase1 = make_xtc(system, 2);
  const auto phase2 = make_xtc(system, 3);
  const auto phase3 = make_xtc(system, 1);
  const std::vector<Ada::Phase> phases = {
      {"phase1.xtc", phase1}, {"phase2.xtc", phase2}, {"phase3.xtc", phase3}};
  const auto results = ada_->ingest_batch(system, phases, /*threads=*/3);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) ASSERT_TRUE(r.is_ok()) << r.error().to_string();
  EXPECT_EQ(results[0].value().preprocess.frames, 2u);
  EXPECT_EQ(results[1].value().preprocess.frames, 3u);
  // Every phase is independently queryable under the shared label map.
  for (const char* name : {"phase1.xtc", "phase2.xtc", "phase3.xtc"}) {
    EXPECT_TRUE(ada_->query(name, kProteinTag).is_ok()) << name;
    EXPECT_EQ(ada_->labels(name).value(), categorize_protein_misc(system)) << name;
  }
}

TEST_F(AdaMiddlewareTest, BatchIngestMatchesSerialByteForByte) {
  const auto system = tiny_system();
  const auto xtc = make_xtc(system, 2);
  const std::vector<Ada::Phase> phases = {{"parallel.xtc", xtc}};
  const auto results = ada_->ingest_batch(system, phases, 4);
  ASSERT_TRUE(results[0].is_ok());
  ASSERT_TRUE(ada_->ingest(system, xtc, "serial.xtc").is_ok());
  EXPECT_EQ(ada_->query("parallel.xtc", kProteinTag).value(),
            ada_->query("serial.xtc", kProteinTag).value());
  EXPECT_EQ(ada_->query("parallel.xtc", kMiscTag).value(),
            ada_->query("serial.xtc", kMiscTag).value());
}

TEST_F(AdaMiddlewareTest, BatchIngestRejectsDuplicateNames) {
  const auto system = tiny_system();
  const auto xtc = make_xtc(system, 1);
  const std::vector<Ada::Phase> phases = {{"same.xtc", xtc}, {"same.xtc", xtc}};
  const auto results = ada_->ingest_batch(system, phases);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].is_ok());
  EXPECT_FALSE(results[1].is_ok());
}

TEST_F(AdaMiddlewareTest, BatchIngestReportsPerPhaseFailures) {
  const auto system = tiny_system();
  const auto good = make_xtc(system, 1);
  const std::vector<std::uint8_t> garbage(32, 0x5a);
  const std::vector<Ada::Phase> phases = {{"good.xtc", good}, {"bad.xtc", garbage}};
  const auto results = ada_->ingest_batch(system, phases, 2);
  EXPECT_TRUE(results[0].is_ok());
  EXPECT_FALSE(results[1].is_ok());
  EXPECT_TRUE(ada_->has_dataset("good.xtc"));
}

TEST_F(AdaMiddlewareTest, KeepOriginalStoresCompressedImage) {
  AdaConfig config;
  config.placement = PlacementPolicy::active_on_ssd(0, 1);
  config.keep_original = true;
  Ada ada(plfs::PlfsMount::open({{"ssd", root_ + "/ssd2"}, {"hdd", root_ + "/hdd2"}}).value(),
          config);
  const auto system = tiny_system();
  const auto xtc = make_xtc(system, 2);
  ASSERT_TRUE(ada.ingest(system, xtc, "bar.xtc").is_ok());
  EXPECT_EQ(ada.mount().label_size("bar.xtc", kOriginalTag).value(), xtc.size());
}

}  // namespace
}  // namespace ada::core
