// Tests for stripe layout arithmetic, the PVFS performance model, and the
// fault-injected client retry path (retries on the simulated clock).
#include <gtest/gtest.h>

#include "common/faults.hpp"
#include "common/units.hpp"
#include "pvfs/pvfs.hpp"
#include "pvfs/striping.hpp"
#include "storage/device.hpp"

namespace ada::pvfs {
namespace {

// --- striping -----------------------------------------------------------------

TEST(StripingTest, DistributionSumsToFileSize) {
  StripeLayout layout{64 * 1024, 3};
  for (const std::uint64_t size : {0ull, 1ull, 65536ull, 65537ull, 1000000ull, 123456789ull}) {
    const auto dist = layout.distribution(size);
    std::uint64_t total = 0;
    for (const auto b : dist) total += b;
    EXPECT_EQ(total, size) << "file size " << size;
  }
}

TEST(StripingTest, RoundRobinAssignment) {
  StripeLayout layout{100, 3};
  EXPECT_EQ(layout.server_of(0), 0u);
  EXPECT_EQ(layout.server_of(99), 0u);
  EXPECT_EQ(layout.server_of(100), 1u);
  EXPECT_EQ(layout.server_of(250), 2u);
  EXPECT_EQ(layout.server_of(300), 0u);
}

TEST(StripingTest, BalancedForWholeRounds) {
  StripeLayout layout{100, 4};
  const auto dist = layout.distribution(4000);  // 10 full rounds
  for (const auto b : dist) EXPECT_EQ(b, 1000u);
}

TEST(StripingTest, TailGoesToEarlyServers) {
  StripeLayout layout{100, 4};
  const auto dist = layout.distribution(450);  // one round + 50 bytes
  EXPECT_EQ(dist[0], 150u);
  EXPECT_EQ(dist[1], 100u);
  EXPECT_EQ(dist[2], 100u);
  EXPECT_EQ(dist[3], 100u);
}

TEST(StripingTest, StripesOnServerCountsUnits) {
  StripeLayout layout{100, 2};
  EXPECT_EQ(layout.stripes_on_server(350, 0), 2u);  // 100 @0, 50 @200..
  EXPECT_EQ(layout.stripes_on_server(350, 1), 2u);
  EXPECT_EQ(layout.stripes_on_server(0, 0), 0u);
}

TEST(StripingTest, SingleServerGetsEverything) {
  StripeLayout layout{64 * 1024, 1};
  EXPECT_EQ(layout.bytes_on_server(999999, 0), 999999u);
}

// --- pvfs model ----------------------------------------------------------------

struct ClusterFixture {
  sim::Simulator simulator;
  sim::FlowNetwork network{simulator};
  net::Fabric fabric;

  explicit ClusterFixture(double nic_bw = 4e9)
      : fabric(simulator, network,
               net::FabricSpec{nic_bw, 100e9, 0.0}, /*node_count=*/9) {}
};

std::vector<IoServer> hdd_servers() {
  // Paper Table 4: 3 HDD nodes, 2 WD 1TB drives each.
  return {{3, storage::DeviceSpec::wd_hdd_1tb(), 2},
          {4, storage::DeviceSpec::wd_hdd_1tb(), 2},
          {5, storage::DeviceSpec::wd_hdd_1tb(), 2}};
}

std::vector<IoServer> ssd_servers() {
  return {{6, storage::DeviceSpec::plextor_ssd_256gb(), 2},
          {7, storage::DeviceSpec::plextor_ssd_256gb(), 2},
          {8, storage::DeviceSpec::plextor_ssd_256gb(), 2}};
}

TEST(PvfsTest, AggregateBandwidthSumsServers) {
  ClusterFixture fx;
  PvfsModel hdd_fs(fx.simulator, fx.fabric, "hdd", hdd_servers(), 3);
  EXPECT_NEAR(hdd_fs.aggregate_disk_read_bandwidth(), 6 * mb_per_s(126), 1.0);
}

TEST(PvfsTest, HddReadLimitedByDisks) {
  ClusterFixture fx;
  PvfsModel hdd_fs(fx.simulator, fx.fabric, "hdd", hdd_servers(), 3);
  double done_at = -1;
  const double bytes = 756 * kMB;  // aggregate disk bw is 756 MB/s
  hdd_fs.read_file(bytes, /*client=*/0, [&] { done_at = fx.simulator.now(); });
  fx.simulator.run();
  EXPECT_NEAR(done_at, 1.0, 0.05);  // ~1 s; metadata + seeks add a little
}

TEST(PvfsTest, SsdReadLimitedByClientNic) {
  ClusterFixture fx(/*nic_bw=*/4e9);
  PvfsModel ssd_fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
  // Disks could source 18 GB/s; the client NIC caps delivery at 4 GB/s.
  double done_at = -1;
  const double bytes = 8 * kGB;
  ssd_fs.read_file(bytes, 0, [&] { done_at = fx.simulator.now(); });
  fx.simulator.run();
  EXPECT_NEAR(done_at, 2.0, 0.05);
}

TEST(PvfsTest, SsdBeatsHddByDeviceRatio) {
  const double bytes = 500 * kMB;
  double hdd_time = 0;
  double ssd_time = 0;
  {
    ClusterFixture fx;
    PvfsModel fs(fx.simulator, fx.fabric, "hdd", hdd_servers(), 3);
    fs.read_file(bytes, 0, [&] { hdd_time = fx.simulator.now(); });
    fx.simulator.run();
  }
  {
    ClusterFixture fx;
    PvfsModel fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
    fs.read_file(bytes, 0, [&] { ssd_time = fx.simulator.now(); });
    fx.simulator.run();
  }
  EXPECT_GT(hdd_time, 4.0 * ssd_time);
}

TEST(PvfsTest, WritesSlowerThanReadsOnSsd) {
  const double bytes = 500 * kMB;
  double read_time = 0;
  double write_time = 0;
  {
    ClusterFixture fx;
    PvfsModel fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
    fs.read_file(bytes, 0, [&] { read_time = fx.simulator.now(); });
    fx.simulator.run();
  }
  {
    ClusterFixture fx;
    PvfsModel fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
    fs.write_file(bytes, 0, [&] { write_time = fx.simulator.now(); });
    fx.simulator.run();
  }
  EXPECT_GT(write_time, read_time);  // SSD write bw is 1/3 of read bw
}

TEST(PvfsTest, ZeroByteFileIsMetadataOnly) {
  ClusterFixture fx;
  PvfsModel fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
  double done_at = -1;
  fs.read_file(0.0, 0, [&] { done_at = fx.simulator.now(); });
  fx.simulator.run();
  EXPECT_GE(done_at, 0.0);
  EXPECT_LT(done_at, 1e-3);
}

TEST(PvfsTest, ConcurrentClientsShareServers) {
  ClusterFixture fx;
  PvfsModel fs(fx.simulator, fx.fabric, "hdd", hdd_servers(), 3);
  const double bytes = 378 * kMB;  // half the aggregate rate for 1 s
  int done = 0;
  double last = 0;
  for (net::NodeId client : {0u, 1u}) {
    fs.read_file(bytes, client, [&] {
      ++done;
      last = fx.simulator.now();
    });
  }
  fx.simulator.run();
  EXPECT_EQ(done, 2);
  // Two concurrent 378 MB reads over 756 MB/s of disks: ~1 s total.
  EXPECT_NEAR(last, 1.0, 0.1);
}

// --- fault injection + retries -------------------------------------------------

TEST(PvfsFaultTest, StripeRetrySucceedsAndCostsSimTime) {
  fault::Injector::global().disarm_all();
  double clean_time = 0;
  {
    ClusterFixture fx;
    PvfsModel fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
    fs.read_file(100 * kMB, 0, [&] { clean_time = fx.simulator.now(); });
    fx.simulator.run();
  }
  {
    ClusterFixture fx;
    PvfsModel fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
    // One transient stripe failure: the client retries on the sim clock and
    // the op still succeeds, strictly later than the clean run.  The backoff
    // must exceed the clean transfer time -- a small backoff hides inside
    // the saturated client NIC (the other stripes keep it busy).
    RetryPolicy policy;
    policy.initial_backoff_s = 0.05;
    policy.jitter_fraction = 0.0;
    fs.set_retry_policy(policy);
    const fault::ScopedFault flaky("pvfs.stripe_read", fault::Schedule::fail_nth(1));
    Status final_status = io_error("never completed");
    double faulty_time = 0;
    fs.read_file(100 * kMB, 0, [&](Status s) {
      final_status = std::move(s);
      faulty_time = fx.simulator.now();
    });
    fx.simulator.run();
    EXPECT_TRUE(final_status.is_ok()) << final_status.to_string();
    EXPECT_GT(faulty_time, clean_time) << "retry backoff + re-seek must cost sim time";
    EXPECT_EQ(fault::Injector::global().fired("pvfs.stripe_read"), 1u);
  }
}

TEST(PvfsFaultTest, DownServerExhaustsRetriesWithUnavailable) {
  fault::Injector::global().disarm_all();
  ClusterFixture fx;
  PvfsModel fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
  // Server node 6's stripes fail on every attempt: retries exhaust and the
  // op completes with a typed kUnavailable, not a hang or a silent success.
  const fault::ScopedFault down_server("pvfs.stripe_read.s6",
                                       fault::Schedule::down_window(1, 1000));
  Status final_status = Status::ok();
  bool completed = false;
  fs.read_file(100 * kMB, 0, [&](Status s) {
    final_status = std::move(s);
    completed = true;
  });
  fx.simulator.run();
  ASSERT_TRUE(completed);
  ASSERT_FALSE(final_status.is_ok());
  EXPECT_EQ(final_status.error().code(), ErrorCode::kUnavailable);
}

TEST(PvfsFaultTest, MetadataFaultFailsWholeOpTyped) {
  fault::Injector::global().disarm_all();
  ClusterFixture fx;
  PvfsModel fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
  const fault::ScopedFault meta("pvfs.metadata", fault::Schedule::fail_nth(1));
  Status final_status = Status::ok();
  fs.read_file(100 * kMB, 0, [&](Status s) { final_status = std::move(s); });
  fx.simulator.run();
  ASSERT_FALSE(final_status.is_ok());
  EXPECT_EQ(final_status.error().code(), ErrorCode::kIoError);
  EXPECT_EQ(fault::Injector::global().hits("pvfs.metadata"), 1u);
}

TEST(PvfsFaultTest, OpTimeoutConvertsToDeadlineExceeded) {
  fault::Injector::global().disarm_all();
  ClusterFixture fx;
  PvfsModel fs(fx.simulator, fx.fabric, "ssd", ssd_servers(), 3);
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_s = 0.5;
  policy.op_timeout_s = 1.0;  // backoffs overshoot the deadline quickly
  fs.set_retry_policy(policy);
  const fault::ScopedFault down("pvfs.stripe_read", fault::Schedule::down_window(1, 100000));
  Status final_status = Status::ok();
  fs.read_file(100 * kMB, 0, [&](Status s) { final_status = std::move(s); });
  fx.simulator.run();
  ASSERT_FALSE(final_status.is_ok());
  EXPECT_EQ(final_status.error().code(), ErrorCode::kDeadlineExceeded);
}

TEST(PvfsFaultTest, DeviceDelayFaultStretchesAccessTime) {
  fault::Injector::global().disarm_all();
  const storage::BlockDevice device(storage::DeviceSpec::plextor_ssd_256gb());
  const double clean_read = device.read_time(1 * kMB);
  const double clean_write = device.write_time(1 * kMB);
  const fault::ScopedFault slow("storage.device.read",
                                fault::Schedule::latency_spike(0.25));
  EXPECT_NEAR(device.read_time(1 * kMB), clean_read + 0.25, 1e-9);
  EXPECT_NEAR(device.write_time(1 * kMB), clean_write, 1e-12)
      << "write site is independent of the read site";
}

}  // namespace
}  // namespace ada::pvfs
