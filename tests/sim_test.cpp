// Tests for the DES engine: simulator ordering, FCFS resource, and the
// max-min fair flow network (including conservation properties).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/fabric.hpp"
#include "sim/flow_network.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace ada::sim {
namespace {

// --- simulator -----------------------------------------------------------------

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(3.0, [&] { order.push_back(3); });
  simulator.schedule_at(1.0, [&] { order.push_back(1); });
  simulator.schedule_at(2.0, [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(simulator.now(), 3.0);
  EXPECT_EQ(simulator.executed_events(), 3u);
}

TEST(SimulatorTest, EqualTimestampsAreFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(1.0, [&] {
    ++fired;
    simulator.schedule_after(0.5, [&] { ++fired; });
  });
  simulator.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(simulator.now(), 1.5);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator simulator;
  bool late_ran = false;
  simulator.schedule_at(5.0, [&] { late_ran = true; });
  EXPECT_FALSE(simulator.run_until(2.0));
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(simulator.now(), 2.0);
  EXPECT_TRUE(simulator.run_until(10.0));
  EXPECT_TRUE(late_ran);
}

TEST(SimulatorTest, RunWhilePendingStopsOnPredicate) {
  Simulator simulator;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    simulator.schedule_at(i, [&] { ++count; });
  }
  EXPECT_TRUE(simulator.run_while_pending([&] { return count == 3; }));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(simulator.pending_events(), 2u);
}

// --- FCFS resource ----------------------------------------------------------------

TEST(FcfsResourceTest, SerializesRequests) {
  Simulator simulator;
  FcfsResource server(simulator, "mds");
  std::vector<double> completion_times;
  for (int i = 0; i < 3; ++i) {
    server.submit(1.0, [&] { completion_times.push_back(simulator.now()); });
  }
  simulator.run();
  ASSERT_EQ(completion_times.size(), 3u);
  EXPECT_DOUBLE_EQ(completion_times[0], 1.0);
  EXPECT_DOUBLE_EQ(completion_times[1], 2.0);
  EXPECT_DOUBLE_EQ(completion_times[2], 3.0);
  EXPECT_DOUBLE_EQ(server.busy_time(), 3.0);
  EXPECT_EQ(server.completed(), 3u);
}

TEST(FcfsResourceTest, IdleBetweenBursts) {
  Simulator simulator;
  FcfsResource server(simulator, "cpu");
  double second_done = 0;
  server.submit(1.0, nullptr);
  simulator.schedule_at(5.0, [&] {
    server.submit(2.0, [&] { second_done = simulator.now(); });
  });
  simulator.run();
  EXPECT_DOUBLE_EQ(second_done, 7.0);
}

// --- flow network -----------------------------------------------------------------

TEST(FlowNetworkTest, SingleFlowSaturatesLink) {
  Simulator simulator;
  FlowNetwork network(simulator);
  const LinkId link = network.add_link("wire", 100.0);  // 100 B/s
  double done_at = -1;
  network.start_flow({link}, 500.0, [&] { done_at = simulator.now(); });
  simulator.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
  EXPECT_NEAR(network.total_bytes_delivered(), 500.0, 1e-6);
}

TEST(FlowNetworkTest, TwoFlowsShareFairly) {
  Simulator simulator;
  FlowNetwork network(simulator);
  const LinkId link = network.add_link("wire", 100.0);
  double first = -1;
  double second = -1;
  network.start_flow({link}, 100.0, [&] { first = simulator.now(); });
  network.start_flow({link}, 100.0, [&] { second = simulator.now(); });
  simulator.run();
  // Both at 50 B/s until t=2, both finish together.
  EXPECT_NEAR(first, 2.0, 1e-9);
  EXPECT_NEAR(second, 2.0, 1e-9);
}

TEST(FlowNetworkTest, ShortFlowFreesBandwidthForLong) {
  Simulator simulator;
  FlowNetwork network(simulator);
  const LinkId link = network.add_link("wire", 100.0);
  double long_done = -1;
  network.start_flow({link}, 150.0, [&] { long_done = simulator.now(); });
  network.start_flow({link}, 50.0, nullptr);
  simulator.run();
  // Phase 1: both at 50 B/s; short one finishes at t=1 having moved 50.
  // Long flow then has 100 left at full rate: finishes at t=2.
  EXPECT_NEAR(long_done, 2.0, 1e-9);
}

TEST(FlowNetworkTest, BottleneckIsPathMinimum) {
  Simulator simulator;
  FlowNetwork network(simulator);
  const LinkId fast = network.add_link("fast", 1000.0);
  const LinkId slow = network.add_link("slow", 10.0);
  double done_at = -1;
  network.start_flow({fast, slow}, 100.0, [&] { done_at = simulator.now(); });
  simulator.run();
  EXPECT_NEAR(done_at, 10.0, 1e-9);
}

TEST(FlowNetworkTest, MaxMinFairnessUnevenPaths) {
  // Classic max-min scenario: flows A and B share link L1 (cap 10); flow B
  // also crosses L2 (cap 4).  Max-min: B gets 4, A gets 6.
  Simulator simulator;
  FlowNetwork network(simulator);
  const LinkId l1 = network.add_link("l1", 10.0);
  const LinkId l2 = network.add_link("l2", 4.0);
  const FlowId a = network.start_flow({l1}, 1e9, nullptr);
  const FlowId b = network.start_flow({l1, l2}, 1e9, nullptr);
  // Rates are recomputed synchronously on start_flow.
  EXPECT_NEAR(network.current_rate(a), 6.0, 1e-9);
  EXPECT_NEAR(network.current_rate(b), 4.0, 1e-9);
}

TEST(FlowNetworkTest, ZeroByteFlowCompletesImmediately) {
  Simulator simulator;
  FlowNetwork network(simulator);
  const LinkId link = network.add_link("wire", 100.0);
  bool done = false;
  network.start_flow({link}, 0.0, [&] { done = true; });
  simulator.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(simulator.now(), 0.0);
}

TEST(FlowNetworkTest, EmptyPathFlowCompletesImmediately) {
  Simulator simulator;
  FlowNetwork network(simulator);
  bool done = false;
  network.start_flow({}, 1e6, [&] { done = true; });
  simulator.run();
  EXPECT_TRUE(done);
}

TEST(FlowNetworkPropertyTest, ConservationUnderRandomTraffic) {
  Rng rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    Simulator simulator;
    FlowNetwork network(simulator);
    std::vector<LinkId> links;
    const int link_count = 2 + static_cast<int>(rng.uniform_index(5));
    for (int i = 0; i < link_count; ++i) {
      links.push_back(network.add_link("l" + std::to_string(i), rng.uniform(10.0, 1000.0)));
    }
    int completions = 0;
    const int flow_count = 1 + static_cast<int>(rng.uniform_index(20));
    double total_bytes = 0;
    for (int f = 0; f < flow_count; ++f) {
      // Random subset path (1..3 distinct links).
      std::vector<LinkId> path;
      const int hops = 1 + static_cast<int>(rng.uniform_index(3));
      for (int h = 0; h < hops; ++h) {
        const LinkId link = links[rng.uniform_index(links.size())];
        if (std::find(path.begin(), path.end(), link) == path.end()) path.push_back(link);
      }
      const double bytes = rng.uniform(1.0, 1e6);
      total_bytes += bytes;
      const double start = rng.uniform(0.0, 10.0);
      simulator.schedule_at(start, [&network, path, bytes, &completions]() mutable {
        network.start_flow(std::move(path), bytes, [&completions] { ++completions; });
      });
    }
    simulator.run();
    EXPECT_EQ(completions, flow_count);
    EXPECT_EQ(network.active_flows(), 0u);
    EXPECT_NEAR(network.total_bytes_delivered(), total_bytes, total_bytes * 1e-9 + 1e-3);
  }
}

TEST(FlowNetworkPropertyTest, RatesNeverExceedLinkCapacity) {
  Rng rng(777);
  Simulator simulator;
  FlowNetwork network(simulator);
  const LinkId a = network.add_link("a", 100.0);
  const LinkId b = network.add_link("b", 37.0);
  std::vector<FlowId> flows;
  for (int f = 0; f < 12; ++f) {
    std::vector<LinkId> path = (f % 3 == 0) ? std::vector<LinkId>{a}
                               : (f % 3 == 1) ? std::vector<LinkId>{b}
                                              : std::vector<LinkId>{a, b};
    flows.push_back(network.start_flow(std::move(path), 1e9, nullptr));
  }
  // Sum of rates on each link must not exceed capacity (work conservation
  // means the bottleneck is actually saturated).
  double on_a = 0;
  double on_b = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const double rate = network.current_rate(flows[f]);
    EXPECT_GT(rate, 0.0);
    if (f % 3 == 0) {
      on_a += rate;
    } else if (f % 3 == 1) {
      on_b += rate;
    } else {
      on_a += rate;
      on_b += rate;
    }
  }
  EXPECT_LE(on_a, 100.0 * (1 + 1e-9));
  EXPECT_LE(on_b, 37.0 * (1 + 1e-9));
  EXPECT_NEAR(on_b, 37.0, 1e-6);  // b is saturated
}

// --- fabric -------------------------------------------------------------------------

TEST(FabricTest, TransferTakesBytesOverNicBandwidth) {
  Simulator simulator;
  FlowNetwork network(simulator);
  net::FabricSpec spec;
  spec.nic_bandwidth = 1000.0;
  spec.backplane_bandwidth = 1e6;
  spec.base_latency = 0.0;
  net::Fabric fabric(simulator, network, spec, 3);
  double done_at = -1;
  fabric.transfer(0, 1, 5000.0, [&] { done_at = simulator.now(); });
  simulator.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
}

TEST(FabricTest, ConvergenceBottleneckAtReceiverNic) {
  // Three senders to one receiver: receiver NIC (1000 B/s) caps the
  // aggregate; each 1000-byte transfer finishes at t=3.
  Simulator simulator;
  FlowNetwork network(simulator);
  net::FabricSpec spec;
  spec.nic_bandwidth = 1000.0;
  spec.backplane_bandwidth = 1e9;
  spec.base_latency = 0.0;
  net::Fabric fabric(simulator, network, spec, 4);
  int done = 0;
  for (net::NodeId src = 1; src <= 3; ++src) {
    fabric.transfer(src, 0, 1000.0, [&] { ++done; });
  }
  simulator.run();
  EXPECT_EQ(done, 3);
  EXPECT_NEAR(simulator.now(), 3.0, 1e-9);
}

TEST(FabricTest, BaseLatencyDelaysDelivery) {
  Simulator simulator;
  FlowNetwork network(simulator);
  net::FabricSpec spec;
  spec.nic_bandwidth = 1000.0;
  spec.base_latency = 0.25;
  net::Fabric fabric(simulator, network, spec, 2);
  double done_at = -1;
  fabric.transfer(0, 1, 1000.0, [&] { done_at = simulator.now(); });
  simulator.run();
  EXPECT_NEAR(done_at, 1.25, 1e-9);
}

TEST(FabricTest, LocalTransferBypassesNetwork) {
  Simulator simulator;
  FlowNetwork network(simulator);
  net::Fabric fabric(simulator, network, net::FabricSpec{}, 2);
  bool done = false;
  fabric.transfer(1, 1, 1e12, [&] { done = true; });
  simulator.run();
  EXPECT_TRUE(done);
  EXPECT_LT(simulator.now(), 1e-3);  // only the base latency
}

}  // namespace
}  // namespace ada::sim
