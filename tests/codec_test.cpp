// Unit + property tests for the bitstream and the ada3d coordinate codec,
// plus the golden-vector suite that locks both wire formats bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <tuple>

#include "codec/bitstream.hpp"
#include "codec/coord_codec.hpp"
#include "common/binary_io.hpp"
#include "common/rng.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"

namespace ada::codec {
namespace {

// --- bitstream -----------------------------------------------------------------

TEST(BitstreamTest, SingleBits) {
  BitWriter w;
  w.put_bit(true);
  w.put_bit(false);
  w.put_bit(true);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.get_bit().value());
  EXPECT_FALSE(r.get_bit().value());
  EXPECT_TRUE(r.get_bit().value());
}

TEST(BitstreamTest, MixedWidthsRoundTrip) {
  BitWriter w;
  w.put_bits(0x5, 3);
  w.put_bits(0x1abcd, 17);
  w.put_bits(0, 0);  // zero-width fields are legal no-ops
  w.put_bits(0xffffffffu, 32);
  w.put_bits(1, 1);
  const std::size_t bits = w.bit_count();
  EXPECT_EQ(bits, 3u + 17 + 0 + 32 + 1);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(3).value(), 0x5u);
  EXPECT_EQ(r.get_bits(17).value(), 0x1abcdu);
  EXPECT_EQ(r.get_bits(0).value(), 0u);
  EXPECT_EQ(r.get_bits(32).value(), 0xffffffffu);
  EXPECT_EQ(r.get_bits(1).value(), 1u);
  EXPECT_EQ(r.bits_consumed(), bits);
}

TEST(BitstreamTest, ReadingPastEndIsError) {
  BitWriter w;
  w.put_bits(3, 2);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.get_bits(8).is_ok());  // padding bits are readable...
  EXPECT_FALSE(r.get_bits(8).is_ok());  // ...but past the final byte is not
}

TEST(BitstreamPropertyTest, RandomRoundTrip) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<std::uint32_t, unsigned>> fields;
    BitWriter w;
    const int n = 1 + static_cast<int>(rng.uniform_index(200));
    for (int i = 0; i < n; ++i) {
      const unsigned width = static_cast<unsigned>(rng.uniform_index(33));
      const std::uint32_t value =
          width == 32 ? static_cast<std::uint32_t>(rng.next_u64())
                      : static_cast<std::uint32_t>(rng.next_u64() & ((1ull << width) - 1));
      fields.emplace_back(value, width);
      w.put_bits(value, width);
    }
    const auto bytes = w.finish();
    BitReader r(bytes);
    for (const auto& [value, width] : fields) {
      EXPECT_EQ(r.get_bits(width).value(), value);
    }
  }
}

TEST(BitstreamTest, BitsNeeded) {
  EXPECT_EQ(bits_needed(0), 0u);
  EXPECT_EQ(bits_needed(1), 1u);
  EXPECT_EQ(bits_needed(2), 2u);
  EXPECT_EQ(bits_needed(255), 8u);
  EXPECT_EQ(bits_needed(256), 9u);
  EXPECT_EQ(bits_needed(0xffffffffu), 32u);
}

TEST(BitstreamTest, ZigzagInvolution) {
  for (std::int32_t v : {0, 1, -1, 2, -2, 1000000, -1000000, 2147483647, -2147483647}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes.
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

// --- codec ----------------------------------------------------------------------

std::vector<float> random_cluster_coords(Rng& rng, std::size_t atoms, float box, float step) {
  std::vector<float> coords;
  coords.reserve(atoms * 3);
  float x = box / 2;
  float y = box / 2;
  float z = box / 2;
  for (std::size_t i = 0; i < atoms; ++i) {
    // Random walk: consecutive atoms are spatially close (bonded-neighbour
    // statistics), the property the delta coder exploits.
    x = std::clamp(x + static_cast<float>(rng.normal(0.0, static_cast<double>(step))), 0.0f, box);
    y = std::clamp(y + static_cast<float>(rng.normal(0.0, static_cast<double>(step))), 0.0f, box);
    z = std::clamp(z + static_cast<float>(rng.normal(0.0, static_cast<double>(step))), 0.0f, box);
    coords.push_back(x);
    coords.push_back(y);
    coords.push_back(z);
  }
  return coords;
}

TEST(CoordCodecTest, EmptyFrame) {
  const auto frame = compress({}, {}).value();
  EXPECT_EQ(frame.atom_count, 0u);
  EXPECT_TRUE(decompress(frame).value().empty());
}

TEST(CoordCodecTest, SingleAtom) {
  const std::vector<float> coords = {1.234f, -5.678f, 0.001f};
  const auto frame = compress(coords, {}).value();
  const auto out = decompress(frame).value();
  ASSERT_EQ(out.size(), 3u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(out[static_cast<std::size_t>(d)], coords[static_cast<std::size_t>(d)], 0.0006f);
  }
}

TEST(CoordCodecTest, NotDivisibleByThreeRejected) {
  const std::vector<float> coords = {1.0f, 2.0f};
  EXPECT_FALSE(compress(coords, {}).is_ok());
}

TEST(CoordCodecTest, NonFiniteRejected) {
  const std::vector<float> coords = {1.0f, std::nanf(""), 2.0f};
  EXPECT_FALSE(compress(coords, {}).is_ok());
}

TEST(CoordCodecTest, OutOfRangeRejected) {
  const std::vector<float> coords = {3e7f, 0.0f, 0.0f};  // 3e10 grid units
  EXPECT_FALSE(compress(coords, {}).is_ok());
}

TEST(CoordCodecTest, ZeroPrecisionRejected) {
  const std::vector<float> coords = {1.0f, 2.0f, 3.0f};
  CodecParams params;
  params.precision = 0.0f;
  EXPECT_FALSE(compress(coords, params).is_ok());
}

TEST(CoordCodecTest, IdenticalAtomsCompressToAlmostNothing) {
  std::vector<float> coords;
  for (int i = 0; i < 1000; ++i) {
    coords.push_back(1.0f);
    coords.push_back(2.0f);
    coords.push_back(3.0f);
  }
  const auto frame = compress(coords, {}).value();
  // All deltas zero: 1 flag bit per atom, zero-width delta fields.
  EXPECT_LT(frame.payload_bytes(), 200u);
  const auto out = decompress(frame).value();
  EXPECT_EQ(out.size(), coords.size());
  EXPECT_NEAR(out[2999], 3.0f, 0.0006f);
}

class CodecRoundTripTest : public testing::TestWithParam<std::tuple<int, float>> {};

TEST_P(CodecRoundTripTest, ErrorBoundedByHalfGrid) {
  const auto [atoms, precision] = GetParam();
  Rng rng(static_cast<std::uint64_t>(atoms) * 31 + static_cast<std::uint64_t>(precision));
  const auto coords = random_cluster_coords(rng, static_cast<std::size_t>(atoms), 8.0f, 0.2f);
  CodecParams params;
  params.precision = precision;
  const auto frame = compress(coords, params).value();
  const auto out = decompress(frame).value();
  ASSERT_EQ(out.size(), coords.size());
  const float tolerance = 0.5f / precision + 1e-5f;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    ASSERT_NEAR(out[i], coords[i], tolerance) << "at coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTripTest,
    testing::Combine(testing::Values(1, 2, 3, 10, 100, 1000, 10000),
                     testing::Values(10.0f, 100.0f, 1000.0f, 10000.0f)),
    [](const auto& param_info) {
      return "atoms" + std::to_string(std::get<0>(param_info.param)) + "_prec" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param)));
    });

TEST(CoordCodecTest, QuantizationIsIdempotent) {
  // Decompressing and recompressing must be lossless the second time:
  // outputs are exact grid multiples.
  Rng rng(7);
  const auto coords = random_cluster_coords(rng, 500, 5.0f, 0.15f);
  const auto frame1 = compress(coords, {}).value();
  const auto out1 = decompress(frame1).value();
  const auto frame2 = compress(out1, {}).value();
  const auto out2 = decompress(frame2).value();
  EXPECT_EQ(out1, out2);
}

TEST(CoordCodecTest, PerAtomCostsSumToPayload) {
  Rng rng(11);
  const auto coords = random_cluster_coords(rng, 2000, 8.0f, 0.1f);
  PerAtomCost cost;
  const auto frame = compress(coords, {}, &cost).value();
  ASSERT_EQ(cost.bits.size(), 2000u);
  EXPECT_EQ(range_bits(cost, 0, cost.bits.size()), frame.payload_bits);
  // Prefix + suffix partition the total.
  const auto prefix = range_bits(cost, 0, 700);
  const auto suffix = range_bits(cost, 700, 2000);
  EXPECT_EQ(prefix + suffix, frame.payload_bits);
}

TEST(CoordCodecTest, LocalStructureCompressesWell) {
  // Bonded-neighbour statistics (0.1-0.3 nm spacing) must compress well
  // below raw float32: this is the xtc-like >2.5x regime.
  Rng rng(13);
  const auto coords = random_cluster_coords(rng, 20000, 8.0f, 0.15f);
  const auto frame = compress(coords, {}).value();
  const double raw_bytes = static_cast<double>(coords.size()) * 4.0;
  const double ratio = raw_bytes / static_cast<double>(frame.payload_bytes());
  EXPECT_GT(ratio, 2.5) << "compression ratio " << ratio;
  EXPECT_LT(ratio, 6.0) << "suspiciously high ratio " << ratio;
}

TEST(CoordCodecTest, ScatteredAtomsStillRoundTrip) {
  // Uniformly scattered atoms (hostile to delta coding) must stay correct
  // even if compression degrades.
  Rng rng(17);
  std::vector<float> coords;
  for (int i = 0; i < 3000; ++i) coords.push_back(static_cast<float>(rng.uniform(0.0, 50.0)));
  const auto frame = compress(coords, {}).value();
  const auto out = decompress(frame).value();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    ASSERT_NEAR(out[i], coords[i], 0.0006f);
  }
}

TEST(CoordCodecTest, CorruptPayloadDetected) {
  Rng rng(23);
  const auto coords = random_cluster_coords(rng, 100, 5.0f, 0.2f);
  auto frame = compress(coords, {}).value();
  frame.payload_bits += 64;  // declare more bits than the stream holds
  EXPECT_FALSE(decompress(frame).is_ok());
}

TEST(CoordCodecTest, InvalidHeaderFieldsDetected) {
  Rng rng(29);
  const auto coords = random_cluster_coords(rng, 10, 5.0f, 0.2f);
  auto frame = compress(coords, {}).value();
  auto bad = frame;
  bad.small_bits = 55;
  EXPECT_FALSE(decompress(bad).is_ok());
  bad = frame;
  bad.full_bits[1] = 40;
  EXPECT_FALSE(decompress(bad).is_ok());
  bad = frame;
  bad.precision = -1.0f;
  EXPECT_FALSE(decompress(bad).is_ok());
}

TEST(CoordCodecTest, NegativeCoordinatesRoundTrip) {
  std::vector<float> coords = {-3.5f, -2.25f, -900.0f, -3.51f, -2.24f, -900.01f};
  const auto frame = compress(coords, {}).value();
  const auto out = decompress(frame).value();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    ASSERT_NEAR(out[i], coords[i], 0.0006f);
  }
}

// --- codec v2 (predictive) -----------------------------------------------------

std::vector<std::vector<float>> drifting_frames(Rng& rng, std::size_t atoms, int frames,
                                                float step) {
  std::vector<std::vector<float>> out;
  auto coords = random_cluster_coords(rng, atoms, 6.0f, 0.2f);
  for (int f = 0; f < frames; ++f) {
    out.push_back(coords);
    for (auto& v : coords) {
      v = std::clamp(v + static_cast<float>(rng.normal(0.0, static_cast<double>(step))), 0.0f,
                     6.0f);
    }
  }
  return out;
}

TEST(CoordCodecV2Test, PredictedFramesRoundTripExactly) {
  // Encoder and decoder rotate the same integer-domain context, so decoding
  // a predicted chain reproduces the keyframe-quantized grid exactly.
  Rng rng(31);
  const auto frames = drifting_frames(rng, 500, 8, 0.01f);
  PredictionContext encode_ctx;
  PredictionContext decode_ctx;
  for (const auto& coords : frames) {
    const auto frame = compress_v2(coords, {}, encode_ctx).value();
    const auto out = decompress_v2(frame, decode_ctx).value();
    ASSERT_EQ(out.size(), coords.size());
    for (std::size_t i = 0; i < coords.size(); ++i) {
      ASSERT_NEAR(out[i], coords[i], 0.0006f) << "at coordinate " << i;
    }
  }
}

TEST(CoordCodecV2Test, TemporalCoherenceBeatsIntraCoding) {
  // Small inter-frame motion: the predicted frames must be strictly smaller
  // than what intra (v1) coding produces for the same frames.
  Rng rng(37);
  const auto frames = drifting_frames(rng, 2000, 6, 0.005f);
  PredictionContext ctx;
  std::size_t v1_bytes = 0;
  std::size_t v2_bytes = 0;
  for (const auto& coords : frames) {
    v1_bytes += compress(coords, {}).value().payload_bytes();
    v2_bytes += compress_v2(coords, {}, ctx).value().payload_bytes();
  }
  EXPECT_LT(v2_bytes, v1_bytes) << "v2 " << v2_bytes << " vs v1 " << v1_bytes;
}

TEST(CoordCodecV2Test, FirstFrameIsIntraAndMatchesV1) {
  Rng rng(41);
  const auto coords = random_cluster_coords(rng, 300, 8.0f, 0.2f);
  PredictionContext ctx;
  const auto v2 = compress_v2(coords, {}, ctx).value();
  EXPECT_EQ(v2.predictor, Predictor::kIntra);
  const auto v1 = compress(coords, {}).value();
  EXPECT_EQ(v2.payload, v1.payload);  // keyframes are bit-identical to v1 blocks
  EXPECT_EQ(v2.payload_bits, v1.payload_bits);
}

TEST(CoordCodecV2Test, PredictedFrameWithoutContextRejected) {
  Rng rng(43);
  const auto frames = drifting_frames(rng, 100, 2, 0.005f);
  PredictionContext encode_ctx;
  (void)compress_v2(frames[0], {}, encode_ctx).value();
  const auto predicted = compress_v2(frames[1], {}, encode_ctx).value();
  ASSERT_NE(predicted.predictor, Predictor::kIntra);
  PredictionContext empty;
  EXPECT_FALSE(decompress_v2(predicted, empty).is_ok());  // no usable context
}

TEST(CoordCodecV2Test, ResetForcesKeyframe) {
  Rng rng(47);
  const auto frames = drifting_frames(rng, 100, 3, 0.005f);
  PredictionContext ctx;
  (void)compress_v2(frames[0], {}, ctx).value();
  ctx.reset();
  const auto frame = compress_v2(frames[1], {}, ctx).value();
  EXPECT_EQ(frame.predictor, Predictor::kIntra);
}

// --- golden vectors ------------------------------------------------------------
//
// Canned encoded streams lock both wire formats: encoding a fixed
// deterministic trajectory must reproduce the canned .xtc blob bit for bit,
// and decoding the canned blob must reproduce the canned RAW floats exactly
// (float bits, not tolerances).  After an *intentional* format change,
// regenerate with `ADA_UPDATE_GOLDEN=1 ctest -R Golden` and commit the new
// blobs alongside the change (procedure: docs/performance.md).

std::string golden_path(const char* name) {
  return std::string(ADA_TEST_DATA_DIR) + "/" + name;
}

// The fixed input: 6 frames x 64 atoms of bonded-cluster geometry with small
// inter-frame drift, deterministic for all time (Rng is a fixed algorithm).
std::vector<std::vector<float>> golden_trajectory() {
  Rng rng(424242);
  return drifting_frames(rng, 64, 6, 0.01f);
}

void check_golden(CodecVersion version, const char* xtc_name, const char* raw_name) {
  const auto frames = golden_trajectory();
  // Keyframe every 4 frames: the stream carries two intra frames and four
  // predicted ones (prev and linear both exercised) under v2.
  formats::XtcWriter writer({}, version, 4);
  chem::Box box;
  box.matrix = {6.0f, 0.0f, 0.0f, 0.0f, 6.0f, 0.0f, 0.0f, 0.0f, 6.0f};
  for (std::size_t f = 0; f < frames.size(); ++f) {
    ASSERT_TRUE(writer
                    .add_frame(static_cast<std::uint32_t>(f), 0.002f * static_cast<float>(f), box,
                               frames[f])
                    .is_ok());
  }
  const std::vector<std::uint8_t> encoded = writer.bytes();

  const auto decode_to_raw = [](std::span<const std::uint8_t> stream) {
    formats::RawTrajWriter raw(64);
    formats::XtcReader reader(stream);
    while (true) {
      auto next = reader.next();
      EXPECT_TRUE(next.is_ok());
      if (!next.is_ok() || !next.value().has_value()) break;
      const formats::TrajFrame& frame = *next.value();
      EXPECT_TRUE(raw.add_frame(frame.step, frame.time_ps, frame.box, frame.coords).is_ok());
    }
    return raw.finish();
  };
  const std::vector<std::uint8_t> decoded = decode_to_raw(encoded);

  if (std::getenv("ADA_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(write_file(golden_path(xtc_name), encoded).is_ok());
    ASSERT_TRUE(write_file(golden_path(raw_name), decoded).is_ok());
    GTEST_SKIP() << "golden vectors regenerated; commit tests/data/ and re-run without "
                    "ADA_UPDATE_GOLDEN";
  }

  const auto want_xtc = read_file(golden_path(xtc_name));
  ASSERT_TRUE(want_xtc.is_ok()) << "missing golden vector " << xtc_name
                                << " (regenerate: ADA_UPDATE_GOLDEN=1 ctest -R Golden)";
  EXPECT_EQ(encoded, want_xtc.value()) << "encoder no longer bit-exact for " << xtc_name;

  const auto want_raw = read_file(golden_path(raw_name));
  ASSERT_TRUE(want_raw.is_ok());
  // Fresh encode+decode and canned-blob decode must both hit the canned
  // floats exactly.
  EXPECT_EQ(decoded, want_raw.value()) << "decode drifted for " << xtc_name;
  EXPECT_EQ(decode_to_raw(want_xtc.value()), want_raw.value())
      << "canned " << xtc_name << " no longer decodes to the canned floats";
}

TEST(CodecGoldenTest, V1StreamBitExact) { check_golden(CodecVersion::kV1, "golden_v1.xtc", "golden_v1.raw"); }

TEST(CodecGoldenTest, V2StreamBitExact) { check_golden(CodecVersion::kV2, "golden_v2.xtc", "golden_v2.raw"); }

}  // namespace
}  // namespace ada::codec
