// Unit tests for the XDR (RFC 1832) substrate.
#include <gtest/gtest.h>

#include "xdr/xdr.hpp"

namespace ada::xdr {
namespace {

TEST(XdrTest, RoundTripScalars) {
  XdrWriter w;
  w.put_i32(-12345);
  w.put_u32(0xfeedfaceu);
  w.put_f32(1.25f);
  w.put_f64(-6.5e100);

  XdrReader r(w.bytes());
  EXPECT_EQ(r.get_i32().value(), -12345);
  EXPECT_EQ(r.get_u32().value(), 0xfeedfaceu);
  EXPECT_FLOAT_EQ(r.get_f32().value(), 1.25f);
  EXPECT_DOUBLE_EQ(r.get_f64().value(), -6.5e100);
  EXPECT_TRUE(r.at_end());
}

TEST(XdrTest, IntIsBigEndianOnWire) {
  XdrWriter w;
  w.put_u32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
  EXPECT_EQ(w.bytes()[2], 0x03);
  EXPECT_EQ(w.bytes()[3], 0x04);
}

TEST(XdrTest, OpaquePadsToFourBytes) {
  XdrWriter w;
  const std::uint8_t payload[5] = {1, 2, 3, 4, 5};
  w.put_opaque(payload);
  // 4 (length) + 5 (payload) + 3 (padding) = 12.
  EXPECT_EQ(w.size(), 12u);
  EXPECT_EQ(w.bytes()[11], 0u);

  XdrReader r(w.bytes());
  const auto out = r.get_opaque().value();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4], 5u);
  EXPECT_TRUE(r.at_end());
}

TEST(XdrTest, FixedOpaqueHasNoLengthPrefix) {
  XdrWriter w;
  const std::uint8_t payload[2] = {9, 8};
  w.put_fixed_opaque(payload);
  EXPECT_EQ(w.size(), 4u);  // 2 payload + 2 padding

  XdrReader r(w.bytes());
  const auto out = r.get_fixed_opaque(2).value();
  EXPECT_EQ(out[0], 9u);
  EXPECT_TRUE(r.at_end());
}

TEST(XdrTest, StringRoundTrip) {
  XdrWriter w;
  w.put_string("bar.xtc");
  XdrReader r(w.bytes());
  EXPECT_EQ(r.get_string().value(), "bar.xtc");
}

TEST(XdrTest, EmptyOpaqueRoundTrip) {
  XdrWriter w;
  w.put_opaque({});
  EXPECT_EQ(w.size(), 4u);
  XdrReader r(w.bytes());
  EXPECT_TRUE(r.get_opaque().value().empty());
}

TEST(XdrTest, TruncatedStreamIsCorruptData) {
  XdrWriter w;
  w.put_u32(7);
  XdrReader r(std::span(w.bytes()).subspan(0, 2));
  const auto result = r.get_u32();
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCorruptData);
}

TEST(XdrTest, TruncatedOpaqueBodyIsError) {
  XdrWriter w;
  const std::uint8_t payload[8] = {};
  w.put_opaque(payload);
  XdrReader r(std::span(w.bytes()).subspan(0, 6));  // length says 8, only 2 present
  EXPECT_FALSE(r.get_opaque().is_ok());
}

TEST(XdrTest, NonzeroPaddingRejected) {
  XdrWriter w;
  const std::uint8_t payload[3] = {1, 2, 3};
  w.put_opaque(payload);
  auto bytes = w.take();
  bytes[7] = 0xff;  // corrupt the padding byte
  XdrReader r(bytes);
  const auto result = r.get_opaque();
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCorruptData);
}

TEST(XdrTest, PaddingForValues) {
  EXPECT_EQ(padding_for(0), 0u);
  EXPECT_EQ(padding_for(1), 3u);
  EXPECT_EQ(padding_for(2), 2u);
  EXPECT_EQ(padding_for(3), 1u);
  EXPECT_EQ(padding_for(4), 0u);
}

TEST(XdrTest, SequentialMixedItems) {
  XdrWriter w;
  for (int i = 0; i < 100; ++i) {
    w.put_i32(i * 3 - 50);
    w.put_f32(static_cast<float>(i) * 0.5f);
  }
  XdrReader r(w.bytes());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.get_i32().value(), i * 3 - 50);
    EXPECT_FLOAT_EQ(r.get_f32().value(), static_cast<float>(i) * 0.5f);
  }
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace ada::xdr
