// Scatter-gather retrieval suite (`ctest -L check-sg`).
//
// The contract under test: a parallel retrieve (read_threads > 1) returns
// BYTE-IDENTICAL results to the serial loop for every thread count, queue
// depth, completion order, cache state, and failure pattern -- and the DES
// plane's per-server admission window scales the way the bench claims.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "ada/indexer.hpp"
#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "ada/vfs.hpp"
#include "common/admission.hpp"
#include "common/faults.hpp"
#include "platform/pipeline.hpp"
#include "pvfs/pvfs.hpp"
#include "pvfs/striping.hpp"
#include "storage/device.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::core {
namespace {

namespace fs = std::filesystem;

// --- AdmissionWindow -----------------------------------------------------------------

TEST(AdmissionWindowTest, DepthZeroNeverBlocks) {
  AdmissionWindow window(/*keys=*/2, /*depth=*/0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(window.acquire(0), 0u);  // no release: unbounded is a no-op
  }
}

TEST(AdmissionWindowTest, BlocksAtDepthUntilRelease) {
  AdmissionWindow window(/*keys=*/1, /*depth=*/1);
  ASSERT_EQ(window.acquire(0), 0u);
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    const std::uint64_t waits = window.acquire(0);
    EXPECT_GE(waits, 1u);  // it had to wait for the release
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load()) << "second acquire must block at depth 1";
  window.release(0);
  blocked.join();
  EXPECT_TRUE(acquired.load());
  window.release(0);
}

TEST(AdmissionWindowTest, KeysHaveIndependentBudgets) {
  AdmissionWindow window(/*keys=*/2, /*depth=*/1);
  EXPECT_EQ(window.acquire(0), 0u);
  EXPECT_EQ(window.acquire(1), 0u);  // key 1 unaffected by key 0's slot
  window.release(0);
  window.release(1);
}

// --- middleware differential ---------------------------------------------------------

/// Disarm every fault site on scope exit so a failing ASSERT can't leak an
/// armed schedule into the next test.
struct DisarmGuard {
  ~DisarmGuard() { fault::Injector::global().disarm_all(); }
};

class ScatterGatherTest : public testing::Test {
 protected:
  static constexpr std::uint32_t kFrames = 17;  // chunks of 3: extents 3,3,3,3,3,2

  void SetUp() override {
    root_ = testing::TempDir() + "/ada_sg_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    fs::remove_all(root_);
    system_ = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
    serial_ = open_ada(/*read_threads=*/0, /*queue_depth=*/4, /*cache_bytes=*/0);

    // Streamed ingest with small chunks: every chunk flushes one dropping
    // per tag, so each tag's subset spans six extents -- the multi-extent
    // shape the scatter-gather engine fans over.
    const LabelMap labels = categorize_protein_misc(system_);
    auto stream = serial_->begin_stream(labels, "traj.xtc", /*chunk_frames=*/3);
    ASSERT_TRUE(stream.is_ok()) << stream.error().to_string();
    workload::TrajectoryGenerator gen(system_, workload::DynamicsSpec{});
    for (std::uint32_t f = 0; f < kFrames; ++f) {
      const auto frame = gen.next_frame();
      ASSERT_TRUE(stream.value()
                      .add_frame(gen.current_step(), gen.current_time_ps(), system_.box(), frame)
                      .is_ok());
    }
    ASSERT_TRUE(stream.value().finish().is_ok());

    const auto tags = serial_->tags("traj.xtc");
    ASSERT_TRUE(tags.is_ok());
    tags_ = tags.value();
    ASSERT_GE(tags_.size(), 2u);
    for (const Tag& tag : tags_) {
      reference_[tag] = serial_->query("traj.xtc", tag).value();
    }
  }
  void TearDown() override { fs::remove_all(root_); }

  std::unique_ptr<Ada> open_ada(unsigned read_threads, unsigned queue_depth,
                                std::uint64_t cache_bytes) {
    AdaConfig config;
    config.placement = PlacementPolicy::active_on_ssd(0, 1);
    config.read_threads = read_threads;
    config.read_queue_depth = queue_depth;
    config.cache_bytes = cache_bytes;
    return std::make_unique<Ada>(
        plfs::PlfsMount::open({{"ssd", root_ + "/ssd"}, {"hdd", root_ + "/hdd"}}).value(),
        config);
  }

  void expect_matches_reference(Ada& ada, const std::string& context) {
    for (const Tag& tag : tags_) {
      const auto got = ada.query("traj.xtc", tag);
      ASSERT_TRUE(got.is_ok()) << context << ": " << got.error().to_string();
      EXPECT_EQ(got.value(), reference_.at(tag)) << context << " tag " << tag;
    }
  }

  std::string root_;
  chem::System system_;
  std::unique_ptr<Ada> serial_;
  std::vector<Tag> tags_;
  std::map<Tag, std::vector<std::uint8_t>> reference_;
};

TEST_F(ScatterGatherTest, ParallelMatchesSerialAcrossMatrix) {
  for (const unsigned threads : {0u, 1u, 2u, 4u, 8u}) {
    for (const unsigned depth : {0u, 1u, 2u, 4u}) {
      auto ada = open_ada(threads, depth, /*cache_bytes=*/0);
      expect_matches_reference(*ada, "threads=" + std::to_string(threads) +
                                         " depth=" + std::to_string(depth));
    }
  }
}

TEST_F(ScatterGatherTest, AdversarialCompletionOrderStaysOrdered) {
  // Random per-read delays scramble worker completion order; the ordered
  // merge must still assemble extents in logical order, every round.
  DisarmGuard guard;
  ASSERT_TRUE(
      fault::Injector::global().arm_spec("plfs.read_dropping=delay:0.002:0.5").is_ok());
  auto ada = open_ada(/*read_threads=*/4, /*queue_depth=*/2, /*cache_bytes=*/0);
  for (int round = 0; round < 4; ++round) {
    expect_matches_reference(*ada, "adversarial round " + std::to_string(round));
  }
}

TEST_F(ScatterGatherTest, FirstLogicalErrorWinsLikeSerial) {
  // Break two extents; serial stops at the earliest broken one in logical
  // order, and the parallel merge must surface that SAME error even though
  // a later extent may fail first on the wall clock.
  const auto locations = Indexer(serial_->mount()).locate("traj.xtc", tags_[0]).value();
  ASSERT_GE(locations.size(), 4u);
  fs::remove(locations[3].host_path);
  fs::remove(locations[1].host_path);

  const auto serial_result = serial_->query("traj.xtc", tags_[0]);
  ASSERT_FALSE(serial_result.is_ok());
  auto parallel = open_ada(/*read_threads=*/4, /*queue_depth=*/2, /*cache_bytes=*/0);
  const auto parallel_result = parallel->query("traj.xtc", tags_[0]);
  ASSERT_FALSE(parallel_result.is_ok());
  EXPECT_EQ(parallel_result.error().to_string(), serial_result.error().to_string());
}

TEST_F(ScatterGatherTest, RangeFastPathMatchesSerial) {
  auto parallel = open_ada(/*read_threads=*/4, /*queue_depth=*/4, /*cache_bytes=*/0);
  const FrameRange ranges[] = {{0, kFrames, 1}, {2, 11, 2}, {5, 6, 1}, {0, kFrames, 3}};
  for (const Tag& tag : tags_) {
    for (const FrameRange& range : ranges) {
      const auto want = serial_->query("traj.xtc", tag, range);
      const auto got = parallel->query("traj.xtc", tag, range);
      ASSERT_TRUE(want.is_ok()) << want.error().to_string();
      ASSERT_TRUE(got.is_ok()) << got.error().to_string();
      EXPECT_EQ(got.value(), want.value())
          << "range [" << range.begin << "," << range.end << ") stride " << range.stride
          << " tag " << tag;
    }
  }
}

TEST_F(ScatterGatherTest, CacheArmedDoubleReadStaysIdentical) {
  // First read fills the subset cache through the parallel path; the second
  // is a cache hit.  Both must equal the uncached serial bytes.
  auto parallel = open_ada(/*read_threads=*/4, /*queue_depth=*/4, /*cache_bytes=*/64u << 20);
  expect_matches_reference(*parallel, "cache fill");
  expect_matches_reference(*parallel, "cache hit");
}

TEST_F(ScatterGatherTest, VfsUntaggedFanoutMatchesSerial) {
  VfsShim serial_shim(*serial_, root_ + "/host_s");
  auto parallel = open_ada(/*read_threads=*/4, /*queue_depth=*/4, /*cache_bytes=*/0);
  VfsShim parallel_shim(*parallel, root_ + "/host_p");
  const auto want = serial_shim.read("traj.xtc", "vmd");
  const auto got = parallel_shim.read("traj.xtc", "vmd");
  ASSERT_TRUE(want.is_ok()) << want.error().to_string();
  ASSERT_TRUE(got.is_ok()) << got.error().to_string();
  EXPECT_EQ(got.value(), want.value());
}

TEST_F(ScatterGatherTest, DegradedQueryServesSurvivorsUnderParallelReads) {
  // A downed extent behind one tag: the degraded read must flag that tag
  // and serve the other tags' bytes unchanged through the parallel path.
  const auto locations = Indexer(serial_->mount()).locate("traj.xtc", tags_[0]).value();
  ASSERT_FALSE(locations.empty());
  fs::remove(locations[0].host_path);

  auto parallel = open_ada(/*read_threads=*/4, /*queue_depth=*/2, /*cache_bytes=*/0);
  const auto partial = parallel->query_degraded("traj.xtc");
  ASSERT_TRUE(partial.is_ok()) << partial.error().to_string();
  EXPECT_TRUE(partial.value().partial());
  ASSERT_EQ(partial.value().failed.size(), 1u);
  EXPECT_EQ(partial.value().failed[0].tag, tags_[0]);
  for (const Tag& tag : tags_) {
    if (tag == tags_[0]) continue;
    EXPECT_EQ(partial.value().subsets.at(tag), reference_.at(tag)) << "survivor tag " << tag;
  }
}

TEST_F(ScatterGatherTest, StressConcurrentQueriesStayIdentical) {
  // Many application threads querying one parallel middleware at once: the
  // shared pool, admission windows, and block cache must stay race-free
  // (run under TSan via the sanitizer build).
  auto parallel = open_ada(/*read_threads=*/4, /*queue_depth=*/2, /*cache_bytes=*/8u << 20);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        for (const Tag& tag : tags_) {
          const auto got = parallel->query("traj.xtc", tag);
          if (!got.is_ok() || got.value() != reference_.at(tag)) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- DES plane -----------------------------------------------------------------------

double sim_read_seconds(unsigned servers, unsigned queue_depth, double extent_bytes) {
  platform::ClusterConfig cluster;
  cluster.compute_nodes = 1;
  cluster.hdd_storage_nodes = servers;
  cluster.ssd_storage_nodes = 1;
  platform::ClusterReadSpec spec;
  spec.reads = {platform::ClusterRead{platform::ClusterRead::Instance::kHdd, 16.0 * 1024 * 1024}};
  spec.sg_extent_bytes = extent_bytes;
  spec.sg_queue_depth = queue_depth;
  return platform::simulate_cluster_read(cluster, spec).seconds;
}

constexpr double kExtent = 512.0 * 1024;

TEST(ScatterGatherSimTest, ServerScalingIsMonotone) {
  const double t1 = sim_read_seconds(1, 4, kExtent);
  const double t2 = sim_read_seconds(2, 4, kExtent);
  const double t4 = sim_read_seconds(4, 4, kExtent);
  const double t9 = sim_read_seconds(9, 4, kExtent);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t4);
  EXPECT_GT(t4, t9);
  EXPECT_GT(t1 / t9, 4.0) << "nine HDD servers should beat one by well over 4x";
}

TEST(ScatterGatherSimTest, DeeperQueuesNeverSlower) {
  const double unbounded = sim_read_seconds(9, 0, kExtent);
  double previous = sim_read_seconds(9, 1, kExtent);
  for (const unsigned depth : {2u, 4u, 8u, 16u}) {
    const double seconds = sim_read_seconds(9, depth, kExtent);
    EXPECT_LE(seconds, previous + 1e-9) << "depth " << depth;
    previous = seconds;
  }
  EXPECT_GE(previous, unbounded - 1e-9) << "unbounded is the floor";
}

TEST(ScatterGatherSimTest, OneExtentPerServerReproducesReadFile) {
  // read_extents with each server's whole share as one extent at unbounded
  // depth must replay read_file's exact event schedule.
  sim::Simulator simulator;
  sim::FlowNetwork network(simulator);
  net::Fabric fabric(simulator, network, net::FabricSpec{4.5e9, 40e9, 2e-6}, /*node_count=*/4);
  const std::vector<pvfs::IoServer> servers = {{1, storage::DeviceSpec::wd_hdd_1tb(), 2},
                                               {2, storage::DeviceSpec::wd_hdd_1tb(), 2},
                                               {3, storage::DeviceSpec::wd_hdd_1tb(), 2}};
  const double bytes = 48.0 * 1024 * 1024;

  pvfs::PvfsModel whole(simulator, fabric, "whole", servers, 1);
  double whole_done = -1;
  whole.read_file(bytes, /*client=*/0, [&] { whole_done = simulator.now(); });
  simulator.run();

  sim::Simulator simulator2;
  sim::FlowNetwork network2(simulator2);
  net::Fabric fabric2(simulator2, network2, net::FabricSpec{4.5e9, 40e9, 2e-6}, 4);
  pvfs::PvfsModel sg(simulator2, fabric2, "sg", servers, 1);
  const auto shares = sg.layout().distribution(static_cast<std::uint64_t>(bytes));
  std::vector<pvfs::ExtentRead> extents;
  for (std::uint32_t s = 0; s < shares.size(); ++s) {
    if (shares[s] != 0) {
      extents.push_back(pvfs::ExtentRead{static_cast<double>(shares[s]), s});
    }
  }
  double sg_done = -1;
  sg.read_extents(extents, /*client=*/0, pvfs::SgParams{0},
                  [&](const Status&) { sg_done = simulator2.now(); });
  simulator2.run();

  ASSERT_GT(whole_done, 0.0);
  EXPECT_DOUBLE_EQ(sg_done, whole_done);
}

TEST(ScatterGatherSimTest, DownedServerFailsReadAfterRetries) {
  DisarmGuard guard;
  ASSERT_TRUE(fault::Injector::global()
                  .arm_spec("pvfs.stripe_read.s1=down:1:1000000000")
                  .is_ok());
  platform::ClusterConfig cluster;
  cluster.compute_nodes = 1;
  cluster.hdd_storage_nodes = 9;
  cluster.ssd_storage_nodes = 1;
  platform::ClusterReadSpec spec;
  spec.reads = {platform::ClusterRead{platform::ClusterRead::Instance::kHdd, 16.0 * 1024 * 1024}};
  spec.sg_extent_bytes = kExtent;
  spec.sg_queue_depth = 4;
  const auto outcome = platform::simulate_cluster_read(cluster, spec);
  EXPECT_EQ(outcome.io_errors, 1u) << "the op fails for good once retries are exhausted";
  EXPECT_GT(outcome.seconds, 0.0);
}

}  // namespace
}  // namespace ada::core
