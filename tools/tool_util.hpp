// Minimal flag parsing shared by the command-line tools.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/faults.hpp"
#include "common/result.hpp"
#include "common/strings.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"

namespace ada::tools {

/// Parses "--flag value", "--flag=value" pairs and bare positional arguments.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string key = arg.substr(2);
        const auto eq = key.find('=');
        if (eq != std::string::npos) {
          flags_[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[key] = argv[++i];
        } else {
          flags_[key] = "true";  // boolean flag
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool has(const std::string& key) const { return flags_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  long long get_int(const std::string& key, long long fallback) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    const long long v = parse_int(it->second);
    return v < 0 ? fallback : v;
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Shared --metrics[=json] handling.  Call metrics_begin before the
/// instrumented work (it turns collection on) and metrics_end after it;
/// "--metrics" prints aligned tables, "--metrics=json" the stable JSON
/// document (docs/observability.md).
inline void metrics_begin(const Args& args) {
  if (!args.has("metrics")) return;
  obs::reset_all();
  obs::set_enabled(true);
}

inline void metrics_end(const Args& args, std::ostream& os = std::cout) {
  if (!args.has("metrics")) return;
  const obs::Snapshot snapshot = obs::capture();
  if (args.get("metrics") == "json") {
    os << obs::to_json(snapshot) << "\n";
  } else if (args.get("metrics") == "openmetrics") {
    os << obs::to_openmetrics(snapshot);
  } else {
    obs::print_tables(snapshot, os);
  }
}

/// True when the human-readable report should move to stderr so stdout
/// carries nothing but the machine-readable document.
inline bool metrics_json_only(const Args& args) {
  return args.get("metrics") == "json" || args.get("metrics") == "openmetrics";
}

/// Shared --telemetry=FILE[,interval_ms] handling: starts the background
/// metrics sampler appending a JSONL time series (docs/observability.md).
/// Implies metrics collection.  Call telemetry_end after the instrumented
/// work and *before* metrics_end, so the final telemetry line reconciles
/// with the final `--metrics=json` dump.
inline void telemetry_begin(const Args& args) {
  if (!args.has("telemetry")) return;
  const std::string spec = args.get("telemetry");
  if (spec.empty() || spec == "true") {
    std::fprintf(stderr, "error: --telemetry needs a file name (--telemetry=ts.jsonl[,250])\n");
    std::exit(2);
  }
  obs::set_enabled(true);
  const Status status = obs::start_telemetry(spec);
  if (!status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", status.error().to_string().c_str());
    std::exit(2);
  }
}

inline void telemetry_end(const Args& args) {
  if (!args.has("telemetry")) return;
  obs::stop_telemetry();
}

/// Shared --profile=FILE[,interval_us] handling: starts the span-attributed
/// sampling profiler; profile_end writes the folded-stack (flamegraph)
/// file.  Implies metrics collection (spans only record while obs is on).
inline void profile_begin(const Args& args) {
  if (!args.has("profile")) return;
  const std::string spec = args.get("profile");
  if (spec.empty() || spec == "true") {
    std::fprintf(stderr, "error: --profile needs a file name (--profile=out.folded[,1000])\n");
    std::exit(2);
  }
  obs::set_enabled(true);
  const Status status = obs::start_profiler(spec);
  if (!status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", status.error().to_string().c_str());
    std::exit(2);
  }
}

inline void profile_end(const Args& args) {
  if (!args.has("profile")) return;
  const Status status = obs::stop_profiler();
  if (!status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", status.error().to_string().c_str());
    std::exit(1);
  }
}

/// Shared --trace=<file> handling.  Call trace_begin before the instrumented
/// work (it turns the event recorder on) and trace_end after it to write the
/// Chrome trace JSON, loadable in Perfetto / chrome://tracing and analyzable
/// with ada-trace.
inline void trace_begin(const Args& args) {
  if (!args.has("trace")) return;
  obs::reset_events();
  obs::set_trace_enabled(true);
}

inline void trace_end(const Args& args) {
  if (!args.has("trace")) return;
  obs::set_trace_enabled(false);
  const std::string path = args.get("trace");
  if (path.empty() || path == "true") {
    std::fprintf(stderr, "error: --trace needs a file name (--trace=out.json)\n");
    std::exit(2);
  }
  const Status status = obs::write_chrome_json(path);
  if (!status.is_ok()) {
    std::fprintf(stderr, "error: cannot write trace %s: %s\n", path.c_str(),
                 status.error().to_string().c_str());
    std::exit(1);
  }
  if (const std::uint64_t dropped = obs::events_dropped(); dropped != 0) {
    std::fprintf(stderr, "note: trace ring dropped %llu oldest events\n",
                 static_cast<unsigned long long>(dropped));
  }
}

/// Shared --faults=site=spec[,site=spec...] handling: arms the process-global
/// fault injector before the instrumented work.  Spec grammar is
/// docs/robustness.md (nth:<k>, every:<k>, prob:<p>[:<seed>], down:<a>:<b>,
/// torn:<f>[:<k>], corrupt[:<k>], delay:<s>[:<p>]).  Faults stay armed for
/// the life of the process -- these tools run one request and exit.
inline void faults_begin(const Args& args) {
  if (!args.has("faults")) return;
  const std::string spec = args.get("faults");
  if (spec.empty() || spec == "true") {
    std::fprintf(stderr, "error: --faults needs site=spec[,site=spec...]\n");
    std::exit(2);
  }
  const Status status = fault::Injector::global().arm_spec(spec);
  if (!status.is_ok()) {
    std::fprintf(stderr, "error: bad --faults spec: %s\n", status.error().to_string().c_str());
    std::exit(2);
  }
}

/// Print `usage`, then exit with failure.
[[noreturn]] inline void die_usage(const char* usage) {
  std::fprintf(stderr, "%s", usage);
  std::exit(2);
}

/// Unwrap or die with the error message.
template <typename T>
T must(Result<T> result, const char* what) {
  if (!result.is_ok()) {
    std::fprintf(stderr, "error: %s: %s\n", what, result.error().to_string().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void must_ok(const Status& status, const char* what) {
  if (!status.is_ok()) {
    std::fprintf(stderr, "error: %s: %s\n", what, status.error().to_string().c_str());
    std::exit(1);
  }
}

}  // namespace ada::tools
