// ada-ingest: run ADA's write-path pre-processing on a (.pdb, .xtc) pair.
//
//   ada-ingest --pdb system.pdb --xtc traj.xtc --ssd /mnt/ssd --hdd /mnt/hdd
//              [--name bar.xtc] [--schema rules.txt] [--keep-original]
//              [--threads N] [--metrics[=json]] [--trace out.json]
//
// Categorizes with Algorithm 1 (protein/MISC by default, or a schema file),
// decompresses once, splits into tagged subsets, and dispatches them to the
// two backend file systems.  --threads=N fans frame decode out to the
// shared work-stealing pool (0 = every pool worker, 1 = serial; the output
// images are byte-identical either way).  With --metrics, prints the observability
// report (per-stage timers, per-tag byte counters) after the ingest;
// --metrics=json emits the stable JSON document on stdout (the summary
// moves to stderr).  With --trace=<file>, records a request timeline and
// writes Chrome trace JSON for Perfetto / ada-trace.  See
// docs/observability.md.
// With --stream, the .xtc is ingested frame by frame through the live
// streaming path (ada/ingest_stream.hpp): every --chunk-frames frames the
// chunk is flushed and the sealed-frame watermark advances, so concurrent
// ada-query calls see a growing readable prefix while this process still
// runs.  --frame-delay-ms paces the frames (simulating a running MD
// producer); --retain-bytes arms windowed retention.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "ada/middleware.hpp"
#include "ada/schema_config.hpp"
#include "common/binary_io.hpp"
#include "common/units.hpp"
#include "formats/pdb.hpp"
#include "formats/xtc_file.hpp"
#include "vmd/mol.hpp"
#include "tools/tool_util.hpp"

using namespace ada;

namespace {
constexpr const char* kUsage =
    "usage: ada-ingest --pdb <file> --xtc <file> --ssd <dir> --hdd <dir>\n"
    "                  [--name <logical>] [--schema <rules file>] [--keep-original]\n"
    "                  [--threads <n>] [--metrics[=json|openmetrics]] [--trace <out.json>]\n"
    "                  [--telemetry <ts.jsonl[,interval_ms]>] [--profile <out.folded[,interval_us]>]\n"
    "                  [--faults site=spec[,site=spec...]]\n"
    "                  [--stream [--chunk-frames <n>] [--frame-delay-ms <ms>]\n"
    "                            [--retain-bytes <b>]]\n";
}

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("pdb") || !args.has("xtc") || !args.has("ssd") || !args.has("hdd")) {
    tools::die_usage(kUsage);
  }
  tools::metrics_begin(args);
  tools::telemetry_begin(args);
  tools::profile_begin(args);
  tools::trace_begin(args);
  tools::faults_begin(args);
  std::FILE* report_out = tools::metrics_json_only(args) ? stderr : stdout;

  const auto structure = tools::must(formats::read_pdb_file(args.get("pdb")), "read pdb");
  const auto xtc = tools::must(read_file(args.get("xtc")), "read xtc");
  const std::string logical =
      args.get("name", vmd::logical_name_of(args.get("xtc")));

  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  config.keep_original = args.has("keep-original");
  config.threads = static_cast<unsigned>(args.get_int("threads", 1));
  config.retain_bytes = static_cast<std::uint64_t>(args.get_int("retain-bytes", 0));
  core::Ada middleware(
      tools::must(plfs::PlfsMount::open(
                      {{"ssd-fs", args.get("ssd")}, {"hdd-fs", args.get("hdd")}}),
                  "open backends"),
      config);

  core::LabelMap labels;
  if (args.has("schema")) {
    const auto schema_bytes = tools::must(read_file(args.get("schema")), "read schema");
    const auto schema = tools::must(
        core::CategorizerSchema::parse(std::string(schema_bytes.begin(), schema_bytes.end())),
        "parse schema");
    labels = schema.categorize(structure);
  } else {
    labels = core::categorize_protein_misc(structure);
  }

  if (args.has("stream")) {
    const auto chunk_frames = static_cast<std::uint32_t>(args.get_int("chunk-frames", 64));
    const long long delay_ms = args.get_int("frame-delay-ms", 0);
    auto stream = tools::must(middleware.begin_stream(labels, logical, chunk_frames),
                              "begin stream");
    formats::XtcReader reader(xtc);
    while (true) {
      auto frame = tools::must(reader.next(), "decode xtc frame");
      if (!frame.has_value()) break;
      tools::must_ok(stream.add_frame(frame->step, frame->time_ps, frame->box, frame->coords),
                     "stream frame");
      if (delay_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    const auto stream_report = tools::must(stream.finish(), "finish stream");
    std::fprintf(report_out,
                 "streamed %s: %u frames in %u chunks, watermark %llu, floor %llu"
                 " (%llu chunks dropped by retention)\n",
                 logical.c_str(), stream_report.frames, stream_report.chunks,
                 static_cast<unsigned long long>(stream_report.sealed_frames),
                 static_cast<unsigned long long>(stream_report.floor_frames),
                 static_cast<unsigned long long>(stream_report.retention_drops));
    tools::trace_end(args);
    tools::telemetry_end(args);
    tools::profile_end(args);
    tools::metrics_end(args);
    return 0;
  }

  const auto report =
      tools::must(middleware.ingest_with_labels(labels, xtc, logical), "ingest");
  std::fprintf(report_out, "ingested %s: %u frames, %u atoms, %s compressed input\n",
               logical.c_str(), report.preprocess.frames, report.preprocess.atoms,
               format_bytes(static_cast<double>(report.preprocess.compressed_bytes)).c_str());
  for (const auto& [tag, bytes] : report.preprocess.subset_bytes) {
    std::fprintf(report_out, "  tag %-8s %8llu atoms  %10s -> backend %u\n", tag.c_str(),
                 static_cast<unsigned long long>(report.preprocess.subset_atoms.at(tag)),
                 format_bytes(static_cast<double>(bytes)).c_str(),
                 report.backend_of_tag.at(tag));
  }
  std::fprintf(report_out, "decompression took %.3f s on this storage node (paid once)\n",
               report.preprocess.decompress_wall_seconds);
  tools::trace_end(args);
  tools::telemetry_end(args);
  tools::profile_end(args);
  tools::metrics_end(args);
  return 0;
}
