#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the fast test tier, then smoke the
# end-to-end tracing pipeline (ada-gen -> ada-ingest --trace -> ada-query
# --trace -> ada-trace).  Exits non-zero on the first failure.
#
# Usage: tools/run_tier1.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure + build =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j

echo "== unit tier (ctest -L unit) =="
ctest --test-dir "$BUILD_DIR" -L unit --output-on-failure -j "$(nproc)"

echo "== tracing tier (ctest -L check-trace) =="
ctest --test-dir "$BUILD_DIR" -L check-trace --output-on-failure -j "$(nproc)"

echo "== frame-parallel ingest (ThreadPool + ParallelIngest suites) =="
ctest --test-dir "$BUILD_DIR" -R 'ThreadPool|ParallelIngest' --output-on-failure -j "$(nproc)"

echo "== perf tier smoke (ctest -L check-perf) =="
ctest --test-dir "$BUILD_DIR" -L check-perf --output-on-failure

echo "== chaos tier (ctest -L chaos, fast seed budget) =="
ADA_CHAOS_SEEDS=5 ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure -j "$(nproc)"

echo "== query-cache tier (ctest -L check-cache) =="
ADA_CHAOS_SEEDS=5 ctest --test-dir "$BUILD_DIR" -L check-cache --output-on-failure -j "$(nproc)"

echo "== codec/frame-range tier (ctest -L check-range) =="
ctest --test-dir "$BUILD_DIR" -L check-range --output-on-failure -j "$(nproc)"

echo "== telemetry tier (ctest -L check-telemetry) =="
ctest --test-dir "$BUILD_DIR" -L check-telemetry --output-on-failure -j "$(nproc)"

echo "== scatter-gather tier (ctest -L check-sg) =="
ctest --test-dir "$BUILD_DIR" -L check-sg --output-on-failure -j "$(nproc)"

echo "== streaming tier (ctest -L check-stream) =="
ctest --test-dir "$BUILD_DIR" -L check-stream --output-on-failure -j "$(nproc)"

echo "== serve tier (ctest -L check-serve) =="
ctest --test-dir "$BUILD_DIR" -L check-serve --output-on-failure -j "$(nproc)"

echo "== tracing smoke: gen -> ingest -> query -> ada-trace =="
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$BUILD_DIR/tools/ada-gen" --out "$WORK/gen" --size tiny --frames 4 >/dev/null
"$BUILD_DIR/tools/ada-ingest" --pdb "$WORK/gen/system.pdb" --xtc "$WORK/gen/traj.xtc" \
    --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc --threads 2 \
    --trace "$WORK/ingest_trace.json" >/dev/null
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc \
    --tag p --trace "$WORK/query_trace.json" --out "$WORK/protein.raw" >/dev/null

for trace in "$WORK/ingest_trace.json" "$WORK/query_trace.json"; do
    [ -s "$trace" ] || { echo "FAIL: $trace missing or empty" >&2; exit 1; }
    grep -q '"traceEvents"' "$trace" || { echo "FAIL: $trace is not Chrome trace JSON" >&2; exit 1; }
done

REPORT="$("$BUILD_DIR/tools/ada-trace" "$WORK/ingest_trace.json" "$WORK/query_trace.json")"
echo "$REPORT" | grep -q 'critical path' || {
    echo "FAIL: ada-trace reported no critical path" >&2
    echo "$REPORT" >&2
    exit 1
}

echo "== cache differential smoke: --cache serves byte-identical subsets =="
# Same query with the subset cache armed (64 MiB): the output file must be
# byte-identical to the uncached read above.
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc \
    --tag p --cache 67108864 --out "$WORK/protein_cached.raw" >/dev/null
cmp "$WORK/protein.raw" "$WORK/protein_cached.raw" || {
    echo "FAIL: cached query served different bytes than the uncached query" >&2
    exit 1
}

echo "== frame-range smoke: --frames/--stride slice the tagged subset =="
# A whole-range query is the same canonical image the plain query wrote
# (batch ingest stores one extent per tag, so both are single-segment RAW).
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc \
    --tag p --frames 0: --out "$WORK/range_all.raw" >/dev/null
cmp "$WORK/protein.raw" "$WORK/range_all.raw" || {
    echo "FAIL: --frames 0: differs from the plain query" >&2
    exit 1
}
# A strided sub-range reports the right frame count (frames 1 and 3 of 4).
RANGE_OUT="$("$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc \
    --tag p --frames 1:4 --stride 2)"
echo "$RANGE_OUT" | grep -q '2 frames' || {
    echo "FAIL: --frames 1:4 --stride 2 should serve 2 frames" >&2
    echo "$RANGE_OUT" >&2
    exit 1
}

echo "== telemetry smoke: --telemetry/--profile -> ada-stats render + openmetrics =="
# Re-run the ingest with the telemetry sampler and profiler armed; the JSONL
# series must render and the folded-stack profile must exist.
"$BUILD_DIR/tools/ada-ingest" --pdb "$WORK/gen/system.pdb" --xtc "$WORK/gen/traj.xtc" \
    --ssd "$WORK/ssd2" --hdd "$WORK/hdd2" --name traj.xtc --threads 2 \
    --telemetry "$WORK/ingest_ts.jsonl,50" --profile "$WORK/ingest.folded,200" >/dev/null
[ -s "$WORK/ingest_ts.jsonl" ] || { echo "FAIL: telemetry JSONL missing or empty" >&2; exit 1; }
[ -s "$WORK/ingest.folded" ] || { echo "FAIL: folded profile missing or empty" >&2; exit 1; }
"$BUILD_DIR/tools/ada-stats" render "$WORK/ingest_ts.jsonl" | grep -q 'clock' || {
    echo "FAIL: ada-stats render produced no per-clock summary" >&2
    exit 1
}
# OpenMetrics exposition is well-formed enough to end with the EOF marker.
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd2" --hdd "$WORK/hdd2" --name traj.xtc \
    --tag p --metrics openmetrics | grep -q '^# EOF' || {
    echo "FAIL: --metrics openmetrics did not emit the # EOF terminator" >&2
    exit 1
}
# The perf gate's own negative control: identical files pass, a doctored
# regression fails (exit 1).
"$BUILD_DIR/tools/ada-stats" diff bench/baselines/BENCH_codec.json \
    bench/baselines/BENCH_codec.json --budget=0.05 --higher=v2.ratio >/dev/null || {
    echo "FAIL: ada-stats diff rejected identical files" >&2
    exit 1
}
set +e
"$BUILD_DIR/tools/ada-stats" diff bench/baselines/BENCH_codec.json \
    bench/baselines/BENCH_codec_regressed.json --budget=0.05 --higher=v2.ratio >/dev/null
GATE_EXIT=$?
set -e
[ "$GATE_EXIT" -eq 1 ] || {
    echo "FAIL: ada-stats diff should exit 1 on the regressed fixture, got $GATE_EXIT" >&2
    exit 1
}

echo "== robustness smoke: --faults arming + --degraded partial results =="
# Healthy degraded query serves every tag (exit 0).
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc \
    --degraded >/dev/null
# A transient fault is absorbed by the retry path (still exit 0).
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc \
    --degraded --faults "plfs.read_dropping=nth:1" >/dev/null
# A down backend degrades to an explicit partial result (exit 2), never junk.
set +e
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc \
    --degraded --faults "plfs.read_dropping=down:1:1000" >/dev/null
DEGRADED_EXIT=$?
set -e
[ "$DEGRADED_EXIT" -eq 2 ] || {
    echo "FAIL: degraded query under a down backend should exit 2, got $DEGRADED_EXIT" >&2
    exit 1
}

echo "== scatter-gather smoke: --read-threads byte-identical + degraded exit 2 =="
# Parallel retrieval must serve the same bytes the serial query wrote above.
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc \
    --tag p --read-threads 4 --queue-depth 2 --out "$WORK/protein_sg.raw" >/dev/null
cmp "$WORK/protein.raw" "$WORK/protein_sg.raw" || {
    echo "FAIL: --read-threads 4 served different bytes than the serial query" >&2
    exit 1
}
# A down backend under parallel reads still degrades to an explicit partial
# result (exit 2) -- the scatter-gather merge surfaces the failure, never junk.
set +e
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --name traj.xtc \
    --degraded --read-threads 4 --faults "plfs.read_dropping=down:1:1000" >/dev/null
SG_DEGRADED_EXIT=$?
set -e
[ "$SG_DEGRADED_EXIT" -eq 2 ] || {
    echo "FAIL: parallel degraded query under a down backend should exit 2, got $SG_DEGRADED_EXIT" >&2
    exit 1
}

echo "== streaming smoke: --stream ingest + mid-stream query + --follow differential =="
# A paced streaming ingest in the background; concurrent queries must see a
# growing sealed prefix and a follower must reassemble the exact dataset.
"$BUILD_DIR/tools/ada-gen" --out "$WORK/gen_stream" --size tiny --frames 12 >/dev/null
"$BUILD_DIR/tools/ada-ingest" --pdb "$WORK/gen_stream/system.pdb" --xtc "$WORK/gen_stream/traj.xtc" \
    --ssd "$WORK/ssd3" --hdd "$WORK/hdd3" --name live.xtc \
    --stream --chunk-frames 2 --frame-delay-ms 60 >"$WORK/stream_ingest.log" &
INGEST_PID=$!
# The follower polls until the stream seals; byte-compared against the
# one-shot query below.
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd3" --hdd "$WORK/hdd3" --name live.xtc \
    --tag p --follow --poll-ms 10 --timeout-s 60 --out "$WORK/followed.raw" >/dev/null &
FOLLOW_PID=$!
# Mid-ingest one-shot queries: kNotFound only before the first flush, then
# exit 0 with however much of the prefix is sealed.
MID_OK=0
for _ in $(seq 1 100); do
    if "$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd3" --hdd "$WORK/hdd3" --name live.xtc \
        --tag p >/dev/null 2>&1; then
        MID_OK=1
        break
    fi
    sleep 0.05
done
[ "$MID_OK" -eq 1 ] || {
    echo "FAIL: no mid-stream query ever served the sealed prefix" >&2
    exit 1
}
wait "$INGEST_PID" || { echo "FAIL: streaming ingest failed" >&2; cat "$WORK/stream_ingest.log" >&2; exit 1; }
grep -q 'streamed live.xtc: 12 frames' "$WORK/stream_ingest.log" || {
    echo "FAIL: streaming ingest report missing or wrong" >&2
    cat "$WORK/stream_ingest.log" >&2
    exit 1
}
wait "$FOLLOW_PID" || { echo "FAIL: ada-query --follow did not terminate cleanly" >&2; exit 1; }
"$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd3" --hdd "$WORK/hdd3" --name live.xtc \
    --tag p --frames 0: --out "$WORK/stream_oneshot.raw" >/dev/null
cmp "$WORK/followed.raw" "$WORK/stream_oneshot.raw" || {
    echo "FAIL: --follow reassembly differs from the one-shot query" >&2
    exit 1
}
# The streaming perf gate's own negative control: identical files pass, a
# fixture whose p99 blew the flush-interval bound fails (exit 1).
"$BUILD_DIR/tools/ada-stats" diff bench/baselines/BENCH_stream.json \
    bench/baselines/BENCH_stream.json --budget=0.05 \
    --higher=stream.p99_bounded,stream.correct >/dev/null || {
    echo "FAIL: ada-stats diff rejected identical stream baselines" >&2
    exit 1
}
set +e
"$BUILD_DIR/tools/ada-stats" diff bench/baselines/BENCH_stream.json \
    bench/baselines/BENCH_stream_regressed.json --budget=0.05 \
    --higher=stream.p99_bounded,stream.correct >/dev/null
STREAM_GATE_EXIT=$?
set -e
[ "$STREAM_GATE_EXIT" -eq 1 ] || {
    echo "FAIL: stream gate should exit 1 on the regressed fixture, got $STREAM_GATE_EXIT" >&2
    exit 1
}

echo "== follow flag validation: non-positive --poll-ms/--timeout-s rejected =="
# Each of these is always user error (busy-spin / timeout-before-first-poll):
# the tool must refuse loudly with usage exit 2 instead of running anyway.
for bad_flags in "--poll-ms 0" "--poll-ms -5" "--timeout-s 0" "--timeout-s -1"; do
    set +e
    # shellcheck disable=SC2086
    "$BUILD_DIR/tools/ada-query" --ssd "$WORK/ssd3" --hdd "$WORK/hdd3" --name live.xtc \
        --tag p --follow $bad_flags >/dev/null 2>&1
    FOLLOW_FLAG_EXIT=$?
    set -e
    [ "$FOLLOW_FLAG_EXIT" -eq 2 ] || {
        echo "FAIL: --follow $bad_flags should be rejected with exit 2, got $FOLLOW_FLAG_EXIT" >&2
        exit 1
    }
done

echo "== serve smoke: ada-serve + concurrent spool clients byte-identical =="
# Start the service over the batch dataset, fan three tenants' clients at it
# concurrently, and byte-compare every served subset against the direct
# query from the tracing smoke above.
mkdir "$WORK/spool"
"$BUILD_DIR/tools/ada-serve" --ssd "$WORK/ssd" --hdd "$WORK/hdd" --spool "$WORK/spool" \
    --stop-file "$WORK/spool/stop" --workers 4 --poll-ms 5 >"$WORK/serve.log" &
SERVE_PID=$!
SERVE_CLIENT_PIDS=()
for i in 1 2 3; do
    "$BUILD_DIR/tools/ada-query" --serve-spool "$WORK/spool" --name traj.xtc --tag p \
        --tenant "viz$i" --timeout-s 60 --out "$WORK/served_$i.raw" >/dev/null &
    SERVE_CLIENT_PIDS+=($!)
done
for pid in "${SERVE_CLIENT_PIDS[@]}"; do
    wait "$pid" || { echo "FAIL: serve-spool client $pid failed" >&2; cat "$WORK/serve.log" >&2; exit 1; }
done
for i in 1 2 3; do
    cmp "$WORK/protein.raw" "$WORK/served_$i.raw" || {
        echo "FAIL: served subset $i differs from the direct query" >&2
        exit 1
    }
done
touch "$WORK/spool/stop"
wait "$SERVE_PID" || { echo "FAIL: ada-serve did not shut down cleanly" >&2; cat "$WORK/serve.log" >&2; exit 1; }
grep -q 'served 3 requests' "$WORK/serve.log" || {
    echo "FAIL: ada-serve report missing or wrong" >&2
    cat "$WORK/serve.log" >&2
    exit 1
}
# The serve perf gate's own negative control: identical files pass, a
# fixture with the coalescing/correctness verdicts zeroed fails (exit 1).
"$BUILD_DIR/tools/ada-stats" diff bench/baselines/BENCH_serve.json \
    bench/baselines/BENCH_serve.json --budget=0.05 \
    --higher=serve.correct,serve.coalesce_single_fill >/dev/null || {
    echo "FAIL: ada-stats diff rejected identical serve baselines" >&2
    exit 1
}
set +e
"$BUILD_DIR/tools/ada-stats" diff bench/baselines/BENCH_serve.json \
    bench/baselines/BENCH_serve_regressed.json --budget=0.05 \
    --higher=serve.correct,serve.coalesce_single_fill >/dev/null
SERVE_GATE_EXIT=$?
set -e
[ "$SERVE_GATE_EXIT" -eq 1 ] || {
    echo "FAIL: serve gate should exit 1 on the regressed fixture, got $SERVE_GATE_EXIT" >&2
    exit 1
}

echo "tier-1 gate: OK"
