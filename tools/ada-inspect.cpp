// ada-inspect: look inside an ADA deployment -- containers, indexes, labels,
// and container health (fsck).
//
//   ada-inspect --ssd /mnt/ssd --hdd /mnt/hdd                  # list containers
//   ada-inspect --ssd ... --hdd ... --name bar.xtc             # dump one
//   ada-inspect --ssd ... --hdd ... --name bar.xtc --fsck      # verify
//   ada-inspect --ssd ... --hdd ... --name bar.xtc --repair    # verify + repair
//
// With --metrics, prints the observability report (index/label read
// counters) before exiting; --metrics=json emits the stable JSON document
// on stdout (the report moves to stderr).  See docs/observability.md.
#include <cstdio>
#include <iostream>
#include <string>

#include "ada/label_store.hpp"
#include "ada/middleware.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "plfs/fsck.hpp"
#include "tools/tool_util.hpp"

using namespace ada;

namespace {
constexpr const char* kUsage =
    "usage: ada-inspect --ssd <dir> --hdd <dir> [--name <logical>] [--fsck] [--repair]\n"
    "                   [--metrics[=json|openmetrics]]\n";
}

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("ssd") || !args.has("hdd")) tools::die_usage(kUsage);
  tools::metrics_begin(args);
  std::FILE* report_out = tools::metrics_json_only(args) ? stderr : stdout;
  std::ostream& table_out = tools::metrics_json_only(args) ? std::cerr : std::cout;

  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  core::Ada middleware(
      tools::must(plfs::PlfsMount::open(
                      {{"ssd-fs", args.get("ssd")}, {"hdd-fs", args.get("hdd")}}),
                  "open backends"),
      config);

  if (!args.has("name")) {
    const auto names = tools::must(middleware.mount().list_containers(), "list containers");
    if (names.empty()) {
      std::fprintf(report_out, "no containers\n");
      tools::metrics_end(args);
      return 0;
    }
    for (const auto& name : names) std::fprintf(report_out, "%s\n", name.c_str());
    tools::metrics_end(args);
    return 0;
  }

  const std::string logical = args.get("name");
  const auto records = tools::must(middleware.mount().read_index(logical), "read index");
  Table table({"logical offset", "length", "backend", "label", "dropping"});
  for (const auto& r : records) {
    table.add_row({std::to_string(r.logical_offset), format_bytes(static_cast<double>(r.length)),
                   middleware.mount().backend(r.backend).name, r.label, r.dropping});
  }
  std::fprintf(report_out, "container %s (%zu extents):\n", logical.c_str(), records.size());
  table.print(table_out);

  const auto labels = middleware.labels(logical);
  if (labels.is_ok()) {
    std::fprintf(report_out, "\nlabel file:\n%s", core::encode_label_file(labels.value()).c_str());
  } else {
    std::fprintf(report_out, "\nno label file (%s)\n", labels.error().to_string().c_str());
  }

  if (args.has("fsck") || args.has("repair")) {
    const auto report = tools::must(plfs::verify_container(middleware.mount(), logical), "fsck");
    std::fprintf(report_out, "\nfsck: %s (%zu broken records, %zu orphans, extents %s)\n",
                report.clean() ? "clean" : "NOT CLEAN", report.broken_records.size(),
                report.orphan_droppings.size(),
                report.extents_complete ? "complete" : "INCOMPLETE");
    if (args.has("repair") && !report.clean()) {
      const auto actions =
          tools::must(plfs::repair_container(middleware.mount(), logical), "repair");
      std::fprintf(report_out, "repaired: dropped %zu records, removed %zu orphans\n",
                   actions.records_dropped, actions.orphans_removed);
    }
    tools::metrics_end(args);
    return report.clean() ? 0 : 1;
  }
  tools::metrics_end(args);
  return 0;
}
