// ada-serve: a long-lived multi-tenant query service over one shared Ada.
//
//   ada-serve --ssd /mnt/ssd --hdd /mnt/hdd --spool /run/ada
//             [--workers <n>] [--cache <bytes>] [--read-threads <n>]
//             [--queue-depth <n>] [--queue-cap <n>] [--inflight <n>]
//             [--memory-quota <bytes>] [--quantum <bytes>]
//             [--stop-file <path>] [--idle-timeout-s <s>] [--poll-ms <ms>]
//             [--metrics[=json]]
//
// The service mounts the backends once, arms the subset cache, and serves
// spool-protocol requests (docs/serving.md) dropped into --spool by
// `ada-query --serve-spool` clients: concurrent identical queries coalesce
// into one backend fill, each tenant gets a bounded in-flight window plus
// quotas, and a full tenant queue sheds load with a typed `overloaded`
// verdict instead of queueing without bound.
//
// Shutdown: the service exits cleanly when --stop-file appears (removing it
// on the way out), or after --idle-timeout-s seconds without a single new
// request (0 = wait forever).  In-flight requests finish; unstarted ones
// get an `unavailable` verdict.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "ada/middleware.hpp"
#include "serve/serve.hpp"
#include "serve/spool.hpp"
#include "tools/tool_util.hpp"

using namespace ada;

namespace {
constexpr const char* kUsage =
    "usage: ada-serve --ssd <dir> --hdd <dir> --spool <dir>\n"
    "                 [--workers <n>] [--cache <bytes>] [--read-threads <n>]\n"
    "                 [--queue-depth <n>] [--queue-cap <n>] [--inflight <n>]\n"
    "                 [--memory-quota <bytes>] [--quantum <bytes>]\n"
    "                 [--stop-file <path>] [--idle-timeout-s <s>] [--poll-ms <ms>]\n"
    "                 [--metrics[=json|openmetrics]]\n";
}

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("ssd") || !args.has("hdd") || !args.has("spool")) tools::die_usage(kUsage);
  tools::metrics_begin(args);
  std::FILE* report_out = tools::metrics_json_only(args) ? stderr : stdout;

  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  // A serving deployment wants the cache on: coalesced fills are shareable
  // only while the image lives somewhere.  64 MiB default, --cache=0 to
  // prove the uncached path stays correct.
  config.cache_bytes = static_cast<std::uint64_t>(args.get_int("cache", 64ll << 20));
  config.read_threads = static_cast<unsigned>(args.get_int("read-threads", 0));
  config.read_queue_depth = static_cast<unsigned>(args.get_int("queue-depth", 4));
  core::Ada middleware(
      tools::must(plfs::PlfsMount::open(
                      {{"ssd-fs", args.get("ssd")}, {"hdd-fs", args.get("hdd")}}),
                  "open backends"),
      config);

  serve::ServeConfig serve_config;
  serve_config.workers = static_cast<unsigned>(args.get_int("workers", 4));
  serve_config.default_quota.max_inflight = static_cast<unsigned>(args.get_int("inflight", 4));
  serve_config.default_quota.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 64));
  serve_config.default_quota.memory_bytes =
      static_cast<std::uint64_t>(args.get_int("memory-quota", 0));
  serve_config.default_quota.io_quantum_bytes =
      static_cast<std::uint64_t>(args.get_int("quantum", 4ll << 20));
  serve::AdaService service(middleware, serve_config);
  serve::SpoolServer server(service, args.get("spool"));

  const std::string stop_file = args.get("stop-file");
  const long long idle_timeout_s = args.get_int("idle-timeout-s", 0);
  const long long poll_ms = std::max(1ll, args.get_int("poll-ms", 10));
  std::fprintf(report_out, "ada-serve: spooling %s (%u workers, cache %lld bytes)\n",
               args.get("spool").c_str(), serve_config.workers, args.get_int("cache", 64ll << 20));

  auto last_request = std::chrono::steady_clock::now();
  for (;;) {
    const std::size_t claimed = server.poll_once();
    const auto now = std::chrono::steady_clock::now();
    if (claimed != 0) {
      last_request = now;
      continue;  // drain a burst back to back before sleeping
    }
    if (!stop_file.empty() && std::filesystem::exists(stop_file)) {
      std::error_code ec;
      std::filesystem::remove(stop_file, ec);
      break;
    }
    if (idle_timeout_s > 0 &&
        now - last_request >= std::chrono::seconds(idle_timeout_s)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }

  service.stop();
  const serve::ServeStats stats = service.stats();
  std::fprintf(report_out,
               "ada-serve: served %llu requests (%llu coalesced, %llu fills), "
               "shed %llu overloaded / %llu quota, %llu bytes out\n",
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.coalesced),
               static_cast<unsigned long long>(stats.fills),
               static_cast<unsigned long long>(stats.rejected_overload),
               static_cast<unsigned long long>(stats.rejected_quota),
               static_cast<unsigned long long>(stats.bytes_served));
  for (const auto& [tenant, t] : stats.tenants) {
    std::fprintf(report_out,
                 "  tenant %-12s %6llu ok %4llu fail %4llu shed  peak queue %zu inflight %u\n",
                 tenant.c_str(), static_cast<unsigned long long>(t.completed),
                 static_cast<unsigned long long>(t.failed),
                 static_cast<unsigned long long>(t.rejected_overload + t.rejected_quota),
                 t.queue_peak, t.inflight_peak);
  }
  tools::metrics_end(args);
  return 0;
}
