// ada-stats: render telemetry time series and gate on perf regressions.
//
//   ada-stats render <ts.jsonl>
//   ada-stats diff <baseline.json> <candidate.json>
//             [--budget <frac>] [--higher k1,k2,...] [--lower k1,k2,...]
//
// `render` reduces a --telemetry JSONL stream (obs/telemetry.hpp) to one
// rate/percentile table per clock: counter totals, summed deltas and mean
// rates over the observed span, histogram quantiles at the final sample.
//
// `diff` flattens two JSON documents (typically bench BENCH_*.json files)
// into dotted-path metrics and judges only the listed keys: --higher keys
// may not drop, --lower keys may not rise, by more than --budget (fraction,
// default 0.10).  A listed key missing from either file is a violation.
// Exit status 1 when any key regresses -- the check-perf gate
// (bench/CMakeLists.txt) runs this against the committed baselines in
// bench/baselines/.  See docs/observability.md.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "obs/export.hpp"
#include "obs/stats.hpp"
#include "tools/tool_util.hpp"

using namespace ada;

namespace {

constexpr const char* kUsage =
    "usage: ada-stats render <ts.jsonl>\n"
    "       ada-stats diff <baseline.json> <candidate.json>\n"
    "                 [--budget <frac>] [--higher k1,k2,...] [--lower k1,k2,...]\n";

std::string read_text(const std::string& path, const char* what) {
  const std::vector<std::uint8_t> bytes =
      tools::must(read_file(path), what);
  return std::string(bytes.begin(), bytes.end());
}

int run_render(const std::string& path) {
  const std::string jsonl = read_text(path, "read telemetry");
  const std::vector<obs::TelemetrySummary> summaries =
      tools::must(obs::summarize_telemetry(jsonl), "parse telemetry");
  if (summaries.empty()) {
    std::printf("no samples in %s\n", path.c_str());
    return 0;
  }
  for (const obs::TelemetrySummary& summary : summaries) {
    std::printf("== clock %s: %llu sample(s) over %.1f ms ==\n", summary.clock.c_str(),
                static_cast<unsigned long long>(summary.samples),
                summary.last_t_ms - summary.first_t_ms);
    if (!summary.counters.empty()) {
      Table table({"counter", "total", "delta_sum", "rate/s"});
      for (const auto& row : summary.counters) {
        table.add_row({row.name, std::to_string(row.total), std::to_string(row.delta_sum),
                       obs::json_number(row.rate_per_s)});
      }
      table.print(std::cout);
    }
    if (!summary.histograms.empty()) {
      Table table({"histogram", "count", "p50", "p90", "p99"});
      for (const auto& row : summary.histograms) {
        table.add_row({row.name, std::to_string(row.count), obs::json_number(row.p50),
                       obs::json_number(row.p90), obs::json_number(row.p99)});
      }
      table.print(std::cout);
    }
  }
  return 0;
}

int run_diff(const tools::Args& args, const std::string& baseline_path,
             const std::string& candidate_path) {
  const json::Value baseline_doc =
      tools::must(json::parse(read_text(baseline_path, "read baseline")), "parse baseline");
  const json::Value candidate_doc =
      tools::must(json::parse(read_text(candidate_path, "read candidate")), "parse candidate");

  obs::DiffSpec spec;
  const std::string budget = args.get("budget");
  if (!budget.empty() && budget != "true") spec.budget = std::stod(budget);
  for (const std::string& key : split(args.get("higher"), ',')) {
    if (!key.empty()) spec.higher.push_back(key);
  }
  for (const std::string& key : split(args.get("lower"), ',')) {
    if (!key.empty()) spec.lower.push_back(key);
  }
  if (spec.higher.empty() && spec.lower.empty()) {
    std::fprintf(stderr, "error: diff needs at least one --higher or --lower key\n");
    return 2;
  }

  const obs::DiffReport report = obs::diff_metrics(
      obs::flatten_numbers(baseline_doc), obs::flatten_numbers(candidate_doc), spec);

  Table table({"key", "want", "baseline", "candidate", "change", "verdict"});
  for (const obs::DiffRow& row : report.rows) {
    const char* verdict = row.violation ? "REGRESSED" : "ok";
    if (row.missing) verdict = "MISSING";
    char change[32];
    std::snprintf(change, sizeof change, "%+.2f%%", row.change * 100.0);
    table.add_row({row.key, row.higher_is_better ? "higher" : "lower",
                   obs::json_number(row.baseline), obs::json_number(row.candidate),
                   row.missing ? "-" : change, verdict});
  }
  table.print(std::cout);
  if (report.violations != 0) {
    std::printf("FAIL: %zu key(s) regressed beyond budget %.2f (%s vs %s)\n",
                report.violations, spec.budget, candidate_path.c_str(),
                baseline_path.c_str());
    return 1;
  }
  std::printf("OK: %zu key(s) within budget %.2f\n", report.rows.size(), spec.budget);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  const std::vector<std::string>& positional = args.positional();
  if (positional.empty()) tools::die_usage(kUsage);
  const std::string& mode = positional[0];
  if (mode == "render") {
    if (positional.size() != 2) tools::die_usage(kUsage);
    return run_render(positional[1]);
  }
  if (mode == "diff") {
    if (positional.size() != 3) tools::die_usage(kUsage);
    return run_diff(args, positional[1], positional[2]);
  }
  tools::die_usage(kUsage);
}
