// ada-trace: analyse and merge Chrome trace JSON written by --trace=<file>.
//
//   ada-trace <trace.json> [more.json ...]
//             [--tag <t>] [--trace-id <id>] [--out merged.json]
//             [--critical-path] [--stages] [--summary]
//
// Reads one or more traces (ada-ingest/ada-query/bench --trace output),
// optionally filters events to one data tag and/or one trace id, and prints:
//   * a per-trace summary (spans, wall span, planes touched),
//   * per-stage statistics -- calls, total busy time, union time (merged
//     intervals) and overlap (total - union, i.e. concurrency won), and
//     the gap to the next stage on the critical path,
//   * the critical path of the longest (or selected) trace: starting from
//     the last-ending span, repeatedly hop to the latest span that ended
//     before the current one began, reporting idle gaps between hops.
// With --out, re-emits the merged, filtered events as one combined Chrome
// trace JSON.  Selecting --critical-path / --stages / --summary prints only
// those sections (default: all).  See docs/observability.md.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/trace_export.hpp"
#include "tools/tool_util.hpp"

using namespace ada;

namespace {

constexpr const char* kUsage =
    "usage: ada-trace <trace.json> [more.json ...]\n"
    "                 [--tag <t>] [--trace-id <id>] [--out <merged.json>]\n"
    "                 [--critical-path] [--stages] [--summary]\n"
    "                 [--metrics[=json|openmetrics]]\n";

/// A reconstructed span: one B/E pair (matched by span id, else by per-track
/// stack order for traces from other emitters).
struct Span {
  std::string name;
  std::string tag;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint32_t pid = 0;
  std::uint64_t tid = 0;
  double begin_us = 0;
  double end_us = 0;

  double duration_us() const { return end_us - begin_us; }
};

std::string lane_name(const Span& span,
                      const std::map<std::uint64_t, std::string>& lanes) {
  if (span.pid != obs::kSimPid) return "thread " + std::to_string(span.tid);
  const auto it = lanes.find(span.tid);
  return it != lanes.end() ? it->second : "lane " + std::to_string(span.tid);
}

std::string us_cell(double us) { return format_seconds(us * 1e-6); }

/// Pair begin/end events into spans.  Events with span ids pair exactly;
/// id-less events fall back to a LIFO stack per (pid, tid, name).
std::vector<Span> build_spans(const std::vector<obs::ExportEvent>& events) {
  std::vector<Span> spans;
  std::map<std::uint64_t, std::size_t> by_id;
  std::map<std::string, std::vector<std::size_t>> by_track;
  for (const obs::ExportEvent& event : events) {
    if (event.ph == 'B') {
      Span span;
      span.name = event.name;
      span.tag = event.tag;
      span.trace_id = event.trace_id;
      span.span_id = event.span_id;
      span.pid = event.pid;
      span.tid = event.tid;
      span.begin_us = event.ts_us;
      span.end_us = event.ts_us;  // until the E arrives
      spans.push_back(span);
      if (event.span_id != 0) {
        by_id[event.span_id] = spans.size() - 1;
      } else {
        by_track[std::to_string(event.pid) + "/" + std::to_string(event.tid) + "/" + event.name]
            .push_back(spans.size() - 1);
      }
    } else if (event.ph == 'E') {
      if (event.span_id != 0) {
        const auto it = by_id.find(event.span_id);
        if (it != by_id.end()) spans[it->second].end_us = event.ts_us;
        continue;
      }
      auto& stack =
          by_track[std::to_string(event.pid) + "/" + std::to_string(event.tid) + "/" + event.name];
      if (!stack.empty()) {
        spans[stack.back()].end_us = event.ts_us;
        stack.pop_back();
      }
    }
  }
  return spans;
}

/// Union of [begin, end) intervals, in microseconds.
double union_us(std::vector<std::pair<double, double>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  double total = 0, cur_begin = 0, cur_end = -1;
  for (const auto& [b, e] : intervals) {
    if (e <= cur_end) continue;
    if (b > cur_end) {
      if (cur_end > cur_begin) total += cur_end - cur_begin;
      cur_begin = b;
    }
    cur_end = e;
  }
  if (cur_end > cur_begin) total += cur_end - cur_begin;
  return total;
}

/// Critical path: last-ending span, then repeatedly the latest-ending span
/// that finished at or before the current one began.
std::vector<const Span*> critical_path(const std::vector<Span>& spans) {
  std::vector<const Span*> chain;
  const Span* current = nullptr;
  for (const Span& span : spans) {
    if (current == nullptr || span.end_us > current->end_us) current = &span;
  }
  while (current != nullptr) {
    chain.push_back(current);
    const Span* predecessor = nullptr;
    for (const Span& span : spans) {
      if (&span == current || span.end_us > current->begin_us) continue;
      if (predecessor == nullptr || span.end_us > predecessor->end_us) predecessor = &span;
    }
    current = predecessor;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::string emit_chrome_json(const std::vector<obs::ExportEvent>& events,
                             const std::map<std::uint64_t, std::string>& lanes) {
  auto escape = [](const std::string& raw) {
    std::string out;
    for (const char c : raw) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::string out = "{\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"functional (wall clock)\"}},\n";
  if (!lanes.empty()) {
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
           "\"args\":{\"name\":\"simulated (sim time)\"}},\n";
    for (const auto& [tid, label] : lanes) {
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":" + std::to_string(tid) +
             ",\"args\":{\"name\":\"" + escape(label) + "\"}},\n";
    }
  }
  bool first = true;
  for (const obs::ExportEvent& event : events) {
    if (!first) out += ",\n";
    first = false;
    char ts[40];
    std::snprintf(ts, sizeof ts, "%.3f", event.ts_us);
    out += "{\"name\":\"" + escape(event.name) + "\",\"ph\":\"";
    out += event.ph;
    out += "\",\"ts\":" + std::string(ts) + ",\"pid\":" + std::to_string(event.pid) +
           ",\"tid\":" + std::to_string(event.tid);
    if (event.ph == 'i') out += ",\"s\":\"t\"";
    out += ",\"args\":{";
    if (event.ph == 'C') {
      out += "\"value\":" + std::to_string(event.value);
    } else {
      out += "\"trace\":" + std::to_string(event.trace_id) +
             ",\"span\":" + std::to_string(event.span_id) +
             ",\"parent\":" + std::to_string(event.parent_span) + ",\"tag\":\"" +
             escape(event.tag) + "\"";
      if (event.value != 0) out += ",\"value\":" + std::to_string(event.value);
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (args.positional().empty()) tools::die_usage(kUsage);
  tools::metrics_begin(args);

  // --- load + merge ---------------------------------------------------------------
  // Each input file comes from its own process, and every process numbers
  // traces and spans from 1 -- so ids collide across files.  Offset each
  // file's ids past the previous files' maxima to keep requests distinct.
  std::vector<obs::ExportEvent> events;
  std::map<std::uint64_t, std::string> lanes;
  std::uint64_t trace_offset = 0, span_offset = 0;
  for (const std::string& path : args.positional()) {
    const auto bytes = tools::must(read_file(path), "read trace");
    std::vector<std::pair<std::uint64_t, std::string>> file_lanes;
    auto parsed = tools::must(
        obs::parse_chrome_json(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                                bytes.size()),
                               &file_lanes),
        "parse trace");
    for (auto& [tid, label] : file_lanes) lanes.emplace(tid, std::move(label));
    std::uint64_t max_trace = 0, max_span = 0;
    for (obs::ExportEvent& event : parsed) {
      if (event.trace_id != 0) {
        max_trace = std::max(max_trace, event.trace_id);
        event.trace_id += trace_offset;
      }
      if (event.span_id != 0) {
        max_span = std::max(max_span, event.span_id);
        event.span_id += span_offset;
      }
      if (event.parent_span != 0) {
        max_span = std::max(max_span, event.parent_span);
        event.parent_span += span_offset;
      }
    }
    trace_offset += max_trace;
    span_offset += max_span;
    events.insert(events.end(), parsed.begin(), parsed.end());
  }

  // --- filter ---------------------------------------------------------------------
  if (args.has("tag")) {
    const std::string tag = args.get("tag");
    std::erase_if(events, [&](const obs::ExportEvent& e) { return e.tag != tag; });
  }
  if (args.has("trace-id")) {
    const auto id = static_cast<std::uint64_t>(args.get_int("trace-id", 0));
    std::erase_if(events, [&](const obs::ExportEvent& e) { return e.trace_id != id; });
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const obs::ExportEvent& a, const obs::ExportEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });
  if (events.empty()) {
    std::fprintf(stderr, "no events after filtering\n");
    return 1;
  }

  const bool any_section = args.has("summary") || args.has("stages") || args.has("critical-path");
  const bool want_summary = !any_section || args.has("summary");
  const bool want_stages = !any_section || args.has("stages");
  const bool want_critical = !any_section || args.has("critical-path");

  const std::vector<Span> spans = build_spans(events);
  // With --metrics on, the analyzer reports on its own inputs: volume
  // counters plus a latency histogram over the reconstructed spans, so the
  // percentile machinery is exercisable on recorded traces too.
  ADA_OBS_COUNT("ada_trace.files", args.positional().size());
  ADA_OBS_COUNT("ada_trace.events", events.size());
  ADA_OBS_COUNT("ada_trace.spans", spans.size());
  for (const Span& span : spans) {
    ADA_OBS_OBSERVE("ada_trace.span_us", span.duration_us());
  }

  // --- per-trace summary ----------------------------------------------------------
  struct TraceAgg {
    std::size_t spans = 0;
    double begin_us = 0, end_us = 0;
    bool functional = false, simulated = false;
    std::string tags;  // first few distinct tags
  };
  std::map<std::uint64_t, TraceAgg> traces;
  for (const Span& span : spans) {
    TraceAgg& agg = traces[span.trace_id];
    if (agg.spans == 0 || span.begin_us < agg.begin_us) agg.begin_us = span.begin_us;
    if (agg.spans == 0 || span.end_us > agg.end_us) agg.end_us = span.end_us;
    ++agg.spans;
    (span.pid == obs::kSimPid ? agg.simulated : agg.functional) = true;
    if (!span.tag.empty() && agg.tags.find(span.tag) == std::string::npos &&
        agg.tags.size() < 32) {
      agg.tags += agg.tags.empty() ? span.tag : "," + span.tag;
    }
  }
  if (want_summary) {
    Table table({"trace", "spans", "wall", "planes", "tags"});
    for (const auto& [id, agg] : traces) {
      table.add_row({std::to_string(id), std::to_string(agg.spans),
                     us_cell(agg.end_us - agg.begin_us),
                     std::string(agg.functional ? "fn" : "") +
                         (agg.functional && agg.simulated ? "+" : "") +
                         (agg.simulated ? "sim" : ""),
                     agg.tags});
    }
    std::cout << "-- traces --\n";
    table.print(std::cout);
  }

  // --- per-stage statistics -------------------------------------------------------
  if (want_stages) {
    struct StageAgg {
      std::size_t calls = 0;
      double total_us = 0;
      std::vector<std::pair<double, double>> intervals;
    };
    std::map<std::string, StageAgg> stages;
    for (const Span& span : spans) {
      StageAgg& agg = stages[span.name];
      ++agg.calls;
      agg.total_us += span.duration_us();
      agg.intervals.emplace_back(span.begin_us, span.end_us);
    }
    std::vector<std::pair<std::string, StageAgg>> ordered(stages.begin(), stages.end());
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
      return a.second.total_us > b.second.total_us;
    });
    Table table({"stage", "calls", "total", "union", "overlap"});
    for (auto& [name, agg] : ordered) {
      const double uni = union_us(std::move(agg.intervals));
      table.add_row({name, std::to_string(agg.calls), us_cell(agg.total_us), us_cell(uni),
                     us_cell(agg.total_us - uni)});
    }
    std::cout << "-- stages (busy vs overlap) --\n";
    table.print(std::cout);
  }

  // --- critical path --------------------------------------------------------------
  if (want_critical && !spans.empty()) {
    // Analyse the selected trace, or the one with the longest wall span.
    std::uint64_t chosen = 0;
    if (args.has("trace-id")) {
      chosen = static_cast<std::uint64_t>(args.get_int("trace-id", 0));
    } else {
      double best = -1;
      for (const auto& [id, agg] : traces) {
        if (agg.end_us - agg.begin_us > best) {
          best = agg.end_us - agg.begin_us;
          chosen = id;
        }
      }
    }
    std::vector<Span> trace_spans;
    for (const Span& span : spans) {
      if (span.trace_id == chosen) trace_spans.push_back(span);
    }
    const auto chain = critical_path(trace_spans);
    double busy = 0, gaps = 0;
    Table table({"stage", "lane", "tag", "start", "duration", "gap before"});
    const Span* previous = nullptr;
    for (const Span* span : chain) {
      const double gap = previous == nullptr ? 0 : span->begin_us - previous->end_us;
      busy += span->duration_us();
      gaps += gap;
      table.add_row({span->name, lane_name(*span, lanes), span->tag, us_cell(span->begin_us),
                     us_cell(span->duration_us()), previous == nullptr ? "-" : us_cell(gap)});
      previous = span;
    }
    std::printf("-- critical path (trace %" PRIu64 ", %zu hops, busy %s, idle %s) --\n", chosen,
                chain.size(), us_cell(busy).c_str(), us_cell(gaps).c_str());
    table.print(std::cout);
  }

  // --- combined output ------------------------------------------------------------
  if (args.has("out")) {
    const std::string merged = emit_chrome_json(events, lanes);
    tools::must_ok(write_file(args.get("out"),
                              std::span(reinterpret_cast<const std::uint8_t*>(merged.data()),
                                        merged.size())),
                   "write merged trace");
    std::printf("wrote %s (%zu events)\n", args.get("out").c_str(), events.size());
  }
  tools::metrics_end(args);
  return 0;
}
