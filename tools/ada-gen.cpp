// ada-gen: generate a synthetic GPCR dataset (.pdb + .xtc [+ .trr]) on disk.
//
//   ada-gen --out data/ --frames 100 [--size tiny|paper] [--ligand N]
//           [--seed S] [--trr] [--codec v1|v2] [--metrics[=json]]
//
// Produces data/system.pdb and data/traj.xtc (and data/traj.trr with --trr),
// ready for ada-ingest or plain mini-VMD loading.  --codec selects the
// coordinate codec version of traj.xtc (AdaConfig::codec default: v1, the
// intra-frame-only stream every consumer reads; v2 adds inter-frame
// prediction).  With --metrics, prints the observability report (compression
// counters, stage timers) after generation; --metrics=json emits the stable
// JSON document on stdout (the summary moves to stderr).  See
// docs/observability.md.
#include <cstdio>
#include <filesystem>
#include <string>

#include "ada/middleware.hpp"
#include "common/units.hpp"
#include "common/binary_io.hpp"
#include "formats/pdb.hpp"
#include "formats/raw_traj.hpp"
#include "formats/trr_file.hpp"
#include "formats/xtc_file.hpp"
#include "tools/tool_util.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

namespace {
constexpr const char* kUsage =
    "usage: ada-gen --out <dir> [--frames N] [--size tiny|paper] [--ligand N]\n"
    "               [--seed S] [--trr] [--codec v1|v2] [--metrics[=json|openmetrics]]\n"
    "               [--telemetry <ts.jsonl[,interval_ms]>] [--profile <out.folded[,interval_us]>]\n"
    "  generates a synthetic GPCR membrane system (system.pdb) and an\n"
    "  OU-dynamics trajectory (traj.xtc; traj.trr with --trr)\n";
}

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("out")) tools::die_usage(kUsage);
  tools::metrics_begin(args);
  tools::telemetry_begin(args);
  tools::profile_begin(args);
  std::FILE* report_out = tools::metrics_json_only(args) ? stderr : stdout;
  const std::string out = args.get("out");
  const auto frames = static_cast<std::uint32_t>(args.get_int("frames", 50));
  const std::string size = args.get("size", "tiny");

  workload::GpcrSpec spec =
      size == "paper" ? workload::GpcrSpec::paper_default() : workload::GpcrSpec::tiny();
  if (size != "paper" && size != "tiny") tools::die_usage(kUsage);
  spec.ligand_atoms = static_cast<std::uint32_t>(args.get_int("ligand", 0));
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 20210809));

  std::filesystem::create_directories(out);
  const auto system = workload::GpcrSystemBuilder(spec).build();
  tools::must_ok(formats::write_pdb_file(out + "/system.pdb", system), "write system.pdb");

  workload::DynamicsSpec dynamics;
  dynamics.seed = spec.seed + 1;
  workload::TrajectoryGenerator gen(system, dynamics);
  core::AdaConfig codec_config;  // carries the codec default (v1)
  const std::string codec_name = args.get("codec", "v1");
  if (codec_name == "v2") {
    codec_config.codec = codec::CodecVersion::kV2;
  } else if (codec_name != "v1") {
    tools::die_usage(kUsage);
  }
  formats::XtcWriter xtc({}, codec_config.codec);
  formats::TrrWriter trr;
  const bool want_trr = args.has("trr");
  for (std::uint32_t f = 0; f < frames; ++f) {
    const auto coords = gen.next_frame();
    tools::must_ok(xtc.add_frame(gen.current_step(), gen.current_time_ps(), system.box(), coords),
                   "compress frame");
    if (want_trr) {
      formats::TrrFrame frame;
      frame.step = gen.current_step();
      frame.time_ps = gen.current_time_ps();
      frame.box = system.box();
      frame.coords.assign(coords.begin(), coords.end());
      tools::must_ok(trr.add_frame(frame), "write trr frame");
    }
  }
  tools::must_ok(write_file(out + "/traj.xtc", xtc.bytes()), "write traj.xtc");
  if (want_trr) tools::must_ok(write_file(out + "/traj.trr", trr.bytes()), "write traj.trr");

  std::fprintf(report_out, "wrote %s/system.pdb (%u atoms, %u protein)\n", out.c_str(), system.atom_count(),
              system.count_category(chem::Category::kProtein));
  std::fprintf(report_out, "wrote %s/traj.xtc (%u frames, %s compressed, %s raw)\n", out.c_str(), frames,
              format_bytes(static_cast<double>(xtc.size_bytes())).c_str(),
              format_bytes(static_cast<double>(
                               formats::raw_file_bytes(system.atom_count(), frames)))
                  .c_str());
  if (want_trr) {
    std::fprintf(report_out, "wrote %s/traj.trr (%s)\n", out.c_str(),
                 format_bytes(static_cast<double>(trr.size_bytes())).c_str());
  }
  tools::telemetry_end(args);
  tools::profile_end(args);
  tools::metrics_end(args);
  return 0;
}
