// ada-query: the read path -- fetch a tagged subset from an ADA deployment.
//
//   ada-query --ssd /mnt/ssd --hdd /mnt/hdd --name bar.xtc --tag p
//             [--out subset.raw] [--render frame.ppm --pdb system.pdb]
//             [--metrics[=json]] [--trace out.json] [--cache bytes]
//
// Without --out/--render, prints the subset's shape.  With --render, loads
// the structure, renders frame 0 of the subset, and writes a .ppm image.
// With --metrics, prints the observability report after the query;
// --metrics=json emits the stable JSON document on stdout (the summary
// moves to stderr).  With --trace=<file>, records a request timeline and
// writes Chrome trace JSON for Perfetto / ada-trace.  See
// docs/observability.md.
//
// With --degraded (tag optional), queries every tag and reports the
// survivors plus a typed failure per lost tag instead of failing outright:
// exit 0 when every tag was served, 2 when the result is partial, 1 when
// nothing could be resolved.  With --faults site=spec[,...], arms the
// deterministic fault injector before the query (docs/robustness.md).
//
// With --frames A:B (half-open, either side optional: "10:", ":50") and/or
// --stride K, only the selected frames of the tagged subset are fetched --
// the frame-range query that addresses per-extent frame tables when the
// container carries them.
//
// With --follow, the query tails a live stream (ada-ingest --stream running
// concurrently): it polls Ada::query_tail every --poll-ms milliseconds,
// drains each newly sealed batch of frames as it appears, and exits 0 once
// the stream seals.  The accumulated output (--out) is one canonical RAW
// segment, byte-identical to a one-shot `--frames <from>:` query issued
// after the ingest finished.  --from sets the first frame to tail (default
// 0); --timeout-s bounds the wait (exit 1 if the stream never seals).  Both
// knobs must be positive -- a non-positive poll would busy-spin the mount
// and a non-positive timeout would expire before the first poll -- and the
// deadline is checked only after a final drain, so a stream sealing exactly
// at the timeout still exits 0.
//
// With --serve-spool <dir>, the tool is a *client* of a running ada-serve
// instead of opening backends itself: the request travels through the spool
// protocol (docs/serving.md), honoring --tenant, --frames/--stride and
// --degraded, and the served bytes are identical to a direct query.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "ada/middleware.hpp"
#include "common/binary_io.hpp"
#include "common/units.hpp"
#include "formats/pdb.hpp"
#include "formats/raw_traj.hpp"
#include "serve/spool.hpp"
#include "tools/tool_util.hpp"
#include "vmd/mol.hpp"

using namespace ada;

namespace {
constexpr const char* kUsage =
    "usage: ada-query --ssd <dir> --hdd <dir> --name <logical> --tag <t>\n"
    "                 [--frames A:B] [--stride K]\n"
    "                 [--out <subset.raw>] [--render <frame.ppm> --pdb <file>]\n"
    "                 [--metrics[=json|openmetrics]] [--trace <out.json>] [--cache <bytes>]\n"
    "                 [--read-threads <n>] [--queue-depth <n>]\n"
    "                 [--telemetry <ts.jsonl[,interval_ms]>] [--profile <out.folded[,interval_us]>]\n"
    "                 [--faults site=spec[,site=spec...]] [--degraded]\n"
    "                 [--follow [--from <frame>] [--poll-ms <ms>] [--timeout-s <s>]]\n"
    "   or: ada-query --serve-spool <dir> --name <logical> --tag <t>\n"
    "                 [--tenant <id>] [--frames A:B] [--stride K] [--degraded]\n"
    "                 [--timeout-s <s>] [--out <subset.raw>]\n";

// "A:B" -> [A, B); either side may be omitted ("10:", ":50", ":").
core::FrameRange parse_frames(const std::string& spec, core::FrameRange range) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) tools::die_usage(kUsage);
  const std::string lo = spec.substr(0, colon);
  const std::string hi = spec.substr(colon + 1);
  char* rest = nullptr;
  if (!lo.empty()) {
    range.begin = static_cast<std::uint32_t>(std::strtoul(lo.c_str(), &rest, 10));
    if (rest == nullptr || *rest != '\0') tools::die_usage(kUsage);
  }
  if (!hi.empty()) {
    range.end = static_cast<std::uint32_t>(std::strtoul(hi.c_str(), &rest, 10));
    if (rest == nullptr || *rest != '\0') tools::die_usage(kUsage);
  }
  return range;
}
}

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);

  if (args.has("serve-spool")) {
    // Client mode: the running ada-serve owns the backends; this process
    // only speaks the spool protocol.
    if (!args.has("name") || (!args.has("tag") && !args.has("degraded"))) {
      tools::die_usage(kUsage);
    }
    serve::Request request;
    request.tenant = args.get("tenant", "default");
    request.logical_name = args.get("name");
    request.tag = args.get("tag");
    if (args.has("degraded")) {
      request.kind = serve::RequestKind::kDegraded;
    } else if (args.has("frames") || args.has("stride")) {
      request.kind = serve::RequestKind::kRange;
      if (args.has("frames")) request.range = parse_frames(args.get("frames"), request.range);
      request.range.stride = static_cast<std::uint32_t>(args.get_int("stride", 1));
      if (request.range.stride == 0) tools::die_usage(kUsage);
    }
    const long long timeout_s = parse_int(args.get("timeout-s", "30"));
    if (timeout_s <= 0) {
      std::fprintf(stderr, "error: --timeout-s must be a positive number of seconds (got %s)\n",
                   args.get("timeout-s").c_str());
      return 2;
    }
    serve::SpoolClient client(args.get("serve-spool"));
    const auto reply =
        tools::must(client.call(request, static_cast<double>(timeout_s)), "serve query");
    const auto reader = tools::must(formats::RawTrajCatReader::open(reply.payload), "parse subset");
    std::fprintf(stdout, "%s tag %s via %s: %u frames x %u atoms, %s%s\n",
                 request.logical_name.c_str(), request.tag.c_str(),
                 args.get("serve-spool").c_str(), reader.frame_count(), reader.atom_count(),
                 format_bytes(static_cast<double>(reply.payload.size())).c_str(),
                 reply.coalesced ? " (coalesced)" : "");
    if (args.has("out")) {
      tools::must_ok(write_file(args.get("out"), reply.payload), "write subset");
      std::fprintf(stdout, "wrote %s\n", args.get("out").c_str());
    }
    return 0;
  }

  if (!args.has("ssd") || !args.has("hdd") || !args.has("name") ||
      (!args.has("tag") && !args.has("degraded"))) {
    tools::die_usage(kUsage);
  }
  tools::metrics_begin(args);
  tools::telemetry_begin(args);
  tools::profile_begin(args);
  tools::trace_begin(args);
  tools::faults_begin(args);
  std::FILE* report_out = tools::metrics_json_only(args) ? stderr : stdout;

  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  // --cache=<bytes> arms the query-side subset cache (0 = off, the default:
  // the cached and uncached read paths are byte-identical, the cache only
  // short-circuits repeated reads within this process's lifetime).
  config.cache_bytes = static_cast<std::uint64_t>(args.get_int("cache", 0));
  // --read-threads=<n> fans extent reads onto the shared pool (0/1 = the
  // serial pre-scatter-gather path, the default); --queue-depth=<n> bounds
  // in-flight reads per backend (0 = unbounded).  docs/performance.md.
  config.read_threads = static_cast<unsigned>(args.get_int("read-threads", 0));
  config.read_queue_depth = static_cast<unsigned>(args.get_int("queue-depth", 4));
  core::Ada middleware(
      tools::must(plfs::PlfsMount::open(
                      {{"ssd-fs", args.get("ssd")}, {"hdd-fs", args.get("hdd")}}),
                  "open backends"),
      config);

  const std::string logical = args.get("name");

  if (args.has("degraded")) {
    const auto partial = tools::must(middleware.query_degraded(logical), "degraded query");
    std::size_t served_bytes = 0;
    for (const auto& [tag, bytes] : partial.subsets) {
      std::fprintf(report_out, "  tag %-8s %10s served\n", tag.c_str(),
                   format_bytes(static_cast<double>(bytes.size())).c_str());
      served_bytes += bytes.size();
    }
    for (const auto& failure : partial.failed) {
      std::fprintf(report_out, "  tag %-8s LOST: %s\n", failure.tag.c_str(),
                   failure.error.to_string().c_str());
    }
    std::fprintf(report_out, "%s degraded read: %zu/%zu tags served, %s\n", logical.c_str(),
                 partial.subsets.size(), partial.subsets.size() + partial.failed.size(),
                 format_bytes(static_cast<double>(served_bytes)).c_str());
    if (partial.partial()) {
      std::fprintf(report_out, "PARTIAL RESULT: %zu tag(s) unreadable\n", partial.failed.size());
    }
    if (args.has("out")) {
      tools::must_ok(write_file(args.get("out"), partial.concat()), "write surviving subsets");
      std::fprintf(report_out, "wrote %s (surviving tags, tag order)\n", args.get("out").c_str());
    }
    tools::trace_end(args);
    tools::telemetry_end(args);
    tools::profile_end(args);
    tools::metrics_end(args);
    return partial.partial() ? 2 : 0;
  }

  if (args.has("follow")) {
    const core::Tag tag = args.get("tag");
    // Validate from the raw strings: get_int() maps negative values to the
    // fallback, which would silently turn "--poll-ms -5" into the default
    // instead of an error.  A non-positive poll interval busy-spins the
    // mount at 100% CPU; a non-positive timeout expires before the first
    // poll ever runs.  Both are always user error -- reject them loudly.
    const long long poll_ms = parse_int(args.get("poll-ms", "20"));
    if (poll_ms <= 0) {
      std::fprintf(stderr,
                   "error: --poll-ms must be a positive number of milliseconds (got %s)\n",
                   args.get("poll-ms").c_str());
      return 2;
    }
    const long long timeout_s = parse_int(args.get("timeout-s", "60"));
    if (timeout_s <= 0) {
      std::fprintf(stderr, "error: --timeout-s must be a positive number of seconds (got %s)\n",
                   args.get("timeout-s").c_str());
      return 2;
    }
    const std::uint64_t first_frame = static_cast<std::uint64_t>(args.get_int("from", 0));
    std::uint64_t cursor = first_frame;
    std::vector<std::uint8_t> payload;  // frame records only; header emitted once
    std::uint32_t atoms = 0;
    std::uint64_t polls = 0;
    bool final_drain = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(timeout_s);
    for (;;) {
      ++polls;
      auto chunk_result = middleware.query_tail(logical, tag, cursor);
      if (!chunk_result.is_ok()) {
        // kNotFound while waiting just means the producer has not created
        // the container yet -- keep polling until the timeout.
        if (chunk_result.error().code() != ErrorCode::kNotFound) {
          tools::must(std::move(chunk_result), "tail query");
        }
      } else {
        const auto& chunk = chunk_result.value();
        if (!chunk.image.empty()) {
          // Each drained batch arrives as one canonical RAW segment; strip
          // its 16-byte header and re-emit a single header at the end.
          const auto segment =
              tools::must(formats::RawTrajReader::open(chunk.image), "tail chunk");
          atoms = segment.atom_count();
          payload.insert(payload.end(), chunk.image.begin() + 16, chunk.image.end());
        }
        cursor += chunk.frames;
        if (chunk.sealed && chunk.frames == 0) break;
        if (chunk.frames != 0) continue;  // drained a batch: poll again at once
      }
      // The timeout only fires after one final drain: a stream that seals
      // exactly as the deadline passes is picked up by that last poll and
      // exits 0 instead of reporting a spurious timeout.
      if (final_drain) {
        std::fprintf(stderr, "ada-query: --follow timed out after %llds before %s sealed\n",
                     timeout_s, logical.c_str());
        return 1;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        final_drain = true;
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
    const std::uint64_t frames = cursor - first_frame;
    ByteWriter header;
    header.put_bytes(std::span<const std::uint8_t>(formats::kRawMagic, 8));
    header.put_u32_le(atoms);
    header.put_u32_le(static_cast<std::uint32_t>(frames));
    std::vector<std::uint8_t> out = header.take();
    out.insert(out.end(), payload.begin(), payload.end());
    std::fprintf(report_out, "followed %s tag %s: %llu frames x %u atoms in %llu polls, %s\n",
                 logical.c_str(), tag.c_str(), static_cast<unsigned long long>(frames), atoms,
                 static_cast<unsigned long long>(polls),
                 format_bytes(static_cast<double>(out.size())).c_str());
    if (args.has("out")) {
      tools::must_ok(write_file(args.get("out"), out), "write followed subset");
      std::fprintf(report_out, "wrote %s\n", args.get("out").c_str());
    }
    tools::trace_end(args);
    tools::telemetry_end(args);
    tools::profile_end(args);
    tools::metrics_end(args);
    return 0;
  }

  const core::Tag tag = args.get("tag");
  const bool ranged = args.has("frames") || args.has("stride");
  core::FrameRange range;
  if (args.has("frames")) range = parse_frames(args.get("frames"), range);
  range.stride = static_cast<std::uint32_t>(args.get_int("stride", 1));
  if (range.stride == 0) tools::die_usage(kUsage);
  const auto subset = ranged ? tools::must(middleware.query(logical, tag, range), "range query")
                             : tools::must(middleware.query(logical, tag), "query");
  const auto reader = tools::must(formats::RawTrajCatReader::open(subset), "parse subset");
  std::fprintf(report_out, "%s tag %s: %u frames x %u atoms, %s decompressed\n", logical.c_str(),
               tag.c_str(), reader.frame_count(), reader.atom_count(),
               format_bytes(static_cast<double>(subset.size())).c_str());

  if (args.has("out")) {
    tools::must_ok(write_file(args.get("out"), subset), "write subset");
    std::fprintf(report_out, "wrote %s\n", args.get("out").c_str());
  }

  if (args.has("render")) {
    if (!args.has("pdb")) tools::die_usage(kUsage);
    vmd::MolSession session(&middleware);
    tools::must_ok(session.mol_new_file(args.get("pdb")), "mol new");
    tools::must_ok(session.mol_addfile("/mnt/" + logical, tag), "mol addfile");
    const auto frame = tools::must(session.render(0), "render");
    tools::must_ok(vmd::write_ppm(args.get("render"), frame.image), "write image");
    std::fprintf(report_out, "rendered frame 0 (%llu atoms, %llu bonds) to %s\n",
                 static_cast<unsigned long long>(frame.stats.atoms),
                 static_cast<unsigned long long>(frame.stats.bonds), args.get("render").c_str());
  }
  tools::trace_end(args);
  tools::telemetry_end(args);
  tools::profile_end(args);
  tools::metrics_end(args);
  return 0;
}
