# Empty compiler generated dependencies file for ada_plfs.
# This may be replaced when dependencies are built.
