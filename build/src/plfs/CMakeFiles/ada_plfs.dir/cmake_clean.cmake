file(REMOVE_RECURSE
  "CMakeFiles/ada_plfs.dir/container.cpp.o"
  "CMakeFiles/ada_plfs.dir/container.cpp.o.d"
  "CMakeFiles/ada_plfs.dir/fsck.cpp.o"
  "CMakeFiles/ada_plfs.dir/fsck.cpp.o.d"
  "CMakeFiles/ada_plfs.dir/plfs.cpp.o"
  "CMakeFiles/ada_plfs.dir/plfs.cpp.o.d"
  "libada_plfs.a"
  "libada_plfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_plfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
