
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plfs/container.cpp" "src/plfs/CMakeFiles/ada_plfs.dir/container.cpp.o" "gcc" "src/plfs/CMakeFiles/ada_plfs.dir/container.cpp.o.d"
  "/root/repo/src/plfs/fsck.cpp" "src/plfs/CMakeFiles/ada_plfs.dir/fsck.cpp.o" "gcc" "src/plfs/CMakeFiles/ada_plfs.dir/fsck.cpp.o.d"
  "/root/repo/src/plfs/plfs.cpp" "src/plfs/CMakeFiles/ada_plfs.dir/plfs.cpp.o" "gcc" "src/plfs/CMakeFiles/ada_plfs.dir/plfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ada_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
