file(REMOVE_RECURSE
  "libada_plfs.a"
)
