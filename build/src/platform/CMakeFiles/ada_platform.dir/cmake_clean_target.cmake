file(REMOVE_RECURSE
  "libada_platform.a"
)
