file(REMOVE_RECURSE
  "CMakeFiles/ada_platform.dir/constants.cpp.o"
  "CMakeFiles/ada_platform.dir/constants.cpp.o.d"
  "CMakeFiles/ada_platform.dir/pipeline.cpp.o"
  "CMakeFiles/ada_platform.dir/pipeline.cpp.o.d"
  "CMakeFiles/ada_platform.dir/platform.cpp.o"
  "CMakeFiles/ada_platform.dir/platform.cpp.o.d"
  "CMakeFiles/ada_platform.dir/workload_stats.cpp.o"
  "CMakeFiles/ada_platform.dir/workload_stats.cpp.o.d"
  "libada_platform.a"
  "libada_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
