# Empty compiler generated dependencies file for ada_platform.
# This may be replaced when dependencies are built.
