file(REMOVE_RECURSE
  "libada_xdr.a"
)
