# Empty compiler generated dependencies file for ada_xdr.
# This may be replaced when dependencies are built.
