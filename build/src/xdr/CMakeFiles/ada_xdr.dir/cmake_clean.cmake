file(REMOVE_RECURSE
  "CMakeFiles/ada_xdr.dir/xdr.cpp.o"
  "CMakeFiles/ada_xdr.dir/xdr.cpp.o.d"
  "libada_xdr.a"
  "libada_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
