file(REMOVE_RECURSE
  "libada_storage.a"
)
