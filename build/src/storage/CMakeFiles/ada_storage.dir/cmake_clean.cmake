file(REMOVE_RECURSE
  "CMakeFiles/ada_storage.dir/device.cpp.o"
  "CMakeFiles/ada_storage.dir/device.cpp.o.d"
  "CMakeFiles/ada_storage.dir/energy.cpp.o"
  "CMakeFiles/ada_storage.dir/energy.cpp.o.d"
  "CMakeFiles/ada_storage.dir/filesystem_model.cpp.o"
  "CMakeFiles/ada_storage.dir/filesystem_model.cpp.o.d"
  "CMakeFiles/ada_storage.dir/hdd_model.cpp.o"
  "CMakeFiles/ada_storage.dir/hdd_model.cpp.o.d"
  "CMakeFiles/ada_storage.dir/memory.cpp.o"
  "CMakeFiles/ada_storage.dir/memory.cpp.o.d"
  "CMakeFiles/ada_storage.dir/ssd_model.cpp.o"
  "CMakeFiles/ada_storage.dir/ssd_model.cpp.o.d"
  "libada_storage.a"
  "libada_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
