
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/device.cpp" "src/storage/CMakeFiles/ada_storage.dir/device.cpp.o" "gcc" "src/storage/CMakeFiles/ada_storage.dir/device.cpp.o.d"
  "/root/repo/src/storage/energy.cpp" "src/storage/CMakeFiles/ada_storage.dir/energy.cpp.o" "gcc" "src/storage/CMakeFiles/ada_storage.dir/energy.cpp.o.d"
  "/root/repo/src/storage/filesystem_model.cpp" "src/storage/CMakeFiles/ada_storage.dir/filesystem_model.cpp.o" "gcc" "src/storage/CMakeFiles/ada_storage.dir/filesystem_model.cpp.o.d"
  "/root/repo/src/storage/hdd_model.cpp" "src/storage/CMakeFiles/ada_storage.dir/hdd_model.cpp.o" "gcc" "src/storage/CMakeFiles/ada_storage.dir/hdd_model.cpp.o.d"
  "/root/repo/src/storage/memory.cpp" "src/storage/CMakeFiles/ada_storage.dir/memory.cpp.o" "gcc" "src/storage/CMakeFiles/ada_storage.dir/memory.cpp.o.d"
  "/root/repo/src/storage/ssd_model.cpp" "src/storage/CMakeFiles/ada_storage.dir/ssd_model.cpp.o" "gcc" "src/storage/CMakeFiles/ada_storage.dir/ssd_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ada_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
