# Empty compiler generated dependencies file for ada_storage.
# This may be replaced when dependencies are built.
