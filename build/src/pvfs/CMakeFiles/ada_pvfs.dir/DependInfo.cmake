
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pvfs/pvfs.cpp" "src/pvfs/CMakeFiles/ada_pvfs.dir/pvfs.cpp.o" "gcc" "src/pvfs/CMakeFiles/ada_pvfs.dir/pvfs.cpp.o.d"
  "/root/repo/src/pvfs/striping.cpp" "src/pvfs/CMakeFiles/ada_pvfs.dir/striping.cpp.o" "gcc" "src/pvfs/CMakeFiles/ada_pvfs.dir/striping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ada_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ada_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ada_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ada_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
