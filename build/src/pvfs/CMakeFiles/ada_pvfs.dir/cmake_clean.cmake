file(REMOVE_RECURSE
  "CMakeFiles/ada_pvfs.dir/pvfs.cpp.o"
  "CMakeFiles/ada_pvfs.dir/pvfs.cpp.o.d"
  "CMakeFiles/ada_pvfs.dir/striping.cpp.o"
  "CMakeFiles/ada_pvfs.dir/striping.cpp.o.d"
  "libada_pvfs.a"
  "libada_pvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
