# Empty compiler generated dependencies file for ada_pvfs.
# This may be replaced when dependencies are built.
