file(REMOVE_RECURSE
  "libada_pvfs.a"
)
