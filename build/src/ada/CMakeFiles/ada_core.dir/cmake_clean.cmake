file(REMOVE_RECURSE
  "CMakeFiles/ada_core.dir/categorizer.cpp.o"
  "CMakeFiles/ada_core.dir/categorizer.cpp.o.d"
  "CMakeFiles/ada_core.dir/dispatcher.cpp.o"
  "CMakeFiles/ada_core.dir/dispatcher.cpp.o.d"
  "CMakeFiles/ada_core.dir/indexer.cpp.o"
  "CMakeFiles/ada_core.dir/indexer.cpp.o.d"
  "CMakeFiles/ada_core.dir/ingest_stream.cpp.o"
  "CMakeFiles/ada_core.dir/ingest_stream.cpp.o.d"
  "CMakeFiles/ada_core.dir/label_store.cpp.o"
  "CMakeFiles/ada_core.dir/label_store.cpp.o.d"
  "CMakeFiles/ada_core.dir/middleware.cpp.o"
  "CMakeFiles/ada_core.dir/middleware.cpp.o.d"
  "CMakeFiles/ada_core.dir/preprocessor.cpp.o"
  "CMakeFiles/ada_core.dir/preprocessor.cpp.o.d"
  "CMakeFiles/ada_core.dir/schema_config.cpp.o"
  "CMakeFiles/ada_core.dir/schema_config.cpp.o.d"
  "CMakeFiles/ada_core.dir/vfs.cpp.o"
  "CMakeFiles/ada_core.dir/vfs.cpp.o.d"
  "libada_core.a"
  "libada_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
