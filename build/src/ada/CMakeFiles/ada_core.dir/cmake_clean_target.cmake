file(REMOVE_RECURSE
  "libada_core.a"
)
