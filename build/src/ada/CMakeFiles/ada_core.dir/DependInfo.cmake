
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ada/categorizer.cpp" "src/ada/CMakeFiles/ada_core.dir/categorizer.cpp.o" "gcc" "src/ada/CMakeFiles/ada_core.dir/categorizer.cpp.o.d"
  "/root/repo/src/ada/dispatcher.cpp" "src/ada/CMakeFiles/ada_core.dir/dispatcher.cpp.o" "gcc" "src/ada/CMakeFiles/ada_core.dir/dispatcher.cpp.o.d"
  "/root/repo/src/ada/indexer.cpp" "src/ada/CMakeFiles/ada_core.dir/indexer.cpp.o" "gcc" "src/ada/CMakeFiles/ada_core.dir/indexer.cpp.o.d"
  "/root/repo/src/ada/ingest_stream.cpp" "src/ada/CMakeFiles/ada_core.dir/ingest_stream.cpp.o" "gcc" "src/ada/CMakeFiles/ada_core.dir/ingest_stream.cpp.o.d"
  "/root/repo/src/ada/label_store.cpp" "src/ada/CMakeFiles/ada_core.dir/label_store.cpp.o" "gcc" "src/ada/CMakeFiles/ada_core.dir/label_store.cpp.o.d"
  "/root/repo/src/ada/middleware.cpp" "src/ada/CMakeFiles/ada_core.dir/middleware.cpp.o" "gcc" "src/ada/CMakeFiles/ada_core.dir/middleware.cpp.o.d"
  "/root/repo/src/ada/preprocessor.cpp" "src/ada/CMakeFiles/ada_core.dir/preprocessor.cpp.o" "gcc" "src/ada/CMakeFiles/ada_core.dir/preprocessor.cpp.o.d"
  "/root/repo/src/ada/schema_config.cpp" "src/ada/CMakeFiles/ada_core.dir/schema_config.cpp.o" "gcc" "src/ada/CMakeFiles/ada_core.dir/schema_config.cpp.o.d"
  "/root/repo/src/ada/vfs.cpp" "src/ada/CMakeFiles/ada_core.dir/vfs.cpp.o" "gcc" "src/ada/CMakeFiles/ada_core.dir/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ada_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/ada_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ada_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ada_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/plfs/CMakeFiles/ada_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/ada_xdr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
