# Empty dependencies file for ada_core.
# This may be replaced when dependencies are built.
