file(REMOVE_RECURSE
  "CMakeFiles/ada_net.dir/fabric.cpp.o"
  "CMakeFiles/ada_net.dir/fabric.cpp.o.d"
  "libada_net.a"
  "libada_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
