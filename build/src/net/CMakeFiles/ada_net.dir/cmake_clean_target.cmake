file(REMOVE_RECURSE
  "libada_net.a"
)
