# Empty compiler generated dependencies file for ada_net.
# This may be replaced when dependencies are built.
