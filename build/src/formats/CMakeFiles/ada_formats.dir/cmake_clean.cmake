file(REMOVE_RECURSE
  "CMakeFiles/ada_formats.dir/pdb.cpp.o"
  "CMakeFiles/ada_formats.dir/pdb.cpp.o.d"
  "CMakeFiles/ada_formats.dir/raw_traj.cpp.o"
  "CMakeFiles/ada_formats.dir/raw_traj.cpp.o.d"
  "CMakeFiles/ada_formats.dir/trr_file.cpp.o"
  "CMakeFiles/ada_formats.dir/trr_file.cpp.o.d"
  "CMakeFiles/ada_formats.dir/xtc_file.cpp.o"
  "CMakeFiles/ada_formats.dir/xtc_file.cpp.o.d"
  "libada_formats.a"
  "libada_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
