file(REMOVE_RECURSE
  "libada_formats.a"
)
