# Empty compiler generated dependencies file for ada_formats.
# This may be replaced when dependencies are built.
