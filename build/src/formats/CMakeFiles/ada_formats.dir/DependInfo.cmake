
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formats/pdb.cpp" "src/formats/CMakeFiles/ada_formats.dir/pdb.cpp.o" "gcc" "src/formats/CMakeFiles/ada_formats.dir/pdb.cpp.o.d"
  "/root/repo/src/formats/raw_traj.cpp" "src/formats/CMakeFiles/ada_formats.dir/raw_traj.cpp.o" "gcc" "src/formats/CMakeFiles/ada_formats.dir/raw_traj.cpp.o.d"
  "/root/repo/src/formats/trr_file.cpp" "src/formats/CMakeFiles/ada_formats.dir/trr_file.cpp.o" "gcc" "src/formats/CMakeFiles/ada_formats.dir/trr_file.cpp.o.d"
  "/root/repo/src/formats/xtc_file.cpp" "src/formats/CMakeFiles/ada_formats.dir/xtc_file.cpp.o" "gcc" "src/formats/CMakeFiles/ada_formats.dir/xtc_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/ada_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ada_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/ada_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ada_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
