# Empty compiler generated dependencies file for ada_codec.
# This may be replaced when dependencies are built.
