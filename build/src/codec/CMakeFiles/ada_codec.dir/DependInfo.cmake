
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cpp" "src/codec/CMakeFiles/ada_codec.dir/bitstream.cpp.o" "gcc" "src/codec/CMakeFiles/ada_codec.dir/bitstream.cpp.o.d"
  "/root/repo/src/codec/coord_codec.cpp" "src/codec/CMakeFiles/ada_codec.dir/coord_codec.cpp.o" "gcc" "src/codec/CMakeFiles/ada_codec.dir/coord_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ada_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
