file(REMOVE_RECURSE
  "CMakeFiles/ada_codec.dir/bitstream.cpp.o"
  "CMakeFiles/ada_codec.dir/bitstream.cpp.o.d"
  "CMakeFiles/ada_codec.dir/coord_codec.cpp.o"
  "CMakeFiles/ada_codec.dir/coord_codec.cpp.o.d"
  "libada_codec.a"
  "libada_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
