file(REMOVE_RECURSE
  "libada_codec.a"
)
