file(REMOVE_RECURSE
  "libada_chem.a"
)
