file(REMOVE_RECURSE
  "CMakeFiles/ada_chem.dir/classify.cpp.o"
  "CMakeFiles/ada_chem.dir/classify.cpp.o.d"
  "CMakeFiles/ada_chem.dir/element.cpp.o"
  "CMakeFiles/ada_chem.dir/element.cpp.o.d"
  "CMakeFiles/ada_chem.dir/selection.cpp.o"
  "CMakeFiles/ada_chem.dir/selection.cpp.o.d"
  "CMakeFiles/ada_chem.dir/system.cpp.o"
  "CMakeFiles/ada_chem.dir/system.cpp.o.d"
  "libada_chem.a"
  "libada_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
