
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/classify.cpp" "src/chem/CMakeFiles/ada_chem.dir/classify.cpp.o" "gcc" "src/chem/CMakeFiles/ada_chem.dir/classify.cpp.o.d"
  "/root/repo/src/chem/element.cpp" "src/chem/CMakeFiles/ada_chem.dir/element.cpp.o" "gcc" "src/chem/CMakeFiles/ada_chem.dir/element.cpp.o.d"
  "/root/repo/src/chem/selection.cpp" "src/chem/CMakeFiles/ada_chem.dir/selection.cpp.o" "gcc" "src/chem/CMakeFiles/ada_chem.dir/selection.cpp.o.d"
  "/root/repo/src/chem/system.cpp" "src/chem/CMakeFiles/ada_chem.dir/system.cpp.o" "gcc" "src/chem/CMakeFiles/ada_chem.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
