# Empty dependencies file for ada_chem.
# This may be replaced when dependencies are built.
