file(REMOVE_RECURSE
  "CMakeFiles/ada_obs.dir/export.cpp.o"
  "CMakeFiles/ada_obs.dir/export.cpp.o.d"
  "CMakeFiles/ada_obs.dir/metrics.cpp.o"
  "CMakeFiles/ada_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/ada_obs.dir/trace.cpp.o"
  "CMakeFiles/ada_obs.dir/trace.cpp.o.d"
  "libada_obs.a"
  "libada_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
