# Empty dependencies file for ada_obs.
# This may be replaced when dependencies are built.
