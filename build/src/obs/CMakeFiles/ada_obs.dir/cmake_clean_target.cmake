file(REMOVE_RECURSE
  "libada_obs.a"
)
