file(REMOVE_RECURSE
  "CMakeFiles/ada_sim.dir/flow_network.cpp.o"
  "CMakeFiles/ada_sim.dir/flow_network.cpp.o.d"
  "CMakeFiles/ada_sim.dir/resource.cpp.o"
  "CMakeFiles/ada_sim.dir/resource.cpp.o.d"
  "CMakeFiles/ada_sim.dir/simulator.cpp.o"
  "CMakeFiles/ada_sim.dir/simulator.cpp.o.d"
  "libada_sim.a"
  "libada_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
