file(REMOVE_RECURSE
  "libada_sim.a"
)
