# Empty compiler generated dependencies file for ada_sim.
# This may be replaced when dependencies are built.
