file(REMOVE_RECURSE
  "libada_common.a"
)
