# Empty dependencies file for ada_common.
# This may be replaced when dependencies are built.
