file(REMOVE_RECURSE
  "CMakeFiles/ada_common.dir/binary_io.cpp.o"
  "CMakeFiles/ada_common.dir/binary_io.cpp.o.d"
  "CMakeFiles/ada_common.dir/log.cpp.o"
  "CMakeFiles/ada_common.dir/log.cpp.o.d"
  "CMakeFiles/ada_common.dir/strings.cpp.o"
  "CMakeFiles/ada_common.dir/strings.cpp.o.d"
  "CMakeFiles/ada_common.dir/table.cpp.o"
  "CMakeFiles/ada_common.dir/table.cpp.o.d"
  "CMakeFiles/ada_common.dir/units.cpp.o"
  "CMakeFiles/ada_common.dir/units.cpp.o.d"
  "libada_common.a"
  "libada_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
