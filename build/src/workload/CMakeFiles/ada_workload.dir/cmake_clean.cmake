file(REMOVE_RECURSE
  "CMakeFiles/ada_workload.dir/gpcr_builder.cpp.o"
  "CMakeFiles/ada_workload.dir/gpcr_builder.cpp.o.d"
  "CMakeFiles/ada_workload.dir/spec.cpp.o"
  "CMakeFiles/ada_workload.dir/spec.cpp.o.d"
  "CMakeFiles/ada_workload.dir/trajectory_gen.cpp.o"
  "CMakeFiles/ada_workload.dir/trajectory_gen.cpp.o.d"
  "libada_workload.a"
  "libada_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
