
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/gpcr_builder.cpp" "src/workload/CMakeFiles/ada_workload.dir/gpcr_builder.cpp.o" "gcc" "src/workload/CMakeFiles/ada_workload.dir/gpcr_builder.cpp.o.d"
  "/root/repo/src/workload/spec.cpp" "src/workload/CMakeFiles/ada_workload.dir/spec.cpp.o" "gcc" "src/workload/CMakeFiles/ada_workload.dir/spec.cpp.o.d"
  "/root/repo/src/workload/trajectory_gen.cpp" "src/workload/CMakeFiles/ada_workload.dir/trajectory_gen.cpp.o" "gcc" "src/workload/CMakeFiles/ada_workload.dir/trajectory_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/ada_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ada_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/ada_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ada_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ada_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
