# Empty dependencies file for ada_workload.
# This may be replaced when dependencies are built.
