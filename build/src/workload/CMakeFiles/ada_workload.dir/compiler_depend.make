# Empty compiler generated dependencies file for ada_workload.
# This may be replaced when dependencies are built.
