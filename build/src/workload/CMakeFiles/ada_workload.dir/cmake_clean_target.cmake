file(REMOVE_RECURSE
  "libada_workload.a"
)
