
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmd/analysis.cpp" "src/vmd/CMakeFiles/ada_vmd.dir/analysis.cpp.o" "gcc" "src/vmd/CMakeFiles/ada_vmd.dir/analysis.cpp.o.d"
  "/root/repo/src/vmd/command.cpp" "src/vmd/CMakeFiles/ada_vmd.dir/command.cpp.o" "gcc" "src/vmd/CMakeFiles/ada_vmd.dir/command.cpp.o.d"
  "/root/repo/src/vmd/frame_store.cpp" "src/vmd/CMakeFiles/ada_vmd.dir/frame_store.cpp.o" "gcc" "src/vmd/CMakeFiles/ada_vmd.dir/frame_store.cpp.o.d"
  "/root/repo/src/vmd/geometry.cpp" "src/vmd/CMakeFiles/ada_vmd.dir/geometry.cpp.o" "gcc" "src/vmd/CMakeFiles/ada_vmd.dir/geometry.cpp.o.d"
  "/root/repo/src/vmd/mol.cpp" "src/vmd/CMakeFiles/ada_vmd.dir/mol.cpp.o" "gcc" "src/vmd/CMakeFiles/ada_vmd.dir/mol.cpp.o.d"
  "/root/repo/src/vmd/profiler.cpp" "src/vmd/CMakeFiles/ada_vmd.dir/profiler.cpp.o" "gcc" "src/vmd/CMakeFiles/ada_vmd.dir/profiler.cpp.o.d"
  "/root/repo/src/vmd/renderer.cpp" "src/vmd/CMakeFiles/ada_vmd.dir/renderer.cpp.o" "gcc" "src/vmd/CMakeFiles/ada_vmd.dir/renderer.cpp.o.d"
  "/root/repo/src/vmd/replay.cpp" "src/vmd/CMakeFiles/ada_vmd.dir/replay.cpp.o" "gcc" "src/vmd/CMakeFiles/ada_vmd.dir/replay.cpp.o.d"
  "/root/repo/src/vmd/select.cpp" "src/vmd/CMakeFiles/ada_vmd.dir/select.cpp.o" "gcc" "src/vmd/CMakeFiles/ada_vmd.dir/select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/ada_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ada_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/ada/CMakeFiles/ada_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ada_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/ada_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ada_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/plfs/CMakeFiles/ada_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ada_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ada_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
