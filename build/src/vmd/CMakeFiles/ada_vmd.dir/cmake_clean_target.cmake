file(REMOVE_RECURSE
  "libada_vmd.a"
)
