# Empty compiler generated dependencies file for ada_vmd.
# This may be replaced when dependencies are built.
