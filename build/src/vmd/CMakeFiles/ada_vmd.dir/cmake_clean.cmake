file(REMOVE_RECURSE
  "CMakeFiles/ada_vmd.dir/analysis.cpp.o"
  "CMakeFiles/ada_vmd.dir/analysis.cpp.o.d"
  "CMakeFiles/ada_vmd.dir/command.cpp.o"
  "CMakeFiles/ada_vmd.dir/command.cpp.o.d"
  "CMakeFiles/ada_vmd.dir/frame_store.cpp.o"
  "CMakeFiles/ada_vmd.dir/frame_store.cpp.o.d"
  "CMakeFiles/ada_vmd.dir/geometry.cpp.o"
  "CMakeFiles/ada_vmd.dir/geometry.cpp.o.d"
  "CMakeFiles/ada_vmd.dir/mol.cpp.o"
  "CMakeFiles/ada_vmd.dir/mol.cpp.o.d"
  "CMakeFiles/ada_vmd.dir/profiler.cpp.o"
  "CMakeFiles/ada_vmd.dir/profiler.cpp.o.d"
  "CMakeFiles/ada_vmd.dir/renderer.cpp.o"
  "CMakeFiles/ada_vmd.dir/renderer.cpp.o.d"
  "CMakeFiles/ada_vmd.dir/replay.cpp.o"
  "CMakeFiles/ada_vmd.dir/replay.cpp.o.d"
  "CMakeFiles/ada_vmd.dir/select.cpp.o"
  "CMakeFiles/ada_vmd.dir/select.cpp.o.d"
  "libada_vmd.a"
  "libada_vmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_vmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
