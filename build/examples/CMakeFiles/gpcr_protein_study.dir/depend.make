# Empty dependencies file for gpcr_protein_study.
# This may be replaced when dependencies are built.
