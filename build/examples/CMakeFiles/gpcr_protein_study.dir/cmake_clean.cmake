file(REMOVE_RECURSE
  "CMakeFiles/gpcr_protein_study.dir/gpcr_protein_study.cpp.o"
  "CMakeFiles/gpcr_protein_study.dir/gpcr_protein_study.cpp.o.d"
  "gpcr_protein_study"
  "gpcr_protein_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpcr_protein_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
