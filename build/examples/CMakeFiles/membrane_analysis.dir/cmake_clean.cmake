file(REMOVE_RECURSE
  "CMakeFiles/membrane_analysis.dir/membrane_analysis.cpp.o"
  "CMakeFiles/membrane_analysis.dir/membrane_analysis.cpp.o.d"
  "membrane_analysis"
  "membrane_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membrane_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
