# Empty dependencies file for membrane_analysis.
# This may be replaced when dependencies are built.
