# Empty dependencies file for cluster_replay.
# This may be replaced when dependencies are built.
