file(REMOVE_RECURSE
  "CMakeFiles/custom_schema_tags.dir/custom_schema_tags.cpp.o"
  "CMakeFiles/custom_schema_tags.dir/custom_schema_tags.cpp.o.d"
  "custom_schema_tags"
  "custom_schema_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_schema_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
