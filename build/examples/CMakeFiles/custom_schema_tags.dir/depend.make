# Empty dependencies file for custom_schema_tags.
# This may be replaced when dependencies are built.
