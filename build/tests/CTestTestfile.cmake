# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/xdr_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/chem_test[1]_include.cmake")
include("/root/repo/build/tests/selection_property_test[1]_include.cmake")
include("/root/repo/build/tests/formats_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/pvfs_test[1]_include.cmake")
include("/root/repo/build/tests/plfs_test[1]_include.cmake")
include("/root/repo/build/tests/ada_core_test[1]_include.cmake")
include("/root/repo/build/tests/vmd_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/trr_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_fsck_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/xtc_property_test[1]_include.cmake")
include("/root/repo/build/tests/select_test[1]_include.cmake")
include("/root/repo/build/tests/device_model_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_inputs_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_pipeline_test[1]_include.cmake")
