# Empty dependencies file for ada_core_test.
# This may be replaced when dependencies are built.
