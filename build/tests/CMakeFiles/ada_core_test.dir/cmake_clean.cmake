file(REMOVE_RECURSE
  "CMakeFiles/ada_core_test.dir/ada_core_test.cpp.o"
  "CMakeFiles/ada_core_test.dir/ada_core_test.cpp.o.d"
  "ada_core_test"
  "ada_core_test.pdb"
  "ada_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
