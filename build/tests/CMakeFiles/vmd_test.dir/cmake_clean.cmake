file(REMOVE_RECURSE
  "CMakeFiles/vmd_test.dir/vmd_test.cpp.o"
  "CMakeFiles/vmd_test.dir/vmd_test.cpp.o.d"
  "vmd_test"
  "vmd_test.pdb"
  "vmd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
