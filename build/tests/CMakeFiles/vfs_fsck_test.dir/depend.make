# Empty dependencies file for vfs_fsck_test.
# This may be replaced when dependencies are built.
