file(REMOVE_RECURSE
  "CMakeFiles/vfs_fsck_test.dir/vfs_fsck_test.cpp.o"
  "CMakeFiles/vfs_fsck_test.dir/vfs_fsck_test.cpp.o.d"
  "vfs_fsck_test"
  "vfs_fsck_test.pdb"
  "vfs_fsck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfs_fsck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
