file(REMOVE_RECURSE
  "CMakeFiles/plfs_test.dir/plfs_test.cpp.o"
  "CMakeFiles/plfs_test.dir/plfs_test.cpp.o.d"
  "plfs_test"
  "plfs_test.pdb"
  "plfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
