file(REMOVE_RECURSE
  "CMakeFiles/selection_property_test.dir/selection_property_test.cpp.o"
  "CMakeFiles/selection_property_test.dir/selection_property_test.cpp.o.d"
  "selection_property_test"
  "selection_property_test.pdb"
  "selection_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
