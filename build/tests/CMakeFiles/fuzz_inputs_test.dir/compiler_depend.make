# Empty compiler generated dependencies file for fuzz_inputs_test.
# This may be replaced when dependencies are built.
