file(REMOVE_RECURSE
  "CMakeFiles/fuzz_inputs_test.dir/fuzz_inputs_test.cpp.o"
  "CMakeFiles/fuzz_inputs_test.dir/fuzz_inputs_test.cpp.o.d"
  "fuzz_inputs_test"
  "fuzz_inputs_test.pdb"
  "fuzz_inputs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_inputs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
