file(REMOVE_RECURSE
  "CMakeFiles/xtc_property_test.dir/xtc_property_test.cpp.o"
  "CMakeFiles/xtc_property_test.dir/xtc_property_test.cpp.o.d"
  "xtc_property_test"
  "xtc_property_test.pdb"
  "xtc_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
