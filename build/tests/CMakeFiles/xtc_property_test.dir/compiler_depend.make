# Empty compiler generated dependencies file for xtc_property_test.
# This may be replaced when dependencies are built.
