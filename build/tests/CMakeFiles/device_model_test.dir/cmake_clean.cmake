file(REMOVE_RECURSE
  "CMakeFiles/device_model_test.dir/device_model_test.cpp.o"
  "CMakeFiles/device_model_test.dir/device_model_test.cpp.o.d"
  "device_model_test"
  "device_model_test.pdb"
  "device_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
