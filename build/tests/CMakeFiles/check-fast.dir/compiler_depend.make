# Empty custom commands generated dependencies file for check-fast.
# This may be replaced when dependencies are built.
