file(REMOVE_RECURSE
  "CMakeFiles/check-fast"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/check-fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
