file(REMOVE_RECURSE
  "CMakeFiles/chem_test.dir/chem_test.cpp.o"
  "CMakeFiles/chem_test.dir/chem_test.cpp.o.d"
  "chem_test"
  "chem_test.pdb"
  "chem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
