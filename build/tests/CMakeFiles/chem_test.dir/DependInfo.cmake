
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chem_test.cpp" "tests/CMakeFiles/chem_test.dir/chem_test.cpp.o" "gcc" "tests/CMakeFiles/chem_test.dir/chem_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/ada_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ada_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pvfs/CMakeFiles/ada_pvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ada_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vmd/CMakeFiles/ada_vmd.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ada_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ada_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ada/CMakeFiles/ada_core.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ada_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/ada_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ada_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/ada_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/plfs/CMakeFiles/ada_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ada_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
