file(REMOVE_RECURSE
  "CMakeFiles/ada-inspect.dir/ada-inspect.cpp.o"
  "CMakeFiles/ada-inspect.dir/ada-inspect.cpp.o.d"
  "ada-inspect"
  "ada-inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada-inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
