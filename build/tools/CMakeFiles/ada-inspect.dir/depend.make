# Empty dependencies file for ada-inspect.
# This may be replaced when dependencies are built.
