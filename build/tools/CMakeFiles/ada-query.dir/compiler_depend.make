# Empty compiler generated dependencies file for ada-query.
# This may be replaced when dependencies are built.
