file(REMOVE_RECURSE
  "CMakeFiles/ada-query.dir/ada-query.cpp.o"
  "CMakeFiles/ada-query.dir/ada-query.cpp.o.d"
  "ada-query"
  "ada-query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada-query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
