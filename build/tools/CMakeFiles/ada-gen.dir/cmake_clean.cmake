file(REMOVE_RECURSE
  "CMakeFiles/ada-gen.dir/ada-gen.cpp.o"
  "CMakeFiles/ada-gen.dir/ada-gen.cpp.o.d"
  "ada-gen"
  "ada-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
