# Empty compiler generated dependencies file for ada-gen.
# This may be replaced when dependencies are built.
