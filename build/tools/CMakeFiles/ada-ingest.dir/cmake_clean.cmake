file(REMOVE_RECURSE
  "CMakeFiles/ada-ingest.dir/ada-ingest.cpp.o"
  "CMakeFiles/ada-ingest.dir/ada-ingest.cpp.o.d"
  "ada-ingest"
  "ada-ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada-ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
