# Empty compiler generated dependencies file for ada-ingest.
# This may be replaced when dependencies are built.
