# Empty compiler generated dependencies file for fig7_ssd_server.
# This may be replaced when dependencies are built.
