file(REMOVE_RECURSE
  "CMakeFiles/fig7_ssd_server.dir/fig7_ssd_server.cpp.o"
  "CMakeFiles/fig7_ssd_server.dir/fig7_ssd_server.cpp.o.d"
  "fig7_ssd_server"
  "fig7_ssd_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ssd_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
