file(REMOVE_RECURSE
  "CMakeFiles/fig9_cluster.dir/fig9_cluster.cpp.o"
  "CMakeFiles/fig9_cluster.dir/fig9_cluster.cpp.o.d"
  "fig9_cluster"
  "fig9_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
