# Empty compiler generated dependencies file for fig10_fatnode.
# This may be replaced when dependencies are built.
