file(REMOVE_RECURSE
  "CMakeFiles/fig10_fatnode.dir/fig10_fatnode.cpp.o"
  "CMakeFiles/fig10_fatnode.dir/fig10_fatnode.cpp.o.d"
  "fig10_fatnode"
  "fig10_fatnode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fatnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
