# Empty compiler generated dependencies file for ablation_rearrangement.
# This may be replaced when dependencies are built.
