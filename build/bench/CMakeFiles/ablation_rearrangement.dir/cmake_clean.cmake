file(REMOVE_RECURSE
  "CMakeFiles/ablation_rearrangement.dir/ablation_rearrangement.cpp.o"
  "CMakeFiles/ablation_rearrangement.dir/ablation_rearrangement.cpp.o.d"
  "ablation_rearrangement"
  "ablation_rearrangement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rearrangement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
