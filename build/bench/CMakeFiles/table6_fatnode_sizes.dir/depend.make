# Empty dependencies file for table6_fatnode_sizes.
# This may be replaced when dependencies are built.
