file(REMOVE_RECURSE
  "CMakeFiles/table6_fatnode_sizes.dir/table6_fatnode_sizes.cpp.o"
  "CMakeFiles/table6_fatnode_sizes.dir/table6_fatnode_sizes.cpp.o.d"
  "table6_fatnode_sizes"
  "table6_fatnode_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_fatnode_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
