# Empty compiler generated dependencies file for fig8_cpu_burst.
# This may be replaced when dependencies are built.
