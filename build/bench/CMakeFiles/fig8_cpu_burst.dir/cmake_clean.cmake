file(REMOVE_RECURSE
  "CMakeFiles/fig8_cpu_burst.dir/fig8_cpu_burst.cpp.o"
  "CMakeFiles/fig8_cpu_burst.dir/fig8_cpu_burst.cpp.o.d"
  "fig8_cpu_burst"
  "fig8_cpu_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cpu_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
