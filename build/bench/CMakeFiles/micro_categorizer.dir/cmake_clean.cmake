file(REMOVE_RECURSE
  "CMakeFiles/micro_categorizer.dir/micro_categorizer.cpp.o"
  "CMakeFiles/micro_categorizer.dir/micro_categorizer.cpp.o.d"
  "micro_categorizer"
  "micro_categorizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_categorizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
