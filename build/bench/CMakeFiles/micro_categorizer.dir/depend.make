# Empty dependencies file for micro_categorizer.
# This may be replaced when dependencies are built.
