file(REMOVE_RECURSE
  "CMakeFiles/table2_data_sizes.dir/table2_data_sizes.cpp.o"
  "CMakeFiles/table2_data_sizes.dir/table2_data_sizes.cpp.o.d"
  "table2_data_sizes"
  "table2_data_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_data_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
