// Table 1: Data Components of Three .xtc Files.
//
// The paper measures, for three GPCR trajectory files (626 / 1,251 / 5,006
// frames), the compressed file size, the protein share of the compressed
// bytes, and the protein fraction (44 / 49 / 43.5%).
//
// We regenerate the table from first principles: really compress full-size
// frames of the synthetic GPCR system, attribute each frame's packed bits to
// the protein/MISC atom ranges using the codec's per-atom costs, then scale
// the per-frame means to the three file sizes.
#include <iostream>

#include "ada/categorizer.hpp"
#include "bench/bench_util.hpp"
#include "codec/coord_codec.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/spec.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

int main() {
  bench::banner("Table 1: Data Components of Three .xtc Files", "paper Table 1");

  const auto system =
      workload::GpcrSystemBuilder(workload::GpcrSpec::paper_default()).build();
  const auto labels = core::categorize_protein_misc(system);
  const auto protein = labels.groups.at(core::kProteinTag);

  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  for (int f = 0; f < 3; ++f) gen.next_frame();  // OU warm-up

  constexpr int kSample = 12;
  double total_bits = 0;
  double protein_bits = 0;
  double frame_overhead_bytes = 70;  // XTC header (magic/step/time/box/codec hdr)
  for (int f = 0; f < kSample; ++f) {
    codec::PerAtomCost cost;
    const auto frame = codec::compress(gen.next_frame(), {}, &cost).value();
    total_bits += static_cast<double>(frame.payload_bits);
    for (const chem::Run& run : protein.runs()) {
      protein_bits += static_cast<double>(codec::range_bits(cost, run.begin, run.end));
    }
  }
  const double compressed_per_frame = total_bits / 8 / kSample + frame_overhead_bytes;
  const double protein_per_frame = protein_bits / 8 / kSample;

  Table table({"Number of frames", "Complete data (MB)", "Protein data (MB)",
               "Protein fraction (%)"});
  for (const std::uint32_t frames : workload::FrameSeries::kTable1) {
    const double complete = compressed_per_frame * frames / kMB;
    const double prot = protein_per_frame * frames / kMB;
    table.add_row({bench::with_thousands(frames), format_fixed(complete, 0),
                   format_fixed(prot, 0), format_fixed(100.0 * prot / complete, 1)});
  }
  table.print(std::cout);

  std::cout << "\npaper reference rows: 626 -> 100/44 MB (44%), 1,251 -> 200/98 MB (49%),\n"
               "                      5,006 -> 800/348 MB (43.5%)\n"
               "shape check: protein fraction of the compressed file stays in the 40-50%\n"
               "band and tracks the 42.5% atom fraction.\n";
  bench::obs_report();
  return 0;
}
