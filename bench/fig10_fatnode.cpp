// Fig. 10: Evaluation on the 1 TB fat-node server (Section 4.3).
//
//   (a) raw data retrieval time   (b) data processing turnaround time
//   (c) memory usage              (d) energy consumption
//
// Scenarios: C-XFS, D-XFS, D-ADA (all), D-ADA (protein) over 13 frame
// counts.  Headlines: XFS and ADA(all) are OOM-killed at 1,876,800 frames
// while ADA(protein) survives to 4,379,200 (>2x renderable frames); XFS
// consumes >3x ADA's energy; retrieval is <10% of turnaround at scale.
#include <iostream>

#include "bench/bench_util.hpp"
#include "platform/platform.hpp"
#include "workload/spec.hpp"

using namespace ada;

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_flag(argc, argv);
  const std::string telemetry_spec = bench::telemetry_flag(argc, argv);
  const auto plat = platform::Platform::fat_node();
  const auto& profile = platform::FrameProfile::paper_gpcr();

  bench::banner("Fig. 10: Evaluation on a Fat-Node Server", "paper Fig. 10a-10d");

  Table retrieval({"frames", "C-XFS", "D-XFS", "D-ADA (all)", "D-ADA (protein)"});
  Table turnaround({"frames", "C-XFS", "D-XFS", "D-ADA (all)", "D-ADA (protein)",
                    "retr/turnaround C-XFS"});
  Table memory({"frames", "C-XFS", "D-XFS", "D-ADA (all)", "D-ADA (protein)"});
  Table energy({"frames", "C-XFS (kJ)", "D-XFS (kJ)", "D-ADA all (kJ)", "D-ADA protein (kJ)",
                "XFS/ADA(p)"});

  for (const std::uint32_t frames : workload::FrameSeries::kFatNode) {
    const auto sizes = platform::WorkloadSizes::from_profile(profile, frames);
    const auto results = platform::run_all_scenarios(plat, sizes);
    const auto& c = results[0];
    const auto& d = results[1];
    const auto& all = results[2];
    const auto& p = results[3];
    const std::string f = bench::with_thousands(frames);
    retrieval.add_row({f, bench::seconds_cell(c, c.retrieval_s),
                       bench::seconds_cell(d, d.retrieval_s),
                       bench::seconds_cell(all, all.retrieval_s),
                       bench::seconds_cell(p, p.retrieval_s)});
    turnaround.add_row({f, bench::seconds_cell(c, c.turnaround_s),
                        bench::seconds_cell(d, d.turnaround_s),
                        bench::seconds_cell(all, all.turnaround_s),
                        bench::seconds_cell(p, p.turnaround_s),
                        c.oom ? "-" : format_fixed(100.0 * c.retrieval_s / c.turnaround_s, 1) + "%"});
    memory.add_row({f, bench::memory_cell(c), bench::memory_cell(d), bench::memory_cell(all),
                    bench::memory_cell(p)});
    auto kj = [](const platform::ScenarioResult& r) {
      return (r.oom ? "(to kill) " : "") + format_fixed(r.energy_joules / 1e3, 0);
    };
    energy.add_row({f, kj(c), kj(d), kj(all), kj(p),
                    format_fixed(c.energy_joules / p.energy_joules, 1) + "x"});
  }

  std::cout << "\n--- Fig. 10a: raw data retrieval time ---\n";
  retrieval.print(std::cout);
  std::cout << "\n--- Fig. 10b: data processing turnaround time ---\n";
  turnaround.print(std::cout);
  std::cout << "shape check: retrieval share of C-XFS turnaround falls below 10% at scale\n"
               "(paper: \"less than 10%\"); XFS and ADA (all) die at 1,876,800 frames;\n"
               "ADA (protein) survives to 4,379,200 and dies at 5,004,800 -- the paper's\n"
               "\">2x VMD graphs\" claim (4,379,200 / 1,564,000 = 2.8x renderable frames).\n";
  std::cout << "\n--- Fig. 10c: memory usage ---\n";
  memory.print(std::cout);
  std::cout << "\n--- Fig. 10d: energy consumption ---\n";
  energy.print(std::cout);
  std::cout << "shape check: XFS >3x ADA energy on completed runs (paper: \"more then 3x\",\n"
               ">12,500 kJ for XFS vs <5,000 kJ ADA(all) / ~2,200 kJ ADA(protein)).\n";
  bench::obs_report();
  bench::telemetry_report(telemetry_spec);
  bench::trace_report(trace_path);
  return 0;
}
