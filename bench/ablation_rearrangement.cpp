// Ablation: data rearrangement (paper Section 3.2).
//
// ADA's pre-processor does two things: *filtering* (drop MISC) and
// *rearrangement* (store the protein subset contiguously).  Filtering gets
// all the attention in the evaluation, but rearrangement matters on HDDs:
// reading just the protein portion out of an *interleaved* raw trajectory
// means one discontiguous access per frame (seek + rotational latency),
// while ADA's contiguous subset streams.  This harness quantifies that with
// the mechanical HDD model, per frame count.
#include <iostream>

#include "bench/bench_util.hpp"
#include "platform/workload_stats.hpp"
#include "storage/hdd_model.hpp"
#include "workload/spec.hpp"

using namespace ada;

int main() {
  bench::banner("Ablation: data rearrangement on HDD", "paper Section 3.2 design claim");

  const auto& profile = platform::FrameProfile::paper_gpcr();

  Table table({"frames", "contiguous subset (ADA layout)", "interleaved reads (raw layout)",
               "full-file scan + filter", "rearrangement gain"});
  for (const std::uint32_t frames : {626u, 1'251u, 2'503u, 5'006u}) {
    const auto sizes = platform::WorkloadSizes::from_profile(profile, frames);
    const auto raw_frame = static_cast<std::uint64_t>(profile.raw_per_frame);
    const auto protein_frame = static_cast<std::uint64_t>(profile.protein_raw_per_frame);

    // (a) ADA's layout: the protein subset is one contiguous stream.
    storage::HddModel contiguous;
    const double t_contiguous =
        contiguous.sequential_read_time(0, static_cast<std::uint64_t>(sizes.protein_bytes));

    // (b) raw layout, surgical reads: fetch only each frame's protein slice
    // (protein atoms lead each frame), skipping the MISC tail -- one
    // discontiguous access per frame.
    storage::HddModel interleaved;
    double t_interleaved = 0;
    for (std::uint32_t f = 0; f < frames; ++f) {
      t_interleaved += interleaved.access(static_cast<std::uint64_t>(f) * raw_frame,
                                          protein_frame);
    }

    // (c) raw layout, streaming: read everything sequentially and filter in
    // memory (what VMD actually does -- and why, given (b)).
    storage::HddModel streaming;
    const double t_stream =
        streaming.sequential_read_time(0, static_cast<std::uint64_t>(sizes.raw_bytes));

    table.add_row({bench::with_thousands(frames), format_seconds(t_contiguous),
                   format_seconds(t_interleaved), format_seconds(t_stream),
                   format_fixed(t_stream / t_contiguous, 1) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nreading: without rearrangement there is no good option on an HDD --\n"
               "surgical per-frame reads drown in seeks (worse than reading everything),\n"
               "so the traditional workflow streams the whole file and filters in memory.\n"
               "ADA's contiguous subset turns the protein read into a pure stream of 42.5%\n"
               "of the bytes: the rearrangement alone buys ~2.4x on HDD retrieval, before\n"
               "any decompression savings.\n";
  bench::obs_report();
  return 0;
}
