// Streaming tail: ingest-to-queryable latency of the sealed-prefix path.
//
// A producer streams a GPCR trajectory frame by frame (paced like a running
// MD engine) while a follower polls Ada::query_tail over a second middleware
// on the same backends -- the ada-ingest --stream / ada-query --follow
// topology in one process.  For every watermark advance the harness records
// the wall time from the flush publishing the chunk to the follower first
// draining it; the headline numbers are the p50/p99 of those latencies and
// whether p99 stays inside ONE flush interval (chunk_frames x frame delay)
// -- the bound docs/streaming.md promises.  The follower's reassembled
// payload is byte-compared against a one-shot range query before anything
// is reported.  Emits BENCH_stream.json.
//
//   streaming_tail [--size tiny|paper] [--frames N] [--chunk N]
//                  [--delay-ms N] [--poll-ms N] [--out BENCH_stream.json]
//                  [--smoke]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

namespace {

namespace fs = std::filesystem;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Nearest-rank percentile of a sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string size = "paper";
  std::uint32_t frames = 128;
  std::uint32_t chunk = 8;
  long long delay_ms = 4;
  long long poll_ms = 1;
  std::string out_path = "BENCH_stream.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> std::string {
      if (arg.rfind(flag + "=", 0) == 0) return arg.substr(flag.size() + 1);
      return "";
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (!value("--size").empty()) {
      size = value("--size");
    } else if (!value("--frames").empty()) {
      frames = static_cast<std::uint32_t>(parse_int(value("--frames")));
    } else if (!value("--chunk").empty()) {
      chunk = static_cast<std::uint32_t>(parse_int(value("--chunk")));
    } else if (!value("--delay-ms").empty()) {
      delay_ms = parse_int(value("--delay-ms"));
    } else if (!value("--poll-ms").empty()) {
      poll_ms = parse_int(value("--poll-ms"));
    } else if (!value("--out").empty()) {
      out_path = value("--out");
    }
  }
  if (smoke) {
    size = "tiny";
    frames = 16;
    chunk = 4;
    delay_ms = 8;
    poll_ms = 1;
  }
  if (chunk == 0) chunk = 1;
  const double flush_interval_ms = static_cast<double>(chunk) * static_cast<double>(delay_ms);

  std::cout << "================================================================\n"
            << "Streaming tail: ingest-to-queryable latency of the sealed prefix\n"
            << "(GPCR synthetic workload, " << size << " system, " << frames << " frames, chunk "
            << chunk << ", " << delay_ms << " ms/frame, follower poll " << poll_ms << " ms)\n"
            << "================================================================\n";

  const auto spec =
      size == "tiny" ? workload::GpcrSpec::tiny() : workload::GpcrSpec::paper_default();
  const auto system = workload::GpcrSystemBuilder(spec).build();
  const auto labels = core::categorize_protein_misc(system);

  obs::set_enabled(false);
  const std::string root = (fs::temp_directory_path() / "ada_bench_streaming_tail").string();
  fs::remove_all(root);

  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  auto mount = [&] {
    return plfs::PlfsMount::open({{"ssd", root + "/ssd"}, {"hdd", root + "/hdd"}});
  };
  auto writer_mount = mount();
  auto follower_mount = mount();
  if (!writer_mount.is_ok() || !follower_mount.is_ok()) {
    std::cerr << "cannot open scratch backends under " << root << "\n";
    return 1;
  }
  core::Ada writer(std::move(writer_mount).value(), config);
  core::Ada follower(std::move(follower_mount).value(), config);

  const Clock::time_point start = Clock::now();

  // Follower: drain exactly like ada-query --follow, recording when each
  // cursor position first became visible.
  struct Observation {
    std::uint64_t cursor;  // frames drained so far when the poll returned
    double at_ms;
  };
  std::vector<Observation> seen;
  std::vector<std::uint8_t> followed;
  std::atomic<bool> follower_failed{false};
  std::uint64_t polls = 0;
  std::thread follower_thread([&] {
    std::uint64_t cursor = 0;
    for (;;) {
      ++polls;
      const auto chunk_result = follower.query_tail("live.xtc", core::kProteinTag, cursor);
      if (!chunk_result.is_ok()) {
        if (chunk_result.error().code() != ErrorCode::kNotFound) {
          follower_failed.store(true);
          return;
        }
      } else {
        const auto& tail = chunk_result.value();
        if (tail.frames != 0) {
          followed.insert(followed.end(), tail.image.begin() + 16, tail.image.end());
          cursor += tail.frames;
          seen.push_back({cursor, ms_since(start)});
          continue;  // drain back-to-back batches without sleeping
        }
        if (tail.sealed) return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  });

  // Producer: the paced stream.  Record the wall time of every watermark
  // advance (i.e. every flush publication).
  struct Flush {
    std::uint64_t watermark;
    double at_ms;
  };
  std::vector<Flush> flushes;
  {
    auto stream = writer.begin_stream(labels, "live.xtc", chunk);
    if (!stream.is_ok()) {
      std::cerr << "begin_stream failed: " << stream.error().to_string() << "\n";
      return 1;
    }
    workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
    std::uint64_t watermark = 0;
    for (std::uint32_t f = 0; f < frames; ++f) {
      const auto coords = gen.next_frame();
      const auto status =
          stream.value().add_frame(gen.current_step(), gen.current_time_ps(), system.box(), coords);
      if (!status.is_ok()) {
        std::cerr << "add_frame failed: " << status.error().to_string() << "\n";
        return 1;
      }
      if (stream.value().sealed_frames() != watermark) {
        watermark = stream.value().sealed_frames();
        flushes.push_back({watermark, ms_since(start)});
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    const auto report = stream.value().finish();
    if (!report.is_ok()) {
      std::cerr << "finish failed: " << report.error().to_string() << "\n";
      return 1;
    }
    if (report.value().sealed_frames != watermark) {
      flushes.push_back({report.value().sealed_frames, ms_since(start)});
    }
  }
  follower_thread.join();
  if (follower_failed.load()) {
    std::cerr << "follower aborted on a typed error\n";
    return 1;
  }

  // Correctness gate before any timing is reported: the follower's
  // reassembly must equal the one-shot range query, minus its RAW header.
  const auto oneshot =
      follower.query("live.xtc", core::kProteinTag, core::FrameRange{0, frames, 1});
  if (!oneshot.is_ok()) {
    std::cerr << "one-shot query failed: " << oneshot.error().to_string() << "\n";
    return 1;
  }
  const bool correct = followed.size() == oneshot.value().size() - 16 &&
                       std::equal(followed.begin(), followed.end(), oneshot.value().begin() + 16);
  if (!correct) {
    std::cerr << "followed payload differs from the one-shot query -- not reporting timings\n";
    return 1;
  }

  // Ingest-to-queryable latency per flush: publication to first follower
  // observation at (or past) that watermark.  A follower that polled between
  // write_stream_state and add_frame's return can log a slightly earlier
  // time; clamp to zero.
  std::vector<double> latencies;
  for (const Flush& flush : flushes) {
    for (const Observation& obs : seen) {
      if (obs.cursor >= flush.watermark) {
        latencies.push_back(std::max(0.0, obs.at_ms - flush.at_ms));
        break;
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const bool p99_bounded = p99 <= flush_interval_ms;

  std::printf("\n  flushes observed      %zu/%zu\n", latencies.size(), flushes.size());
  std::printf("  follower polls        %llu\n", static_cast<unsigned long long>(polls));
  std::printf("  latency p50           %8.2f ms\n", p50);
  std::printf("  latency p99           %8.2f ms\n", p99);
  std::printf("  flush interval        %8.2f ms  (p99 %s the bound)\n", flush_interval_ms,
              p99_bounded ? "inside" : "OUTSIDE");

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << bench::json_envelope("streaming_tail")
       << "  \"workload\": {\"system\": \"gpcr\", \"size\": \"" << size
       << "\", \"atoms\": " << system.atom_count() << ", \"frames\": " << frames
       << ", \"chunk_frames\": " << chunk << ", \"frame_delay_ms\": " << delay_ms
       << ", \"poll_ms\": " << poll_ms << "},\n"
       << "  \"stream\": {\"chunks\": " << flushes.size() << ", \"polls\": " << polls
       << ", \"p50_latency_ms\": " << p50 << ", \"p99_latency_ms\": " << p99
       << ", \"flush_interval_ms\": " << flush_interval_ms
       << ", \"p99_bounded\": " << (p99_bounded ? 1 : 0)
       << ", \"correct\": " << (correct ? 1 : 0) << "}\n}\n";
  json.close();
  std::cout << "wrote " << out_path << "\n";

  fs::remove_all(root);
  return 0;
}
