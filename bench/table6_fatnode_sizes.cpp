// Table 6: Data Size Comparisons (XFS vs. ADA) on the fat-node server.
#include <iostream>

#include "bench/bench_util.hpp"
#include "platform/workload_stats.hpp"
#include "workload/spec.hpp"

using namespace ada;

int main() {
  bench::banner("Table 6: Data Size Comparisons (XFS vs. ADA)", "paper Table 6");

  const auto& profile = platform::FrameProfile::paper_gpcr();
  Table table({"Number of Frames", "XFS (Compressed, GB)", "ADA (De-compressed protein, GB)",
               "Raw Data (GB)"});
  for (const std::uint32_t frames : workload::FrameSeries::kFatNode) {
    const auto sizes = platform::WorkloadSizes::from_profile(profile, frames);
    table.add_row({bench::with_thousands(frames), format_fixed(sizes.compressed_bytes / kGB, 1),
                   format_fixed(sizes.protein_bytes / kGB, 1),
                   format_fixed(sizes.raw_bytes / kGB, 1)});
  }
  table.print(std::cout);

  std::cout << "\npaper reference rows: 62,560 -> 10 / 13.9 / 32.7 GB;\n"
               "1,876,800 -> 300 / 415.8 / 979.8 GB; 5,004,800 -> 800 / 1,108.8 / 2,612.8 GB.\n";
  bench::obs_report();
  return 0;
}
