// Micro-benchmarks: the ada3d coordinate codec (google-benchmark).
//
// Measures compression/decompression throughput and reports the achieved
// ratio as a counter -- the numbers behind the CpuRates.decompress_bps
// constant and the Table 1/2 size calibration.
#include <benchmark/benchmark.h>

#include "codec/coord_codec.hpp"
#include "common/rng.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace {

using namespace ada;

std::vector<float> gpcr_frame(std::size_t target_atoms) {
  // Use the real generator; tile frames if more atoms are requested than the
  // tiny system provides.
  static const chem::System system =
      workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  const auto frame = gen.next_frame();
  std::vector<float> coords;
  coords.reserve(target_atoms * 3);
  while (coords.size() < target_atoms * 3) {
    const std::size_t take = std::min(frame.size(), target_atoms * 3 - coords.size());
    coords.insert(coords.end(), frame.begin(),
                  frame.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return coords;
}

void BM_CodecCompress(benchmark::State& state) {
  const auto coords = gpcr_frame(static_cast<std::size_t>(state.range(0)));
  codec::CodecParams params;
  std::size_t compressed_bytes = 0;
  for (auto _ : state) {
    auto frame = codec::compress(coords, params).value();
    compressed_bytes = frame.payload_bytes();
    benchmark::DoNotOptimize(frame);
  }
  const double raw = static_cast<double>(coords.size()) * 4.0;
  state.SetBytesProcessed(static_cast<std::int64_t>(raw) * state.iterations());
  state.counters["ratio"] = raw / static_cast<double>(compressed_bytes);
}
BENCHMARK(BM_CodecCompress)->Arg(1000)->Arg(10000)->Arg(43520);

void BM_CodecDecompress(benchmark::State& state) {
  const auto coords = gpcr_frame(static_cast<std::size_t>(state.range(0)));
  const auto frame = codec::compress(coords, {}).value();
  for (auto _ : state) {
    auto out = codec::decompress(frame).value();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(coords.size() * 4) * state.iterations());
}
BENCHMARK(BM_CodecDecompress)->Arg(1000)->Arg(10000)->Arg(43520);

void BM_CodecPrecisionSweep(benchmark::State& state) {
  const auto coords = gpcr_frame(10000);
  codec::CodecParams params;
  params.precision = static_cast<float>(state.range(0));
  std::size_t compressed_bytes = 0;
  for (auto _ : state) {
    auto frame = codec::compress(coords, params).value();
    compressed_bytes = frame.payload_bytes();
    benchmark::DoNotOptimize(frame);
  }
  const double raw = static_cast<double>(coords.size()) * 4.0;
  state.SetBytesProcessed(static_cast<std::int64_t>(raw) * state.iterations());
  state.counters["ratio"] = raw / static_cast<double>(compressed_bytes);
}
BENCHMARK(BM_CodecPrecisionSweep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CodecHostileInput(benchmark::State& state) {
  // Uniformly scattered atoms: worst case for the delta coder.
  Rng rng(9);
  std::vector<float> coords;
  for (int i = 0; i < 30000; ++i) coords.push_back(static_cast<float>(rng.uniform(0.0, 100.0)));
  std::size_t compressed_bytes = 0;
  for (auto _ : state) {
    auto frame = codec::compress(coords, {}).value();
    compressed_bytes = frame.payload_bytes();
    benchmark::DoNotOptimize(frame);
  }
  const double raw = static_cast<double>(coords.size()) * 4.0;
  state.SetBytesProcessed(static_cast<std::int64_t>(raw) * state.iterations());
  state.counters["ratio"] = raw / static_cast<double>(compressed_bytes);
}
BENCHMARK(BM_CodecHostileInput);

}  // namespace
