// Micro-benchmarks: the ada3d coordinate codec (google-benchmark), plus the
// v1-vs-v2 stream comparison behind BENCH_codec.json.
//
// Measures compression/decompression throughput and reports the achieved
// ratio as a counter -- the numbers behind the CpuRates.decompress_bps
// constant and the Table 1/2 size calibration.
//
// With --out=FILE (optionally --frames N / --atoms N), skips google-benchmark
// and instead encodes the same generated trajectory as a v1 and a v2 XTC
// stream, reporting per-version compression ratio (raw float32 bytes over
// stream bytes) and single-thread decode throughput (decoded bytes per
// second per core) as JSON.  Exits non-zero unless v2 compresses strictly
// better than v1 and both streams decode back to identical frames -- the
// check `ctest -L check-range` runs as codec_compare_smoke.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "codec/coord_codec.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "formats/xtc_file.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace {

using namespace ada;

std::vector<float> gpcr_frame(std::size_t target_atoms) {
  // Use the real generator; tile frames if more atoms are requested than the
  // tiny system provides.
  static const chem::System system =
      workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  const auto frame = gen.next_frame();
  std::vector<float> coords;
  coords.reserve(target_atoms * 3);
  while (coords.size() < target_atoms * 3) {
    const std::size_t take = std::min(frame.size(), target_atoms * 3 - coords.size());
    coords.insert(coords.end(), frame.begin(),
                  frame.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return coords;
}

void BM_CodecCompress(benchmark::State& state) {
  const auto coords = gpcr_frame(static_cast<std::size_t>(state.range(0)));
  codec::CodecParams params;
  std::size_t compressed_bytes = 0;
  for (auto _ : state) {
    auto frame = codec::compress(coords, params).value();
    compressed_bytes = frame.payload_bytes();
    benchmark::DoNotOptimize(frame);
  }
  const double raw = static_cast<double>(coords.size()) * 4.0;
  state.SetBytesProcessed(static_cast<std::int64_t>(raw) * state.iterations());
  state.counters["ratio"] = raw / static_cast<double>(compressed_bytes);
}
BENCHMARK(BM_CodecCompress)->Arg(1000)->Arg(10000)->Arg(43520);

void BM_CodecDecompress(benchmark::State& state) {
  const auto coords = gpcr_frame(static_cast<std::size_t>(state.range(0)));
  const auto frame = codec::compress(coords, {}).value();
  for (auto _ : state) {
    auto out = codec::decompress(frame).value();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(coords.size() * 4) * state.iterations());
}
BENCHMARK(BM_CodecDecompress)->Arg(1000)->Arg(10000)->Arg(43520);

void BM_CodecPrecisionSweep(benchmark::State& state) {
  const auto coords = gpcr_frame(10000);
  codec::CodecParams params;
  params.precision = static_cast<float>(state.range(0));
  std::size_t compressed_bytes = 0;
  for (auto _ : state) {
    auto frame = codec::compress(coords, params).value();
    compressed_bytes = frame.payload_bytes();
    benchmark::DoNotOptimize(frame);
  }
  const double raw = static_cast<double>(coords.size()) * 4.0;
  state.SetBytesProcessed(static_cast<std::int64_t>(raw) * state.iterations());
  state.counters["ratio"] = raw / static_cast<double>(compressed_bytes);
}
BENCHMARK(BM_CodecPrecisionSweep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CodecHostileInput(benchmark::State& state) {
  // Uniformly scattered atoms: worst case for the delta coder.
  Rng rng(9);
  std::vector<float> coords;
  for (int i = 0; i < 30000; ++i) coords.push_back(static_cast<float>(rng.uniform(0.0, 100.0)));
  std::size_t compressed_bytes = 0;
  for (auto _ : state) {
    auto frame = codec::compress(coords, {}).value();
    compressed_bytes = frame.payload_bytes();
    benchmark::DoNotOptimize(frame);
  }
  const double raw = static_cast<double>(coords.size()) * 4.0;
  state.SetBytesProcessed(static_cast<std::int64_t>(raw) * state.iterations());
  state.counters["ratio"] = raw / static_cast<double>(compressed_bytes);
}
BENCHMARK(BM_CodecHostileInput);

// --- v1 vs v2 stream comparison (BENCH_codec.json) -----------------------------

struct StreamStats {
  std::size_t stream_bytes = 0;
  double ratio = 0;         // raw float32 bytes / stream bytes
  double decode_bps = 0;    // decoded bytes per second, single thread (per core)
  std::vector<formats::TrajFrame> decoded;
};

StreamStats measure_stream(codec::CodecVersion version, const chem::System& system,
                           std::uint32_t frames, unsigned decode_rounds) {
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  formats::XtcWriter writer({}, version);
  for (std::uint32_t f = 0; f < frames; ++f) {
    const auto coords = gen.next_frame();
    auto status = writer.add_frame(gen.current_step(), gen.current_time_ps(), system.box(), coords);
    if (!status.is_ok()) {
      std::cerr << "encode failed: " << status.error().to_string() << "\n";
      std::exit(1);
    }
  }
  const auto image = writer.take();

  StreamStats stats;
  stats.stream_bytes = image.size();
  const double raw_bytes =
      static_cast<double>(frames) * static_cast<double>(system.atom_count()) * 12.0;
  stats.ratio = raw_bytes / static_cast<double>(image.size());

  // Single-thread decode throughput: B/s of *decoded output* per core, the
  // unit CpuRates and docs/performance.md use.  A warm-up pass keeps the
  // first-touch page faults out of the timed rounds.
  auto decoded = formats::read_all_xtc(image);
  if (!decoded.is_ok()) {
    std::cerr << "decode failed: " << decoded.error().to_string() << "\n";
    std::exit(1);
  }
  Stopwatch timer;
  for (unsigned round = 0; round < decode_rounds; ++round) {
    auto pass = formats::read_all_xtc(image);
    if (!pass.is_ok()) std::exit(1);
    benchmark::DoNotOptimize(pass);
  }
  const double wall_s = timer.elapsed_seconds();
  stats.decode_bps = raw_bytes * decode_rounds / (wall_s > 0 ? wall_s : 1e-9);
  stats.decoded = std::move(decoded).value();
  return stats;
}

int compare_streams(const std::string& out_path, std::uint32_t frames, const std::string& size,
                    unsigned decode_rounds) {
  const auto spec =
      size == "paper" ? workload::GpcrSpec::paper_default() : workload::GpcrSpec::tiny();
  const auto system = workload::GpcrSystemBuilder(spec).build();
  const auto v1 = measure_stream(codec::CodecVersion::kV1, system, frames, decode_rounds);
  const auto v2 = measure_stream(codec::CodecVersion::kV2, system, frames, decode_rounds);

  // Differential gate: both codec generations must reconstruct the exact
  // same frames (same quantization grid) before any number is reported.
  if (v1.decoded.size() != v2.decoded.size()) {
    std::cerr << "FAIL: v1 decoded " << v1.decoded.size() << " frames, v2 " << v2.decoded.size()
              << "\n";
    return 1;
  }
  for (std::size_t f = 0; f < v1.decoded.size(); ++f) {
    if (v1.decoded[f].coords != v2.decoded[f].coords) {
      std::cerr << "FAIL: v1/v2 decode divergence at frame " << f << "\n";
      return 1;
    }
  }

  std::printf("codec compare (%s, %u frames x %u atoms):\n", size.c_str(), frames,
              system.atom_count());
  std::printf("  v1: %8zu stream bytes, ratio %.3f, decode %.1f MB/s/core\n", v1.stream_bytes,
              v1.ratio, v1.decode_bps / 1e6);
  std::printf("  v2: %8zu stream bytes, ratio %.3f, decode %.1f MB/s/core\n", v2.stream_bytes,
              v2.ratio, v2.decode_bps / 1e6);

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << bench::json_envelope("micro_codec")
       << "  \"workload\": {\"size\": \"" << size << "\", \"frames\": " << frames
       << ", \"atoms\": " << system.atom_count() << "},\n"
       << "  \"v1\": {\"stream_bytes\": " << v1.stream_bytes << ", \"ratio\": " << v1.ratio
       << ", \"decode_bps_per_core\": " << v1.decode_bps << "},\n"
       << "  \"v2\": {\"stream_bytes\": " << v2.stream_bytes << ", \"ratio\": " << v2.ratio
       << ", \"decode_bps_per_core\": " << v2.decode_bps << "},\n"
       << "  \"v2_over_v1_ratio\": " << (v2.ratio / v1.ratio) << "\n}\n";
  json.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (v2.ratio <= v1.ratio) {
    std::cerr << "FAIL: v2 ratio " << v2.ratio << " does not beat v1 ratio " << v1.ratio << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

// Custom main: the --out= comparison mode bypasses google-benchmark; any
// other invocation behaves exactly like benchmark_main.
int main(int argc, char** argv) {
  std::string out_path;
  std::uint32_t frames = 32;
  std::string size = "tiny";
  unsigned decode_rounds = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> std::string {
      if (arg.rfind(flag + "=", 0) == 0) return arg.substr(flag.size() + 1);
      return "";
    };
    if (!value("--out").empty()) {
      out_path = value("--out");
    } else if (!value("--frames").empty()) {
      frames = static_cast<std::uint32_t>(ada::parse_int(value("--frames")));
    } else if (!value("--size").empty()) {
      size = value("--size");
    } else if (!value("--rounds").empty()) {
      decode_rounds = static_cast<unsigned>(ada::parse_int(value("--rounds")));
    }
  }
  if (!out_path.empty()) return compare_streams(out_path, frames, size, decode_rounds);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
