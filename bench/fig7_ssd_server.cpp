// Fig. 7: SSD-server evaluation (Section 4.1).
//
//   (a) raw data retrieval time      (b) data processing turnaround time
//   (c) memory usage
//
// Four scenarios per frame count: C-ext4, D-ext4, D-ADA (all),
// D-ADA (protein).  The headline: D-ADA(protein) beats C-ext4 by up to
// ~13.4x in turnaround at 5,006 frames, and ext4's memory is >2.5x ADA's.
#include <iostream>

#include "bench/bench_util.hpp"
#include "platform/platform.hpp"
#include "workload/spec.hpp"

using namespace ada;
using platform::Scenario;

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_flag(argc, argv);
  const std::string telemetry_spec = bench::telemetry_flag(argc, argv);
  const auto plat = platform::Platform::ssd_server();
  const auto& profile = platform::FrameProfile::paper_gpcr();

  bench::banner("Fig. 7: Evaluation on an SSD Server", "paper Fig. 7a/7b/7c");

  Table retrieval({"frames", "C-ext4", "D-ext4", "D-ADA (all)", "D-ADA (protein)"});
  Table turnaround({"frames", "C-ext4", "D-ext4", "D-ADA (all)", "D-ADA (protein)",
                    "speedup C/ADA(p)"});
  Table memory({"frames", "C-ext4", "D-ext4", "D-ADA (all)", "D-ADA (protein)",
                "ratio C/ADA(p)"});

  for (const std::uint32_t frames : workload::FrameSeries::kSsdServer) {
    const auto sizes = platform::WorkloadSizes::from_profile(profile, frames);
    const auto results = platform::run_all_scenarios(plat, sizes);
    const auto& c = results[0];
    const auto& d = results[1];
    const auto& all = results[2];
    const auto& p = results[3];
    const std::string f = bench::with_thousands(frames);
    retrieval.add_row({f, bench::seconds_cell(c, c.retrieval_s),
                       bench::seconds_cell(d, d.retrieval_s),
                       bench::seconds_cell(all, all.retrieval_s),
                       bench::seconds_cell(p, p.retrieval_s)});
    turnaround.add_row({f, bench::seconds_cell(c, c.turnaround_s),
                        bench::seconds_cell(d, d.turnaround_s),
                        bench::seconds_cell(all, all.turnaround_s),
                        bench::seconds_cell(p, p.turnaround_s),
                        format_fixed(c.turnaround_s / p.turnaround_s, 1) + "x"});
    memory.add_row({f, bench::memory_cell(c), bench::memory_cell(d), bench::memory_cell(all),
                    bench::memory_cell(p),
                    format_fixed(c.memory_peak_bytes / p.memory_peak_bytes, 2) + "x"});
  }

  std::cout << "\n--- Fig. 7a: raw data retrieval time ---\n";
  retrieval.print(std::cout);
  std::cout << "shape check: C-ext4 lowest (compressed bytes), D-ADA (protein) second,\n"
               "D-ADA (all) slightly above D-ext4 (indexer tag search).\n";

  std::cout << "\n--- Fig. 7b: data processing turnaround time ---\n";
  turnaround.print(std::cout);
  std::cout << "shape check: speedup grows with frames, reaching the paper's ~13.4x at\n"
               "5,006 frames; D-ADA (all) tracks D-ext4.\n";

  std::cout << "\n--- Fig. 7c: memory usage ---\n";
  memory.print(std::cout);
  std::cout << "shape check: C-ext4 memory is >2.5x D-ADA (protein) at 5,006 frames\n"
               "(paper: \"over 2.5x\").\n";
  bench::obs_report();
  bench::telemetry_report(telemetry_spec);
  bench::trace_report(trace_path);
  return 0;
}
