// Shared helpers for the table/figure harnesses.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <string>
#include <thread>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "platform/pipeline.hpp"

// Stamped by bench/CMakeLists.txt from `git describe` at configure time so
// every BENCH_*.json records the code it measured.
#ifndef ADA_GIT_DESCRIBE
#define ADA_GIT_DESCRIBE "unknown"
#endif

namespace ada::bench {

/// Section banner for a harness's stdout.  Also switches observability
/// collection on (idempotent), so every harness accumulates the per-stage
/// breakdown that obs_report() prints at the end of main().
inline void banner(const std::string& title, const std::string& paper_ref) {
  obs::set_enabled(true);
  std::cout << "\n================================================================\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "================================================================\n";
}

/// Print the per-stage breakdown (span timers, counters, histograms)
/// accumulated since the first banner().  Call just before returning from
/// main(); silent when nothing was recorded.  See docs/observability.md.
inline void obs_report(std::ostream& os = std::cout) {
  const obs::Snapshot snapshot = obs::capture();
  if (snapshot.empty()) return;
  os << "\n--- observability: pipeline stage breakdown ---\n";
  obs::print_tables(snapshot, os);
}

/// Parse --<name>=<n> from a harness's argv; `fallback` when absent.
inline unsigned uint_flag(int argc, char** argv, const std::string& name, unsigned fallback) {
  const std::string prefix = "--" + name + "=";
  unsigned value = fallback;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = static_cast<unsigned>(std::strtoul(arg.c_str() + prefix.size(), nullptr, 10));
    }
  }
  return value;
}

/// True when --<name> (exact) appears in a harness's argv.
inline bool bool_flag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Parse --trace=<file> from a harness's argv and, when present, switch the
/// request-timeline recorder on.  Returns the output path ("" when absent);
/// pass it to trace_report() before returning from main().
inline std::string trace_flag(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) path = arg.substr(8);
  }
  if (!path.empty()) {
    obs::reset_events();
    obs::set_trace_enabled(true);
  }
  return path;
}

/// Write the recorded timeline as Chrome trace JSON (no-op for "").  The
/// merged functional + sim-time lanes load in Perfetto and feed ada-trace.
inline void trace_report(const std::string& path, std::ostream& os = std::cout) {
  if (path.empty()) return;
  obs::set_trace_enabled(false);
  const Status status = obs::write_chrome_json(path);
  if (!status.is_ok()) {
    os << "cannot write trace " << path << ": " << status.error().to_string() << "\n";
    return;
  }
  os << "wrote trace " << path << " (load in Perfetto or analyse with ada-trace)\n";
}

/// Common opening for every BENCH_*.json document (schema_version 2): the
/// bench name plus a `meta` object recording the code revision, UTC wall
/// time, host and core count of the measuring machine.  ada-stats diff only
/// judges explicitly listed keys, so `meta.*` never trips the perf gate --
/// it exists to make two BENCH files comparable by a human first.
/// Emits `"bench": ..., "schema_version": 2, "meta": {...},` with a
/// trailing comma; callers continue with their own keys.
inline std::string json_envelope(const std::string& bench_name) {
  char utc[32] = "unknown";
  std::tm tm{};
  const std::time_t now = std::time(nullptr);
  if (gmtime_r(&now, &tm) != nullptr) {
    std::strftime(utc, sizeof utc, "%Y-%m-%dT%H:%M:%SZ", &tm);
  }
  char host[256] = "unknown";
  if (gethostname(host, sizeof host) != 0) {
    std::snprintf(host, sizeof host, "unknown");
  }
  host[sizeof host - 1] = '\0';
  std::string out = "  \"bench\": \"" + bench_name + "\",\n";
  out += "  \"schema_version\": 2,\n";
  out += "  \"meta\": {\"git\": \"" ADA_GIT_DESCRIBE "\", \"utc\": \"";
  out += utc;
  out += "\", \"host\": \"";
  out += host;
  out += "\", \"cores\": " + std::to_string(std::thread::hardware_concurrency()) + "},\n";
  return out;
}

/// Parse --telemetry=<file[,interval_ms]> from a harness's argv and, when
/// present, start the background metrics sampler (obs/telemetry.hpp).  The
/// sim-driven harnesses get "sim"-clock samples as virtual time advances;
/// every harness gets the wall-clock ticker.  Returns the spec ("" when
/// absent); pass it to telemetry_report() before returning from main().
inline std::string telemetry_flag(int argc, char** argv) {
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--telemetry=", 0) == 0) spec = arg.substr(12);
  }
  if (!spec.empty()) {
    obs::set_enabled(true);
    const Status status = obs::start_telemetry(spec);
    if (!status.is_ok()) {
      std::cerr << "cannot start telemetry: " << status.error().to_string() << "\n";
      spec.clear();
    }
  }
  return spec;
}

/// Stop the sampler and flush the final JSONL line (no-op for "").  Render
/// the series with `ada-stats render <file>`.
inline void telemetry_report(const std::string& spec, std::ostream& os = std::cout) {
  if (spec.empty()) return;
  obs::stop_telemetry();
  os << "wrote telemetry " << spec.substr(0, spec.find(','))
     << " (render with ada-stats)\n";
}

inline std::string seconds_cell(const platform::ScenarioResult& r, double seconds) {
  if (r.oom) return "OOM@" + format_seconds(seconds);
  return format_seconds(seconds);
}

inline std::string memory_cell(const platform::ScenarioResult& r) {
  return (r.oom ? "KILLED " : "") + format_bytes(r.memory_peak_bytes);
}

inline std::string with_thousands(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace ada::bench
