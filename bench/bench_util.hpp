// Shared helpers for the table/figure harnesses.
#pragma once

#include <iostream>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "platform/pipeline.hpp"

namespace ada::bench {

/// Section banner for a harness's stdout.  Also switches observability
/// collection on (idempotent), so every harness accumulates the per-stage
/// breakdown that obs_report() prints at the end of main().
inline void banner(const std::string& title, const std::string& paper_ref) {
  obs::set_enabled(true);
  std::cout << "\n================================================================\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "================================================================\n";
}

/// Print the per-stage breakdown (span timers, counters, histograms)
/// accumulated since the first banner().  Call just before returning from
/// main(); silent when nothing was recorded.  See docs/observability.md.
inline void obs_report(std::ostream& os = std::cout) {
  const obs::Snapshot snapshot = obs::capture();
  if (snapshot.empty()) return;
  os << "\n--- observability: pipeline stage breakdown ---\n";
  obs::print_tables(snapshot, os);
}

/// Parse --trace=<file> from a harness's argv and, when present, switch the
/// request-timeline recorder on.  Returns the output path ("" when absent);
/// pass it to trace_report() before returning from main().
inline std::string trace_flag(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) path = arg.substr(8);
  }
  if (!path.empty()) {
    obs::reset_events();
    obs::set_trace_enabled(true);
  }
  return path;
}

/// Write the recorded timeline as Chrome trace JSON (no-op for "").  The
/// merged functional + sim-time lanes load in Perfetto and feed ada-trace.
inline void trace_report(const std::string& path, std::ostream& os = std::cout) {
  if (path.empty()) return;
  obs::set_trace_enabled(false);
  const Status status = obs::write_chrome_json(path);
  if (!status.is_ok()) {
    os << "cannot write trace " << path << ": " << status.error().to_string() << "\n";
    return;
  }
  os << "wrote trace " << path << " (load in Perfetto or analyse with ada-trace)\n";
}

inline std::string seconds_cell(const platform::ScenarioResult& r, double seconds) {
  if (r.oom) return "OOM@" + format_seconds(seconds);
  return format_seconds(seconds);
}

inline std::string memory_cell(const platform::ScenarioResult& r) {
  return (r.oom ? "KILLED " : "") + format_bytes(r.memory_peak_bytes);
}

inline std::string with_thousands(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace ada::bench
