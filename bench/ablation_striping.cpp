// Ablation: PVFS stripe width vs aggregate read bandwidth.
//
// Sweeps the number of I/O servers serving ADA's protein subset and the
// hybrid PVFS raw reads, showing where striping stops paying (the client
// NIC for SSD servers; never for HDD servers at this scale).
#include <iostream>

#include "bench/bench_util.hpp"
#include "platform/platform.hpp"
#include "workload/spec.hpp"

using namespace ada;
using platform::PipelineOptions;
using platform::Scenario;

int main() {
  bench::banner("Ablation: stripe width vs retrieval time", "PVFS substrate design");

  const auto plat = platform::Platform::small_cluster();
  const auto sizes =
      platform::WorkloadSizes::from_profile(platform::FrameProfile::paper_gpcr(), 6256);

  Table table({"servers per instance", "D-PVFS retrieval (hybrid)",
               "D-ADA (protein) retrieval (SSD)", "effective rate ADA(p)"});
  for (const unsigned servers : {1u, 2u, 3u}) {
    PipelineOptions options;
    options.stripe_servers_override = servers;
    const auto d = platform::run_scenario(plat, Scenario::kRawFs, sizes, options);
    const auto p = platform::run_scenario(plat, Scenario::kAdaProtein, sizes, options);
    const double rate = sizes.protein_bytes / p.retrieval_s;
    table.add_row({std::to_string(servers), format_seconds(d.retrieval_s),
                   format_seconds(p.retrieval_s), format_bytes(rate) + "/s"});
  }
  table.print(std::cout);

  std::cout << "\nreading: HDD-backed hybrid reads scale ~linearly with servers (disks are\n"
               "the bottleneck); for SSD-backed ADA reads even a single server (2x3 GB/s\n"
               "drives) saturates the client NIC, so extra SSD nodes buy no retrieval time\n"
               "for a single reader -- the paper's 3-node SSD group pays off only under\n"
               "concurrent clients (see PvfsTest.ConcurrentClientsShareServers).\n";
  bench::obs_report();
  return 0;
}
