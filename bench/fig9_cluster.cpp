// Fig. 9: Evaluation on the nine-node OrangeFS cluster (Section 4.2).
//
//   (a) raw data retrieval time   (b) data processing turnaround time
//   (c) memory usage
//
// Scenarios: C-PVFS, D-PVFS (hybrid 6-server PVFS), D-ADA (all) and
// D-ADA (protein) (two PVFS instances; ADA reads served by the SSD one).
// Headlines: ADA > 2x PVFS in retrieval (all vs all), and D-PVFS turnaround
// ~9x D-ADA(protein) at 6,256 frames.
//
// --queue-depth=<n> [--extent-kib=<k>, default 512] runs the retrieval
// phases through the scatter-gather plan (PvfsModel::read_extents via
// simulate_cluster_read) instead of whole-file stripes -- the same code
// path bench/distributed_scaling sweeps.
#include <iostream>

#include "bench/bench_util.hpp"
#include "platform/platform.hpp"
#include "workload/spec.hpp"

using namespace ada;

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_flag(argc, argv);
  const std::string telemetry_spec = bench::telemetry_flag(argc, argv);
  const auto plat = platform::Platform::small_cluster();
  const auto& profile = platform::FrameProfile::paper_gpcr();
  platform::PipelineOptions options;
  options.sg_queue_depth = bench::uint_flag(argc, argv, "queue-depth", 0);
  if (options.sg_queue_depth != 0) {
    options.sg_extent_bytes = bench::uint_flag(argc, argv, "extent-kib", 512) * 1024.0;
  }

  bench::banner("Fig. 9: Evaluation on a Small Cluster", "paper Fig. 9a/9b/9c");
  if (options.sg_queue_depth != 0) {
    std::cout << "scatter-gather retrieval: " << options.sg_extent_bytes / 1024.0
              << " KiB extents, queue depth " << options.sg_queue_depth << " per server\n";
  }

  Table retrieval({"frames", "C-PVFS", "D-PVFS", "D-ADA (all)", "D-ADA (protein)",
                   "D-PVFS/ADA(all)"});
  Table turnaround({"frames", "C-PVFS", "D-PVFS", "D-ADA (all)", "D-ADA (protein)",
                    "D-PVFS/ADA(p)"});
  Table memory({"frames", "C-PVFS", "D-PVFS", "D-ADA (all)", "D-ADA (protein)"});

  for (const std::uint32_t frames : workload::FrameSeries::kCluster) {
    const auto sizes = platform::WorkloadSizes::from_profile(profile, frames);
    const auto results = platform::run_all_scenarios(plat, sizes, options);
    const auto& c = results[0];
    const auto& d = results[1];
    const auto& all = results[2];
    const auto& p = results[3];
    const std::string f = bench::with_thousands(frames);
    retrieval.add_row({f, bench::seconds_cell(c, c.retrieval_s),
                       bench::seconds_cell(d, d.retrieval_s),
                       bench::seconds_cell(all, all.retrieval_s),
                       bench::seconds_cell(p, p.retrieval_s),
                       format_fixed(d.retrieval_s / all.retrieval_s, 1) + "x"});
    turnaround.add_row({f, bench::seconds_cell(c, c.turnaround_s),
                        bench::seconds_cell(d, d.turnaround_s),
                        bench::seconds_cell(all, all.turnaround_s),
                        bench::seconds_cell(p, p.turnaround_s),
                        format_fixed(d.turnaround_s / p.turnaround_s, 1) + "x"});
    memory.add_row({f, bench::memory_cell(c), bench::memory_cell(d), bench::memory_cell(all),
                    bench::memory_cell(p)});
  }

  std::cout << "\n--- Fig. 9a: raw data retrieval time ---\n";
  retrieval.print(std::cout);
  std::cout << "shape check: D-ADA (all) beats D-PVFS by >2x (SSD servers vs the hybrid's\n"
               "HDD bottleneck); D-ADA (protein) sits near C-PVFS at the bottom.\n";

  std::cout << "\n--- Fig. 9b: data processing turnaround time ---\n";
  turnaround.print(std::cout);
  std::cout << "shape check: D-PVFS/D-ADA(protein) reaches ~9x at 6,256 frames (paper: 9x);\n"
               "the gap between C-PVFS and the decompressed scenarios widens with frames.\n";

  std::cout << "\n--- Fig. 9c: memory usage ---\n";
  memory.print(std::cout);
  std::cout << "shape check: same trend as Fig. 7c (identical data groups in memory).\n";
  bench::obs_report();
  bench::telemetry_report(telemetry_spec);
  bench::trace_report(trace_path);
  return 0;
}
