// Micro-benchmarks: Algorithm 1 (the data pre-processor's categorizer) and
// the subset extraction path (google-benchmark).
#include <benchmark/benchmark.h>

#include <map>

#include "ada/categorizer.hpp"
#include "ada/schema_config.hpp"
#include "formats/xtc_file.hpp"
#include "workload/gpcr_builder.hpp"

namespace {

using namespace ada;

const chem::System& paper_system() {
  static const chem::System system =
      workload::GpcrSystemBuilder(workload::GpcrSpec::paper_default()).build();
  return system;
}

void BM_CategorizeRunList(benchmark::State& state) {
  // Algorithm 1: run-length label construction.
  const auto& system = paper_system();
  for (auto _ : state) {
    auto labels = core::categorize_protein_misc(system);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(system.atom_count()) * state.iterations());
}
BENCHMARK(BM_CategorizeRunList);

void BM_CategorizeBruteForceBaseline(benchmark::State& state) {
  // Baseline a naive labeler would use: one map entry per atom index.
  const auto& system = paper_system();
  for (auto _ : state) {
    std::map<core::Tag, std::vector<std::uint32_t>> labels;
    for (std::uint32_t i = 0; i < system.atom_count(); ++i) {
      const bool protein = system.category(i) == chem::Category::kProtein;
      labels[protein ? core::kProteinTag : core::kMiscTag].push_back(i);
    }
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(system.atom_count()) * state.iterations());
}
BENCHMARK(BM_CategorizeBruteForceBaseline);

void BM_CategorizeFineGrained(benchmark::State& state) {
  const auto& system = paper_system();
  for (auto _ : state) {
    auto labels = core::categorize_fine_grained(system);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(system.atom_count()) * state.iterations());
}
BENCHMARK(BM_CategorizeFineGrained);

void BM_CategorizeSchemaDriven(benchmark::State& state) {
  // The Section 6 config-file categorizer: rule evaluation per atom.
  const auto& system = paper_system();
  const auto schema = core::CategorizerSchema::parse(
                          "tag p category protein\n"
                          "tag w category water\n"
                          "tag l category lipid\n"
                          "default m\n")
                          .value();
  for (auto _ : state) {
    auto labels = schema.categorize(system);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(system.atom_count()) * state.iterations());
}
BENCHMARK(BM_CategorizeSchemaDriven);

void BM_ExtractProteinSubset(benchmark::State& state) {
  // The per-frame splitter work in the pre-processor.
  const auto& system = paper_system();
  const auto labels = core::categorize_protein_misc(system);
  const auto& protein = labels.groups.at(core::kProteinTag);
  const auto& coords = system.reference_coords();
  for (auto _ : state) {
    auto subset = formats::extract_subset(coords, protein);
    benchmark::DoNotOptimize(subset);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(coords.size() * 4) * state.iterations());
}
BENCHMARK(BM_ExtractProteinSubset);

}  // namespace
