// Calibration report: where the performance model's CPU constants come from.
//
// Prints the model's deterministic defaults next to rates measured by
// running the *real* ada3d decoder and the *real* cell-list bond search on
// this host -- the grounding evidence for DESIGN.md section 4's claim that
// the performance plane's CPU constants are of the right magnitude.
#include <iostream>

#include "bench/bench_util.hpp"
#include "platform/constants.hpp"

using namespace ada;

int main() {
  bench::banner("Calibration report: model constants vs this host",
                "DESIGN.md section 4 methodology");

  const platform::CpuRates defaults = platform::CpuRates::paper_default();
  const platform::CpuRates host = platform::calibrate_on_host();

  Table table({"rate", "model default", "measured on this host", "ratio"});
  table.add_row({"xtc decompress", format_bytes(defaults.decompress_bps) + "/s",
                 format_bytes(host.decompress_bps) + "/s",
                 format_fixed(host.decompress_bps / defaults.decompress_bps, 2) + "x"});
  table.add_row({"render (per-frame vertex streaming)",
                 format_bytes(defaults.render_bps) + "/s", format_bytes(host.render_bps) + "/s",
                 format_fixed(host.render_bps / defaults.render_bps, 2) + "x"});
  table.print(std::cout);

  std::cout << "\nnotes: the decompress default (500 MB/s) reproduces the paper's 13.4x and\n"
               "lands on any host's single-core rate for this codec class; the render\n"
               "constant models VMD's recurring per-frame work (vertex streaming --\n"
               "bond search runs once per structure, not per frame), which is memcpy-\n"
               "class.  The figure benches use the deterministic defaults so every\n"
               "machine regenerates identical tables; this report shows how far those\n"
               "defaults sit from the current host.\n";
  bench::obs_report();
  return 0;
}
