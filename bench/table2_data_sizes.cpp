// Table 2: Data Size Comparisons (ext4 vs. ADA) on the SSD server.
//
// For eight frame counts: the compressed file ext4 loads, the decompressed
// protein subset ADA loads, and the full raw dataset.
#include <iostream>

#include "bench/bench_util.hpp"
#include "platform/workload_stats.hpp"
#include "workload/spec.hpp"

using namespace ada;

int main() {
  bench::banner("Table 2: Data Size Comparisons (ext4 vs. ADA)", "paper Table 2");

  const auto& profile = platform::FrameProfile::paper_gpcr();
  Table table({"Number of Frames", "ext4 (Compressed, MB)", "ADA (De-compressed protein, MB)",
               "Raw Data (MB)"});
  for (const std::uint32_t frames : workload::FrameSeries::kSsdServer) {
    const auto sizes = platform::WorkloadSizes::from_profile(profile, frames);
    table.add_row({bench::with_thousands(frames), format_fixed(sizes.compressed_bytes / kMB, 0),
                   format_fixed(sizes.protein_bytes / kMB, 0),
                   format_fixed(sizes.raw_bytes / kMB, 0)});
  }
  table.print(std::cout);

  std::cout << "\npaper reference rows: 626 -> 100 / 139 / 327 MB; 5,006 -> 800 / 1,108 /\n"
               "2,612 MB.  Raw and protein columns match by construction (43,520 atoms,\n"
               "18,500 protein); the compressed column comes from really compressing\n"
               "full-size frames with the ada3d codec.\n";
  bench::obs_report();
  return 0;
}
