// Distributed scaling: scatter-gather retrieval from 1 to 9 PVFS servers.
//
// Two planes, one JSON:
//
//   sim plane      deterministic DES (platform::simulate_cluster_read) -- a
//                  64 MiB file split into 512 KiB extents, fanned round-robin
//                  across N HDD servers under a per-server admission window.
//                  Sweeps server count {1,2,4,9} at queue depth 4, then queue
//                  depth {1,2,4,8,16,unbounded} at 9 servers (the saturation
//                  knee), plus the whole-file read_file reference and a
//                  downed-server run through the armed-fault retry path.
//   measured plane wall clock through the real middleware: a streamed
//                  multi-extent GPCR dataset queried by two Ada instances over
//                  the same backends, serial (read_threads=0) vs scatter-
//                  gather (read_threads=4, queue_depth=4).  Parallel bytes are
//                  checked identical to serial bytes before any timing.
//
// Sim parameters are fixed constants -- identical under --smoke -- so the
// ada-stats perf gate can compare sim.* keys across runs exactly.  The
// measured plane shrinks under --smoke and is reported as authoritative
// ("results_plane": "measured") only when the host has enough cores to run
// the parallel sweep unqueued.  Emits BENCH_distributed.json.
//
//   distributed_scaling [--smoke] [--frames=N] [--rounds=N]
//                       [--read-threads=N] [--queue-depth=N] [--out=FILE]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ada/middleware.hpp"
#include "bench/bench_util.hpp"
#include "common/faults.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "platform/pipeline.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

namespace {

namespace fs = std::filesystem;

// Fixed sim workload: 64 MiB over 512 KiB extents = 128 extents, enough to
// keep nine servers busy without drowning the DES in events.
constexpr double kSimFileBytes = 64.0 * 1024 * 1024;
constexpr double kSimExtentBytes = 512.0 * 1024;
constexpr unsigned kMaxServers = 9;

double sim_read_seconds(unsigned servers, unsigned queue_depth, double extent_bytes) {
  platform::ClusterConfig cluster;
  cluster.compute_nodes = 1;  // client is node 0; HDD servers are nodes 1..N
  cluster.hdd_storage_nodes = servers;
  cluster.ssd_storage_nodes = 1;
  platform::ClusterReadSpec spec;
  spec.reads = {platform::ClusterRead{platform::ClusterRead::Instance::kHdd, kSimFileBytes}};
  spec.sg_extent_bytes = extent_bytes;
  spec.sg_queue_depth = queue_depth;
  return platform::simulate_cluster_read(cluster, spec).seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::bool_flag(argc, argv, "smoke");
  std::uint32_t frames = bench::uint_flag(argc, argv, "frames", smoke ? 12 : 48);
  unsigned rounds = bench::uint_flag(argc, argv, "rounds", smoke ? 4 : 16);
  const unsigned read_threads = bench::uint_flag(argc, argv, "read-threads", 4);
  const unsigned queue_depth = bench::uint_flag(argc, argv, "queue-depth", 4);
  std::string out_path = "BENCH_distributed.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  if (frames < 8) frames = 8;
  if (rounds < 2) rounds = 2;

  std::cout << "================================================================\n"
            << "Distributed scaling: scatter-gather retrieval, 1->9 servers\n"
            << "(sim plane: 64 MiB / 512 KiB extents; measured plane: " << frames
            << " frames, " << rounds << " rounds, " << read_threads << " read threads)\n"
            << "================================================================\n";

  // --- sim plane: server scaling at fixed queue depth -----------------------
  const std::vector<unsigned> server_counts = {1, 2, 4, kMaxServers};
  std::map<unsigned, double> server_seconds;
  Table scaling({"servers", "sim time", "speedup vs 1"});
  for (const unsigned n : server_counts) {
    const double seconds = sim_read_seconds(n, queue_depth, kSimExtentBytes);
    server_seconds[n] = seconds;
    scaling.add_row({std::to_string(n), format_seconds(seconds),
                     format_fixed(server_seconds[1] / seconds, 2) + "x"});
  }
  std::cout << "\n--- sim: server scaling (queue depth " << queue_depth << ") ---\n";
  scaling.print(std::cout);

  // --- sim plane: queue-depth sweep at 9 servers ----------------------------
  const std::vector<unsigned> depths = {1, 2, 4, 8, 16};
  const double unbounded_s = sim_read_seconds(kMaxServers, 0, kSimExtentBytes);
  std::map<unsigned, double> depth_seconds;
  Table knee_table({"queue depth", "sim time", "vs unbounded"});
  for (const unsigned depth : depths) {
    const double seconds = sim_read_seconds(kMaxServers, depth, kSimExtentBytes);
    depth_seconds[depth] = seconds;
    knee_table.add_row({std::to_string(depth), format_seconds(seconds),
                        format_fixed(seconds / unbounded_s, 2) + "x"});
  }
  knee_table.add_row({"unbounded", format_seconds(unbounded_s), "1.00x"});
  // The knee: the smallest depth already within 5% of the unbounded time --
  // past it, deeper per-server queues buy nothing.
  unsigned knee_depth = 0;
  for (const unsigned depth : depths) {
    if (depth_seconds[depth] <= unbounded_s * 1.05) {
      knee_depth = depth;
      break;
    }
  }
  std::cout << "\n--- sim: queue-depth sweep (" << kMaxServers << " servers) ---\n";
  knee_table.print(std::cout);
  std::cout << "saturation knee: depth " << knee_depth << " (first within 5% of unbounded)\n";

  // Whole-file reference: read_file's stripe schedule on the same bytes.
  const double whole_file_s = sim_read_seconds(kMaxServers, 0, /*extent_bytes=*/0);

  // Downed-server run: server node 1 (the first HDD server) refuses every
  // stripe read, so after the sim-clock retries the read fails for good and
  // surfaces as io_errors -- the signal Ada::query_degraded keys off.
  double downed_s = 0;
  std::size_t downed_errors = 0;
  {
    const Status armed =
        fault::Injector::global().arm_spec("pvfs.stripe_read.s1=down:1:1000000000");
    if (!armed.is_ok()) {
      std::cerr << "cannot arm fault: " << armed.error().to_string() << "\n";
      return 1;
    }
    platform::ClusterConfig cluster;
    cluster.compute_nodes = 1;
    cluster.hdd_storage_nodes = kMaxServers;
    cluster.ssd_storage_nodes = 1;
    platform::ClusterReadSpec spec;
    spec.reads = {platform::ClusterRead{platform::ClusterRead::Instance::kHdd, kSimFileBytes}};
    spec.sg_extent_bytes = kSimExtentBytes;
    spec.sg_queue_depth = queue_depth;
    const auto outcome = platform::simulate_cluster_read(cluster, spec);
    fault::Injector::global().disarm_all();
    downed_s = outcome.seconds;
    downed_errors = outcome.io_errors;
    std::cout << "\n--- sim: downed server (node 1 of " << kMaxServers << ") ---\n"
              << "read failed for good after retries: io_errors=" << downed_errors
              << ", sim time " << format_seconds(downed_s) << "\n";
    if (downed_errors == 0) {
      std::cerr << "downed-server run reported no io_errors\n";
      return 1;
    }
  }

  // --- measured plane: serial vs scatter-gather middleware reads ------------
  // The tiny system keeps per-query decode cheap; extent count (what the
  // scatter-gather engine fans over) is driven by frames / chunk_frames.
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();

  obs::set_enabled(false);
  const std::string root = (fs::temp_directory_path() / "ada_bench_distributed").string();
  fs::remove_all(root);

  core::AdaConfig serial_config;
  serial_config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  serial_config.read_threads = 0;  // the pre-scatter-gather byte path
  core::AdaConfig parallel_config = serial_config;
  parallel_config.read_threads = read_threads;
  parallel_config.read_queue_depth = queue_depth;

  auto mount = [&] {
    return plfs::PlfsMount::open({{"ssd", root + "/ssd"}, {"hdd", root + "/hdd"}});
  };
  auto serial_mount = mount();
  auto parallel_mount = mount();
  if (!serial_mount.is_ok() || !parallel_mount.is_ok()) {
    std::cerr << "cannot open scratch backends under " << root << "\n";
    return 1;
  }
  core::Ada serial(std::move(serial_mount).value(), serial_config);
  core::Ada parallel(std::move(parallel_mount).value(), parallel_config);

  // Streamed ingest with small chunks: every chunk flushes one dropping per
  // tag, so each tag's subset spans many extents -- the shape scatter-gather
  // exists for.
  const core::LabelMap labels = core::categorize_protein_misc(system);
  auto stream = serial.begin_stream(labels, "traj.xtc", /*chunk_frames=*/4);
  if (!stream.is_ok()) {
    std::cerr << "begin_stream failed: " << stream.error().to_string() << "\n";
    return 1;
  }
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  for (std::uint32_t f = 0; f < frames; ++f) {
    const auto frame = gen.next_frame();
    if (!stream.value()
             .add_frame(gen.current_step(), gen.current_time_ps(), system.box(), frame)
             .is_ok()) {
      std::cerr << "streamed ingest failed\n";
      return 1;
    }
  }
  if (!stream.value().finish().is_ok()) {
    std::cerr << "stream finish failed\n";
    return 1;
  }

  const auto tags_result = serial.tags("traj.xtc");
  if (!tags_result.is_ok() || tags_result.value().empty()) {
    std::cerr << "no tags to query\n";
    return 1;
  }
  const std::vector<core::Tag> tags = tags_result.value();

  // Correctness gate before any timing: scatter-gather bytes == serial bytes.
  std::uint64_t subset_bytes_total = 0;
  for (const core::Tag& tag : tags) {
    const auto serial_subset = serial.query("traj.xtc", tag);
    const auto parallel_subset = parallel.query("traj.xtc", tag);
    if (!serial_subset.is_ok() || !parallel_subset.is_ok() ||
        serial_subset.value() != parallel_subset.value()) {
      std::cerr << "scatter-gather and serial reads differ for tag " << tag << "\n";
      return 1;
    }
    subset_bytes_total += serial_subset.value().size();
  }

  auto run_plane = [&](core::Ada& middleware) -> double {
    const Stopwatch wall;
    for (unsigned round = 0; round < rounds; ++round) {
      for (const core::Tag& tag : tags) {
        const auto subset = middleware.query("traj.xtc", tag);
        if (!subset.is_ok()) {
          std::cerr << "query failed mid-plane for tag " << tag << "\n";
          std::exit(1);
        }
      }
    }
    return wall.elapsed_seconds();
  };

  // Warm-up sweep for each plane, then the timed sweeps.
  run_plane(serial);
  const double serial_s = run_plane(serial);
  run_plane(parallel);
  const double parallel_s = run_plane(parallel);
  const double measured_speedup = parallel_s > 0 ? serial_s / parallel_s : 0;

  const unsigned cores = std::thread::hardware_concurrency();
  const bool measured_authoritative = cores >= read_threads;
  std::printf("\n--- measured: serial vs scatter-gather (%u tags, %u rounds) ---\n",
              static_cast<unsigned>(tags.size()), rounds);
  std::printf("  serial (read_threads=0)    %10.4f s\n", serial_s);
  std::printf("  parallel (read_threads=%u) %10.4f s\n", read_threads, parallel_s);
  std::printf("  speedup: %.2fx%s\n", measured_speedup,
              measured_authoritative ? "" : "  [advisory: fewer cores than read threads]");

  const double speedup_2 = server_seconds[1] / server_seconds[2];
  const double speedup_4 = server_seconds[1] / server_seconds[4];
  const double speedup_9 = server_seconds[1] / server_seconds[kMaxServers];

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << bench::json_envelope("distributed_scaling")
       << "  \"workload\": {\"sim_file_bytes\": " << static_cast<std::uint64_t>(kSimFileBytes)
       << ", \"sim_extent_bytes\": " << static_cast<std::uint64_t>(kSimExtentBytes)
       << ", \"frames\": " << frames << ", \"tags\": " << tags.size()
       << ", \"subset_bytes\": " << subset_bytes_total << "},\n"
       << "  \"config\": {\"read_threads\": " << read_threads
       << ", \"queue_depth\": " << queue_depth << ", \"rounds\": " << rounds << "},\n"
       << "  \"sim\": {\"t1_s\": " << server_seconds[1] << ", \"t2_s\": " << server_seconds[2]
       << ", \"t4_s\": " << server_seconds[4] << ", \"t9_s\": " << server_seconds[kMaxServers]
       << ",\n          \"speedup_2\": " << speedup_2 << ", \"speedup_4\": " << speedup_4
       << ", \"speedup_9\": " << speedup_9 << ",\n          \"depth1_s\": " << depth_seconds[1]
       << ", \"depth2_s\": " << depth_seconds[2] << ", \"depth4_s\": " << depth_seconds[4]
       << ", \"depth8_s\": " << depth_seconds[8] << ", \"depth16_s\": " << depth_seconds[16]
       << ", \"depth_unbounded_s\": " << unbounded_s
       << ",\n          \"knee_depth\": " << knee_depth
       << ", \"whole_file_9_s\": " << whole_file_s << ", \"downed_s\": " << downed_s
       << ", \"downed_io_errors\": " << downed_errors << "},\n"
       << "  \"measured\": {\"serial_s\": " << serial_s << ", \"parallel_s\": " << parallel_s
       << ", \"speedup\": " << measured_speedup << "},\n"
       << "  \"results_plane\": \"" << (measured_authoritative ? "measured" : "sim") << "\"\n"
       << "}\n";
  json.close();
  std::cout << "wrote " << out_path << "\n";

  fs::remove_all(root);
  return 0;
}
