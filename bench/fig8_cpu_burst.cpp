// Fig. 8: A comparison in CPU burst time (flame graph).
//
// The paper profiles VMD under ext4 and finds data decompression weighs more
// than 50% of CPU burst time.  This harness emits two flame graphs in folded
// -stack format (flamegraph.pl input):
//
//   1. the modeled CPU phases of C-ext4 vs D-ADA(protein) at 5,006 frames
//      (the performance plane that Fig. 7 uses), and
//   2. a *measured* profile from really loading a trajectory through
//      mini-VMD on this host (functional plane), showing the same shape.
#include <filesystem>
#include <iostream>

#include "ada/middleware.hpp"
#include "bench/bench_util.hpp"
#include "common/binary_io.hpp"
#include "formats/pdb.hpp"
#include "formats/xtc_file.hpp"
#include "platform/platform.hpp"
#include "vmd/mol.hpp"
#include "vmd/profiler.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;
using platform::Scenario;

namespace {

void print_profile(const std::string& title, const vmd::PhaseProfiler& profiler) {
  std::cout << "\n--- " << title << " ---\n";
  for (const auto& line : profiler.folded()) std::cout << "  " << line << "\n";
  std::cout << "  decompression share of CPU time: "
            << format_fixed(100.0 * profiler.fraction_under("vmd;load;decompress"), 1) << "%\n";
}

vmd::PhaseProfiler modeled_profile(const platform::ScenarioResult& result) {
  vmd::PhaseProfiler profiler;
  for (const auto& phase : result.phases) {
    if (phase.cpu_fraction < 0.5) continue;  // CPU bursts only, like the paper's profiler
    std::string stack = "vmd;";
    if (phase.name == "decompress") {
      stack += "load;decompress";
    } else if (phase.name == "filter" || phase.name == "merge" || phase.name == "indexer") {
      stack += "load;" + phase.name;
    } else {
      stack += phase.name;
    }
    profiler.add(stack, phase.seconds);
  }
  return profiler;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_flag(argc, argv);
  const std::string telemetry_spec = bench::telemetry_flag(argc, argv);
  bench::banner("Fig. 8: CPU burst time comparison (flame graphs)", "paper Fig. 8");

  // --- modeled plane: the pipelines behind Fig. 7 at 5,006 frames -------------
  const auto plat = platform::Platform::ssd_server();
  const auto sizes =
      platform::WorkloadSizes::from_profile(platform::FrameProfile::paper_gpcr(), 5006);
  const auto c = platform::run_scenario(plat, Scenario::kCompressedFs, sizes);
  const auto p = platform::run_scenario(plat, Scenario::kAdaProtein, sizes);
  print_profile("modeled CPU bursts, C-ext4 @ 5,006 frames (folded stacks)",
                modeled_profile(c));
  print_profile("modeled CPU bursts, D-ADA (protein) @ 5,006 frames (folded stacks)",
                modeled_profile(p));

  // --- functional plane: really load a trajectory through mini-VMD -------------
  // Full-size frames (43,520 atoms) so the decode volume dominates the way
  // it does in the paper's profile.
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::paper_default()).build();
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (int f = 0; f < 200; ++f) {
    if (!writer.add_frame(gen.current_step(), gen.current_time_ps(), system.box(),
                          gen.next_frame())
             .is_ok()) {
      return 1;
    }
  }
  const auto xtc = writer.take();

  const std::string root = std::filesystem::temp_directory_path().string() + "/ada_fig8_bench";
  std::filesystem::remove_all(root);
  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  core::Ada middleware(
      plfs::PlfsMount::open({{"ssd", root + "/ssd"}, {"hdd", root + "/hdd"}}).value(), config);
  if (!middleware.ingest(system, xtc, "bar.xtc").is_ok()) return 1;
  const std::string host_xtc = root + "/plain.xtc";
  if (!write_file(host_xtc, xtc).is_ok()) return 1;

  {
    vmd::MolSession session;  // traditional path: decompress on the "compute node"
    if (!session.mol_new_text(formats::write_pdb(system)).is_ok()) return 1;
    if (!session.mol_addfile(host_xtc).is_ok()) return 1;
    if (!session.render(0).is_ok()) return 1;
    print_profile("measured on this host, traditional load (real decode + render)",
                  session.profiler());
  }
  {
    vmd::MolSession session(&middleware);  // ADA path: subset arrives decompressed
    if (!session.mol_new_text(formats::write_pdb(system)).is_ok()) return 1;
    if (!session.mol_addfile("/mnt/bar.xtc", core::Tag("p")).is_ok()) return 1;
    if (!session.render(0).is_ok()) return 1;
    print_profile("measured on this host, ADA tag-p load (no decompression burst)",
                  session.profiler());
  }
  std::filesystem::remove_all(root);

  std::cout << "\nshape check: under the traditional path decompression is >50% of CPU\n"
               "burst time (paper Fig. 8); under ADA the decompression frames vanish.\n";
  bench::obs_report();
  bench::telemetry_report(telemetry_spec);
  bench::trace_report(trace_path);
  return 0;
}
