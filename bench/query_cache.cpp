// Query cache: cold vs warm read throughput on the GPCR synthetic workload.
//
// Ingests one trajectory into a scratch deployment, then times repeated
// per-tag queries through two middlewares over the same backends: one with
// the subset cache off (every round pays the full retrieve -- dropping
// reads, CRC verification, extent concatenation) and one with it armed
// (rounds after the first are shard-locked LRU hits).  Every warm subset is
// checked byte-identical to its cold counterpart before any timing is
// reported, and the JSON records the warm-over-cold speedup -- the number
// docs/performance.md quotes.  Emits BENCH_query.json.
//
//   query_cache [--size tiny|paper] [--frames N] [--rounds N]
//               [--cache BYTES] [--out BENCH_query.json] [--smoke]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "ada/middleware.hpp"
#include "bench/bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "formats/xtc_file.hpp"
#include "obs/metrics.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

namespace {

namespace fs = std::filesystem;

struct Plane {
  double wall_s = 0;
  double queries_per_s = 0;
  double bytes_per_s = 0;
};

void emit_plane(std::ostream& os, const char* name, const Plane& plane) {
  os << "  \"" << name << "\": {\"wall_s\": " << plane.wall_s
     << ", \"queries_per_s\": " << plane.queries_per_s
     << ", \"bytes_per_s\": " << plane.bytes_per_s << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string size = "paper";
  std::uint32_t frames = 64;
  unsigned rounds = 32;
  std::uint64_t cache_bytes = 256u << 20;
  std::string out_path = "BENCH_query.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> std::string {
      if (arg.rfind(flag + "=", 0) == 0) return arg.substr(flag.size() + 1);
      return "";
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (!value("--size").empty()) {
      size = value("--size");
    } else if (!value("--frames").empty()) {
      frames = static_cast<std::uint32_t>(parse_int(value("--frames")));
    } else if (!value("--rounds").empty()) {
      rounds = static_cast<unsigned>(parse_int(value("--rounds")));
    } else if (!value("--cache").empty()) {
      cache_bytes = static_cast<std::uint64_t>(parse_int(value("--cache")));
    } else if (!value("--out").empty()) {
      out_path = value("--out");
    }
  }
  if (smoke) {
    size = "tiny";
    frames = 8;
    rounds = 8;
  }
  if (rounds < 2) rounds = 2;  // round 0 is the warm plane's priming read

  std::cout << "================================================================\n"
            << "Query cache: cold vs warm repeated-subset reads\n"
            << "(GPCR synthetic workload, " << size << " system, " << frames << " frames, "
            << rounds << " rounds)\n"
            << "================================================================\n";

  const auto spec =
      size == "tiny" ? workload::GpcrSpec::tiny() : workload::GpcrSpec::paper_default();
  const auto system = workload::GpcrSystemBuilder(spec).build();
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (std::uint32_t f = 0; f < frames; ++f) {
    if (!writer
             .add_frame(gen.current_step(), gen.current_time_ps(), system.box(), gen.next_frame())
             .is_ok()) {
      std::cerr << "frame generation failed\n";
      return 1;
    }
  }
  const auto xtc = writer.take();

  obs::set_enabled(false);
  const std::string root = (fs::temp_directory_path() / "ada_bench_query_cache").string();
  fs::remove_all(root);

  core::AdaConfig cold_config;
  cold_config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  core::AdaConfig warm_config = cold_config;
  warm_config.cache_bytes = cache_bytes;

  auto mount = [&] {
    return plfs::PlfsMount::open({{"ssd", root + "/ssd"}, {"hdd", root + "/hdd"}});
  };
  auto cold_mount = mount();
  auto warm_mount = mount();
  if (!cold_mount.is_ok() || !warm_mount.is_ok()) {
    std::cerr << "cannot open scratch backends under " << root << "\n";
    return 1;
  }
  core::Ada cold(std::move(cold_mount).value(), cold_config);
  core::Ada warm(std::move(warm_mount).value(), warm_config);

  const auto ingest = cold.ingest(system, xtc, "bar.xtc");
  if (!ingest.is_ok()) {
    std::cerr << "ingest failed: " << ingest.error().to_string() << "\n";
    return 1;
  }
  const auto tags_result = cold.tags("bar.xtc");
  if (!tags_result.is_ok() || tags_result.value().empty()) {
    std::cerr << "no tags to query\n";
    return 1;
  }
  const std::vector<core::Tag> tags = tags_result.value();

  // Correctness gate before any timing: warm bytes == cold bytes per tag
  // (this also primes the warm middleware's cache).
  std::map<core::Tag, std::vector<std::uint8_t>> reference;
  std::uint64_t subset_bytes_total = 0;
  for (const core::Tag& tag : tags) {
    const auto cold_subset = cold.query("bar.xtc", tag);
    const auto warm_subset = warm.query("bar.xtc", tag);
    if (!cold_subset.is_ok() || !warm_subset.is_ok() ||
        cold_subset.value() != warm_subset.value()) {
      std::cerr << "cached and uncached reads differ for tag " << tag << "\n";
      return 1;
    }
    subset_bytes_total += cold_subset.value().size();
    reference[tag] = cold_subset.value();
  }

  // One timing loop for both planes: `rounds` full sweeps over every tag.
  auto run_plane = [&](core::Ada& middleware) -> Plane {
    const Stopwatch wall;
    std::uint64_t queries = 0;
    std::uint64_t bytes = 0;
    for (unsigned round = 0; round < rounds; ++round) {
      for (const core::Tag& tag : tags) {
        const auto subset = middleware.query("bar.xtc", tag);
        if (!subset.is_ok() || subset.value().size() != reference[tag].size()) {
          std::cerr << "query failed mid-plane for tag " << tag << "\n";
          std::exit(1);
        }
        ++queries;
        bytes += subset.value().size();
      }
    }
    Plane plane;
    plane.wall_s = wall.elapsed_seconds();
    plane.queries_per_s = static_cast<double>(queries) / plane.wall_s;
    plane.bytes_per_s = static_cast<double>(bytes) / plane.wall_s;
    return plane;
  };

  const Plane cold_plane = run_plane(cold);
  const Plane warm_plane = run_plane(warm);
  const double speedup = warm_plane.wall_s > 0 ? cold_plane.wall_s / warm_plane.wall_s : 0;

  std::printf("\n  plane      wall(s)   queries/s     bytes/s\n");
  std::printf("  cold    %10.4f  %10.1f  %10.3e\n", cold_plane.wall_s, cold_plane.queries_per_s,
              cold_plane.bytes_per_s);
  std::printf("  warm    %10.4f  %10.1f  %10.3e\n", warm_plane.wall_s, warm_plane.queries_per_s,
              warm_plane.bytes_per_s);
  std::printf("  warm-over-cold speedup: %.2fx\n", speedup);

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << bench::json_envelope("query_cache")
       << "  \"workload\": {\"system\": \"gpcr\", \"size\": \"" << size
       << "\", \"atoms\": " << system.atom_count() << ", \"frames\": " << frames
       << ", \"tags\": " << tags.size() << ", \"subset_bytes\": " << subset_bytes_total << "},\n"
       << "  \"config\": {\"cache_bytes\": " << cache_bytes << ", \"rounds\": " << rounds
       << "},\n";
  emit_plane(json, "cold", cold_plane);
  json << ",\n";
  emit_plane(json, "warm", warm_plane);
  json << ",\n  \"speedup\": " << speedup << "\n}\n";
  json.close();
  std::cout << "wrote " << out_path << "\n";

  fs::remove_all(root);
  return 0;
}
