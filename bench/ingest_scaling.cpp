// Ingest scaling: frame-parallel pre-processing throughput vs thread count.
//
// Measures DataPreProcessor::split (the decode + split + ordered-merge
// stage that dominates ADA's write path) over the GPCR synthetic workload
// at 1/2/4/8 threads and emits BENCH_ingest.json so the perf trajectory of
// the frame-parallel pipeline has data.
//
// Two planes, following the repo's convention (DESIGN.md):
//   * measured -- real wall clock on this host.  Only meaningful up to the
//     host's core count; on a 1-core container every thread count
//     serializes.
//   * modeled  -- the performance plane: wall(N) = scan + merge +
//     range_work / N, with every term calibrated from the measured runs
//     (scan and merge are the serial stages of the pipeline, range_work is
//     the per-range decode+split busy time the pool counters report).
//
// The JSON's headline "results" series is the measured plane when the host
// has at least as many cores as the largest thread count, and the modeled
// plane otherwise; "results_plane" says which.  See docs/performance.md.
//
//   ingest_scaling [--size tiny|paper] [--frames N] [--iters N]
//                  [--out BENCH_ingest.json] [--smoke]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ada/categorizer.hpp"
#include "ada/preprocessor.hpp"
#include "bench/bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "formats/xtc_file.hpp"
#include "obs/metrics.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

namespace {

struct Point {
  unsigned threads = 1;
  double wall_s = 0;
  double frames_per_s = 0;
  double bytes_per_s = 0;
  double speedup = 1.0;
};

void print_series(const char* title, const std::vector<Point>& series) {
  std::cout << "\n" << title << ":\n";
  std::cout << "  threads     wall(s)    frames/s     bytes/s   speedup\n";
  for (const Point& p : series) {
    std::printf("  %7u  %10.4f  %10.1f  %10.3e  %7.2fx\n", p.threads, p.wall_s, p.frames_per_s,
                p.bytes_per_s, p.speedup);
  }
}

void emit_series(std::ostream& os, const char* name, const std::vector<Point>& series) {
  os << "  \"" << name << "\": [\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const Point& p = series[i];
    os << "    {\"threads\": " << p.threads << ", \"wall_s\": " << p.wall_s
       << ", \"frames_per_s\": " << p.frames_per_s << ", \"bytes_per_s\": " << p.bytes_per_s
       << ", \"speedup\": " << p.speedup << "}" << (i + 1 < series.size() ? "," : "") << "\n";
  }
  os << "  ]";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string size = "paper";
  std::uint32_t frames = 64;
  unsigned iters = 2;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> std::string {
      if (arg.rfind(flag + "=", 0) == 0) return arg.substr(flag.size() + 1);
      return "";
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (!value("--size").empty()) {
      size = value("--size");
    } else if (!value("--frames").empty()) {
      frames = static_cast<std::uint32_t>(parse_int(value("--frames")));
    } else if (!value("--iters").empty()) {
      iters = static_cast<unsigned>(parse_int(value("--iters")));
    } else if (!value("--out").empty()) {
      out_path = value("--out");
    }
  }
  if (smoke) {
    size = "tiny";
    frames = 8;
    iters = 1;
  }

  std::cout << "================================================================\n"
            << "Ingest scaling: frame-parallel split throughput vs thread count\n"
            << "(GPCR synthetic workload, " << size << " system, " << frames << " frames)\n"
            << "================================================================\n";

  const auto spec =
      size == "tiny" ? workload::GpcrSpec::tiny() : workload::GpcrSpec::paper_default();
  const auto system = workload::GpcrSystemBuilder(spec).build();
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (std::uint32_t f = 0; f < frames; ++f) {
    if (!writer
             .add_frame(gen.current_step(), gen.current_time_ps(), system.box(), gen.next_frame())
             .is_ok()) {
      std::cerr << "frame generation failed\n";
      return 1;
    }
  }
  const auto xtc = writer.take();

  const core::LabelMap labels = core::categorize_protein_misc(system);
  const core::DataPreProcessor preprocessor(labels);
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};

  // Reference output: the serial path every thread count must reproduce.
  obs::set_enabled(false);
  const auto reference = preprocessor.split(xtc);
  if (!reference.is_ok()) {
    std::cerr << "serial split failed: " << reference.error().to_string() << "\n";
    return 1;
  }

  // --- measured plane --------------------------------------------------------
  std::vector<Point> measured;
  for (const unsigned threads : thread_counts) {
    double best = 0;
    for (unsigned it = 0; it < iters; ++it) {
      const Stopwatch wall;
      const auto result = preprocessor.split(xtc, nullptr, threads);
      const double elapsed = wall.elapsed_seconds();
      if (!result.is_ok()) {
        std::cerr << "split @" << threads << " threads failed: " << result.error().to_string()
                  << "\n";
        return 1;
      }
      if (result.value() != reference.value()) {
        std::cerr << "split @" << threads << " threads is not byte-identical to serial\n";
        return 1;
      }
      if (best == 0 || elapsed < best) best = elapsed;
    }
    Point p;
    p.threads = threads;
    p.wall_s = best;
    p.frames_per_s = frames / best;
    p.bytes_per_s = static_cast<double>(xtc.size()) / best;
    measured.push_back(p);
  }
  for (Point& p : measured) p.speedup = measured.front().wall_s / p.wall_s;

  // --- calibration for the modeled plane -------------------------------------
  // scan: timed directly (header walk, no decompression).
  const Stopwatch scan_wall;
  const auto extents = formats::scan_xtc_extents(xtc);
  const double scan_s = scan_wall.elapsed_seconds();
  if (!extents.is_ok()) return 1;
  // range work + merge: from the parallel path's own busy counters.
  obs::Registry::global().reset();
  obs::set_enabled(true);
  if (!preprocessor.split(xtc, nullptr, 2).is_ok()) return 1;
  obs::set_enabled(false);
  const double range_work_s =
      static_cast<double>(obs::Registry::global().counter_value("preprocess.decode_busy_ns")) /
      1e9;
  const double merge_s =
      static_cast<double>(obs::Registry::global().counter_value("preprocess.merge_busy_ns")) /
      1e9;

  std::vector<Point> modeled;
  for (const unsigned threads : thread_counts) {
    const double wall = threads == 1 ? measured.front().wall_s
                                     : scan_s + merge_s + range_work_s / threads;
    Point p;
    p.threads = threads;
    p.wall_s = wall;
    p.frames_per_s = frames / wall;
    p.bytes_per_s = static_cast<double>(xtc.size()) / wall;
    p.speedup = measured.front().wall_s / wall;
    modeled.push_back(p);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool use_measured = hw >= thread_counts.back();
  const auto& results = use_measured ? measured : modeled;

  print_series("measured on this host", measured);
  print_series("modeled (scan + merge + range_work/N, calibrated from measurement)", modeled);
  std::cout << "\nheadline plane: " << (use_measured ? "measured" : "modeled") << " ("
            << hw << " hardware thread" << (hw == 1 ? "" : "s") << " available)\n";

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  std::uint64_t raw_bytes = 0;
  for (const auto& [tag, image] : reference.value()) raw_bytes += image.size();
  json << "{\n"
       << bench::json_envelope("ingest_scaling")
       << "  \"workload\": {\"system\": \"gpcr\", \"size\": \"" << size
       << "\", \"atoms\": " << system.atom_count() << ", \"frames\": " << frames
       << ", \"xtc_bytes\": " << xtc.size() << ", \"raw_bytes\": " << raw_bytes << "},\n"
       << "  \"host\": {\"hardware_concurrency\": " << hw
       << ", \"pool_workers\": " << ThreadPool::shared().worker_count() << "},\n"
       << "  \"calibration\": {\"scan_s\": " << scan_s << ", \"merge_s\": " << merge_s
       << ", \"range_work_s\": " << range_work_s
       << ", \"serial_wall_s\": " << measured.front().wall_s << "},\n"
       << "  \"results_plane\": \"" << (use_measured ? "measured" : "modeled") << "\",\n";
  emit_series(json, "results", results);
  json << ",\n";
  emit_series(json, "measured", measured);
  json << ",\n";
  emit_series(json, "modeled", modeled);
  json << "\n}\n";
  json.close();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
