// Ablation: concurrent compute nodes (the paper's cluster has three).
//
// Fig. 9 benchmarks a single reader; the cluster was built with three
// compute nodes.  This harness loads the same dataset from 1..3 clients
// simultaneously and reports the makespan: the hybrid PVFS raw read is
// HDD-aggregate-bound (clients divide ~1.5 GB/s), while ADA's protein reads
// come from the SSD group with enough disk headroom that each client keeps
// its own NIC saturated -- this is where the 3-node SSD group pays off.
#include <iostream>

#include "bench/bench_util.hpp"
#include "net/fabric.hpp"
#include "platform/platform.hpp"
#include "pvfs/pvfs.hpp"
#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"
#include "workload/spec.hpp"

using namespace ada;

namespace {

struct Cluster {
  sim::Simulator simulator;
  sim::FlowNetwork network{simulator};
  net::Fabric fabric;
  pvfs::PvfsModel hybrid;
  pvfs::PvfsModel ssd;

  Cluster()
      : fabric(simulator, network, net::FabricSpec{4.5e9, 40e9, 2e-6}, 9),
        hybrid(simulator, fabric, "pvfs",
               {{3, storage::DeviceSpec::wd_hdd_1tb(), 2},
                {4, storage::DeviceSpec::wd_hdd_1tb(), 2},
                {5, storage::DeviceSpec::wd_hdd_1tb(), 2},
                {6, storage::DeviceSpec::plextor_ssd_256gb(), 2},
                {7, storage::DeviceSpec::plextor_ssd_256gb(), 2},
                {8, storage::DeviceSpec::plextor_ssd_256gb(), 2}},
               3),
        ssd(simulator, fabric, "pvfs-ssd",
            {{6, storage::DeviceSpec::plextor_ssd_256gb(), 2},
             {7, storage::DeviceSpec::plextor_ssd_256gb(), 2},
             {8, storage::DeviceSpec::plextor_ssd_256gb(), 2}},
            6) {}
};

double makespan(bool use_ada, unsigned clients, double raw_bytes, double protein_bytes) {
  Cluster cluster;
  int outstanding = static_cast<int>(clients);
  for (unsigned c = 0; c < clients; ++c) {
    if (use_ada) {
      cluster.ssd.read_file(protein_bytes, c, [&outstanding] { --outstanding; });
    } else {
      cluster.hybrid.read_file(raw_bytes, c, [&outstanding] { --outstanding; });
    }
  }
  cluster.simulator.run_while_pending([&] { return outstanding == 0; });
  return cluster.simulator.now();
}

}  // namespace

int main() {
  bench::banner("Ablation: concurrent compute nodes", "cluster scaling beyond paper Fig. 9");

  const auto sizes =
      platform::WorkloadSizes::from_profile(platform::FrameProfile::paper_gpcr(), 6256);

  Table table({"concurrent clients", "D-PVFS makespan (raw)", "per-client rate",
               "D-ADA protein makespan (SSD)", "per-client rate", "advantage"});
  for (const unsigned clients : {1u, 2u, 3u}) {
    const double pvfs = makespan(false, clients, sizes.raw_bytes, sizes.protein_bytes);
    const double ada = makespan(true, clients, sizes.raw_bytes, sizes.protein_bytes);
    table.add_row({std::to_string(clients), format_seconds(pvfs),
                   format_bytes(sizes.raw_bytes / pvfs) + "/s", format_seconds(ada),
                   format_bytes(sizes.protein_bytes / ada) + "/s",
                   format_fixed(pvfs / ada, 1) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nreading: adding clients divides the hybrid read's HDD-bound aggregate, so\n"
               "D-PVFS makespan grows ~linearly; the SSD group has 12 GB/s of disk headroom,\n"
               "so up to ~3 ADA clients each keep a full NIC and makespan barely moves --\n"
               "ADA's advantage *widens* exactly where the paper's cluster would be used\n"
               "(all three compute nodes rendering at once).\n";
  bench::obs_report();
  return 0;
}
