// Serve load: the multi-tenant query service under concurrent VMD clients.
//
// Four phases over one shared AdaService (docs/serving.md):
//
//   1. Correctness + coalescing wave.  N concurrent identical queries are
//      launched into a cold cache while the first backend read is held open
//      (a deterministic latency-spike fault), so every client arrives while
//      the leader's fill is in flight.  Verdicts: `serve.correct` (every
//      response byte-identical to the direct query) and
//      `serve.coalesce_single_fill` (the wave paid exactly ONE backend
//      fill).  Nothing is timed with the fault armed.
//   2. Zipf offered-load sweep.  C client threads (C doubling per level)
//      replay a Zipf-popular catalog of subset and 4-frame-block range
//      queries through execute(); per-level p50/p99 latency and throughput
//      locate the saturation knee (first level whose p99 exceeds 3x the
//      lightest level's).  Wall-clock keys are informational -- the perf
//      gate judges only the deterministic verdicts.
//   3. Overload.  A paused service with a 2-deep tenant queue must shed the
//      third submit with a typed kOverloaded (`serve.overload_typed`).
//   4. DRR fairness.  One worker, a 6-deep hot backlog vs one cold request,
//      quanta far below one response: the cold tenant's request must
//      complete second, not last, and the deficit scheduler must have
//      cycled (`serve.fair`).
//
// Emits BENCH_serve.json.
//
//   serve_load [--clients N] [--requests N] [--out BENCH_serve.json] [--smoke]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ada/ingest_stream.hpp"
#include "ada/middleware.hpp"
#include "bench/bench_util.hpp"
#include "common/faults.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "serve/serve.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kFrames = 32;
constexpr std::uint32_t kChunk = 4;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Nearest-rank percentile of a sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank =
      static_cast<std::size_t>(std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// One entry of the replayed catalog: a subset or a 32-frame-block-style
/// range request (4 frames here, scaled to the tiny workload).
struct CatalogEntry {
  serve::Request request;
  std::vector<std::uint8_t> reference;
};

/// Zipf(s=1.1) sampler over catalog ranks: rank 0 is the hot head, exactly
/// the replay-the-same-trajectory popularity a VMD fleet shows.
class ZipfPicker {
 public:
  ZipfPicker(std::size_t n, std::uint64_t seed) : rng_(seed) {
    cdf_.reserve(n);
    double total = 0;
    for (std::size_t k = 1; k <= n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), 1.1);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t pick() {
    const double u = rng_.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

/// Hold the leader's fill open so a concurrent wave provably overlaps it.
fault::Schedule first_read_delay(double seconds) {
  fault::Schedule schedule;
  schedule.trigger = fault::Schedule::Trigger::kNth;
  schedule.nth = 1;
  schedule.effect = fault::Outcome::Kind::kDelay;
  schedule.delay_seconds = seconds;
  return schedule;
}

struct LoadLevel {
  unsigned clients = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double requests_per_s = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::bool_flag(argc, argv, "smoke");
  unsigned max_clients = bench::uint_flag(argc, argv, "clients", smoke ? 16 : 64);
  unsigned requests_per_client = bench::uint_flag(argc, argv, "requests", smoke ? 24 : 96);
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  if (max_clients < 4) max_clients = 4;

  std::cout << "================================================================\n"
            << "Serve load: multi-tenant concurrent queries with coalescing\n"
            << "(GPCR tiny system, " << kFrames << " frames, Zipf sweep up to " << max_clients
            << " clients x " << requests_per_client << " requests)\n"
            << "================================================================\n";

  obs::set_enabled(false);
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  const auto labels = core::categorize_protein_misc(system);

  const std::string root = (fs::temp_directory_path() / "ada_bench_serve_load").string();
  fs::remove_all(root);
  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  config.cache_bytes = 32ull << 20;
  auto mount = plfs::PlfsMount::open({{"ssd", root + "/ssd"}, {"hdd", root + "/hdd"}});
  if (!mount.is_ok()) {
    std::cerr << "cannot open scratch backends under " << root << "\n";
    return 1;
  }
  core::Ada middleware(std::move(mount).value(), config);

  {
    auto stream = middleware.begin_stream(labels, "traj.xtc", kChunk);
    if (!stream.is_ok()) {
      std::cerr << "begin_stream failed: " << stream.error().to_string() << "\n";
      return 1;
    }
    workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});
    for (std::uint32_t f = 0; f < kFrames; ++f) {
      const auto frame = gen.next_frame();
      if (!stream.value()
               .add_frame(gen.current_step(), gen.current_time_ps(), system.box(), frame)
               .is_ok()) {
        std::cerr << "add_frame failed\n";
        return 1;
      }
    }
    if (!stream.value().finish().is_ok()) {
      std::cerr << "finish failed\n";
      return 1;
    }
  }

  const auto tags = middleware.tags("traj.xtc");
  if (!tags.is_ok() || tags.value().size() < 2) {
    std::cerr << "tag discovery failed\n";
    return 1;
  }

  // --- phase 1: correctness + the cold-wave coalescing differential -------------------
  // This runs BEFORE any reference query so the cache is genuinely cold:
  // a warmed cache would serve every wave client instantly and nothing
  // would overlap the leader's fill.
  bool correct = true;
  bool single_fill = false;
  {
    serve::ServeConfig serve_config;
    serve_config.workers = 4;
    serve_config.default_quota.max_inflight = 0;
    serve_config.default_quota.queue_capacity = 0;
    serve::AdaService service(middleware, serve_config);
    const fault::ScopedFault slow("plfs.read_dropping", first_read_delay(0.3));

    serve::Request wave_request;
    wave_request.logical_name = "traj.xtc";
    wave_request.tag = tags.value()[0];

    constexpr std::size_t kWave = 8;
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = kWave;
    std::vector<Result<serve::Response>> results;
    for (std::size_t i = 0; i < kWave; ++i) {
      const Status accepted =
          service.submit(wave_request, [&](Result<serve::Response> result) {
            const std::lock_guard<std::mutex> lock(mu);
            results.push_back(std::move(result));
            if (--remaining == 0) cv.notify_all();
          });
      if (!accepted.is_ok()) {
        std::cerr << "wave submit rejected: " << accepted.error().to_string() << "\n";
        return 1;
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return remaining == 0; });
    }
    fault::Injector::global().disarm_all();
    const auto wave_reference = middleware.query("traj.xtc", tags.value()[0]);
    if (!wave_reference.is_ok()) {
      std::cerr << "wave reference query failed\n";
      return 1;
    }
    for (const auto& result : results) {
      if (!result.is_ok() || *result.value().image != wave_reference.value()) correct = false;
    }
    const serve::ServeStats stats = service.stats();
    single_fill = stats.fills == 1 && stats.coalesced == kWave - 1;
    std::printf("\n  cold wave             %zu clients -> %llu fill(s), %llu coalesced (%s)\n",
                kWave, static_cast<unsigned long long>(stats.fills),
                static_cast<unsigned long long>(stats.coalesced),
                single_fill ? "single-flight" : "DUPLICATED");
  }

  // The replay catalog: every tag's full subset plus 4-frame range blocks
  // (the block granularity the serve layer coalesces range traffic on).
  std::vector<CatalogEntry> catalog;
  for (const core::Tag& tag : tags.value()) {
    CatalogEntry entry;
    entry.request.logical_name = "traj.xtc";
    entry.request.tag = tag;
    auto reference = middleware.query("traj.xtc", tag);
    if (!reference.is_ok()) {
      std::cerr << "reference query failed: " << reference.error().to_string() << "\n";
      return 1;
    }
    entry.reference = std::move(reference).value();
    catalog.push_back(std::move(entry));
    for (std::uint32_t begin = 0; begin + 4 <= kFrames; begin += 4) {
      CatalogEntry block;
      block.request.logical_name = "traj.xtc";
      block.request.tag = tag;
      block.request.kind = serve::RequestKind::kRange;
      block.request.range = core::FrameRange{begin, begin + 4, 1};
      auto sliced = middleware.query("traj.xtc", tag, block.request.range);
      if (!sliced.is_ok()) {
        std::cerr << "reference range query failed\n";
        return 1;
      }
      block.reference = std::move(sliced).value();
      catalog.push_back(std::move(block));
    }
  }

  // --- phase 2: Zipf offered-load sweep ------------------------------------------------
  std::vector<LoadLevel> levels;
  double coalescing_hit_ratio = 0;
  {
    serve::ServeConfig serve_config;
    serve_config.workers = 8;
    serve_config.default_quota.max_inflight = 8;
    serve_config.default_quota.queue_capacity = 0;
    serve::AdaService service(middleware, serve_config);

    std::uint64_t accepted_total = 0;
    for (unsigned clients = 4; clients <= max_clients; clients *= 2) {
      std::vector<double> latencies;
      std::mutex latency_mu;
      std::atomic<bool> failed{false};
      const Clock::time_point level_start = Clock::now();
      std::vector<std::thread> fleet;
      for (unsigned c = 0; c < clients; ++c) {
        fleet.emplace_back([&, c] {
          ZipfPicker picker(catalog.size(), 0x5eedull * (clients + 1) + c);
          const std::string tenant = "viz" + std::to_string(c % 4);
          std::vector<double> mine;
          mine.reserve(requests_per_client);
          for (unsigned r = 0; r < requests_per_client; ++r) {
            serve::Request request = catalog[picker.pick()].request;
            request.tenant = tenant;
            const Clock::time_point t0 = Clock::now();
            const auto result = service.execute(request);
            if (!result.is_ok()) {
              failed.store(true);
              return;
            }
            mine.push_back(ms_between(t0, Clock::now()));
          }
          const std::lock_guard<std::mutex> lock(latency_mu);
          latencies.insert(latencies.end(), mine.begin(), mine.end());
        });
      }
      for (std::thread& t : fleet) t.join();
      if (failed.load()) {
        std::cerr << "a sweep client failed\n";
        return 1;
      }
      const double elapsed_ms = ms_between(level_start, Clock::now());
      std::sort(latencies.begin(), latencies.end());
      LoadLevel level;
      level.clients = clients;
      level.p50_ms = percentile(latencies, 0.50);
      level.p99_ms = percentile(latencies, 0.99);
      level.requests_per_s =
          elapsed_ms > 0 ? static_cast<double>(latencies.size()) * 1000.0 / elapsed_ms : 0;
      levels.push_back(level);
      accepted_total += latencies.size();
      std::printf("  load %3u clients      p50 %7.3f ms  p99 %7.3f ms  %9.0f req/s\n",
                  clients, level.p50_ms, level.p99_ms, level.requests_per_s);
    }
    const serve::ServeStats stats = service.stats();
    coalescing_hit_ratio = stats.accepted != 0
                               ? static_cast<double>(stats.coalesced) /
                                     static_cast<double>(stats.accepted)
                               : 0;
    std::printf("  coalescing hit ratio  %.4f (%llu of %llu requests joined a fill)\n",
                coalescing_hit_ratio, static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(accepted_total));
  }

  // Saturation knee: the first level whose p99 blows past 3x the lightest
  // level's p99 (0 = no knee inside the sweep).
  unsigned knee_clients = 0;
  if (!levels.empty()) {
    const double base_p99 = std::max(levels.front().p99_ms, 1e-3);
    for (const LoadLevel& level : levels) {
      if (level.p99_ms > 3.0 * base_p99) {
        knee_clients = level.clients;
        break;
      }
    }
  }
  std::printf("  saturation knee       %s\n",
              knee_clients == 0 ? "not reached in sweep"
                                : (std::to_string(knee_clients) + " clients").c_str());

  // --- phase 3: typed overload ---------------------------------------------------------
  bool overload_typed = false;
  {
    serve::ServeConfig serve_config;
    serve_config.workers = 2;
    serve_config.start_paused = true;
    serve_config.default_quota.queue_capacity = 2;
    serve::AdaService service(middleware, serve_config);
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = 2;
    auto drain = [&](Result<serve::Response>) {
      const std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_all();
    };
    if (!service.submit(catalog[0].request, drain).is_ok() ||
        !service.submit(catalog[1].request, drain).is_ok()) {
      std::cerr << "overload phase: priming submits rejected\n";
      return 1;
    }
    const Status shed = service.submit(catalog[0].request, [](Result<serve::Response>) {});
    overload_typed = !shed.is_ok() && shed.error().code() == ErrorCode::kOverloaded;
    service.resume();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return remaining == 0; });
    }
    std::printf("  overload              full queue shed %s\n",
                overload_typed ? "typed kOverloaded" : "UNTYPED (regression)");
  }

  // --- phase 4: DRR fairness -----------------------------------------------------------
  bool fair = false;
  {
    serve::ServeConfig serve_config;
    serve_config.workers = 1;
    serve_config.start_paused = true;
    serve::TenantQuota quota;
    quota.max_inflight = 0;
    quota.queue_capacity = 0;
    quota.io_quantum_bytes = 1024;
    serve_config.tenant_quotas["hot"] = quota;
    serve_config.tenant_quotas["cold"] = quota;
    serve::AdaService service(middleware, serve_config);

    constexpr std::size_t kHotBacklog = 6;
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = kHotBacklog + 1;
    std::vector<std::string> order;
    auto tagged = [&](const std::string& who) {
      return [&, who](Result<serve::Response>) {
        const std::lock_guard<std::mutex> lock(mu);
        order.push_back(who);
        if (--remaining == 0) cv.notify_all();
      };
    };
    serve::Request hot = catalog[0].request;
    hot.tenant = "hot";
    serve::Request cold = catalog[0].request;
    cold.tenant = "cold";
    for (std::size_t i = 0; i < kHotBacklog; ++i) {
      if (!service.submit(hot, tagged("hot")).is_ok()) {
        std::cerr << "fairness phase: hot submit rejected\n";
        return 1;
      }
    }
    if (!service.submit(cold, tagged("cold")).is_ok()) {
      std::cerr << "fairness phase: cold submit rejected\n";
      return 1;
    }
    service.resume();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return remaining == 0; });
    }
    const auto cold_pos = std::find(order.begin(), order.end(), "cold") - order.begin();
    fair = cold_pos <= 1 && service.stats().drr_rounds >= 1;
    std::printf("  fairness              cold tenant finished #%ld of %zu, %llu DRR rounds (%s)\n",
                static_cast<long>(cold_pos + 1), order.size(),
                static_cast<unsigned long long>(service.stats().drr_rounds),
                fair ? "fair" : "STARVED");
  }

  if (!correct) {
    std::cerr << "served bytes differ from the direct query -- not reporting timings\n";
    return 1;
  }

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << bench::json_envelope("serve_load")
       << "  \"workload\": {\"system\": \"gpcr\", \"size\": \"tiny\", \"atoms\": "
       << system.atom_count() << ", \"frames\": " << kFrames << ", \"catalog\": "
       << catalog.size() << ", \"zipf_s\": 1.1, \"requests_per_client\": "
       << requests_per_client << "},\n"
       << "  \"serve\": {\"correct\": " << (correct ? 1 : 0)
       << ", \"coalesce_single_fill\": " << (single_fill ? 1 : 0)
       << ", \"overload_typed\": " << (overload_typed ? 1 : 0)
       << ", \"fair\": " << (fair ? 1 : 0)
       << ", \"coalescing_hit_ratio\": " << coalescing_hit_ratio
       << ", \"knee_clients\": " << knee_clients << "},\n"
       << "  \"load\": {\n";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    json << "    \"c" << levels[i].clients << "\": {\"p50_ms\": " << levels[i].p50_ms
         << ", \"p99_ms\": " << levels[i].p99_ms
         << ", \"requests_per_s\": " << levels[i].requests_per_s << "}"
         << (i + 1 == levels.size() ? "\n" : ",\n");
  }
  json << "  }\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return single_fill && overload_typed && fair ? 0 : 1;
}
