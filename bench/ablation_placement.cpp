// Ablation: how much of ADA's cluster win is pre-processing offload vs
// SSD placement?
//
// DESIGN.md calls out that the paper's Fig. 9 requires ADA's decompressed
// data to be served from the SSD PVFS instance (the Section 3.4 text
// describes a protein-on-SSD / MISC-on-HDD split instead).  This harness
// quantifies all three placements for both ADA scenarios.
#include <iostream>

#include "bench/bench_util.hpp"
#include "platform/platform.hpp"
#include "workload/spec.hpp"

using namespace ada;
using platform::PipelineOptions;
using platform::Scenario;

int main() {
  bench::banner("Ablation: ADA subset placement on the cluster",
                "design choice behind paper Fig. 9");

  const auto plat = platform::Platform::small_cluster();
  const auto sizes =
      platform::WorkloadSizes::from_profile(platform::FrameProfile::paper_gpcr(), 6256);

  const auto d_pvfs = platform::run_scenario(plat, Scenario::kRawFs, sizes);

  Table table({"placement", "D-ADA (all) retrieval", "D-ADA (all) turnaround",
               "D-ADA (protein) retrieval", "D-ADA (protein) turnaround",
               "retr. gain vs D-PVFS"});
  const std::pair<const char*, PipelineOptions::AdaClusterPlacement> placements[] = {
      {"all subsets on SSD (deployed)", PipelineOptions::AdaClusterPlacement::kAllOnSsd},
      {"p on SSD, m on HDD (Sec. 3.4)", PipelineOptions::AdaClusterPlacement::kSplitSsdHdd},
      {"all subsets on HDD", PipelineOptions::AdaClusterPlacement::kAllOnHdd},
  };
  for (const auto& [name, placement] : placements) {
    PipelineOptions options;
    options.ada_placement = placement;
    const auto all = platform::run_scenario(plat, Scenario::kAdaAll, sizes, options);
    const auto p = platform::run_scenario(plat, Scenario::kAdaProtein, sizes, options);
    table.add_row({name, format_seconds(all.retrieval_s), format_seconds(all.turnaround_s),
                   format_seconds(p.retrieval_s), format_seconds(p.turnaround_s),
                   format_fixed(d_pvfs.retrieval_s / all.retrieval_s, 2) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nreading: only the all-on-SSD deployment reproduces Fig. 9a's \">2x better\n"
               "than PVFS\" for D-ADA (all); the Section 3.4 split loses the full-read gain\n"
               "(MISC still streams from HDDs) while keeping the protein-read gain.\n"
               "Even all-on-HDD keeps most of the turnaround win: the dominant effect is\n"
               "the pre-processing offload, not the device placement.\n";
  bench::obs_report();
  return 0;
}
