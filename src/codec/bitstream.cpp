#include "codec/bitstream.hpp"

namespace ada::codec {

void BitWriter::put_bits(std::uint32_t value, unsigned width) {
  ADA_DCHECK(width <= 32);
  ADA_DCHECK(width == 32 || value < (1ull << width));
  accumulator_ = (accumulator_ << width) | value;
  acc_bits_ += width;
  bit_count_ += width;
  while (acc_bits_ >= 8) {
    acc_bits_ -= 8;
    buffer_.push_back(static_cast<std::uint8_t>((accumulator_ >> acc_bits_) & 0xffu));
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (acc_bits_ > 0) {
    buffer_.push_back(static_cast<std::uint8_t>((accumulator_ << (8 - acc_bits_)) & 0xffu));
    acc_bits_ = 0;
  }
  accumulator_ = 0;
  return std::move(buffer_);
}

Result<std::uint32_t> BitReader::get_bits(unsigned width) {
  ADA_DCHECK(width <= 32);
  if (bits_remaining() < width) {
    return corrupt_data("bitstream truncated: need " + std::to_string(width) + " bits, have " +
                        std::to_string(bits_remaining()));
  }
  std::uint32_t value = 0;
  unsigned taken = 0;
  while (taken < width) {
    const std::size_t byte_index = bit_pos_ >> 3;
    const unsigned bit_offset = static_cast<unsigned>(bit_pos_ & 7);
    const unsigned available = 8 - bit_offset;
    const unsigned take = std::min(available, width - taken);
    const std::uint32_t chunk =
        (static_cast<std::uint32_t>(data_[byte_index]) >> (available - take)) &
        ((1u << take) - 1u);
    value = (value << take) | chunk;
    taken += take;
    bit_pos_ += take;
  }
  return value;
}

Result<bool> BitReader::get_bit() {
  ADA_ASSIGN_OR_RETURN(const std::uint32_t v, get_bits(1));
  return v != 0;
}

}  // namespace ada::codec
