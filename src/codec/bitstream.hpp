// MSB-first bit-level I/O used by the coordinate codec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/result.hpp"

namespace ada::codec {

/// Appends variable-width unsigned fields, most-significant bit first.
class BitWriter {
 public:
  /// Append the low `width` bits of `value` (width in [0, 32]).
  /// Precondition: value < 2^width.
  void put_bits(std::uint32_t value, unsigned width);

  /// Append a single bit.
  void put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

  std::size_t bit_count() const noexcept { return bit_count_; }

  /// Flushes the partial byte (zero-filled) and returns the buffer.
  std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> buffer_;
  std::uint64_t accumulator_ = 0;  // pending bits, left-aligned within acc_bits_
  unsigned acc_bits_ = 0;
  std::size_t bit_count_ = 0;
};

/// Reads variable-width unsigned fields written by BitWriter.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `width` bits (width in [0, 32]).
  Result<std::uint32_t> get_bits(unsigned width);

  Result<bool> get_bit();

  std::size_t bits_consumed() const noexcept { return bit_pos_; }
  std::size_t bits_remaining() const noexcept { return data_.size() * 8 - bit_pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t bit_pos_ = 0;
};

/// Minimum number of bits that can represent `value` (0 -> 0 bits).
constexpr unsigned bits_needed(std::uint32_t value) noexcept {
  unsigned bits = 0;
  while (value != 0) {
    ++bits;
    value >>= 1;
  }
  return bits;
}

/// Zigzag map: signed -> unsigned preserving small magnitudes.
constexpr std::uint32_t zigzag_encode(std::int32_t v) noexcept {
  return (static_cast<std::uint32_t>(v) << 1) ^ static_cast<std::uint32_t>(v >> 31);
}

constexpr std::int32_t zigzag_decode(std::uint32_t u) noexcept {
  return static_cast<std::int32_t>((u >> 1) ^ (~(u & 1) + 1));
}

}  // namespace ada::codec
