// Lossy fixed-precision coordinate compression ("ada3d").
//
// This is the repository's stand-in for the GROMACS xtc3 / 3dfcoord
// algorithm, with the same computational character:
//
//   1. quantize each coordinate to an integer grid: q = round(x * precision)
//      (precision = 1000 reproduces xtc's default 0.001 nm grid);
//   2. delta-encode each atom against the previous atom in file order --
//      molecular files store bonded atoms consecutively, so deltas are small;
//   3. pack each atom either as a "small" record (1 flag bit + 3 zigzag
//      deltas of `small_bits` each) or, when any delta overflows, as a
//      "large" record (1 flag bit + 3 absolute frame-box-relative values);
//      `small_bits` is chosen per frame by exact cost minimization.
//
// On solvated MD systems this reaches ~3.3x over raw float32 (see
// tests/codec_test.cpp and bench/micro_codec.cpp), matching the paper's
// raw:compressed ratio of 3.27 (Table 2).  Decoding is deliberately a
// sequential, branchy, CPU-bound loop -- exactly the "duplication of labor"
// the paper's Fig. 8 flame graph attributes >50% of VMD CPU time to.
//
// Codec v2 adds temporal prediction on top of the same bitstream: each frame
// may be coded against the previous frame (Predictor::kPrev) or a linear
// extrapolation of the previous two (Predictor::kLinear) instead of
// intra-frame atom deltas.  MD displacements between adjacent frames are far
// smaller than inter-atom distances, so residuals pack tighter; and because
// every atom's residual is independent of every other atom's, the v2 decode
// reconstructs coordinates in a flat elementwise pass the compiler can
// auto-vectorize (v1's previous-atom chain is inherently serial).  The
// encoder picks the cheapest of {intra, prev, linear} per frame by exact
// cost, so v2 never does worse than v1 plus one predictor byte.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/result.hpp"

namespace ada::codec {

/// On-wire codec generations (AdaConfig selector, xtc coordinate-block magic).
enum class CodecVersion : std::uint8_t {
  kV1 = 1,  // per-frame intra coding only (ada3d classic)
  kV2 = 2,  // temporal prediction + SoA residual decode
};

/// How a v2 frame's quantized coordinates were predicted.
enum class Predictor : std::uint8_t {
  kIntra = 0,   // no temporal context: exact v1 record layout (keyframe)
  kPrev = 1,    // predicted from the previous frame's grid positions
  kLinear = 2,  // predicted from a 2-frame linear extrapolation
};

/// Codec configuration.
struct CodecParams {
  /// Grid resolution: coordinates are stored as round(x * precision).
  /// Default 1000 == millinanometer grid, the GROMACS xtc default.
  float precision = 1000.0f;
};

/// One compressed coordinate frame.
struct CompressedFrame {
  std::uint32_t atom_count = 0;
  float precision = 0.0f;
  std::int32_t min_quantum[3] = {0, 0, 0};  // per-dimension frame minimum (grid units)
  std::uint8_t full_bits[3] = {0, 0, 0};    // absolute-record field widths
  std::uint8_t small_bits = 0;              // small-record delta/residual field width
  Predictor predictor = Predictor::kIntra;  // always kIntra for v1 frames
  std::uint64_t payload_bits = 0;           // valid bits in `payload`
  std::vector<std::uint8_t> payload;        // bit-packed records

  /// Wire size of this frame's coordinate payload in bytes.
  std::size_t payload_bytes() const noexcept { return payload.size(); }
};

/// Temporal state threaded through a v2 encode or decode stream: the exact
/// quantized grids of the last two frames.  Encoder and decoder rotate it
/// identically (prediction is in the lossless integer domain), so contexts
/// never drift.  reset() forces the next frame intra -- that is how writers
/// implement keyframes and how readers handle seeks.
struct PredictionContext {
  std::vector<std::int32_t> prev1;  // most recent frame, xyz grid triplets
  std::vector<std::int32_t> prev2;  // the frame before prev1
  float precision = 0.0f;           // grid the stored quanta live on

  void reset() {
    prev1.clear();
    prev2.clear();
    precision = 0.0f;
  }

  /// Usable as a one-frame (kPrev) context for `values` coordinates?
  bool has_prev(std::size_t values, float grid) const noexcept {
    return precision == grid && precision > 0.0f && prev1.size() == values;
  }
  /// Usable as a two-frame (kLinear) context?
  bool has_two(std::size_t values, float grid) const noexcept {
    return has_prev(values, grid) && prev2.size() == values;
  }
};

/// Analysis by-product: the packed cost of each atom, for attributing
/// compressed bytes to data subsets (paper Table 1).
struct PerAtomCost {
  std::vector<std::uint32_t> bits;  // bits[i] == packed size of atom i
};

/// Compress `coords` (xyz triplets, length divisible by 3).
/// If `per_atom` is non-null it receives the per-atom bit costs.
Result<CompressedFrame> compress(std::span<const float> coords, const CodecParams& params,
                                 PerAtomCost* per_atom = nullptr);

/// Decompress back to xyz triplets.  Output values are exact multiples of
/// 1/precision; round-trip error is bounded by 0.5/precision per coordinate.
Result<std::vector<float>> decompress(const CompressedFrame& frame);

/// Compress one frame of a v2 stream.  Picks the cheapest predictor the
/// context supports (intra when `ctx` is empty or mismatched) and rotates
/// `ctx` so the next frame can predict from this one.  Call ctx.reset()
/// first to force a keyframe.
Result<CompressedFrame> compress_v2(std::span<const float> coords, const CodecParams& params,
                                    PredictionContext& ctx, PerAtomCost* per_atom = nullptr);

/// Decompress one frame of a v2 stream and rotate `ctx`.  Predicted frames
/// require a context of matching size and precision (i.e. decode must have
/// started at a keyframe) -- anything else is corrupt_data, never a crash.
Result<std::vector<float>> decompress_v2(const CompressedFrame& frame, PredictionContext& ctx);

/// Sum of packed record bits over an index range [begin, end) of atoms,
/// given a PerAtomCost from compress().  Used to attribute compressed volume
/// to categorized subsets.
std::uint64_t range_bits(const PerAtomCost& cost, std::size_t begin, std::size_t end);

}  // namespace ada::codec
