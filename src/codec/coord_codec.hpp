// Lossy fixed-precision coordinate compression ("ada3d").
//
// This is the repository's stand-in for the GROMACS xtc3 / 3dfcoord
// algorithm, with the same computational character:
//
//   1. quantize each coordinate to an integer grid: q = round(x * precision)
//      (precision = 1000 reproduces xtc's default 0.001 nm grid);
//   2. delta-encode each atom against the previous atom in file order --
//      molecular files store bonded atoms consecutively, so deltas are small;
//   3. pack each atom either as a "small" record (1 flag bit + 3 zigzag
//      deltas of `small_bits` each) or, when any delta overflows, as a
//      "large" record (1 flag bit + 3 absolute frame-box-relative values);
//      `small_bits` is chosen per frame by exact cost minimization.
//
// On solvated MD systems this reaches ~3.3x over raw float32 (see
// tests/codec_test.cpp and bench/micro_codec.cpp), matching the paper's
// raw:compressed ratio of 3.27 (Table 2).  Decoding is deliberately a
// sequential, branchy, CPU-bound loop -- exactly the "duplication of labor"
// the paper's Fig. 8 flame graph attributes >50% of VMD CPU time to.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/result.hpp"

namespace ada::codec {

/// Codec configuration.
struct CodecParams {
  /// Grid resolution: coordinates are stored as round(x * precision).
  /// Default 1000 == millinanometer grid, the GROMACS xtc default.
  float precision = 1000.0f;
};

/// One compressed coordinate frame.
struct CompressedFrame {
  std::uint32_t atom_count = 0;
  float precision = 0.0f;
  std::int32_t min_quantum[3] = {0, 0, 0};  // per-dimension frame minimum (grid units)
  std::uint8_t full_bits[3] = {0, 0, 0};    // absolute-record field widths
  std::uint8_t small_bits = 0;              // small-record delta field width
  std::uint64_t payload_bits = 0;           // valid bits in `payload`
  std::vector<std::uint8_t> payload;        // bit-packed records

  /// Wire size of this frame's coordinate payload in bytes.
  std::size_t payload_bytes() const noexcept { return payload.size(); }
};

/// Analysis by-product: the packed cost of each atom, for attributing
/// compressed bytes to data subsets (paper Table 1).
struct PerAtomCost {
  std::vector<std::uint32_t> bits;  // bits[i] == packed size of atom i
};

/// Compress `coords` (xyz triplets, length divisible by 3).
/// If `per_atom` is non-null it receives the per-atom bit costs.
Result<CompressedFrame> compress(std::span<const float> coords, const CodecParams& params,
                                 PerAtomCost* per_atom = nullptr);

/// Decompress back to xyz triplets.  Output values are exact multiples of
/// 1/precision; round-trip error is bounded by 0.5/precision per coordinate.
Result<std::vector<float>> decompress(const CompressedFrame& frame);

/// Sum of packed record bits over an index range [begin, end) of atoms,
/// given a PerAtomCost from compress().  Used to attribute compressed volume
/// to categorized subsets.
std::uint64_t range_bits(const PerAtomCost& cost, std::size_t begin, std::size_t end);

}  // namespace ada::codec
