#include "codec/coord_codec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "codec/bitstream.hpp"
#include "obs/metrics.hpp"

namespace ada::codec {

namespace {

// Quantized coordinates must stay well inside int32 so deltas cannot overflow.
constexpr std::int64_t kMaxQuantum = std::int64_t{1} << 30;

// Predicted-frame large records store one 32-bit zigzag residual per
// dimension: residuals of grid values in (-2^30, 2^30) against predictors
// clamped to the same range always fit.
constexpr unsigned kResidualFullBits = 32;

struct QuantizedFrame {
  std::vector<std::int32_t> q;  // xyz triplets, grid units
  std::int32_t mins[3];
  std::int32_t maxs[3];
};

Result<QuantizedFrame> quantize(std::span<const float> coords, float precision) {
  QuantizedFrame out;
  out.q.resize(coords.size());
  for (int d = 0; d < 3; ++d) {
    out.mins[d] = std::numeric_limits<std::int32_t>::max();
    out.maxs[d] = std::numeric_limits<std::int32_t>::min();
  }
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const float scaled = coords[i] * precision;
    if (!std::isfinite(scaled)) return invalid_argument("non-finite coordinate");
    const std::int64_t q64 = std::llrint(static_cast<double>(scaled));
    if (q64 <= -kMaxQuantum || q64 >= kMaxQuantum) {
      return invalid_argument("coordinate exceeds quantization range: " + std::to_string(coords[i]));
    }
    const auto q = static_cast<std::int32_t>(q64);
    out.q[i] = q;
    const int d = static_cast<int>(i % 3);
    out.mins[d] = std::min(out.mins[d], q);
    out.maxs[d] = std::max(out.maxs[d], q);
  }
  return out;
}

/// Width of the zigzagged delta field a given atom needs (max over dims).
unsigned atom_delta_bits(const std::int32_t* prev, const std::int32_t* cur) {
  unsigned needed = 0;
  for (int d = 0; d < 3; ++d) {
    const std::int32_t delta = cur[d] - prev[d];
    needed = std::max(needed, bits_needed(zigzag_encode(delta)));
  }
  return needed;
}

/// Exact cost minimization over the candidate small-record width k given a
/// histogram of per-atom field widths: an atom whose widest field fits in k
/// bits costs 1 + 3k, otherwise 1 + large_sum (its three large fields).
struct WidthChoice {
  unsigned k = 0;
  std::uint64_t cost = 0;
};

WidthChoice choose_small_bits(const std::array<std::uint32_t, 33>& width_histogram,
                              unsigned large_sum, unsigned max_k) {
  WidthChoice best;
  best.cost = std::numeric_limits<std::uint64_t>::max();
  for (unsigned k = 0; k <= max_k; ++k) {
    std::uint64_t fitting = 0;
    std::uint64_t overflowing = 0;
    for (unsigned w = 0; w <= 32; ++w) {
      (w <= k ? fitting : overflowing) += width_histogram[w];
    }
    const std::uint64_t cost = fitting * (1 + 3ull * k) + overflowing * (1 + large_sum);
    if (cost < best.cost) {
      best.cost = cost;
      best.k = k;
    }
  }
  return best;
}

/// The v1 record layout: first atom absolute, then per-atom flag + either
/// small zigzag deltas or absolute frame-box-relative fields.  Shared by v1
/// frames and v2 keyframes, so the two are bit-identical by construction.
void encode_intra(const QuantizedFrame& qf, CompressedFrame& frame, PerAtomCost* per_atom) {
  unsigned full_sum = 0;
  for (int d = 0; d < 3; ++d) {
    frame.min_quantum[d] = qf.mins[d];
    const auto span64 = static_cast<std::int64_t>(qf.maxs[d]) - qf.mins[d];
    frame.full_bits[d] = static_cast<std::uint8_t>(bits_needed(static_cast<std::uint32_t>(span64)));
    full_sum += frame.full_bits[d];
  }

  std::array<std::uint32_t, 33> width_histogram{};
  for (std::uint32_t i = 1; i < frame.atom_count; ++i) {
    width_histogram[atom_delta_bits(&qf.q[3 * (i - 1)], &qf.q[3 * i])] += 1;
  }
  const unsigned best_k = choose_small_bits(width_histogram, full_sum, 31).k;
  frame.small_bits = static_cast<std::uint8_t>(best_k);

  BitWriter writer;
  // First atom: absolute, no flag (the decoder knows).
  for (std::size_t d = 0; d < 3; ++d) {
    const auto rel = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(qf.q[d]) - frame.min_quantum[d]);
    writer.put_bits(rel, frame.full_bits[d]);
  }
  if (per_atom != nullptr) per_atom->bits.push_back(full_sum);

  for (std::uint32_t i = 1; i < frame.atom_count; ++i) {
    const std::int32_t* prev = &qf.q[3 * (i - 1)];
    const std::int32_t* cur = &qf.q[3 * i];
    const std::size_t before = writer.bit_count();
    if (atom_delta_bits(prev, cur) <= best_k) {
      writer.put_bit(false);
      for (int d = 0; d < 3; ++d) {
        writer.put_bits(zigzag_encode(cur[d] - prev[d]), best_k);
      }
    } else {
      writer.put_bit(true);
      for (int d = 0; d < 3; ++d) {
        const auto rel = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(cur[d]) - frame.min_quantum[d]);
        writer.put_bits(rel, frame.full_bits[d]);
      }
    }
    if (per_atom != nullptr) {
      per_atom->bits.push_back(static_cast<std::uint32_t>(writer.bit_count() - before));
    }
  }

  frame.payload_bits = writer.bit_count();
  frame.payload = writer.finish();
}

/// Sanity checks that must pass before sizing any allocation off the header:
/// a frame that lies about atom_count or payload_bits is rejected here with
/// at most payload.size()-proportional work.
Status check_payload_plausible(const CompressedFrame& frame, std::uint64_t min_bits) {
  if (frame.payload_bits > 8ull * frame.payload.size()) {
    return corrupt_data("payload_bits exceeds payload size");
  }
  if (frame.payload_bits < min_bits) {
    return corrupt_data("payload too small for declared atom count");
  }
  return Status::ok();
}

/// Decode the v1/intra record layout back to exact grid positions.  Working
/// in the integer domain (not floats) keeps prediction contexts lossless.
Result<std::vector<std::int32_t>> decode_intra_quanta(const CompressedFrame& frame) {
  for (int d = 0; d < 3; ++d) {
    if (frame.full_bits[d] > 32) return corrupt_data("invalid full_bits");
  }
  if (frame.small_bits > 31) return corrupt_data("invalid small_bits");
  // Atoms 1..n-1 cost at least their flag bit each.
  ADA_RETURN_IF_ERROR(check_payload_plausible(
      frame, frame.atom_count > 1 ? frame.atom_count - 1 : 0));

  std::vector<std::int32_t> quanta(static_cast<std::size_t>(frame.atom_count) * 3);
  BitReader reader(frame.payload);
  std::int32_t prev[3];
  for (int d = 0; d < 3; ++d) {
    ADA_ASSIGN_OR_RETURN(const std::uint32_t rel, reader.get_bits(frame.full_bits[d]));
    prev[d] = static_cast<std::int32_t>(
        static_cast<std::int64_t>(frame.min_quantum[d]) + rel);
    quanta[static_cast<std::size_t>(d)] = prev[d];
  }
  for (std::uint32_t i = 1; i < frame.atom_count; ++i) {
    ADA_ASSIGN_OR_RETURN(const bool large, reader.get_bit());
    for (int d = 0; d < 3; ++d) {
      std::int32_t value = 0;
      if (large) {
        ADA_ASSIGN_OR_RETURN(const std::uint32_t rel, reader.get_bits(frame.full_bits[d]));
        value = static_cast<std::int32_t>(static_cast<std::int64_t>(frame.min_quantum[d]) + rel);
      } else {
        ADA_ASSIGN_OR_RETURN(const std::uint32_t zz, reader.get_bits(frame.small_bits));
        value = prev[d] + zigzag_decode(zz);
      }
      prev[d] = value;
      quanta[3 * static_cast<std::size_t>(i) + static_cast<std::size_t>(d)] = value;
    }
  }
  if (reader.bits_consumed() != frame.payload_bits) {
    return corrupt_data("payload bit count mismatch: consumed " +
                        std::to_string(reader.bits_consumed()) + ", declared " +
                        std::to_string(frame.payload_bits));
  }
  return quanta;
}

std::vector<float> quanta_to_floats(std::span<const std::int32_t> quanta, float precision) {
  std::vector<float> coords(quanta.size());
  const float inv_precision = 1.0f / precision;
  const std::int32_t* q = quanta.data();
  float* out = coords.data();
  for (std::size_t i = 0; i < quanta.size(); ++i) {
    out[i] = static_cast<float>(q[i]) * inv_precision;
  }
  return coords;
}

/// Linear two-frame extrapolation, clamped into the valid grid so the
/// residual always fits a 32-bit zigzag field.  Encoder and decoder must
/// share this exactly.
inline std::int32_t predict_linear(std::int32_t p1, std::int32_t p2) noexcept {
  constexpr std::int64_t lim = kMaxQuantum - 1;
  const std::int64_t p = 2 * static_cast<std::int64_t>(p1) - p2;
  return static_cast<std::int32_t>(std::clamp(p, -lim, lim));
}

struct PredictorPlan {
  Predictor predictor = Predictor::kIntra;
  std::vector<std::int32_t> residuals;  // xyz triplets, quantized grid units
  unsigned best_k = 0;
  std::uint64_t cost = 0;
};

PredictorPlan plan_predicted(Predictor predictor, const QuantizedFrame& qf,
                             const PredictionContext& ctx) {
  PredictorPlan plan;
  plan.predictor = predictor;
  const std::size_t values = qf.q.size();
  plan.residuals.resize(values);
  std::array<std::uint32_t, 33> width_histogram{};
  for (std::size_t i = 0; i < values; i += 3) {
    unsigned width = 0;
    for (std::size_t d = 0; d < 3; ++d) {
      const std::int32_t predicted =
          predictor == Predictor::kLinear
              ? predict_linear(ctx.prev1[i + d], ctx.prev2[i + d])
              : ctx.prev1[i + d];
      const std::int32_t residual = static_cast<std::int32_t>(
          static_cast<std::int64_t>(qf.q[i + d]) - predicted);
      plan.residuals[i + d] = residual;
      width = std::max(width, bits_needed(zigzag_encode(residual)));
    }
    width_histogram[width] += 1;
  }
  const WidthChoice choice =
      choose_small_bits(width_histogram, 3 * kResidualFullBits, kResidualFullBits);
  plan.best_k = choice.k;
  plan.cost = choice.cost;
  return plan;
}

void encode_predicted(const QuantizedFrame& qf, const PredictorPlan& plan, CompressedFrame& frame,
                      PerAtomCost* per_atom) {
  frame.predictor = plan.predictor;
  frame.small_bits = static_cast<std::uint8_t>(plan.best_k);
  for (int d = 0; d < 3; ++d) {
    // min_quantum is informational for predicted frames; full_bits records
    // the large-field width so the header stays self-describing.
    frame.min_quantum[d] = qf.mins[d];
    frame.full_bits[d] = static_cast<std::uint8_t>(kResidualFullBits);
  }
  BitWriter writer;
  for (std::size_t i = 0; i < plan.residuals.size(); i += 3) {
    const std::size_t before = writer.bit_count();
    unsigned width = 0;
    for (std::size_t d = 0; d < 3; ++d) {
      width = std::max(width, bits_needed(zigzag_encode(plan.residuals[i + d])));
    }
    const bool large = width > plan.best_k;
    writer.put_bit(large);
    const unsigned field = large ? kResidualFullBits : plan.best_k;
    for (std::size_t d = 0; d < 3; ++d) {
      writer.put_bits(zigzag_encode(plan.residuals[i + d]), field);
    }
    if (per_atom != nullptr) {
      per_atom->bits.push_back(static_cast<std::uint32_t>(writer.bit_count() - before));
    }
  }
  frame.payload_bits = writer.bit_count();
  frame.payload = writer.finish();
}

void rotate_context(PredictionContext& ctx, std::vector<std::int32_t>&& quanta, float precision) {
  ctx.prev2 = std::move(ctx.prev1);
  ctx.prev1 = std::move(quanta);
  ctx.precision = precision;
}

}  // namespace

Result<CompressedFrame> compress(std::span<const float> coords, const CodecParams& params,
                                 PerAtomCost* per_atom) {
  if (coords.size() % 3 != 0) return invalid_argument("coords length not divisible by 3");
  if (!(params.precision > 0.0f)) return invalid_argument("precision must be positive");

  CompressedFrame frame;
  frame.atom_count = static_cast<std::uint32_t>(coords.size() / 3);
  frame.precision = params.precision;
  if (per_atom != nullptr) {
    per_atom->bits.clear();
    per_atom->bits.reserve(frame.atom_count);
  }
  if (frame.atom_count == 0) return frame;

  ADA_ASSIGN_OR_RETURN(const QuantizedFrame qf, quantize(coords, params.precision));
  encode_intra(qf, frame, per_atom);
  ADA_OBS_COUNT("codec.encode.calls", 1);
  ADA_OBS_COUNT("codec.encode.atoms", frame.atom_count);
  ADA_OBS_COUNT("codec.encode.bytes_out", frame.payload_bytes());
  return frame;
}

Result<std::vector<float>> decompress(const CompressedFrame& frame) {
  if (frame.atom_count == 0) return std::vector<float>{};
  if (!(frame.precision > 0.0f)) return corrupt_data("compressed frame has invalid precision");
  ADA_ASSIGN_OR_RETURN(const std::vector<std::int32_t> quanta, decode_intra_quanta(frame));
  ADA_OBS_COUNT("codec.decode.calls", 1);
  ADA_OBS_COUNT("codec.decode.atoms", frame.atom_count);
  ADA_OBS_COUNT("codec.decode.bytes_in", frame.payload_bytes());
  return quanta_to_floats(quanta, frame.precision);
}

Result<CompressedFrame> compress_v2(std::span<const float> coords, const CodecParams& params,
                                    PredictionContext& ctx, PerAtomCost* per_atom) {
  if (coords.size() % 3 != 0) return invalid_argument("coords length not divisible by 3");
  if (!(params.precision > 0.0f)) return invalid_argument("precision must be positive");

  CompressedFrame frame;
  frame.atom_count = static_cast<std::uint32_t>(coords.size() / 3);
  frame.precision = params.precision;
  if (per_atom != nullptr) {
    per_atom->bits.clear();
    per_atom->bits.reserve(frame.atom_count);
  }
  if (frame.atom_count == 0) {
    ctx.reset();  // keep encoder and decoder context streams in lockstep
    return frame;
  }

  ADA_ASSIGN_OR_RETURN(QuantizedFrame qf, quantize(coords, params.precision));

  // Evaluate every predictor the context supports by exact packed cost and
  // keep the cheapest; the intra candidate always exists, so a v2 stream can
  // always be written (and a reset context simply forces a keyframe).
  std::optional<PredictorPlan> chosen;
  if (ctx.has_prev(coords.size(), params.precision)) {
    chosen = plan_predicted(Predictor::kPrev, qf, ctx);
    if (ctx.has_two(coords.size(), params.precision)) {
      PredictorPlan linear = plan_predicted(Predictor::kLinear, qf, ctx);
      if (linear.cost < chosen->cost) chosen = std::move(linear);
    }
  }

  // Intra cost: the cost-minimized atom records plus the unconditional
  // absolute first atom (mirrors encode_intra's layout exactly).
  {
    unsigned full_sum = 0;
    for (int d = 0; d < 3; ++d) {
      const auto span64 = static_cast<std::int64_t>(qf.maxs[d]) - qf.mins[d];
      full_sum += bits_needed(static_cast<std::uint32_t>(span64));
    }
    std::array<std::uint32_t, 33> width_histogram{};
    for (std::uint32_t i = 1; i < frame.atom_count; ++i) {
      width_histogram[atom_delta_bits(&qf.q[3 * (i - 1)], &qf.q[3 * i])] += 1;
    }
    const std::uint64_t intra_cost =
        full_sum + choose_small_bits(width_histogram, full_sum, 31).cost;
    if (chosen.has_value() && intra_cost <= chosen->cost) chosen.reset();
  }

  if (chosen.has_value()) {
    encode_predicted(qf, *chosen, frame, per_atom);
  } else {
    encode_intra(qf, frame, per_atom);
    frame.predictor = Predictor::kIntra;
  }
  rotate_context(ctx, std::move(qf.q), params.precision);

  ADA_OBS_COUNT("codec.encode.calls", 1);
  ADA_OBS_COUNT("codec.encode.atoms", frame.atom_count);
  ADA_OBS_COUNT("codec.encode.bytes_out", frame.payload_bytes());
  return frame;
}

Result<std::vector<float>> decompress_v2(const CompressedFrame& frame, PredictionContext& ctx) {
  if (frame.atom_count == 0) {
    ctx.reset();
    return std::vector<float>{};
  }
  if (!(frame.precision > 0.0f)) return corrupt_data("compressed frame has invalid precision");
  const std::size_t values = static_cast<std::size_t>(frame.atom_count) * 3;

  std::vector<std::int32_t> quanta;
  if (frame.predictor == Predictor::kIntra) {
    ADA_ASSIGN_OR_RETURN(quanta, decode_intra_quanta(frame));
  } else if (frame.predictor == Predictor::kPrev || frame.predictor == Predictor::kLinear) {
    const bool linear = frame.predictor == Predictor::kLinear;
    const bool usable = linear ? ctx.has_two(values, frame.precision)
                               : ctx.has_prev(values, frame.precision);
    if (!usable) {
      return corrupt_data("predicted frame without a usable context (decode must start at a keyframe)");
    }
    if (frame.small_bits > 32) return corrupt_data("invalid small_bits");
    // Every atom costs at least its flag bit.
    ADA_RETURN_IF_ERROR(check_payload_plausible(frame, frame.atom_count));

    // Pass 1: serial bitstream -> flat residual array (SoA).
    std::vector<std::int32_t> residuals(values);
    BitReader reader(frame.payload);
    for (std::size_t i = 0; i < values; i += 3) {
      ADA_ASSIGN_OR_RETURN(const bool large, reader.get_bit());
      const unsigned field = large ? kResidualFullBits : frame.small_bits;
      for (std::size_t d = 0; d < 3; ++d) {
        ADA_ASSIGN_OR_RETURN(const std::uint32_t zz, reader.get_bits(field));
        residuals[i + d] = zigzag_decode(zz);
      }
    }
    if (reader.bits_consumed() != frame.payload_bits) {
      return corrupt_data("payload bit count mismatch: consumed " +
                          std::to_string(reader.bits_consumed()) + ", declared " +
                          std::to_string(frame.payload_bits));
    }

    // Pass 2: elementwise reconstruction with no loop-carried dependency --
    // this is the auto-vectorizable hot loop v1 cannot have.  Out-of-grid
    // reconstructions (corrupt residuals) are detected with a branch-free
    // accumulator and rejected after the loop.
    quanta.resize(values);
    const std::int32_t* p1 = ctx.prev1.data();
    const std::int32_t* res = residuals.data();
    std::int32_t* q = quanta.data();
    std::uint32_t bad = 0;
    if (linear) {
      const std::int32_t* p2 = ctx.prev2.data();
      for (std::size_t i = 0; i < values; ++i) {
        const std::int64_t v =
            static_cast<std::int64_t>(predict_linear(p1[i], p2[i])) + res[i];
        bad |= static_cast<std::uint32_t>((v <= -kMaxQuantum) || (v >= kMaxQuantum));
        q[i] = static_cast<std::int32_t>(v);
      }
    } else {
      for (std::size_t i = 0; i < values; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(p1[i]) + res[i];
        bad |= static_cast<std::uint32_t>((v <= -kMaxQuantum) || (v >= kMaxQuantum));
        q[i] = static_cast<std::int32_t>(v);
      }
    }
    if (bad != 0) return corrupt_data("predicted coordinate outside the quantization grid");
  } else {
    return corrupt_data("unknown predictor id: " +
                        std::to_string(static_cast<unsigned>(frame.predictor)));
  }

  std::vector<float> coords = quanta_to_floats(quanta, frame.precision);
  rotate_context(ctx, std::move(quanta), frame.precision);
  ADA_OBS_COUNT("codec.decode.calls", 1);
  ADA_OBS_COUNT("codec.decode.atoms", frame.atom_count);
  ADA_OBS_COUNT("codec.decode.bytes_in", frame.payload_bytes());
  return coords;
}

std::uint64_t range_bits(const PerAtomCost& cost, std::size_t begin, std::size_t end) {
  ADA_CHECK(begin <= end && end <= cost.bits.size());
  std::uint64_t total = 0;
  for (std::size_t i = begin; i < end; ++i) total += cost.bits[i];
  return total;
}

}  // namespace ada::codec
