#include "codec/coord_codec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "codec/bitstream.hpp"
#include "obs/metrics.hpp"

namespace ada::codec {

namespace {

// Quantized coordinates must stay well inside int32 so deltas cannot overflow.
constexpr std::int64_t kMaxQuantum = std::int64_t{1} << 30;

struct QuantizedFrame {
  std::vector<std::int32_t> q;  // xyz triplets, grid units
  std::int32_t mins[3];
  std::int32_t maxs[3];
};

Result<QuantizedFrame> quantize(std::span<const float> coords, float precision) {
  QuantizedFrame out;
  out.q.resize(coords.size());
  for (int d = 0; d < 3; ++d) {
    out.mins[d] = std::numeric_limits<std::int32_t>::max();
    out.maxs[d] = std::numeric_limits<std::int32_t>::min();
  }
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const float scaled = coords[i] * precision;
    if (!std::isfinite(scaled)) return invalid_argument("non-finite coordinate");
    const std::int64_t q64 = std::llrint(static_cast<double>(scaled));
    if (q64 <= -kMaxQuantum || q64 >= kMaxQuantum) {
      return invalid_argument("coordinate exceeds quantization range: " + std::to_string(coords[i]));
    }
    const auto q = static_cast<std::int32_t>(q64);
    out.q[i] = q;
    const int d = static_cast<int>(i % 3);
    out.mins[d] = std::min(out.mins[d], q);
    out.maxs[d] = std::max(out.maxs[d], q);
  }
  return out;
}

/// Width of the zigzagged delta field a given atom needs (max over dims).
unsigned atom_delta_bits(const std::int32_t* prev, const std::int32_t* cur) {
  unsigned needed = 0;
  for (int d = 0; d < 3; ++d) {
    const std::int32_t delta = cur[d] - prev[d];
    needed = std::max(needed, bits_needed(zigzag_encode(delta)));
  }
  return needed;
}

}  // namespace

Result<CompressedFrame> compress(std::span<const float> coords, const CodecParams& params,
                                 PerAtomCost* per_atom) {
  if (coords.size() % 3 != 0) return invalid_argument("coords length not divisible by 3");
  if (!(params.precision > 0.0f)) return invalid_argument("precision must be positive");

  CompressedFrame frame;
  frame.atom_count = static_cast<std::uint32_t>(coords.size() / 3);
  frame.precision = params.precision;
  if (per_atom != nullptr) {
    per_atom->bits.clear();
    per_atom->bits.reserve(frame.atom_count);
  }
  if (frame.atom_count == 0) return frame;

  ADA_ASSIGN_OR_RETURN(const QuantizedFrame qf, quantize(coords, params.precision));

  unsigned full_sum = 0;
  for (int d = 0; d < 3; ++d) {
    frame.min_quantum[d] = qf.mins[d];
    const auto span64 = static_cast<std::int64_t>(qf.maxs[d]) - qf.mins[d];
    frame.full_bits[d] = static_cast<std::uint8_t>(bits_needed(static_cast<std::uint32_t>(span64)));
    full_sum += frame.full_bits[d];
  }

  // Histogram of per-atom delta widths, then exact cost minimization over the
  // candidate small-record width k: an atom whose widest delta fits in k bits
  // costs 1 + 3k, otherwise 1 + full_sum.
  std::array<std::uint32_t, 33> width_histogram{};
  for (std::uint32_t i = 1; i < frame.atom_count; ++i) {
    width_histogram[atom_delta_bits(&qf.q[3 * (i - 1)], &qf.q[3 * i])] += 1;
  }
  unsigned best_k = 0;
  std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
  for (unsigned k = 0; k <= 31; ++k) {
    std::uint64_t fitting = 0;
    std::uint64_t overflowing = 0;
    for (unsigned w = 0; w <= 32; ++w) {
      (w <= k ? fitting : overflowing) += width_histogram[w];
    }
    const std::uint64_t cost = fitting * (1 + 3ull * k) + overflowing * (1 + full_sum);
    if (cost < best_cost) {
      best_cost = cost;
      best_k = k;
    }
  }
  frame.small_bits = static_cast<std::uint8_t>(best_k);

  BitWriter writer;
  // First atom: absolute, no flag (the decoder knows).
  for (std::size_t d = 0; d < 3; ++d) {
    const auto rel = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(qf.q[d]) - frame.min_quantum[d]);
    writer.put_bits(rel, frame.full_bits[d]);
  }
  if (per_atom != nullptr) per_atom->bits.push_back(full_sum);

  for (std::uint32_t i = 1; i < frame.atom_count; ++i) {
    const std::int32_t* prev = &qf.q[3 * (i - 1)];
    const std::int32_t* cur = &qf.q[3 * i];
    const std::size_t before = writer.bit_count();
    if (atom_delta_bits(prev, cur) <= best_k) {
      writer.put_bit(false);
      for (int d = 0; d < 3; ++d) {
        writer.put_bits(zigzag_encode(cur[d] - prev[d]), best_k);
      }
    } else {
      writer.put_bit(true);
      for (int d = 0; d < 3; ++d) {
        const auto rel = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(cur[d]) - frame.min_quantum[d]);
        writer.put_bits(rel, frame.full_bits[d]);
      }
    }
    if (per_atom != nullptr) {
      per_atom->bits.push_back(static_cast<std::uint32_t>(writer.bit_count() - before));
    }
  }

  frame.payload_bits = writer.bit_count();
  frame.payload = writer.finish();
  ADA_OBS_COUNT("codec.encode.calls", 1);
  ADA_OBS_COUNT("codec.encode.atoms", frame.atom_count);
  ADA_OBS_COUNT("codec.encode.bytes_out", frame.payload_bytes());
  return frame;
}

Result<std::vector<float>> decompress(const CompressedFrame& frame) {
  std::vector<float> coords(static_cast<std::size_t>(frame.atom_count) * 3);
  if (frame.atom_count == 0) return coords;
  if (!(frame.precision > 0.0f)) return corrupt_data("compressed frame has invalid precision");
  for (int d = 0; d < 3; ++d) {
    if (frame.full_bits[d] > 32) return corrupt_data("invalid full_bits");
  }
  if (frame.small_bits > 31) return corrupt_data("invalid small_bits");

  BitReader reader(frame.payload);
  const float inv_precision = 1.0f / frame.precision;
  std::int32_t prev[3];
  for (int d = 0; d < 3; ++d) {
    ADA_ASSIGN_OR_RETURN(const std::uint32_t rel, reader.get_bits(frame.full_bits[d]));
    prev[d] = static_cast<std::int32_t>(
        static_cast<std::int64_t>(frame.min_quantum[d]) + rel);
    coords[static_cast<std::size_t>(d)] = static_cast<float>(prev[d]) * inv_precision;
  }
  for (std::uint32_t i = 1; i < frame.atom_count; ++i) {
    ADA_ASSIGN_OR_RETURN(const bool large, reader.get_bit());
    for (int d = 0; d < 3; ++d) {
      std::int32_t value = 0;
      if (large) {
        ADA_ASSIGN_OR_RETURN(const std::uint32_t rel, reader.get_bits(frame.full_bits[d]));
        value = static_cast<std::int32_t>(static_cast<std::int64_t>(frame.min_quantum[d]) + rel);
      } else {
        ADA_ASSIGN_OR_RETURN(const std::uint32_t zz, reader.get_bits(frame.small_bits));
        value = prev[d] + zigzag_decode(zz);
      }
      prev[d] = value;
      coords[3 * static_cast<std::size_t>(i) + static_cast<std::size_t>(d)] =
          static_cast<float>(value) * inv_precision;
    }
  }
  if (reader.bits_consumed() != frame.payload_bits) {
    return corrupt_data("payload bit count mismatch: consumed " +
                        std::to_string(reader.bits_consumed()) + ", declared " +
                        std::to_string(frame.payload_bits));
  }
  ADA_OBS_COUNT("codec.decode.calls", 1);
  ADA_OBS_COUNT("codec.decode.atoms", frame.atom_count);
  ADA_OBS_COUNT("codec.decode.bytes_in", frame.payload_bytes());
  return coords;
}

std::uint64_t range_bits(const PerAtomCost& cost, std::size_t begin, std::size_t end) {
  ADA_CHECK(begin <= end && end <= cost.bits.size());
  std::uint64_t total = 0;
  for (std::size_t i = begin; i < end; ++i) total += cost.bits[i];
  return total;
}

}  // namespace ada::codec
