#include "plfs/plfs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/binary_io.hpp"
#include "common/crc32c.hpp"
#include "common/faults.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fs = std::filesystem;

namespace ada::plfs {

namespace {
constexpr const char* kIndexFile = "index.plfs";
constexpr const char* kStreamStateFile = "stream.plfs";
constexpr const char* kQuarantineSuffix = ".quarantined";

// Fault-injection sites (docs/robustness.md).
constexpr const char* kSiteWriteDropping = "plfs.write_dropping";
constexpr const char* kSiteReadDropping = "plfs.read_dropping";
constexpr const char* kSiteWriteIndex = "plfs.write_index";
constexpr const char* kSiteReadIndex = "plfs.read_index";
constexpr const char* kSiteWriteStreamState = "plfs.write_stream_state";

bool valid_logical_name(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  return name.find('/') == std::string::npos && name.find('\0') == std::string::npos;
}

bool is_quarantined_name(const std::string& name) {
  return name.size() > std::strlen(kQuarantineSuffix) &&
         name.ends_with(kQuarantineSuffix);
}

std::size_t flip_position(std::size_t size, double fraction) {
  if (size == 0) return 0;
  const auto pos = static_cast<std::size_t>(static_cast<double>(size) * fraction);
  return pos < size ? pos : size - 1;
}

/// Write one dropping file under the write_dropping fault site.  Torn and
/// corrupt outcomes REPORT SUCCESS -- that is the point: the stored CRC is
/// computed over the intended bytes, so the damage is caught on read.
Status write_dropping_bytes(const std::string& path, std::span<const std::uint8_t> bytes) {
  const fault::Outcome outcome = fault::hit(kSiteWriteDropping);
  switch (outcome.kind) {
    case fault::Outcome::Kind::kError:
      return outcome.to_error(kSiteWriteDropping);
    case fault::Outcome::Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double>(outcome.delay_seconds));
      break;
    case fault::Outcome::Kind::kTorn: {
      const auto keep = static_cast<std::size_t>(
          static_cast<double>(bytes.size()) * outcome.fraction);
      return write_file(path, bytes.subspan(0, keep));
    }
    case fault::Outcome::Kind::kCorrupt: {
      std::vector<std::uint8_t> damaged(bytes.begin(), bytes.end());
      if (!damaged.empty()) damaged[flip_position(damaged.size(), outcome.fraction)] ^= 0x01;
      return write_file(path, damaged);
    }
    case fault::Outcome::Kind::kNone:
      break;
  }
  return write_file(path, bytes);
}

}  // namespace

/// Read one dropping file under the read_dropping fault site.  A corrupt
/// outcome flips one byte of the returned buffer (simulated media error);
/// checksum verification downstream must catch it.
Result<std::vector<std::uint8_t>> read_dropping_file(const std::string& path) {
  const fault::Outcome outcome = fault::hit(kSiteReadDropping);
  if (outcome.kind == fault::Outcome::Kind::kError) {
    return outcome.to_error(kSiteReadDropping);
  }
  if (outcome.kind == fault::Outcome::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::duration<double>(outcome.delay_seconds));
  }
  ADA_ASSIGN_OR_RETURN(auto data, read_file(path));
  if (outcome.kind == fault::Outcome::Kind::kCorrupt && !data.empty()) {
    data[flip_position(data.size(), outcome.fraction)] ^= 0x01;
  }
  return data;
}

namespace {
/// Checksum-verify one extent slice against its index record.
Status verify_extent_checksum(const IndexRecord& record,
                              std::span<const std::uint8_t> slice) {
  if (!record.has_checksum()) return Status::ok();  // v1 record: nothing stored
  const std::uint32_t actual = crc32c(slice.data(), slice.size());
  if (actual == record.crc32c) return Status::ok();
  ADA_OBS_COUNT("plfs.crc_mismatch", 1);
  return corrupt_data("checksum mismatch on " + record.dropping + ": stored " +
                      std::to_string(record.crc32c) + ", computed " + std::to_string(actual));
}
}  // namespace

Result<PlfsMount> PlfsMount::open(std::vector<Backend> backends) {
  if (backends.empty()) return invalid_argument("plfs mount needs at least one backend");
  for (const Backend& backend : backends) {
    if (backend.host_root.empty()) return invalid_argument("backend has empty host root");
    std::error_code ec;
    fs::create_directories(backend.host_root, ec);
    if (ec) return io_error("cannot create backend root " + backend.host_root + ": " + ec.message());
  }
  return PlfsMount(std::move(backends));
}

std::string PlfsMount::container_dir(std::uint32_t backend_id,
                                     const std::string& logical_name) const {
  return backends_.at(backend_id).host_root + "/" + logical_name;
}

std::string PlfsMount::index_path(const std::string& logical_name) const {
  return container_dir(0, logical_name) + "/" + kIndexFile;
}

Status PlfsMount::create_container(const std::string& logical_name) {
  if (!valid_logical_name(logical_name)) {
    return invalid_argument("bad logical name: " + logical_name);
  }
  if (container_exists(logical_name)) {
    return already_exists("container " + logical_name + " already exists");
  }
  for (std::uint32_t b = 0; b < backend_count(); ++b) {
    std::error_code ec;
    fs::create_directories(container_dir(b, logical_name), ec);
    if (ec) return io_error("cannot create container dir on backend " + backends_[b].name);
  }
  return write_index(logical_name, {});
}

bool PlfsMount::container_exists(const std::string& logical_name) const {
  return valid_logical_name(logical_name) && fs::exists(index_path(logical_name));
}

void PlfsMount::bump_generation(const std::string& logical_name) const {
  const std::lock_guard<std::mutex> lock(clock_->mutex);
  ++clock_->generation[logical_name];
}

std::uint64_t PlfsMount::mutation_generation(const std::string& logical_name) const {
  const std::lock_guard<std::mutex> lock(clock_->mutex);
  const auto it = clock_->generation.find(logical_name);
  return it == clock_->generation.end() ? 0 : it->second;
}

void PlfsMount::bump_rewrite_generation(const std::string& logical_name) const {
  const std::lock_guard<std::mutex> lock(clock_->mutex);
  ++clock_->rewrite[logical_name];
}

std::uint64_t PlfsMount::rewrite_generation(const std::string& logical_name) const {
  const std::lock_guard<std::mutex> lock(clock_->mutex);
  const auto it = clock_->rewrite.find(logical_name);
  return it == clock_->rewrite.end() ? 0 : it->second;
}

Result<std::optional<StreamState>> PlfsMount::read_stream_state(
    const std::string& logical_name) const {
  if (!container_exists(logical_name)) {
    return not_found("container " + logical_name + " does not exist");
  }
  const std::string path = container_dir(0, logical_name) + "/" + kStreamStateFile;
  if (!fs::exists(path)) return std::optional<StreamState>{};
  ADA_ASSIGN_OR_RETURN(const auto image, read_file(path));
  ADA_ASSIGN_OR_RETURN(StreamState state, decode_stream_state(image));
  return std::optional<StreamState>{state};
}

Status PlfsMount::write_stream_state(const std::string& logical_name,
                                     const StreamState& state) {
  if (!container_exists(logical_name)) {
    return not_found("container " + logical_name + " does not exist");
  }
  // Bump the mutation clock first, mirroring write_index: a failed publish
  // can only cause a spurious cache miss, never a stale hit.  The rewrite
  // clock stays put -- moving the watermark forward rewrites no history.
  bump_generation(logical_name);
  ADA_RETURN_IF_ERROR(fault::check(kSiteWriteStreamState));
  return write_file_atomic(container_dir(0, logical_name) + "/" + kStreamStateFile,
                           encode_stream_state(state));
}

Status PlfsMount::write_index(const std::string& logical_name,
                              const std::vector<IndexRecord>& records) const {
  // Bump first: if the write fails (or tears before the atomic rename) the
  // container is treated as mutated anyway -- caches re-read instead of
  // trusting entries recorded before the attempt.
  bump_generation(logical_name);
  // The index is replaced atomically (tmp + rename); an injected fault here
  // models a crash before the rename, so readers keep the previous index.
  ADA_RETURN_IF_ERROR(fault::check(kSiteWriteIndex));
  return write_file_atomic(index_path(logical_name), encode_index(records));
}

Result<std::vector<IndexRecord>> PlfsMount::read_index(const std::string& logical_name) const {
  if (!container_exists(logical_name)) {
    return not_found("container " + logical_name + " does not exist");
  }
  ADA_RETURN_IF_ERROR(fault::check(kSiteReadIndex));
  ADA_ASSIGN_OR_RETURN(const auto image, read_file(index_path(logical_name)));
  return decode_index(image);
}

Result<IndexRecord> PlfsMount::append(const std::string& logical_name, const std::string& label,
                                      std::uint32_t backend_id,
                                      std::span<const std::uint8_t> bytes,
                                      const std::vector<std::uint64_t>* frame_offsets,
                                      const std::uint64_t* frame_base,
                                      std::uint32_t frame_count) {
  if (backend_id >= backend_count()) {
    return invalid_argument("backend " + std::to_string(backend_id) + " out of range");
  }
  const obs::ScopedTimer span("plfs_append");
  const obs::TraceSpan trace("plfs_append", label);
  ADA_OBS_COUNT("plfs.append.calls", 1);
  ADA_OBS_COUNT("plfs.append.bytes", bytes.size());
  if (obs::enabled()) {
    obs::Registry::global()
        .counter("plfs.append.bytes." + backends_[backend_id].name)
        .add(bytes.size());
  }
  ADA_ASSIGN_OR_RETURN(auto records, read_index(logical_name));

  IndexRecord record;
  record.logical_offset = logical_size(records);
  record.length = bytes.size();
  record.backend = backend_id;
  record.label = label;
  // Name suffix: one past the highest ordinal in use, NOT records.size().
  // Retention and repair shrink the index, and a size-derived name would
  // then collide with (and overwrite) a live chunk's dropping.
  std::uint64_t ordinal = 0;
  for (const IndexRecord& r : records) {
    const auto dot = r.dropping.rfind('.');
    if (dot == std::string::npos) continue;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(r.dropping.c_str() + dot + 1, &end, 10);
    if (end != nullptr && *end == '\0') ordinal = std::max<std::uint64_t>(ordinal, n + 1);
  }
  record.dropping =
      "dropping." + (label.empty() ? std::string("data") : label) + "." + std::to_string(ordinal);
  record.physical_offset = 0;  // one dropping file per append
  record.set_checksum(crc32c(bytes.data(), bytes.size()));
  if (frame_offsets != nullptr) record.set_frame_table(*frame_offsets);
  if (frame_base != nullptr) record.set_frame_base(*frame_base, frame_count);

  const std::string path = container_dir(backend_id, logical_name) + "/" + record.dropping;
  ADA_RETURN_IF_ERROR(retry_sync("plfs_write_dropping", retry_policy_,
                                 [&] { return write_dropping_bytes(path, bytes); }));
  records.push_back(record);
  ADA_RETURN_IF_ERROR(write_index(logical_name, records));
  return record;
}

Result<std::vector<std::uint8_t>> PlfsMount::read_extent(const std::string& logical_name,
                                                         const IndexRecord& record) const {
  const std::string path = container_dir(record.backend, logical_name) + "/" + record.dropping;
  ADA_ASSIGN_OR_RETURN(
      const auto dropping,
      retry_sync("plfs_read_dropping", retry_policy_, [&] { return read_dropping_file(path); }));
  if (dropping.size() < record.physical_offset + record.length) {
    return corrupt_data("dropping " + record.dropping + " shorter than its index record");
  }
  std::vector<std::uint8_t> slice(
      dropping.begin() + static_cast<std::ptrdiff_t>(record.physical_offset),
      dropping.begin() + static_cast<std::ptrdiff_t>(record.physical_offset + record.length));
  ADA_RETURN_IF_ERROR(verify_extent_checksum(record, slice));
  return slice;
}

Result<std::vector<std::uint8_t>> PlfsMount::read_logical(const std::string& logical_name) const {
  const obs::ScopedTimer span("plfs_read");
  const obs::TraceSpan trace("plfs_read");
  ADA_ASSIGN_OR_RETURN(auto records, read_index(logical_name));
  if (!is_complete(records)) {
    return corrupt_data("container " + logical_name + " has holes or overlapping extents");
  }
  std::sort(records.begin(), records.end(),
            [](const IndexRecord& a, const IndexRecord& b) {
              return a.logical_offset < b.logical_offset;
            });
  std::vector<std::uint8_t> out;
  out.reserve(logical_size(records));
  for (const IndexRecord& record : records) {
    ADA_ASSIGN_OR_RETURN(const auto slice, read_extent(logical_name, record));
    out.insert(out.end(), slice.begin(), slice.end());
  }
  ADA_OBS_COUNT("plfs.read.calls", 1);
  ADA_OBS_COUNT("plfs.read.bytes", out.size());
  return out;
}

Result<std::vector<std::uint8_t>> PlfsMount::read_label(const std::string& logical_name,
                                                        const std::string& label) const {
  const obs::ScopedTimer span("plfs_read");
  const obs::TraceSpan trace("plfs_read", label);
  ADA_ASSIGN_OR_RETURN(auto records, read_index(logical_name));
  std::erase_if(records, [&](const IndexRecord& r) { return r.label != label; });
  std::sort(records.begin(), records.end(),
            [](const IndexRecord& a, const IndexRecord& b) {
              return a.logical_offset < b.logical_offset;
            });
  std::vector<std::uint8_t> out;
  for (const IndexRecord& record : records) {
    ADA_ASSIGN_OR_RETURN(const auto slice, read_extent(logical_name, record));
    out.insert(out.end(), slice.begin(), slice.end());
  }
  ADA_OBS_COUNT("plfs.read.calls", 1);
  ADA_OBS_COUNT("plfs.read.bytes", out.size());
  return out;
}

Result<std::uint64_t> PlfsMount::label_size(const std::string& logical_name,
                                            const std::string& label) const {
  ADA_ASSIGN_OR_RETURN(const auto records, read_index(logical_name));
  std::uint64_t total = 0;
  for (const IndexRecord& record : records) {
    if (record.label == label) total += record.length;
  }
  return total;
}

Status PlfsMount::remove_container(const std::string& logical_name) {
  if (!container_exists(logical_name)) {
    return not_found("container " + logical_name + " does not exist");
  }
  bump_generation(logical_name);
  bump_rewrite_generation(logical_name);
  for (std::uint32_t b = 0; b < backend_count(); ++b) {
    std::error_code ec;
    fs::remove_all(container_dir(b, logical_name), ec);
    if (ec) return io_error("cannot remove container on backend " + backends_[b].name);
  }
  return Status::ok();
}

Status PlfsMount::replace_container(const std::string& from, const std::string& to) {
  if (!valid_logical_name(to)) return invalid_argument("bad logical name: " + to);
  if (!container_exists(from)) {
    return not_found("staging container " + from + " does not exist");
  }
  bump_generation(from);
  bump_generation(to);
  bump_rewrite_generation(from);
  bump_rewrite_generation(to);
  for (std::uint32_t b = 0; b < backend_count(); ++b) {
    std::error_code ec;
    fs::remove_all(container_dir(b, to), ec);
    if (ec) return io_error("cannot remove old container on backend " + backends_[b].name);
    fs::rename(container_dir(b, from), container_dir(b, to), ec);
    if (ec) {
      return io_error("cannot swap container into place on backend " + backends_[b].name +
                      ": " + ec.message());
    }
  }
  return Status::ok();
}

std::string PlfsMount::dropping_host_path(std::uint32_t backend_id,
                                          const std::string& logical_name,
                                          const std::string& dropping) const {
  return container_dir(backend_id, logical_name) + "/" + dropping;
}

Result<std::vector<std::string>> PlfsMount::list_dropping_files(
    std::uint32_t backend_id, const std::string& logical_name) const {
  if (backend_id >= backend_count()) return invalid_argument("backend out of range");
  std::vector<std::string> out;
  std::error_code ec;
  const std::string dir = container_dir(backend_id, logical_name);
  if (!fs::is_directory(dir)) return out;  // backend never got this container
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == kIndexFile || name == kStreamStateFile || is_quarantined_name(name)) continue;
    out.push_back(name);
  }
  if (ec) return io_error("cannot list " + dir + ": " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

Status PlfsMount::rewrite_index(const std::string& logical_name,
                                const std::vector<IndexRecord>& records) {
  if (!container_exists(logical_name)) {
    return not_found("container " + logical_name + " does not exist");
  }
  // Wholesale index replacement (repair, retention) can rewrite history:
  // fence frame-block cache entries too, not just whole-subset entries.
  bump_rewrite_generation(logical_name);
  return write_index(logical_name, records);
}

Result<std::vector<std::string>> PlfsMount::list_containers() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(backends_[0].host_root, ec)) {
    if (entry.is_directory() && fs::exists(entry.path() / kIndexFile)) {
      out.push_back(entry.path().filename().string());
    }
  }
  if (ec) return io_error("cannot list " + backends_[0].host_root + ": " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ada::plfs
