// Container verification and repair (fsck for the PLFS layer).
//
// A streaming ingest that crashes between chunk flushes, a backend that
// loses a disk, or a stray file dropped into a container directory all leave
// the container inconsistent.  verify_container() diagnoses; repair()
// restores the strongest consistent state (drops index records whose
// droppings are gone, removes orphan files) without touching intact data.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "plfs/plfs.hpp"

namespace ada::plfs {

struct VerifyReport {
  /// Index records whose dropping file is missing or shorter than the
  /// record's extent.
  std::vector<IndexRecord> broken_records;

  /// Index records whose dropping bytes exist at full length but fail the
  /// stored CRC32C (silent corruption: bit flip, torn rewrite).
  std::vector<IndexRecord> checksum_bad_records;

  /// Files inside container directories that no index record references.
  /// (backend id, file name)
  std::vector<std::pair<std::uint32_t, std::string>> orphan_droppings;

  /// Streamed extents above the sealed-frame watermark: the open tail of an
  /// interrupted stream.  Possibly mid-write, so they are exempt from the
  /// broken/checksum classification; repair quarantines them and seals the
  /// stream.  The sealed prefix below the watermark is untouched.
  std::vector<IndexRecord> open_tail_records;

  /// Stream state present and not sealed (a live stream, or a crash before
  /// finish()).  Informational: an open stream with no other findings is
  /// consistent -- do not run repair on a container still being written.
  bool stream_open = false;

  /// Stream state file present but undecodable (torn write, bit flip).
  /// Repair reconstructs a conservative watermark from the index and seals.
  bool stream_state_corrupt = false;

  /// True when the logical extents tile [0, size) without holes/overlap.
  bool extents_complete = false;

  bool clean() const noexcept {
    return broken_records.empty() && checksum_bad_records.empty() &&
           orphan_droppings.empty() && open_tail_records.empty() &&
           !stream_state_corrupt && extents_complete;
  }
};

/// Diagnose one container.  Fails only if the index itself is unreadable.
Result<VerifyReport> verify_container(const PlfsMount& mount, const std::string& logical_name);

struct RepairActions {
  std::size_t records_dropped = 0;
  std::size_t orphans_removed = 0;
  /// Checksum-bad droppings set aside as "<name>.quarantined" (kept on disk
  /// for forensics, never deleted or served) and dropped from the index.
  std::size_t extents_quarantined = 0;
  /// Open-tail records quarantined + dropped while sealing an interrupted
  /// stream (the sealed prefix below the watermark is untouched).
  std::size_t tail_records_dropped = 0;
};

/// Repair in place: rewrite the index without broken records, quarantine
/// checksum-bad droppings, and delete orphan droppings.  Data whose
/// droppings are intact is never modified.  Extent completeness is *not*
/// restored (lost extents stay lost) -- the report tells the caller what is
/// gone.
///
/// Interrupted streams: when the report carries open-tail records or a
/// corrupt stream state, repair quarantines the tail droppings, drops their
/// records, and *seals* the stream at the watermark (reconstructed from the
/// index -- min across tags of each tag's covered frame end -- if the state
/// file is corrupt).  Only run repair on streams known to be dead; sealing a
/// live stream ends it.
Result<RepairActions> repair_container(PlfsMount& mount, const std::string& logical_name);

}  // namespace ada::plfs
