// PlfsMount: a multi-backend PLFS-style mount over real host directories.
//
// This is the functional half of the I/O dispatcher substrate.  A mount owns
// N backends (paper Fig. 6: mnt1, mnt2, ...), each a directory on the host
// file system.  Creating logical file "bar" creates a "bar/" container
// directory on every backend; appends become dropping files on the chosen
// backend plus index records; reads reassemble the logical stream -- or just
// one label's subset -- from the droppings.
//
// Data written through a mount is real bytes in real files: the correctness
// tests and examples operate on what a real deployment would store, while
// performance is modeled separately (src/pvfs, src/storage).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/retry.hpp"
#include "plfs/container.hpp"

namespace ada::plfs {

/// One backend file system of the mount.
struct Backend {
  std::string name;       // e.g. "ssd-pvfs"
  std::string host_root;  // host directory that stands in for the mount point
};

/// Fault-aware read of one dropping file by host path: evaluates the
/// "plfs.read_dropping" injection site (errors, latency, simulated media
/// corruption) before/after the real read.  Shared by PlfsMount and the ADA
/// I/O retriever so both read paths see the same faults.
Result<std::vector<std::uint8_t>> read_dropping_file(const std::string& host_path);

class PlfsMount {
 public:
  /// Validate backends and create their root directories.
  static Result<PlfsMount> open(std::vector<Backend> backends);

  std::uint32_t backend_count() const noexcept {
    return static_cast<std::uint32_t>(backends_.size());
  }
  const Backend& backend(std::uint32_t id) const { return backends_.at(id); }

  /// Create an (empty) container for `logical_name` on every backend.
  /// Fails with kAlreadyExists if the container is already present.
  Status create_container(const std::string& logical_name);

  bool container_exists(const std::string& logical_name) const;

  /// Retry policy for dropping reads/writes (transient injected or real I/O
  /// errors).  Defaults to 4 attempts with millisecond backoff.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const noexcept { return retry_policy_; }

  /// Append `bytes` to the logical file, storing the dropping on `backend_id`
  /// tagged with `label`.  Returns the index record it created.  The extent's
  /// CRC32C is computed over the intended bytes and stored in the record, so
  /// a torn or corrupted write is caught at read time.  When `frame_offsets`
  /// is non-null the record additionally carries a frame table (byte offset
  /// of each decoded frame within this extent) for frame-range queries.
  /// When `frame_base` is non-null the record also carries a global frame
  /// span [*frame_base, *frame_base + frame_count) -- streaming ingest uses
  /// this so readers can clamp to the sealed-frame watermark.
  Result<IndexRecord> append(const std::string& logical_name, const std::string& label,
                             std::uint32_t backend_id, std::span<const std::uint8_t> bytes,
                             const std::vector<std::uint64_t>* frame_offsets = nullptr,
                             const std::uint64_t* frame_base = nullptr,
                             std::uint32_t frame_count = 0);

  /// Full logical file content, reassembled across backends in logical order.
  Result<std::vector<std::uint8_t>> read_logical(const std::string& logical_name) const;

  /// Concatenated content of every dropping carrying `label`, in logical order.
  Result<std::vector<std::uint8_t>> read_label(const std::string& logical_name,
                                               const std::string& label) const;

  /// The container's index records.
  Result<std::vector<IndexRecord>> read_index(const std::string& logical_name) const;

  /// Total bytes stored under `label` (0 if none).
  Result<std::uint64_t> label_size(const std::string& logical_name,
                                   const std::string& label) const;

  /// Delete the container from every backend.
  Status remove_container(const std::string& logical_name);

  /// Atomically replace container `to` with container `from` (a directory
  /// rename per backend): `from` ceases to exist, `to` carries its contents.
  /// The staging container `from` must exist; a pre-existing `to` is removed
  /// first.  Used by the overwrite ingest path to swap a fully written
  /// staging container into place.
  Status replace_container(const std::string& from, const std::string& to);

  /// Monotonic per-container mutation generation.  Bumped by every index
  /// write (create, append, rewrite/repair) and by container removal or
  /// replacement -- conservatively *before* the mutation is attempted, so a
  /// failed write can only cause a spurious cache miss, never staleness.
  /// Query-side caches (ada/query_cache.hpp) validate entries against it.
  /// Shared across copies/moves of this mount (one clock per open()).
  std::uint64_t mutation_generation(const std::string& logical_name) const;

  /// Monotonic per-container *rewrite* generation.  Unlike the mutation
  /// clock, this only advances on writes that can rewrite history --
  /// rewrite_index (repair, retention), remove_container, replace_container
  /// -- never on plain appends or stream-state watermark bumps.  Cached
  /// frame-range blocks below a sealed watermark stay valid across chunk
  /// flushes by validating against this clock instead of the mutation clock.
  std::uint64_t rewrite_generation(const std::string& logical_name) const;

  /// The container's live-stream state ("stream.plfs" on backend 0), or
  /// nullopt for containers that never streamed (batch ingest).  A present
  /// but corrupt state file is an error (kCorruptData), not nullopt --
  /// readers must not silently treat a torn state as "everything sealed".
  Result<std::optional<StreamState>> read_stream_state(const std::string& logical_name) const;

  /// Atomically publish the container's stream state.  Bumps the mutation
  /// generation (watermark moves fence whole-subset cache entries) but not
  /// the rewrite generation.  Fault site: "plfs.write_stream_state".
  Status write_stream_state(const std::string& logical_name, const StreamState& state);

  /// Containers present (by index files on backend 0).
  Result<std::vector<std::string>> list_containers() const;

  // --- low-level accessors (fsck / tooling) ------------------------------------

  /// Host path of a dropping file.
  std::string dropping_host_path(std::uint32_t backend_id, const std::string& logical_name,
                                 const std::string& dropping) const;

  /// Dropping file names physically present in one backend's container dir
  /// (excludes the index file and "*.quarantined" files set aside by fsck).
  Result<std::vector<std::string>> list_dropping_files(std::uint32_t backend_id,
                                                       const std::string& logical_name) const;

  /// Overwrite the container's index wholesale.  For repair tools only --
  /// normal writers go through append().
  Status rewrite_index(const std::string& logical_name,
                       const std::vector<IndexRecord>& records);

 private:
  /// Per-container mutation generations, shared by every copy of the mount
  /// (fsck tooling operating on a copy still advances the same clock).
  struct MutationClock {
    std::mutex mutex;
    std::map<std::string, std::uint64_t> generation;
    std::map<std::string, std::uint64_t> rewrite;  // history-rewriting writes only
  };

  explicit PlfsMount(std::vector<Backend> backends)
      : backends_(std::move(backends)), clock_(std::make_shared<MutationClock>()) {}

  std::string container_dir(std::uint32_t backend_id, const std::string& logical_name) const;
  std::string index_path(const std::string& logical_name) const;
  Status write_index(const std::string& logical_name,
                     const std::vector<IndexRecord>& records) const;
  void bump_generation(const std::string& logical_name) const;
  void bump_rewrite_generation(const std::string& logical_name) const;

  /// One extent's bytes, retried and checksum-verified.
  Result<std::vector<std::uint8_t>> read_extent(const std::string& logical_name,
                                                const IndexRecord& record) const;

  std::vector<Backend> backends_;
  RetryPolicy retry_policy_;
  std::shared_ptr<MutationClock> clock_;
};

}  // namespace ada::plfs
