// PLFS container structures: index records and their on-disk encoding.
//
// Following PLFS (Bent et al., SC'09), a logical file is a *container*: a
// same-named directory on every backend file system, holding data
// "droppings" plus an index that maps logical extents to (backend, dropping,
// physical offset).  ADA's I/O dispatcher leans on exactly this: each
// dropping carries the label of the data subset it stores, so a tag query
// resolves to the droppings with that label.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace ada::plfs {

/// One logical extent of a container.
struct IndexRecord {
  /// flags bits (v2 index format).
  static constexpr std::uint8_t kHasChecksum = 0x01;
  /// Record carries a per-extent frame table (frame-granular addressing).
  static constexpr std::uint8_t kHasFrameTable = 0x02;
  /// Record carries a global frame span (streaming ingest: the extent holds
  /// frames [frame_base, frame_base + frame_count) of the subset's frame
  /// axis).  Readers clamp to the container's sealed-frame watermark
  /// (StreamState) using exactly this span.
  static constexpr std::uint8_t kHasFrameBase = 0x04;

  std::uint64_t logical_offset = 0;  // position in the logical file
  std::uint64_t length = 0;
  std::uint32_t backend = 0;         // which backend holds the dropping
  std::string label;                 // data-subset tag ("p", "m", ... or "")
  std::string dropping;              // dropping file name within the container dir
  std::uint64_t physical_offset = 0; // offset inside the dropping file
  std::uint32_t crc32c = 0;          // extent checksum (valid iff kHasChecksum)
  std::uint8_t flags = 0;
  /// Byte offset of each decoded frame relative to the extent start, in
  /// frame order (valid iff kHasFrameTable).  Lets a range query read only
  /// the extents and slices it needs instead of the whole subset.
  std::vector<std::uint64_t> frame_offsets;

  bool has_checksum() const noexcept { return (flags & kHasChecksum) != 0; }
  void set_checksum(std::uint32_t crc) noexcept {
    crc32c = crc;
    flags |= kHasChecksum;
  }

  bool has_frame_table() const noexcept { return (flags & kHasFrameTable) != 0; }
  void set_frame_table(std::vector<std::uint64_t> offsets) {
    frame_offsets = std::move(offsets);
    flags |= kHasFrameTable;
  }

  /// Global frame index of the extent's first frame (valid iff
  /// kHasFrameBase), plus the number of frames the extent holds.  Written by
  /// the streaming ingest so the sealed prefix is computable from the index
  /// alone, whatever order a racing reader saw index and stream state in.
  std::uint64_t frame_base = 0;
  std::uint32_t frame_count = 0;

  bool has_frame_base() const noexcept { return (flags & kHasFrameBase) != 0; }
  void set_frame_base(std::uint64_t base, std::uint32_t count) noexcept {
    frame_base = base;
    frame_count = count;
    flags |= kHasFrameBase;
  }

  friend bool operator==(const IndexRecord&, const IndexRecord&) = default;
};

/// Serialize an index to its on-disk image (little-endian, magic-prefixed).
/// Writes the v2 format ("PLFSIDX2"), which adds a per-record CRC32C
/// checksum + flags byte.
std::vector<std::uint8_t> encode_index(const std::vector<IndexRecord>& records);

/// Parse an on-disk index image.  Accepts both v2 ("PLFSIDX2") and legacy
/// v1 ("PLFSIDX1") images; v1 records decode with no checksum (readers then
/// skip verification for those extents).
Result<std::vector<IndexRecord>> decode_index(std::span<const std::uint8_t> image);

/// Live-stream publication state of a container ("stream.plfs", next to the
/// index on backend 0, replaced atomically on every chunk flush).
///
/// The *sealed-frame watermark* `sealed_frames` is the publication point:
/// global frames [floor_frames, sealed_frames) are durable on every tag and
/// safe to serve; anything at or beyond the watermark is the open tail --
/// possibly mid-flush, possibly missing on some tags -- and must stay
/// invisible to readers.  The watermark only moves forward (monotone), the
/// floor only rises (windowed retention dropping the oldest chunks), and
/// `sealed` flips to true exactly once when the stream finishes.  Containers
/// written by batch ingest have no stream state at all; readers then treat
/// every indexed extent as sealed (the pre-streaming behavior, bit for bit).
struct StreamState {
  bool sealed = false;
  std::uint64_t sealed_frames = 0;   // watermark: frames below this are readable
  std::uint64_t sealed_chunks = 0;   // chunks fully published
  std::uint64_t floor_frames = 0;    // retention floor: frames below this are gone
  std::uint64_t retention_drops = 0; // chunks dropped by windowed retention

  friend bool operator==(const StreamState&, const StreamState&) = default;
};

/// Serialize stream state ("ADASTRM1" magic, little-endian fields, trailing
/// CRC32C over everything before it -- a torn or bit-flipped state file is
/// detected, never trusted).
std::vector<std::uint8_t> encode_stream_state(const StreamState& state);

/// Parse an on-disk stream-state image; kCorruptData on bad magic, short or
/// oversized image, or CRC mismatch.
Result<StreamState> decode_stream_state(std::span<const std::uint8_t> image);

/// Logical file size implied by an index (max extent end).
std::uint64_t logical_size(const std::vector<IndexRecord>& records);

/// True if extents tile [0, logical_size) exactly once (no holes/overlap).
bool is_complete(const std::vector<IndexRecord>& records);

}  // namespace ada::plfs
