#include "plfs/container.hpp"

#include <algorithm>
#include <cstring>

#include "common/binary_io.hpp"

namespace ada::plfs {

namespace {
constexpr std::uint8_t kIndexMagicV1[8] = {'P', 'L', 'F', 'S', 'I', 'D', 'X', '1'};
constexpr std::uint8_t kIndexMagicV2[8] = {'P', 'L', 'F', 'S', 'I', 'D', 'X', '2'};
}

std::vector<std::uint8_t> encode_index(const std::vector<IndexRecord>& records) {
  ByteWriter w;
  w.put_bytes(kIndexMagicV2);
  w.put_u32_le(static_cast<std::uint32_t>(records.size()));
  for (const IndexRecord& r : records) {
    w.put_u64_le(r.logical_offset);
    w.put_u64_le(r.length);
    w.put_u32_le(r.backend);
    w.put_string_le(r.label);
    w.put_string_le(r.dropping);
    w.put_u64_le(r.physical_offset);
    w.put_u32_le(r.crc32c);
    w.put_u8(r.flags);
    if (r.has_frame_table()) {
      w.put_u32_le(static_cast<std::uint32_t>(r.frame_offsets.size()));
      for (const std::uint64_t off : r.frame_offsets) w.put_u64_le(off);
    }
  }
  return w.take();
}

Result<std::vector<IndexRecord>> decode_index(std::span<const std::uint8_t> image) {
  bool v2 = false;
  if (image.size() >= 12 && std::memcmp(image.data(), kIndexMagicV2, 8) == 0) {
    v2 = true;
  } else if (image.size() < 12 || std::memcmp(image.data(), kIndexMagicV1, 8) != 0) {
    return corrupt_data("bad plfs index magic");
  }
  ByteReader r(image.subspan(8));
  ADA_ASSIGN_OR_RETURN(const std::uint32_t count, r.get_u32_le());
  std::vector<IndexRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    IndexRecord record;
    ADA_ASSIGN_OR_RETURN(record.logical_offset, r.get_u64_le());
    ADA_ASSIGN_OR_RETURN(record.length, r.get_u64_le());
    ADA_ASSIGN_OR_RETURN(record.backend, r.get_u32_le());
    ADA_ASSIGN_OR_RETURN(record.label, r.get_string_le());
    ADA_ASSIGN_OR_RETURN(record.dropping, r.get_string_le());
    ADA_ASSIGN_OR_RETURN(record.physical_offset, r.get_u64_le());
    if (v2) {
      ADA_ASSIGN_OR_RETURN(record.crc32c, r.get_u32_le());
      ADA_ASSIGN_OR_RETURN(record.flags, r.get_u8());
      if (record.has_frame_table()) {
        ADA_ASSIGN_OR_RETURN(const std::uint32_t frames, r.get_u32_le());
        // Bound the allocation by the bytes actually present: a lying count
        // must fail cheaply, not reserve gigabytes.
        if (frames > r.remaining() / 8) {
          return corrupt_data("frame table count exceeds index size");
        }
        record.frame_offsets.reserve(frames);
        for (std::uint32_t f = 0; f < frames; ++f) {
          std::uint64_t off = 0;
          ADA_ASSIGN_OR_RETURN(off, r.get_u64_le());
          record.frame_offsets.push_back(off);
        }
      }
    }
    records.push_back(std::move(record));
  }
  if (!r.at_end()) return corrupt_data("trailing bytes after plfs index records");
  return records;
}

std::uint64_t logical_size(const std::vector<IndexRecord>& records) {
  std::uint64_t end = 0;
  for (const IndexRecord& r : records) end = std::max(end, r.logical_offset + r.length);
  return end;
}

bool is_complete(const std::vector<IndexRecord>& records) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
  extents.reserve(records.size());
  for (const IndexRecord& r : records) {
    if (r.length > 0) extents.emplace_back(r.logical_offset, r.logical_offset + r.length);
  }
  std::sort(extents.begin(), extents.end());
  std::uint64_t cursor = 0;
  for (const auto& [begin, end] : extents) {
    if (begin != cursor) return false;  // hole or overlap
    cursor = end;
  }
  return true;
}

}  // namespace ada::plfs
