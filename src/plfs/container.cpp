#include "plfs/container.hpp"

#include <algorithm>
#include <cstring>

#include "common/binary_io.hpp"
#include "common/crc32c.hpp"

namespace ada::plfs {

namespace {
constexpr std::uint8_t kIndexMagicV1[8] = {'P', 'L', 'F', 'S', 'I', 'D', 'X', '1'};
constexpr std::uint8_t kIndexMagicV2[8] = {'P', 'L', 'F', 'S', 'I', 'D', 'X', '2'};
constexpr std::uint8_t kStreamMagic[8] = {'A', 'D', 'A', 'S', 'T', 'R', 'M', '1'};
}

std::vector<std::uint8_t> encode_index(const std::vector<IndexRecord>& records) {
  ByteWriter w;
  w.put_bytes(kIndexMagicV2);
  w.put_u32_le(static_cast<std::uint32_t>(records.size()));
  for (const IndexRecord& r : records) {
    w.put_u64_le(r.logical_offset);
    w.put_u64_le(r.length);
    w.put_u32_le(r.backend);
    w.put_string_le(r.label);
    w.put_string_le(r.dropping);
    w.put_u64_le(r.physical_offset);
    w.put_u32_le(r.crc32c);
    w.put_u8(r.flags);
    if (r.has_frame_table()) {
      w.put_u32_le(static_cast<std::uint32_t>(r.frame_offsets.size()));
      for (const std::uint64_t off : r.frame_offsets) w.put_u64_le(off);
    }
    if (r.has_frame_base()) {
      w.put_u64_le(r.frame_base);
      w.put_u32_le(r.frame_count);
    }
  }
  return w.take();
}

Result<std::vector<IndexRecord>> decode_index(std::span<const std::uint8_t> image) {
  bool v2 = false;
  if (image.size() >= 12 && std::memcmp(image.data(), kIndexMagicV2, 8) == 0) {
    v2 = true;
  } else if (image.size() < 12 || std::memcmp(image.data(), kIndexMagicV1, 8) != 0) {
    return corrupt_data("bad plfs index magic");
  }
  ByteReader r(image.subspan(8));
  ADA_ASSIGN_OR_RETURN(const std::uint32_t count, r.get_u32_le());
  std::vector<IndexRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    IndexRecord record;
    ADA_ASSIGN_OR_RETURN(record.logical_offset, r.get_u64_le());
    ADA_ASSIGN_OR_RETURN(record.length, r.get_u64_le());
    ADA_ASSIGN_OR_RETURN(record.backend, r.get_u32_le());
    ADA_ASSIGN_OR_RETURN(record.label, r.get_string_le());
    ADA_ASSIGN_OR_RETURN(record.dropping, r.get_string_le());
    ADA_ASSIGN_OR_RETURN(record.physical_offset, r.get_u64_le());
    if (v2) {
      ADA_ASSIGN_OR_RETURN(record.crc32c, r.get_u32_le());
      ADA_ASSIGN_OR_RETURN(record.flags, r.get_u8());
      if (record.has_frame_table()) {
        ADA_ASSIGN_OR_RETURN(const std::uint32_t frames, r.get_u32_le());
        // Bound the allocation by the bytes actually present: a lying count
        // must fail cheaply, not reserve gigabytes.
        if (frames > r.remaining() / 8) {
          return corrupt_data("frame table count exceeds index size");
        }
        record.frame_offsets.reserve(frames);
        for (std::uint32_t f = 0; f < frames; ++f) {
          std::uint64_t off = 0;
          ADA_ASSIGN_OR_RETURN(off, r.get_u64_le());
          record.frame_offsets.push_back(off);
        }
      }
      if (record.has_frame_base()) {
        ADA_ASSIGN_OR_RETURN(record.frame_base, r.get_u64_le());
        ADA_ASSIGN_OR_RETURN(record.frame_count, r.get_u32_le());
      }
    }
    records.push_back(std::move(record));
  }
  if (!r.at_end()) return corrupt_data("trailing bytes after plfs index records");
  return records;
}

std::vector<std::uint8_t> encode_stream_state(const StreamState& state) {
  ByteWriter w;
  w.put_bytes(kStreamMagic);
  w.put_u8(state.sealed ? 1 : 0);
  w.put_u64_le(state.sealed_frames);
  w.put_u64_le(state.sealed_chunks);
  w.put_u64_le(state.floor_frames);
  w.put_u64_le(state.retention_drops);
  std::vector<std::uint8_t> image = w.take();
  const std::uint32_t crc = crc32c(image);
  ByteWriter tail;
  tail.put_u32_le(crc);
  const std::vector<std::uint8_t> tail_bytes = tail.take();
  image.insert(image.end(), tail_bytes.begin(), tail_bytes.end());
  return image;
}

Result<StreamState> decode_stream_state(std::span<const std::uint8_t> image) {
  // magic(8) + sealed(1) + 4 x u64(32) + crc(4)
  constexpr std::size_t kStateBytes = 8 + 1 + 4 * 8 + 4;
  if (image.size() != kStateBytes) return corrupt_data("bad stream state size");
  if (std::memcmp(image.data(), kStreamMagic, 8) != 0) {
    return corrupt_data("bad stream state magic");
  }
  ByteReader r(image.subspan(8, kStateBytes - 8 - 4));
  StreamState state;
  std::uint8_t sealed = 0;
  ADA_ASSIGN_OR_RETURN(sealed, r.get_u8());
  if (sealed > 1) return corrupt_data("bad stream state sealed flag");
  state.sealed = sealed != 0;
  ADA_ASSIGN_OR_RETURN(state.sealed_frames, r.get_u64_le());
  ADA_ASSIGN_OR_RETURN(state.sealed_chunks, r.get_u64_le());
  ADA_ASSIGN_OR_RETURN(state.floor_frames, r.get_u64_le());
  ADA_ASSIGN_OR_RETURN(state.retention_drops, r.get_u64_le());
  ByteReader crc_r(image.subspan(kStateBytes - 4));
  ADA_ASSIGN_OR_RETURN(const std::uint32_t stored_crc, crc_r.get_u32_le());
  if (stored_crc != crc32c(image.data(), kStateBytes - 4)) {
    return corrupt_data("stream state crc mismatch");
  }
  if (state.floor_frames > state.sealed_frames) {
    return corrupt_data("stream state floor above watermark");
  }
  return state;
}

std::uint64_t logical_size(const std::vector<IndexRecord>& records) {
  std::uint64_t end = 0;
  for (const IndexRecord& r : records) end = std::max(end, r.logical_offset + r.length);
  return end;
}

bool is_complete(const std::vector<IndexRecord>& records) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
  extents.reserve(records.size());
  for (const IndexRecord& r : records) {
    if (r.length > 0) extents.emplace_back(r.logical_offset, r.logical_offset + r.length);
  }
  std::sort(extents.begin(), extents.end());
  std::uint64_t cursor = 0;
  for (const auto& [begin, end] : extents) {
    if (begin != cursor) return false;  // hole or overlap
    cursor = end;
  }
  return true;
}

}  // namespace ada::plfs
