#include "plfs/fsck.hpp"

#include <algorithm>
#include <filesystem>
#include <set>

#include "common/binary_io.hpp"
#include "common/crc32c.hpp"

namespace ada::plfs {

Result<VerifyReport> verify_container(const PlfsMount& mount, const std::string& logical_name) {
  VerifyReport report;
  ADA_ASSIGN_OR_RETURN(const auto records, mount.read_index(logical_name));

  // Referenced droppings, per backend.
  std::vector<std::set<std::string>> referenced(mount.backend_count());
  std::vector<IndexRecord> intact;
  for (const IndexRecord& record : records) {
    bool broken = record.backend >= mount.backend_count();
    if (!broken && record.has_frame_table()) {
      // Frame tables must address strictly increasing offsets inside the
      // extent; anything else would let a range query read out of bounds.
      std::uint64_t prev = 0;
      bool first = true;
      for (const std::uint64_t off : record.frame_offsets) {
        if (off >= record.length || (!first && off <= prev)) {
          broken = true;
          break;
        }
        prev = off;
        first = false;
      }
    }
    if (!broken) {
      referenced[record.backend].insert(record.dropping);
      const std::string path =
          mount.dropping_host_path(record.backend, logical_name, record.dropping);
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      broken = ec || size < record.physical_offset + record.length;
    }
    if (broken) {
      report.broken_records.push_back(record);
      continue;
    }
    // Full-length dropping: verify the extent's stored checksum (v1 records
    // carry none and are treated as intact).
    bool checksum_bad = false;
    if (record.has_checksum()) {
      const std::string path =
          mount.dropping_host_path(record.backend, logical_name, record.dropping);
      ADA_ASSIGN_OR_RETURN(const auto bytes, read_file(path));
      const std::uint32_t actual =
          crc32c(bytes.data() + record.physical_offset, record.length);
      checksum_bad = actual != record.crc32c;
    }
    if (checksum_bad) {
      report.checksum_bad_records.push_back(record);
    } else {
      intact.push_back(record);
    }
  }

  for (std::uint32_t b = 0; b < mount.backend_count(); ++b) {
    ADA_ASSIGN_OR_RETURN(const auto files, mount.list_dropping_files(b, logical_name));
    for (const std::string& file : files) {
      if (referenced[b].count(file) == 0) report.orphan_droppings.emplace_back(b, file);
    }
  }

  report.extents_complete = report.broken_records.empty() &&
                            report.checksum_bad_records.empty() && is_complete(records);
  return report;
}

Result<RepairActions> repair_container(PlfsMount& mount, const std::string& logical_name) {
  ADA_ASSIGN_OR_RETURN(const VerifyReport report, verify_container(mount, logical_name));
  RepairActions actions;
  if (report.clean()) return actions;

  // Quarantine checksum-bad droppings before touching the index, so a
  // failure mid-repair never leaves a bad extent referenced and unmarked.
  for (const IndexRecord& record : report.checksum_bad_records) {
    const std::string path =
        mount.dropping_host_path(record.backend, logical_name, record.dropping);
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    if (ec) return io_error("cannot quarantine " + record.dropping + ": " + ec.message());
    ++actions.extents_quarantined;
  }

  if (!report.broken_records.empty() || !report.checksum_bad_records.empty()) {
    ADA_ASSIGN_OR_RETURN(auto records, mount.read_index(logical_name));
    const auto is_bad = [&](const IndexRecord& record) {
      return std::find(report.broken_records.begin(), report.broken_records.end(), record) !=
                 report.broken_records.end() ||
             std::find(report.checksum_bad_records.begin(), report.checksum_bad_records.end(),
                       record) != report.checksum_bad_records.end();
    };
    std::erase_if(records, is_bad);
    ADA_RETURN_IF_ERROR(mount.rewrite_index(logical_name, records));
    actions.records_dropped = report.broken_records.size();
  }

  for (const auto& [backend, file] : report.orphan_droppings) {
    std::error_code ec;
    std::filesystem::remove(mount.dropping_host_path(backend, logical_name, file), ec);
    if (ec) return io_error("cannot remove orphan " + file + ": " + ec.message());
    ++actions.orphans_removed;
  }
  return actions;
}

}  // namespace ada::plfs
