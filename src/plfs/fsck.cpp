#include "plfs/fsck.hpp"

#include <algorithm>
#include <filesystem>
#include <set>

#include "common/binary_io.hpp"
#include "common/crc32c.hpp"

namespace ada::plfs {

Result<VerifyReport> verify_container(const PlfsMount& mount, const std::string& logical_name) {
  VerifyReport report;
  ADA_ASSIGN_OR_RETURN(const auto records, mount.read_index(logical_name));

  // Live-stream state: extents above the sealed watermark are the open tail
  // -- possibly mid-write when the stream died, so they are classified here
  // and exempted from the broken/checksum checks below (a short or torn
  // tail dropping is expected, not corruption).
  std::optional<StreamState> state;
  {
    auto state_result = mount.read_stream_state(logical_name);
    if (!state_result.is_ok()) {
      report.stream_state_corrupt = true;
    } else {
      state = state_result.value();
      report.stream_open = state.has_value() && !state->sealed;
    }
  }
  const auto is_open_tail = [&](const IndexRecord& r) {
    return state.has_value() && r.has_frame_base() &&
           r.frame_base + r.frame_count > state->sealed_frames;
  };

  // Referenced droppings, per backend.
  std::vector<std::set<std::string>> referenced(mount.backend_count());
  std::vector<IndexRecord> intact;
  for (const IndexRecord& record : records) {
    if (is_open_tail(record)) {
      report.open_tail_records.push_back(record);
      if (record.backend < mount.backend_count()) {
        referenced[record.backend].insert(record.dropping);  // tail, not orphan
      }
      continue;
    }
    bool broken = record.backend >= mount.backend_count();
    if (!broken && record.has_frame_table()) {
      // Frame tables must address strictly increasing offsets inside the
      // extent; anything else would let a range query read out of bounds.
      std::uint64_t prev = 0;
      bool first = true;
      for (const std::uint64_t off : record.frame_offsets) {
        if (off >= record.length || (!first && off <= prev)) {
          broken = true;
          break;
        }
        prev = off;
        first = false;
      }
    }
    if (!broken) {
      referenced[record.backend].insert(record.dropping);
      const std::string path =
          mount.dropping_host_path(record.backend, logical_name, record.dropping);
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      broken = ec || size < record.physical_offset + record.length;
    }
    if (broken) {
      report.broken_records.push_back(record);
      continue;
    }
    // Full-length dropping: verify the extent's stored checksum (v1 records
    // carry none and are treated as intact).
    bool checksum_bad = false;
    if (record.has_checksum()) {
      const std::string path =
          mount.dropping_host_path(record.backend, logical_name, record.dropping);
      ADA_ASSIGN_OR_RETURN(const auto bytes, read_file(path));
      const std::uint32_t actual =
          crc32c(bytes.data() + record.physical_offset, record.length);
      checksum_bad = actual != record.crc32c;
    }
    if (checksum_bad) {
      report.checksum_bad_records.push_back(record);
    } else {
      intact.push_back(record);
    }
  }

  for (std::uint32_t b = 0; b < mount.backend_count(); ++b) {
    ADA_ASSIGN_OR_RETURN(const auto files, mount.list_dropping_files(b, logical_name));
    for (const std::string& file : files) {
      if (referenced[b].count(file) == 0) report.orphan_droppings.emplace_back(b, file);
    }
  }

  report.extents_complete = report.broken_records.empty() &&
                            report.checksum_bad_records.empty() && is_complete(records);
  return report;
}

Result<RepairActions> repair_container(PlfsMount& mount, const std::string& logical_name) {
  ADA_ASSIGN_OR_RETURN(const VerifyReport report, verify_container(mount, logical_name));
  RepairActions actions;
  // clean() tolerates an open stream (a live producer is not damage), but
  // repair is the operator declaring the producer dead: an open stream must
  // still be sealed even when nothing else needs fixing.
  if (report.clean() && !report.stream_open) return actions;

  // Quarantine checksum-bad droppings before touching the index, so a
  // failure mid-repair never leaves a bad extent referenced and unmarked.
  for (const IndexRecord& record : report.checksum_bad_records) {
    const std::string path =
        mount.dropping_host_path(record.backend, logical_name, record.dropping);
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    if (ec) return io_error("cannot quarantine " + record.dropping + ": " + ec.message());
    ++actions.extents_quarantined;
  }

  if (!report.broken_records.empty() || !report.checksum_bad_records.empty()) {
    ADA_ASSIGN_OR_RETURN(auto records, mount.read_index(logical_name));
    const auto is_bad = [&](const IndexRecord& record) {
      return std::find(report.broken_records.begin(), report.broken_records.end(), record) !=
                 report.broken_records.end() ||
             std::find(report.checksum_bad_records.begin(), report.checksum_bad_records.end(),
                       record) != report.checksum_bad_records.end();
    };
    std::erase_if(records, is_bad);
    ADA_RETURN_IF_ERROR(mount.rewrite_index(logical_name, records));
    actions.records_dropped = report.broken_records.size();
  }

  for (const auto& [backend, file] : report.orphan_droppings) {
    std::error_code ec;
    std::filesystem::remove(mount.dropping_host_path(backend, logical_name, file), ec);
    if (ec) return io_error("cannot remove orphan " + file + ": " + ec.message());
    ++actions.orphans_removed;
  }

  // Interrupted stream: quarantine the open tail and seal at the watermark.
  // The sealed prefix below it is untouched and stays readable.  An open
  // stream with NO tail (the producer died exactly between flushes) is
  // sealed too -- invoking repair declares the producer dead, and a stream
  // nobody will ever finish must not keep followers polling forever.
  if (!report.open_tail_records.empty() || report.stream_state_corrupt || report.stream_open) {
    ADA_ASSIGN_OR_RETURN(auto records, mount.read_index(logical_name));
    StreamState sealed_state;
    if (report.stream_state_corrupt) {
      // Reconstruct conservatively from the surviving index: each tag's
      // streamed extents cover [begin, end); the largest prefix durable on
      // EVERY tag ends at the minimum end, and nothing exists below the
      // maximum begin (retention may have dropped different amounts).
      std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> span;
      for (const IndexRecord& r : records) {
        if (!r.has_frame_base()) continue;
        const auto [it, fresh] =
            span.try_emplace(r.label, r.frame_base, r.frame_base + r.frame_count);
        if (!fresh) {
          it->second.first = std::min(it->second.first, r.frame_base);
          it->second.second = std::max(it->second.second, r.frame_base + r.frame_count);
        }
      }
      bool first = true;
      for (const auto& [label, covered] : span) {
        sealed_state.floor_frames =
            first ? covered.first : std::max(sealed_state.floor_frames, covered.first);
        sealed_state.sealed_frames =
            first ? covered.second : std::min(sealed_state.sealed_frames, covered.second);
        first = false;
      }
      sealed_state.floor_frames = std::min(sealed_state.floor_frames, sealed_state.sealed_frames);
    } else {
      ADA_ASSIGN_OR_RETURN(const auto state, mount.read_stream_state(logical_name));
      if (state.has_value()) sealed_state = *state;
    }
    // Everything above the (possibly reconstructed) watermark is tail: set
    // the droppings aside and drop the records.
    std::vector<IndexRecord> keep;
    keep.reserve(records.size());
    for (IndexRecord& r : records) {
      if (r.has_frame_base() && r.frame_base + r.frame_count > sealed_state.sealed_frames) {
        if (r.backend < mount.backend_count()) {
          const std::string path =
              mount.dropping_host_path(r.backend, logical_name, r.dropping);
          std::error_code ec;
          std::filesystem::rename(path, path + ".quarantined", ec);
          // A missing tail dropping just means the crash came even earlier.
        }
        ++actions.tail_records_dropped;
      } else {
        keep.push_back(std::move(r));
      }
    }
    if (actions.tail_records_dropped != 0) {
      ADA_RETURN_IF_ERROR(mount.rewrite_index(logical_name, keep));
    }
    sealed_state.sealed = true;
    ADA_RETURN_IF_ERROR(mount.write_stream_state(logical_name, sealed_state));
  }
  return actions;
}

}  // namespace ada::plfs
