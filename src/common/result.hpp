// Result<T> / Status: value-or-error return types used across the library.
//
// The library does not throw for expected failure modes (missing file,
// malformed record, short read); those travel through Result<T>.  Exceptions
// remain reserved for programming errors (via ADA_CHECK -> abort) and
// allocation failure.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/check.hpp"

namespace ada {

/// Broad error categories; the message string carries the specifics.
enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruptData,
  kIoError,
  kUnsupported,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kDeadlineExceeded,
  kOverloaded,
  kInternal,
};

/// Human-readable name of an ErrorCode ("corrupt_data", ...).
constexpr const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kCorruptData: return "corrupt_data";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// An error: category + context message.
class Error {
 public:
  Error(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "corrupt_data: bad magic 0x1234" -- for logs and test failure output.
  std::string to_string() const { return std::string(ada::to_string(code_)) + ": " + message_; }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Success-or-error for operations with no payload.
class Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message) : error_(Error(code, std::move(message))) {}
  Status(Error error) : error_(std::move(error)) {}  // NOLINT: implicit by design

  static Status ok() { return Status(); }

  bool is_ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// Precondition: !is_ok().
  const Error& error() const {
    ADA_CHECK(error_.has_value());
    return *error_;
  }

  std::string to_string() const { return is_ok() ? "ok" : error_->to_string(); }

 private:
  std::optional<Error> error_;
};

/// Value-or-error. Accessors check: calling value() on an error aborts with
/// the error message, which keeps call sites terse in tests and examples.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}       // NOLINT: implicit by design
  Result(Error error) : storage_(std::move(error)) {}   // NOLINT: implicit by design
  Result(ErrorCode code, std::string message) : storage_(Error(code, std::move(message))) {}

  bool is_ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return is_ok(); }

  const T& value() const& {
    if (!is_ok()) detail::check_failed(std::get<Error>(storage_).to_string().c_str(), __FILE__, __LINE__);
    return std::get<T>(storage_);
  }
  T& value() & {
    if (!is_ok()) detail::check_failed(std::get<Error>(storage_).to_string().c_str(), __FILE__, __LINE__);
    return std::get<T>(storage_);
  }
  T&& value() && {
    if (!is_ok()) detail::check_failed(std::get<Error>(storage_).to_string().c_str(), __FILE__, __LINE__);
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    ADA_CHECK(!is_ok());
    return std::get<Error>(storage_);
  }

  /// Status view of this result (drops the value).
  Status status() const { return is_ok() ? Status::ok() : Status(std::get<Error>(storage_)); }

  /// value() if ok, otherwise `fallback`.
  T value_or(T fallback) const& { return is_ok() ? std::get<T>(storage_) : std::move(fallback); }

 private:
  std::variant<T, Error> storage_;
};

// Convenience factories mirroring absl-style helpers.
inline Error invalid_argument(std::string m) { return Error(ErrorCode::kInvalidArgument, std::move(m)); }
inline Error not_found(std::string m) { return Error(ErrorCode::kNotFound, std::move(m)); }
inline Error already_exists(std::string m) { return Error(ErrorCode::kAlreadyExists, std::move(m)); }
inline Error out_of_range(std::string m) { return Error(ErrorCode::kOutOfRange, std::move(m)); }
inline Error corrupt_data(std::string m) { return Error(ErrorCode::kCorruptData, std::move(m)); }
inline Error io_error(std::string m) { return Error(ErrorCode::kIoError, std::move(m)); }
inline Error unsupported(std::string m) { return Error(ErrorCode::kUnsupported, std::move(m)); }
inline Error resource_exhausted(std::string m) { return Error(ErrorCode::kResourceExhausted, std::move(m)); }
inline Error failed_precondition(std::string m) { return Error(ErrorCode::kFailedPrecondition, std::move(m)); }
inline Error unavailable(std::string m) { return Error(ErrorCode::kUnavailable, std::move(m)); }
inline Error deadline_exceeded(std::string m) { return Error(ErrorCode::kDeadlineExceeded, std::move(m)); }
inline Error overloaded(std::string m) { return Error(ErrorCode::kOverloaded, std::move(m)); }
inline Error internal_error(std::string m) { return Error(ErrorCode::kInternal, std::move(m)); }

/// Propagate an error from an expression producing Status.
#define ADA_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::ada::Status ada_status__ = (expr);          \
    if (!ada_status__.is_ok()) return ada_status__.error(); \
  } while (false)

#define ADA_CONCAT_INNER(a, b) a##b
#define ADA_CONCAT(a, b) ADA_CONCAT_INNER(a, b)

/// Evaluate `rexpr` (a Result<T>), return its error on failure, otherwise
/// bind the value to `lhs`.
#define ADA_ASSIGN_OR_RETURN(lhs, rexpr) \
  ADA_ASSIGN_OR_RETURN_IMPL(ADA_CONCAT(ada_result__, __LINE__), lhs, rexpr)

#define ADA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.is_ok()) return tmp.error();            \
  lhs = std::move(tmp).value()

}  // namespace ada
