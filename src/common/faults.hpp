// Deterministic fault-injection plane for the storage/PVFS/PLFS stack.
//
// Failure is a first-class, testable input: every I/O layer exposes named
// injection points ("plfs.write_dropping", "pvfs.stripe_read", ...) and asks
// the global Injector what should happen at each hit.  Tests and CLIs arm
// *schedules* -- deterministic rules (fail the Nth hit, fail with seeded
// probability, a server-down window, a latency spike, a torn write, a bit
// flip) -- so a failing run reproduces exactly from its seed.
//
// The disabled path mirrors the tracing/metrics pattern (obs/events.hpp):
// with nothing armed, an injection point is ONE relaxed atomic load and
// nothing else -- no lock, no map lookup, no allocation.  The chaos and
// robustness suites (tests/fault_injection_test.cpp,
// tests/chaos_pipeline_test.cpp) and docs/robustness.md document the
// schedule grammar and site inventory.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace ada::fault {

/// True iff at least one site is armed.  One relaxed load; the hot-path
/// guard every injection point checks first.
bool enabled() noexcept;

/// What an armed schedule decided for one hit of an injection point.
struct Outcome {
  enum class Kind : std::uint8_t {
    kNone,     // proceed normally
    kError,    // the operation fails with `error`
    kTorn,     // write only `fraction` of the bytes, then REPORT SUCCESS
    kCorrupt,  // flip one byte at relative position `fraction`, report success
    kDelay,    // add `delay_seconds` of latency, then proceed
  };

  Kind kind = Kind::kNone;
  ErrorCode error = ErrorCode::kIoError;
  double delay_seconds = 0.0;  // kDelay
  double fraction = 0.5;       // kTorn: surviving prefix; kCorrupt: flip position

  bool fired() const noexcept { return kind != Kind::kNone; }

  /// Error for kError outcomes ("injected fault at <site>").
  Error to_error(std::string_view site) const;
};

/// When a schedule triggers, and with what effect.  Hit numbering is
/// 1-based and per-site; the per-site Rng (probability trigger, jitter) is
/// seeded at arm time, so the fault sequence is a pure function of
/// (schedule, seed, hit count).
struct Schedule {
  enum class Trigger : std::uint8_t {
    kNth,          // exactly hit #nth
    kEveryNth,     // hits nth, 2*nth, ...
    kProbability,  // each hit independently with `probability`
    kWindow,       // every hit in [window_begin, window_end] (server down)
    kAlways,       // every hit
  };

  Trigger trigger = Trigger::kAlways;
  Outcome::Kind effect = Outcome::Kind::kError;
  ErrorCode error = ErrorCode::kIoError;
  std::uint64_t nth = 1;
  double probability = 1.0;
  std::uint64_t window_begin = 1;
  std::uint64_t window_end = UINT64_MAX;
  std::uint64_t seed = 0x5eed;
  double delay_seconds = 0.0;
  double fraction = 0.5;
  std::uint64_t max_fires = 0;  // 0 = unlimited

  // Factories for the common shapes (schedule grammar in docs/robustness.md).
  static Schedule fail_nth(std::uint64_t n);
  static Schedule fail_every(std::uint64_t n);
  static Schedule fail_probability(double p, std::uint64_t seed);
  static Schedule down_window(std::uint64_t first_hit, std::uint64_t last_hit);
  static Schedule torn_write(double surviving_fraction, std::uint64_t n = 1);
  static Schedule corrupt_read(std::uint64_t n = 1, double position = 0.5);
  static Schedule latency_spike(double seconds, double p = 1.0,
                                std::uint64_t seed = 0x5eed);
};

/// Parse one schedule spec:
///   nth:<k>            error on hit k (once)
///   every:<k>          error on every k-th hit
///   prob:<p>[:<seed>]  error each hit with probability p
///   down:<a>:<b>       error on every hit in [a, b]
///   torn:<f>[:<k>]     torn write on hit k: fraction f survives, reported OK
///   corrupt[:<k>]      one-byte flip on hit k, reported OK
///   delay:<s>[:<p>]    latency spike of s seconds, each hit with prob p
Result<Schedule> parse_schedule(std::string_view spec);

/// The process-wide injection-point registry.
class Injector {
 public:
  static Injector& global();

  /// Arm `schedule` at `site`, replacing any previous arm (hit count resets).
  void arm(const std::string& site, const Schedule& schedule);

  /// Arm from "site=spec[,site=spec...]" (the --faults CLI grammar).
  Status arm_spec(std::string_view spec);

  void disarm(const std::string& site);
  void disarm_all();

  /// Evaluate one hit of `site`.  Armed sites advance their hit counter and
  /// apply their schedule; unarmed sites return kNone.  Counts
  /// `fault.injected` / `fault.injected.<site>` obs counters on fire.
  Outcome hit(std::string_view site);

  /// Hits recorded at `site` since it was armed (0 if unarmed).
  std::uint64_t hits(const std::string& site) const;
  /// Faults fired at `site` since it was armed (0 if unarmed).
  std::uint64_t fired(const std::string& site) const;
  /// Times the slow path (any armed-site evaluation) ran; stays 0 while
  /// disarmed -- how the tests pin down the zero-overhead disabled path.
  std::uint64_t evaluations() const noexcept;

  std::vector<std::string> armed_sites() const;

 private:
  struct Arm {
    Schedule schedule;
    Rng rng{0};
    std::uint64_t hit_count = 0;
    std::uint64_t fire_count = 0;
  };

  Injector() = default;
  void update_enabled_locked();

  mutable std::mutex mutex_;
  std::map<std::string, Arm, std::less<>> arms_;
  std::uint64_t evaluations_ = 0;
};

/// Hot-path helper: one relaxed load when nothing is armed.
inline Outcome hit(std::string_view site) {
  if (!enabled()) return Outcome{};
  return Injector::global().hit(site);
}

/// For sites whose only meaningful outcome is failure: ok or the injected
/// error (torn/corrupt/delay outcomes are reported as plain errors too, so
/// error-only call sites never silently drop an armed effect).
inline Status check(std::string_view site) {
  if (!enabled()) return Status::ok();
  const Outcome outcome = Injector::global().hit(site);
  if (!outcome.fired() || outcome.kind == Outcome::Kind::kDelay) return Status::ok();
  return outcome.to_error(site);
}

/// RAII arm/disarm of one site (tests).
class ScopedFault {
 public:
  ScopedFault(std::string site, const Schedule& schedule) : site_(std::move(site)) {
    Injector::global().arm(site_, schedule);
  }
  ~ScopedFault() { Injector::global().disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

}  // namespace ada::fault
