// Minimal recursive-descent JSON reader shared by the offline tooling.
//
// Grown out of the Chrome-trace importer (obs/trace_export.cpp) and promoted
// here once the telemetry plane needed the same parser for JSONL time-series
// lines and BENCH_*.json documents (tools/ada-stats.cpp).  It parses the
// strict subset this repository emits: objects, arrays, strings with the
// standard escapes (BMP \u only, no surrogate pairs), doubles, booleans and
// null.  Object key order is preserved -- the emitters sort their keys, so
// round-trips stay deterministic.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace ada::json {

/// One parsed JSON value.  A tagged struct, not a variant: the offline tools
/// that consume this are cold paths and the flat shape keeps call sites
/// simple (`value.find("ts")->number`).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member named `key`, or null.  Linear scan: documents here carry a
  /// handful of keys.
  const Value* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
Result<Value> parse(std::string_view text);

}  // namespace ada::json
