// Bounded retry with exponential backoff + deterministic jitter.
//
// Transient storage errors (kIoError, kUnavailable, kResourceExhausted) are
// retried up to max_attempts with backoff initial * multiplier^(attempt-1),
// jittered by a seeded Rng so sleep sequences are reproducible; every other
// error code is permanent and returns immediately.  An optional per-op
// timeout converts exhaustion-by-time into kDeadlineExceeded.  retry_sync
// drives real (wall-clock) I/O such as the PLFS dropping paths; the PVFS
// client path reimplements the same policy on the simulated clock
// (pvfs/pvfs.cpp) so retries cost sim time, not test time.
//
// Observability: `retry.attempts` counts re-executions (not first tries),
// `retry.exhausted` counts give-ups, and each re-execution opens a "retry"
// trace span so retries show up on request timelines.
#pragma once

#include <string_view>
#include <thread>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/warn.hpp"

namespace ada {

struct RetryPolicy {
  int max_attempts = 4;              // total tries, including the first
  double initial_backoff_s = 0.001;  // before the first retry
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.25;  // each sleep scaled by U[1-j, 1+j]
  double op_timeout_s = 0.0;      // whole-op deadline; 0 = none
  std::uint64_t seed = 0x7e7;     // jitter Rng seed (deterministic sleeps)

  static RetryPolicy none() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }

  /// Backoff before retry number `retry` (1-based), jittered.
  double backoff_for(int retry, Rng& rng) const {
    double backoff = initial_backoff_s;
    for (int i = 1; i < retry; ++i) backoff *= backoff_multiplier;
    if (jitter_fraction > 0.0) {
      backoff *= rng.uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
    }
    return backoff;
  }
};

/// True for error codes worth retrying; everything else is permanent.
constexpr bool is_transient(ErrorCode code) noexcept {
  return code == ErrorCode::kIoError || code == ErrorCode::kUnavailable ||
         code == ErrorCode::kResourceExhausted;
}

/// Run `fn` (returning Status or Result<T>) under `policy`.  `op` names the
/// operation in trace spans and error messages; it must be a string literal
/// (TraceSpan keeps the pointer).
template <typename Fn>
auto retry_sync(const char* op, const RetryPolicy& policy, Fn&& fn)
    -> decltype(fn()) {
  Rng rng(policy.seed);
  const Stopwatch deadline;
  for (int attempt = 1;; ++attempt) {
    auto result = fn();
    if (result.is_ok() || !is_transient(result.error().code())) return result;
    if (attempt >= policy.max_attempts) {
      ADA_OBS_COUNT("retry.exhausted", 1);
      obs::warn(obs::WarnSeverity::kError, "retry",
                std::string(op) + " gave up after " + std::to_string(attempt) +
                    " attempt(s): " + result.error().to_string());
      return result;
    }
    const double backoff = policy.backoff_for(attempt, rng);
    if (policy.op_timeout_s > 0.0 &&
        deadline.elapsed_seconds() + backoff >= policy.op_timeout_s) {
      ADA_OBS_COUNT("retry.exhausted", 1);
      obs::warn(obs::WarnSeverity::kError, "retry",
                std::string(op) + " hit the " + std::to_string(policy.op_timeout_s) +
                    "s op timeout after " + std::to_string(attempt) + " attempt(s)");
      return Error(ErrorCode::kDeadlineExceeded,
                   std::string(op) + " exceeded " + std::to_string(policy.op_timeout_s) +
                       "s after " + std::to_string(attempt) + " attempt(s): " +
                       result.error().to_string());
    }
    ADA_OBS_COUNT("retry.attempts", 1);
    obs::TraceSpan span("retry", op);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

}  // namespace ada
