// Persistent work-stealing thread pool for the ingest hot path.
//
// parallel_run used to spawn fresh std::threads for every batch; at frame
// granularity that tax dominates the work.  ThreadPool keeps one set of
// workers alive for the life of the process (ThreadPool::shared()), gives
// each worker its own deque, and lets idle workers steal from the back of
// their siblings' deques, so uneven frame ranges rebalance without a global
// queue bottleneck.
//
// Submitted tasks capture the submitting thread's TraceContext and adopt it
// on the worker, so spans opened inside a task join the caller's trace
// (exactly the guarantee parallel_run gave).  Exceptions are not used in
// this codebase (Result<> carries failures); tasks communicate through
// their captures.
//
// run_batch() is the bulk interface: it drains a batch of independent tasks
// under a parallelism cap, with the calling thread participating.  A thread
// already running on the pool may call run_batch() again (frame-level
// parallelism nested under file-level parallelism); the caller always drains
// the batch itself when no worker is free, so nesting cannot deadlock.
//
// Observability (all behind the global obs switches, one relaxed load when
// off):  counters pool.tasks / pool.steal / pool.submitted, gauge
// pool.queue_depth, counter pool.busy_ns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace ada {

class ThreadPool {
 public:
  /// `workers` == 0 means hardware concurrency (minimum 1).
  explicit ThreadPool(unsigned workers = 0) {
    unsigned count = workers != 0 ? workers : std::thread::hardware_concurrency();
    if (count == 0) count = 1;
    workers_.reserve(count);
    for (unsigned w = 0; w < count; ++w) workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(count);
    for (unsigned w = 0; w < count; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~ThreadPool() {
    stop_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    sleep_cv_.notify_all();
    for (auto& thread : threads_) thread.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool every ingest path shares.  Created on first use,
  /// joined at process exit.
  static ThreadPool& shared() {
    static ThreadPool pool;
    return pool;
  }

  unsigned worker_count() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Queue one task.  The worker adopts the submitting thread's trace
  /// context, so spans opened inside `fn` join the caller's trace.
  void submit(std::function<void()> fn) {
    Task task;
    task.fn = std::move(fn);
    if (obs::trace_enabled()) task.context = obs::current_context();
    const std::size_t home = round_robin_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    {
      std::lock_guard<std::mutex> lock(workers_[home]->mutex);
      workers_[home]->tasks.push_back(std::move(task));
    }
    const std::size_t depth = pending_.fetch_add(1, std::memory_order_release) + 1;
    ADA_OBS_COUNT("pool.submitted", 1);
    if (obs::enabled()) {
      static obs::Gauge& queue_depth = obs::Registry::global().gauge("pool.queue_depth");
      queue_depth.set(static_cast<double>(depth));
    }
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    sleep_cv_.notify_one();
  }

  /// Run every task, with at most `max_parallelism` tasks of this batch in
  /// flight at once (0 = one per pool worker plus the caller).  Blocks until
  /// all tasks finish; the calling thread participates, so a pool worker may
  /// nest run_batch() without deadlocking.  Tasks run in unspecified order
  /// on unspecified threads.
  void run_batch(std::vector<std::function<void()>> tasks, unsigned max_parallelism = 0) {
    if (tasks.empty()) return;
    unsigned cap = max_parallelism != 0 ? max_parallelism : worker_count() + 1;
    const unsigned drainers =
        static_cast<unsigned>(std::min<std::size_t>(cap, tasks.size()));
    if (drainers <= 1) {
      for (auto& task : tasks) task();
      return;
    }

    auto state = std::make_shared<BatchState>();
    state->tasks = std::move(tasks);
    auto drain = [state] {
      while (true) {
        const std::size_t index = state->next.fetch_add(1, std::memory_order_relaxed);
        if (index >= state->tasks.size()) return;
        state->tasks[index]();
        if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->tasks.size()) {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->cv.notify_all();
        }
      }
    };
    for (unsigned w = 1; w < drainers; ++w) submit(drain);
    drain();  // the calling thread participates
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->tasks.size();
    });
  }

 private:
  struct Task {
    std::function<void()> fn;
    obs::TraceContext context;
  };

  struct Worker {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  /// One batch's shared drain state.  Stray drain jobs that wake after the
  /// batch finished exit through the `next` bound; the shared_ptr keeps the
  /// state alive for them.
  struct BatchState {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };

  /// Pop from the home deque's front, else steal from a sibling's back.
  bool try_take(std::size_t home, Task& out) {
    {
      Worker& own = *workers_[home];
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.tasks.empty()) {
        out = std::move(own.tasks.front());
        own.tasks.pop_front();
        pending_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    for (std::size_t i = 1; i < workers_.size(); ++i) {
      Worker& victim = *workers_[(home + i) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        out = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        pending_.fetch_sub(1, std::memory_order_relaxed);
        ADA_OBS_COUNT("pool.steal", 1);
        return true;
      }
    }
    return false;
  }

  void worker_loop(std::size_t index) {
    while (true) {
      Task task;
      if (try_take(index, task)) {
        ADA_OBS_COUNT("pool.tasks", 1);
        const obs::ScopedTraceContext adopt(task.context);
        if (obs::enabled()) {
          const Stopwatch busy;
          task.fn();
          ADA_OBS_COUNT("pool.busy_ns", busy.elapsed_seconds() * 1e9);
        } else {
          task.fn();
        }
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      sleep_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) != 0;
      });
      if (stop_.load(std::memory_order_acquire) &&
          pending_.load(std::memory_order_acquire) == 0) {
        return;
      }
    }
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> round_robin_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace ada
