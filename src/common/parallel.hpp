// Minimal task parallelism for the ingest path.
//
// ADA's storage-node pre-processing is embarrassingly parallel across
// trajectory files (one .pdb guides multiple .xtc phases, each ingested
// independently).  parallel_run executes a batch of independent tasks over
// a bounded set of worker threads; exceptions are not used in this codebase
// (Result<> carries failures), so tasks communicate through their captures.
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "obs/events.hpp"

namespace ada {

/// Run every task, using up to `threads` workers (0 = hardware concurrency).
/// Blocks until all tasks finish.  Tasks must be independent; they run in
/// unspecified order on unspecified threads.
inline void parallel_run(std::vector<std::function<void()>> tasks, unsigned threads = 0) {
  if (tasks.empty()) return;
  unsigned hw = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(hw, tasks.size()));
  if (workers <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  // Workers adopt the submitting thread's trace context so spans opened
  // inside a task join the caller's trace instead of starting orphan ones.
  obs::TraceContext submit_context;
  if (obs::trace_enabled()) submit_context = obs::current_context();
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    const obs::ScopedTraceContext adopt(submit_context);
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= tasks.size()) return;
      tasks[index]();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (auto& thread : pool) thread.join();
}

}  // namespace ada
