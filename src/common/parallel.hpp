// Minimal task parallelism for the ingest path.
//
// ADA's storage-node pre-processing is embarrassingly parallel across
// trajectory files (one .pdb guides multiple .xtc phases, each ingested
// independently) and, since the frame-parallel pipeline, across the frames
// inside each file.  parallel_run executes a batch of independent tasks on
// the shared persistent work-stealing pool (common/thread_pool.hpp) --
// nothing spawns per-batch threads anymore.  Exceptions are not used in
// this codebase (Result<> carries failures), so tasks communicate through
// their captures.
#pragma once

#include <functional>
#include <vector>

#include "common/thread_pool.hpp"

namespace ada {

/// Run every task, using up to `threads` concurrent workers (0 = one per
/// pool worker plus the caller).  Blocks until all tasks finish.  Tasks must
/// be independent; they run in unspecified order on unspecified threads, and
/// adopt the submitting thread's trace context (spans opened inside a task
/// join the caller's trace).
inline void parallel_run(std::vector<std::function<void()>> tasks, unsigned threads = 0) {
  ThreadPool::shared().run_batch(std::move(tasks), threads);
}

}  // namespace ada
