// CRC32C (Castagnoli) checksums for on-disk extent integrity.
//
// Used by the PLFS container index (plfs/container.hpp) to detect silent
// corruption: every extent's checksum is computed at append time, stored in
// the index record, and verified on every read and by plfs::fsck.  The
// Castagnoli polynomial (0x1EDC6F41, reflected 0x82F63B78) is the iSCSI /
// ext4 / RocksDB choice; this is the byte-at-a-time table variant --
// plenty for extents that are about to hit a disk anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ada {

/// CRC32C of `size` bytes starting at `data`.  Pass a previous crc to
/// continue an incremental computation; 0 starts a fresh one.
std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t crc = 0) noexcept;

inline std::uint32_t crc32c(const std::vector<std::uint8_t>& bytes,
                            std::uint32_t crc = 0) noexcept {
  return crc32c(bytes.data(), bytes.size(), crc);
}

}  // namespace ada
