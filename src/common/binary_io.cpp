#include "common/binary_io.hpp"

#include <cstdio>
#include <memory>

namespace ada {

// --- ByteWriter ----------------------------------------------------------------

void ByteWriter::put_u32_le(std::uint32_t v) {
  const std::uint32_t wire = to_little_endian32(v);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&wire);
  buffer_.insert(buffer_.end(), p, p + 4);
}

void ByteWriter::put_u64_le(std::uint64_t v) {
  const std::uint64_t wire = to_little_endian64(v);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&wire);
  buffer_.insert(buffer_.end(), p, p + 8);
}

void ByteWriter::put_u32_be(std::uint32_t v) {
  const std::uint32_t wire = to_big_endian32(v);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&wire);
  buffer_.insert(buffer_.end(), p, p + 4);
}

void ByteWriter::put_f32_le(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, 4);
  put_u32_le(bits);
}

void ByteWriter::put_f64_le(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  put_u64_le(bits);
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::put_string_le(const std::string& s) {
  put_u32_le(static_cast<std::uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  buffer_.insert(buffer_.end(), p, p + s.size());
}

// --- ByteReader ----------------------------------------------------------------

Status ByteReader::require(std::size_t n) {
  if (remaining() < n) {
    return io_error("short read: need " + std::to_string(n) + " bytes, have " +
                    std::to_string(remaining()));
  }
  return Status::ok();
}

Result<std::uint8_t> ByteReader::get_u8() {
  ADA_RETURN_IF_ERROR(require(1));
  return data_[pos_++];
}

Result<std::uint32_t> ByteReader::get_u32_le() {
  ADA_RETURN_IF_ERROR(require(4));
  std::uint32_t wire = 0;
  std::memcpy(&wire, data_.data() + pos_, 4);
  pos_ += 4;
  return from_little_endian32(wire);
}

Result<std::uint64_t> ByteReader::get_u64_le() {
  ADA_RETURN_IF_ERROR(require(8));
  std::uint64_t wire = 0;
  std::memcpy(&wire, data_.data() + pos_, 8);
  pos_ += 8;
  return from_little_endian64(wire);
}

Result<std::uint32_t> ByteReader::get_u32_be() {
  ADA_RETURN_IF_ERROR(require(4));
  std::uint32_t wire = 0;
  std::memcpy(&wire, data_.data() + pos_, 4);
  pos_ += 4;
  return from_big_endian32(wire);
}

Result<float> ByteReader::get_f32_le() {
  ADA_ASSIGN_OR_RETURN(const std::uint32_t bits, get_u32_le());
  float v = 0;
  std::memcpy(&v, &bits, 4);
  return v;
}

Result<double> ByteReader::get_f64_le() {
  ADA_ASSIGN_OR_RETURN(const std::uint64_t bits, get_u64_le());
  double v = 0;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::vector<std::uint8_t>> ByteReader::get_bytes(std::size_t n) {
  ADA_RETURN_IF_ERROR(require(n));
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<std::string> ByteReader::get_string_le() {
  ADA_ASSIGN_OR_RETURN(const std::uint32_t n, get_u32_le());
  ADA_RETURN_IF_ERROR(require(n));
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

// --- whole-file helpers -----------------------------------------------------------

Result<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return not_found("cannot open " + path);
  if (std::fseek(f.get(), 0, SEEK_END) != 0) return io_error("fseek failed on " + path);
  const long size = std::ftell(f.get());
  if (size < 0) return io_error("ftell failed on " + path);
  if (std::fseek(f.get(), 0, SEEK_SET) != 0) return io_error("fseek failed on " + path);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  if (size > 0 && std::fread(data.data(), 1, data.size(), f.get()) != data.size()) {
    return io_error("short read on " + path);
  }
  return data;
}

Status write_file(const std::string& path, std::span<const std::uint8_t> data) {
  // Close explicitly: stdio buffers writes, so a full disk or failed flush
  // surfaces at fflush/fclose -- swallowing their return values turns a
  // short write into a reported success.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return io_error("cannot create " + path);
  const bool wrote =
      data.empty() || std::fwrite(data.data(), 1, data.size(), f) == data.size();
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote) return io_error("short write on " + path);
  if (!flushed || !closed) return io_error("flush/close failed on " + path);
  return Status::ok();
}

Status write_file_atomic(const std::string& path, std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  ADA_RETURN_IF_ERROR(write_file(tmp, data));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_error("rename " + tmp + " -> " + path + " failed");
  }
  return Status::ok();
}

}  // namespace ada
