#include "common/json.hpp"

#include <cctype>
#include <cstdlib>

namespace ada::json {

namespace {

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  Result<Value> parse() {
    Value value;
    ADA_RETURN_IF_ERROR(parse_value(value));
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON document");
    return value;
  }

 private:
  Status parse_value(Value& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = Value::Kind::kString;
        return parse_string(out.string);
      }
      case 't':
      case 'f': return parse_literal(out, c == 't');
      case 'n':
        if (!consume("null")) return fail("bad literal");
        out.kind = Value::Kind::kNull;
        return Status::ok();
      default: return parse_number(out);
    }
  }

  Status parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::ok();
    }
    while (true) {
      skip_ws();
      std::string key;
      ADA_RETURN_IF_ERROR(parse_string(key));
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':' in object");
      ++pos_;
      Value value;
      ADA_RETURN_IF_ERROR(parse_value(value));
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::ok();
      }
      return fail("expected ',' or '}' in object");
    }
  }

  Status parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::ok();
    }
    while (true) {
      Value value;
      ADA_RETURN_IF_ERROR(parse_value(value));
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::ok();
      }
      return fail("expected ',' or ']' in array");
    }
  }

  Status parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // This repository only escapes control characters this way; map
          // the BMP code point to UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  Status parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return Status::ok();
  }

  Status parse_literal(Value& out, bool value) {
    if (!consume(value ? "true" : "false")) return fail("bad literal");
    out.kind = Value::Kind::kBool;
    out.boolean = value;
    return Status::ok();
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Error fail(const char* what) const {
    return corrupt_data(std::string("JSON: ") + what + " at byte " + std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Reader(text).parse(); }

}  // namespace ada::json
