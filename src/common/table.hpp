// Aligned text tables + CSV emission.
//
// Every bench harness reports its figure/table through one of these so the
// output format is uniform and machine-scrapable (EXPERIMENTS.md is generated
// from the CSV side).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ada {

/// A rectangular table of strings with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return header_.size(); }

  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Column-aligned fixed-width rendering with a rule under the header.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (fields containing comma/quote/newline are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ada
