#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ada {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && is_space(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view path_extension(std::string_view path) {
  const auto slash = path.rfind('/');
  const std::string_view basename =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const auto dot = basename.rfind('.');
  // npos: no extension; 0: a dotfile, whose leading dot is part of the name.
  if (dot == std::string_view::npos || dot == 0) return {};
  return basename.substr(dot);
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

long long parse_int(std::string_view s) {
  s = trim(s);
  long long value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() || value < 0) return -1;
  return value;
}

double parse_double(std::string_view s) {
  s = trim(s);
  // std::from_chars for double is available in libstdc++ 12; use strtod via a
  // bounded copy for pedantic null-termination.
  char buf[64];
  if (s.empty() || s.size() >= sizeof buf) return std::nan("");
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + s.size()) return std::nan("");
  return value;
}

}  // namespace ada
