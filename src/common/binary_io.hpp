// Endian-explicit binary reading/writing over byte buffers and files.
//
// Wire formats in this repository (XTC/XDR: big-endian; RAW trajectory &
// PLFS index records: little-endian) never rely on host byte order or on
// struct layout; every field goes through these helpers.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace ada {

// --- primitive conversions ---------------------------------------------------

inline std::uint32_t byteswap32(std::uint32_t v) noexcept {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

inline std::uint64_t byteswap64(std::uint64_t v) noexcept {
  return (static_cast<std::uint64_t>(byteswap32(static_cast<std::uint32_t>(v))) << 32) |
         byteswap32(static_cast<std::uint32_t>(v >> 32));
}

static_assert(std::endian::native == std::endian::little || std::endian::native == std::endian::big,
              "mixed-endian hosts are unsupported");

inline std::uint32_t to_big_endian32(std::uint32_t v) noexcept {
  return std::endian::native == std::endian::big ? v : byteswap32(v);
}
inline std::uint32_t from_big_endian32(std::uint32_t v) noexcept { return to_big_endian32(v); }
inline std::uint64_t to_little_endian64(std::uint64_t v) noexcept {
  return std::endian::native == std::endian::little ? v : byteswap64(v);
}
inline std::uint64_t from_little_endian64(std::uint64_t v) noexcept { return to_little_endian64(v); }
inline std::uint32_t to_little_endian32(std::uint32_t v) noexcept {
  return std::endian::native == std::endian::little ? v : byteswap32(v);
}
inline std::uint32_t from_little_endian32(std::uint32_t v) noexcept { return to_little_endian32(v); }

// --- growable output buffer ---------------------------------------------------

/// Appends primitives to an owned byte vector.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buffer_.push_back(v); }
  void put_u32_le(std::uint32_t v);
  void put_u64_le(std::uint64_t v);
  void put_u32_be(std::uint32_t v);
  void put_f32_le(float v);
  void put_f64_le(double v);
  void put_bytes(std::span<const std::uint8_t> bytes);
  void put_string_le(const std::string& s);  // u32 length + raw bytes

  std::size_t size() const noexcept { return buffer_.size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

// --- bounded input cursor ------------------------------------------------------

/// Reads primitives from a non-owned byte span with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> get_u8();
  Result<std::uint32_t> get_u32_le();
  Result<std::uint64_t> get_u64_le();
  Result<std::uint32_t> get_u32_be();
  Result<float> get_f32_le();
  Result<double> get_f64_le();
  Result<std::vector<std::uint8_t>> get_bytes(std::size_t n);
  Result<std::string> get_string_le();

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  Status require(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --- whole-file helpers ---------------------------------------------------------

/// Read an entire file into memory.
Result<std::vector<std::uint8_t>> read_file(const std::string& path);

/// Write (create/truncate) an entire file.  Flush/close failures are
/// reported (a buffered short write must not look like success).
Status write_file(const std::string& path, std::span<const std::uint8_t> data);

/// Crash-safe replacement: write to `path + ".tmp"`, then rename over
/// `path`.  Readers see either the old or the new content, never a torn
/// mix -- used for PLFS index rewrites.
Status write_file_atomic(const std::string& path, std::span<const std::uint8_t> data);

}  // namespace ada
