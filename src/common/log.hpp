// Minimal leveled logger.
//
// The default level is kWarn so that tests and benches stay quiet; examples
// raise it to kInfo to narrate the pipeline.  Not thread-safe by design: the
// repository's simulators are single-threaded event loops (see src/sim/).
#pragma once

#include <sstream>
#include <string>

namespace ada {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Optional prefix decorator, appended after the level tag.  The obs layer
/// installs one at static init that adds the active trace id when tracing is
/// enabled, so log lines can be joined with exported timelines.  (A hook
/// keeps the dependency one-way: ada_common must not link ada_obs.)
using LogPrefixHook = void (*)(std::string& prefix);
void set_log_prefix_hook(LogPrefixHook hook);

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

/// Stream-style log statement: ADA_LOG(kInfo) << "ingested " << n << " frames";
#define ADA_LOG(level_name)                                             \
  for (bool ada_log_once__ = ::ada::log_level() <= ::ada::LogLevel::level_name; \
       ada_log_once__; ada_log_once__ = false)                         \
  ::ada::detail::LogLine(::ada::LogLevel::level_name)

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ada
