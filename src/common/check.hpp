// Invariant-checking macros.
//
// ADA_CHECK is always on (release included): it guards logic errors whose
// cost is negligible next to the I/O they protect.  ADA_DCHECK compiles out
// in release builds and is used inside per-atom / per-byte hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ada::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "ADA_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace ada::detail

#define ADA_CHECK(expr)                                            \
  do {                                                             \
    if (!(expr)) ::ada::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (false)

#ifndef NDEBUG
#define ADA_DCHECK(expr) ADA_CHECK(expr)
#else
#define ADA_DCHECK(expr) \
  do {                   \
  } while (false)
#endif
