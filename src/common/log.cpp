#include "common/log.hpp"

#include <cstdio>

namespace ada {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogPrefixHook g_prefix_hook = nullptr;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_prefix_hook(LogPrefixHook hook) { g_prefix_hook = hook; }

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::string prefix = std::string("[ada ") + level_tag(level);
  if (g_prefix_hook != nullptr) g_prefix_hook(prefix);
  std::fprintf(stderr, "%s] %s\n", prefix.c_str(), message.c_str());
}
}  // namespace detail

}  // namespace ada
