#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace ada {

namespace {
std::string format_with_unit(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, unit);
  }
  return buf;
}
}  // namespace

std::string format_bytes(double bytes) {
  if (!(bytes >= 0.0)) return "nan";
  if (bytes >= kTB) return format_with_unit(bytes / kTB, "TB");
  if (bytes >= kGB) return format_with_unit(bytes / kGB, "GB");
  if (bytes >= kMB) return format_with_unit(bytes / kMB, "MB");
  if (bytes >= kKB) return format_with_unit(bytes / kKB, "KB");
  return format_with_unit(bytes, "B");
}

std::string format_seconds(double seconds) {
  if (!(seconds >= 0.0)) return "nan";
  if (seconds >= 3600.0) return format_with_unit(seconds / 3600.0, "h");
  if (seconds >= 60.0) return format_with_unit(seconds / 60.0, "min");
  if (seconds >= 1.0) return format_with_unit(seconds, "s");
  if (seconds >= 1e-3) return format_with_unit(seconds * 1e3, "ms");
  return format_with_unit(seconds * 1e6, "us");
}

}  // namespace ada
