// Deterministic random-number generation.
//
// Every stochastic component (workload generator, trajectory dynamics) takes
// an explicit seed so that workloads -- and therefore all byte counts feeding
// the performance model -- are bit-reproducible across runs and machines.
// xoshiro256** is used instead of std::mt19937 because libstdc++'s
// distributions are not cross-platform deterministic; ours are.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.hpp"

namespace ada {

/// SplitMix64: seed expander (Steele, Lea, Flood 2014 public-domain algorithm).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna, public domain): the library's main PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    ADA_DCHECK(n > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586;
    spare_ = r * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return r * std::cos(kTwoPi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace ada
