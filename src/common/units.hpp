// Byte / time / rate unit helpers used by the storage and platform models.
//
// The performance model traffics in plain doubles (seconds, bytes/second,
// joules); these helpers keep the literals readable and the conversions in
// one place.  Sizes follow the paper's convention: "MB" and "GB" are decimal
// (1e6 / 1e9 bytes) because the paper's tables (100 MB, 327 MB, 1 TB DRAM)
// are decimal.
#pragma once

#include <cstdint>
#include <string>

namespace ada {

// --- byte sizes (decimal, matching the paper's tables) ----------------------
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;
constexpr double kTB = 1e12;

// Binary sizes, for DRAM-capacity arithmetic where it matters.
constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// --- time --------------------------------------------------------------------
constexpr double kMicrosecond = 1e-6;
constexpr double kMillisecond = 1e-3;
constexpr double kSecond = 1.0;
constexpr double kMinute = 60.0;

// --- rates -------------------------------------------------------------------
/// Bytes/second from a "MB/s" spec figure.
constexpr double mb_per_s(double mb) { return mb * kMB; }
/// Bytes/second from a "GB/s" spec figure.
constexpr double gb_per_s(double gb) { return gb * kGB; }

/// "327.4 MB" / "2.61 GB" / "512 B" -- human-readable size for reports.
std::string format_bytes(double bytes);

/// "13.4 s" / "412.0 ms" / "6.9 min" -- human-readable duration for reports.
std::string format_seconds(double seconds);

}  // namespace ada
