// Wall-clock stopwatch for calibration runs.
//
// Only calibration (platform/calibration.*) and the micro-benchmarks read
// real time; everything in the performance model uses the simulated clock.
#pragma once

#include <chrono>

namespace ada {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ada
