#include "common/faults.hpp"

#include <atomic>
#include <charconv>

#include "obs/metrics.hpp"

namespace ada::fault {

namespace {

std::atomic<bool> g_enabled{false};

double parse_double(std::string_view text, bool* ok) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  *ok = ec == std::errc{} && ptr == text.data() + text.size();
  return value;
}

std::uint64_t parse_u64(std::string_view text, bool* ok) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  *ok = ec == std::errc{} && ptr == text.data() + text.size();
  return value;
}

std::vector<std::string_view> split_fields(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const auto pos = text.find(sep);
    if (pos == std::string_view::npos) {
      out.push_back(text);
      return out;
    }
    out.push_back(text.substr(0, pos));
    text.remove_prefix(pos + 1);
  }
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

Error Outcome::to_error(std::string_view site) const {
  return Error(error, "injected fault at " + std::string(site));
}

Schedule Schedule::fail_nth(std::uint64_t n) {
  Schedule s;
  s.trigger = Trigger::kNth;
  s.nth = n;
  return s;
}

Schedule Schedule::fail_every(std::uint64_t n) {
  Schedule s;
  s.trigger = Trigger::kEveryNth;
  s.nth = n;
  return s;
}

Schedule Schedule::fail_probability(double p, std::uint64_t seed) {
  Schedule s;
  s.trigger = Trigger::kProbability;
  s.probability = p;
  s.seed = seed;
  return s;
}

Schedule Schedule::down_window(std::uint64_t first_hit, std::uint64_t last_hit) {
  Schedule s;
  s.trigger = Trigger::kWindow;
  s.window_begin = first_hit;
  s.window_end = last_hit;
  s.error = ErrorCode::kUnavailable;
  return s;
}

Schedule Schedule::torn_write(double surviving_fraction, std::uint64_t n) {
  Schedule s;
  s.trigger = Trigger::kNth;
  s.nth = n;
  s.effect = Outcome::Kind::kTorn;
  s.fraction = surviving_fraction;
  return s;
}

Schedule Schedule::corrupt_read(std::uint64_t n, double position) {
  Schedule s;
  s.trigger = Trigger::kNth;
  s.nth = n;
  s.effect = Outcome::Kind::kCorrupt;
  s.fraction = position;
  return s;
}

Schedule Schedule::latency_spike(double seconds, double p, std::uint64_t seed) {
  Schedule s;
  s.trigger = Trigger::kProbability;
  s.probability = p;
  s.seed = seed;
  s.effect = Outcome::Kind::kDelay;
  s.delay_seconds = seconds;
  return s;
}

Result<Schedule> parse_schedule(std::string_view spec) {
  const auto fields = split_fields(spec, ':');
  const std::string_view kind = fields[0];
  bool ok = true;
  const auto field_u64 = [&](std::size_t i, std::uint64_t fallback) {
    if (fields.size() <= i) return fallback;
    bool field_ok = false;
    const std::uint64_t v = parse_u64(fields[i], &field_ok);
    ok = ok && field_ok;
    return v;
  };
  const auto field_double = [&](std::size_t i, double fallback) {
    if (fields.size() <= i) return fallback;
    bool field_ok = false;
    const double v = parse_double(fields[i], &field_ok);
    ok = ok && field_ok;
    return v;
  };

  Schedule schedule;
  if (kind == "nth") {
    if (fields.size() != 2) return invalid_argument("nth:<k> takes one field: " + std::string(spec));
    schedule = Schedule::fail_nth(field_u64(1, 1));
  } else if (kind == "every") {
    if (fields.size() != 2) return invalid_argument("every:<k> takes one field: " + std::string(spec));
    schedule = Schedule::fail_every(field_u64(1, 1));
  } else if (kind == "prob") {
    if (fields.size() < 2 || fields.size() > 3) {
      return invalid_argument("prob:<p>[:<seed>] : " + std::string(spec));
    }
    schedule = Schedule::fail_probability(field_double(1, 0.0), field_u64(2, 0x5eed));
  } else if (kind == "down") {
    if (fields.size() != 3) return invalid_argument("down:<a>:<b> : " + std::string(spec));
    schedule = Schedule::down_window(field_u64(1, 1), field_u64(2, 1));
  } else if (kind == "torn") {
    if (fields.size() < 2 || fields.size() > 3) {
      return invalid_argument("torn:<frac>[:<k>] : " + std::string(spec));
    }
    schedule = Schedule::torn_write(field_double(1, 0.5), field_u64(2, 1));
  } else if (kind == "corrupt") {
    if (fields.size() > 2) return invalid_argument("corrupt[:<k>] : " + std::string(spec));
    schedule = Schedule::corrupt_read(field_u64(1, 1));
  } else if (kind == "delay") {
    if (fields.size() < 2 || fields.size() > 3) {
      return invalid_argument("delay:<seconds>[:<p>] : " + std::string(spec));
    }
    schedule = Schedule::latency_spike(field_double(1, 0.0), field_double(2, 1.0));
  } else {
    return invalid_argument("unknown fault schedule kind: " + std::string(spec));
  }
  if (!ok) return invalid_argument("bad fault schedule field in: " + std::string(spec));
  if (schedule.trigger == Schedule::Trigger::kNth && schedule.nth == 0) {
    return invalid_argument("hit numbers are 1-based: " + std::string(spec));
  }
  if (schedule.probability < 0.0 || schedule.probability > 1.0) {
    return invalid_argument("probability out of [0,1]: " + std::string(spec));
  }
  if (schedule.fraction < 0.0 || schedule.fraction > 1.0) {
    return invalid_argument("fraction out of [0,1]: " + std::string(spec));
  }
  return schedule;
}

Injector& Injector::global() {
  static Injector* injector = new Injector();  // never destroyed: sites may fire at exit
  return *injector;
}

void Injector::update_enabled_locked() {
  g_enabled.store(!arms_.empty(), std::memory_order_relaxed);
}

void Injector::arm(const std::string& site, const Schedule& schedule) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Arm arm;
  arm.schedule = schedule;
  arm.rng = Rng(schedule.seed);
  arms_[site] = std::move(arm);
  update_enabled_locked();
}

Status Injector::arm_spec(std::string_view spec) {
  for (const std::string_view entry : split_fields(spec, ',')) {
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return invalid_argument("fault spec entry needs site=schedule: " + std::string(entry));
    }
    ADA_ASSIGN_OR_RETURN(const Schedule schedule, parse_schedule(entry.substr(eq + 1)));
    arm(std::string(entry.substr(0, eq)), schedule);
  }
  return Status::ok();
}

void Injector::disarm(const std::string& site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  arms_.erase(site);
  update_enabled_locked();
}

void Injector::disarm_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  arms_.clear();
  update_enabled_locked();
}

Outcome Injector::hit(std::string_view site) {
  Outcome outcome;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++evaluations_;
    const auto it = arms_.find(site);
    if (it == arms_.end()) return outcome;
    Arm& arm = it->second;
    const std::uint64_t hit_number = ++arm.hit_count;
    const Schedule& s = arm.schedule;
    if (s.max_fires != 0 && arm.fire_count >= s.max_fires) return outcome;

    bool fires = false;
    switch (s.trigger) {
      case Schedule::Trigger::kNth: fires = hit_number == s.nth; break;
      case Schedule::Trigger::kEveryNth: fires = s.nth != 0 && hit_number % s.nth == 0; break;
      case Schedule::Trigger::kProbability: fires = arm.rng.uniform() < s.probability; break;
      case Schedule::Trigger::kWindow:
        fires = hit_number >= s.window_begin && hit_number <= s.window_end;
        break;
      case Schedule::Trigger::kAlways: fires = true; break;
    }
    if (!fires) return outcome;
    ++arm.fire_count;
    outcome.kind = s.effect;
    outcome.error = s.error;
    outcome.delay_seconds = s.delay_seconds;
    outcome.fraction = s.fraction;
  }
  // Fired faults are rare and cold: dynamic counter names are fine here.
  ADA_OBS_COUNT("fault.injected", 1);
  if (obs::enabled()) {
    obs::Registry::global().counter("fault.injected." + std::string(site)).add(1);
  }
  return outcome;
}

std::uint64_t Injector::hits(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = arms_.find(site);
  return it == arms_.end() ? 0 : it->second.hit_count;
}

std::uint64_t Injector::fired(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = arms_.find(site);
  return it == arms_.end() ? 0 : it->second.fire_count;
}

std::uint64_t Injector::evaluations() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evaluations_;
}

std::vector<std::string> Injector::armed_sites() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(arms_.size());
  for (const auto& [site, arm] : arms_) out.push_back(site);
  return out;
}

}  // namespace ada::fault
