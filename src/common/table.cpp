#include "common/table.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace ada {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ADA_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  ADA_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << pad_right(row[c], widths[c]);
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char c : field) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << quote(row[c]);
      os << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ada
