// Per-key admission windows: a bounded in-flight budget per resource.
//
// The scatter-gather retriever fans extent reads onto the shared thread
// pool, but an unbounded fan-out would let one query swamp a single backend
// (or, in a real deployment, a single PVFS server) with every outstanding
// request.  AdmissionWindow bounds the number of in-flight operations *per
// key* (backend id, server id, tenant id): acquire() blocks until the key's
// window has a free slot, release() frees it.
//
// Wakeup discipline: each key owns its own lock and a FIFO queue of
// waiters, each with a private condition variable.  release() hands the
// freed slot directly to the OLDEST waiter of that key and notifies exactly
// that one waiter -- one wakeup per release, never a thundering herd across
// every key (the serve layer multiplies windows by tenants, so an
// every-waiter-every-release broadcast would scale as waiters x releases).
// Because the slot is handed off rather than returned to a free pool, a
// late acquire() can never barge past a queued waiter: grants are strictly
// FIFO per key.
//
// Deadlock discipline: a holder of a slot must never block on acquiring
// another slot of the same window.  The retriever acquires exactly one slot
// per task, does its I/O, and releases -- so a blocked acquire() is always
// waiting on a task that is actively running, and the window drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.hpp"

namespace ada {

class AdmissionWindow {
 public:
  /// `keys` resources, each admitting at most `depth` concurrent holders.
  /// depth == 0 means unbounded (acquire never blocks).
  AdmissionWindow(std::size_t keys, unsigned depth) : depth_(depth), keys_(keys) {
    if (depth_ != 0) {
      slots_ = std::make_unique<Key[]>(keys_);
      for (std::size_t i = 0; i < keys_; ++i) slots_[i].depth = depth_;
    }
  }

  /// Per-key depths (the serve layer's per-tenant windows): key `i` admits
  /// at most `depths[i]` concurrent holders, 0 = that key is unbounded.
  explicit AdmissionWindow(const std::vector<unsigned>& depths)
      : depth_(0), keys_(depths.size()) {
    slots_ = std::make_unique<Key[]>(keys_);
    for (std::size_t i = 0; i < keys_; ++i) slots_[i].depth = depths[i];
  }

  AdmissionWindow(const AdmissionWindow&) = delete;
  AdmissionWindow& operator=(const AdmissionWindow&) = delete;

  /// Block until key's window has room, then take a slot.  Returns the
  /// number of times this call had to wait (0 = admitted immediately).
  /// Waiters are granted strictly in arrival order.
  std::uint64_t acquire(std::size_t key) {
    if (slots_ == nullptr) return 0;
    ADA_CHECK(key < keys_);
    Key& slot = slots_[key];
    if (slot.depth == 0) return 0;
    std::unique_lock<std::mutex> lock(slot.mutex);
    if (slot.in_flight < slot.depth && slot.waiters.empty()) {
      ++slot.in_flight;
      return 0;
    }
    Waiter self;
    slot.waiters.push_back(&self);
    std::uint64_t waits = 0;
    while (!self.granted) {
      ++waits;
      self.cv.wait(lock);
    }
    // The releaser handed its slot to us: in_flight already accounts for it.
    return waits;
  }

  /// Take a slot only if one is free right now (no queueing): the serve
  /// scheduler probes windows under its own lock and must never block a
  /// worker on a tenant that is already at depth.
  bool try_acquire(std::size_t key) {
    if (slots_ == nullptr) return true;
    ADA_CHECK(key < keys_);
    Key& slot = slots_[key];
    if (slot.depth == 0) return true;
    const std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.in_flight >= slot.depth || !slot.waiters.empty()) return false;
    ++slot.in_flight;
    return true;
  }

  void release(std::size_t key) {
    if (slots_ == nullptr) return;
    ADA_CHECK(key < keys_);
    Key& slot = slots_[key];
    if (slot.depth == 0) return;
    const std::lock_guard<std::mutex> lock(slot.mutex);
    ADA_CHECK(slot.in_flight > 0);
    if (slot.waiters.empty()) {
      --slot.in_flight;
      return;
    }
    // Hand the slot to the oldest waiter of THIS key: exactly one wakeup,
    // FIFO grant.  in_flight is unchanged -- the slot never went free.
    Waiter* next = slot.waiters.front();
    slot.waiters.pop_front();
    next->granted = true;
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    next->cv.notify_one();
  }

  /// The uniform depth this window was built with (0 when unbounded or when
  /// constructed from per-key depths; see depth(key) for the latter).
  unsigned depth() const noexcept { return depth_; }

  unsigned depth(std::size_t key) const {
    if (slots_ == nullptr) return 0;
    ADA_CHECK(key < keys_);
    return slots_[key].depth;
  }

  /// Slots currently held on `key` (test/diagnostic hook).
  unsigned in_flight(std::size_t key) const {
    if (slots_ == nullptr) return 0;
    ADA_CHECK(key < keys_);
    const std::lock_guard<std::mutex> lock(slots_[key].mutex);
    return slots_[key].in_flight;
  }

  /// Waiters currently queued on `key` (test/diagnostic hook).
  std::size_t waiting(std::size_t key) const {
    if (slots_ == nullptr) return 0;
    ADA_CHECK(key < keys_);
    const std::lock_guard<std::mutex> lock(slots_[key].mutex);
    return slots_[key].waiters.size();
  }

  /// Total waiter notifications issued: exactly one per slot handoff, so
  /// this never exceeds the number of releases (the regression contract for
  /// the old notify-everyone-on-every-release behavior).
  std::uint64_t wakeups() const noexcept { return wakeups_.load(std::memory_order_relaxed); }

 private:
  /// One queued acquire(), parked on its own condition variable so a
  /// release can wake precisely this waiter.  Lives on the acquirer's
  /// stack; the key mutex guards its lifetime (the releaser still holds
  /// the mutex when it notifies, and acquire cannot return -- and destroy
  /// the Waiter -- until it reacquires that mutex and observes granted).
  struct Waiter {
    std::condition_variable cv;
    bool granted = false;
  };

  /// One admission key: private lock domain + FIFO waiter queue.
  struct Key {
    mutable std::mutex mutex;
    std::deque<Waiter*> waiters;
    unsigned in_flight = 0;
    unsigned depth = 0;  // 0 = this key never blocks
  };

  const unsigned depth_;
  const std::size_t keys_;
  std::unique_ptr<Key[]> slots_;
  std::atomic<std::uint64_t> wakeups_{0};
};

}  // namespace ada
