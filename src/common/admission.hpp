// Per-key admission windows: a bounded in-flight budget per resource.
//
// The scatter-gather retriever fans extent reads onto the shared thread
// pool, but an unbounded fan-out would let one query swamp a single backend
// (or, in a real deployment, a single PVFS server) with every outstanding
// request.  AdmissionWindow bounds the number of in-flight operations *per
// key* (backend id, server id): acquire() blocks until the key's window has
// a free slot, release() frees it.
//
// Deadlock discipline: a holder of a slot must never block on acquiring
// another slot of the same window.  The retriever acquires exactly one slot
// per task, does its I/O, and releases -- so a blocked acquire() is always
// waiting on a task that is actively running, and the window drains.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/check.hpp"

namespace ada {

class AdmissionWindow {
 public:
  /// `keys` resources, each admitting at most `depth` concurrent holders.
  /// depth == 0 means unbounded (acquire never blocks).
  AdmissionWindow(std::size_t keys, unsigned depth) : depth_(depth), in_flight_(keys, 0) {}

  AdmissionWindow(const AdmissionWindow&) = delete;
  AdmissionWindow& operator=(const AdmissionWindow&) = delete;

  /// Block until key's window has room, then take a slot.  Returns the
  /// number of times this call had to wait (0 = admitted immediately).
  std::uint64_t acquire(std::size_t key) {
    if (depth_ == 0) return 0;
    std::unique_lock<std::mutex> lock(mutex_);
    ADA_CHECK(key < in_flight_.size());
    std::uint64_t waits = 0;
    while (in_flight_[key] >= depth_) {
      ++waits;
      cv_.wait(lock);
    }
    ++in_flight_[key];
    return waits;
  }

  void release(std::size_t key) {
    if (depth_ == 0) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ADA_CHECK(key < in_flight_.size() && in_flight_[key] > 0);
      --in_flight_[key];
    }
    cv_.notify_all();
  }

  unsigned depth() const noexcept { return depth_; }

 private:
  const unsigned depth_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<unsigned> in_flight_;
};

}  // namespace ada
