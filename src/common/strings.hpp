// Small string utilities shared by the PDB parser, label files and reports.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ada {

/// Copy of `s` without leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single-character delimiter; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of whitespace; no empty fields.
std::vector<std::string> split_whitespace(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// ASCII upper-case copy.
std::string to_upper(std::string_view s);

/// File extension of the path's *basename*, including the leading dot
/// ("/data/traj.xtc" -> ".xtc").  Empty when the basename has none: a dot in
/// a directory component ("/runs.2026/traj") is never an extension, and a
/// leading dot ("/.hidden") marks a dotfile, not an extension.
std::string_view path_extension(std::string_view path);

/// Left-pad with spaces to `width` (no-op if already wider).
std::string pad_left(std::string_view s, std::size_t width);

/// Right-pad with spaces to `width` (no-op if already wider).
std::string pad_right(std::string_view s, std::size_t width);

/// Fixed-point decimal with `decimals` digits, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// Parse a non-negative integer; returns -1 on malformed input.
long long parse_int(std::string_view s);

/// Parse a double; returns NaN on malformed input.
double parse_double(std::string_view s);

}  // namespace ada
