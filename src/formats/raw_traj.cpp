#include "formats/raw_traj.hpp"

#include <cstring>
#include <limits>

#include "common/binary_io.hpp"

namespace ada::formats {

RawTrajWriter::RawTrajWriter(std::uint32_t atom_count) : atom_count_(atom_count) {
  ByteWriter w;
  w.put_bytes(kRawMagic);
  w.put_u32_le(atom_count_);
  w.put_u32_le(0);  // frame count, patched by finish()
  buffer_ = w.take();
}

Status RawTrajWriter::add_frame(std::uint32_t step, float time_ps, const chem::Box& box,
                                std::span<const float> coords) {
  if (coords.size() != std::size_t{3} * atom_count_) {
    return invalid_argument("frame has " + std::to_string(coords.size() / 3) + " atoms, expected " +
                            std::to_string(atom_count_));
  }
  ByteWriter w;
  w.put_u32_le(step);
  w.put_f32_le(time_ps);
  for (float v : box.matrix) w.put_f32_le(v);
  for (float v : coords) w.put_f32_le(v);
  const auto& bytes = w.bytes();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  ++frame_count_;
  return Status::ok();
}

std::vector<std::uint8_t> RawTrajWriter::finish() {
  const std::uint32_t wire = to_little_endian32(frame_count_);
  std::memcpy(buffer_.data() + 12, &wire, 4);
  return std::move(buffer_);
}

Result<RawTrajReader> RawTrajReader::open(std::span<const std::uint8_t> data) {
  if (data.size() < 16) return corrupt_data("raw trajectory too small for header");
  if (std::memcmp(data.data(), kRawMagic, 8) != 0) return corrupt_data("bad raw trajectory magic");
  ByteReader r(data.subspan(8));
  ADA_ASSIGN_OR_RETURN(const std::uint32_t atoms, r.get_u32_le());
  ADA_ASSIGN_OR_RETURN(const std::uint32_t frames, r.get_u32_le());
  const std::size_t expected = raw_file_bytes(atoms, frames);
  if (data.size() != expected) {
    return corrupt_data("raw trajectory size mismatch: file " + std::to_string(data.size()) +
                        " bytes, header implies " + std::to_string(expected));
  }
  return RawTrajReader(data, atoms, frames);
}

Result<TrajFrame> RawTrajReader::frame(std::uint32_t index) const {
  if (index >= frame_count_) {
    return out_of_range("frame " + std::to_string(index) + " of " + std::to_string(frame_count_));
  }
  const std::size_t offset = 16 + std::size_t{index} * raw_frame_bytes(atom_count_);
  ByteReader r(data_.subspan(offset, raw_frame_bytes(atom_count_)));
  TrajFrame out;
  ADA_ASSIGN_OR_RETURN(out.step, r.get_u32_le());
  ADA_ASSIGN_OR_RETURN(out.time_ps, r.get_f32_le());
  for (float& v : out.box.matrix) {
    ADA_ASSIGN_OR_RETURN(v, r.get_f32_le());
  }
  out.coords.resize(std::size_t{3} * atom_count_);
  for (float& v : out.coords) {
    ADA_ASSIGN_OR_RETURN(v, r.get_f32_le());
  }
  return out;
}

Result<std::vector<TrajFrame>> RawTrajReader::read_all() const {
  std::vector<TrajFrame> frames;
  frames.reserve(frame_count_);
  for (std::uint32_t i = 0; i < frame_count_; ++i) {
    ADA_ASSIGN_OR_RETURN(TrajFrame f, frame(i));
    frames.push_back(std::move(f));
  }
  return frames;
}

Result<std::vector<std::uint8_t>> merge_raw_images(
    std::uint32_t atom_count, std::span<const std::vector<std::uint8_t>> shards) {
  std::uint64_t total_frames = 0;
  std::size_t total_bytes = 16;
  for (const auto& shard : shards) {
    ADA_ASSIGN_OR_RETURN(const RawTrajReader reader, RawTrajReader::open(shard));
    if (reader.atom_count() != atom_count) {
      return corrupt_data("raw shard has " + std::to_string(reader.atom_count()) +
                          " atoms, merge expects " + std::to_string(atom_count));
    }
    total_frames += reader.frame_count();
    total_bytes += shard.size() - 16;
  }
  if (total_frames > std::numeric_limits<std::uint32_t>::max()) {
    return out_of_range("merged raw trajectory exceeds the u32 frame count");
  }
  std::vector<std::uint8_t> out;
  out.reserve(total_bytes);
  ByteWriter header;
  header.put_bytes(kRawMagic);
  header.put_u32_le(atom_count);
  header.put_u32_le(static_cast<std::uint32_t>(total_frames));
  const auto& header_bytes = header.bytes();
  out.insert(out.end(), header_bytes.begin(), header_bytes.end());
  for (const auto& shard : shards) {
    out.insert(out.end(), shard.begin() + 16, shard.end());
  }
  return out;
}

Result<std::vector<std::uint64_t>> scan_raw_frame_offsets(std::span<const std::uint8_t> data) {
  std::vector<std::uint64_t> offsets;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const auto rest = data.subspan(offset);
    if (rest.size() < 16 || std::memcmp(rest.data(), kRawMagic, 8) != 0) {
      return corrupt_data("garbage at offset " + std::to_string(offset) +
                          " between raw segments");
    }
    ByteReader header(rest.subspan(8));
    ADA_ASSIGN_OR_RETURN(const std::uint32_t atoms, header.get_u32_le());
    ADA_ASSIGN_OR_RETURN(const std::uint32_t frames, header.get_u32_le());
    const std::size_t segment_bytes = raw_file_bytes(atoms, frames);
    if (segment_bytes > rest.size()) {
      return corrupt_data("raw segment at offset " + std::to_string(offset) + " truncated");
    }
    const std::size_t frame_bytes = raw_frame_bytes(atoms);
    for (std::uint32_t f = 0; f < frames; ++f) {
      offsets.push_back(offset + 16 + std::uint64_t{f} * frame_bytes);
    }
    offset += segment_bytes;
  }
  return offsets;
}

Result<RawTrajCatReader> RawTrajCatReader::open(std::span<const std::uint8_t> data) {
  RawTrajCatReader cat;
  std::size_t offset = 0;
  while (offset < data.size()) {
    // Peek the segment header to learn its extent, then validate the slice.
    const auto rest = data.subspan(offset);
    if (rest.size() < 16 || std::memcmp(rest.data(), kRawMagic, 8) != 0) {
      return corrupt_data("garbage at offset " + std::to_string(offset) +
                          " between raw segments");
    }
    ByteReader header(rest.subspan(8));
    ADA_ASSIGN_OR_RETURN(const std::uint32_t atoms, header.get_u32_le());
    ADA_ASSIGN_OR_RETURN(const std::uint32_t frames, header.get_u32_le());
    const std::size_t segment_bytes = raw_file_bytes(atoms, frames);
    if (segment_bytes > rest.size()) {
      return corrupt_data("raw segment at offset " + std::to_string(offset) + " truncated");
    }
    ADA_ASSIGN_OR_RETURN(RawTrajReader reader,
                         RawTrajReader::open(rest.subspan(0, segment_bytes)));
    if (cat.segments_.empty()) {
      cat.atom_count_ = reader.atom_count();
    } else if (reader.atom_count() != cat.atom_count_) {
      return corrupt_data("raw segments disagree on atom count: " +
                          std::to_string(reader.atom_count()) + " vs " +
                          std::to_string(cat.atom_count_));
    }
    cat.segments_.push_back(Segment{reader, cat.frame_count_});
    cat.frame_count_ += reader.frame_count();
    offset += segment_bytes;
  }
  return cat;
}

Result<TrajFrame> RawTrajCatReader::frame(std::uint32_t index) const {
  if (index >= frame_count_) {
    return out_of_range("frame " + std::to_string(index) + " of " + std::to_string(frame_count_));
  }
  // Binary search the owning segment.
  std::size_t lo = 0;
  std::size_t hi = segments_.size();
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (segments_[mid].first_frame <= index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return segments_[lo].reader.frame(index - segments_[lo].first_frame);
}

Result<std::vector<TrajFrame>> RawTrajCatReader::read_all() const {
  std::vector<TrajFrame> frames;
  frames.reserve(frame_count_);
  for (const Segment& segment : segments_) {
    ADA_ASSIGN_OR_RETURN(auto part, segment.reader.read_all());
    for (auto& f : part) frames.push_back(std::move(f));
  }
  return frames;
}

}  // namespace ada::formats
