// XTC trajectory files: XDR-framed, compressed coordinates.
//
// The wire layout follows GROMACS .xtc: every frame is an XDR stream item
// beginning with magic 1995, atom count, MD step and time, the 3x3 box, and
// a compressed coordinate block.  The coordinate block uses this
// repository's ada3d codec (src/codec/) rather than 3dfcoord -- see
// DESIGN.md's substitution table -- so a second magic (0xada3) distinguishes
// the variant.  Sizes, CPU behaviour and round-trip precision match the
// original's character.
//
// Codec v2 coordinate blocks carry the magic 0xada4 and insert one XDR word
// (the predictor id) after it; everything else is laid out as in v1.  A v2
// stream is a sequence of keyframes (predictor 0, bit-identical to a v1
// block) and predicted frames that decode against the running context --
// decode therefore must start at a keyframe, which the writer emits at
// least every `keyframe_interval` frames.  v1 streams remain readable and
// writable unchanged; docs/performance.md documents the layout.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "chem/system.hpp"
#include "codec/coord_codec.hpp"
#include "common/result.hpp"

namespace ada::formats {

/// Frame magic, identical to GROMACS xtc.
constexpr std::int32_t kXtcMagic = 1995;
/// Coordinate-block magic identifying the ada3d codec variant.
constexpr std::uint32_t kAda3dMagic = 0xada3;
/// Coordinate-block magic of the v2 (temporal-prediction) codec variant.
constexpr std::uint32_t kAda3dV2Magic = 0xada4;

/// One decoded trajectory frame.
struct TrajFrame {
  std::uint32_t step = 0;
  float time_ps = 0.0f;
  chem::Box box;
  std::vector<float> coords;  // xyz triplets, nm

  std::uint32_t atom_count() const noexcept { return static_cast<std::uint32_t>(coords.size() / 3); }
};

/// Streaming writer: frames are appended to an in-memory buffer that callers
/// persist through the storage layer (or common/write_file for host files).
class XtcWriter {
 public:
  /// Default interval between forced v2 keyframes.  Bounds how much context
  /// a range decode must rebuild and how far a parallel-ingest range
  /// boundary can sit from the frame a worker actually wants.
  static constexpr std::uint32_t kDefaultKeyframeInterval = 16;

  explicit XtcWriter(codec::CodecParams params = {},
                     codec::CodecVersion version = codec::CodecVersion::kV1,
                     std::uint32_t keyframe_interval = kDefaultKeyframeInterval)
      : params_(params),
        version_(version),
        keyframe_interval_(keyframe_interval == 0 ? 1 : keyframe_interval) {}

  /// Compress and append one frame.  When `per_atom` is non-null it receives
  /// the per-atom compressed bit costs of this frame (Table 1 attribution).
  Status add_frame(std::uint32_t step, float time_ps, const chem::Box& box,
                   std::span<const float> coords, codec::PerAtomCost* per_atom = nullptr);

  codec::CodecVersion version() const noexcept { return version_; }
  std::size_t frame_count() const noexcept { return frame_count_; }
  std::size_t size_bytes() const noexcept { return buffer_.size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  codec::CodecParams params_;
  codec::CodecVersion version_;
  std::uint32_t keyframe_interval_;
  std::uint32_t frames_since_keyframe_ = 0;
  codec::PredictionContext ctx_;
  std::vector<std::uint8_t> buffer_;
  std::size_t frame_count_ = 0;
};

/// Streaming reader over an in-memory XTC image.  Carries the v2 prediction
/// context across next() calls; v1 frames decode statelessly.
class XtcReader {
 public:
  explicit XtcReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Decode the next frame; std::nullopt cleanly at end of stream.
  Result<std::optional<TrajFrame>> next();

  /// Skip the next frame without decompressing (index/seek support);
  /// returns false cleanly at end of stream.  Skipping drops the v2
  /// prediction context, so the next decoded frame must be a keyframe.
  Result<bool> skip();

  std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  codec::PredictionContext ctx_;
};

/// Decode every frame of an XTC image.
Result<std::vector<TrajFrame>> read_all_xtc(std::span<const std::uint8_t> data);

/// Frame index: byte offset + metadata per frame, built in one cheap pass
/// (headers only, no decompression).  Enables random access into compressed
/// trajectories -- what VMD's `animate goto` needs when frames are evicted.
struct XtcIndexEntry {
  std::size_t offset = 0;  // byte offset of the frame within the image
  std::uint32_t step = 0;
  float time_ps = 0.0f;
};

Result<std::vector<XtcIndexEntry>> build_xtc_index(std::span<const std::uint8_t> data);

/// One frame's extent within a compressed XTC image, from the header-only
/// boundary scan (no coordinate decompression).
struct XtcFrameExtent {
  std::size_t offset = 0;        // byte offset of the frame within the image
  std::size_t size = 0;          // encoded bytes: prelude + padded payload
  std::uint32_t atom_count = 0;  // from the frame header
  bool intra = true;             // self-contained decode entry point (always true for v1)
};

/// Walk the XDR frame headers of an XTC image and return every frame's
/// extent.  Reads a handful of words per frame (magic, atom count, codec
/// magic, predictor for v2, payload length) and never touches the
/// compressed coordinate block, so the scan is cheap enough to run up front
/// before fanning frame-range decode tasks out to the thread pool.
Result<std::vector<XtcFrameExtent>> scan_xtc_extents(std::span<const std::uint8_t> data);

/// Decode exactly one frame at an indexed offset.  The frame must be
/// self-contained (any v1 frame, or a v2 keyframe -- XtcFrameExtent::intra);
/// a predicted frame has no context here and returns corrupt_data.
Result<TrajFrame> read_xtc_frame_at(std::span<const std::uint8_t> data, std::size_t offset);

/// Copy `selection`'s atoms out of a full frame's coords.
std::vector<float> extract_subset(std::span<const float> coords, const chem::Selection& selection);

}  // namespace ada::formats
