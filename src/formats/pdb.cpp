#include "formats/pdb.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/strings.hpp"

namespace ada::formats {

namespace {

constexpr double kAngstromPerNm = 10.0;

/// Fixed-column field [begin, end) (0-based, half open) of a record line.
std::string_view column(std::string_view line, std::size_t begin, std::size_t end) {
  if (line.size() <= begin) return {};
  return line.substr(begin, std::min(end, line.size()) - begin);
}

Result<chem::Atom> parse_atom_record(std::string_view line, bool hetatm) {
  chem::Atom atom;
  atom.hetatm = hetatm;

  const long long serial = parse_int(column(line, 6, 11));
  if (serial < 0) return corrupt_data("bad atom serial in: " + std::string(line));
  atom.serial = static_cast<std::uint32_t>(serial);

  atom.name = std::string(trim(column(line, 12, 16)));
  // Residue-name field widened to 4 columns (17-21): the CHARMM/GROMACS
  // convention for lipid names like POPC; 3-char standard names still parse.
  atom.residue_name = std::string(trim(column(line, 17, 21)));
  const std::string_view chain = column(line, 21, 22);
  atom.chain_id = chain.empty() ? ' ' : chain[0];

  const long long res_seq = parse_int(column(line, 22, 26));
  if (res_seq < 0) return corrupt_data("bad residue seq in: " + std::string(line));
  atom.residue_seq = static_cast<std::uint32_t>(res_seq);

  return atom;
}

}  // namespace

Result<chem::System> parse_pdb(const std::string& text) {
  chem::System system;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const bool is_atom = starts_with(line, "ATOM  ");
    const bool is_hetatm = starts_with(line, "HETATM");
    if (starts_with(line, "CRYST1")) {
      const double a = parse_double(column(line, 6, 15));
      const double b = parse_double(column(line, 15, 24));
      const double c = parse_double(column(line, 24, 33));
      if (std::isnan(a) || std::isnan(b) || std::isnan(c)) {
        return corrupt_data("bad CRYST1 record at line " + std::to_string(line_number));
      }
      system.set_box(chem::Box::orthorhombic(static_cast<float>(a / kAngstromPerNm),
                                             static_cast<float>(b / kAngstromPerNm),
                                             static_cast<float>(c / kAngstromPerNm)));
      continue;
    }
    if (!is_atom && !is_hetatm) continue;

    ADA_ASSIGN_OR_RETURN(chem::Atom atom, parse_atom_record(line, is_hetatm));
    const double x = parse_double(column(line, 30, 38));
    const double y = parse_double(column(line, 38, 46));
    const double z = parse_double(column(line, 46, 54));
    if (std::isnan(x) || std::isnan(y) || std::isnan(z)) {
      return corrupt_data("bad coordinates at line " + std::to_string(line_number));
    }
    // Element columns 77-78 when present; otherwise guessed from the name.
    const std::string element_field = std::string(trim(column(line, 76, 78)));
    if (!element_field.empty()) {
      atom.element = chem::element_from_atom_name(
          element_field, chem::classify_residue(atom.residue_name, is_hetatm) == chem::Category::kIon);
    }
    system.add_atom(std::move(atom), static_cast<float>(x / kAngstromPerNm),
                    static_cast<float>(y / kAngstromPerNm), static_cast<float>(z / kAngstromPerNm));
  }
  if (system.atom_count() == 0) return corrupt_data("pdb document contains no atoms");
  return system;
}

Result<chem::System> read_pdb_file(const std::string& path) {
  ADA_ASSIGN_OR_RETURN(const auto bytes, read_file(path));
  return parse_pdb(std::string(bytes.begin(), bytes.end()));
}

std::string write_pdb(const chem::System& system) {
  std::string out;
  out.reserve(static_cast<std::size_t>(system.atom_count()) * 81 + 160);
  char buf[96];

  const chem::Box& box = system.box();
  if (box.x() > 0) {
    std::snprintf(buf, sizeof buf, "CRYST1%9.3f%9.3f%9.3f%7.2f%7.2f%7.2f P 1           1\n",
                  static_cast<double>(box.x()) * kAngstromPerNm,
                  static_cast<double>(box.y()) * kAngstromPerNm,
                  static_cast<double>(box.z()) * kAngstromPerNm, 90.0, 90.0, 90.0);
    out += buf;
  }

  const std::vector<float>& coords = system.reference_coords();
  for (std::uint32_t i = 0; i < system.atom_count(); ++i) {
    const chem::Atom& a = system.atom(i);
    // PDB serials are 5 columns; large systems conventionally wrap mod 100000.
    const unsigned serial = a.serial % 100000u;
    const unsigned res_seq = a.residue_seq % 10000u;
    // Atom-name column convention: 1-2 char element names start in column 14.
    std::string name = a.name.size() < 4 ? " " + a.name : a.name;
    std::snprintf(buf, sizeof buf, "%-6s%5u %-4s %-4s%c%4u    %8.3f%8.3f%8.3f%6.2f%6.2f          %2s\n",
                  a.hetatm ? "HETATM" : "ATOM", serial, name.c_str(), a.residue_name.c_str(),
                  a.chain_id, res_seq,
                  static_cast<double>(coords[3 * i + 0]) * kAngstromPerNm,
                  static_cast<double>(coords[3 * i + 1]) * kAngstromPerNm,
                  static_cast<double>(coords[3 * i + 2]) * kAngstromPerNm, 1.0, 0.0,
                  std::string(chem::symbol(a.element)).c_str());
    out += buf;
  }
  out += "TER\nEND\n";
  return out;
}

Status write_pdb_file(const std::string& path, const chem::System& system) {
  const std::string text = write_pdb(system);
  return write_file(path, std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

}  // namespace ada::formats
