#include "formats/trr_file.hpp"

#include "xdr/xdr.hpp"

namespace ada::formats {

namespace {
constexpr std::size_t kFloat = 4;  // single-precision blocks only
}

TrajFrame TrrFrame::to_traj_frame() const {
  TrajFrame out;
  out.step = step;
  out.time_ps = time_ps;
  out.box = box;
  out.coords = coords;
  return out;
}

Status TrrWriter::add_frame(const TrrFrame& frame) {
  if (frame.coords.size() % 3 != 0) return invalid_argument("coords length not divisible by 3");
  const std::size_t natoms = frame.coords.size() / 3;
  if (frame.velocities && frame.velocities->size() != frame.coords.size()) {
    return invalid_argument("velocity block size mismatch");
  }
  if (frame.forces && frame.forces->size() != frame.coords.size()) {
    return invalid_argument("force block size mismatch");
  }

  xdr::XdrWriter w;
  w.put_i32(kTrrMagic);
  w.put_string(kTrrVersion);
  // Block-size header, in GROMACS trn order.
  w.put_i32(0);  // ir_size
  w.put_i32(0);  // e_size
  w.put_i32(9 * kFloat);  // box_size
  w.put_i32(0);  // vir_size
  w.put_i32(0);  // pres_size
  w.put_i32(0);  // top_size
  w.put_i32(0);  // sym_size
  w.put_i32(static_cast<std::int32_t>(frame.coords.size() * kFloat));  // x_size
  w.put_i32(frame.velocities ? static_cast<std::int32_t>(frame.velocities->size() * kFloat) : 0);
  w.put_i32(frame.forces ? static_cast<std::int32_t>(frame.forces->size() * kFloat) : 0);
  w.put_i32(static_cast<std::int32_t>(natoms));
  w.put_i32(static_cast<std::int32_t>(frame.step));
  w.put_i32(0);  // nre
  w.put_f32(frame.time_ps);
  w.put_f32(frame.lambda);
  for (const float v : frame.box.matrix) w.put_f32(v);
  for (const float v : frame.coords) w.put_f32(v);
  if (frame.velocities) {
    for (const float v : *frame.velocities) w.put_f32(v);
  }
  if (frame.forces) {
    for (const float v : *frame.forces) w.put_f32(v);
  }

  const auto& bytes = w.bytes();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  ++frame_count_;
  return Status::ok();
}

Result<std::optional<TrrFrame>> TrrReader::next() {
  if (pos_ == data_.size()) return std::optional<TrrFrame>{};
  xdr::XdrReader r(data_.subspan(pos_));

  ADA_ASSIGN_OR_RETURN(const std::int32_t magic, r.get_i32());
  if (magic != kTrrMagic) return corrupt_data("bad trr frame magic: " + std::to_string(magic));
  ADA_ASSIGN_OR_RETURN(const std::string version, r.get_string());
  if (version != kTrrVersion) return corrupt_data("bad trr version string: " + version);

  std::int32_t sizes[10];
  for (auto& s : sizes) {
    ADA_ASSIGN_OR_RETURN(s, r.get_i32());
  }
  const std::int32_t box_size = sizes[2];
  const std::int32_t x_size = sizes[7];
  const std::int32_t v_size = sizes[8];
  const std::int32_t f_size = sizes[9];
  for (const std::int32_t s : sizes) {
    if (s < 0) return corrupt_data("negative trr block size");
  }
  if (sizes[0] != 0 || sizes[1] != 0 || sizes[3] != 0 || sizes[4] != 0 || sizes[5] != 0 ||
      sizes[6] != 0) {
    return unsupported("trr frame carries unsupported blocks (ir/e/vir/pres/top/sym)");
  }

  TrrFrame frame;
  ADA_ASSIGN_OR_RETURN(const std::int32_t natoms, r.get_i32());
  if (natoms < 0) return corrupt_data("negative atom count");
  ADA_ASSIGN_OR_RETURN(const std::int32_t step, r.get_i32());
  frame.step = static_cast<std::uint32_t>(step);
  ADA_ASSIGN_OR_RETURN(const std::int32_t nre, r.get_i32());
  if (nre != 0) return unsupported("trr energy records are unsupported");
  ADA_ASSIGN_OR_RETURN(frame.time_ps, r.get_f32());
  ADA_ASSIGN_OR_RETURN(frame.lambda, r.get_f32());

  if (box_size != 0) {
    if (box_size != 9 * static_cast<std::int32_t>(kFloat)) {
      return unsupported("double-precision trr boxes are unsupported");
    }
    for (float& v : frame.box.matrix) {
      ADA_ASSIGN_OR_RETURN(v, r.get_f32());
    }
  }

  const auto expected_block =
      static_cast<std::int32_t>(static_cast<std::size_t>(natoms) * 3 * kFloat);
  auto read_block = [&](std::int32_t size, std::vector<float>& out) -> Status {
    if (size != expected_block) {
      return corrupt_data("trr block size " + std::to_string(size) + " does not match natoms " +
                          std::to_string(natoms));
    }
    out.resize(static_cast<std::size_t>(natoms) * 3);
    for (float& v : out) {
      ADA_ASSIGN_OR_RETURN(v, r.get_f32());
    }
    return Status::ok();
  };
  if (x_size == 0) return corrupt_data("trr frame without coordinates");
  ADA_RETURN_IF_ERROR(read_block(x_size, frame.coords));
  if (v_size != 0) {
    frame.velocities.emplace();
    ADA_RETURN_IF_ERROR(read_block(v_size, *frame.velocities));
  }
  if (f_size != 0) {
    frame.forces.emplace();
    ADA_RETURN_IF_ERROR(read_block(f_size, *frame.forces));
  }

  pos_ += r.position();
  return std::optional<TrrFrame>(std::move(frame));
}

Result<std::vector<TrrFrame>> read_all_trr(std::span<const std::uint8_t> data) {
  std::vector<TrrFrame> frames;
  TrrReader reader(data);
  while (true) {
    ADA_ASSIGN_OR_RETURN(auto frame, reader.next());
    if (!frame.has_value()) break;
    frames.push_back(std::move(*frame));
  }
  return frames;
}

bool looks_like_trr(std::span<const std::uint8_t> data) {
  xdr::XdrReader r(data);
  const auto magic = r.get_i32();
  if (!magic.is_ok() || magic.value() != kTrrMagic) return false;
  const auto version = r.get_string();
  return version.is_ok() && version.value() == kTrrVersion;
}

}  // namespace ada::formats
