// PDB (Protein Data Bank) structure files: fixed-column text records.
//
// The paper's workflow starts from a .pdb file: ADA's data pre-processor
// "analyzes the atom information from a .pdb file ... categorizes the
// molecules and then stores them by classes" (Section 3.4).  This module
// implements the records that workflow touches: CRYST1 (box), ATOM / HETATM
// (atoms), TER and END.  Coordinates are angstroms on the wire and converted
// to the library's nanometer convention in memory.
#pragma once

#include <string>

#include "chem/system.hpp"
#include "common/result.hpp"

namespace ada::formats {

/// Parse a PDB document (text) into a System.
/// Unknown record types are skipped; malformed ATOM records are errors.
Result<chem::System> parse_pdb(const std::string& text);

/// Read + parse a .pdb file from the host file system.
Result<chem::System> read_pdb_file(const std::string& path);

/// Serialize a System to PDB text (CRYST1 + ATOM/HETATM + TER + END).
std::string write_pdb(const chem::System& system);

/// Serialize + write to the host file system.
Status write_pdb_file(const std::string& path, const chem::System& system);

}  // namespace ada::formats
