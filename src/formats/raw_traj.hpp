// RAW trajectory: the uncompressed on-disk form of a trajectory.
//
// The paper's "D" scenarios load trajectories "w/o compression" (Table 3),
// and ADA itself stores *decompressed* per-tag subsets so compute nodes never
// pay the decode cost again.  This little-endian container holds exactly
// that: a fixed header followed by frames of plain float32 coordinates.
//
//   header:  magic "ADARAW1\0" (8) | atom_count u32 | frame_count u32
//   frame:   step u32 | time f32 | box 9xf32 | coords atom_count*3 x f32
//
// Per-frame size is therefore 44 + 12*atom_count bytes, which for the GPCR
// system (43,520 atoms) gives the paper's ~522 KB/frame (Table 2: 327 MB for
// 626 frames).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "formats/xtc_file.hpp"

namespace ada::formats {

constexpr std::uint8_t kRawMagic[8] = {'A', 'D', 'A', 'R', 'A', 'W', '1', '\0'};

/// Bytes per RAW frame for a given atom count.
constexpr std::size_t raw_frame_bytes(std::uint32_t atom_count) noexcept {
  return 44 + std::size_t{12} * atom_count;
}

/// Total RAW file size for a given atom and frame count.
constexpr std::size_t raw_file_bytes(std::uint32_t atom_count, std::uint64_t frames) noexcept {
  return 16 + frames * raw_frame_bytes(atom_count);
}

/// Streaming RAW writer (in-memory image; persist through the storage layer).
class RawTrajWriter {
 public:
  explicit RawTrajWriter(std::uint32_t atom_count);

  /// Append one frame; coords must hold atom_count*3 floats.
  Status add_frame(std::uint32_t step, float time_ps, const chem::Box& box,
                   std::span<const float> coords);

  std::uint32_t atom_count() const noexcept { return atom_count_; }
  std::uint32_t frame_count() const noexcept { return frame_count_; }
  std::size_t size_bytes() const noexcept { return buffer_.size(); }

  /// Finalize (patches the frame count into the header) and take the image.
  std::vector<std::uint8_t> finish();

 private:
  std::uint32_t atom_count_;
  std::uint32_t frame_count_ = 0;
  std::vector<std::uint8_t> buffer_;
};

/// Random-access RAW reader over an in-memory image.
class RawTrajReader {
 public:
  /// Validates the header.
  static Result<RawTrajReader> open(std::span<const std::uint8_t> data);

  std::uint32_t atom_count() const noexcept { return atom_count_; }
  std::uint32_t frame_count() const noexcept { return frame_count_; }

  /// Decode frame `index` (random access: frames are fixed-size).
  Result<TrajFrame> frame(std::uint32_t index) const;

  /// Decode all frames.
  Result<std::vector<TrajFrame>> read_all() const;

 private:
  RawTrajReader(std::span<const std::uint8_t> data, std::uint32_t atoms, std::uint32_t frames)
      : data_(data), atom_count_(atoms), frame_count_(frames) {}

  std::span<const std::uint8_t> data_;
  std::uint32_t atom_count_;
  std::uint32_t frame_count_;
};

/// Ordered merge of RAW shard images (the parallel split's per-range
/// outputs): one image whose frame section is the shards' frame sections
/// concatenated in input order.  Because the header is fixed-size and every
/// frame is a self-contained record, the merge is byte-identical to a single
/// writer fed the same frames serially -- the invariant the frame-parallel
/// ingest pipeline is locked to.  Shards with zero frames are legal and
/// contribute nothing; every shard must carry `atom_count`.
Result<std::vector<std::uint8_t>> merge_raw_images(
    std::uint32_t atom_count, std::span<const std::vector<std::uint8_t>> shards);

/// Byte offset of every frame within a (possibly concatenated) RAW image,
/// relative to the image start, in logical frame order.  A header-only walk
/// (frames are fixed-size records), cheap enough to run at ingest for every
/// extent -- this is what populates the PLFS per-extent frame tables that
/// frame-range queries address into.
Result<std::vector<std::uint64_t>> scan_raw_frame_offsets(std::span<const std::uint8_t> data);

/// Reader over a *concatenation* of RAW images (what a chunked/streaming
/// ingest stores: one dropping per chunk, each a self-describing RAW file).
/// Presents the segments as one logical trajectory with random access.
class RawTrajCatReader {
 public:
  /// Validates every segment; they must agree on atom count.
  static Result<RawTrajCatReader> open(std::span<const std::uint8_t> data);

  std::uint32_t atom_count() const noexcept { return atom_count_; }
  std::uint32_t frame_count() const noexcept { return frame_count_; }
  std::size_t segment_count() const noexcept { return segments_.size(); }

  /// Decode logical frame `index`.
  Result<TrajFrame> frame(std::uint32_t index) const;

  /// Decode all frames in order.
  Result<std::vector<TrajFrame>> read_all() const;

 private:
  struct Segment {
    RawTrajReader reader;
    std::uint32_t first_frame;  // logical index of the segment's frame 0
  };

  RawTrajCatReader() = default;

  std::vector<Segment> segments_;
  std::uint32_t atom_count_ = 0;
  std::uint32_t frame_count_ = 0;
};

}  // namespace ada::formats
