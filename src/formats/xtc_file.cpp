#include "formats/xtc_file.hpp"

#include "xdr/xdr.hpp"

namespace ada::formats {

namespace {

constexpr std::uint32_t kMaxPredictorId =
    static_cast<std::uint32_t>(codec::Predictor::kLinear);

}  // namespace

Status XtcWriter::add_frame(std::uint32_t step, float time_ps, const chem::Box& box,
                            std::span<const float> coords, codec::PerAtomCost* per_atom) {
  codec::CompressedFrame frame;
  if (version_ == codec::CodecVersion::kV1) {
    ADA_ASSIGN_OR_RETURN(frame, codec::compress(coords, params_, per_atom));
  } else {
    // Force a keyframe (intra decode entry point) at least every
    // keyframe_interval frames by dropping the prediction context.
    if (frames_since_keyframe_ >= keyframe_interval_) ctx_.reset();
    ADA_ASSIGN_OR_RETURN(frame, codec::compress_v2(coords, params_, ctx_, per_atom));
    frames_since_keyframe_ =
        frame.predictor == codec::Predictor::kIntra ? 1 : frames_since_keyframe_ + 1;
  }
  xdr::XdrWriter w;
  w.put_i32(kXtcMagic);
  w.put_u32(frame.atom_count);
  w.put_u32(step);
  w.put_f32(time_ps);
  for (float v : box.matrix) w.put_f32(v);
  // Coordinate block (ada3d variant; v2 adds the predictor word).
  if (version_ == codec::CodecVersion::kV1) {
    w.put_u32(kAda3dMagic);
  } else {
    w.put_u32(kAda3dV2Magic);
    w.put_u32(static_cast<std::uint32_t>(frame.predictor));
  }
  w.put_f32(frame.precision);
  for (int d = 0; d < 3; ++d) w.put_i32(frame.min_quantum[d]);
  for (int d = 0; d < 3; ++d) w.put_u32(frame.full_bits[d]);
  w.put_u32(frame.small_bits);
  w.put_u32(static_cast<std::uint32_t>(frame.payload_bits >> 32));
  w.put_u32(static_cast<std::uint32_t>(frame.payload_bits & 0xffffffffu));
  w.put_opaque(frame.payload);

  const auto& bytes = w.bytes();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  ++frame_count_;
  return Status::ok();
}

Result<std::optional<TrajFrame>> XtcReader::next() {
  if (pos_ == data_.size()) return std::optional<TrajFrame>{};
  xdr::XdrReader r(data_.subspan(pos_));

  ADA_ASSIGN_OR_RETURN(const std::int32_t magic, r.get_i32());
  if (magic != kXtcMagic) return corrupt_data("bad xtc frame magic: " + std::to_string(magic));

  codec::CompressedFrame frame;
  TrajFrame out;
  ADA_ASSIGN_OR_RETURN(frame.atom_count, r.get_u32());
  ADA_ASSIGN_OR_RETURN(out.step, r.get_u32());
  ADA_ASSIGN_OR_RETURN(out.time_ps, r.get_f32());
  for (float& v : out.box.matrix) {
    ADA_ASSIGN_OR_RETURN(v, r.get_f32());
  }
  ADA_ASSIGN_OR_RETURN(const std::uint32_t codec_magic, r.get_u32());
  const bool v2 = codec_magic == kAda3dV2Magic;
  if (!v2 && codec_magic != kAda3dMagic) {
    return corrupt_data("unsupported xtc coordinate codec: " + std::to_string(codec_magic));
  }
  if (v2) {
    ADA_ASSIGN_OR_RETURN(const std::uint32_t predictor, r.get_u32());
    if (predictor > kMaxPredictorId) {
      return corrupt_data("bad predictor id: " + std::to_string(predictor));
    }
    frame.predictor = static_cast<codec::Predictor>(predictor);
  }
  ADA_ASSIGN_OR_RETURN(frame.precision, r.get_f32());
  for (int d = 0; d < 3; ++d) {
    ADA_ASSIGN_OR_RETURN(frame.min_quantum[d], r.get_i32());
  }
  for (int d = 0; d < 3; ++d) {
    ADA_ASSIGN_OR_RETURN(const std::uint32_t bits, r.get_u32());
    if (bits > 32) return corrupt_data("bad full_bits field");
    frame.full_bits[d] = static_cast<std::uint8_t>(bits);
  }
  ADA_ASSIGN_OR_RETURN(const std::uint32_t small_bits, r.get_u32());
  if (small_bits > (v2 ? 32u : 31u)) return corrupt_data("bad small_bits field");
  frame.small_bits = static_cast<std::uint8_t>(small_bits);
  ADA_ASSIGN_OR_RETURN(const std::uint32_t bits_hi, r.get_u32());
  ADA_ASSIGN_OR_RETURN(const std::uint32_t bits_lo, r.get_u32());
  frame.payload_bits = (static_cast<std::uint64_t>(bits_hi) << 32) | bits_lo;
  ADA_ASSIGN_OR_RETURN(frame.payload, r.get_opaque());

  if (v2) {
    ADA_ASSIGN_OR_RETURN(out.coords, codec::decompress_v2(frame, ctx_));
  } else {
    ctx_.reset();  // a v1 frame carries no temporal context forward
    ADA_ASSIGN_OR_RETURN(out.coords, codec::decompress(frame));
  }
  pos_ += r.position();
  return std::optional<TrajFrame>(std::move(out));
}

Result<bool> XtcReader::skip() {
  if (pos_ == data_.size()) return false;
  xdr::XdrReader r(data_.subspan(pos_));
  ADA_ASSIGN_OR_RETURN(const std::int32_t magic, r.get_i32());
  if (magic != kXtcMagic) return corrupt_data("bad xtc frame magic: " + std::to_string(magic));
  // Fixed words between the magic and the codec magic: natoms, step, time,
  // box (9) = 12.
  for (std::size_t i = 0; i < 12; ++i) {
    ADA_RETURN_IF_ERROR(r.get_u32().status());
  }
  ADA_ASSIGN_OR_RETURN(const std::uint32_t codec_magic, r.get_u32());
  if (codec_magic == kAda3dV2Magic) {
    ADA_RETURN_IF_ERROR(r.get_u32().status());  // predictor
  } else if (codec_magic != kAda3dMagic) {
    return corrupt_data("unsupported xtc coordinate codec: " + std::to_string(codec_magic));
  }
  // precision, mins (3), full_bits (3), small_bits, payload_bits (2) = 10.
  for (std::size_t i = 0; i < 10; ++i) {
    ADA_RETURN_IF_ERROR(r.get_u32().status());
  }
  ADA_RETURN_IF_ERROR(r.get_opaque().status());  // payload
  pos_ += r.position();
  ctx_.reset();  // the skipped frame is missing from the temporal context
  return true;
}

Result<std::vector<TrajFrame>> read_all_xtc(std::span<const std::uint8_t> data) {
  std::vector<TrajFrame> frames;
  XtcReader reader(data);
  while (true) {
    ADA_ASSIGN_OR_RETURN(auto frame, reader.next());
    if (!frame.has_value()) break;
    frames.push_back(std::move(*frame));
  }
  return frames;
}

Result<std::vector<XtcIndexEntry>> build_xtc_index(std::span<const std::uint8_t> data) {
  std::vector<XtcIndexEntry> index;
  std::size_t pos = 0;
  while (pos < data.size()) {
    xdr::XdrReader r(data.subspan(pos));
    ADA_ASSIGN_OR_RETURN(const std::int32_t magic, r.get_i32());
    if (magic != kXtcMagic) return corrupt_data("bad xtc frame magic in index pass");
    XtcIndexEntry entry;
    entry.offset = pos;
    ADA_RETURN_IF_ERROR(r.get_u32().status());  // natoms
    ADA_ASSIGN_OR_RETURN(entry.step, r.get_u32());
    ADA_ASSIGN_OR_RETURN(entry.time_ps, r.get_f32());
    // Skip the box (9 words), then the codec magic (+ predictor for v2),
    // then precision, mins (3), full_bits (3), small_bits, payload_bits (2).
    for (int i = 0; i < 9; ++i) {
      ADA_RETURN_IF_ERROR(r.get_u32().status());
    }
    ADA_ASSIGN_OR_RETURN(const std::uint32_t codec_magic, r.get_u32());
    if (codec_magic == kAda3dV2Magic) {
      ADA_RETURN_IF_ERROR(r.get_u32().status());  // predictor
    } else if (codec_magic != kAda3dMagic) {
      return corrupt_data("unsupported xtc coordinate codec in index pass");
    }
    for (int i = 0; i < 10; ++i) {
      ADA_RETURN_IF_ERROR(r.get_u32().status());
    }
    ADA_RETURN_IF_ERROR(r.get_opaque().status());
    index.push_back(entry);
    pos += r.position();
  }
  return index;
}

namespace {

std::uint32_t load_u32_be(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) | (std::uint32_t{p[2]} << 8) |
         std::uint32_t{p[3]};
}

// Fixed-size prelude of every v1 frame: magic, natoms, step, time, box (9),
// codec magic, precision, min_quantum (3), full_bits (3), small_bits,
// payload_bits (2) -- 24 XDR words before the counted opaque payload.  A v2
// frame inserts the predictor word after the codec magic: 25 words.
constexpr std::size_t kXtcPreludeBytes = 24 * 4;
constexpr std::size_t kXtcV2PreludeBytes = 25 * 4;
constexpr std::size_t kXtcCodecMagicOffset = 13 * 4;
constexpr std::size_t kXtcPredictorOffset = 14 * 4;

}  // namespace

Result<std::vector<XtcFrameExtent>> scan_xtc_extents(std::span<const std::uint8_t> data) {
  std::vector<XtcFrameExtent> extents;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kXtcPreludeBytes + 4) {
      return corrupt_data("truncated xtc frame header at offset " + std::to_string(pos));
    }
    const auto magic = static_cast<std::int32_t>(load_u32_be(data.data() + pos));
    if (magic != kXtcMagic) return corrupt_data("bad xtc frame magic: " + std::to_string(magic));
    const std::uint32_t codec_magic = load_u32_be(data.data() + pos + kXtcCodecMagicOffset);
    std::size_t prelude = kXtcPreludeBytes;
    bool intra = true;
    if (codec_magic == kAda3dV2Magic) {
      prelude = kXtcV2PreludeBytes;
      if (data.size() - pos < prelude + 4) {
        return corrupt_data("truncated xtc v2 frame header at offset " + std::to_string(pos));
      }
      const std::uint32_t predictor = load_u32_be(data.data() + pos + kXtcPredictorOffset);
      if (predictor > kMaxPredictorId) {
        return corrupt_data("bad predictor id: " + std::to_string(predictor));
      }
      intra = predictor == static_cast<std::uint32_t>(codec::Predictor::kIntra);
    } else if (codec_magic != kAda3dMagic) {
      return corrupt_data("unsupported xtc coordinate codec: " + std::to_string(codec_magic));
    }
    const std::size_t payload = load_u32_be(data.data() + pos + prelude);
    const std::size_t size = prelude + 4 + payload + xdr::padding_for(payload);
    if (data.size() - pos < size) {
      return corrupt_data("truncated xtc frame payload at offset " + std::to_string(pos));
    }
    XtcFrameExtent extent;
    extent.offset = pos;
    extent.size = size;
    extent.atom_count = load_u32_be(data.data() + pos + 4);
    extent.intra = intra;
    extents.push_back(extent);
    pos += size;
  }
  return extents;
}

Result<TrajFrame> read_xtc_frame_at(std::span<const std::uint8_t> data, std::size_t offset) {
  if (offset >= data.size()) return out_of_range("xtc frame offset beyond image");
  XtcReader reader(data.subspan(offset));
  ADA_ASSIGN_OR_RETURN(auto frame, reader.next());
  if (!frame.has_value()) return corrupt_data("no frame at the given offset");
  return std::move(*frame);
}

std::vector<float> extract_subset(std::span<const float> coords, const chem::Selection& selection) {
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(selection.count()) * 3);
  for (const chem::Run& run : selection.runs()) {
    ADA_CHECK(static_cast<std::size_t>(run.end) * 3 <= coords.size());
    out.insert(out.end(), coords.begin() + static_cast<std::ptrdiff_t>(run.begin) * 3,
               coords.begin() + static_cast<std::ptrdiff_t>(run.end) * 3);
  }
  return out;
}

}  // namespace ada::formats
