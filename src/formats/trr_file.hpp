// TRR trajectory files: GROMACS's uncompressed XDR trajectory container.
//
// The paper's "D" scenarios load trajectories "w/o compression" (Table 3).
// Next to the repository-native RAW container (raw_traj.hpp, fixed-stride
// random access), this module implements the interchange format those
// datasets would really ship in: the GROMACS .trr layout -- an XDR stream of
// frames, each with magic 1993, the "GMX_trn_file" version string, a block
// -size header, the box, and float coordinate/velocity/force blocks.  Only
// the single-precision variant is produced; velocities and forces are
// optional, exactly as in GROMACS.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "chem/system.hpp"
#include "common/result.hpp"
#include "formats/xtc_file.hpp"

namespace ada::formats {

/// Frame magic, identical to GROMACS trn.
constexpr std::int32_t kTrrMagic = 1993;
/// Version string, identical to GROMACS trn.
inline constexpr const char* kTrrVersion = "GMX_trn_file";

/// One decoded TRR frame (coordinates always; velocities/forces optional).
struct TrrFrame {
  std::uint32_t step = 0;
  float time_ps = 0.0f;
  float lambda = 0.0f;  // free-energy coupling parameter, carried verbatim
  chem::Box box;
  std::vector<float> coords;                 // xyz triplets, nm
  std::optional<std::vector<float>> velocities;
  std::optional<std::vector<float>> forces;

  std::uint32_t atom_count() const noexcept {
    return static_cast<std::uint32_t>(coords.size() / 3);
  }

  /// View as the format-agnostic TrajFrame (drops velocities/forces).
  TrajFrame to_traj_frame() const;
};

/// Streaming writer (in-memory image).
class TrrWriter {
 public:
  Status add_frame(const TrrFrame& frame);

  std::size_t frame_count() const noexcept { return frame_count_; }
  std::size_t size_bytes() const noexcept { return buffer_.size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t frame_count_ = 0;
};

/// Streaming reader.
class TrrReader {
 public:
  explicit TrrReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Decode the next frame; std::nullopt cleanly at end of stream.
  Result<std::optional<TrrFrame>> next();

  std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Decode every frame.
Result<std::vector<TrrFrame>> read_all_trr(std::span<const std::uint8_t> data);

/// True if `data` begins with a TRR frame header (format sniffing).
bool looks_like_trr(std::span<const std::uint8_t> data);

}  // namespace ada::formats
