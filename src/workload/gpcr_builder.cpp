#include "workload/gpcr_builder.hpp"

#include <array>
#include <cmath>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ada::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Amino-acid template: name + atom names (backbone first).  Atom counts
/// span the realistic 7..24 range so truncation behaves like missing density.
struct ResidueTemplate {
  std::string_view name;
  std::vector<std::string_view> atoms;
};

const std::vector<ResidueTemplate>& protein_templates() {
  static const std::vector<ResidueTemplate> kTemplates = {
      {"LEU", {"N", "H", "CA", "HA", "CB", "HB1", "HB2", "CG", "HG", "CD1", "HD11", "HD12",
               "HD13", "CD2", "HD21", "HD22", "HD23", "C", "O"}},
      {"ALA", {"N", "H", "CA", "HA", "CB", "HB1", "HB2", "HB3", "C", "O"}},
      {"PHE", {"N", "H", "CA", "HA", "CB", "HB1", "HB2", "CG", "CD1", "HD1", "CD2", "HD2",
               "CE1", "HE1", "CE2", "HE2", "CZ", "HZ", "C", "O"}},
      {"VAL", {"N", "H", "CA", "HA", "CB", "HB", "CG1", "HG11", "HG12", "HG13", "CG2",
               "HG21", "HG22", "HG23", "C", "O"}},
      {"SER", {"N", "H", "CA", "HA", "CB", "HB1", "HB2", "OG", "HG", "C", "O"}},
      {"ILE", {"N", "H", "CA", "HA", "CB", "HB", "CG1", "HG11", "HG12", "CG2", "HG21",
               "HG22", "HG23", "CD", "HD1", "HD2", "HD3", "C", "O"}},
      {"GLY", {"N", "H", "CA", "HA1", "HA2", "C", "O"}},
      {"THR", {"N", "H", "CA", "HA", "CB", "HB", "OG1", "HG1", "CG2", "HG21", "HG22",
               "HG23", "C", "O"}},
      {"MET", {"N", "H", "CA", "HA", "CB", "HB1", "HB2", "CG", "HG1", "HG2", "SD", "CE",
               "HE1", "HE2", "HE3", "C", "O"}},
      {"TRP", {"N", "H", "CA", "HA", "CB", "HB1", "HB2", "CG", "CD1", "HD1", "CD2", "NE1",
               "HE1", "CE2", "CE3", "HE3", "CZ2", "HZ2", "CZ3", "HZ3", "CH2", "HH2", "C", "O"}},
  };
  return kTemplates;
}

/// POPC-like lipid: choline/phosphate head, glycerol, two acyl tails.
const std::vector<std::string_view>& lipid_atom_names() {
  static const std::vector<std::string_view> kNames = {
      // head group (10)
      "N", "C11", "C12", "C13", "C14", "P", "O11", "O12", "O13", "O14",
      // glycerol (4)
      "C1", "C2", "C3", "O21",
      // sn-1 tail (19)
      "C21", "C22", "C23", "C24", "C25", "C26", "C27", "C28", "C29", "C210",
      "C211", "C212", "C213", "C214", "C215", "C216", "C217", "C218", "O22",
      // sn-2 tail (19)
      "C31", "C32", "C33", "C34", "C35", "C36", "C37", "C38", "C39", "C310",
      "C311", "C312", "C313", "C314", "C315", "C316", "C317", "C318", "O31"};
  return kNames;  // 52 atoms
}
constexpr std::uint32_t kLipidAtoms = 52;

struct BuildCursor {
  chem::System* system;
  std::uint32_t next_serial = 1;
  std::uint32_t next_residue_seq = 1;
};

void emit_atom(BuildCursor& cur, std::string_view name, std::string_view residue, char chain,
               std::uint32_t residue_seq, bool hetatm, float x, float y, float z) {
  chem::Atom atom;
  atom.serial = cur.next_serial++;
  atom.name = std::string(name);
  atom.residue_name = std::string(residue);
  atom.chain_id = chain;
  atom.residue_seq = residue_seq;
  atom.hetatm = hetatm;
  cur.system->add_atom(std::move(atom), x, y, z);
}

/// Alpha-helical backbone point for residue k of a helix at (cx, cy).
void helix_backbone(float cx, float cy, float z0, std::uint32_t k, float* out) {
  constexpr float kRisePerResidue = 0.15f;   // nm
  constexpr float kHelixRadius = 0.23f;      // nm
  constexpr float kTurnPerResidue = 1.745f;  // 100 degrees in radians
  const float angle = kTurnPerResidue * static_cast<float>(k);
  out[0] = cx + kHelixRadius * std::cos(angle);
  out[1] = cy + kHelixRadius * std::sin(angle);
  out[2] = z0 + kRisePerResidue * static_cast<float>(k);
}

}  // namespace

chem::System GpcrSystemBuilder::build() const {
  ADA_CHECK(spec_.protein_atoms + spec_.ligand_atoms + kLipidAtoms * spec_.lipid_molecules + 23 <=
            spec_.total_atoms);
  chem::System system;
  system.set_box(chem::Box::orthorhombic(spec_.box_xy_nm, spec_.box_xy_nm, spec_.box_z_nm));
  BuildCursor cur{&system};
  Rng rng(spec_.seed);

  const float cx0 = spec_.box_xy_nm / 2;
  const float cy0 = spec_.box_xy_nm / 2;
  const float cz0 = spec_.box_z_nm / 2;

  // --- protein: alpha-helix bundle, exactly spec_.protein_atoms atoms -------
  {
    constexpr std::uint32_t kResiduesPerHelix = 30;
    // Helix centers on concentric rings around the box axis.
    std::vector<std::pair<float, float>> centers;
    centers.emplace_back(cx0, cy0);
    for (int ring = 1; centers.size() < 4096; ++ring) {
      const float radius = 0.95f * static_cast<float>(ring);
      const int count = 6 * ring;
      for (int i = 0; i < count; ++i) {
        const float a = static_cast<float>(kTwoPi * i / count);
        centers.emplace_back(cx0 + radius * std::cos(a), cy0 + radius * std::sin(a));
      }
      if (centers.size() >= 1024) break;  // far more than any spec needs
    }

    std::uint32_t emitted = 0;
    std::uint32_t helix = 0;
    std::uint32_t template_index = 0;
    char chain = 'A';
    std::uint32_t chain_residues = 0;
    while (emitted < spec_.protein_atoms) {
      ADA_CHECK(helix < centers.size());
      const auto [hx, hy] = centers[helix];
      const float z0 = cz0 - 0.15f * kResiduesPerHelix / 2;
      for (std::uint32_t k = 0; k < kResiduesPerHelix && emitted < spec_.protein_atoms; ++k) {
        const ResidueTemplate& tpl = protein_templates()[template_index];
        template_index =
            (template_index + 1) % static_cast<std::uint32_t>(protein_templates().size());
        const std::uint32_t residue_seq = cur.next_residue_seq++;
        float backbone[3];
        helix_backbone(hx, hy, z0, k, backbone);
        // Sidechain random walk starts at the backbone point.
        float sx = backbone[0];
        float sy = backbone[1];
        float sz = backbone[2];
        for (std::size_t a = 0; a < tpl.atoms.size() && emitted < spec_.protein_atoms; ++a) {
          float x;
          float y;
          float z;
          if (a < 4) {  // backbone-ish atoms hug the helix path
            x = backbone[0] + static_cast<float>(rng.normal(0.0, 0.04));
            y = backbone[1] + static_cast<float>(rng.normal(0.0, 0.04));
            z = backbone[2] + static_cast<float>(rng.normal(0.0, 0.04));
          } else {  // sidechain atoms walk outward in ~bond-length steps
            sx += static_cast<float>(rng.normal(0.0, 0.08));
            sy += static_cast<float>(rng.normal(0.0, 0.08));
            sz += static_cast<float>(rng.normal(0.0, 0.08));
            x = sx;
            y = sy;
            z = sz;
          }
          emit_atom(cur, tpl.atoms[a], tpl.name, chain, residue_seq, false, x, y, z);
          ++emitted;
        }
        if (++chain_residues == 400) {  // PDB-style chain break
          ++chain;
          chain_residues = 0;
        }
      }
      ++helix;
    }
  }

  // --- ligand (optional): HET group buried at the bundle center -------------
  for (std::uint32_t a = 0; a < spec_.ligand_atoms; ++a) {
    const std::uint32_t residue_seq = (a == 0) ? cur.next_residue_seq++ : cur.next_residue_seq - 1;
    emit_atom(cur, a % 3 == 0 ? "C" : (a % 3 == 1 ? "O" : "N"), "LIG", 'L', residue_seq, true,
              cx0 + static_cast<float>(rng.normal(0.0, 0.25)),
              cy0 + static_cast<float>(rng.normal(0.0, 0.25)),
              cz0 + static_cast<float>(rng.normal(0.0, 0.25)));
  }

  // --- lipid bilayer ---------------------------------------------------------
  {
    const std::uint32_t per_leaflet = (spec_.lipid_molecules + 1) / 2;
    const auto grid = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(std::max(per_leaflet, 1u)))));
    const float spacing = spec_.box_xy_nm / static_cast<float>(grid + 1);
    for (std::uint32_t m = 0; m < spec_.lipid_molecules; ++m) {
      const bool upper = m < per_leaflet;
      const std::uint32_t slot = upper ? m : m - per_leaflet;
      const float lx = spacing * static_cast<float>(slot % grid + 1) +
                       static_cast<float>(rng.normal(0.0, 0.05));
      const float ly = spacing * static_cast<float>(slot / grid + 1) +
                       static_cast<float>(rng.normal(0.0, 0.05));
      const float head_z = cz0 + (upper ? 2.1f : -2.1f);
      const float direction = upper ? -1.0f : 1.0f;  // tails point to the midplane
      const std::uint32_t residue_seq = cur.next_residue_seq++;
      const auto& names = lipid_atom_names();
      for (std::size_t a = 0; a < names.size(); ++a) {
        float x = lx;
        float y = ly;
        float z = head_z;
        if (a < 14) {  // head + glycerol cluster near the leaflet plane
          x += static_cast<float>(rng.normal(0.0, 0.12));
          y += static_cast<float>(rng.normal(0.0, 0.12));
          z += static_cast<float>(rng.normal(0.0, 0.10));
        } else {  // the two tails descend toward the midplane
          const std::size_t tail_pos = (a - 14) % 19;
          const bool second_tail = (a - 14) >= 19;
          x += (second_tail ? 0.25f : -0.25f) + static_cast<float>(rng.normal(0.0, 0.06));
          y += static_cast<float>(rng.normal(0.0, 0.06));
          z += direction * 0.105f * static_cast<float>(tail_pos + 1) +
               static_cast<float>(rng.normal(0.0, 0.04));
        }
        emit_atom(cur, names[a], "POPC", 'M', residue_seq, false, x, y, z);
      }
    }
  }

  // --- solvent + ions: fill to the exact total -------------------------------
  const std::uint32_t used = cur.next_serial - 1;
  ADA_CHECK(used <= spec_.total_atoms);
  const std::uint32_t remaining = spec_.total_atoms - used;
  constexpr std::uint32_t kMinIons = 20;
  ADA_CHECK(remaining >= kMinIons);
  const std::uint32_t water_atoms = ((remaining - kMinIons) / 3) * 3;
  const std::uint32_t water_molecules = water_atoms / 3;
  const std::uint32_t ion_count = remaining - water_atoms;

  // Waters occupy the two slabs outside the membrane (|z - cz0| > 2.3 nm).
  const float slab = spec_.box_z_nm / 2 - 2.3f;
  ADA_CHECK(slab > 0.3f);
  const double slab_volume = 2.0 * static_cast<double>(spec_.box_xy_nm) *
                             static_cast<double>(spec_.box_xy_nm) * static_cast<double>(slab);
  const float spacing =
      static_cast<float>(std::cbrt(slab_volume / std::max<double>(water_molecules, 1)));
  const auto nx = static_cast<std::uint32_t>(spec_.box_xy_nm / spacing);
  const auto nz = std::max(1u, static_cast<std::uint32_t>(slab / spacing));
  std::uint32_t placed = 0;
  for (std::uint32_t w = 0; w < water_molecules; ++w) {
    const std::uint32_t cell = placed++;
    const std::uint32_t layer = cell / (nx * nx);
    const std::uint32_t in_layer = cell % (nx * nx);
    const bool top = (layer % 2) == 0;
    const std::uint32_t level = layer / 2;
    const float ox = spacing * static_cast<float>(in_layer % nx) + spacing / 2;
    const float oy = spacing * static_cast<float>(in_layer / nx) + spacing / 2;
    const float oz = top ? cz0 + 2.3f + spacing * static_cast<float>(level % nz) + spacing / 2
                         : cz0 - 2.3f - spacing * static_cast<float>(level % nz) - spacing / 2;
    const std::uint32_t residue_seq = cur.next_residue_seq++;
    const float jx = ox + static_cast<float>(rng.normal(0.0, 0.03));
    const float jy = oy + static_cast<float>(rng.normal(0.0, 0.03));
    const float jz = oz + static_cast<float>(rng.normal(0.0, 0.03));
    emit_atom(cur, "OW", "SOL", 'W', residue_seq, false, jx, jy, jz);
    emit_atom(cur, "HW1", "SOL", 'W', residue_seq, false, jx + 0.095f, jy + 0.024f, jz);
    emit_atom(cur, "HW2", "SOL", 'W', residue_seq, false, jx - 0.024f, jy + 0.095f, jz);
  }

  for (std::uint32_t i = 0; i < ion_count; ++i) {
    const bool sodium = (i % 2) == 0;
    const bool top = rng.uniform() < 0.5;
    const float z = top ? static_cast<float>(rng.uniform(cz0 + 2.4f, spec_.box_z_nm - 0.2f))
                        : static_cast<float>(rng.uniform(0.2f, cz0 - 2.4f));
    emit_atom(cur, sodium ? "NA" : "CL", sodium ? "NA" : "CL", 'I', cur.next_residue_seq++, true,
              static_cast<float>(rng.uniform(0.2f, spec_.box_xy_nm - 0.2f)),
              static_cast<float>(rng.uniform(0.2f, spec_.box_xy_nm - 0.2f)), z);
  }

  ADA_CHECK(system.atom_count() == spec_.total_atoms);
  ADA_CHECK(system.count_category(chem::Category::kProtein) == spec_.protein_atoms);
  return system;
}

}  // namespace ada::workload
