#include "workload/trajectory_gen.hpp"

namespace ada::workload {

TrajectoryGenerator::TrajectoryGenerator(const chem::System& system, DynamicsSpec spec)
    : system_(system), spec_(spec), rng_(spec.seed), positions_(system.reference_coords()) {
  sigma_per_atom_.reserve(system.atom_count());
  for (std::uint32_t i = 0; i < system.atom_count(); ++i) {
    switch (system.category(i)) {
      case chem::Category::kProtein:
      case chem::Category::kNucleic:
      case chem::Category::kLigand:
        sigma_per_atom_.push_back(spec_.protein_sigma);
        break;
      case chem::Category::kLipid:
        sigma_per_atom_.push_back(spec_.lipid_sigma);
        break;
      case chem::Category::kWater:
        sigma_per_atom_.push_back(spec_.water_sigma);
        break;
      case chem::Category::kIon:
        sigma_per_atom_.push_back(spec_.ion_sigma);
        break;
      case chem::Category::kOther:
        sigma_per_atom_.push_back(spec_.water_sigma);
        break;
    }
  }
}

std::span<const float> TrajectoryGenerator::next_frame() {
  const std::vector<float>& ref = system_.reference_coords();
  const float pull = spec_.restore_rate;
  for (std::uint32_t i = 0; i < system_.atom_count(); ++i) {
    const float sigma = sigma_per_atom_[i];
    for (std::uint32_t d = 0; d < 3; ++d) {
      const std::size_t j = std::size_t{3} * i + d;
      const float noise = static_cast<float>(rng_.normal()) * sigma;
      positions_[j] += pull * (ref[j] - positions_[j]) + noise;
    }
  }
  ++frame_index_;
  step_ += spec_.md_steps_per_frame;
  time_ps_ += spec_.time_step_ps;
  return positions_;
}

}  // namespace ada::workload
