#include "workload/spec.hpp"

namespace ada::workload {

const std::uint32_t FrameSeries::kSsdServer[8] = {626,  1'251, 1'877, 2'503,
                                                  3'129, 3'754, 4'380, 5'006};

const std::uint32_t FrameSeries::kCluster[10] = {626,   1'251, 1'877, 2'503, 3'129,
                                                 3'754, 4'380, 5'006, 5'631, 6'256};

const std::uint32_t FrameSeries::kFatNode[13] = {
    62'560,    187'680,   312'800,   437'920,   625'600,   938'400,   1'251'200,
    1'564'000, 1'876'800, 2'502'400, 3'440'800, 4'379'200, 5'004'800};

const std::uint32_t FrameSeries::kTable1[3] = {626, 1'251, 5'006};

}  // namespace ada::workload
