// Workload specifications: the synthetic stand-in for the paper's GPCR data.
//
// The paper evaluates ADA on trajectories of the human cannabinoid receptor
// CB1 (Hua et al. 2016).  We cannot redistribute that data, so the workload
// module builds a synthetic membrane-protein system whose *sizes* match the
// paper's measured tables:
//
//   Table 2 (SSD server):  626 frames == 327 MB raw == 100 MB compressed,
//                          protein subset 139 MB decompressed;
//   => 43,520 atoms/frame (12 B/atom raw + 44 B frame header)
//   => 18,500 protein atoms (42.5% of atoms; 42.5% of raw bytes).
//
// Composition beyond those two constraints follows a typical GPCR membrane
// simulation: a POPC bilayer (~25% of atoms), TIP3P-like solvent, ~0.15 M
// NaCl, and optionally a bound ligand inside the receptor.
#pragma once

#include <cstdint>
#include <string>

namespace ada::workload {

/// Parameters of the synthetic GPCR system.
struct GpcrSpec {
  std::uint32_t total_atoms = 43'520;
  std::uint32_t protein_atoms = 18'500;
  std::uint32_t lipid_molecules = 200;   // POPC, 52 atoms each
  std::uint32_t ligand_atoms = 0;        // 0 = no ligand; >0 inserts a HET group
  float box_xy_nm = 7.8f;                // lateral box edge
  float box_z_nm = 9.0f;                 // normal to the membrane
  std::uint64_t seed = 20210809;         // build-time randomness

  /// The paper's GPCR system (Tables 1/2/6 arithmetic).
  static GpcrSpec paper_default() { return GpcrSpec{}; }

  /// A small system for fast functional tests (~2.2k atoms, same layout).
  static GpcrSpec tiny() {
    GpcrSpec s;
    s.total_atoms = 2'176;
    s.protein_atoms = 925;
    s.lipid_molecules = 10;
    s.box_xy_nm = 3.2f;
    s.box_z_nm = 7.0f;
    return s;
  }
};

/// Parameters of the synthetic dynamics (units: nm, frames).
///
/// Atoms follow an Ornstein-Uhlenbeck process around their reference
/// positions: bounded wander, frame-to-frame displacements comparable to a
/// 2 ps MD sampling interval.  Per-category amplitudes reflect physical
/// mobility (solvent diffuses, the protein core breathes).
struct DynamicsSpec {
  float protein_sigma = 0.006f;  // per-frame displacement scale
  float lipid_sigma = 0.012f;
  float water_sigma = 0.022f;
  float ion_sigma = 0.020f;
  float restore_rate = 0.02f;    // OU pull-back toward the reference position
  float time_step_ps = 2.0f;     // trajectory sampling interval
  std::uint32_t md_steps_per_frame = 1000;
  std::uint64_t seed = 7;
};

/// Frame counts used by the paper's experiment series.
struct FrameSeries {
  /// Table 2 / Fig 7 (SSD server): 626 .. 5,006 frames.
  static const std::uint32_t kSsdServer[8];
  /// Fig 9 (cluster): 626 .. 6,256 frames.
  static const std::uint32_t kCluster[10];
  /// Table 6 / Fig 10 (fat node): 62,560 .. 5,004,800 frames.
  static const std::uint32_t kFatNode[13];
  /// Table 1 sample files.
  static const std::uint32_t kTable1[3];
};

}  // namespace ada::workload
