// Synthetic GPCR membrane-protein system builder.
//
// Produces a chem::System with the canonical GROMACS file ordering --
// protein chain(s) first, then the optional ligand, then lipids, solvent and
// ions -- so that the categorizer's run-lists have the same shape they would
// for the paper's real data.  Geometry is simplified but physically sane
// (helical bundle, bilayer slab, solvent grid): close enough that bond
// search, VDW radii and compression behave like real structures.
#pragma once

#include "chem/system.hpp"
#include "workload/spec.hpp"

namespace ada::workload {

class GpcrSystemBuilder {
 public:
  explicit GpcrSystemBuilder(GpcrSpec spec) : spec_(spec) {}

  /// Build the full system.  Atom counts are exact: the total and the
  /// protein subset match the spec to the atom (the last protein residue is
  /// truncated if needed, like a real structure with unresolved atoms).
  chem::System build() const;

 private:
  GpcrSpec spec_;
};

}  // namespace ada::workload
