// Trajectory generation: Ornstein-Uhlenbeck dynamics over a built system.
//
// Produces frame after frame of coordinates with MD-like statistics: small
// frame-to-frame displacements (so the codec reaches xtc-like ratios),
// category-dependent mobility, and bounded wander (no box wrapping, which
// would create compression-hostile jumps the real workflow also avoids by
// unwrapping trajectories before visualization).
#pragma once

#include <span>
#include <vector>

#include "chem/system.hpp"
#include "common/rng.hpp"
#include "workload/spec.hpp"

namespace ada::workload {

class TrajectoryGenerator {
 public:
  TrajectoryGenerator(const chem::System& system, DynamicsSpec spec);

  /// Advance the dynamics and return the new frame's coordinates
  /// (atom_count*3 floats, valid until the next call).
  std::span<const float> next_frame();

  /// MD step number of the most recent frame.
  std::uint32_t current_step() const noexcept { return step_; }

  /// Simulation time of the most recent frame, picoseconds.
  float current_time_ps() const noexcept { return time_ps_; }

  std::uint32_t frame_index() const noexcept { return frame_index_; }

 private:
  const chem::System& system_;
  DynamicsSpec spec_;
  Rng rng_;
  std::vector<float> positions_;       // current coordinates
  std::vector<float> sigma_per_atom_;  // category-resolved mobility
  std::uint32_t step_ = 0;
  float time_ps_ = 0.0f;
  std::uint32_t frame_index_ = 0;
};

}  // namespace ada::workload
