// The paper's three evaluation platforms (Sections 4.1-4.3) as model configs.
#pragma once

#include <optional>
#include <string>

#include "platform/constants.hpp"
#include "storage/device.hpp"
#include "storage/energy.hpp"
#include "storage/filesystem_model.hpp"

namespace ada::platform {

/// Cluster-side parameters (paper Table 4) for the 9-node platform.
struct ClusterConfig {
  unsigned compute_nodes = 3;
  unsigned hdd_storage_nodes = 3;
  unsigned ssd_storage_nodes = 3;
  unsigned disks_per_node = 2;
  double nic_bandwidth = 4.5e9;      // InfiniBand QDR class
  double backplane_bandwidth = 40e9;
};

struct Platform {
  enum class Kind { kLocalFs, kCluster };

  std::string name;
  Kind kind = Kind::kLocalFs;

  // kLocalFs: the node's file system + device.
  std::optional<storage::LocalFileSystemModel> local_fs;

  // kCluster: fabric + node counts (PVFS instances are built per scenario).
  std::optional<ClusterConfig> cluster;

  // Compute-node memory.
  double dram_bytes = 0;
  double os_reserve_fraction = 0.028;   // kernel + daemons slice of DRAM
  /// Streaming window for compressed input: VMD reads .xtc through the page
  /// cache rather than materializing the file, so only this much of the
  /// compressed image is resident at once (see EXPERIMENTS.md note on the
  /// Section 4.3 kill-point arithmetic).
  double page_cache_window = 0;

  // Memory-pressure slowdown: CPU work at memory ratio r > thrash_threshold
  // stretches by min(thrash_max_factor, exp(thrash_k * (r - threshold)))
  // (page-cache starvation + swap churn near capacity); phases whose memory
  // grows integrate the factor along their trajectory.
  double thrash_threshold = 0.70;
  double thrash_k = 21.0;
  double thrash_max_factor = 64.0;

  storage::PowerSpec power = storage::PowerSpec::paper_node();
  unsigned metered_nodes = 1;

  CpuRates cpu = CpuRates::paper_default();

  /// Section 4.1: Xeon E5-2603v4, 16 GB DRAM, NVMe SSD, CentOS 6.10, ext4.
  static Platform ssd_server();
  /// Section 4.2 / Table 4: nine nodes, OrangeFS, 3 HDD + 3 SSD storage nodes.
  static Platform small_cluster();
  /// Section 4.3 / Table 5: Xeon E7-4820v3, 1007 GB DRAM, RAID-50 HDD, XFS.
  static Platform fat_node();
};

}  // namespace ada::platform
