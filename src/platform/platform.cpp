#include "platform/platform.hpp"

#include "common/units.hpp"

namespace ada::platform {

Platform Platform::ssd_server() {
  Platform p;
  p.name = "ssd-server";
  p.kind = Kind::kLocalFs;
  p.local_fs.emplace(storage::FsParams::ext4(), storage::DeviceSpec::nvme_ssd_256gb());
  p.dram_bytes = 16 * kGB;
  p.page_cache_window = 8 * kGB;
  return p;
}

Platform Platform::small_cluster() {
  Platform p;
  p.name = "small-cluster";
  p.kind = Kind::kCluster;
  p.cluster.emplace();
  p.dram_bytes = 16 * kGB;       // per compute node
  p.page_cache_window = 8 * kGB;
  p.metered_nodes = 9;           // whole cluster drew power in Table 4
  return p;
}

Platform Platform::fat_node() {
  Platform p;
  p.name = "fat-node";
  p.kind = Kind::kLocalFs;
  p.local_fs.emplace(storage::FsParams::xfs(), storage::DeviceSpec::raid50_wd_hdd(10));
  p.dram_bytes = 1007 * kGB;     // paper Table 5: DDR-4 1,007 GB
  p.page_cache_window = 32 * kGB;
  return p;
}

}  // namespace ada::platform
