#include "platform/constants.hpp"

#include "codec/coord_codec.hpp"
#include "common/check.hpp"
#include "formats/xtc_file.hpp"
#include "common/stopwatch.hpp"
#include "vmd/geometry.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::platform {

CpuRates calibrate_on_host() {
  CpuRates rates;

  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  workload::TrajectoryGenerator gen(system, workload::DynamicsSpec{});

  // Decompress rate: encode a batch of frames once, then time decode passes.
  std::vector<codec::CompressedFrame> compressed;
  double raw_bytes = 0;
  for (int f = 0; f < 24; ++f) {
    const auto coords = gen.next_frame();
    compressed.push_back(codec::compress(coords, {}).value());
    raw_bytes += static_cast<double>(coords.size()) * 4.0;
  }
  Stopwatch decode_watch;
  int passes = 0;
  while (decode_watch.elapsed_seconds() < 0.2) {
    for (const auto& frame : compressed) {
      const auto out = codec::decompress(frame);
      ADA_CHECK(out.is_ok());
    }
    ++passes;
  }
  rates.decompress_bps = raw_bytes * passes / decode_watch.elapsed_seconds();

  // Render rate: per-frame geometry update.  VMD computes bonds once per
  // structure; the recurring per-frame render work is streaming coordinates
  // into transformed vertex buffers, so that is what the constant models.
  const auto protein = system.selection_for(chem::Category::kProtein);
  const auto coords = formats::extract_subset(system.reference_coords(), protein);
  const double subset_bytes = static_cast<double>(coords.size()) * 4.0;
  std::vector<float> vertices(coords.size());
  Stopwatch render_watch;
  passes = 0;
  float sink = 0.0f;
  while (render_watch.elapsed_seconds() < 0.2) {
    // Model-view transform per vertex (scale + translate per axis).
    for (std::size_t i = 0; i < coords.size(); ++i) {
      vertices[i] = coords[i] * 37.5f + 240.0f;
    }
    sink += vertices[static_cast<std::size_t>(passes) % vertices.size()];
    ++passes;
  }
  ADA_CHECK(std::isfinite(static_cast<double>(sink)));
  rates.render_bps = subset_bytes * passes / render_watch.elapsed_seconds();

  return rates;
}

}  // namespace ada::platform
