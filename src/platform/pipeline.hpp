// Scenario pipelines: the four workflows of paper Table 3, end to end.
//
//   C           VMD loads a compressed XTC file
//   D           VMD loads a raw XTC file w/o compression
//   ADA (all)   ADA transfers the entire (decompressed) raw data
//   ADA (protein) ADA transfers the decompressed protein subset only
//
// run_scenario() executes a scenario's phase sequence against a platform,
// charging storage time (local FS model or the striped-PVFS DES), CPU time
// (CpuRates), memory (with the OOM semantics of Section 4.3), the
// memory-pressure slowdown, and node energy.  The result rows are what every
// figure bench prints.
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "platform/workload_stats.hpp"

namespace ada::platform {

enum class Scenario {
  kCompressedFs,  // C-<fs>
  kRawFs,         // D-<fs>
  kAdaAll,        // D-ADA (all)
  kAdaProtein,    // D-ADA (protein)
};

/// Paper-style label, e.g. "C-ext4", "D-PVFS", "D-ADA (protein)".
std::string scenario_label(Scenario scenario, const Platform& platform);

/// One executed phase (feeds Fig. 8 and the energy meter).
struct PhaseResult {
  std::string name;       // "retrieve", "decompress", "filter", "merge", "render", "indexer"
  double seconds = 0;     // final (slowdown-adjusted, truncated on OOM)
  double cpu_fraction = 0;
  double disk_fraction = 0;
};

struct ScenarioResult {
  Scenario scenario = Scenario::kCompressedFs;
  std::string label;

  double retrieval_s = 0;   // paper metric: raw data retrieval time
  double preprocess_s = 0;  // decompress + filter/merge (+ indexer)
  double render_s = 0;
  double turnaround_s = 0;  // paper metric: data processing turnaround time

  double memory_peak_bytes = 0;
  bool oom = false;         // killed by the system (Section 4.3)

  double energy_joules = 0;

  /// Stripe operations that failed for good in the DES (after retries).
  /// Non-zero only when fault injection is armed on the pvfs.* sites.
  std::size_t io_errors = 0;

  std::vector<PhaseResult> phases;
};

struct PipelineOptions {
  /// Where ADA's decompressed subsets live on the cluster.  The paper's
  /// deployment serves ADA reads from the SSD file system (Fig. 9a: "ADA
  /// only uses the underlying SSD storage nodes"); the split placement is
  /// the Section 3.4 textual design, kept as an ablation.
  enum class AdaClusterPlacement { kAllOnSsd, kSplitSsdHdd, kAllOnHdd };
  AdaClusterPlacement ada_placement = AdaClusterPlacement::kAllOnSsd;

  /// Override the stripe server count of the scenario's PVFS instance
  /// (striping ablation); 0 = use every server of the instance.
  unsigned stripe_servers_override = 0;

  /// Scatter-gather plan for cluster retrievals: when sg_extent_bytes > 0
  /// every retrieval is split into extents of that size and issued through
  /// PvfsModel::read_extents under sg_queue_depth (extents in flight per
  /// server, 0 = unbounded).  The 0 default keeps whole-file read_file
  /// stripes -- the paper's shape, and bit-identical sim timing to pre-
  /// scatter-gather builds.
  double sg_extent_bytes = 0;
  unsigned sg_queue_depth = 0;
};

/// One concurrent file read of a simulated cluster retrieval.
struct ClusterRead {
  /// Which PVFS instance serves it: the 6-node hybrid ("pvfs"), the SSD
  /// instance ("pvfs-ssd"), or the HDD instance ("pvfs-hdd").
  enum class Instance { kHybrid, kSsd, kHdd };
  Instance instance = Instance::kSsd;
  double bytes = 0;
};

/// A cluster retrieval to run on a fresh DES -- the shared substrate of
/// run_scenario's retrieval phase, bench/fig9_cluster, and
/// bench/distributed_scaling.
struct ClusterReadSpec {
  std::vector<ClusterRead> reads;  // issued concurrently
  double sg_extent_bytes = 0;      // 0 = whole-file read_file stripes
  unsigned sg_queue_depth = 0;     // extents in flight per server, 0 = unbounded
  unsigned stripe_servers_override = 0;
};

struct ClusterReadOutcome {
  double seconds = 0;       // sim time for every read to finish
  std::size_t io_errors = 0;  // reads that failed for good (armed faults)
};

/// Build the cluster's fabric + PVFS instances and simulate `spec`.
ClusterReadOutcome simulate_cluster_read(const ClusterConfig& cluster, const ClusterReadSpec& spec);

ScenarioResult run_scenario(const Platform& platform, Scenario scenario,
                            const WorkloadSizes& sizes, const PipelineOptions& options = {});

/// All four scenarios at once (one figure column).
std::vector<ScenarioResult> run_all_scenarios(const Platform& platform,
                                              const WorkloadSizes& sizes,
                                              const PipelineOptions& options = {});

}  // namespace ada::platform
