#include "platform/workload_stats.hpp"

#include "common/check.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

namespace ada::platform {

FrameProfile FrameProfile::measure(const workload::GpcrSpec& spec,
                                   const workload::DynamicsSpec& dynamics,
                                   std::uint32_t sample_frames) {
  ADA_CHECK(sample_frames > 0);
  const auto system = workload::GpcrSystemBuilder(spec).build();
  workload::TrajectoryGenerator gen(system, dynamics);
  // Warm up past the OU transient so deltas are steady-state.
  for (int f = 0; f < 3; ++f) gen.next_frame();

  formats::XtcWriter writer;
  for (std::uint32_t f = 0; f < sample_frames; ++f) {
    const Status s = writer.add_frame(gen.current_step(), gen.current_time_ps(), system.box(),
                                      gen.next_frame());
    ADA_CHECK(s.is_ok());
  }

  FrameProfile profile;
  profile.atoms = system.atom_count();
  profile.protein_atoms = system.count_category(chem::Category::kProtein);
  profile.compressed_per_frame = static_cast<double>(writer.size_bytes()) / sample_frames;
  profile.raw_per_frame = static_cast<double>(formats::raw_frame_bytes(profile.atoms));
  profile.protein_raw_per_frame =
      static_cast<double>(formats::raw_frame_bytes(profile.protein_atoms));
  return profile;
}

const FrameProfile& FrameProfile::paper_gpcr() {
  static const FrameProfile profile =
      measure(workload::GpcrSpec::paper_default(), workload::DynamicsSpec{}, 16);
  return profile;
}

WorkloadSizes WorkloadSizes::from_profile(const FrameProfile& profile, std::uint64_t frames) {
  WorkloadSizes sizes;
  sizes.frames = frames;
  const auto f = static_cast<double>(frames);
  sizes.compressed_bytes = profile.compressed_per_frame * f;
  sizes.raw_bytes = profile.raw_per_frame * f + 16;           // + RAW file header
  sizes.protein_bytes = profile.protein_raw_per_frame * f + 16;
  return sizes;
}

}  // namespace ada::platform
