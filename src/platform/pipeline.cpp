#include "platform/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/check.hpp"
#include "common/units.hpp"
#include "net/fabric.hpp"
#include "obs/events.hpp"
#include "pvfs/pvfs.hpp"
#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"

namespace ada::platform {

namespace {

/// Render working set: geometry buffers scale with the displayed subset.
constexpr double kRenderWorkingSetFraction = 0.005;

std::string fs_suffix(const Platform& platform) {
  switch (platform.kind) {
    case Platform::Kind::kLocalFs: return platform.local_fs->params().name;
    case Platform::Kind::kCluster: return "PVFS";
  }
  return "fs";
}

/// Bytes each scenario moves from storage to the compute node.
double loaded_bytes(Scenario scenario, const WorkloadSizes& sizes) {
  switch (scenario) {
    case Scenario::kCompressedFs: return sizes.compressed_bytes;
    case Scenario::kRawFs: return sizes.raw_bytes;
    case Scenario::kAdaAll: return sizes.raw_bytes;
    case Scenario::kAdaProtein: return sizes.protein_bytes;
  }
  return 0;
}

/// Cluster retrieval: run the striped-PVFS DES and return elapsed seconds.
double cluster_retrieval_seconds(const ClusterConfig& cluster, Scenario scenario,
                                 const WorkloadSizes& sizes, const PipelineOptions& options,
                                 std::size_t* io_errors) {
  using Instance = ClusterRead::Instance;
  using Placement = PipelineOptions::AdaClusterPlacement;
  ClusterReadSpec spec;
  spec.sg_extent_bytes = options.sg_extent_bytes;
  spec.sg_queue_depth = options.sg_queue_depth;
  spec.stripe_servers_override = options.stripe_servers_override;
  switch (scenario) {
    case Scenario::kCompressedFs:
    case Scenario::kRawFs:
      spec.reads.push_back(ClusterRead{Instance::kHybrid, loaded_bytes(scenario, sizes)});
      break;
    case Scenario::kAdaProtein:
      spec.reads.push_back(
          ClusterRead{options.ada_placement == Placement::kAllOnHdd ? Instance::kHdd : Instance::kSsd,
                      sizes.protein_bytes});
      break;
    case Scenario::kAdaAll:
      switch (options.ada_placement) {
        case Placement::kAllOnSsd:
          spec.reads.push_back(ClusterRead{Instance::kSsd, sizes.raw_bytes});
          break;
        case Placement::kAllOnHdd:
          spec.reads.push_back(ClusterRead{Instance::kHdd, sizes.raw_bytes});
          break;
        case Placement::kSplitSsdHdd:
          // Protein subset from the SSD instance, MISC from the HDD
          // instance, fetched concurrently.
          spec.reads.push_back(ClusterRead{Instance::kSsd, sizes.protein_bytes});
          spec.reads.push_back(ClusterRead{Instance::kHdd, sizes.raw_bytes - sizes.protein_bytes});
          break;
      }
      break;
  }
  const ClusterReadOutcome outcome = simulate_cluster_read(cluster, spec);
  if (io_errors != nullptr) *io_errors += outcome.io_errors;
  return outcome.seconds;
}

/// Internal phase description before slowdown/OOM resolution.
struct PhasePlan {
  std::string name;
  double base_seconds = 0;
  double mem_start = 0;
  double mem_end = 0;
  double cpu_fraction = 0;
  double disk_fraction = 0;
};

}  // namespace

ClusterReadOutcome simulate_cluster_read(const ClusterConfig& cluster,
                                         const ClusterReadSpec& spec) {
  sim::Simulator simulator;
  sim::FlowNetwork network(simulator);
  const unsigned nodes =
      cluster.compute_nodes + cluster.hdd_storage_nodes + cluster.ssd_storage_nodes;
  net::Fabric fabric(simulator, network,
                     net::FabricSpec{cluster.nic_bandwidth, cluster.backplane_bandwidth, 2e-6},
                     nodes);

  auto make_servers = [&](unsigned first, unsigned count, const storage::DeviceSpec& device) {
    std::vector<pvfs::IoServer> servers;
    const unsigned limit = spec.stripe_servers_override == 0
                               ? count
                               : std::min(count, spec.stripe_servers_override);
    for (unsigned i = 0; i < limit; ++i) {
      servers.push_back(pvfs::IoServer{first + i, device, cluster.disks_per_node});
    }
    return servers;
  };
  const unsigned hdd_first = cluster.compute_nodes;
  const unsigned ssd_first = cluster.compute_nodes + cluster.hdd_storage_nodes;
  const net::NodeId client = 0;

  ClusterReadOutcome outcome;
  int outstanding = 0;
  auto on_done = [&outstanding, &outcome](const Status& status) {
    if (!status.is_ok()) ++outcome.io_errors;
    --outstanding;
  };

  // Instances are built per spec; unused ones cost nothing.  The hybrid
  // instance spans all storage nodes (HDD then SSD); the dedicated
  // instances are built as a pair, matching the ADA deployment shape.
  std::optional<pvfs::PvfsModel> hybrid;
  std::optional<pvfs::PvfsModel> ssd_fs;
  std::optional<pvfs::PvfsModel> hdd_fs;
  bool want_hybrid = false;
  bool want_split = false;
  for (const ClusterRead& read : spec.reads) {
    (read.instance == ClusterRead::Instance::kHybrid ? want_hybrid : want_split) = true;
  }
  if (want_hybrid) {
    auto servers =
        make_servers(hdd_first, cluster.hdd_storage_nodes, storage::DeviceSpec::wd_hdd_1tb());
    auto ssd_servers = make_servers(ssd_first, cluster.ssd_storage_nodes,
                                    storage::DeviceSpec::plextor_ssd_256gb());
    servers.insert(servers.end(), ssd_servers.begin(), ssd_servers.end());
    hybrid.emplace(simulator, fabric, "pvfs", std::move(servers), hdd_first);
  }
  if (want_split) {
    ssd_fs.emplace(simulator, fabric, "pvfs-ssd",
                   make_servers(ssd_first, cluster.ssd_storage_nodes,
                                storage::DeviceSpec::plextor_ssd_256gb()),
                   ssd_first);
    hdd_fs.emplace(simulator, fabric, "pvfs-hdd",
                   make_servers(hdd_first, cluster.hdd_storage_nodes,
                                storage::DeviceSpec::wd_hdd_1tb()),
                   hdd_first);
  }

  auto issue = [&](pvfs::PvfsModel& fs, double bytes) {
    ++outstanding;
    if (spec.sg_extent_bytes > 0) {
      // Scatter-gather: split into extents and admit per server under the
      // queue depth.  read_file's whole-file stripes are the 0 default.
      const auto plan = fs.layout().extents(static_cast<std::uint64_t>(bytes),
                                            static_cast<std::uint64_t>(spec.sg_extent_bytes));
      std::vector<pvfs::ExtentRead> extents;
      extents.reserve(plan.size());
      for (const auto& extent : plan) {
        extents.push_back(pvfs::ExtentRead{static_cast<double>(extent.bytes), extent.server});
      }
      fs.read_extents(extents, client, pvfs::SgParams{spec.sg_queue_depth}, on_done);
    } else {
      fs.read_file(bytes, client, on_done);
    }
  };
  for (const ClusterRead& read : spec.reads) {
    switch (read.instance) {
      case ClusterRead::Instance::kHybrid: issue(*hybrid, read.bytes); break;
      case ClusterRead::Instance::kSsd: issue(*ssd_fs, read.bytes); break;
      case ClusterRead::Instance::kHdd: issue(*hdd_fs, read.bytes); break;
    }
  }
  ADA_CHECK(outstanding > 0);
  simulator.run_while_pending([&] { return outstanding == 0; });
  ADA_CHECK(outstanding == 0);
  outcome.seconds = simulator.now();
  return outcome;
}

std::string scenario_label(Scenario scenario, const Platform& platform) {
  const std::string fs = fs_suffix(platform);
  switch (scenario) {
    case Scenario::kCompressedFs: return "C-" + fs;
    case Scenario::kRawFs: return "D-" + fs;
    case Scenario::kAdaAll: return "D-ADA (all)";
    case Scenario::kAdaProtein: return "D-ADA (protein)";
  }
  return "?";
}

ScenarioResult run_scenario(const Platform& platform, Scenario scenario,
                            const WorkloadSizes& sizes, const PipelineOptions& options) {
  const CpuRates& cpu = platform.cpu;
  ScenarioResult result;
  result.scenario = scenario;
  result.label = scenario_label(scenario, platform);
  // Root span for the whole scenario: the DES below it emits sim-time lanes
  // that carry this trace id, so the merged timeline ties wall-clock model
  // evaluation to the simulated cluster activity it triggered.
  const obs::TraceSpan trace("scenario", result.label);

  // --- raw retrieval time ------------------------------------------------------
  const double bytes_in = loaded_bytes(scenario, sizes);
  double retrieve_base = 0;
  switch (platform.kind) {
    case Platform::Kind::kLocalFs:
      retrieve_base = platform.local_fs->read_file_time(bytes_in);
      break;
    case Platform::Kind::kCluster:
      retrieve_base =
          cluster_retrieval_seconds(*platform.cluster, scenario, sizes, options, &result.io_errors);
      break;
  }

  const double window = std::min(sizes.compressed_bytes, platform.page_cache_window);
  const double render_ws = kRenderWorkingSetFraction * sizes.protein_bytes;
  const double render_cpu_s = sizes.protein_bytes / cpu.render_bps +
                              static_cast<double>(sizes.frames) * cpu.render_per_frame_s;

  // --- phase plan -----------------------------------------------------------------
  std::vector<PhasePlan> plan;
  auto add = [&plan](std::string name, double seconds, double mem_start, double mem_end,
                     double cpu_frac, double disk_frac) {
    plan.push_back(PhasePlan{std::move(name), seconds, mem_start, mem_end, cpu_frac, disk_frac});
  };

  switch (scenario) {
    case Scenario::kCompressedFs: {
      add("retrieve", retrieve_base, 0, window, 0.05, 1.0);
      add("decompress", sizes.raw_bytes / cpu.decompress_bps, window, window + sizes.raw_bytes,
          1.0, 0.1);
      add("filter", sizes.raw_bytes / cpu.filter_bps, window + sizes.raw_bytes,
          window + sizes.raw_bytes, 1.0, 0.0);
      add("render", render_cpu_s, window + sizes.raw_bytes,
          window + sizes.raw_bytes + render_ws, 1.0, 0.0);
      break;
    }
    case Scenario::kRawFs: {
      add("retrieve", retrieve_base, 0, sizes.raw_bytes, 0.05, 1.0);
      add("filter", sizes.raw_bytes / cpu.filter_bps, sizes.raw_bytes, sizes.raw_bytes, 1.0, 0.0);
      add("render", render_cpu_s, sizes.raw_bytes, sizes.raw_bytes + render_ws, 1.0, 0.0);
      break;
    }
    case Scenario::kAdaAll: {
      add("indexer", cpu.indexer_overhead_s, 0, 0, 0.2, 0.0);
      add("retrieve", retrieve_base, 0, sizes.raw_bytes, 0.05, 1.0);
      add("merge", sizes.raw_bytes / cpu.merge_bps, sizes.raw_bytes, sizes.raw_bytes, 1.0, 0.0);
      add("render", render_cpu_s, sizes.raw_bytes, sizes.raw_bytes + render_ws, 1.0, 0.0);
      break;
    }
    case Scenario::kAdaProtein: {
      add("indexer", cpu.indexer_overhead_s, 0, 0, 0.2, 0.0);
      add("retrieve", retrieve_base, 0, sizes.protein_bytes, 0.05, 1.0);
      add("render", render_cpu_s, sizes.protein_bytes, sizes.protein_bytes + render_ws, 1.0, 0.0);
      break;
    }
  }

  // --- execute: slowdown, OOM, metrics ------------------------------------------------
  const double usable = platform.dram_bytes * (1.0 - platform.os_reserve_fraction);
  storage::EnergyMeter meter(platform.power, platform.metered_nodes);
  double peak = 0;

  // Point slowdown at memory ratio r (capped exponential above the threshold).
  const auto thrash_at = [&platform](double ratio) {
    if (ratio <= platform.thrash_threshold) return 1.0;
    return std::min(platform.thrash_max_factor,
                    std::exp(platform.thrash_k * (ratio - platform.thrash_threshold)));
  };
  // Mean slowdown along a linear memory trajectory [m0, m1] (numeric
  // integration; exact enough at 64 points for a smooth exponential).
  const auto thrash_mean = [&](double m0, double m1) {
    if (m1 <= m0) return thrash_at(m0 / usable);
    constexpr int kSteps = 64;
    double sum = 0;
    for (int i = 0; i < kSteps; ++i) {
      const double m = m0 + (m1 - m0) * (i + 0.5) / kSteps;
      sum += thrash_at(m / usable);
    }
    return sum / kSteps;
  };

  for (const PhasePlan& phase : plan) {
    bool killed = false;
    double fraction = 1.0;
    double mem_end = phase.mem_end;
    if (phase.mem_end > usable) {
      // The growing allocation crosses usable capacity mid-phase: the OOM
      // killer fires after the corresponding fraction of the phase.
      const double growth = phase.mem_end - phase.mem_start;
      fraction = growth > 0 ? std::clamp((usable - phase.mem_start) / growth, 0.0, 1.0) : 0.0;
      mem_end = std::min(phase.mem_end, usable);
      killed = true;
    }
    const double factor =
        phase.cpu_fraction >= 0.5 ? thrash_mean(phase.mem_start, mem_end) : 1.0;
    const double seconds = phase.base_seconds * factor * fraction;

    result.phases.push_back(
        PhaseResult{phase.name, seconds, phase.cpu_fraction, phase.disk_fraction});
    meter.record({phase.name, seconds, phase.cpu_fraction, phase.disk_fraction});
    result.turnaround_s += seconds;
    if (phase.name == "retrieve" || phase.name == "indexer") {
      // Fig. 7a counts the indexer's tag search in the retrieval time
      // ("ADA needs to launch Indexer to search tags").
      result.retrieval_s += seconds;
    } else if (phase.name == "render") {
      result.render_s += seconds;
    } else {
      result.preprocess_s += seconds;
    }
    peak = std::max(peak, std::min(phase.mem_end, usable));
    if (killed) {
      result.oom = true;
      break;
    }
  }

  result.memory_peak_bytes = peak;
  result.energy_joules = meter.joules();
  return result;
}

std::vector<ScenarioResult> run_all_scenarios(const Platform& platform, const WorkloadSizes& sizes,
                                              const PipelineOptions& options) {
  std::vector<ScenarioResult> out;
  for (const Scenario scenario : {Scenario::kCompressedFs, Scenario::kRawFs, Scenario::kAdaAll,
                                  Scenario::kAdaProtein}) {
    out.push_back(run_scenario(platform, scenario, sizes, options));
  }
  return out;
}

}  // namespace ada::platform
