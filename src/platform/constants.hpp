// CPU-rate constants of the performance plane.
//
// These are the single-threaded processing rates the scenario pipelines
// charge for each VMD phase.  Defaults are deterministic and calibrated so
// that the paper's headline ratios emerge from the paper's own hardware
// tables (see DESIGN.md section 4 and EXPERIMENTS.md); calibrate() instead
// measures the real codec and bond search on the host, for readers who want
// the model grounded in their machine.
#pragma once

namespace ada::platform {

struct CpuRates {
  /// xtc decompression throughput, raw (output) bytes per second.
  /// Real xdrfile-class decoders decode a few hundred MB/s of coordinates
  /// per core; 500 MB/s reproduces the paper's 13.4x (Fig 7b).
  double decompress_bps = 500e6;

  /// Active-data scan/filter over decompressed frames (bytes/second).
  double filter_bps = 1.3e9;

  /// Subset-merge (scatter) throughput for ADA(all) reconstruction.
  double merge_bps = 1.5e9;

  /// Scene/geometry build throughput over displayed bytes.
  double render_bps = 7e9;

  /// Per-frame fixed render cost (display-list bookkeeping), seconds.
  double render_per_frame_s = 2e-6;

  /// ADA indexer tag lookup per query, seconds (the small extra cost that
  /// makes D-ADA(all) trail D-ext4 in Fig 7a).
  double indexer_overhead_s = 0.02;

  static CpuRates paper_default() { return CpuRates{}; }
};

/// Host-measured rates: runs the real ada3d decoder and the real cell-list
/// bond search on a synthetic sample and returns observed bytes/second for
/// the decompress and render entries (other fields keep defaults).
/// Deterministic inputs, host-dependent outputs -- for reporting only.
CpuRates calibrate_on_host();

}  // namespace ada::platform
