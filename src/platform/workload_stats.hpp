// Workload sizes: the byte counts that drive the performance model.
//
// Small scales could be materialized outright, but the fat-node series runs
// to 5,004,800 frames (2.6 TB raw), so sizes are obtained the way DESIGN.md
// section 4 describes: really generate and really compress a sample window
// of full-size frames, take the per-frame means (stationary by construction
// -- verified by test), and scale analytically to any frame count.
#pragma once

#include <cstdint>

#include "workload/spec.hpp"

namespace ada::platform {

/// Per-frame measurements of a workload (bytes).
struct FrameProfile {
  std::uint32_t atoms = 0;
  std::uint32_t protein_atoms = 0;
  double compressed_per_frame = 0;     // measured from the real codec
  double raw_per_frame = 0;            // 44 + 12*atoms
  double protein_raw_per_frame = 0;    // 44 + 12*protein_atoms

  /// Generate `sample_frames` real frames of the spec'd system, compress
  /// them, and average.  Deterministic for fixed seeds.
  static FrameProfile measure(const workload::GpcrSpec& spec,
                              const workload::DynamicsSpec& dynamics, std::uint32_t sample_frames);

  /// The paper's GPCR profile (cached across calls; measures once).
  static const FrameProfile& paper_gpcr();
};

/// A concrete experiment size.
struct WorkloadSizes {
  std::uint64_t frames = 0;
  double compressed_bytes = 0;
  double raw_bytes = 0;
  double protein_bytes = 0;

  static WorkloadSizes from_profile(const FrameProfile& profile, std::uint64_t frames);
};

}  // namespace ada::platform
