#include "pvfs/pvfs.hpp"

#include <memory>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace ada::pvfs {

PvfsModel::PvfsModel(sim::Simulator& simulator, net::Fabric& fabric, std::string name,
                     std::vector<IoServer> servers, net::NodeId metadata_node,
                     StripeLayout layout, MetadataParams metadata)
    : simulator_(simulator),
      fabric_(fabric),
      name_(std::move(name)),
      servers_(std::move(servers)),
      metadata_(simulator, name_ + ".mds@node" + std::to_string(metadata_node)),
      metadata_params_(metadata),
      layout_(layout) {
  ADA_CHECK(!servers_.empty());
  layout_.server_count = static_cast<std::uint32_t>(servers_.size());
  sim::FlowNetwork& network = fabric_.network();
  links_.reserve(servers_.size());
  for (const IoServer& server : servers_) {
    ADA_CHECK(server.devices_per_node >= 1);
    const double read_bw = server.device.read_bandwidth * server.devices_per_node;
    const double write_bw = server.device.write_bandwidth * server.devices_per_node;
    const std::string base = name_ + ".s" + std::to_string(server.node);
    links_.push_back(ServerLinks{network.add_link(base + ".disk_rd", read_bw),
                                 network.add_link(base + ".disk_wr", write_bw)});
  }
  stripe_lanes_.assign(servers_.size(), 0);
}

std::uint32_t PvfsModel::stripe_lane(std::uint32_t server) {
  std::uint32_t& lane = stripe_lanes_.at(server);
  if (lane == 0) {
    lane = obs::register_lane(name_ + ".s" + std::to_string(servers_[server].node) + ".stripe");
  }
  return lane;
}

double PvfsModel::aggregate_disk_read_bandwidth() const {
  double total = 0.0;
  for (const IoServer& server : servers_) {
    total += server.device.read_bandwidth * server.devices_per_node;
  }
  return total;
}

void PvfsModel::read_file(double bytes, net::NodeId client, std::function<void()> on_complete) {
  start_striped(bytes, client, /*write=*/false, std::move(on_complete));
}

void PvfsModel::write_file(double bytes, net::NodeId client, std::function<void()> on_complete) {
  start_striped(bytes, client, /*write=*/true, std::move(on_complete));
}

void PvfsModel::start_striped(double bytes, net::NodeId client, bool write,
                              std::function<void()> on_complete) {
  ADA_CHECK(bytes >= 0.0);
  const double lookup =
      write ? metadata_params_.create_latency : metadata_params_.lookup_latency;
  if (write) {
    ADA_OBS_COUNT("pvfs.write.calls", 1);
    ADA_OBS_COUNT("pvfs.write.bytes", bytes);
  } else {
    ADA_OBS_COUNT("pvfs.read.calls", 1);
    ADA_OBS_COUNT("pvfs.read.bytes", bytes);
  }
  const obs::TraceContext ctx = obs::trace_enabled() ? obs::current_context() : obs::TraceContext{};
  metadata_.submit(lookup, [this, bytes, client, write, ctx,
                            on_complete = std::move(on_complete)]() mutable {
    const auto distribution = layout_.distribution(static_cast<std::uint64_t>(bytes));
    auto remaining = std::make_shared<std::uint32_t>(0);
    auto done = std::make_shared<std::function<void()>>(std::move(on_complete));
    for (std::uint32_t s = 0; s < servers_.size(); ++s) {
      if (distribution[s] == 0) continue;
      ++*remaining;
      ADA_OBS_OBSERVE("pvfs.stripe.server_bytes", distribution[s]);
    }
    ADA_OBS_OBSERVE("pvfs.stripe.fanout", *remaining);
    if (*remaining == 0) {
      if (*done) simulator_.schedule_after(0.0, *done);
      return;
    }
    for (std::uint32_t s = 0; s < servers_.size(); ++s) {
      if (distribution[s] == 0) continue;
      // Path: disk stage + network stage.  For reads the data moves
      // server->client; for writes client->server with the disk stage last.
      std::vector<sim::LinkId> path;
      if (write) {
        path = fabric_.path(client, servers_[s].node);
        path.push_back(links_[s].disk_write);
      } else {
        path.push_back(links_[s].disk_read);
        const auto net_path = fabric_.path(servers_[s].node, client);
        path.insert(path.end(), net_path.begin(), net_path.end());
      }
      // Per-stripe seek overhead: charge the device access latency once per
      // stripe as an equivalent byte deficit is negligible for streaming
      // HDDs reading 64 KiB units contiguously; instead the access latency
      // delays the flow start.
      const double start_delay = servers_[s].device.access_latency;
      const double server_bytes = static_cast<double>(distribution[s]);
      const char* stripe_name = write ? "stripe_write" : "stripe_read";
      simulator_.schedule_after(start_delay, [this, s, ctx, stripe_name,
                                              path = std::move(path), server_bytes, remaining,
                                              done]() mutable {
        // The stripe span opens when the flow actually starts (after the
        // device access latency) and closes when its last byte lands.
        const std::uint64_t span =
            obs::trace_enabled()
                ? obs::sim_begin(stripe_lane(s), stripe_name, simulator_.now(), ctx,
                                 static_cast<std::uint64_t>(server_bytes))
                : 0;
        fabric_.network().start_flow(
            std::move(path), server_bytes, [this, s, ctx, stripe_name, span, remaining, done]() {
              obs::sim_end(stripe_lanes_[s], stripe_name, simulator_.now(), span, ctx);
              if (--*remaining == 0 && *done) (*done)();
            });
      });
    }
  });
}

}  // namespace ada::pvfs
